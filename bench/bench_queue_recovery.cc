// Experiment F-queue — crash-surviving queue recovery: a papyrusd
// workload (two sessions fed over the wire) runs under a seeded
// daemon-crash plan that kills the process mid-pipeline; a supervisor
// loop reboots it on the same root until the queue drains. Reported per
// worker-pool size: injected crashes, restarts, wall-clock cost of each
// reopen (journal replay + session restore), and the exactly-once
// verdict — every task done, none failed, executed + deduped == n, and
// the final snapshot bytes identical to a crash-free reference run.
//
// Flags:
//   --smoke      run the soak matrix only; exit non-zero unless every
//                scenario is exactly-once and byte-identical
//   --json F     write the summary to F (default
//                BENCH_queue_recovery.json; "" disables)
//   --trace F    dump the chaos soak's virtual-time Chrome trace to F
//   --metrics F  dump the chaos soak's metrics-registry snapshot to F
//                (both validated by tools/check_trace.py in CI)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/macros.h"
#include "base/status.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/daemon.h"
#include "server/queue.h"

namespace papyrus::bench {
namespace {

namespace fs = std::filesystem;

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("bench_queue_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One daemon lifetime spanning injected crashes: the clock, metrics,
/// and trace recorder survive each reboot, the in-memory daemon does
/// not — exactly the supervisor loop papyrusd expects around itself.
struct Harness {
  explicit Harness(const std::string& root_dir)
      : root(root_dir), trace(&clock) {
    trace.set_enabled(true);
  }

  Status Boot() {
    daemon.reset();  // the old incarnation's memory dies first
    server::DaemonOptions options;
    options.root = root;
    options.session.worker_threads = workers;
    options.crash_plan = plan;
    options.clock = &clock;
    options.trace = &trace;
    options.metrics = &metrics;
    int64_t start = WallMicros();
    auto started = server::PapyrusDaemon::Start(options);
    reopen_wall_micros += WallMicros() - start;
    if (!started.ok()) return started.status();
    daemon = std::move(*started);
    ++boots;
    return Status::OK();
  }

  /// Drains to empty, rebooting on injected crashes. Returns the number
  /// of restarts or an error if the daemon never settles.
  Result<int> Settle(int max_restarts = 64) {
    int restarts = 0;
    while (true) {
      Status st = daemon->Drain();
      if (st.ok()) return restarts;
      if (!st.IsAborted()) return st;
      if (++restarts > max_restarts) {
        return Status::Internal("daemon did not settle");
      }
      PAPYRUS_RETURN_IF_ERROR(Boot());
    }
  }

  std::string root;
  ManualClock clock{0};
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  server::DaemonCrashPlan* plan = nullptr;
  int workers = 1;
  int boots = 0;
  int64_t reopen_wall_micros = 0;
  std::unique_ptr<server::PapyrusDaemon> daemon;
};

/// Two sessions over the wire: `kTasks` synthesis flows in alpha and as
/// many pad placements in beta. Returns the number of tasks submitted.
int SubmitWorkload(Harness& h) {
  auto send = [&](const std::string& line) {
    std::string reply = h.daemon->HandleLine(line);
    if (reply.rfind("ok", 0) != 0) {
      std::fprintf(stderr, "wire error: %s -> %s\n", line.c_str(),
                   reply.c_str());
    }
  };
  constexpr int kTasks = 4;
  send("checkin ~session=alpha ~path=/proj/shifter ~type=behav"
       " ~inputs=8 ~outputs=8 ~complexity=12 ~seed=77");
  send("checkin ~session=alpha ~path=/proj/sim.cmd ~type=text"
       " ~text=run%20100");
  send("checkin ~session=beta ~path=/proj/cell ~type=layout"
       " ~cells=12 ~area=1200 ~seed=3");
  for (int k = 0; k < kTasks; ++k) {
    send("submit ~session=alpha ~thread=synth"
         " ~template=Structure_Synthesis"
         " ~in=/proj/shifter ~in=/proj/sim.cmd"
         " ~out=s" + std::to_string(k) + ".layout"
         " ~out=s" + std::to_string(k) + ".stats"
         " ~seed=" + std::to_string(42 + k));
    send("submit ~session=beta ~thread=pads ~template=Padp"
         " ~in=/proj/cell"
         " ~out=cell" + std::to_string(k) + ".padded"
         " ~seed=" + std::to_string(9 + k));
  }
  return 2 * kTasks;
}

/// Every byte of durable session state: CURRENT pointers plus the files
/// of the generation each one names.
std::map<std::string, std::string> SnapshotBytes(const std::string& root) {
  std::map<std::string, std::string> files;
  for (const std::string& name : {"alpha", "beta"}) {
    fs::path dir = fs::path(root) / "sessions" / name;
    std::string generation = ReadAll(dir / "CURRENT");
    while (!generation.empty() && (generation.back() == '\n' ||
                                   generation.back() == ' ')) {
      generation.pop_back();
    }
    files[name + "/CURRENT"] = generation;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir / generation, ec)) {
      if (!entry.is_regular_file()) continue;
      files[name + "/" + entry.path().filename().string()] =
          ReadAll(entry.path());
    }
  }
  return files;
}

struct SoakResult {
  int workers = 0;
  int tasks = 0;
  int done = 0;
  int failed = 0;
  int crashes = 0;
  int restarts = 0;
  int64_t executed = 0;
  int64_t deduped = 0;
  double reopen_avg_ms = 0.0;
  double drain_wall_ms = 0.0;
  bool exactly_once = false;
  bool byte_identical = false;
  std::string metrics_json;
};

/// Runs the workload under a rate-based crash plan (rate 0 = crash-free
/// reference) and checks the recovery invariants. `reference` is the
/// crash-free snapshot to compare against, or null for the reference
/// run itself. `keep` optionally receives the harness for trace dumps.
SoakResult RunSoak(int workers, double crash_rate, uint64_t seed,
                   const std::map<std::string, std::string>* reference,
                   std::map<std::string, std::string>* bytes_out = nullptr,
                   std::unique_ptr<Harness>* keep = nullptr) {
  auto h = std::make_unique<Harness>(
      FreshDir("w" + std::to_string(workers) + "_r" +
               std::to_string(static_cast<int>(crash_rate * 100))));
  h->workers = workers;
  server::DaemonCrashPlan plan(seed, crash_rate, /*max_crashes=*/6);
  if (crash_rate > 0) h->plan = &plan;

  SoakResult r;
  r.workers = workers;
  if (!h->Boot().ok()) return r;
  r.tasks = SubmitWorkload(*h);
  int64_t start = WallMicros();
  auto restarts = h->Settle();
  r.drain_wall_ms = (WallMicros() - start) / 1000.0;
  if (!restarts.ok()) {
    std::fprintf(stderr, "soak failed: %s\n",
                 restarts.status().ToString().c_str());
    return r;
  }
  r.restarts = *restarts;
  r.crashes = plan.crashes_fired();
  r.done = static_cast<int>(h->daemon->queue().DoneCount());
  r.failed = static_cast<int>(h->daemon->queue().FailedCount());
  r.executed =
      h->metrics.FindOrCreateCounter(obs::kServerTasksExecuted)->value();
  r.deduped =
      h->metrics.FindOrCreateCounter(obs::kServerTasksDeduped)->value();
  r.reopen_avg_ms = h->boots > 0
                        ? h->reopen_wall_micros / 1000.0 / h->boots
                        : 0.0;
  r.exactly_once = r.done == r.tasks && r.failed == 0 &&
                   r.executed + r.deduped == r.tasks;
  auto bytes = SnapshotBytes(h->root);
  r.byte_identical = reference == nullptr || bytes == *reference;
  if (bytes_out != nullptr) *bytes_out = std::move(bytes);
  r.metrics_json = h->metrics.ToJson();
  h->plan = nullptr;  // the stack plan dies with this scope
  if (keep != nullptr) *keep = std::move(h);
  return r;
}

void PrintTable(const std::vector<SoakResult>& rows) {
  std::printf("%-8s %-8s %-8s %-9s %-10s %-10s %-11s %-8s %s\n",
              "workers", "crashes", "restarts", "done", "executed",
              "deduped", "reopen(ms)", "1x-ok", "bytes-ok");
  for (const SoakResult& r : rows) {
    std::printf("%-8d %-8d %-8d %2d/%-6d %-10" PRId64 " %-10" PRId64
                " %-11.2f %-8s %s\n",
                r.workers, r.crashes, r.restarts, r.done, r.tasks,
                r.executed, r.deduped, r.reopen_avg_ms,
                r.exactly_once ? "yes" : "NO",
                r.byte_identical ? "yes" : "NO");
  }
  std::printf("\n");
}

void WriteJson(const std::string& path,
               const std::vector<SoakResult>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"queue_recovery\",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SoakResult& r = rows[i];
    out << "    {\"workers\": " << r.workers
        << ", \"tasks\": " << r.tasks << ", \"done\": " << r.done
        << ", \"failed\": " << r.failed
        << ", \"crashes_injected\": " << r.crashes
        << ", \"restarts\": " << r.restarts
        << ", \"executed\": " << r.executed
        << ", \"deduped\": " << r.deduped
        << ", \"reopen_avg_ms\": " << r.reopen_avg_ms
        << ", \"drain_wall_ms\": " << r.drain_wall_ms
        << ", \"exactly_once\": " << (r.exactly_once ? "true" : "false")
        << ", \"byte_identical\": "
        << (r.byte_identical ? "true" : "false")
        << ",\n     \"metrics\": "
        << (r.metrics_json.empty() ? "{}" : r.metrics_json) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      // Regression floors enforced by tools/check_bench.py.
      << "  \"floors\": {\n"
      << "    \"scenarios/*/exactly_once\": {\"eq\": true},\n"
      << "    \"scenarios/*/byte_identical\": {\"eq\": true},\n"
      << "    \"scenarios/*/failed\": {\"max\": 0}\n"
      << "  }\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_CrashRecoverySoak(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  uint64_t seed = 0xF00D;
  for (auto _ : state) {
    SoakResult r = RunSoak(workers, 0.15, seed++, nullptr);
    benchmark::DoNotOptimize(r);
  }
  state.counters["workers"] = workers;
}
BENCHMARK(BM_CrashRecoverySoak)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_queue_recovery.json";
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    }
  }

  papyrus::bench::Banner(
      "F-queue", "the multi-session daemon's crash-surviving job queue "
      "(journaled claims, virtual-time leases, applied-task ledger)",
      "kill the daemon at any instant and restart it on the same root: "
      "every journaled task commits exactly once and the final session "
      "state is byte-identical to a crash-free run at any pool size.");

  std::printf("chaos soak: seeded daemon crashes at rate 0.15 "
              "(max 6), supervisor reboots until drained\n\n");
  std::vector<papyrus::bench::SoakResult> rows;
  std::unique_ptr<papyrus::bench::Harness> chaos_harness;
  for (int workers : {1, 4}) {
    std::map<std::string, std::string> reference_bytes;
    papyrus::bench::SoakResult reference = papyrus::bench::RunSoak(
        workers, 0.0, 0, nullptr, &reference_bytes);
    rows.push_back(reference);
    rows.push_back(papyrus::bench::RunSoak(
        workers, 0.15, 0xF00D + workers, &reference_bytes, nullptr,
        workers == 4 ? &chaos_harness : nullptr));
  }
  papyrus::bench::PrintTable(rows);

  bool ok = true;
  bool any_crash = false;
  for (const auto& r : rows) {
    if (!r.exactly_once || !r.byte_identical) ok = false;
    if (r.crashes > 0) any_crash = true;
  }
  if (!any_crash) ok = false;  // a soak that never crashed proved nothing
  std::printf("exactly-once and byte-identical across crashes: %s\n",
              ok ? "yes" : "NO");

  if (chaos_harness != nullptr) {
    if (!trace_path.empty()) {
      chaos_harness->trace.Finish();
      papyrus::Status st = chaos_harness->trace.WriteJson(trace_path);
      std::printf("trace: %s\n",
                  st.ok() ? trace_path.c_str() : st.ToString().c_str());
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::trunc);
      out << chaos_harness->metrics.ToJson();
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
  }

  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, rows);
  }
  if (smoke) {
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
