// Experiment F-scale — concurrent multi-client daemon scale: the
// Unix-domain-socket transport and the shared-queue worker pool, both
// new in the concurrent-transport PR, measured end to end.
//
// Part 1 (multi-process, the smoke gate): a real `papyrusd --socket
// --shared` front-end serves two concurrent WireClients submitting a
// two-session workload; after the front-end retires, two `papyrusd
// --worker` processes drain the shared queue, splitting the sessions
// between them via per-session file locks. The resulting session
// snapshots must be byte-identical to an in-process serial reference —
// the paper's history-determinism claim, now across processes.
//
// Part 2 (in-process scale matrix): one daemon dispatching fairly
// (weighted round-robin, per-session in-flight caps, LRU-bounded open
// sessions) over 100 / 1 000 / 10 000 sessions. Reported per scale:
// tasks/sec, p50/p99 per-task dispatch latency, and the fairness
// verdict from the queue's claim log — no session's consecutive claims
// further apart than the round-robin bound (starved_sessions == 0).
//
// Flags:
//   --smoke         multi-process gate + the 100-session scale row
//                   only; exit non-zero on any invariant failure
//   --papyrusd P    path to the papyrusd binary (default: sibling
//                   ../tools/papyrusd of this binary)
//   --json F        write the summary (default BENCH_daemon_scale.json;
//                   "" disables)
//   --trace F       dump the largest scale run's Chrome trace to F
//   --metrics F     dump its metrics-registry snapshot to F
//                   (both validated by tools/check_trace.py in CI)

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/daemon.h"
#include "server/queue.h"
#include "server/transport.h"

namespace papyrus::bench {
namespace {

namespace fs = std::filesystem;

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("bench_scale_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every byte of durable state for the named sessions: CURRENT pointers
/// plus the files of the generation each one names.
std::map<std::string, std::string> SnapshotBytes(
    const std::string& root, const std::vector<std::string>& sessions) {
  std::map<std::string, std::string> files;
  for (const std::string& name : sessions) {
    fs::path dir = fs::path(root) / "sessions" / name;
    std::string generation = ReadAll(dir / "CURRENT");
    while (!generation.empty() && (generation.back() == '\n' ||
                                   generation.back() == ' ')) {
      generation.pop_back();
    }
    files[name + "/CURRENT"] = generation;
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(dir / generation, ec)) {
      if (!entry.is_regular_file()) continue;
      files[name + "/" + entry.path().filename().string()] =
          ReadAll(entry.path());
    }
  }
  return files;
}

pid_t Spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

int WaitFor(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

// ---------------------------------------------------------------------------
// Part 1: multi-process smoke — 2 socket clients, 2 worker processes

/// The two-session workload both the serial reference and the
/// multi-process run submit, as wire lines in a fixed per-session
/// order (per-session order is what byte-identity depends on).
std::vector<std::string> AlphaLines() {
  std::vector<std::string> lines = {
      "checkin ~session=alpha ~path=/proj/shifter ~type=behav"
      " ~inputs=8 ~outputs=8 ~complexity=12 ~seed=77",
      "checkin ~session=alpha ~path=/proj/sim.cmd ~type=text"
      " ~text=run%20100"};
  for (int k = 0; k < 3; ++k) {
    lines.push_back(
        "submit ~session=alpha ~thread=synth"
        " ~template=Structure_Synthesis"
        " ~in=/proj/shifter ~in=/proj/sim.cmd"
        " ~out=s" + std::to_string(k) + ".layout"
        " ~out=s" + std::to_string(k) + ".stats"
        " ~seed=" + std::to_string(42 + k));
  }
  return lines;
}

std::vector<std::string> BetaLines() {
  std::vector<std::string> lines = {
      "checkin ~session=beta ~path=/proj/cell ~type=layout"
      " ~cells=12 ~area=1200 ~seed=3"};
  for (int k = 0; k < 3; ++k) {
    lines.push_back(
        "submit ~session=beta ~thread=pads ~template=Padp"
        " ~in=/proj/cell"
        " ~out=cell" + std::to_string(k) + ".padded"
        " ~seed=" + std::to_string(9 + k));
  }
  return lines;
}

struct MultiProcessResult {
  int clients = 0;
  int workers = 0;
  int tasks = 0;
  int done = 0;
  int failed = 0;
  bool byte_identical = false;
  bool ok = false;
  double wall_ms = 0.0;
};

/// Serial reference: one in-process daemon, same wire lines, FIFO-free
/// fair dispatch — the bytes every distributed run must reproduce.
std::map<std::string, std::string> SerialReference(
    const std::string& root) {
  server::DaemonOptions options;
  options.root = root;
  auto daemon = server::PapyrusDaemon::Start(options);
  if (!daemon.ok()) return {};
  for (const std::string& line : AlphaLines()) {
    (void)(*daemon)->HandleLine(line);
  }
  for (const std::string& line : BetaLines()) {
    (void)(*daemon)->HandleLine(line);
  }
  if (!(*daemon)->Drain().ok()) return {};
  if (!(*daemon)->Shutdown().ok()) return {};
  return SnapshotBytes(root, {"alpha", "beta"});
}

/// Sends every line, insisting on ok responses. Returns false on any
/// error (connection or daemon-side).
bool SendAll(server::WireClient& client,
             const std::vector<std::string>& lines) {
  for (const std::string& line : lines) {
    auto response = client.Call(line);
    if (!response.ok() || response->rfind("ok", 0) != 0) {
      std::fprintf(stderr, "wire error: %s -> %s\n", line.c_str(),
                   response.ok() ? response->c_str()
                                 : response.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

MultiProcessResult RunMultiProcess(const std::string& papyrusd) {
  MultiProcessResult r;
  r.tasks = 6;
  std::string root = FreshDir("multiproc");
  std::string reference_root = FreshDir("multiproc_ref");
  auto reference = SerialReference(reference_root);
  if (reference.empty()) {
    std::fprintf(stderr, "serial reference run failed\n");
    return r;
  }

  std::string socket_path =
      "/tmp/bench_scale_" + std::to_string(::getpid()) + ".sock";
  std::error_code ec;
  fs::remove(socket_path, ec);

  int64_t start = WallMicros();
  // Front-end: accepts concurrent socket clients, journals their
  // submissions into the shared queue, executes nothing.
  pid_t front = Spawn({papyrusd, "--root", root, "--socket", socket_path,
                       "--shared"});

  // Both clients connect before either submits: two live connections
  // multiplexed by one poll loop.
  auto connect_with_retry =
      [&]() -> std::unique_ptr<server::WireClient> {
    for (int tries = 0; tries < 200; ++tries) {
      auto client = server::WireClient::Connect(socket_path);
      if (client.ok()) return std::move(*client);
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return nullptr;
  };
  auto c1 = connect_with_retry();
  auto c2 = connect_with_retry();
  if (c1 == nullptr || c2 == nullptr) {
    std::fprintf(stderr, "cannot connect to %s\n", socket_path.c_str());
    (void)WaitFor(front);
    return r;
  }
  r.clients = 2;
  bool submitted = SendAll(*c1, {"connect ~client=alpha-eng"}) &&
                   SendAll(*c2, {"connect ~client=beta-eng"}) &&
                   // Interleave across the two live connections; the
                   // per-session order stays fixed.
                   SendAll(*c1, AlphaLines()) &&
                   SendAll(*c2, BetaLines()) &&
                   SendAll(*c2, {"stat"}) && SendAll(*c1, {"shutdown"});
  c1.reset();
  c2.reset();
  int front_rc = WaitFor(front);
  if (!submitted || front_rc != 0) {
    std::fprintf(stderr, "front-end failed (rc=%d)\n", front_rc);
    return r;
  }

  // Two worker processes drain the shared queue the front-end left
  // behind, splitting the two sessions by file lock.
  pid_t w1 = Spawn({papyrusd, "--root", root, "--worker", "--inflight",
                    "1"});
  pid_t w2 = Spawn({papyrusd, "--root", root, "--worker", "--inflight",
                    "1"});
  int rc1 = WaitFor(w1);
  int rc2 = WaitFor(w2);
  r.wall_ms = (WallMicros() - start) / 1000.0;
  r.workers = 2;
  if (rc1 != 0 || rc2 != 0) {
    std::fprintf(stderr, "workers failed (rc=%d, rc=%d)\n", rc1, rc2);
    return r;
  }

  // Read the queue's final verdict from disk.
  ManualClock clock(0);
  auto queue = server::PersistentQueue::Open(
      (fs::path(root) / "queue").string(), &clock);
  if (!queue.ok()) return r;
  r.done = static_cast<int>((*queue)->DoneCount());
  r.failed = static_cast<int>((*queue)->FailedCount());

  auto bytes = SnapshotBytes(root, {"alpha", "beta"});
  r.byte_identical = bytes == reference;
  r.ok = r.done == r.tasks && r.failed == 0 && r.byte_identical;
  return r;
}

// ---------------------------------------------------------------------------
// Part 2: in-process scale matrix with fair dispatch

struct ScaleResult {
  int sessions = 0;
  int tasks = 0;
  int done = 0;
  int failed = 0;
  double tasks_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int max_claim_gap = 0;
  int starved_sessions = 0;
  bool ok = false;
};

std::string SessionName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "s%05d", i);
  return buf;
}

/// Fairness audit over the queue's claim log: for every session, the
/// largest number of claims granted between two of its consecutive
/// claims. Under weighted round-robin with uniform weights that gap
/// cannot exceed the number of sessions still holding pending work, so
/// any session beyond `bound` was starved.
void AuditClaimLog(const std::vector<server::ClaimRecord>& log, int bound,
                   int* max_gap, int* starved) {
  std::map<std::string, int> last_position;
  std::map<std::string, int> worst;
  for (int i = 0; i < static_cast<int>(log.size()); ++i) {
    auto it = last_position.find(log[i].session);
    if (it != last_position.end()) {
      int gap = i - it->second;
      int& w = worst[log[i].session];
      if (gap > w) w = gap;
    }
    last_position[log[i].session] = i;
  }
  *max_gap = 0;
  *starved = 0;
  for (const auto& [session, gap] : worst) {
    if (gap > *max_gap) *max_gap = gap;
    if (gap > bound) ++*starved;
  }
}

ScaleResult RunScale(int sessions, int tasks_per_session,
                     obs::TraceRecorder* trace, ManualClock* clock,
                     obs::MetricsRegistry* metrics) {
  ScaleResult r;
  r.sessions = sessions;
  r.tasks = sessions * tasks_per_session;

  server::DaemonOptions options;
  options.root = FreshDir("matrix_" + std::to_string(sessions));
  options.fair_dispatch = true;
  options.max_inflight_per_session = 1;
  // The LRU cap is what lets one daemon face 10k sessions without 10k
  // live engines; claims rotating across sessions make this the
  // worst-case open/evict churn, and that cost is what p99 shows.
  options.max_open_sessions = 64;
  options.clock = clock;
  options.trace = trace;
  options.metrics = metrics;
  auto daemon = server::PapyrusDaemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "scale start: %s\n",
                 daemon.status().ToString().c_str());
    return r;
  }

  for (int i = 0; i < sessions; ++i) {
    std::string response = (*daemon)->HandleLine(
        "checkin ~session=" + SessionName(i) +
        " ~path=/proj/cell ~type=layout ~cells=12 ~area=1200 ~seed=" +
        std::to_string(100 + i));
    if (response.rfind("ok", 0) != 0) {
      std::fprintf(stderr, "checkin: %s\n", response.c_str());
      return r;
    }
  }
  for (int k = 0; k < tasks_per_session; ++k) {
    for (int i = 0; i < sessions; ++i) {
      std::string response = (*daemon)->HandleLine(
          "submit ~session=" + SessionName(i) +
          " ~thread=pads ~template=Padp ~in=/proj/cell ~out=cell" +
          std::to_string(k) + ".padded ~seed=" +
          std::to_string(9 + k));
      if (response.rfind("ok", 0) != 0) {
        std::fprintf(stderr, "submit: %s\n", response.c_str());
        return r;
      }
    }
  }

  // Dispatch phase: every RunOne is one claim -> execute -> commit;
  // its wall duration is the per-task dispatch latency.
  std::vector<int64_t> latencies;
  latencies.reserve(r.tasks);
  int64_t start = WallMicros();
  while (true) {
    int64_t t0 = WallMicros();
    auto ran = (*daemon)->RunOne();
    if (!ran.ok()) {
      std::fprintf(stderr, "run: %s\n", ran.status().ToString().c_str());
      return r;
    }
    if (!*ran) break;
    latencies.push_back(WallMicros() - t0);
  }
  double wall_s = (WallMicros() - start) / 1e6;

  r.done = static_cast<int>((*daemon)->queue().DoneCount());
  r.failed = static_cast<int>((*daemon)->queue().FailedCount());
  r.tasks_per_sec = wall_s > 0 ? r.done / wall_s : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    r.p50_ms = latencies[latencies.size() / 2] / 1000.0;
    r.p99_ms = latencies[latencies.size() * 99 / 100] / 1000.0;
  }
  AuditClaimLog((*daemon)->queue().claim_log(), sessions, &r.max_claim_gap,
                &r.starved_sessions);
  r.ok = r.done == r.tasks && r.failed == 0 && r.starved_sessions == 0;
  if (!(*daemon)->Shutdown().ok()) r.ok = false;
  return r;
}

// ---------------------------------------------------------------------------
// Reporting

void WriteJson(const std::string& path, const MultiProcessResult& mp,
               const std::vector<ScaleResult>& scales) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"daemon_scale\",\n";
  out << "  \"multiprocess\": {\"clients\": " << mp.clients
      << ", \"workers\": " << mp.workers << ", \"tasks\": " << mp.tasks
      << ", \"done\": " << mp.done << ", \"failed\": " << mp.failed
      << ", \"wall_ms\": " << mp.wall_ms << ", \"byte_identical\": "
      << (mp.byte_identical ? "true" : "false") << "},\n";
  out << "  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleResult& s = scales[i];
    out << "    {\"sessions\": " << s.sessions
        << ", \"tasks\": " << s.tasks << ", \"done\": " << s.done
        << ", \"failed\": " << s.failed << ", \"tasks_per_sec\": "
        << s.tasks_per_sec << ", \"p50_ms\": " << s.p50_ms
        << ", \"p99_ms\": " << s.p99_ms << ", \"max_claim_gap\": "
        << s.max_claim_gap << ", \"starved_sessions\": "
        << s.starved_sessions << "}"
        << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Regression floors enforced by tools/check_bench.py: paths into this
  // document, with min/max/eq constraints. The throughput floor is set
  // about 10x under the measured dev-machine rate so only a real
  // regression (or a pathological CI host) trips it.
  out << "  \"floors\": {\n"
      << "    \"multiprocess/clients\": {\"min\": 2},\n"
      << "    \"multiprocess/workers\": {\"min\": 2},\n"
      << "    \"multiprocess/failed\": {\"max\": 0},\n"
      << "    \"multiprocess/byte_identical\": {\"eq\": true},\n"
      << "    \"scales/*/failed\": {\"max\": 0},\n"
      << "    \"scales/*/starved_sessions\": {\"max\": 0},\n"
      << "    \"scales/*/tasks_per_sec\": {\"min\": 50}\n"
      << "  }\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_daemon_scale.json";
  std::string trace_path;
  std::string metrics_path;
  std::string papyrusd;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    }
    if (std::strcmp(argv[i], "--papyrusd") == 0 && i + 1 < argc) {
      papyrusd = argv[++i];
    }
  }
  if (papyrusd.empty()) {
    std::error_code ec;
    std::filesystem::path self =
        std::filesystem::weakly_canonical(argv[0], ec);
    papyrusd =
        (self.parent_path().parent_path() / "tools" / "papyrusd").string();
  }

  papyrus::bench::Banner(
      "F-scale", "the concurrent multi-client daemon transport "
      "(Unix-domain socket + shared-queue worker pool)",
      "many socket clients and worker processes drive one design "
      "history concurrently; dispatch stays fair across sessions and "
      "the resulting snapshots are byte-identical to a serial run.");

  bool ok = true;

  std::printf("multi-process: 2 socket clients -> papyrusd --socket, "
              "then 2 papyrusd --worker drain the shared queue\n");
  papyrus::bench::MultiProcessResult mp;
  if (!std::filesystem::exists(papyrusd)) {
    std::fprintf(stderr, "papyrusd binary not found at %s\n",
                 papyrusd.c_str());
    ok = false;
  } else {
    mp = papyrus::bench::RunMultiProcess(papyrusd);
    std::printf("  clients=%d workers=%d done=%d/%d failed=%d "
                "byte-identical=%s wall=%.1fms\n\n",
                mp.clients, mp.workers, mp.done, mp.tasks, mp.failed,
                mp.byte_identical ? "yes" : "NO", mp.wall_ms);
    if (!mp.ok) ok = false;
  }

  std::vector<int> scale_sessions = smoke ? std::vector<int>{100}
                                          : std::vector<int>{100, 1000,
                                                             10000};
  std::printf("scale matrix: fair dispatch, in-flight cap 1, "
              "64-session LRU\n");
  std::printf("%-10s %-8s %-11s %-9s %-9s %-9s %s\n", "sessions",
              "tasks", "tasks/sec", "p50(ms)", "p99(ms)", "max-gap",
              "starved");
  std::vector<papyrus::bench::ScaleResult> scales;
  papyrus::ManualClock clock(0);
  papyrus::obs::MetricsRegistry metrics;
  papyrus::obs::TraceRecorder trace(&clock);
  trace.set_enabled(true);
  for (int sessions : scale_sessions) {
    int per_session = sessions >= 10000 ? 1 : (sessions >= 1000 ? 2 : 3);
    // Only the largest run feeds the trace/metrics artifacts.
    bool last = sessions == scale_sessions.back();
    papyrus::bench::ScaleResult r = papyrus::bench::RunScale(
        sessions, per_session, last ? &trace : nullptr,
        last ? &clock : nullptr, last ? &metrics : nullptr);
    std::printf("%-10d %-8d %-11.1f %-9.2f %-9.2f %-9d %d\n",
                r.sessions, r.tasks, r.tasks_per_sec, r.p50_ms, r.p99_ms,
                r.max_claim_gap, r.starved_sessions);
    if (!r.ok) ok = false;
    scales.push_back(r);
  }
  std::printf("\n");

  if (!trace_path.empty()) {
    trace.Finish();
    papyrus::Status st = trace.WriteJson(trace_path);
    std::printf("trace: %s\n",
                st.ok() ? trace_path.c_str() : st.ToString().c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    out << metrics.ToJson();
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, mp, scales);
  }
  std::printf("concurrent clients + shared-queue workers, fair and "
              "byte-identical: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
