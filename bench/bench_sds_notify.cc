// Experiment F3.11 — reproduces Figure 3.11 (threads cooperating through
// synchronization data spaces) and the §3.3.4.2 claim that
// predicate-controlled notification flags "reduce the number of
// notification messages by imposing more specific notification-triggering
// conditions". A producer publishes a stream of layout versions with
// randomly-walking delay; consumers subscribe unfiltered vs. with a
// "only-if-faster" predicate, and we count delivered messages.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "base/clock.h"
#include "bench/bench_util.h"
#include "oct/database.h"
#include "sync/sds.h"

namespace papyrus::bench {
namespace {

using sync::NotifyPredicate;
using sync::SdsManager;
using sync::Space;

struct NotifyCounts {
  int64_t published = 0;
  int64_t unfiltered_delivered = 0;
  int64_t filtered_delivered = 0;
  int64_t suppressed = 0;
};

NotifyCounts RunScenario(int versions) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  SdsManager mgr(&db);
  (void)mgr.CreateSds("ALU");
  const int kProducer = 1;
  const int kUnfiltered = 2;
  const int kFiltered = 3;
  for (int t : {kProducer, kUnfiltered, kFiltered}) {
    (void)mgr.Register("ALU", t);
  }

  // First version: both consumers retrieve and subscribe.
  double delay = 10.0;
  auto v1 = db.CreateVersion("shifter", oct::Layout{.delay_ns = delay});
  (void)mgr.Move(*v1, Space::Thread(kProducer), Space::Sds("ALU"));
  (void)mgr.Move(*v1, Space::Sds("ALU"), Space::Thread(kUnfiltered),
                 /*notify=*/true);
  NotifyPredicate faster;
  faster.attribute = "delay";
  faster.op = NotifyPredicate::Op::kLess;
  faster.compare_to_old = true;
  (void)mgr.Move(*v1, Space::Sds("ALU"), Space::Thread(kFiltered),
                 /*notify=*/true, {faster});

  // The producer iterates; delay follows a deterministic random walk, so
  // only some versions improve on v1.
  NotifyCounts counts;
  uint64_t rng = 42;
  for (int i = 0; i < versions; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    delay += ((rng >> 33) % 200) / 100.0 - 1.05;  // drifts slowly down
    auto v = db.CreateVersion("shifter",
                              oct::Layout{.delay_ns = delay});
    (void)mgr.Move(*v, Space::Thread(kProducer), Space::Sds("ALU"));
    ++counts.published;
  }
  counts.unfiltered_delivered = mgr.TakeNotifications(kUnfiltered).size();
  counts.filtered_delivered = mgr.TakeNotifications(kFiltered).size();
  counts.suppressed = mgr.suppressed_notifications();
  return counts;
}

void PrintScenario() {
  std::printf("%-10s %-22s %-26s %-10s\n", "versions",
              "unfiltered notifications", "only-if-faster predicate",
              "suppressed");
  for (int n : {10, 50, 200, 1000}) {
    NotifyCounts c = RunScenario(n);
    std::printf("%-10ld %-22ld %-26ld %-10ld\n",
                static_cast<long>(c.published),
                static_cast<long>(c.unfiltered_delivered),
                static_cast<long>(c.filtered_delivered),
                static_cast<long>(c.suppressed));
  }
  std::printf("\n");
}

void BM_MoveWithPredicate(benchmark::State& state) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  SdsManager mgr(&db);
  (void)mgr.CreateSds("s");
  (void)mgr.Register("s", 1);
  (void)mgr.Register("s", 2);
  auto v1 = db.CreateVersion("x", oct::Layout{.delay_ns = 5});
  (void)mgr.Move(*v1, Space::Thread(1), Space::Sds("s"));
  NotifyPredicate faster;
  faster.attribute = "delay";
  (void)mgr.Move(*v1, Space::Sds("s"), Space::Thread(2), true, {faster});
  for (auto _ : state) {
    auto v = db.CreateVersion(
        "x", oct::Layout{.delay_ns = 4.0 + (state.iterations() % 3)});
    Status st = mgr.Move(*v, Space::Thread(1), Space::Sds("s"));
    benchmark::DoNotOptimize(st.ok());
  }
}
BENCHMARK(BM_MoveWithPredicate);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F3.11",
      "Figure 3.11 (threads, SDSs, and selective change notification)",
      "data sharing happens only through SDSs; predicate-filtered "
      "notification flags deliver a small, relevant subset of the "
      "unfiltered message stream.");
  papyrus::bench::PrintScenario();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
