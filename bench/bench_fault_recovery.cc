// Experiment F-fault — robustness overhead: the same design task is run
// on a healthy workstation network and under seeded chaos (host crashes
// with reboot, flaky migration, transient tool failures). Reported per
// crash rate: commit ratio, average makespan of committed runs (virtual
// time), steps lost/retried, and the makespan overhead relative to the
// fault-free baseline — the price of riding out environmental failure
// with bounded-backoff re-dispatch instead of aborting.

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "fault/fault_plan.h"
#include "oct/design_data.h"

namespace papyrus::bench {
namespace {

struct ChaosRun {
  bool committed = false;
  int64_t makespan_micros = 0;
  int64_t steps_lost = 0;
  int64_t steps_retried = 0;
  int64_t crashes = 0;
};

ChaosRun RunOnce(double crash_rate, uint64_t seed) {
  SessionOptions opts;
  opts.num_workstations = 6;
  opts.metadata_inference = false;
  Papyrus session(opts);
  fault::FaultPlanOptions fopt;
  fopt.seed = seed;
  fopt.host_crash_rate = crash_rate;
  fopt.horizon_micros = 1'500'000;  // cover the flow's full makespan
  fopt.reboot_delay_micros = 60'000;
  fopt.max_crashes_per_host = 2;
  fopt.spare_home = false;  // serial steps run at home; crash it too
  fopt.migration_flakiness = crash_rate > 0 ? 0.1 : 0.0;
  fopt.tool_transient_rate = crash_rate > 0 ? 0.05 : 0.0;
  fault::FaultPlan plan(fopt);
  (void)plan.Apply(&session.network(), &session.tools());

  auto behav = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});

  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*behav, *cmds};
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;
  inv.max_step_retries = 6;

  ChaosRun run;
  int64_t start = session.clock().NowMicros();
  auto rec = session.task_manager().Invoke(inv);
  run.makespan_micros = session.clock().NowMicros() - start;
  run.committed = rec.ok();
  run.crashes = session.network().total_crashes();
  if (rec.ok()) {
    run.steps_lost = rec->steps_lost;
    run.steps_retried = rec->steps_retried;
  }
  return run;
}

void PrintOverheadTable() {
  constexpr int kSeeds = 20;
  std::printf("Structure_Synthesis under seeded chaos "
              "(%d seeds per rate, 6 hosts):\n", kSeeds);
  std::printf("%-12s %-10s %-14s %-10s %-10s %s\n", "crash rate",
              "commits", "makespan(ms)", "lost", "retried", "overhead");
  double baseline_ms = 0.0;
  for (double rate : {0.0, 0.1, 0.3}) {
    int commits = 0;
    int64_t lost = 0, retried = 0;
    double committed_ms = 0.0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ChaosRun run = RunOnce(rate, seed);
      if (!run.committed) continue;
      ++commits;
      committed_ms += run.makespan_micros / 1000.0;
      lost += run.steps_lost;
      retried += run.steps_retried;
    }
    double avg_ms = commits > 0 ? committed_ms / commits : 0.0;
    if (rate == 0.0) baseline_ms = avg_ms;
    char rate_label[16];
    std::snprintf(rate_label, sizeof(rate_label), "%.0f%%", rate * 100);
    std::printf("%-12s %2d/%-7d %-14.1f %-10" PRId64 " %-10" PRId64
                " %+.1f%%\n",
                rate_label, commits, kSeeds, avg_ms, lost, retried,
                baseline_ms > 0
                    ? 100.0 * (avg_ms - baseline_ms) / baseline_ms
                    : 0.0);
  }
  std::printf("\n");
}

void BM_ChaosRun(benchmark::State& state) {
  double rate = state.range(0) / 100.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    ChaosRun run = RunOnce(rate, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.counters["crash_rate"] = rate;
}
BENCHMARK(BM_ChaosRun)->Arg(0)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F-fault", "the §4.3 failure model (host crashes, eviction races, "
      "transient tool failures)",
      "a committed task is outwardly identical to its fault-free run; "
      "environmental failures cost bounded retries and virtual-time "
      "backoff, not aborted design work.");
  papyrus::bench::PrintOverheadTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
