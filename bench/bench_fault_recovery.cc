// Experiment F-fault — robustness overhead: the same design task is run
// on a healthy workstation network and under seeded chaos (host crashes
// with reboot, flaky migration, transient tool failures). Reported per
// crash rate: commit ratio, average makespan of committed runs (virtual
// time), steps lost/retried, and the makespan overhead relative to the
// fault-free baseline — the price of riding out environmental failure
// with bounded-backoff re-dispatch instead of aborting.
//
// Flags:
//   --json F   write the per-rate summary (with a metrics-registry
//              snapshot of each rate's last run) to F (default
//              BENCH_fault_recovery.json; "" disables)

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "fault/fault_plan.h"
#include "oct/design_data.h"

namespace papyrus::bench {
namespace {

struct ChaosRun {
  bool committed = false;
  int64_t makespan_micros = 0;
  int64_t steps_lost = 0;
  int64_t steps_retried = 0;
  int64_t crashes = 0;
};

ChaosRun RunOnce(double crash_rate, uint64_t seed,
                 std::string* metrics_json = nullptr) {
  SessionOptions opts;
  opts.num_workstations = 6;
  opts.metadata_inference = false;
  Papyrus session(opts);
  fault::FaultPlanOptions fopt;
  fopt.seed = seed;
  fopt.host_crash_rate = crash_rate;
  fopt.horizon_micros = 1'500'000;  // cover the flow's full makespan
  fopt.reboot_delay_micros = 60'000;
  fopt.max_crashes_per_host = 2;
  fopt.spare_home = false;  // serial steps run at home; crash it too
  fopt.migration_flakiness = crash_rate > 0 ? 0.1 : 0.0;
  fopt.tool_transient_rate = crash_rate > 0 ? 0.05 : 0.0;
  fault::FaultPlan plan(fopt);
  plan.set_observability(session.observability());
  (void)plan.Apply(&session.network(), &session.tools());

  auto behav = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});

  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*behav, *cmds};
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;
  inv.max_step_retries = 6;

  ChaosRun run;
  int64_t start = session.clock().NowMicros();
  auto rec = session.task_manager().Invoke(inv);
  run.makespan_micros = session.clock().NowMicros() - start;
  run.committed = rec.ok();
  run.crashes = session.network().total_crashes();
  if (rec.ok()) {
    run.steps_lost = rec->steps_lost;
    run.steps_retried = rec->steps_retried;
  }
  if (metrics_json != nullptr) *metrics_json = session.metrics().ToJson();
  return run;
}

struct RateSummary {
  double rate = 0.0;
  int commits = 0;
  int seeds = 0;
  double avg_makespan_ms = 0.0;
  int64_t steps_lost = 0;
  int64_t steps_retried = 0;
  double overhead_pct = 0.0;
  std::string metrics_json;  // snapshot of the rate's last run
};

std::vector<RateSummary> PrintOverheadTable() {
  constexpr int kSeeds = 20;
  std::printf("Structure_Synthesis under seeded chaos "
              "(%d seeds per rate, 6 hosts):\n", kSeeds);
  std::printf("%-12s %-10s %-14s %-10s %-10s %s\n", "crash rate",
              "commits", "makespan(ms)", "lost", "retried", "overhead");
  double baseline_ms = 0.0;
  std::vector<RateSummary> summaries;
  for (double rate : {0.0, 0.1, 0.3}) {
    RateSummary sum;
    sum.rate = rate;
    sum.seeds = kSeeds;
    double committed_ms = 0.0;
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ChaosRun run = RunOnce(rate, seed, &sum.metrics_json);
      if (!run.committed) continue;
      ++sum.commits;
      committed_ms += run.makespan_micros / 1000.0;
      sum.steps_lost += run.steps_lost;
      sum.steps_retried += run.steps_retried;
    }
    double avg_ms = sum.commits > 0 ? committed_ms / sum.commits : 0.0;
    sum.avg_makespan_ms = avg_ms;
    if (rate == 0.0) baseline_ms = avg_ms;
    sum.overhead_pct = baseline_ms > 0
                           ? 100.0 * (avg_ms - baseline_ms) / baseline_ms
                           : 0.0;
    char rate_label[16];
    std::snprintf(rate_label, sizeof(rate_label), "%.0f%%", rate * 100);
    std::printf("%-12s %2d/%-7d %-14.1f %-10" PRId64 " %-10" PRId64
                " %+.1f%%\n",
                rate_label, sum.commits, kSeeds, avg_ms, sum.steps_lost,
                sum.steps_retried, sum.overhead_pct);
    summaries.push_back(std::move(sum));
  }
  std::printf("\n");
  return summaries;
}

void WriteJson(const std::string& path,
               const std::vector<RateSummary>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"fault_recovery\",\n  \"flow\": "
         "\"Structure_Synthesis\",\n  \"rates\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RateSummary& r = rows[i];
    out << "    {\"crash_rate\": " << r.rate
        << ", \"commits\": " << r.commits << ", \"seeds\": " << r.seeds
        << ", \"avg_makespan_ms\": " << r.avg_makespan_ms
        << ", \"steps_lost\": " << r.steps_lost
        << ", \"steps_retried\": " << r.steps_retried
        << ", \"overhead_pct\": " << r.overhead_pct
        << ",\n     \"metrics\": "
        << (r.metrics_json.empty() ? "{}" : r.metrics_json) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_ChaosRun(benchmark::State& state) {
  double rate = state.range(0) / 100.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    ChaosRun run = RunOnce(rate, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.counters["crash_rate"] = rate;
}
BENCHMARK(BM_ChaosRun)->Arg(0)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fault_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  papyrus::bench::Banner(
      "F-fault", "the §4.3 failure model (host crashes, eviction races, "
      "transient tool failures)",
      "a committed task is outwardly identical to its fault-free run; "
      "environmental failures cost bounded retries and virtual-time "
      "backoff, not aborted design work.");
  auto rows = papyrus::bench::PrintOverheadTable();
  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, rows);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
