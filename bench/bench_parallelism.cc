// Experiment F4-par — reproduces §4.3.2/§4.3.3: parallelism extraction
// over a network of workstations, and re-migration. A wide task template
// (16 independent synthesis branches) is executed on 1..16 simulated
// hosts; the makespan (virtual time) and speedup are reported. A second
// scenario makes remote owners leave mid-run and compares makespan with
// re-migration enabled vs disabled.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

std::string WideTemplate(int width) {
  std::string tdl = "task Wide {In} {";
  for (int i = 0; i < width; ++i) tdl += "O" + std::to_string(i) + " ";
  tdl += "}\n";
  for (int i = 0; i < width; ++i) {
    std::string o = "O" + std::to_string(i);
    tdl += "step S" + std::to_string(i) + " {In} {" + o + "} {wolfe -r " +
           std::to_string(2 + i % 3) + " -o " + o + " In}\n";
  }
  return tdl;
}

int64_t RunWide(int hosts, int width, bool remigration,
                bool owners_return_midway) {
  SessionOptions opts;
  opts.num_workstations = hosts;
  Papyrus session(opts);
  (void)session.AddTemplate(WideTemplate(width));
  (void)session.CheckInObject(
      "/in", oct::LogicNetwork{.num_inputs = 8,
                               .num_outputs = 8,
                               .minterms = 500,
                               .literals = 2000,
                               .levels = 8,
                               .seed = 7});
  if (owners_return_midway) {
    // Remote owners are present at dispatch time (steps start at home)
    // and leave shortly after — only re-migration can exploit them.
    for (int h = 1; h < hosts; ++h) {
      (void)session.network().SetOwnerActive(h, true);
      (void)session.network().ScheduleOwnerEvent(h, 200000, false);
    }
  }
  int t = session.CreateThread("t");
  activity::ActivityInvocation inv;
  inv.template_name = "Wide";
  inv.input_refs = {"/in"};
  for (int i = 0; i < width; ++i) {
    inv.output_names.push_back("o" + std::to_string(i));
  }
  // Remigration is a TaskInvocation field; route through the task manager
  // directly to control it.
  task::TaskInvocation tinv;
  tinv.template_name = "Wide";
  auto in = session.database().LatestVisible("/in");
  tinv.inputs = {*in};
  tinv.output_names = inv.output_names;
  tinv.remigration = remigration;
  int64_t start = session.clock().NowMicros();
  auto record = session.task_manager().Invoke(tinv);
  if (!record.ok()) return -1;
  (void)t;
  return session.clock().NowMicros() - start;
}

void PrintSpeedupCurve() {
  constexpr int kWidth = 16;
  std::printf("Speedup of a %d-way independent task (Sprite network, "
              "idle hosts available):\n", kWidth);
  std::printf("%-8s %-16s %-10s %s\n", "hosts", "makespan(ms)", "speedup",
              "efficiency");
  int64_t serial = RunWide(1, kWidth, true, false);
  for (int hosts : {1, 2, 4, 8, 16}) {
    int64_t makespan = RunWide(hosts, kWidth, true, false);
    double speedup = static_cast<double>(serial) / makespan;
    std::printf("%-8d %-16.1f %-10.2f %.0f%%\n", hosts, makespan / 1000.0,
                speedup, 100.0 * speedup / hosts);
  }
  std::printf("\n");
}

void PrintRemigration() {
  constexpr int kWidth = 16;
  constexpr int kHosts = 8;
  std::printf("Re-migration (§4.3.3): all remote owners active at "
              "dispatch, leaving at t=200ms:\n");
  int64_t without = RunWide(kHosts, kWidth, false, true);
  int64_t with = RunWide(kHosts, kWidth, true, true);
  std::printf("%-28s %-16s\n", "policy", "makespan(ms)");
  std::printf("%-28s %-16.1f\n", "no re-migration (stuck home)",
              without / 1000.0);
  std::printf("%-28s %-16.1f\n", "re-migration enabled", with / 1000.0);
  std::printf("improvement: %.2fx\n\n",
              static_cast<double>(without) / with);
}

void BM_WideTask(benchmark::State& state) {
  int hosts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    int64_t makespan = RunWide(hosts, 8, true, false);
    benchmark::DoNotOptimize(makespan);
  }
  state.counters["hosts"] = hosts;
}
BENCHMARK(BM_WideTask)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F4-par", "§4.3.2/§4.3.3 (parallelism extraction and re-migration)",
      "independent steps of one template overlap across idle "
      "workstations (speedup grows toward the fan-out width); "
      "re-migration rescues work stuck on the home node after "
      "owner-activity evictions.");
  papyrus::bench::PrintSpeedupCurve();
  papyrus::bench::PrintRemigration();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
