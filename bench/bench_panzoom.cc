// Experiment F5-panzoom — reproduces the §5.2 lazy pan/zoom log
// compression. Without the technique, every pan/zoom event must update the
// coordinates of every displayed history record (the canvas has no query
// facility); with it, events are compressed into one
// (translation, magnification) pair applied only when new records are
// placed. We validate the thesis' worked example and compare eager vs lazy
// cost over event sequences and display sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "activity/display.h"
#include "bench/bench_util.h"

namespace papyrus::bench {
namespace {

using activity::DisplayTransform;

struct Event {
  bool zoom;
  double a, b;
};

std::vector<Event> MakeEvents(int n) {
  std::vector<Event> events;
  uint64_t rng = 7;
  for (int i = 0; i < n; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    if (rng % 3 == 0) {
      events.push_back({true, ((rng >> 33) % 3 == 0) ? 0.5 : 2.0, 0});
    } else {
      events.push_back({false, static_cast<double>((rng >> 33) % 100) - 50,
                        static_cast<double>((rng >> 40) % 100) - 50});
    }
  }
  return events;
}

void VerifyThesisExample() {
  DisplayTransform t;
  t.Pan(50, 0);
  t.Zoom(2);
  t.Zoom(2);
  t.Pan(100, 0);
  t.Zoom(0.5);
  t.Pan(-20, 0);
  t.Pan(0, 50);
  std::printf("thesis example [50,0]{2}{2}[100,0]{0.5}[-20,0][0,50]\n"
              "  compressed translation: [%.0f, %.0f]  (paper: [65, 25])\n"
              "  accumulated magnification: %.0f      (paper: 2)\n\n",
              t.tx(), t.ty(), t.magnification());
}

/// Eager ablation: every event touches every record's coordinates.
int64_t EagerOps(const std::vector<Event>& events, int records) {
  std::vector<std::pair<double, double>> coords(records, {1.0, 2.0});
  int64_t ops = 0;
  for (const Event& e : events) {
    for (auto& [x, y] : coords) {
      if (e.zoom) {
        x *= e.a;
        y *= e.a;
      } else {
        x += e.a;
        y += e.b;
      }
      ++ops;
    }
  }
  benchmark::DoNotOptimize(coords.data());
  return ops;
}

/// Lazy: events logged (O(1) each); records transformed only when a new
/// record must be placed consistently (here: once at the end).
int64_t LazyOps(const std::vector<Event>& events, int records) {
  DisplayTransform t;
  int64_t ops = 0;
  for (const Event& e : events) {
    if (e.zoom) {
      t.Zoom(e.a);
    } else {
      t.Pan(e.a, e.b);
    }
    ++ops;
  }
  // Placement of one new record applies the compressed transform once.
  auto [x, y] = t.Apply(1.0, 2.0);
  benchmark::DoNotOptimize(x + y);
  (void)records;
  return ops + 1;
}

void PrintComparison() {
  std::printf("%-10s %-10s %-18s %-14s %s\n", "events", "records",
              "eager updates", "lazy updates", "ratio");
  for (auto [events_n, records] :
       {std::pair{100, 100}, {1000, 100}, {1000, 2000}, {5000, 5000}}) {
    auto events = MakeEvents(events_n);
    int64_t eager = EagerOps(events, records);
    int64_t lazy = LazyOps(events, records);
    std::printf("%-10d %-10d %-18ld %-14ld %.0fx\n", events_n, records,
                static_cast<long>(eager), static_cast<long>(lazy),
                static_cast<double>(eager) / lazy);
  }
  std::printf("\n");
}

void BM_EagerPanZoom(benchmark::State& state) {
  auto events = MakeEvents(static_cast<int>(state.range(0)));
  int records = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EagerOps(events, records));
  }
}
BENCHMARK(BM_EagerPanZoom)->Args({1000, 1000})->Args({5000, 5000});

void BM_LazyPanZoom(benchmark::State& state) {
  auto events = MakeEvents(static_cast<int>(state.range(0)));
  int records = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LazyOps(events, records));
  }
}
BENCHMARK(BM_LazyPanZoom)->Args({1000, 1000})->Args({5000, 5000});

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F5-panzoom", "§5.2 (lazy pan/zoom log compression)",
      "consecutive pans add, magnifications multiply, and translations "
      "separated by magnifications normalize by the inverse accumulated "
      "factor — so arbitrarily long event sequences compress to one "
      "(translation, magnification) pair applied per new record, not per "
      "event per record.");
  papyrus::bench::VerifyThesisExample();
  papyrus::bench::PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
