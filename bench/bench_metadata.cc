// Experiment F6 — reproduces Chapter 6 (Figures 6.1-6.5): history-based
// metadata inference over the augmented derivation graph. Measures
//  - type-inference / relationship-establishment throughput as histories
//    grow (the cost of the "incremental meta-data construction" pipeline);
//  - incremental propagated-attribute re-evaluation vs the recompute-all
//    ablation over configuration hierarchies of varying fan-out;
//  - inherit-list savings (values copied instead of re-measured);
//  - VOV-style retrace-plan extraction from the ADG.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "base/clock.h"
#include "bench/bench_util.h"
#include "meta/inference.h"
#include "meta/tsd.h"
#include "oct/database.h"

namespace papyrus::bench {
namespace {

using meta::MetadataEngine;
using meta::PropagationRule;
using meta::RelKind;
using meta::TsdRegistry;
using oct::Layout;
using oct::ObjectId;

struct Harness {
  ManualClock clock{0};
  oct::OctDatabase db{&clock};
  oct::AttributeStore attrs;
  TsdRegistry tsds;
  std::unique_ptr<MetadataEngine> engine;

  Harness() {
    meta::RegisterStandardTsds(&tsds);
    engine = std::make_unique<MetadataEngine>(&db, &attrs, &tsds);
    meta::RegisterStandardPropagationRules(engine.get());
  }

  ObjectId Observe(const std::string& tool, std::vector<ObjectId> inputs,
                   const std::string& out_name,
                   oct::DesignPayload payload) {
    auto out = db.CreateVersion(out_name, std::move(payload), tool);
    task::TaskHistoryRecord record;
    task::StepRecord step;
    step.tool = tool;
    step.invocation = tool;
    step.inputs = std::move(inputs);
    step.outputs = {*out};
    record.steps = {step};
    (void)engine->Observe(record);
    return *out;
  }

  /// Builds a two-level configuration hierarchy: `fan` leaf blocks merged
  /// into one chip via octflatten. Returns (chip, leaves).
  std::pair<ObjectId, std::vector<ObjectId>> BuildHierarchy(int fan) {
    std::vector<ObjectId> leaves;
    for (int i = 0; i < fan; ++i) {
      auto leaf = db.CreateVersion(
          "block" + std::to_string(i),
          Layout{.delay_ns = 1.0 + i % 7, .power_mw = 1.0 + i % 5});
      leaves.push_back(*leaf);
    }
    ObjectId chip = Observe("octflatten", leaves, "chip",
                            Layout{.delay_ns = 0.5, .power_mw = 2.0});
    return {chip, leaves};
  }
};

void PrintIncrementalComparison() {
  std::printf("propagated-attribute maintenance under component updates "
              "(total_power of a composite):\n");
  std::printf("%-8s %-26s %-26s\n", "fan-out",
              "incremental (evals/update)", "recompute-all (evals/update)");
  for (int fan : {2, 8, 32, 64}) {
    // Incremental: invalidation + one re-evaluation that reuses cached
    // component values.
    Harness h;
    auto [chip, leaves] = h.BuildHierarchy(fan);
    (void)h.engine->GetAttribute(chip, "total_power");  // warm
    int64_t evals0 =
        h.engine->lazy_evaluations() + h.engine->immediate_evaluations();
    constexpr int kUpdates = 10;
    for (int u = 0; u < kUpdates; ++u) {
      // A new version of leaf 0 arrives via a tool run.
      h.Observe("mizer", {leaves[0]}, leaves[0].name,
                Layout{.power_mw = 3.0 + u});
      (void)h.engine->GetAttribute(chip, "total_power");
    }
    double incremental =
        static_cast<double>(h.engine->lazy_evaluations() +
                            h.engine->immediate_evaluations() - evals0) /
        kUpdates;

    // Ablation: recompute every component attribute from payloads on
    // every update (no caching): fan evaluations each time.
    double recompute_all = fan + 1;

    std::printf("%-8d %-26.1f %-26.1f\n", fan, incremental, recompute_all);
  }
  std::printf("(incremental cost stays ~constant per update; the ablation "
              "grows with fan-out)\n\n");
}

void PrintInferenceSummary() {
  Harness h;
  auto [chip, leaves] = h.BuildHierarchy(16);
  (void)chip;
  std::printf("hierarchy of 16 blocks: %zu ADG edges, %zu relationships "
              "(%zu configuration), %ld immediate evals, %ld inherited "
              "values\n\n",
              h.engine->adg().edge_count(), h.engine->relationships().size(),
              h.engine->relationships()
                  .From(chip, RelKind::kConfiguration)
                  .size(),
              static_cast<long>(h.engine->immediate_evaluations()),
              static_cast<long>(h.engine->inherited_values()));
}

void BM_ObserveInvocation(benchmark::State& state) {
  Harness h;
  auto seed = h.db.CreateVersion("net", oct::LogicNetwork{.minterms = 50});
  ObjectId prev = *seed;
  int i = 0;
  for (auto _ : state) {
    prev = h.Observe("espresso", {prev}, "net",
                     oct::LogicNetwork{.minterms = 50 - (i++ % 40)});
    benchmark::DoNotOptimize(prev.version);
  }
  state.counters["rels_per_obs"] =
      static_cast<double>(h.engine->relationships().size()) /
      state.iterations();
}
BENCHMARK(BM_ObserveInvocation);

void BM_IncrementalPropagation(benchmark::State& state) {
  int fan = static_cast<int>(state.range(0));
  Harness h;
  auto [chip, leaves] = h.BuildHierarchy(fan);
  (void)h.engine->GetAttribute(chip, "total_power");
  int u = 0;
  for (auto _ : state) {
    h.Observe("mizer", {leaves[0]}, leaves[0].name,
              Layout{.power_mw = 3.0 + (u++ % 7)});
    auto v = h.engine->GetAttribute(chip, "total_power");
    benchmark::DoNotOptimize(v.ok());
  }
  state.counters["fan"] = fan;
}
BENCHMARK(BM_IncrementalPropagation)->Arg(2)->Arg(16)->Arg(64);

void BM_RetracePlan(benchmark::State& state) {
  int chain = static_cast<int>(state.range(0));
  Harness h;
  auto seed = h.db.CreateVersion("o0", oct::Layout{});
  ObjectId prev = *seed;
  for (int i = 1; i <= chain; ++i) {
    prev = h.Observe("mizer", {prev}, "o" + std::to_string(i), Layout{});
  }
  for (auto _ : state) {
    auto plan = h.engine->adg().RetracePlan("o0");
    benchmark::DoNotOptimize(plan.size());
  }
  state.counters["chain"] = chain;
}
BENCHMARK(BM_RetracePlan)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F6", "Chapter 6, Figures 6.1-6.5 (metadata inference from the ADG)",
      "object types, attributes and relationships are deduced from the "
      "recorded history without user input; incremental propagated-"
      "attribute re-evaluation beats recompute-all as hierarchies widen.");
  papyrus::bench::PrintInferenceSummary();
  papyrus::bench::PrintIncrementalComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
