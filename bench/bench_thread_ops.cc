// Experiment F3.8-3.10 — reproduces Figures 3.8/3.9/3.10: the thread
// combination operators (cascade, join, fork). Measures operator cost as
// thread size grows and verifies the workspace-union semantics, plus the
// §5.3 observation that cached thread states survive a *join* (connectors
// are frontiers) but must be recomputed after a *cascade*.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "activity/design_thread.h"
#include "activity/thread_ops.h"
#include "base/clock.h"
#include "bench/bench_util.h"

namespace papyrus::bench {
namespace {

using activity::DesignThread;
using activity::ThreadCombinator;

void Fill(DesignThread* t, const std::string& prefix, int n) {
  for (int i = 1; i <= n; ++i) {
    task::TaskHistoryRecord rec;
    rec.task_name = prefix;
    rec.inputs = i > 1 ? std::vector<oct::ObjectId>{{prefix, i - 1}}
                       : std::vector<oct::ObjectId>{};
    rec.outputs = {{prefix, i}};
    (void)t->Append(std::move(rec), t->current_cursor());
  }
}

void VerifySemantics() {
  ManualClock clock(0);
  DesignThread a(1, "shifter", &clock);
  DesignThread b(2, "arith", &clock);
  Fill(&a, "s", 64);
  Fill(&b, "r", 64);
  // Warm the caches in both threads.
  (void)a.DataScope();
  (void)b.DataScope();

  DesignThread joined(3, "alu", &clock);
  (void)ThreadCombinator::Join(a, a.FrontierCursors()[0], b,
                               b.FrontierCursors()[0], &joined);
  auto ws = joined.Workspace();
  std::printf("join:    %d + %d records -> %d nodes, workspace %zu objects "
              "(union, duplicates eliminated)\n",
              64, 64, joined.size(), ws.ok() ? ws->size() : 0);

  DesignThread cascaded(4, "chain", &clock);
  (void)ThreadCombinator::Cascade(a, a.FrontierCursors()[0], b, &cascaded);
  auto state = cascaded.ThreadState(cascaded.FrontierCursors()[0]);
  std::printf("cascade: trailing frontier's state sees all %zu objects of "
              "both streams\n",
              state.ok() ? state->size() : 0);

  DesignThread forked(5, "fork", &clock);
  (void)ThreadCombinator::Fork(a, 32, &forked);
  std::printf("fork@32: copies only the 32 ancestor records (%d nodes), "
              "cursor on the fork point\n\n",
              forked.size());
}

void BM_Join(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ManualClock clock(0);
  DesignThread a(1, "a", &clock);
  DesignThread b(2, "b", &clock);
  Fill(&a, "s", n);
  Fill(&b, "r", n);
  int id = 10;
  for (auto _ : state) {
    DesignThread dst(id++, "alu", &clock);
    Status st = ThreadCombinator::Join(a, a.FrontierCursors()[0], b,
                                       b.FrontierCursors()[0], &dst);
    benchmark::DoNotOptimize(st.ok());
  }
  state.counters["records"] = 2 * n;
}
BENCHMARK(BM_Join)->Arg(16)->Arg(128)->Arg(1024);

void BM_Cascade(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ManualClock clock(0);
  DesignThread a(1, "a", &clock);
  DesignThread b(2, "b", &clock);
  Fill(&a, "s", n);
  Fill(&b, "r", n);
  int id = 10;
  for (auto _ : state) {
    DesignThread dst(id++, "chain", &clock);
    Status st =
        ThreadCombinator::Cascade(a, a.FrontierCursors()[0], b, &dst);
    benchmark::DoNotOptimize(st.ok());
  }
  state.counters["records"] = 2 * n;
}
BENCHMARK(BM_Cascade)->Arg(16)->Arg(128)->Arg(1024);

void BM_ForkFromPoint(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ManualClock clock(0);
  DesignThread a(1, "a", &clock);
  Fill(&a, "s", n);
  int id = 10;
  for (auto _ : state) {
    DesignThread dst(id++, "fork", &clock);
    Status st = ThreadCombinator::Fork(a, n / 2, &dst);
    benchmark::DoNotOptimize(st.ok());
  }
  state.counters["records"] = n;
}
BENCHMARK(BM_ForkFromPoint)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F3.8-3.10",
      "Figures 3.8/3.9/3.10 (cascade, join, and fork of design threads)",
      "small-granularity threads combine into larger ones — workspaces "
      "union with duplicate elimination, the combined thread behaves as "
      "if built from scratch, and the sources evolve independently "
      "afterwards.");
  papyrus::bench::VerifySemantics();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
