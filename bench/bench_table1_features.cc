// Experiment T1 — regenerates Table I of the thesis: the comparison of
// process-support systems along the seven functional requirements of
// Chapter 1. The rows for the thirteen surveyed systems are the thesis'
// published assessments; the Papyrus row is *measured*: each capability is
// verified by a programmatic self-check against this implementation, so a
// regression in any subsystem flips the cell.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "activity/display.h"
#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

struct SystemRow {
  const char* name;
  // encapsulation, navigation, exploration, evolution, context,
  // cooperative, distributed
  const char* cells[7];
};

// The thesis' Table I entries for previous systems.
const SystemRow kSurveyedSystems[] = {
    {"Powerframe", {"Yes", "Yes", "No", "No", "Yes", "No", "No"}},
    {"VOV", {"Yes", "No", "No", "No", "No", "Yes", "Yes"}},
    {"Ulysses", {"Yes", "Yes", "Yes", "No", "No", "No", "No"}},
    {"Cadweld", {"Yes", "Yes", "Yes", "No", "No", "No", "No"}},
    {"Hercules", {"Yes", "Yes", "No", "No", "No", "No", "No"}},
    {"IDE", {"Yes", "Yes", "Some", "No", "No", "No", "Yes"}},
    {"MMS", {"Yes", "Yes", "No", "Yes", "No", "No", "Yes"}},
    {"IDEAS", {"Yes", "Yes", "No", "Yes", "Yes", "No", "No"}},
    {"Monitor", {"Yes", "Yes", "No", "No", "No", "No", "No"}},
    {"Siemens", {"Yes", "Yes", "Some", "No", "No", "No", "No"}},
    {"SoftBench", {"Yes", "Yes", "Some", "No", "Yes", "No", "No"}},
    {"PPA", {"Yes", "Yes", "No", "No", "No", "No", "No"}},
    {"POISE", {"Yes", "Yes", "Some", "No", "No", "No", "No"}},
};

/// Self-checks: each returns true when the corresponding Table I
/// capability demonstrably works in this implementation.
struct PapyrusChecks {
  bool tool_encapsulation = false;
  bool tool_navigation = false;
  bool design_exploration = false;
  bool data_evolution = false;
  bool context_management = false;
  bool cooperative_work = false;
  bool distributed_architecture = false;

  int RunAll() {
    int failures = 0;
    failures += Check(&PapyrusChecks::CheckEncapsulation,
                      &tool_encapsulation);
    failures += Check(&PapyrusChecks::CheckNavigation, &tool_navigation);
    failures += Check(&PapyrusChecks::CheckExploration,
                      &design_exploration);
    failures += Check(&PapyrusChecks::CheckEvolution, &data_evolution);
    failures += Check(&PapyrusChecks::CheckContext, &context_management);
    failures += Check(&PapyrusChecks::CheckCooperative, &cooperative_work);
    failures += Check(&PapyrusChecks::CheckDistributed,
                      &distributed_architecture);
    return failures;
  }

 private:
  int Check(bool (PapyrusChecks::*fn)(), bool* flag) {
    *flag = (this->*fn)();
    return *flag ? 0 : 1;
  }

  // Tool encapsulation: users express tasks, never tool command lines;
  // replacing a tool does not change the template.
  bool CheckEncapsulation() {
    Papyrus session;
    int t = session.CreateThread("t");
    return session.Invoke(t, "Create_Logic_Description", {}, {"x"}).ok() &&
           session.tools().size() >= 20;
  }

  // Tool navigation: the task manager leads through multi-step templates
  // (observer sees each step become ready with its default options).
  bool CheckNavigation() {
    Papyrus session;
    struct Obs : task::TaskObserver {
      int steps = 0;
      void OnStepReady(const std::string&, int, std::string*) override {
        ++steps;
      }
    } obs;
    int t = session.CreateThread("t");
    activity::ActivityInvocation inv;
    inv.template_name = "Create_Logic_Description";
    inv.output_names = {"x"};
    inv.observer = &obs;
    return session.activity().InvokeTask(t, inv).ok() && obs.steps == 2;
  }

  // Design exploration: rework to a previous design point restores the
  // context; alternatives stay isolated.
  bool CheckExploration() {
    Papyrus session;
    int t = session.CreateThread("t");
    auto p1 = session.Invoke(t, "Create_Logic_Description", {}, {"l"});
    if (!p1.ok()) return false;
    auto p2 = session.Invoke(t, "Standard_Cell_Place_and_Route", {"l"},
                             {"sc"});
    if (!p2.ok()) return false;
    if (!session.MoveCursor(t, *p1).ok()) return false;
    auto p3 = session.Invoke(t, "PLA_Generation", {"l"}, {"pla"});
    if (!p3.ok()) return false;
    auto thread = session.activity().GetThread(t);
    auto scope = (*thread)->DataScope();
    return scope.ok() && scope->count({"sc", 1}) == 0 &&
           scope->count({"pla", 1}) == 1;
  }

  // Recording of design evolution: operation-level history down to
  // individual steps, tied to the object versions they created.
  bool CheckEvolution() {
    Papyrus session;
    int t = session.CreateThread("t");
    auto p = session.Invoke(t, "Create_Logic_Description", {}, {"l"});
    if (!p.ok()) return false;
    auto thread = session.activity().GetThread(t);
    auto node = (*thread)->GetNode(*p);
    return node.ok() && (*node)->record.steps.size() == 2 &&
           session.metadata().adg().edge_count() == 2 &&
           session.metadata()
               .adg()
               .Producer({(*node)->record.outputs[0]})
               .ok();
  }

  // Context management: thread workspaces partition the data space; plain
  // names resolve only inside the invoking thread's scope.
  bool CheckContext() {
    Papyrus session;
    int a = session.CreateThread("a");
    int b = session.CreateThread("b");
    if (!session.Invoke(a, "Create_Logic_Description", {}, {"l"}).ok()) {
      return false;
    }
    // Thread b cannot see thread a's object by plain name.
    return session.Invoke(b, "Logic_Simulation", {"l"}, {})
        .status()
        .IsNotFound();
  }

  // Cooperative work: SDS-mediated sharing with change notification.
  bool CheckCooperative() {
    Papyrus session;
    int a = session.CreateThread("a");
    int b = session.CreateThread("b");
    if (!session.sds().CreateSds("s").ok()) return false;
    (void)session.sds().Register("s", a);
    (void)session.sds().Register("s", b);
    auto v1 = session.CheckInObject("/x", oct::Layout{.delay_ns = 5});
    auto v2 = session.database().CreateVersion("/x",
                                               oct::Layout{.delay_ns = 3});
    if (!v1.ok() || !v2.ok()) return false;
    using sync::Space;
    if (!session.sds().Move(*v1, Space::Thread(a), Space::Sds("s")).ok()) {
      return false;
    }
    if (!session.sds()
             .Move(*v1, Space::Sds("s"), Space::Thread(b), true)
             .ok()) {
      return false;
    }
    if (!session.sds().Move(*v2, Space::Thread(a), Space::Sds("s")).ok()) {
      return false;
    }
    return session.sds().PendingNotifications(b) == 1;
  }

  // Distributed architecture: independent steps of one task overlap on
  // several simulated workstations (wall-clock < serial sum).
  bool CheckDistributed() {
    SessionOptions opts;
    opts.num_workstations = 4;
    Papyrus session(opts);
    (void)session.AddTemplate(
        "task Fan {In} {A B C}\n"
        "step S1 {In} {A} {espresso In}\n"
        "step S2 {In} {B} {espresso In}\n"
        "step S3 {In} {C} {espresso In}\n");
    std::string in = MakeSpec(session, "spec", 32, 1);
    int t = session.CreateThread("t");
    auto pre = session.Invoke(t, "Create_Logic_Description", {}, {"l"});
    if (!pre.ok()) return false;
    int64_t before = session.clock().NowMicros();
    auto p = session.Invoke(t, "Fan", {"l"}, {"a", "b", "c"});
    if (!p.ok()) return false;
    int64_t elapsed = session.clock().NowMicros() - before;
    auto thread = session.activity().GetThread(t);
    auto node = (*thread)->GetNode(*p);
    int64_t serial = 0;
    for (const auto& step : (*node)->record.steps) {
      serial += step.completion_micros - step.dispatch_micros;
    }
    (void)in;
    return elapsed < serial;  // genuine overlap
  }
};

void PrintTable(const PapyrusChecks& checks) {
  const char* headers[7] = {"Encapsulation", "Navigation", "Exploration",
                            "Evolution",     "Context",    "Cooperative",
                            "Distributed"};
  std::printf("%-12s", "System");
  for (const char* h : headers) std::printf(" %-13s", h);
  std::printf("\n");
  for (const SystemRow& row : kSurveyedSystems) {
    std::printf("%-12s", row.name);
    for (const char* cell : row.cells) std::printf(" %-13s", cell);
    std::printf("\n");
  }
  const bool papyrus_cells[7] = {
      checks.tool_encapsulation, checks.tool_navigation,
      checks.design_exploration, checks.data_evolution,
      checks.context_management, checks.cooperative_work,
      checks.distributed_architecture};
  std::printf("%-12s", "Papyrus");
  for (bool ok : papyrus_cells) {
    std::printf(" %-13s", ok ? "Yes (checked)" : "FAILED");
  }
  std::printf("\n\n");
}

void BM_FeatureSelfChecks(benchmark::State& state) {
  for (auto _ : state) {
    PapyrusChecks checks;
    int failures = checks.RunAll();
    benchmark::DoNotOptimize(failures);
  }
}
BENCHMARK(BM_FeatureSelfChecks)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "T1", "Table I (Comparison of Process Support Systems)",
      "Papyrus is the only system fulfilling all seven functional "
      "requirements; every 'Yes' in its row is verified by a self-check.");
  papyrus::bench::PapyrusChecks checks;
  int failures = checks.RunAll();
  papyrus::bench::PrintTable(checks);
  if (failures != 0) {
    std::printf("SELF-CHECK FAILURES: %d\n", failures);
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
