// Experiment F-parallel — deterministic parallel step execution: the same
// wide fan-out flow (32 independent design steps over one input) runs at
// worker-pool sizes 1, 2, 4, and 8. Each step's tool payload wall-blocks
// for a few milliseconds — the way real CAD tools block on remote
// execution, NFS, or license servers — so the serial engine pays the full
// 32x block while the pool overlaps them. Every observable (task
// histories, output versions, virtual-time makespan) must be
// byte-identical at every pool size: the pool changes *where* payloads
// burn wall-clock, never *what* the flow computes.
//
// Flags:
//   --smoke    run the fan-out matrix only; exit non-zero unless
//              histories are byte-identical across pool sizes, the pool
//              actually executed speculative payloads at 4 workers, and
//              4 workers beat serial wall-clock
//   --json F   write the scenario table to F (default
//              BENCH_parallel_exec.json; "" disables)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "obs/metrics.h"
#include "oct/design_data.h"

namespace papyrus::bench {
namespace {

constexpr int kFanout = 32;
constexpr int kBlockMillis = 5;

struct ScenarioResult {
  std::string name;
  int workers = 1;
  int64_t steps_pool = 0;    // payloads executed by pool workers
  int64_t steps_inline = 0;  // payloads run inline on the engine thread
  int64_t virtual_micros = 0;
  int64_t wall_micros = 0;
  bool committed = false;
  std::string history;  // full serialized task history (determinism)
};

int64_t WallMicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// FNV-1a over the serialized history, reported in the JSON so two bench
/// runs can be compared without shipping the whole history text.
uint64_t Fingerprint(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Registers `crunch`: wall-blocks for kBlockMillis (modelling a tool
/// stuck on remote execution), then produces a seed-derived output. Pure
/// function of the run context — mandatory under speculative execution.
void RegisterCrunchTool(Papyrus& session) {
  cadtools::ToolDescriptor desc;
  desc.name = "crunch";
  desc.description = "wall-blocking deterministic bench tool";
  desc.base_cost_micros = 8000;
  desc.min_inputs = 1;
  desc.max_inputs = 1;
  desc.num_outputs = 1;
  session.tools().Register(std::make_unique<cadtools::Tool>(
      desc, [](const cadtools::ToolRunContext& ctx) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kBlockMillis));
        uint64_t h = ctx.seed;
        for (int i = 0; i < 1000; ++i) {
          h ^= h >> 33;
          h *= 0xff51afd7ed558ccdull;
        }
        cadtools::ToolRunResult res;
        res.outputs.push_back(oct::TextData{"crunch " + std::to_string(h)});
        return res;
      }));
}

std::string FanoutTemplate() {
  std::ostringstream out;
  out << "task Crunch_Fanout {In} {";
  for (int i = 1; i <= kFanout; ++i) out << (i > 1 ? " " : "") << 'O' << i;
  out << "}\n";
  for (int i = 1; i <= kFanout; ++i) {
    out << "step C" << i << " {In} {O" << i << "} {crunch In}\n";
  }
  return out.str();
}

std::string SerializeHistory(const task::TaskHistoryRecord& rec) {
  std::ostringstream out;
  out << rec.task_name << '|' << rec.invoke_micros << '|'
      << rec.commit_micros << '|' << rec.steps_elided << '\n';
  for (const task::StepRecord& s : rec.steps) {
    out << s.internal_id << '|' << s.step_name << '|' << s.invocation
        << '|' << s.dispatch_micros << '|' << s.completion_micros << '|'
        << s.host << '|' << s.exit_status << '|';
    for (const oct::ObjectId& id : s.inputs) out << id.ToString() << ',';
    out << '|';
    for (const oct::ObjectId& id : s.outputs) out << id.ToString() << ',';
    out << '\n';
  }
  return out.str();
}

/// One fresh session per pool size: the 32-wide fan-out, wall-clocked.
ScenarioResult RunFanout(int workers) {
  SessionOptions opts;
  opts.worker_threads = workers;
  Papyrus session(opts);
  RegisterCrunchTool(session);
  if (!session.AddTemplate(FanoutTemplate()).ok()) return {};
  auto in = session.database().CreateVersion(
      "crunch.in", oct::TextData{"fanout input"});
  if (!in.ok()) return {};

  task::TaskInvocation inv;
  inv.template_name = "Crunch_Fanout";
  inv.inputs = {*in};
  for (int i = 1; i <= kFanout; ++i) {
    inv.output_names.push_back("out" + std::to_string(i));
  }
  inv.seed = 42;

  ScenarioResult r;
  r.name = "fanout_w" + std::to_string(workers);
  r.workers = workers;
  int64_t virtual0 = session.clock().NowMicros();
  auto wall0 = std::chrono::steady_clock::now();
  auto rec = session.task_manager().Invoke(inv);
  r.wall_micros = WallMicrosSince(wall0);
  r.virtual_micros = session.clock().NowMicros() - virtual0;
  r.committed = rec.ok();
  if (rec.ok()) r.history = SerializeHistory(*rec);
  r.steps_pool =
      session.metrics().FindOrCreateCounter(obs::kExecStepsPool)->value();
  r.steps_inline =
      session.metrics().FindOrCreateCounter(obs::kExecStepsInline)->value();
  return r;
}

/// The Figure 4.3 Mosaico flow at 1 vs 4 workers: a mostly-serial
/// pipeline of fast mock tools — realistic context for the fan-out's
/// best case, and a second determinism witness.
ScenarioResult RunMosaico(int workers) {
  SessionOptions opts;
  opts.worker_threads = workers;
  Papyrus session(opts);
  auto cell = session.database().CreateVersion(
      "cell", oct::Layout{.num_cells = 40,
                          .area = 20000.0,
                          .style = "macro",
                          .seed = 7});
  task::TaskInvocation inv;
  inv.template_name = "Mosaico";
  inv.inputs = {*cell};
  inv.output_names = {"cell.layout", "cell.stats"};
  inv.seed = 7;

  ScenarioResult r;
  r.name = "mosaico_w" + std::to_string(workers);
  r.workers = workers;
  int64_t virtual0 = session.clock().NowMicros();
  auto wall0 = std::chrono::steady_clock::now();
  auto rec = session.task_manager().Invoke(inv);
  r.wall_micros = WallMicrosSince(wall0);
  r.virtual_micros = session.clock().NowMicros() - virtual0;
  r.committed = rec.ok();
  if (rec.ok()) r.history = SerializeHistory(*rec);
  r.steps_pool =
      session.metrics().FindOrCreateCounter(obs::kExecStepsPool)->value();
  r.steps_inline =
      session.metrics().FindOrCreateCounter(obs::kExecStepsInline)->value();
  return r;
}

void PrintTable(const std::vector<ScenarioResult>& rows) {
  std::printf("%-12s %-8s %-8s %-8s %-14s %-12s %s\n", "scenario",
              "workers", "pool", "inline", "virtual(ms)", "wall(ms)",
              "committed");
  for (const ScenarioResult& r : rows) {
    std::printf("%-12s %-8d %-8" PRId64 " %-8" PRId64 " %-14.1f %-12.1f "
                "%s\n",
                r.name.c_str(), r.workers, r.steps_pool, r.steps_inline,
                r.virtual_micros / 1000.0, r.wall_micros / 1000.0,
                r.committed ? "yes" : "NO");
  }
  std::printf("\n");
}

void WriteJson(const std::string& path,
               const std::vector<ScenarioResult>& rows, double speedup_4) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"parallel_exec\",\n  \"flow\": \"" << kFanout
      << "-step crunch fan-out + Mosaico\",\n"
      << "  \"block_millis_per_step\": " << kBlockMillis << ",\n"
      << "  \"wall_speedup_4_workers\": " << speedup_4
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioResult& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"workers\": " << r.workers
        << ", \"steps_pool\": " << r.steps_pool
        << ", \"steps_inline\": " << r.steps_inline
        << ", \"virtual_micros\": " << r.virtual_micros
        << ", \"wall_micros\": " << r.wall_micros
        << ", \"history_fingerprint\": \"" << std::hex
        << Fingerprint(r.history) << std::dec << "\", \"committed\": "
        << (r.committed ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      // Regression floors enforced by tools/check_bench.py. The 4-way
      // speedup floor sits well under the ~3.9x a healthy build shows.
      << "  \"floors\": {\n"
      << "    \"wall_speedup_4_workers\": {\"min\": 2.0},\n"
      << "    \"scenarios/*/committed\": {\"eq\": true}\n"
      << "  }\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_FanoutSerial(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioResult r = RunFanout(1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FanoutSerial)->Unit(benchmark::kMillisecond);

void BM_FanoutPool4(benchmark::State& state) {
  for (auto _ : state) {
    ScenarioResult r = RunFanout(4);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FanoutPool4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_parallel_exec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  papyrus::bench::Banner(
      "F-parallel", "deterministic parallel step execution (real worker "
      "pool under the virtual-time scheduler)",
      "running concurrently in-flight design steps on N worker threads "
      "cuts wall-clock while histories, versions, and virtual time stay "
      "byte-identical to serial execution.");

  std::vector<papyrus::bench::ScenarioResult> rows;
  for (int workers : {1, 2, 4, 8}) {
    rows.push_back(papyrus::bench::RunFanout(workers));
  }
  rows.push_back(papyrus::bench::RunMosaico(1));
  rows.push_back(papyrus::bench::RunMosaico(4));
  papyrus::bench::PrintTable(rows);

  const auto& serial = rows[0];
  const auto& pool4 = rows[2];
  double speedup_4 = static_cast<double>(serial.wall_micros) /
                     static_cast<double>(
                         pool4.wall_micros > 0 ? pool4.wall_micros : 1);
  std::printf("fan-out wall-clock at 4 workers: %.2fx over serial\n",
              speedup_4);

  bool deterministic = true;
  for (const auto& r : rows) {
    if (!r.committed) deterministic = false;
  }
  for (size_t i = 1; i < 4; ++i) {
    if (rows[i].history != serial.history) deterministic = false;
  }
  if (rows[5].history != rows[4].history) deterministic = false;
  std::printf("histories byte-identical across pool sizes: %s\n\n",
              deterministic ? "yes" : "NO");

  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, rows, speedup_4);
  }
  if (smoke) {
    // No tight wall-clock bound — CI machines are noisy and oversubscribed.
    // The pool must have genuinely executed speculative payloads and must
    // not be slower than serial; the determinism check is exact.
    bool ok = deterministic && pool4.steps_pool > 0 &&
              pool4.wall_micros < serial.wall_micros;
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
