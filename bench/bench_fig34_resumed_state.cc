// Experiment F3.4 — reproduces Figure 3.4: the resumed-task-state
// mechanism of the long-running macro place-and-route task. When detailed
// routing fails, a task with `ResumedStep` restarts right after placement
// (preserving floor-planning and placement work); the ablation restarts
// from scratch. We measure the simulated CPU work consumed until commit
// under both policies.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

// Ablation template: identical flow, but detailed routing restarts the
// whole task (explicit ResumedStep 0 = default database-transaction abort
// semantics, §3.3.2).
constexpr const char* kScratchVariant = R"TDL(
task Macro_PR_Scratch {Incell} {Outcell}
step Floor_Planning {Incell} {cell.fp} {atlas -i -o cell.fp Incell}
step {2 Placement} {cell.fp} {cell.place} {puppy -o cell.place cell.fp}
step Global_Routing {cell.place} {cell.gr} {mosaicoGR cell.place -ov cell.gr}
step Detailed_Routing {cell.gr} {Outcell} {mosaicoDR -d -o Outcell cell.gr} {ResumedStep 0}
)TDL";

/// Raises the global router effort after each restart so retries
/// eventually fit the wire budget; pins the detailed-routing budget.
class RetryObserver : public task::TaskObserver {
 public:
  void OnStepReady(const std::string& step, int restart_count,
                   std::string* options) override {
    if (step == "Global_Routing" && restart_count > 0) {
      *options = "-e effort" + std::to_string(restart_count);
    }
    if (step == "Detailed_Routing") {
      *options = "-d -maxwire 5200";
    }
  }
};

struct RunResult {
  bool committed = false;
  int restarts = 0;
  int64_t cpu_micros = 0;  // total simulated work across all step runs
  int steps_run = 0;
};

RunResult RunOnce(const std::string& tmpl, uint64_t seed) {
  SessionOptions opts;
  opts.num_workstations = 1;  // serialize: CPU work == elapsed time
  Papyrus session(opts);
  (void)session.AddTemplate(kScratchVariant);
  std::string in = MakeMacro(session, "chip", 30000.0, seed);
  int t = session.CreateThread("t");
  RetryObserver observer;
  activity::ActivityInvocation inv;
  inv.template_name = tmpl;
  inv.input_refs = {in};
  inv.output_names = {"out"};
  inv.observer = &observer;
  inv.max_restarts = 24;
  int64_t start = session.clock().NowMicros();
  auto point = session.activity().InvokeTask(t, inv);
  RunResult result;
  result.cpu_micros = session.clock().NowMicros() - start;
  result.steps_run =
      static_cast<int>(session.task_manager().steps_executed());
  if (point.ok()) {
    result.committed = true;
    auto thread = session.activity().GetThread(t);
    auto node = (*thread)->GetNode(*point);
    result.restarts = (*node)->record.restarts;
  }
  return result;
}

void RunComparison() {
  std::printf("%-6s %-10s | %-22s | %-22s | %s\n", "seed", "",
              "ResumedStep (paper)", "from-scratch (ablation)", "work saved");
  std::printf("%-6s %-10s | %-10s %-11s | %-10s %-11s |\n", "", "",
              "cpu(ms)", "steps", "cpu(ms)", "steps");
  int shown = 0;
  double total_saving = 0;
  for (uint64_t seed = 1; seed < 60 && shown < 6; ++seed) {
    RunResult paper = RunOnce("Macro_Place_and_Route", seed);
    if (!paper.committed || paper.restarts == 0) continue;  // no failure
    RunResult scratch = RunOnce("Macro_PR_Scratch", seed);
    if (!scratch.committed) continue;
    double saving =
        100.0 * (1.0 - static_cast<double>(paper.cpu_micros) /
                           static_cast<double>(scratch.cpu_micros));
    total_saving += saving;
    ++shown;
    std::printf("%-6lu restarts=%d | %-10.1f %-11d | %-10.1f %-11d | %+.1f%%\n",
                static_cast<unsigned long>(seed), paper.restarts,
                paper.cpu_micros / 1000.0, paper.steps_run,
                scratch.cpu_micros / 1000.0, scratch.steps_run, saving);
  }
  if (shown > 0) {
    std::printf("\nmean simulated-CPU saving from resumed task states: "
                "%.1f%% across %d failing seeds\n\n",
                total_saving / shown, shown);
  } else {
    std::printf("\nno failing seeds found — REPRODUCTION FAILED\n\n");
  }
}

void BM_ResumedStepRecovery(benchmark::State& state) {
  uint64_t seed = 1;
  for (auto _ : state) {
    RunResult r = RunOnce("Macro_Place_and_Route", seed++);
    benchmark::DoNotOptimize(r.committed);
  }
}
BENCHMARK(BM_ResumedStepRecovery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F3.4", "Figure 3.4 (the concept of resumed task state)",
      "restarting an aborted P&R task from the state after placement "
      "preserves the floor-planning/placement work; a from-scratch "
      "restart repeats it every time.");
  papyrus::bench::RunComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
