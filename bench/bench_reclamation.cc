// Experiment F5.7-5.9 — reproduces Figures 5.7/5.8/5.9: object
// reclamation against the storage overhead of single-assignment update.
// A long design history (iterative refinement rounds plus abandoned
// branches) is built with real tool runs; each §5.4 policy is applied in
// turn and the database bytes recovered are reported.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "storage/reclamation.h"

namespace papyrus::bench {
namespace {

struct History {
  Papyrus* session;
  int thread_id;
  std::vector<std::vector<activity::NodeId>> iteration_rounds;
};

/// Builds a history: one synthesis, `rounds` espresso/simulate refinement
/// iterations, a consumer of the last round, and `branches` abandoned
/// exploration branches.
void BuildHistory(Papyrus* session, int rounds, int branches,
                  History* out) {
  out->session = session;
  int t = session->CreateThread("refinement");
  out->thread_id = t;
  (void)session->AddTemplate(
      "task Minimize {In} {Out}\n"
      "step M {In} {Out} {espresso -o pleasure In}\n");
  (void)session->AddTemplate(
      "task Fold {In} {Out}\nstep F {In} {Out} {pleasure In}\n");
  auto base =
      session->Invoke(t, "Create_Logic_Description", {}, {"cell.logic"});
  if (!base.ok()) return;
  auto thread = session->activity().GetThread(t);

  // Iterative refinement: each round minimizes and simulates.
  for (int r = 0; r < rounds; ++r) {
    std::string out_name = "cell.min" + std::to_string(r);
    auto p1 = session->Invoke(t, "Minimize", {"cell.logic"}, {out_name});
    auto p2 = session->Invoke(t, "Logic_Simulation", {out_name}, {});
    if (p1.ok() && p2.ok()) {
      out->iteration_rounds.push_back({*p1, *p2});
    }
  }
  // The last round's output feeds downstream work.
  (void)session->Invoke(
      t, "Fold", {"cell.min" + std::to_string(rounds - 1)}, {"cell.fold"});
  activity::NodeId live_tip = (*thread)->current_cursor();

  // Abandoned branches from the base design point.
  for (int b = 0; b < branches; ++b) {
    (void)session->MoveCursor(t, *base);
    (void)session->Invoke(t, "Standard_Cell_Place_and_Route",
                          {"cell.logic"},
                          {"cell.sc" + std::to_string(b)});
  }
  (void)session->MoveCursor(t, live_tip);
  // Everything above happened "long ago".
  session->clock().AdvanceSeconds(1000000);
  (void)(*thread)->DataScope();  // keeps the live tip fresh
}

void RunPolicies() {
  Papyrus session;
  History history;
  BuildHistory(&session, /*rounds=*/6, /*branches=*/4, &history);
  auto thread = session.activity().GetThread(history.thread_id);
  auto& reclaimer = session.reclamation();

  int64_t bytes0 = session.database().TotalLiveBytes();
  int64_t versions0 = session.database().LiveVersionCount();
  std::printf("history built: %d records, %ld live versions, %ld bytes\n\n",
              (*thread)->size(), static_cast<long>(versions0),
              static_cast<long>(bytes0));
  std::printf("%-38s %-10s %-12s %-12s %s\n", "policy (applied in turn)",
              "records", "objects", "bytes", "live bytes left");

  auto report_line = [&](const char* name,
                         const storage::ReclamationReport& r) {
    std::printf("%-38s %-10d %-12d %-12ld %ld\n", name, r.records_affected,
                r.objects_reclaimed, static_cast<long>(r.bytes_reclaimed),
                static_cast<long>(session.database().TotalLiveBytes()));
  };

  // Figure 5.7: vertical aging forgets step-level details of old records.
  auto vertical = reclaimer.VerticalAge(
      *thread, session.clock().NowMicros() - 1000);
  report_line("vertical aging (Fig 5.7)", *vertical);

  // Figure 5.9: garbage-collect abandoned iteration rounds.
  auto gc =
      reclaimer.AbstractIterations(*thread, history.iteration_rounds);
  report_line("iteration abstraction (Fig 5.9)", *gc);

  // Dead-end branches.
  auto dead = reclaimer.PruneDeadBranches(
      *thread, /*unaccessed=*/500000ll * 1000000ll);
  report_line("dead-branch pruning (Fig 5.9)", *dead);

  // Figure 5.8: horizontal aging prunes the ancient linear prefix.
  auto horizontal = reclaimer.HorizontalAge(
      *thread, session.clock().NowMicros() - 1000);
  report_line("horizontal aging (Fig 5.8)", *horizontal);

  int64_t bytes1 = session.database().TotalLiveBytes();
  std::printf("\ntotal storage recovered: %ld of %ld bytes (%.0f%%), "
              "history kept: %d records\n\n",
              static_cast<long>(bytes0 - bytes1),
              static_cast<long>(bytes0),
              100.0 * (bytes0 - bytes1) / bytes0, (*thread)->size());
}

void BM_ReclamationPass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Papyrus session;
    History history;
    BuildHistory(&session, 6, 4, &history);
    auto thread = session.activity().GetThread(history.thread_id);
    state.ResumeTiming();
    auto& reclaimer = session.reclamation();
    (void)reclaimer.VerticalAge(*thread,
                                session.clock().NowMicros() - 1000);
    (void)reclaimer.AbstractIterations(*thread, history.iteration_rounds);
    (void)reclaimer.PruneDeadBranches(*thread, 500000ll * 1000000ll);
    benchmark::DoNotOptimize(reclaimer.total_bytes_reclaimed());
  }
}
BENCHMARK(BM_ReclamationPass)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F5.7-5.9", "Figures 5.7/5.8/5.9 (aging and garbage collection)",
      "history-based reclamation recovers most of the storage overhead "
      "of single-assignment update while preserving the relevant part of "
      "the design history (the live branch and the used iteration "
      "round).");
  papyrus::bench::RunPolicies();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
