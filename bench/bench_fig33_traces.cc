// Experiment F3.3 — reproduces Figure 3.3: one task template admits many
// legal history traces. A fork/join template is executed under varying
// simulated-duration conditions; every collected trace is checked for
// legality (dependency order respected) and the distinct completion
// orders are counted.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

// Figure 3.3(a): step0 forks into step1-step2 and step3-step4, joined by
// step5. Implemented with data dependencies through distinct objects.
constexpr const char* kForkJoin = R"TDL(
task ForkJoin {In} {Out}
step step0 {In} {s0} {bdsyn -o s0 In}
step step1 {s0} {s1a} {misII s0}
step step2 {s1a} {s2a} {espresso -o pleasure s1a}
step step3 {s0} {s1b} {misII -f script s0}
step step4 {s1b} {s2b} {espresso -o pleasure s1b}
step step5 {s2a s2b} {Out} {pleasure s2a}
)TDL";

struct TraceStats {
  int runs = 0;
  int legal = 0;
  std::set<std::string> distinct_orders;
};

TraceStats CollectTraces(int runs) {
  TraceStats stats;
  for (int i = 0; i < runs; ++i) {
    SessionOptions opts;
    opts.num_workstations = 4;
    Papyrus session(opts);
    (void)session.AddTemplate(kForkJoin);
    // Perturb relative branch speeds via host speeds so completion orders
    // differ between runs.
    (void)session.network().SetHostSpeed(1, 1.0 + 0.37 * (i % 5));
    (void)session.network().SetHostSpeed(2, 1.0 + 0.53 * (i % 3));
    std::string in = MakeSpec(session, "spec", 16 + i, i + 1);
    int t = session.CreateThread("t");
    auto point = session.Invoke(t, "ForkJoin", {in}, {"out"});
    if (!point.ok()) continue;
    ++stats.runs;
    auto thread = session.activity().GetThread(t);
    auto node = (*thread)->GetNode(*point);
    const auto& steps = (*node)->record.steps;
    // Legality: completion times non-decreasing (the trace is ordered by
    // completion, §3.3.2) and every dependency completes before its
    // consumer starts.
    bool legal = true;
    std::map<std::string, int64_t> done;
    for (size_t k = 0; k + 1 < steps.size(); ++k) {
      if (steps[k].completion_micros > steps[k + 1].completion_micros) {
        legal = false;
      }
    }
    for (const auto& step : steps) done[step.step_name] = 0;
    auto finish = [&](const char* name) {
      for (const auto& s : steps) {
        if (s.step_name == name) return s.completion_micros;
      }
      return int64_t{-1};
    };
    auto start = [&](const char* name) {
      for (const auto& s : steps) {
        if (s.step_name == name) return s.dispatch_micros;
      }
      return int64_t{-1};
    };
    const char* deps[][2] = {{"step0", "step1"}, {"step1", "step2"},
                             {"step0", "step3"}, {"step3", "step4"},
                             {"step2", "step5"}, {"step4", "step5"}};
    for (auto& d : deps) {
      if (finish(d[0]) > start(d[1])) legal = false;
    }
    if (legal) ++stats.legal;
    std::string order;
    for (const auto& s : steps) order += s.step_name + " ";
    stats.distinct_orders.insert(order);
  }
  return stats;
}

void BM_ForkJoinInvocation(benchmark::State& state) {
  for (auto _ : state) {
    SessionOptions opts;
    Papyrus session(opts);
    (void)session.AddTemplate(kForkJoin);
    std::string in = MakeSpec(session, "spec", 16, 1);
    int t = session.CreateThread("t");
    auto point = session.Invoke(t, "ForkJoin", {in}, {"out"});
    benchmark::DoNotOptimize(point.ok());
  }
}
BENCHMARK(BM_ForkJoinInvocation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F3.3", "Figure 3.3 (a task template and its history traces)",
      "different invocations of the same template leave different — but "
      "always legal — history traces, linearly ordered by completion "
      "time.");
  auto stats = papyrus::bench::CollectTraces(24);
  std::printf("runs: %d\nlegal traces: %d (expected: all)\n"
              "distinct completion orders observed: %zu (expected: > 1)\n\n",
              stats.runs, stats.legal, stats.distinct_orders.size());
  for (const std::string& order : stats.distinct_orders) {
    std::printf("  trace: %s\n", order.c_str());
  }
  std::printf("\n");
  if (stats.legal != stats.runs || stats.distinct_orders.size() < 2) {
    std::printf("REPRODUCTION FAILED\n");
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
