// Experiment S-engine — storage engine throughput and recovery: the
// whole-file snapshot the pre-engine daemon rewrote per task is replaced
// by a WAL group commit plus periodic compacted delta generations. This
// bench populates a session with a million design objects, then measures
// (a) raw WAL append/commit throughput, (b) per-task commit cost against
// the whole-file baseline, (c) cold-recovery time (manifest + WAL tail),
// (d) incremental compaction cost as a function of dirty shards, and
// (e) byte-identical crash recovery at worker-pool sizes 1 and 4.
//
// Flags:
//   --smoke    scale down (20k objects / 100k WAL records) and exit
//              non-zero unless every floor holds
//   --json F   write the summary to F (default BENCH_storage_engine.json;
//              "" disables)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/clock.h"
#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "oct/database.h"
#include "storage/engine.h"
#include "storage/wal.h"

namespace papyrus::bench {
namespace {

namespace fs = std::filesystem;

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("bench_engine_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

struct WalRow {
  int64_t records = 0;
  int commits = 0;
  double records_per_sec = 0;
  double mb_per_sec = 0;
};

/// Raw write-ahead-log throughput: `records` single-line bodies appended
/// and group-committed in `commits` batches (one fsync per batch).
WalRow BenchWal(int64_t records, int commits) {
  WalRow row;
  row.records = records;
  row.commits = commits;
  std::string dir = FreshDir("wal");
  storage::WriteAheadLog wal;
  auto opened = wal.Open((fs::path(dir) / "wal.log").string());
  if (!opened.ok()) return row;
  const int64_t per_batch = records / commits;
  const int64_t t0 = WallMicros();
  for (int c = 0; c < commits; ++c) {
    for (int64_t i = 0; i < per_batch; ++i) {
      wal.Append("object ~cell" + std::to_string(c * per_batch + i) +
                 " 1 ~bench 0 0 64 1 0 ~text%20payload");
    }
    (void)wal.Commit();
  }
  const double secs = static_cast<double>(WallMicros() - t0) / 1e6;
  row.records = per_batch * commits;
  row.records_per_sec = static_cast<double>(row.records) / secs;
  row.mb_per_sec =
      static_cast<double>(wal.stats().bytes_written) / 1e6 / secs;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return row;
}

/// Names that land in a chosen database shard (cell-name hashing).
std::vector<std::string> NamesInShard(int shard, int count,
                                      const char* prefix) {
  std::vector<std::string> names;
  for (int i = 0; names.size() < static_cast<size_t>(count); ++i) {
    std::string name = std::string(prefix) + std::to_string(i);
    if (oct::OctDatabase::ShardOf(name) == shard) names.push_back(name);
  }
  return names;
}

struct CommitRow {
  int64_t objects = 0;
  double populate_ms = 0;
  double compact_ms = 0;
  double baseline_save_ms = 0;  // one whole-file snapshot (the old
                                // per-task durability cost)
  double commit_ms = 0;         // one WAL group commit (the new cost)
  double speedup = 0;
  int engine_commits = 0;
};

struct RecoveryRow {
  double open_ms = 0;
  int64_t restored_objects = 0;
  bool ok = false;
};

struct IncrementalRow {
  int64_t full_bytes = 0;       // compaction cost, all 16 shards dirty
  int64_t one_shard_bytes = 0;  // compaction cost, 1 shard dirty
  double bytes_frac = 1.0;
  int64_t one_shard_sections = 0;
};

/// Phases (b)–(d) share one session directory: populate + compact, time
/// the whole-file baseline against WAL commits, reopen cold, then
/// measure dirty-shard-proportional compaction.
void BenchSession(int64_t objects, CommitRow* commit, RecoveryRow* recovery,
                  IncrementalRow* incremental) {
  std::string dir = FreshDir("session");
  commit->objects = objects;
  {
    SessionOptions options;
    options.standard_environment = false;  // raw storage, no tool sim
    Papyrus session(options);
    if (!session.OpenStorage(dir).ok()) return;

    int64_t t0 = WallMicros();
    for (int64_t i = 0; i < objects; ++i) {
      (void)session.database().CreateVersion(
          "cell" + std::to_string(i),
          oct::TextData{"payload " + std::to_string(i)});
    }
    (void)session.CommitWal();
    commit->populate_ms =
        static_cast<double>(WallMicros() - t0) / 1e3;
    t0 = WallMicros();
    if (!session.SaveGeneration().ok()) return;
    commit->compact_ms = static_cast<double>(WallMicros() - t0) / 1e3;

    // Baseline: the pre-engine daemon made a task durable by rewriting
    // the entire session as a whole-file snapshot.
    std::string baseline_dir = FreshDir("baseline");
    t0 = WallMicros();
    if (!session.SaveSession(baseline_dir).ok()) return;
    commit->baseline_save_ms =
        static_cast<double>(WallMicros() - t0) / 1e3;
    std::error_code ec;
    fs::remove_all(baseline_dir, ec);

    // Engine: a task's durability is its mutations' WAL group commit.
    const int kCommits = 64;
    commit->engine_commits = kCommits;
    t0 = WallMicros();
    for (int c = 0; c < kCommits; ++c) {
      for (int k = 0; k < 4; ++k) {
        (void)session.database().CreateVersion(
            "task" + std::to_string(c) + ".out" + std::to_string(k),
            oct::TextData{"task output"});
      }
      (void)session.CommitWal();
    }
    commit->commit_ms =
        static_cast<double>(WallMicros() - t0) / 1e3 / kCommits;
    if (commit->commit_ms > 0) {
      commit->speedup = commit->baseline_save_ms / commit->commit_ms;
    }
  }

  // Cold recovery: manifest sections plus the 64 commits' WAL tail.
  {
    SessionOptions options;
    options.standard_environment = false;
    Papyrus session(options);
    int64_t t0 = WallMicros();
    Status opened = session.OpenStorage(dir);
    recovery->open_ms = static_cast<double>(WallMicros() - t0) / 1e3;
    recovery->restored_objects = session.database().TotalVersionCount();
    recovery->ok = opened.ok() &&
                   recovery->restored_objects == objects + 64 * 4;

    // Incremental compaction: cost follows the dirty-shard count, not
    // the database size.
    if (!session.SaveGeneration().ok()) return;  // absorb the WAL tail
    const auto& stats = session.store()->save_stats();
    int64_t base_bytes = stats.bytes_written;

    for (const std::string& name :
         NamesInShard(0, 50, "one_shard_touch")) {
      (void)session.database().CreateVersion(name,
                                             oct::TextData{"touch"});
    }
    int64_t base_sections = stats.sections_written;
    if (!session.SaveGeneration().ok()) return;
    incremental->one_shard_bytes = stats.bytes_written - base_bytes;
    incremental->one_shard_sections =
        stats.sections_written - base_sections;
    base_bytes = stats.bytes_written;

    for (int shard = 0; shard < oct::OctDatabase::kShardCount; ++shard) {
      for (const std::string& name : NamesInShard(
               shard, 50 / oct::OctDatabase::kShardCount + 1,
               ("all_shard_touch" + std::to_string(shard)).c_str())) {
        (void)session.database().CreateVersion(name,
                                               oct::TextData{"touch"});
      }
    }
    if (!session.SaveGeneration().ok()) return;
    incremental->full_bytes = stats.bytes_written - base_bytes;
    if (incremental->full_bytes > 0) {
      incremental->bytes_frac =
          static_cast<double>(incremental->one_shard_bytes) /
          static_cast<double>(incremental->full_bytes);
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Crash identity at pool sizes 1 and 4

std::map<std::string, std::string> SectionFingerprint(Papyrus& session) {
  std::map<std::string, std::string> fp;
  if (!session.SaveGeneration().ok()) return fp;
  for (const auto& [name, file] : session.store()->CurrentSectionFiles()) {
    auto text = session.store()->ReadSection(name);
    fp[name] = text.ok() ? *text : "<unreadable>";
  }
  return fp;
}

void CrashWorkloadPhase1(Papyrus& session) {
  int thread = session.CreateThread("Shifter");
  (void)session.Invoke(thread, "Create_Logic_Description", {},
                       {"shifter.logic"});
  (void)session.CommitWal();
}

void CrashWorkloadPhase2(Papyrus& session) {
  (void)session.Invoke(1, "Standard_Cell_Place_and_Route",
                       {"shifter.logic"}, {"shifter.layout"});
  (void)session.CheckInObject("/bench/notes", oct::TextData{"run 100"});
  (void)session.CommitWal();
}

std::map<std::string, std::string> CrashReference(int workers) {
  SessionOptions options;
  options.worker_threads = workers;
  Papyrus session(options);
  if (!session.OpenStorage(FreshDir("ref_w" + std::to_string(workers)))
           .ok()) {
    return {};
  }
  CrashWorkloadPhase1(session);
  (void)session.SaveGeneration();
  CrashWorkloadPhase2(session);
  return SectionFingerprint(session);
}

std::map<std::string, std::string> CrashRecovered(int workers) {
  std::string dir = FreshDir("crash_w" + std::to_string(workers));
  {
    SessionOptions options;
    options.worker_threads = workers;
    Papyrus session(options);
    if (!session.OpenStorage(dir).ok()) return {};
    CrashWorkloadPhase1(session);
    (void)session.SaveGeneration();
    CrashWorkloadPhase2(session);
    // Kill the process mid-compaction, after the new section files land
    // but before the manifest swap: the WAL tail is authoritative.
    session.store()->set_crash_hook([](storage::SessionStore::CrashPoint at) {
      return at != storage::SessionStore::CrashPoint::kBeforeManifestSwap;
    });
    (void)session.SaveGeneration();
  }
  SessionOptions options;
  options.worker_threads = workers;
  Papyrus session(options);
  if (!session.OpenStorage(dir).ok()) return {};
  return SectionFingerprint(session);
}

struct CrashRow {
  bool w1_identical = false;
  bool w4_identical = false;
  bool cross_pool_identical = false;
};

CrashRow BenchCrashIdentity() {
  CrashRow row;
  auto ref1 = CrashReference(1);
  auto ref4 = CrashReference(4);
  auto rec1 = CrashRecovered(1);
  auto rec4 = CrashRecovered(4);
  row.w1_identical = !ref1.empty() && ref1 == rec1;
  row.w4_identical = !ref4.empty() && ref4 == rec4;
  row.cross_pool_identical = !ref1.empty() && ref1 == ref4;
  return row;
}

void WriteJson(const std::string& path, bool smoke, const WalRow& wal,
               const CommitRow& commit, const RecoveryRow& recovery,
               const IncrementalRow& incremental, const CrashRow& crash) {
  std::ofstream out(path, std::ios::trunc);
  char buf[512];
  out << "{\n  \"bench\": \"storage_engine\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"wal\": {\"records\": %" PRId64
                ", \"commits\": %d, \"records_per_sec\": %.0f, "
                "\"mb_per_sec\": %.1f},\n",
                wal.records, wal.commits, wal.records_per_sec,
                wal.mb_per_sec);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"commit\": {\"objects\": %" PRId64
                ", \"populate_ms\": %.1f, \"compact_ms\": %.1f, "
                "\"baseline_save_ms\": %.2f, \"commit_ms\": %.3f, "
                "\"engine_commits\": %d, \"speedup\": %.1f},\n",
                commit.objects, commit.populate_ms, commit.compact_ms,
                commit.baseline_save_ms, commit.commit_ms,
                commit.engine_commits, commit.speedup);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"recovery\": {\"open_ms\": %.1f, "
                "\"restored_objects\": %" PRId64 ", \"ok\": %s},\n",
                recovery.open_ms, recovery.restored_objects,
                recovery.ok ? "true" : "false");
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  \"incremental\": {\"one_shard_bytes\": %" PRId64
                ", \"full_bytes\": %" PRId64
                ", \"bytes_frac\": %.4f, \"one_shard_sections\": %" PRId64
                "},\n",
                incremental.one_shard_bytes, incremental.full_bytes,
                incremental.bytes_frac, incremental.one_shard_sections);
  out << buf;
  out << "  \"crash_identity\": {\"w1_identical\": "
      << (crash.w1_identical ? "true" : "false")
      << ", \"w4_identical\": "
      << (crash.w4_identical ? "true" : "false")
      << ", \"cross_pool_identical\": "
      << (crash.cross_pool_identical ? "true" : "false") << "},\n";
  out << "  \"floors\": {\n"
         "    \"commit/speedup\": {\"min\": 5},\n"
         "    \"recovery/ok\": {\"eq\": true},\n"
         "    \"incremental/bytes_frac\": {\"max\": 0.25},\n"
         "    \"crash_identity/w1_identical\": {\"eq\": true},\n"
         "    \"crash_identity/w4_identical\": {\"eq\": true},\n"
         "    \"crash_identity/cross_pool_identical\": {\"eq\": true}\n"
         "  }\n}\n";
}

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_storage_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  papyrus::bench::Banner(
      "S-engine", "the §5.3 crash-recovery/checkpoint cost model",
      "journaling a task's mutations costs a group commit, not a "
      "whole-session rewrite; recovery replays manifest + WAL tail "
      "byte-identically at any worker-pool size");

  const int64_t wal_records = smoke ? 100'000 : 10'000'000;
  const int64_t objects = smoke ? 20'000 : 1'000'000;

  auto wal = papyrus::bench::BenchWal(wal_records, smoke ? 10 : 100);
  std::printf("wal: %" PRId64 " records, %.0f rec/s, %.1f MB/s\n",
              wal.records, wal.records_per_sec, wal.mb_per_sec);

  papyrus::bench::CommitRow commit;
  papyrus::bench::RecoveryRow recovery;
  papyrus::bench::IncrementalRow incremental;
  papyrus::bench::BenchSession(objects, &commit, &recovery, &incremental);
  std::printf("commit: %" PRId64
              " objects, baseline %.2f ms/task vs engine %.3f ms/task "
              "(%.1fx)\n",
              commit.objects, commit.baseline_save_ms, commit.commit_ms,
              commit.speedup);
  std::printf("recovery: open %.1f ms, %" PRId64 " objects, %s\n",
              recovery.open_ms, recovery.restored_objects,
              recovery.ok ? "ok" : "FAILED");
  std::printf("incremental: 1 shard %" PRId64 " B vs 16 shards %" PRId64
              " B (frac %.4f)\n",
              incremental.one_shard_bytes, incremental.full_bytes,
              incremental.bytes_frac);

  auto crash = papyrus::bench::BenchCrashIdentity();
  std::printf("crash identity: w1 %s, w4 %s, cross-pool %s\n",
              crash.w1_identical ? "ok" : "FAIL",
              crash.w4_identical ? "ok" : "FAIL",
              crash.cross_pool_identical ? "ok" : "FAIL");

  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, smoke, wal, commit, recovery,
                              incremental, crash);
    std::printf("wrote %s\n", json_path.c_str());
  }
  const bool ok = commit.speedup >= 5 && recovery.ok &&
                  incremental.bytes_frac <= 0.25 && crash.w1_identical &&
                  crash.w4_identical && crash.cross_pool_identical;
  if (smoke) {
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
