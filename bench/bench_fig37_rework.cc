// Experiment F3.5-3.7 — reproduces Figures 3.5/3.6/3.7: the rework
// mechanism. Exploring an alternative by moving the current cursor is a
// (cheap) context switch; the ablation — a designer without rework — must
// re-run the upstream tool pipeline to recreate the same context before
// exploring. We sweep the number of explored alternatives and compare
// simulated CPU cost, and measure the wall-clock cost of cursor moves on
// large control streams.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

/// Explores `alternatives` PLA variants of one logic description.
/// With rework: one Create_Logic_Description, then for each alternative a
/// cursor move back + PLA_Generation.
/// Without rework (ablation): every alternative re-runs
/// Create_Logic_Description first (recreating the context by re-derivation).
int64_t Explore(int alternatives, bool use_rework) {
  SessionOptions opts;
  opts.num_workstations = 1;
  Papyrus session(opts);
  int t = session.CreateThread("explore");
  int64_t start = session.clock().NowMicros();
  if (use_rework) {
    auto base = session.Invoke(t, "Create_Logic_Description", {}, {"l"});
    if (!base.ok()) return -1;
    for (int i = 0; i < alternatives; ++i) {
      (void)session.MoveCursor(t, *base);
      auto p = session.Invoke(t, "PLA_Generation", {"l"},
                              {"pla" + std::to_string(i)});
      if (!p.ok()) return -1;
    }
  } else {
    for (int i = 0; i < alternatives; ++i) {
      auto base = session.Invoke(t, "Create_Logic_Description", {},
                                 {"l" + std::to_string(i)});
      if (!base.ok()) return -1;
      auto p = session.Invoke(t, "PLA_Generation",
                              {"l" + std::to_string(i)},
                              {"pla" + std::to_string(i)});
      if (!p.ok()) return -1;
    }
  }
  return session.clock().NowMicros() - start;
}

void PrintSweep() {
  std::printf("%-14s %-18s %-18s %s\n", "alternatives", "rework cpu(ms)",
              "re-derive cpu(ms)", "speedup");
  for (int n : {1, 2, 4, 8, 16}) {
    int64_t with_rework = Explore(n, true);
    int64_t without = Explore(n, false);
    std::printf("%-14d %-18.1f %-18.1f %.2fx\n", n, with_rework / 1000.0,
                without / 1000.0,
                static_cast<double>(without) / with_rework);
  }
  std::printf("\n");
}

/// Wall-clock cost of a rework (cursor move + data-scope computation) on
/// streams with many branches.
void BM_ReworkContextSwitch(benchmark::State& state) {
  int branches = static_cast<int>(state.range(0));
  ManualClock clock(0);
  activity::DesignThread thread(1, "t", &clock);
  // One base record, then `branches` branches of 4 records each.
  (void)thread.Append({}, activity::kInitialPoint);
  activity::NodeId base = thread.current_cursor();
  std::vector<activity::NodeId> tips;
  for (int b = 0; b < branches; ++b) {
    (void)thread.MoveCursor(base);
    for (int i = 0; i < 4; ++i) {
      task::TaskHistoryRecord rec;
      rec.outputs = {
          {"o" + std::to_string(b) + "_" + std::to_string(i), 1}};
      (void)thread.Append(std::move(rec), thread.current_cursor());
    }
    tips.push_back(thread.current_cursor());
  }
  size_t next = 0;
  for (auto _ : state) {
    (void)thread.MoveCursor(tips[next % tips.size()]);
    auto scope = thread.DataScope();
    benchmark::DoNotOptimize(scope.ok());
    ++next;
  }
  state.counters["branches"] = branches;
}
BENCHMARK(BM_ReworkContextSwitch)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F3.7", "Figures 3.5-3.7 (branching control streams and rework)",
      "moving the current cursor restores a previous design context at "
      "bookkeeping cost only; without rework each alternative must "
      "re-derive its context by re-running tools, so rework's advantage "
      "grows with the number of alternatives explored.");
  papyrus::bench::PrintSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
