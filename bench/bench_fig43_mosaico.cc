// Experiment F4.2-4.3 — runs the thesis' example templates verbatim:
// Structure_Synthesis (Figure 4.2) and the Mosaico macro-cell pipeline
// (Figure 4.3), including the $status-driven compaction fallback and the
// ResumedStep-based recovery when both compaction directions fail.
// Reports the outcome distribution over a population of macro cells.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/papyrus.h"

namespace papyrus::bench {
namespace {

class RouterRetry : public task::TaskObserver {
 public:
  void OnStepReady(const std::string& step, int restart_count,
                   std::string* options) override {
    if (step == "Channel_Routing" && restart_count > 0) {
      *options = "-d -r YACR" + std::to_string(restart_count + 1);
    }
  }
};

struct Outcomes {
  int direct = 0;      // horizontal compaction succeeded
  int fallback = 0;    // vertical compaction rescued it
  int restarted = 0;   // both failed, ResumedStep recovery succeeded
  int aborted = 0;     // gave up within the restart budget
  int total = 0;
};

Outcomes RunMosaicoPopulation(int cells) {
  Outcomes out;
  for (int i = 0; i < cells; ++i) {
    Papyrus session;
    std::string cell = MakeMacro(session, "macro", 22000.0 + 100.0 * i,
                                 static_cast<uint64_t>(i));
    int t = session.CreateThread("t");
    RouterRetry observer;
    activity::ActivityInvocation inv;
    inv.template_name = "Mosaico";
    inv.input_refs = {cell};
    inv.output_names = {"chip", "chip.stats"};
    inv.observer = &observer;
    inv.max_restarts = 6;
    auto point = session.activity().InvokeTask(t, inv);
    ++out.total;
    if (!point.ok()) {
      ++out.aborted;
      continue;
    }
    auto thread = session.activity().GetThread(t);
    auto node = (*thread)->GetNode(*point);
    if ((*node)->record.restarts > 0) {
      ++out.restarted;
    } else {
      bool fallback = false;
      for (const auto& step : (*node)->record.steps) {
        if (step.step_name == "Vertical_Compaction") fallback = true;
      }
      if (fallback) {
        ++out.fallback;
      } else {
        ++out.direct;
      }
    }
  }
  return out;
}

void PrintOutcomes() {
  Outcomes out = RunMosaicoPopulation(48);
  std::printf("Mosaico over %d macro cells (deterministic compaction "
              "difficulty; h-fail ~1/3, v-fail ~1/7 of those):\n",
              out.total);
  std::printf("  committed directly:                  %2d\n", out.direct);
  std::printf("  vertical-compaction fallback:        %2d\n", out.fallback);
  std::printf("  ResumedStep recovery (both failed):  %2d\n",
              out.restarted);
  std::printf("  aborted within restart budget:       %2d\n\n",
              out.aborted);
}

void CheckStructureSynthesis() {
  Papyrus session;
  std::string spec = MakeSpec(session, "cpu", 24, 3);
  auto cmd = session.CheckInObject("/bench/sim.cmd",
                                   oct::TextData{"watch all; run 64"});
  (void)cmd;
  int t = session.CreateThread("t");
  auto point = session.Invoke(t, "Structure_Synthesis",
                              {spec, "/bench/sim.cmd"},
                              {"cpu.layout", "cpu.stats"});
  if (!point.ok()) {
    std::printf("Structure_Synthesis FAILED: %s\n\n",
                point.status().ToString().c_str());
    return;
  }
  auto thread = session.activity().GetThread(t);
  auto node = (*thread)->GetNode(*point);
  std::printf("Structure_Synthesis (Figure 4.2) committed: %zu steps, "
              "incl. the in-line expanded Padp subtask;\n"
              "  Simulate honored its ControlDependency on "
              "Place_and_Route.\n\n",
              (*node)->record.steps.size());
}

void BM_Mosaico(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    Papyrus session;
    std::string cell = MakeMacro(session, "macro", 22000.0, seed++);
    int t = session.CreateThread("t");
    RouterRetry observer;
    activity::ActivityInvocation inv;
    inv.template_name = "Mosaico";
    inv.input_refs = {cell};
    inv.output_names = {"chip", "chip.stats"};
    inv.observer = &observer;
    inv.max_restarts = 6;
    auto point = session.activity().InvokeTask(t, inv);
    benchmark::DoNotOptimize(point.ok());
  }
}
BENCHMARK(BM_Mosaico)->Unit(benchmark::kMillisecond);

void BM_StructureSynthesis(benchmark::State& state) {
  uint64_t seed = 0;
  for (auto _ : state) {
    Papyrus session;
    std::string spec = MakeSpec(session, "cpu", 24, seed++);
    (void)session.CheckInObject("/bench/sim.cmd", oct::TextData{"run"});
    int t = session.CreateThread("t");
    auto point = session.Invoke(t, "Structure_Synthesis",
                                {spec, "/bench/sim.cmd"},
                                {"cpu.layout", "cpu.stats"});
    benchmark::DoNotOptimize(point.ok());
  }
}
BENCHMARK(BM_StructureSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F4.2-4.3",
      "Figures 4.2/4.3 (Structure_Synthesis and Mosaico TDL templates)",
      "the thesis' templates run verbatim: conditional flow on $status, "
      "control dependencies, subtask expansion, and programmable aborts "
      "that preserve the channel-definition/global-routing work.");
  papyrus::bench::CheckStructureSynthesis();
  papyrus::bench::PrintOutcomes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
