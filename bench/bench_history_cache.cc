// Experiment F5-cache — reproduces §5.3: data-scope computation with
// thread-state caching. The activity manager computes the data scope by
// backward traversal of the control stream; caching thread states at
// intermediate design points bounds the traversal. We sweep control-stream
// length and compare node visits and wall time for cache intervals 0
// (ablation: no caching), 8, and 32, and verify that insertion-triggered
// cache updates keep cached scopes correct.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "bench/bench_util.h"

namespace papyrus::bench {
namespace {

using activity::DesignThread;

void BuildStream(DesignThread* t, int records) {
  for (int i = 1; i <= records; ++i) {
    task::TaskHistoryRecord rec;
    rec.task_name = "t" + std::to_string(i);
    if (i > 1) rec.inputs = {{"x", i - 1}};
    rec.outputs = {{"x", i}};
    (void)t->Append(std::move(rec), t->current_cursor());
  }
}

/// The workload of §5.3: a designer keeps appending records and checking
/// the data scope after each append.
int64_t VisitsForWorkload(int records, int cache_interval) {
  ManualClock clock(0);
  DesignThread thread(1, "t", &clock);
  thread.set_cache_interval(cache_interval);
  for (int i = 1; i <= records; ++i) {
    task::TaskHistoryRecord rec;
    if (i > 1) rec.inputs = {{"x", i - 1}};
    rec.outputs = {{"x", i}};
    (void)thread.Append(std::move(rec), thread.current_cursor());
    (void)thread.DataScope();
  }
  return thread.traversal_visits();
}

void PrintVisitTable() {
  std::printf("node visits for N appends each followed by a data-scope "
              "query:\n");
  std::printf("%-10s %-16s %-16s %-16s %s\n", "records", "no cache",
              "interval=8", "interval=32", "reduction(8)");
  for (int n : {10, 100, 1000, 5000}) {
    int64_t none = VisitsForWorkload(n, 0);
    int64_t c8 = VisitsForWorkload(n, 8);
    int64_t c32 = VisitsForWorkload(n, 32);
    std::printf("%-10d %-16ld %-16ld %-16ld %.1fx\n", n,
                static_cast<long>(none), static_cast<long>(c8),
                static_cast<long>(c32),
                static_cast<double>(none) / c8);
  }
  std::printf("\n");
}

void VerifyCorrectness() {
  // Cached vs uncached scopes agree, including across a splice that
  // triggers the §5.3 cached-state update.
  ManualClock clock(0);
  DesignThread cached(1, "cached", &clock);
  cached.set_cache_interval(4);
  DesignThread plain(2, "plain", &clock);
  plain.set_cache_interval(0);
  for (DesignThread* t : {&cached, &plain}) BuildStream(t, 40);
  (void)cached.DataScope();
  bool ok = true;
  auto a = cached.DataScope();
  auto b = plain.DataScope();
  ok = ok && a.ok() && b.ok() && *a == *b;
  std::printf("cached scope == uncached scope over 40 records: %s\n\n",
              ok ? "yes" : "NO — REPRODUCTION FAILED");
}

void BM_DataScope(benchmark::State& state) {
  int records = static_cast<int>(state.range(0));
  int interval = static_cast<int>(state.range(1));
  ManualClock clock(0);
  DesignThread thread(1, "t", &clock);
  thread.set_cache_interval(interval);
  BuildStream(&thread, records);
  // Alternate between two frontier-adjacent points so every query after
  // the first exercises the steady-state path.
  for (auto _ : state) {
    auto scope = thread.DataScope();
    benchmark::DoNotOptimize(scope.ok());
    // Appending invalidates nothing but extends the tail.
    task::TaskHistoryRecord rec;
    rec.outputs = {{"y", static_cast<int>(state.iterations())}};
    (void)thread.Append(std::move(rec), thread.current_cursor());
  }
  state.counters["records"] = records;
  state.counters["interval"] = interval;
}
BENCHMARK(BM_DataScope)
    ->Args({100, 0})
    ->Args({100, 8})
    ->Args({1000, 0})
    ->Args({1000, 8})
    ->Args({1000, 32});

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "F5-cache", "§5.3 (thread-state caching in the activity manager)",
      "caching thread states at intermediate design points turns "
      "data-scope computation from O(stream length) per query into "
      "O(cache interval); insertions update downstream caches instead of "
      "discarding them.");
  papyrus::bench::PrintVisitTable();
  papyrus::bench::VerifyCorrectness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
