// Experiment TCL — micro-benchmarks of the embedded Tcl interpreter
// (§4.2.1), the substrate TDL is built on. The thesis' interpretive
// approach re-parses templates on every invocation, so interpreter
// throughput bounds task-manager overhead.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "tcl/interp.h"
#include "tcl/parser.h"

namespace papyrus::bench {
namespace {

void BM_SetCommand(benchmark::State& state) {
  tcl::Interp in;
  for (auto _ : state) {
    auto r = in.Eval("set a 27");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SetCommand);

void BM_VariableSubstitution(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval("set a 100; set b fg");
  for (auto _ : state) {
    auto r = in.Eval("set c Zs${a}d$b");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_VariableSubstitution);

void BM_CommandSubstitution(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval("set a 5");
  for (auto _ : state) {
    auto r = in.Eval("set b x[set a]y[set a]z");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_CommandSubstitution);

void BM_ExprEvaluation(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval("set a 4");
  for (auto _ : state) {
    auto r = in.Eval("expr {($a + 3) * 2 > 7 && !($a == 0)}");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ExprEvaluation);

void BM_ProcCall(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval("proc double {x} {return [expr $x * 2]}");
  for (auto _ : state) {
    auto r = in.Eval("double 21");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ProcCall);

void BM_RecursiveFactorial(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval(
      "proc fact {n} {if {$n <= 1} {return 1}; "
      "return [expr $n * [fact [expr $n - 1]]]}");
  for (auto _ : state) {
    auto r = in.Eval("fact 12");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_RecursiveFactorial);

void BM_WhileLoop(benchmark::State& state) {
  tcl::Interp in;
  for (auto _ : state) {
    auto r = in.Eval(
        "set i 0; set s 0; while {$i < 100} {set s [expr $s+$i]; incr i}; "
        "set s");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_WhileLoop);

void BM_ListOperations(benchmark::State& state) {
  tcl::Interp in;
  (void)in.Eval("set l {}");
  for (auto _ : state) {
    auto r = in.Eval(
        "lappend l item; llength $l; lindex $l 0; lrange $l 0 2");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ListOperations);

void BM_ParseMosaicoTemplate(benchmark::State& state) {
  // Parsing cost of the largest thesis template (re-parsed per
  // invocation under the interpretive approach).
  papyrus::Papyrus session;
  auto tmpl = session.templates().Find("Mosaico");
  const std::string& script = (*tmpl)->script;
  for (auto _ : state) {
    auto cmds = tcl::ParseScript(script);
    benchmark::DoNotOptimize(cmds.ok());
  }
  state.counters["bytes"] = static_cast<double>(script.size());
}
BENCHMARK(BM_ParseMosaicoTemplate);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  papyrus::bench::Banner(
      "TCL", "§4.2.1 (the embedded Tool Command Language substrate)",
      "TDL inherits Tcl's parser and control constructs; interpreter "
      "overhead is negligible next to simulated CAD-tool runtimes.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
