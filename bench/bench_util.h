#ifndef PAPYRUS_BENCH_BENCH_UTIL_H_
#define PAPYRUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "core/papyrus.h"

namespace papyrus::bench {

/// Prints the standard experiment banner: every bench binary regenerates
/// one table/figure of the thesis and states which.
inline void Banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("================================================================\n");
  std::printf("Experiment %s — reproduces %s\n", experiment, paper_artifact);
  std::printf("Paper claim: %s\n", claim);
  std::printf("================================================================\n\n");
}

/// Creates a behavioral spec object in the session database and returns
/// its plain name (already resolvable if `thread` checked it in).
inline std::string MakeSpec(Papyrus& session, const std::string& name,
                            int complexity, uint64_t seed) {
  std::string path = "/bench/" + name;
  (void)session.CheckInObject(
      path, oct::BehavioralSpec{8, 8, complexity, seed});
  return path;
}

inline std::string MakeMacro(Papyrus& session, const std::string& name,
                             double area, uint64_t seed) {
  std::string path = "/bench/" + name;
  (void)session.CheckInObject(path,
                              oct::Layout{.num_cells = 40,
                                          .area = area,
                                          .style = "macro",
                                          .seed = seed});
  return path;
}

}  // namespace papyrus::bench

#endif  // PAPYRUS_BENCH_BENCH_UTIL_H_
