// Experiment F-cas — shared content-addressed artifact store: a cold
// session runs a mixed synthesis + place-and-route workload and publishes
// every committed derivation into an on-disk CAS; a brand-new session
// (empty database, empty session cache — a different user, or the same
// one after a daemon restart) then reruns the identical workload and
// elides the steps through the shared store, at zero virtual cost.
// Reported: the fresh-session elision rate (the acceptance floor is
// 80%), blob-level dedup bytes, and byte-identity of histories and
// output payload hashes across worker-pool sizes (warm@1 == warm@4,
// cold@1 == cold@4) and across cold/warm (payload hashes).
//
// Flags:
//   --smoke    run the matrix only; exit non-zero if the fresh-session
//              elision rate is below 80%, dedup never triggered, or any
//              determinism check fails
//   --json F   write the report to F (default BENCH_cas.json;
//              "" disables)

#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "oct/design_data.h"
#include "storage/cas.h"

namespace papyrus::bench {
namespace {

namespace fs = std::filesystem;

std::string FreshStoreDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("bench_cas_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir.string();
}

struct RunResult {
  int64_t steps_executed = 0;
  int64_t steps_elided = 0;
  int64_t shared_hits = 0;
  int64_t virtual_micros = 0;
  bool committed = true;
  /// Deterministic rendering of every step record, for byte-identity
  /// comparison across pool sizes.
  std::string history;
  /// Content hashes of every committed task output, cold-vs-warm
  /// comparable (version ids differ; payload bytes must not).
  std::vector<std::string> payload_hashes;
  /// This session's view of the store counters (dedup/hits/misses are
  /// per-instance runtime state, so they must be read before close).
  storage::CasStats store;
};

/// The workload: three Structure_Synthesis flows (distinct seeds) over
/// shared inputs, plus one clean-seed Mosaico macro flow. `mosaico_seed`
/// must come from FindCleanMosaicoSeed so every step commits.
RunResult RunWorkload(Papyrus& session, uint64_t mosaico_seed) {
  RunResult r;
  auto spec = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});
  auto cell = session.database().CreateVersion(
      "cell", oct::Layout{.num_cells = 40,
                          .area = 20000.0,
                          .style = "macro",
                          .seed = mosaico_seed});
  int64_t executed0 = session.task_manager().steps_executed();
  int64_t elided0 = session.task_manager().steps_elided();
  int64_t virtual0 = session.clock().NowMicros();

  std::vector<task::TaskInvocation> invocations;
  for (uint64_t seed = 42; seed <= 44; ++seed) {
    task::TaskInvocation inv;
    inv.template_name = "Structure_Synthesis";
    inv.inputs = {*spec, *cmds};
    std::string base = "s" + std::to_string(seed);
    inv.output_names = {base + ".layout", base + ".stats"};
    inv.seed = seed;
    invocations.push_back(inv);
  }
  {
    task::TaskInvocation inv;
    inv.template_name = "Mosaico";
    inv.inputs = {*cell};
    inv.output_names = {"cell.layout", "cell.stats"};
    inv.seed = mosaico_seed;
    invocations.push_back(inv);
  }

  std::ostringstream history;
  for (const task::TaskInvocation& inv : invocations) {
    auto rec = session.task_manager().Invoke(inv);
    if (!rec.ok()) {
      r.committed = false;
      continue;
    }
    for (const task::StepRecord& s : rec->steps) {
      history << s.step_name << '|' << s.invocation << '|' << s.cache_hit
              << '|' << s.dispatch_micros << '|' << s.completion_micros
              << '|' << s.exit_status << '\n';
    }
    for (const oct::ObjectId& id : rec->outputs) {
      auto hash = session.database().ContentHash(id);
      r.payload_hashes.push_back(hash.ok() ? *hash : "<unhashable>");
    }
  }
  r.history = history.str();
  r.steps_executed = session.task_manager().steps_executed() - executed0;
  r.steps_elided = session.task_manager().steps_elided() - elided0;
  r.shared_hits = session.step_cache().stats().shared_hits;
  r.virtual_micros = session.clock().NowMicros() - virtual0;
  if (session.shared_store() != nullptr) {
    r.store = session.shared_store()->stats();
  }
  return r;
}

/// Failed steps are never cached, so the warm rerun would re-execute
/// them; pick a macro-cell seed whose cold Mosaico run is fully clean.
uint64_t FindCleanMosaicoSeed() {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Papyrus session;
    auto cell = session.database().CreateVersion(
        "cell", oct::Layout{.num_cells = 40,
                            .area = 20000.0,
                            .style = "macro",
                            .seed = seed});
    task::TaskInvocation inv;
    inv.template_name = "Mosaico";
    inv.inputs = {*cell};
    inv.output_names = {"cell.layout", "cell.stats"};
    inv.seed = seed;
    auto rec = session.task_manager().Invoke(inv);
    if (!rec.ok()) continue;
    bool clean = true;
    for (const auto& step : rec->steps) {
      if (step.exit_status != 0) clean = false;
    }
    if (clean) return seed;
  }
  return 1;
}

RunResult RunOnce(const std::string& store_dir, int workers,
                  uint64_t mosaico_seed) {
  SessionOptions options;
  options.shared_store_path = store_dir;
  options.worker_threads = workers;
  Papyrus session(options);
  return RunWorkload(session, mosaico_seed);
}

struct MatrixReport {
  RunResult cold1, cold4, warm1, warm4;
  double elision_rate = 0.0;
  storage::CasStats store;
  bool cold_pool_invariant = false;
  bool warm_pool_invariant = false;
  bool payload_hashes_warm_eq_cold = false;
  bool warm_zero_virtual_cost = false;
};

MatrixReport RunMatrix(uint64_t mosaico_seed) {
  MatrixReport m;
  // Two independent stores, cold-populated at pool sizes 1 and 4; the
  // warm runs go against the @1 store.
  std::string store1 = FreshStoreDir("pool1");
  std::string store4 = FreshStoreDir("pool4");
  m.cold1 = RunOnce(store1, /*workers=*/1, mosaico_seed);
  m.cold4 = RunOnce(store4, /*workers=*/4, mosaico_seed);
  m.warm1 = RunOnce(store1, /*workers=*/1, mosaico_seed);
  m.warm4 = RunOnce(store1, /*workers=*/4, mosaico_seed);

  int64_t warm_total = m.warm1.steps_executed + m.warm1.steps_elided;
  m.elision_rate = warm_total > 0
                       ? static_cast<double>(m.warm1.steps_elided) /
                             static_cast<double>(warm_total)
                       : 0.0;
  m.cold_pool_invariant = m.cold1.history == m.cold4.history &&
                          m.cold1.payload_hashes == m.cold4.payload_hashes;
  m.warm_pool_invariant = m.warm1.history == m.warm4.history &&
                          m.warm1.payload_hashes == m.warm4.payload_hashes;
  m.payload_hashes_warm_eq_cold =
      m.warm1.payload_hashes == m.cold1.payload_hashes;
  m.warm_zero_virtual_cost = m.warm1.virtual_micros == 0;

  // Shape from the last warm run's view; publish-time counters (bytes
  // written, dedup) from the cold run that populated the store.
  m.store = m.warm4.store;
  m.store.published = m.cold1.store.published;
  m.store.bytes_written = m.cold1.store.bytes_written;
  m.store.dedup_bytes = m.cold1.store.dedup_bytes;
  m.store.hits = m.warm1.store.hits + m.warm4.store.hits;
  m.store.misses = m.warm1.store.misses + m.warm4.store.misses;
  return m;
}

void PrintReport(const MatrixReport& m) {
  std::printf("%-18s %-10s %-9s %-12s %-12s\n", "scenario", "executed",
              "elided", "shared-hits", "virtual(ms)");
  struct Row {
    const char* name;
    const RunResult* r;
  } rows[] = {{"cold@1", &m.cold1},
              {"cold@4", &m.cold4},
              {"warm_fresh@1", &m.warm1},
              {"warm_fresh@4", &m.warm4}};
  for (const Row& row : rows) {
    std::printf("%-18s %-10" PRId64 " %-9" PRId64 " %-12" PRId64
                " %-12.1f%s\n",
                row.name, row.r->steps_executed, row.r->steps_elided,
                row.r->shared_hits, row.r->virtual_micros / 1000.0,
                row.r->committed ? "" : "  (NOT committed)");
  }
  std::printf(
      "\nfresh-session elision rate: %.1f%%  (floor 80%%)\n"
      "store: %" PRId64 " entries, %" PRId64 " blobs, %" PRId64
      " unique bytes; dedup %" PRId64 " bytes\n"
      "determinism: cold@1==cold@4 %s, warm@1==warm@4 %s, "
      "payload hashes warm==cold %s, warm virtual cost zero %s\n\n",
      m.elision_rate * 100.0, m.store.entries, m.store.blobs,
      m.store.total_bytes, m.store.dedup_bytes,
      m.cold_pool_invariant ? "yes" : "NO",
      m.warm_pool_invariant ? "yes" : "NO",
      m.payload_hashes_warm_eq_cold ? "yes" : "NO",
      m.warm_zero_virtual_cost ? "yes" : "NO");
}

void WriteJson(const std::string& path, const MatrixReport& m) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  auto scenario = [&](const char* name, const RunResult& r,
                      bool last = false) {
    out << "    {\"name\": \"" << name
        << "\", \"steps_executed\": " << r.steps_executed
        << ", \"steps_elided\": " << r.steps_elided
        << ", \"shared_hits\": " << r.shared_hits
        << ", \"virtual_micros\": " << r.virtual_micros
        << ", \"committed\": " << (r.committed ? "true" : "false") << "}"
        << (last ? "" : ",") << "\n";
  };
  out << "{\n  \"bench\": \"cas\",\n  \"flow\": "
         "\"3x Structure_Synthesis + Mosaico\",\n"
      << "  \"fresh_session_elision_rate\": " << m.elision_rate << ",\n"
      << "  \"scenarios\": [\n";
  scenario("cold@1", m.cold1);
  scenario("cold@4", m.cold4);
  scenario("warm_fresh@1", m.warm1);
  scenario("warm_fresh@4", m.warm4, /*last=*/true);
  out << "  ],\n  \"store\": {\"entries\": " << m.store.entries
      << ", \"blobs\": " << m.store.blobs
      << ", \"total_bytes\": " << m.store.total_bytes
      << ", \"bytes_written\": " << m.store.bytes_written
      << ", \"dedup_bytes\": " << m.store.dedup_bytes
      << ", \"hits\": " << m.store.hits
      << ", \"misses\": " << m.store.misses << "},\n"
      << "  \"determinism\": {"
      << "\"cold_pool_invariant\": "
      << (m.cold_pool_invariant ? "true" : "false")
      << ", \"warm_pool_invariant\": "
      << (m.warm_pool_invariant ? "true" : "false")
      << ", \"payload_hashes_warm_eq_cold\": "
      << (m.payload_hashes_warm_eq_cold ? "true" : "false")
      << ", \"warm_zero_virtual_cost\": "
      << (m.warm_zero_virtual_cost ? "true" : "false") << "},\n"
      // Regression floors enforced by tools/check_bench.py.
      << "  \"floors\": {\n"
      << "    \"fresh_session_elision_rate\": {\"min\": 1},\n"
      << "    \"scenarios/*/committed\": {\"eq\": true},\n"
      << "    \"determinism/*\": {\"eq\": true}\n"
      << "  }\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_StorePublish(benchmark::State& state) {
  std::string root = FreshStoreDir("bm_publish");
  auto store = storage::ContentStore::Open(root);
  if (!store.ok()) {
    state.SkipWithError("cannot open store");
    return;
  }
  storage::CasEntryMeta meta;
  meta.tool = "misII";
  meta.tool_version = "1";
  std::vector<storage::CasPublishOutput> outputs(1);
  outputs[0].name_hint = "cell.layout";
  outputs[0].bytes = std::string(512, 'x');
  int64_t n = 0;
  for (auto _ : state) {
    outputs[0].bytes[0] = static_cast<char>('a' + (n % 26));
    (void)(*store)->Publish("key-" + std::to_string(n++), meta, outputs);
  }
}
BENCHMARK(BM_StorePublish)->Unit(benchmark::kMicrosecond);

void BM_StoreFetchHit(benchmark::State& state) {
  std::string root = FreshStoreDir("bm_fetch");
  auto store = storage::ContentStore::Open(root);
  if (!store.ok()) {
    state.SkipWithError("cannot open store");
    return;
  }
  storage::CasEntryMeta meta;
  meta.tool = "misII";
  std::vector<storage::CasPublishOutput> outputs(1);
  outputs[0].name_hint = "cell.layout";
  outputs[0].bytes = std::string(512, 'x');
  (void)(*store)->Publish("hot", meta, outputs);
  for (auto _ : state) {
    auto hit = (*store)->Fetch("hot");
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_StoreFetchHit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_cas.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  papyrus::bench::Banner(
      "F-cas", "shared content-addressed artifact store (cross-session "
      "derivation reuse over ref-counted, deduplicated blobs)",
      "a fresh session replays a workload another session committed and "
      "elides >= 80% of its steps through the store, byte-identically at "
      "any worker-pool size.");

  uint64_t mosaico_seed = papyrus::bench::FindCleanMosaicoSeed();
  auto report = papyrus::bench::RunMatrix(mosaico_seed);
  papyrus::bench::PrintReport(report);

  bool ok = report.cold1.committed && report.warm1.committed &&
            report.elision_rate >= 0.80 && report.store.dedup_bytes > 0 &&
            report.cold_pool_invariant && report.warm_pool_invariant &&
            report.payload_hashes_warm_eq_cold &&
            report.warm_zero_virtual_cost;
  if (!json_path.empty()) papyrus::bench::WriteJson(json_path, report);
  if (smoke) {
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
