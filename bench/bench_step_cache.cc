// Experiment F-cache — history-based derived-object cache: the same
// design flow is rerun with 0%, 50%, and 100% of its inputs unchanged.
// A rerun step whose (tool, tool version, options, input versions) match
// a committed derivation is served from the cache: its recorded output
// versions are re-bound instead of re-running the tool. Reported per
// scenario: steps executed vs elided and the virtual-time makespan; the
// fully-unchanged rerun must execute zero tool processes.
//
// Flags:
//   --smoke    run the rerun matrix only; exit non-zero if the
//              100%-unchanged rerun executed any tool process
//   --json F   write the scenario table to F (default
//              BENCH_step_cache.json; "" disables)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/papyrus.h"
#include "oct/design_data.h"

namespace papyrus::bench {
namespace {

struct ScenarioResult {
  std::string name;
  int64_t steps_executed = 0;
  int64_t steps_elided = 0;
  int64_t virtual_micros = 0;  // makespan in simulated time
  int64_t wall_micros = 0;     // host-side cost of the Invoke call
  bool committed = false;
};

int64_t WallMicrosSince(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Runs one Structure_Synthesis invocation and measures the step-count
/// and makespan deltas it caused.
ScenarioResult RunScenario(Papyrus& session, const std::string& name,
                           const std::vector<oct::ObjectId>& inputs) {
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = inputs;
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;

  ScenarioResult r;
  r.name = name;
  int64_t executed0 = session.task_manager().steps_executed();
  int64_t elided0 = session.task_manager().steps_elided();
  int64_t virtual0 = session.clock().NowMicros();
  auto wall0 = std::chrono::steady_clock::now();
  auto rec = session.task_manager().Invoke(inv);
  r.wall_micros = WallMicrosSince(wall0);
  r.virtual_micros = session.clock().NowMicros() - virtual0;
  r.steps_executed = session.task_manager().steps_executed() - executed0;
  r.steps_elided = session.task_manager().steps_elided() - elided0;
  r.committed = rec.ok();
  return r;
}

/// The rerun matrix: one session, four invocations of the same flow with
/// progressively fewer unchanged inputs. The session's metrics snapshot
/// (cache hits/misses, elisions, virtual time saved) lands in
/// `metrics_json` for the JSON report.
std::vector<ScenarioResult> RunMatrix(std::string* metrics_json) {
  Papyrus session;
  auto spec1 = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds1 = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});

  std::vector<ScenarioResult> results;
  results.push_back(RunScenario(session, "cold", {*spec1, *cmds1}));
  results.push_back(
      RunScenario(session, "rerun_unchanged_100pct", {*spec1, *cmds1}));

  // 50%: one of the two task inputs changes. Only the simulation step
  // consumes the command file, so the synthesis backbone stays cached.
  auto cmds2 = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 200"});
  results.push_back(
      RunScenario(session, "rerun_changed_50pct", {*spec1, *cmds2}));

  // 0%: the behavioral spec changes, which cascades through every
  // derived intermediate — nothing can be served from history.
  auto spec2 = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 78});
  results.push_back(
      RunScenario(session, "rerun_changed_0pct", {*spec2, *cmds2}));
  if (metrics_json != nullptr) *metrics_json = session.metrics().ToJson();
  return results;
}

/// Full Mosaico pipeline rerun (Figure 4.3): the macro-cell flow has a
/// $status-driven compaction fallback, so pick a seed whose cold run
/// succeeds on the first compaction attempt — failed steps are never
/// cached, and a deterministic clean run makes the rerun fully elidable.
std::vector<ScenarioResult> RunMosaico() {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Papyrus session;
    auto cell = session.database().CreateVersion(
        "cell", oct::Layout{.num_cells = 40,
                            .area = 20000.0,
                            .style = "macro",
                            .seed = seed});
    task::TaskInvocation inv;
    inv.template_name = "Mosaico";
    inv.inputs = {*cell};
    inv.output_names = {"cell.layout", "cell.stats"};
    inv.seed = seed;

    ScenarioResult cold;
    cold.name = "mosaico_cold";
    int64_t virtual0 = session.clock().NowMicros();
    auto wall0 = std::chrono::steady_clock::now();
    auto rec = session.task_manager().Invoke(inv);
    cold.wall_micros = WallMicrosSince(wall0);
    cold.virtual_micros = session.clock().NowMicros() - virtual0;
    cold.committed = rec.ok();
    if (!rec.ok()) continue;
    bool clean = true;
    for (const auto& step : rec->steps) {
      if (step.exit_status != 0) clean = false;
    }
    if (!clean) continue;  // fallback branch ran; try the next seed
    cold.steps_executed = session.task_manager().steps_executed();
    cold.steps_elided = session.task_manager().steps_elided();

    ScenarioResult warm;
    warm.name = "mosaico_rerun";
    int64_t executed0 = session.task_manager().steps_executed();
    int64_t elided0 = session.task_manager().steps_elided();
    virtual0 = session.clock().NowMicros();
    wall0 = std::chrono::steady_clock::now();
    auto rec2 = session.task_manager().Invoke(inv);
    warm.wall_micros = WallMicrosSince(wall0);
    warm.virtual_micros = session.clock().NowMicros() - virtual0;
    warm.steps_executed =
        session.task_manager().steps_executed() - executed0;
    warm.steps_elided = session.task_manager().steps_elided() - elided0;
    warm.committed = rec2.ok();
    return {cold, warm};
  }
  return {};
}

void PrintTable(const std::vector<ScenarioResult>& rows) {
  std::printf("%-26s %-10s %-9s %-14s %-12s %s\n", "scenario", "executed",
              "elided", "virtual(ms)", "wall(us)", "committed");
  for (const ScenarioResult& r : rows) {
    std::printf("%-26s %-10" PRId64 " %-9" PRId64 " %-14.1f %-12" PRId64
                " %s\n",
                r.name.c_str(), r.steps_executed, r.steps_elided,
                r.virtual_micros / 1000.0, r.wall_micros,
                r.committed ? "yes" : "NO");
  }
  std::printf("\n");
}

void WriteJson(const std::string& path,
               const std::vector<ScenarioResult>& rows,
               double virtual_speedup, const std::string& metrics_json) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"step_cache\",\n  \"flow\": "
         "\"Structure_Synthesis + Mosaico\",\n"
      << "  \"virtual_speedup_unchanged_rerun\": " << virtual_speedup
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScenarioResult& r = rows[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"steps_executed\": " << r.steps_executed
        << ", \"steps_elided\": " << r.steps_elided
        << ", \"virtual_micros\": " << r.virtual_micros
        << ", \"wall_micros\": " << r.wall_micros << ", \"committed\": "
        << (r.committed ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": "
      << (metrics_json.empty() ? "{}" : metrics_json) << ",\n"
      // Regression floors enforced by tools/check_bench.py. A healthy
      // unchanged rerun elides everything, so its virtual speedup is
      // the cold flow's full virtual cost (~1e6); 1000 is far below.
      << "  \"floors\": {\n"
      << "    \"virtual_speedup_unchanged_rerun\": {\"min\": 1000},\n"
      << "    \"scenarios/*/committed\": {\"eq\": true}\n"
      << "  }\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

void BM_ColdFlow(benchmark::State& state) {
  for (auto _ : state) {
    Papyrus session;
    auto spec = session.database().CreateVersion(
        "spec", oct::BehavioralSpec{8, 8, 12, 77});
    auto cmds = session.database().CreateVersion(
        "sim.cmd", oct::TextData{"run 100"});
    ScenarioResult r = RunScenario(session, "cold", {*spec, *cmds});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ColdFlow)->Unit(benchmark::kMillisecond);

void BM_CachedRerun(benchmark::State& state) {
  Papyrus session;
  auto spec = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});
  (void)RunScenario(session, "cold", {*spec, *cmds});
  for (auto _ : state) {
    ScenarioResult r = RunScenario(session, "warm", {*spec, *cmds});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CachedRerun)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace papyrus::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_step_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  papyrus::bench::Banner(
      "F-cache", "history-based derived-object reuse (the ADG as a memo "
      "table, §6.3 applied to re-execution)",
      "rerunning a committed flow with unchanged inputs executes zero "
      "tool processes; partially-changed inputs re-run only the "
      "downstream cone of the change.");

  std::string metrics_json;
  auto rows = papyrus::bench::RunMatrix(&metrics_json);
  auto mosaico = papyrus::bench::RunMosaico();
  rows.insert(rows.end(), mosaico.begin(), mosaico.end());
  papyrus::bench::PrintTable(rows);

  const auto& cold = rows[0];
  const auto& unchanged = rows[1];
  double speedup = static_cast<double>(cold.virtual_micros) /
                   static_cast<double>(unchanged.virtual_micros > 0
                                           ? unchanged.virtual_micros
                                           : 1);
  std::printf("100%%-unchanged rerun: %" PRId64 " executed, %" PRId64
              " elided, virtual-time speedup %.0fx\n\n",
              unchanged.steps_executed, unchanged.steps_elided, speedup);

  if (!json_path.empty()) {
    papyrus::bench::WriteJson(json_path, rows, speedup, metrics_json);
  }

  if (smoke) {
    bool ok = unchanged.committed && unchanged.steps_executed == 0 &&
              unchanged.steps_elided > 0;
    if (!mosaico.empty()) {
      ok = ok && mosaico.back().committed &&
           mosaico.back().steps_executed == 0;
    }
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
