// Quickstart: create a Papyrus session, run a synthesis task inside a
// design thread, and look at the recorded history.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "activity/display.h"
#include "core/papyrus.h"

int main() {
  // A session wires together the design database, the simulated
  // workstation network, the mock OCT tool suite, the thesis' task
  // templates, and the metadata inference engine.
  papyrus::Papyrus session;

  // Design work happens inside a design thread: the context of one
  // logical design entity.
  int thread = session.CreateThread("Quickstart");

  // Invoke a task template. Create_Logic_Description runs an interactive
  // editor step followed by the bdsyn behavioral-to-logic translator.
  auto p1 = session.Invoke(thread, "Create_Logic_Description",
                           /*input_refs=*/{}, {"counter.logic"});
  if (!p1.ok()) {
    std::printf("task failed: %s\n", p1.status().ToString().c_str());
    return 1;
  }

  // Chain a second task: the plain name "counter.logic" resolves to the
  // latest version visible in the thread's data scope.
  auto p2 = session.Invoke(thread, "Standard_Cell_Place_and_Route",
                           {"counter.logic"}, {"counter.layout"});
  if (!p2.ok()) {
    std::printf("task failed: %s\n", p2.status().ToString().c_str());
    return 1;
  }

  // The activity manager recorded everything.
  auto thread_ptr = session.activity().GetThread(thread);
  std::printf("%s\n",
              papyrus::activity::RenderControlStream(**thread_ptr).c_str());
  std::printf("%s\n",
              papyrus::activity::RenderDataScope(*thread_ptr).c_str());

  // The metadata engine inferred the layout's type and attributes from
  // the history — no user-supplied metadata anywhere.
  auto layout = session.database().LatestVisible("counter.layout");
  auto type = session.metadata().TypeOf(*layout);
  auto area = session.metadata().GetAttribute(*layout, "area");
  std::printf("inferred: %s is a %s object, area = %s lambda^2\n",
              layout->ToString().c_str(), type->c_str(), area->c_str());

  // The per-step history of the last task:
  auto node = (*thread_ptr)->GetNode(*p2);
  std::printf("\nsteps of %s:\n", (*node)->record.task_name.c_str());
  for (const auto& step : (*node)->record.steps) {
    std::printf("  [host %d, t=%ld..%ldus] %s\n", step.host,
                static_cast<long>(step.dispatch_micros),
                static_cast<long>(step.completion_micros),
                step.invocation.c_str());
  }
  return 0;
}
