// Cooperative group work (Figures 3.10 / 3.11): two designers develop a
// shifter and an arithmetic unit in separate threads, share results
// through a synchronization data space with predicate-filtered change
// notification, and finally join their threads into one ALU thread.
//
// Build & run:  ./build/examples/team_design

#include <cstdio>

#include "activity/display.h"
#include "core/papyrus.h"

using papyrus::sync::NotifyPredicate;
using papyrus::sync::Space;

int main() {
  papyrus::Papyrus session;

  // Randy designs the shifter; Mary designs the arithmetic unit.
  int shifter = session.CreateThread("Shifter (Randy)");
  int arith = session.CreateThread("Arithmetic-Unit (Mary)");

  // A shared synchronization data space for the ALU project.
  (void)session.sds().CreateSds("ALU-project");
  (void)session.sds().Register("ALU-project", shifter);
  (void)session.sds().Register("ALU-project", arith);

  // Both develop their module down to a padded layout.
  for (auto [thread, prefix] :
       {std::pair{shifter, std::string("shifter")},
        std::pair{arith, std::string("arith")}}) {
    auto p1 = session.Invoke(thread, "Create_Logic_Description", {},
                             {prefix + ".logic"});
    auto p2 = session.Invoke(thread, "Standard_Cell_Place_and_Route",
                             {prefix + ".logic"}, {prefix + ".layout"});
    if (!p1.ok() || !p2.ok()) {
      std::printf("%s flow failed\n", prefix.c_str());
      return 1;
    }
  }

  // Randy publishes the shifter layout; the thread workspace stays
  // private — only what is MOVEd to the SDS becomes visible to others.
  auto shifter_v1 = session.database().LatestVisible("shifter.layout");
  (void)session.sds().Move(*shifter_v1, Space::Thread(shifter),
                           Space::Sds("ALU-project"));

  // Mary retrieves it, subscribing to future versions — but only if they
  // are *faster* than the one she has (predicate-filtered notification).
  NotifyPredicate faster;
  faster.attribute = "delay";
  faster.op = NotifyPredicate::Op::kLess;
  faster.compare_to_old = true;
  (void)session.sds().Move(*shifter_v1, Space::Sds("ALU-project"),
                           Space::Thread(arith), /*notify=*/true,
                           {faster});

  // Randy reworks his shifter: a second, different layout version.
  auto randy = session.activity().GetThread(shifter);
  auto frontier = (*randy)->FrontierCursors();
  auto logic_point = (*randy)->nodes().begin()->first;
  (void)session.MoveCursor(shifter, logic_point);
  auto p3 = session.Invoke(shifter, "PLA_Generation", {"shifter.logic"},
                           {"shifter.layout"});
  if (!p3.ok()) {
    std::printf("rework failed: %s\n", p3.status().ToString().c_str());
    return 1;
  }
  auto shifter_v2 = session.database().LatestVisible("shifter.layout");
  (void)session.sds().Move(*shifter_v2, Space::Thread(shifter),
                           Space::Sds("ALU-project"));

  // Did Mary get notified? Only if v2 is faster than v1.
  auto d1 = session.metadata().GetAttribute(*shifter_v1, "delay");
  auto d2 = session.metadata().GetAttribute(*shifter_v2, "delay");
  std::printf("shifter delay: v1=%sns  v2=%sns\n", d1->c_str(),
              d2->c_str());
  auto notes = session.sds().TakeNotifications(arith);
  if (notes.empty()) {
    std::printf("Mary was NOT notified (new version is not faster; "
                "%ld suppressed)\n",
                static_cast<long>(
                    session.sds().suppressed_notifications()));
  } else {
    std::printf("Mary was notified: %s superseded %s in SDS \"%s\"\n",
                notes[0].new_version.ToString().c_str(),
                notes[0].old_version.ToString().c_str(),
                notes[0].sds.c_str());
  }

  // Mary lets Randy watch her thread read-only (thread import).
  (void)session.sds().ImportThread(/*importer=*/shifter,
                                   /*exporter=*/arith);
  std::printf("Randy can read Mary's thread: %s\n",
              session.sds().CanRead(shifter, arith) ? "yes" : "no");
  std::printf("Mary can read Randy's thread: %s\n",
              session.sds().CanRead(arith, shifter) ? "yes" : "no");

  // Both modules done: join the threads at their frontiers into the ALU
  // thread and continue integration there.
  auto mary = session.activity().GetThread(arith);
  auto alu = session.activity().JoinThreads(
      shifter, (*randy)->FrontierCursors()[0], arith,
      (*mary)->FrontierCursors()[0], "ALU");
  if (!alu.ok()) {
    std::printf("join failed: %s\n", alu.status().ToString().c_str());
    return 1;
  }
  auto alu_thread = session.activity().GetThread(*alu);
  std::printf("\n%s\n",
              papyrus::activity::RenderControlStream(**alu_thread).c_str());
  std::printf("joined workspace:\n%s\n",
              papyrus::activity::RenderDataScope(*alu_thread).c_str());
  (void)frontier;
  return 0;
}
