// The Figure 4.3 Mosaico macro-cell place-and-route flow, demonstrating
// TDL's control mechanisms: the $status-driven compaction fallback and the
// programmable abort that preserves completed work across restarts.
//
// Build & run:  ./build/examples/mosaico_flow
//
// Headless observability capture (the CI trace-smoke job runs this):
//   ./build/examples/mosaico_flow --trace trace.json --metrics metrics.json
// The trace is Chrome trace_event JSON — open it at https://ui.perfetto.dev.
//
// --jobs N runs concurrently in-flight design steps on N real worker
// threads (task/step_executor.h); the flow's output is byte-identical at
// any N.
//
// --daemon ROOT drives the same flow as a thin papyrusd wire client
// instead: macros are checked in and Mosaico tasks submitted over the
// line protocol, journaled into the crash-surviving queue under ROOT,
// drained, and reported task by task. No observer rides over the wire,
// so the YACR option-retry is absent — the mode demonstrates the
// queue's retry/terminal-state path, not the interactive one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/strings.h"
#include "core/papyrus.h"
#include "lint/diagnostics.h"
#include "server/daemon.h"
#include "server/wire.h"

namespace {

/// Prints every step as it completes and retries the channel router with
/// a different algorithm after each restart — the thesis' "try different
/// parameters with the following design steps" workflow.
class ConsoleObserver : public papyrus::task::TaskObserver {
 public:
  void OnStepReady(const std::string& step, int restart_count,
                   std::string* options) override {
    if (step == "Channel_Routing" && restart_count > 0) {
      *options = "-d -r YACR" + std::to_string(restart_count + 1);
      std::printf("  >> retrying %s with options \"%s\"\n", step.c_str(),
                  options->c_str());
    }
  }
  void OnStepCompleted(const papyrus::task::StepRecord& rec) override {
    std::printf("  [host %d  t=%8ldus  status=%d] %s\n", rec.host,
                static_cast<long>(rec.completion_micros), rec.exit_status,
                rec.invocation.c_str());
    if (rec.exit_status != 0) {
      std::printf("     !! %s\n", rec.message.c_str());
    }
  }
  void OnLintDiagnostic(const papyrus::lint::Diagnostic& d) override {
    // Pre-flight findings stream here before the first step dispatches.
    std::printf("  lint: %s\n", d.ToString().c_str());
  }
  void OnTaskRestarted(const std::string& task, int resumed) override {
    std::printf("  ** %s restarted from internal command %d "
                "(work before it is preserved)\n",
                task.c_str(), resumed + 1);
  }
};

/// The --daemon mode: the identical chip-assembly workload, but phrased
/// entirely in wire-protocol lines against a daemon rooted at `root`.
/// Returns 0 when every submitted task reaches a terminal state.
int RunAsDaemonClient(const std::string& root,
                      const papyrus::SessionOptions& session_options) {
  papyrus::server::DaemonOptions options;
  options.root = root;
  options.session.worker_threads = session_options.worker_threads;
  options.trace_path = session_options.trace_path;
  options.metrics_path = session_options.metrics_path;
  auto daemon = papyrus::server::PapyrusDaemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "mosaico_flow: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }
  auto send = [&](const papyrus::server::WireMessage& request) {
    std::string line = request.Format();
    std::string reply = (*daemon)->HandleLine(line);
    std::printf("  -> %s\n  <- %s\n", line.c_str(), reply.c_str());
    return reply;
  };

  constexpr int kMacros = 6;
  std::vector<std::string> task_ids;
  for (int n = 0; n < kMacros; ++n) {
    std::string cell = "/designs/macro" + std::to_string(n);
    papyrus::server::WireMessage checkin;
    checkin.verb = "checkin";
    checkin.Add("session", "mosaico");
    checkin.Add("path", cell);
    checkin.Add("type", "layout");
    checkin.Add("cells", "40");
    checkin.Add("area", "25000");
    checkin.Add("seed", std::to_string(n));
    send(checkin);

    papyrus::server::WireMessage submit;
    submit.verb = "submit";
    submit.Add("session", "mosaico");
    submit.Add("thread", "Chip-assembly");
    submit.Add("template", "Mosaico");
    submit.Add("in", cell);
    submit.Add("out", "chip" + std::to_string(n));
    submit.Add("out", "chip" + std::to_string(n) + ".stats");
    submit.Add("seed", std::to_string(n));
    auto reply = papyrus::server::WireMessage::Parse(send(submit));
    if (reply.ok() && reply->verb == "ok") {
      if (const std::string* id = reply->Find("id")) {
        task_ids.push_back(*id);
      }
    }
  }

  papyrus::server::WireMessage drain;
  drain.verb = "drain";
  send(drain);
  papyrus::server::WireMessage stat;
  stat.verb = "stat";
  send(stat);

  int terminal = 0;
  for (const std::string& id : task_ids) {
    papyrus::server::WireMessage query;
    query.verb = "task";
    query.Add("id", id);
    auto reply = papyrus::server::WireMessage::Parse(send(query));
    if (!reply.ok() || reply->verb != "ok") continue;
    const std::string* state = reply->Find("state");
    if (state != nullptr && (*state == "done" || *state == "failed")) {
      ++terminal;
    }
  }
  papyrus::Status st = (*daemon)->Shutdown();
  if (!st.ok()) {
    std::fprintf(stderr, "mosaico_flow: shutdown: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("daemon flow: %d/%d tasks terminal\n", terminal,
              static_cast<int>(task_ids.size()));
  return (terminal == kMacros &&
          static_cast<int>(task_ids.size()) == kMacros)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  papyrus::SessionOptions options;
  std::string daemon_root;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      options.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      options.worker_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--daemon") == 0 && i + 1 < argc) {
      daemon_root = argv[++i];
    } else if (std::strcmp(argv[i], "--shared-store") == 0 &&
               i + 1 < argc) {
      // Attach the shared content-addressed artifact store: derivations
      // committed by one mosaico_flow run are elided by the next.
      options.shared_store_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: mosaico_flow [--trace FILE] [--metrics FILE] "
                   "[--jobs N] [--daemon ROOT] [--shared-store DIR]\n");
      return 2;
    }
  }
  if (!daemon_root.empty()) return RunAsDaemonClient(daemon_root, options);
  papyrus::Papyrus session(options);
  int thread = session.CreateThread("Chip-assembly");

  // Sweep macro-cell seeds until the flow exhibits all three behaviours:
  // direct success, vertical-compaction fallback, and a both-fail restart.
  bool saw_direct = false;
  bool saw_fallback = false;
  bool saw_restart = false;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    if (saw_direct && saw_fallback && saw_restart) break;
    std::string cell = "/designs/macro" + std::to_string(seed);
    (void)session.CheckInObject(
        cell, papyrus::oct::Layout{.num_cells = 40,
                                   .area = 25000.0,
                                   .style = "macro",
                                   .seed = seed});
    std::printf("== Mosaico on %s ==\n", cell.c_str());
    ConsoleObserver observer;
    papyrus::activity::ActivityInvocation inv;
    inv.template_name = "Mosaico";
    inv.input_refs = {cell};
    inv.output_names = {"chip" + std::to_string(seed),
                        "chip" + std::to_string(seed) + ".stats"};
    inv.observer = &observer;
    inv.max_restarts = 6;
    auto point = session.activity().InvokeTask(thread, inv);
    if (!point.ok()) {
      std::printf("  aborted: %s\n\n", point.status().ToString().c_str());
      continue;
    }
    auto t = session.activity().GetThread(thread);
    auto node = (*t)->GetNode(*point);
    bool fallback = false;
    for (const auto& step : (*node)->record.steps) {
      if (step.step_name == "Vertical_Compaction") fallback = true;
    }
    int restarts = (*node)->record.restarts;
    if (restarts > 0) {
      saw_restart = true;
      std::printf("  -> committed after %d restart(s)\n", restarts);
    } else if (fallback) {
      saw_fallback = true;
      std::printf("  -> committed via vertical-compaction fallback\n");
    } else {
      saw_direct = true;
      std::printf("  -> committed directly\n");
    }
    // Show the statistics report the flow produced.
    auto stats = session.database().LatestVisible(
        "chip" + std::to_string(seed) + ".stats");
    if (stats.ok()) {
      auto rec = session.database().Get(*stats);
      const auto& text =
          std::get<papyrus::oct::TextData>((*rec)->payload).text;
      std::printf("  chipstats:\n    %s\n",
                  papyrus::Join(papyrus::Split(text, '\n'), "\n    ")
                      .c_str());
    }
    std::printf("\n");
  }

  std::printf("observed: direct=%d fallback=%d restart=%d\n", saw_direct,
              saw_fallback, saw_restart);
  std::printf("task-manager stats: %ld committed, %ld aborted, %ld steps, "
              "%ld re-migrations\n",
              static_cast<long>(session.task_manager().tasks_committed()),
              static_cast<long>(session.task_manager().tasks_aborted()),
              static_cast<long>(session.task_manager().steps_executed()),
              static_cast<long>(session.task_manager().remigrations()));
  if (papyrus::storage::ContentStore* store = session.shared_store()) {
    const papyrus::storage::CasStats c = store->stats();
    const papyrus::cache::CacheStats s = session.step_cache().stats();
    std::printf("shared store: %ld entries, %ld blobs, %ld bytes; "
                "shared hits %ld / misses %ld; dedup bytes %ld\n",
                static_cast<long>(c.entries), static_cast<long>(c.blobs),
                static_cast<long>(c.total_bytes),
                static_cast<long>(s.shared_hits),
                static_cast<long>(s.shared_misses),
                static_cast<long>(c.dedup_bytes));
  }
  return (saw_direct && saw_fallback && saw_restart) ? 0 : 1;
}
