// The Figure 3.7 scenario: interactive design-space exploration of a
// shifter with the rework mechanism.
//
// A designer synthesizes a shifter down to a standard-cell layout, is not
// satisfied, moves the current cursor back to an earlier design point, and
// explores a PLA implementation instead — without doing any bookkeeping
// for the mapping between alternatives and object versions.
//
// Build & run:  ./build/examples/shifter_exploration

#include <cstdio>

#include "activity/display.h"
#include "core/papyrus.h"

namespace {

void Show(papyrus::Papyrus& session, int thread, const char* banner) {
  auto t = session.activity().GetThread(thread);
  std::printf("---- %s ----\n%s\n", banner,
              papyrus::activity::RenderControlStream(**t).c_str());
}

}  // namespace

int main() {
  papyrus::Papyrus session;
  int thread = session.CreateThread("Shifter-synthesis");

  // 1. Enter the logic description (edit + bdsyn).
  auto p1 = session.Invoke(thread, "Create_Logic_Description", {},
                           {"shifter.logic"});
  // 2. Verify its behaviour with the logic simulator.
  auto p2 =
      session.Invoke(thread, "Logic_Simulation", {"shifter.logic"}, {});
  // 3-4. Standard-cell approach: place&route, then pads.
  auto p3 = session.Invoke(thread, "Standard_Cell_Place_and_Route",
                           {"shifter.logic"}, {"shifter.sc"});
  auto p4 = session.Invoke(thread, "Place_Pads", {"shifter.sc"},
                           {"shifter.sc.padded"});
  if (!p1.ok() || !p2.ok() || !p3.ok() || !p4.ok()) {
    std::printf("standard-cell flow failed\n");
    return 1;
  }
  Show(session, thread, "after the standard-cell approach");

  // Check the result's area via the attribute system.
  auto sc = session.database().LatestVisible("shifter.sc.padded");
  auto sc_area = session.metadata().GetAttribute(*sc, "area");
  std::printf("standard-cell area: %s\n\n", sc_area->c_str());

  // 5. Not satisfied: rework to design point 2 and explore a PLA design
  //    style from the identical context.
  (void)session.MoveCursor(thread, *p2);
  auto t = session.activity().GetThread(thread);
  (void)(*t)->Annotate(*p2, "The Start of PLA Approach");

  auto p5 = session.Invoke(thread, "PLA_Generation", {"shifter.logic"},
                           {"shifter.pla"});
  auto p6 = session.Invoke(thread, "Place_Pads", {"shifter.pla"},
                           {"shifter.pla.padded"});
  if (!p5.ok() || !p6.ok()) {
    std::printf("PLA flow failed\n");
    return 1;
  }
  Show(session, thread, "after exploring the PLA alternative");

  auto pla = session.database().LatestVisible("shifter.pla.padded");
  auto pla_area = session.metadata().GetAttribute(*pla, "area");
  std::printf("PLA area: %s\n\n", pla_area->c_str());

  // The system maintains the mapping between alternatives and objects:
  // from the PLA branch, the standard-cell objects are simply not
  // visible.
  std::printf("data scope on the PLA branch:\n%s\n",
              papyrus::activity::RenderDataScope(*t).c_str());

  // Random access: jump back by annotation instead of browsing.
  auto annotated = (*t)->FindAnnotation("The Start of PLA Approach");
  std::printf("annotation lookup -> design point %d\n", *annotated);

  // Pick the better alternative and erase the other branch, reclaiming
  // its objects.
  // Erasing works relative to the current cursor: position it on the
  // losing branch's tip, then rework to point 2 with erase — the branch
  // toward the old cursor disappears and its objects are reclaimed.
  double sc_v = std::strtod(sc_area->c_str(), nullptr);
  double pla_v = std::strtod(pla_area->c_str(), nullptr);
  if (pla_v <= sc_v) {
    std::printf("\nPLA wins (%.0f <= %.0f): erasing standard-cell branch\n",
                pla_v, sc_v);
    (void)session.MoveCursor(thread, *p4);             // losing tip
    (void)session.MoveCursor(thread, *p2, /*erase=*/true);
    (void)session.MoveCursor(thread, *p6);             // back to winner
  } else {
    std::printf("\nstandard cells win (%.0f < %.0f): erasing PLA branch\n",
                sc_v, pla_v);
    (void)session.MoveCursor(thread, *p2, /*erase=*/true);  // cursor at p6
    (void)session.MoveCursor(thread, *p4);
  }
  std::printf("erased objects are gone from the database: shifter.pla -> %s\n",
              session.database().LatestVisible("shifter.pla").ok()
                  ? "still visible"
                  : "invisible");
  Show(session, thread, "final state");
  return 0;
}
