// papyrus_shell: a Tcl-scriptable command shell over a Papyrus session —
// the same embedding trick the thesis used (Tcl as the common command
// interface) applied to Papyrus itself.
//
// Usage:
//   ./build/examples/papyrus_shell             # runs the built-in demo
//   ./build/examples/papyrus_shell script.tcl  # runs a script file
//   echo 'templates' | ./build/examples/papyrus_shell -   # read stdin
//
// Commands added on top of full Tcl:
//   thread create NAME | thread show ID | thread scope ID
//   checkin /path TYPE ARGS...   (behavioral IN OUT CPLX SEED |
//                                 macro AREA SEED | text STRING)
//   invoke THREAD TEMPLATE {inputs} {outputs}
//   cursor THREAD POINT ?-erase?
//   templates | template NAME | tools | stats
//   lint ?NAME...?               (static flow verification; all templates
//                                 when no names are given)
//   oattr OBJECT ATTR            (metadata-engine attribute query)
//   cache ?stats|clear|on|off?   (history-based derivation cache)
//   trace start|stop|dump FILE   (virtual-time Chrome trace recording)
//   metrics ?-json?              (session metrics registry snapshot)
//   jobs ?N?                     (query/set step-executor worker threads;
//                                 results are identical at any N)
//   daemon open ROOT ?JOBS? | daemon connect SOCKET
//       | daemon send WIRE-WORDS... | daemon close
//       (thin client for papyrusd: `send` joins its words into one
//        wire-protocol line — e.g. `daemon send submit ~session=alpha
//        ~thread=t ~template=Padp ~in=/x ~out=y` — and returns the
//        daemon's ok/err response line verbatim)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "activity/display.h"
#include "base/strings.h"
#include "core/papyrus.h"
#include "lint/linter.h"
#include "server/daemon.h"
#include "tcl/interp.h"
#include "tdl/template_layout.h"

namespace {

using papyrus::Papyrus;
using papyrus::tcl::EvalResult;
using papyrus::tcl::Interp;

int64_t ToInt(const std::string& s, int64_t fallback) {
  int64_t v = 0;
  return papyrus::ParseInt64(s, &v) ? v : fallback;
}

void RegisterShellCommands(Interp* in, Papyrus* session) {
  in->RegisterCommand(
      "thread", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() >= 3 && argv[1] == "create") {
          return EvalResult::Ok(
              std::to_string(session->CreateThread(argv[2])));
        }
        if (argv.size() >= 3 && argv[1] == "show") {
          auto t = session->activity().GetThread(
              static_cast<int>(ToInt(argv[2], -1)));
          if (!t.ok()) return EvalResult::Error(t.status().message());
          return EvalResult::Ok(papyrus::activity::RenderControlStream(**t));
        }
        if (argv.size() >= 3 && argv[1] == "scope") {
          auto t = session->activity().GetThread(
              static_cast<int>(ToInt(argv[2], -1)));
          if (!t.ok()) return EvalResult::Error(t.status().message());
          return EvalResult::Ok(papyrus::activity::RenderDataScope(*t));
        }
        return EvalResult::Error(
            "usage: thread create NAME | thread show ID | thread scope ID");
      });

  in->RegisterCommand(
      "checkin", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() < 3) {
          return EvalResult::Error(
              "usage: checkin /path behavioral|macro|text args...");
        }
        papyrus::oct::DesignPayload payload;
        if (argv[2] == "behavioral") {
          papyrus::oct::BehavioralSpec b;
          b.num_inputs = argv.size() > 3 ? ToInt(argv[3], 8) : 8;
          b.num_outputs = argv.size() > 4 ? ToInt(argv[4], 8) : 8;
          b.complexity = argv.size() > 5 ? ToInt(argv[5], 16) : 16;
          b.seed = argv.size() > 6 ? ToInt(argv[6], 1) : 1;
          payload = b;
        } else if (argv[2] == "macro") {
          papyrus::oct::Layout l;
          l.num_cells = 40;
          l.area = argv.size() > 3 ? static_cast<double>(ToInt(argv[3],
                                                               20000))
                                   : 20000.0;
          l.style = "macro";
          l.seed = argv.size() > 4 ? ToInt(argv[4], 1) : 1;
          payload = l;
        } else if (argv[2] == "text") {
          payload = papyrus::oct::TextData{
              argv.size() > 3 ? argv[3] : ""};
        } else {
          return EvalResult::Error("unknown check-in type " + argv[2]);
        }
        auto id = session->CheckInObject(argv[1], std::move(payload));
        if (!id.ok()) return EvalResult::Error(id.status().message());
        return EvalResult::Ok(id->ToString());
      });

  in->RegisterCommand(
      "invoke", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() != 5) {
          return EvalResult::Error(
              "usage: invoke THREAD TEMPLATE {inputs} {outputs}");
        }
        auto inputs = papyrus::tcl::ParseList(argv[3]);
        auto outputs = papyrus::tcl::ParseList(argv[4]);
        if (!inputs.ok() || !outputs.ok()) {
          return EvalResult::Error("bad input/output lists");
        }
        auto point = session->Invoke(static_cast<int>(ToInt(argv[1], -1)),
                                     argv[2], *inputs, *outputs);
        if (!point.ok()) {
          return EvalResult::Error(point.status().ToString());
        }
        return EvalResult::Ok(std::to_string(*point));
      });

  in->RegisterCommand(
      "cursor", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() < 3) {
          return EvalResult::Error("usage: cursor THREAD POINT ?-erase?");
        }
        bool erase = argv.size() > 3 && argv[3] == "-erase";
        papyrus::Status st = session->MoveCursor(
            static_cast<int>(ToInt(argv[1], -1)),
            static_cast<int>(ToInt(argv[2], -1)), erase);
        if (!st.ok()) return EvalResult::Error(st.message());
        return EvalResult::Ok();
      });

  in->RegisterCommand(
      "templates",
      [session](Interp&, const std::vector<std::string>&) {
        return EvalResult::Ok(papyrus::tcl::FormatList(
            session->templates().TemplateNames()));
      });

  in->RegisterCommand(
      "template", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() != 2) {
          return EvalResult::Error("usage: template NAME");
        }
        auto tmpl = session->templates().Find(argv[1]);
        if (!tmpl.ok()) return EvalResult::Error(tmpl.status().message());
        auto text =
            papyrus::tdl::RenderTemplate(**tmpl, &session->templates());
        if (!text.ok()) return EvalResult::Error(text.status().message());
        return EvalResult::Ok(*text);
      });

  in->RegisterCommand(
      "tools", [session](Interp&, const std::vector<std::string>&) {
        return EvalResult::Ok(
            papyrus::tcl::FormatList(session->tools().ToolNames()));
      });

  in->RegisterCommand(
      "lint", [session](Interp&, const std::vector<std::string>& argv) {
        papyrus::lint::LintOptions options;
        options.tools = &session->tools();
        options.library = &session->templates();
        std::vector<std::string> names(argv.begin() + 1, argv.end());
        if (names.empty()) {
          names = session->templates().TemplateNames();
        }
        std::ostringstream os;
        int errors = 0;
        int warnings = 0;
        for (const std::string& name : names) {
          auto tmpl = session->templates().Find(name);
          if (!tmpl.ok()) return EvalResult::Error(tmpl.status().message());
          auto result = papyrus::lint::LintTemplate(**tmpl, options);
          for (const auto& d : result.diagnostics) {
            os << d.ToString() << "\n";
          }
          errors += result.errors;
          warnings += result.warnings;
        }
        os << names.size() << " template(s): " << errors << " error(s), "
           << warnings << " warning(s)";
        return EvalResult::Ok(os.str());
      });

  in->RegisterCommand(
      "oattr", [session](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() != 3) {
          return EvalResult::Error("usage: oattr OBJECT[@V] ATTR");
        }
        auto ref = papyrus::oct::ParseObjectRef(argv[1]);
        if (!ref.ok()) return EvalResult::Error(ref.status().message());
        papyrus::oct::ObjectId id{ref->name, ref->version};
        if (id.version == 0) {
          auto latest = session->database().LatestVisible(id.name);
          if (!latest.ok()) {
            return EvalResult::Error(latest.status().message());
          }
          id = *latest;
        }
        auto value = session->metadata().GetAttribute(id, argv[2]);
        if (!value.ok()) return EvalResult::Error(value.status().message());
        return EvalResult::Ok(*value);
      });

  in->RegisterCommand(
      "cache", [session](Interp&, const std::vector<std::string>& argv) {
        papyrus::cache::DerivationCache& cache = session->step_cache();
        std::string sub = argv.size() > 1 ? argv[1] : "stats";
        if (sub == "stats") {
          // stats() returns a by-value snapshot taken under the cache
          // mutex; binding a reference here would outlive nothing, but
          // a copy makes the snapshot semantics explicit.
          const papyrus::cache::CacheStats s = cache.stats();
          std::ostringstream os;
          os << "derivation cache: " << (cache.enabled() ? "on" : "off")
             << "; entries: " << cache.size() << "; hits: " << s.hits
             << "; misses: " << s.misses << "; recorded: " << s.recorded
             << "; invalidated: " << s.invalidated
             << "; steps elided: " << session->task_manager().steps_elided()
             << "; virtual time saved: " << s.micros_saved / 1000 << "ms";
          if (papyrus::storage::ContentStore* store =
                  session->shared_store()) {
            const papyrus::storage::CasStats c = store->stats();
            os << "\nshared store: entries: " << c.entries
               << "; blobs: " << c.blobs << " (" << c.live_blobs
               << " live, " << c.evictable_blobs << " evictable); bytes: "
               << c.total_bytes << "; shared hits: " << s.shared_hits
               << "; shared misses: " << s.shared_misses
               << "; dedup bytes: " << c.dedup_bytes;
          }
          return EvalResult::Ok(os.str());
        }
        if (sub == "clear") {
          cache.Clear();
          return EvalResult::Ok();
        }
        if (sub == "on" || sub == "off") {
          cache.set_enabled(sub == "on");
          return EvalResult::Ok();
        }
        return EvalResult::Error("usage: cache ?stats|clear|on|off?");
      });

  in->RegisterCommand(
      "trace", [session](Interp&, const std::vector<std::string>& argv) {
        papyrus::obs::TraceRecorder& trace = session->trace();
        std::string sub = argv.size() > 1 ? argv[1] : "";
        if (sub == "start") {
          trace.set_enabled(true);
          return EvalResult::Ok("tracing on");
        }
        if (sub == "stop") {
          trace.set_enabled(false);
          std::ostringstream os;
          os << "tracing off; " << trace.event_count()
             << " event(s) buffered";
          return EvalResult::Ok(os.str());
        }
        if (sub == "dump" && argv.size() == 3) {
          papyrus::Status st = trace.WriteJson(argv[2]);
          if (!st.ok()) return EvalResult::Error(st.message());
          std::ostringstream os;
          os << "wrote " << trace.event_count() << " event(s) to "
             << argv[2];
          return EvalResult::Ok(os.str());
        }
        return EvalResult::Error("usage: trace start|stop|dump FILE");
      });

  in->RegisterCommand(
      "metrics", [session](Interp&, const std::vector<std::string>& argv) {
        bool json = argv.size() > 1 && argv[1] == "-json";
        if (!json && argv.size() > 1) {
          return EvalResult::Error("usage: metrics ?-json?");
        }
        return EvalResult::Ok(json ? session->metrics().ToJson()
                                   : session->metrics().ToTable());
      });

  in->RegisterCommand(
      "jobs", [session](Interp&, const std::vector<std::string>& argv) {
        papyrus::task::TaskManager& mgr = session->task_manager();
        if (argv.size() == 1) {
          std::ostringstream os;
          os << mgr.worker_threads();
          return EvalResult::Ok(os.str());
        }
        if (argv.size() == 2) {
          char* end = nullptr;
          long n = std::strtol(argv[1].c_str(), &end, 10);
          if (end == argv[1].c_str() || *end != '\0' || n < 1 ||
              n > 64) {
            return EvalResult::Error("jobs: N must be in 1..64");
          }
          mgr.set_worker_threads(static_cast<int>(n));
          std::ostringstream os;
          os << "step executor: " << mgr.worker_threads()
             << " worker thread(s)";
          return EvalResult::Ok(os.str());
        }
        return EvalResult::Error("usage: jobs ?N?");
      });

  // The shell doubles as a thin papyrusd client: everything below goes
  // through the textual wire protocol, never the C++ session API, so a
  // script written against `daemon send` works identically against a
  // papyrusd reached over any other line transport. `daemon open`
  // hosts a daemon in-process; `daemon connect` dials a running
  // papyrusd --socket over its Unix-domain socket.
  auto client =
      std::make_shared<std::unique_ptr<papyrus::server::PapyrusDaemon>>();
  auto remote =
      std::make_shared<std::unique_ptr<papyrus::server::WireClient>>();
  in->RegisterCommand(
      "daemon",
      [client, remote](Interp&, const std::vector<std::string>& argv) {
        if (argv.size() >= 3 && argv[1] == "open") {
          if (*client != nullptr || *remote != nullptr) {
            return EvalResult::Error("daemon already open");
          }
          papyrus::server::DaemonOptions options;
          options.root = argv[2];
          if (argv.size() > 3) {
            options.session.worker_threads =
                static_cast<int>(ToInt(argv[3], 1));
          }
          auto daemon = papyrus::server::PapyrusDaemon::Start(options);
          if (!daemon.ok()) {
            return EvalResult::Error(daemon.status().message());
          }
          *client = std::move(*daemon);
          return EvalResult::Ok("connected to " + argv[2]);
        }
        if (argv.size() >= 3 && argv[1] == "connect") {
          if (*client != nullptr || *remote != nullptr) {
            return EvalResult::Error("daemon already open");
          }
          auto wire = papyrus::server::WireClient::Connect(argv[2]);
          if (!wire.ok()) {
            return EvalResult::Error(wire.status().message());
          }
          *remote = std::move(*wire);
          return EvalResult::Ok("connected to socket " + argv[2]);
        }
        if (argv.size() >= 2 && argv[1] == "send") {
          std::vector<std::string> words(argv.begin() + 2, argv.end());
          std::string line = papyrus::Join(words, " ");
          if (*remote != nullptr) {
            auto response = (*remote)->Call(line);
            if (!response.ok()) {
              return EvalResult::Error(response.status().message());
            }
            return EvalResult::Ok(*response);
          }
          if (*client == nullptr) {
            return EvalResult::Error("no daemon open");
          }
          return EvalResult::Ok((*client)->HandleLine(line));
        }
        if (argv.size() >= 2 && argv[1] == "close") {
          if (*remote != nullptr) {
            remote->reset();
            return EvalResult::Ok("disconnected");
          }
          if (*client == nullptr) {
            return EvalResult::Error("no daemon open");
          }
          papyrus::Status st = (*client)->Shutdown();
          client->reset();
          if (!st.ok()) return EvalResult::Error(st.message());
          return EvalResult::Ok("closed");
        }
        return EvalResult::Error(
            "usage: daemon open ROOT ?JOBS? | daemon connect SOCKET | "
            "daemon send WORDS... | daemon close");
      });

  in->RegisterCommand(
      "stats", [session](Interp&, const std::vector<std::string>&) {
        std::ostringstream os;
        os << "virtual time: " << session->clock().NowMicros() / 1000
           << "ms; tasks committed: "
           << session->task_manager().tasks_committed()
           << "; aborted: " << session->task_manager().tasks_aborted()
           << "; steps: " << session->task_manager().steps_executed()
           << "; db versions: "
           << session->database().TotalVersionCount()
           << " (" << session->database().TotalLiveBytes() << " bytes)"
           << "; ADG edges: " << session->metadata().adg().edge_count();
        return EvalResult::Ok(os.str());
      });
}

constexpr const char* kDemoScript = R"TCL(
puts "== Papyrus shell demo =="
puts "templates: [templates]"
puts "lint: [lint]"
set t [thread create Shifter-synthesis]
puts "created thread $t"
set p1 [invoke $t Create_Logic_Description {} {shifter.logic}]
puts "design point $p1: created shifter.logic"
set p2 [invoke $t Standard_Cell_Place_and_Route {shifter.logic} {shifter.sc}]
puts "standard-cell area: [oattr shifter.sc area]"
cursor $t $p1
set p3 [invoke $t PLA_Generation {shifter.logic} {shifter.pla}]
puts "PLA area: [oattr shifter.pla area]"
if {[oattr shifter.pla area] < [oattr shifter.sc area]} {
  puts "PLA implementation wins"
} else {
  puts "standard-cell implementation wins"
}
puts [thread show $t]
puts [thread scope $t]
puts [stats]
)TCL";

}  // namespace

int main(int argc, char** argv) {
  Papyrus session;
  Interp interp;
  RegisterShellCommands(&interp, &session);

  auto run = [&](const std::string& script) {
    auto result = interp.Eval(script);
    std::fputs(interp.TakeOutput().c_str(), stdout);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().message().c_str());
      return 1;
    }
    return 0;
  };

  if (argc < 2) {
    return run(kDemoScript);
  }
  if (std::string(argv[1]) == "-") {
    // REPL over stdin: evaluate line by line, echoing results.
    std::string line;
    while (std::getline(std::cin, line)) {
      auto result = interp.Eval(line);
      std::fputs(interp.TakeOutput().c_str(), stdout);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().message().c_str());
      } else if (!result->empty()) {
        std::printf("%s\n", result->c_str());
      }
    }
    return 0;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return run(buffer.str());
}
