#include <gtest/gtest.h>

#include <vector>

#include "base/clock.h"
#include "sprite/network.h"

namespace papyrus::sprite {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : clock_(0), net_(&clock_, 4) {}
  ManualClock clock_;
  Network net_;
};

TEST_F(NetworkTest, StartsIdleWithHomeHostZero) {
  EXPECT_EQ(net_.num_hosts(), 4);
  EXPECT_EQ(net_.home_host(), 0);
  for (HostId h = 0; h < 4; ++h) {
    EXPECT_TRUE(net_.IsIdle(h));
    EXPECT_EQ(net_.LoadOf(h), 0);
  }
}

TEST_F(NetworkTest, SingleProcessCompletesAfterItsWork) {
  std::vector<ProcessInfo> completed;
  net_.SetCompletionHandler(
      [&](const ProcessInfo& p) { completed.push_back(p); });
  auto pid = net_.Spawn(kNoProcess, "espresso", 1000, 0, true);
  ASSERT_TRUE(pid.ok());
  net_.RunUntilQuiescent();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].pid, *pid);
  EXPECT_EQ(completed[0].finish_micros, 1000);
  EXPECT_EQ(clock_.NowMicros(), 1000);
  EXPECT_EQ(completed[0].state, ProcessState::kCompleted);
}

TEST_F(NetworkTest, TimeSlicingSlowsCoLocatedProcesses) {
  ASSERT_TRUE(net_.Spawn(kNoProcess, "a", 1000, 1, true).ok());
  ASSERT_TRUE(net_.Spawn(kNoProcess, "b", 1000, 1, true).ok());
  net_.RunUntilQuiescent();
  // Two equal processes sharing one host: both finish at ~2x.
  EXPECT_GE(clock_.NowMicros(), 1999);
}

TEST_F(NetworkTest, ParallelHostsOverlap) {
  ASSERT_TRUE(net_.Spawn(kNoProcess, "a", 1000, 1, true).ok());
  ASSERT_TRUE(net_.Spawn(kNoProcess, "b", 1000, 2, true).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(clock_.NowMicros(), 1000);
}

TEST_F(NetworkTest, HostSpeedScalesProgress) {
  ASSERT_TRUE(net_.SetHostSpeed(2, 2.0).ok());
  ASSERT_TRUE(net_.Spawn(kNoProcess, "fast", 1000, 2, true).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(clock_.NowMicros(), 500);
  EXPECT_FALSE(net_.SetHostSpeed(2, 0.0).ok());
  EXPECT_FALSE(net_.SetHostSpeed(99, 1.0).ok());
}

TEST_F(NetworkTest, FindIdleHostPrefersLeastLoaded) {
  ASSERT_TRUE(net_.Spawn(kNoProcess, "a", 5000, 1, true).ok());
  auto h = net_.FindIdleHost(/*exclude_home=*/true);
  ASSERT_TRUE(h.ok());
  EXPECT_NE(*h, 1);  // 2 or 3 are empty
}

TEST_F(NetworkTest, FindIdleHostSkipsOwnerActiveHosts) {
  for (HostId h = 1; h < 4; ++h) {
    ASSERT_TRUE(net_.SetOwnerActive(h, true).ok());
  }
  auto h = net_.FindIdleHost(/*exclude_home=*/true);
  EXPECT_TRUE(h.status().IsFailedPrecondition());
  // Home is still idle.
  auto home = net_.FindIdleHost(/*exclude_home=*/false);
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(*home, 0);
}

TEST_F(NetworkTest, MigrationMovesWork) {
  auto pid = net_.Spawn(kNoProcess, "a", 1000, 0, true);
  ASSERT_TRUE(pid.ok());
  // Another local process would slow it to 2000us; migrating away keeps
  // both at full speed.
  auto pid2 = net_.Spawn(kNoProcess, "b", 1000, 0, true);
  ASSERT_TRUE(pid2.ok());
  ASSERT_TRUE(net_.Migrate(*pid2, 3).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(clock_.NowMicros(), 1000);
  EXPECT_EQ(net_.total_migrations(), 1);
}

TEST_F(NetworkTest, NonMigratableProcessRefusesToMove) {
  auto pid = net_.Spawn(kNoProcess, "interactive_editor", 1000, 0, false);
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(net_.Migrate(*pid, 1).IsPermissionDenied());
}

TEST_F(NetworkTest, MigrateErrors) {
  EXPECT_TRUE(net_.Migrate(99, 1).IsNotFound());
  auto pid = net_.Spawn(kNoProcess, "a", 100, 0, true);
  ASSERT_TRUE(pid.ok());
  EXPECT_FALSE(net_.Migrate(*pid, 99).ok());
  EXPECT_TRUE(net_.Migrate(*pid, 0).ok());  // same host: no-op
  EXPECT_EQ(net_.total_migrations(), 0);
}

TEST_F(NetworkTest, OwnerReturnEvictsForeignProcesses) {
  std::vector<ProcessId> evicted;
  net_.SetEvictionHandler(
      [&](const ProcessInfo& p) { evicted.push_back(p.pid); });
  auto pid = net_.Spawn(kNoProcess, "remote", 10000, 2, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.SetOwnerActive(2, true).ok());
  ASSERT_EQ(evicted.size(), 1u);
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->current_host, net_.home_host());
  EXPECT_EQ(net_.total_evictions(), 1);
  EXPECT_EQ(info->migration_count, 1);
}

TEST_F(NetworkTest, NativeProcessesSurviveOwnerReturn) {
  auto pid = net_.Spawn(kNoProcess, "local", 10000, 0, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.SetOwnerActive(0, true).ok());
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->current_host, 0);
  EXPECT_EQ(net_.total_evictions(), 0);
}

TEST_F(NetworkTest, ScheduledOwnerEventsFireInOrder) {
  ASSERT_TRUE(net_.ScheduleOwnerEvent(1, 500, true).ok());
  ASSERT_TRUE(net_.ScheduleOwnerEvent(1, 1500, false).ok());
  auto pid = net_.Spawn(kNoProcess, "victim", 2000, 1, true);
  ASSERT_TRUE(pid.ok());
  net_.RunUntilQuiescent();
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProcessState::kCompleted);
  // Evicted to home at t=500 after 500us of work; finishes remaining
  // 1500us on home host.
  EXPECT_EQ(info->current_host, 0);
  EXPECT_EQ(info->finish_micros, 2000);
  EXPECT_EQ(net_.total_evictions(), 1);
  EXPECT_FALSE(net_.ScheduleOwnerEvent(1, 0, true).ok());  // in the past
}

TEST_F(NetworkTest, KillRemovesProcessWithoutSignal) {
  int completions = 0;
  net_.SetCompletionHandler([&](const ProcessInfo&) { ++completions; });
  auto pid = net_.Spawn(kNoProcess, "doomed", 1000, 0, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.Kill(*pid).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(completions, 0);
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProcessState::kKilled);
  EXPECT_TRUE(net_.Kill(*pid).IsFailedPrecondition());
  EXPECT_TRUE(net_.Kill(12345).IsNotFound());
}

TEST_F(NetworkTest, GetPcbInfoFiltersByParent) {
  ASSERT_TRUE(net_.Spawn(7, "child_a", 100, 0, true).ok());
  ASSERT_TRUE(net_.Spawn(7, "child_b", 100, 1, true).ok());
  ASSERT_TRUE(net_.Spawn(9, "other", 100, 2, true).ok());
  EXPECT_EQ(net_.GetPcbInfo(7).size(), 2u);
  EXPECT_EQ(net_.GetPcbInfo(9).size(), 1u);
  EXPECT_EQ(net_.GetPcbInfo().size(), 3u);
  EXPECT_EQ(net_.GetPcbInfo(42).size(), 0u);
}

TEST_F(NetworkTest, CompletionHandlerMaySpawnMoreWork) {
  int chain = 0;
  net_.SetCompletionHandler([&](const ProcessInfo&) {
    if (++chain < 3) {
      ASSERT_TRUE(net_.Spawn(kNoProcess, "next", 100, 0, true).ok());
    }
  });
  ASSERT_TRUE(net_.Spawn(kNoProcess, "first", 100, 0, true).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(chain, 3);
  EXPECT_EQ(clock_.NowMicros(), 300);
  EXPECT_EQ(net_.total_spawns(), 3);
}

TEST_F(NetworkTest, ZeroWorkProcessCompletesImmediately) {
  auto pid = net_.Spawn(kNoProcess, "noop", 0, 0, true);
  ASSERT_TRUE(pid.ok());
  clock_.AdvanceMicros(50);
  net_.RunUntilQuiescent();
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProcessState::kCompleted);
}

TEST_F(NetworkTest, SpawnValidation) {
  EXPECT_FALSE(net_.Spawn(kNoProcess, "x", 100, 99, true).ok());
  EXPECT_FALSE(net_.Spawn(kNoProcess, "x", -1, 0, true).ok());
}

TEST_F(NetworkTest, CrashKillsEveryProcessOnTheHost) {
  std::vector<ProcessId> lost;
  int completions = 0;
  net_.SetFailureHandler(
      [&](const ProcessInfo& p) { lost.push_back(p.pid); });
  net_.SetCompletionHandler([&](const ProcessInfo&) { ++completions; });
  // One native and one foreign (spawned elsewhere, migrated in) process.
  auto native = net_.Spawn(kNoProcess, "native", 10000, 2, true);
  auto foreign = net_.Spawn(kNoProcess, "foreign", 10000, 0, true);
  ASSERT_TRUE(native.ok() && foreign.ok());
  ASSERT_TRUE(net_.Migrate(*foreign, 2).ok());
  ASSERT_TRUE(net_.CrashHost(2).ok());
  EXPECT_EQ(lost.size(), 2u);
  EXPECT_EQ(completions, 0);
  EXPECT_FALSE(net_.IsUp(2));
  EXPECT_FALSE(net_.IsIdle(2));
  EXPECT_EQ(net_.total_crashes(), 1);
  EXPECT_EQ(net_.total_lost(), 2);
  for (ProcessId pid : {*native, *foreign}) {
    auto info = net_.GetProcess(pid);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->state, ProcessState::kLost);
  }
  // A down host accepts neither spawns nor migrations.
  EXPECT_TRUE(net_.Spawn(kNoProcess, "x", 100, 2, true)
                  .status().IsUnavailable());
  auto other = net_.Spawn(kNoProcess, "y", 100, 0, true);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(net_.Migrate(*other, 2).IsUnavailable());
  // Crashing a down host is an error; crashing a bogus host too.
  EXPECT_TRUE(net_.CrashHost(2).IsFailedPrecondition());
  EXPECT_FALSE(net_.CrashHost(99).ok());
}

TEST_F(NetworkTest, ScheduledCrashAndRebootFireInVirtualTime) {
  std::vector<ProcessId> lost;
  net_.SetFailureHandler(
      [&](const ProcessInfo& p) { lost.push_back(p.pid); });
  auto pid = net_.Spawn(kNoProcess, "victim", 5000, 1, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.ScheduleCrash(1, 2000).ok());
  ASSERT_TRUE(net_.RebootHost(1, 3000).ok());
  net_.RunUntilQuiescent();
  EXPECT_EQ(lost.size(), 1u);
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProcessState::kLost);
  EXPECT_EQ(info->finish_micros, 2000);
  // After the reboot the host is usable again.
  EXPECT_TRUE(net_.IsUp(1));
  EXPECT_TRUE(net_.IsIdle(1));
  auto pid2 = net_.Spawn(kNoProcess, "fresh", 100, 1, true);
  EXPECT_TRUE(pid2.ok());
  // Scheduling into the past is rejected.
  EXPECT_FALSE(net_.ScheduleCrash(1, 0).ok());
  EXPECT_FALSE(net_.RebootHost(1, 0).ok());
}

TEST_F(NetworkTest, FindIdleHostSkipsDownHosts) {
  for (HostId h = 1; h < 4; ++h) {
    ASSERT_TRUE(net_.CrashHost(h).ok());
  }
  auto h = net_.FindIdleHost(/*exclude_home=*/true);
  EXPECT_FALSE(h.ok());
  auto home = net_.FindIdleHost(/*exclude_home=*/false);
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(*home, 0);
}

TEST_F(NetworkTest, FlakyMigrationFailsSomeCallsDeterministically) {
  ASSERT_TRUE(net_.SetMigrationFlakiness(0.5, 7).ok());
  int failures = 0;
  auto pid = net_.Spawn(kNoProcess, "wanderer", 1000000, 0, true);
  ASSERT_TRUE(pid.ok());
  for (int i = 0; i < 40; ++i) {
    HostId target = 1 + (i % 3);
    Status st = net_.Migrate(*pid, target);
    if (st.IsUnavailable()) {
      ++failures;
      // Failed migration leaves the process where it was.
      auto info = net_.GetProcess(*pid);
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info->state, ProcessState::kRunning);
    } else {
      ASSERT_TRUE(st.ok());
    }
  }
  // With p=0.5 over 40 draws, both outcomes occur (overwhelmingly).
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 40);
  EXPECT_EQ(net_.total_migration_failures(), failures);

  // Same seed => same failure pattern.
  ManualClock c2(0);
  Network net2(&c2, 4);
  ASSERT_TRUE(net2.SetMigrationFlakiness(0.5, 7).ok());
  auto pid2 = net2.Spawn(kNoProcess, "wanderer", 1000000, 0, true);
  ASSERT_TRUE(pid2.ok());
  int failures2 = 0;
  for (int i = 0; i < 40; ++i) {
    if (net2.Migrate(*pid2, 1 + (i % 3)).IsUnavailable()) ++failures2;
  }
  EXPECT_EQ(failures2, failures);
  // Probability outside [0, 1) is rejected; 0 disables.
  EXPECT_FALSE(net_.SetMigrationFlakiness(1.5, 1).ok());
  ASSERT_TRUE(net_.SetMigrationFlakiness(0.0, 1).ok());
  EXPECT_TRUE(net_.Migrate(*pid, 1).ok());
}

TEST_F(NetworkTest, OwnerReturnDuringMigrationBouncesProcessHome) {
  // The §4.3.3 race: the owner of the target host returns while the
  // migration is in flight. The process lands, is immediately evicted,
  // and ends up back home — with both counters accounting the round trip.
  auto pid = net_.Spawn(kNoProcess, "racer", 10000, 0, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.SetOwnerActive(3, true).ok());
  int64_t evictions_before = net_.total_evictions();
  ASSERT_TRUE(net_.Migrate(*pid, 3).ok());
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->current_host, net_.home_host());
  EXPECT_EQ(info->state, ProcessState::kRunning);
  EXPECT_EQ(info->migration_count, 2);  // out and back
  EXPECT_EQ(net_.total_evictions(), evictions_before + 1);
  // The process still completes its full work afterwards.
  net_.RunUntilQuiescent();
  auto done = net_.GetProcess(*pid);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, ProcessState::kCompleted);
}

TEST_F(NetworkTest, EvictionToACrashedHomeLosesTheProcess) {
  std::vector<ProcessId> lost;
  net_.SetFailureHandler(
      [&](const ProcessInfo& p) { lost.push_back(p.pid); });
  auto pid = net_.Spawn(kNoProcess, "orphan", 10000, 0, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net_.Migrate(*pid, 2).ok());
  ASSERT_TRUE(net_.CrashHost(0).ok());
  // Owner returns on host 2: the eviction has nowhere to go.
  ASSERT_TRUE(net_.SetOwnerActive(2, true).ok());
  EXPECT_EQ(lost.size(), 1u);
  auto info = net_.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProcessState::kLost);
}

TEST_F(NetworkTest, SpeedupScalesWithHosts) {
  // 8 independent unit jobs on 1 host vs 4 hosts.
  ManualClock c1(0);
  Network serial(&c1, 1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(serial.Spawn(kNoProcess, "job", 1000, 0, true).ok());
  }
  serial.RunUntilQuiescent();

  ManualClock c4(0);
  Network parallel(&c4, 4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        parallel.Spawn(kNoProcess, "job", 1000, i % 4, true).ok());
  }
  parallel.RunUntilQuiescent();

  EXPECT_NEAR(static_cast<double>(c1.NowMicros()) / c4.NowMicros(), 4.0,
              0.2);
}

}  // namespace
}  // namespace papyrus::sprite
