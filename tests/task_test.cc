#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/clock.h"
#include "cadtools/registry.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::task {
namespace {

using oct::BehavioralSpec;
using oct::DesignPayload;
using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;
using oct::TextData;

class TaskManagerTest : public ::testing::Test {
 protected:
  TaskManagerTest()
      : clock_(0),
        db_(&clock_),
        network_(&clock_, 4),
        registry_(cadtools::CreateStandardRegistry()),
        manager_(&db_, registry_.get(), &network_, &library_) {
    EXPECT_TRUE(tdl::RegisterThesisTemplates(&library_).ok());
  }

  ObjectId MustCreate(const std::string& name, DesignPayload payload) {
    auto id = db_.CreateVersion(name, std::move(payload));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  ManualClock clock_;
  oct::OctDatabase db_;
  sprite::Network network_;
  std::unique_ptr<cadtools::ToolRegistry> registry_;
  tdl::TemplateLibrary library_;
  TaskManager manager_;
};

TEST_F(TaskManagerTest, SingleStepTaskCommits) {
  ObjectId in = MustCreate("alu", Layout{.num_cells = 5, .area = 900.0});
  TaskInvocation inv;
  inv.template_name = "Padp";
  inv.inputs = {in};
  inv.output_names = {"alu.padded"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->task_name, "Padp");
  ASSERT_EQ(rec->outputs.size(), 1u);
  EXPECT_EQ(rec->outputs[0].name, "alu.padded");
  ASSERT_EQ(rec->steps.size(), 1u);
  EXPECT_EQ(rec->steps[0].tool, "padplace");
  EXPECT_EQ(rec->steps[0].exit_status, 0);
  // The output is visible and padded.
  auto out = db_.Get(rec->outputs[0]);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::get<Layout>((*out)->payload).has_pads);
  EXPECT_EQ(manager_.tasks_committed(), 1);
}

TEST_F(TaskManagerTest, InvocationValidation) {
  TaskInvocation inv;
  inv.template_name = "NoSuchTask";
  EXPECT_TRUE(manager_.Invoke(inv).status().IsNotFound());

  inv.template_name = "Padp";
  inv.inputs = {};  // needs 1
  inv.output_names = {"x"};
  EXPECT_TRUE(manager_.Invoke(inv).status().IsInvalidArgument());

  ObjectId in = MustCreate("alu", Layout{});
  inv.inputs = {in};
  inv.output_names = {};  // needs 1
  EXPECT_TRUE(manager_.Invoke(inv).status().IsInvalidArgument());
}

TEST_F(TaskManagerTest, StructureSynthesisFullFlow) {
  ObjectId in = MustCreate("shifter", BehavioralSpec{8, 8, 12, 77});
  ObjectId cmds = MustCreate("sim.cmd", TextData{"run 100"});
  TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {in, cmds};
  inv.output_names = {"shifter.layout", "shifter.stats"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Six steps: NetlistCompile, Logic_Synthesis, Pads_Placement (from the
  // Padp subtask), Place_and_Route, Simulate, Chip_Statistics_Collection.
  ASSERT_EQ(rec->steps.size(), 6u);
  std::set<std::string> names;
  for (const StepRecord& s : rec->steps) names.insert(s.step_name);
  EXPECT_TRUE(names.count("NetlistCompile"));
  EXPECT_TRUE(names.count("Logic_Synthesis"));
  EXPECT_TRUE(names.count("Pads_Placement"));  // subtask expanded in-line
  EXPECT_TRUE(names.count("Place_and_Route"));
  EXPECT_TRUE(names.count("Simulate"));
  EXPECT_TRUE(names.count("Chip_Statistics_Collection"));
  // History is ordered by completion time (§3.3.2).
  for (size_t i = 1; i < rec->steps.size(); ++i) {
    EXPECT_LE(rec->steps[i - 1].completion_micros,
              rec->steps[i].completion_micros);
  }
  // Outputs exist; layout is padded (pads placed before place&route in
  // this flow) and stats are text.
  auto layout = db_.Get(rec->outputs[0]);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(std::holds_alternative<Layout>((*layout)->payload));
  auto stats = db_.Get(rec->outputs[1]);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(std::holds_alternative<TextData>((*stats)->payload));
}

TEST_F(TaskManagerTest, IntermediatesAreDiscardedAfterCommit) {
  ObjectId in = MustCreate("shifter", BehavioralSpec{8, 8, 12, 77});
  ObjectId cmds = MustCreate("sim.cmd", TextData{"run"});
  TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {in, cmds};
  inv.output_names = {"out.layout", "out.stats"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Every object other than the task inputs/outputs is invisible.
  int visible = 0;
  db_.ForEach([&](const oct::ObjectRecord& r) {
    if (r.visible) ++visible;
  });
  EXPECT_EQ(visible, 4);  // 2 inputs + 2 outputs
  // But the intermediate versions still exist (invisibly) for history.
  EXPECT_GT(db_.TotalVersionCount(), 4);
}

TEST_F(TaskManagerTest, ControlDependencyOrdersSimulateAfterPlaceAndRoute) {
  ObjectId in = MustCreate("shifter", BehavioralSpec{8, 8, 12, 77});
  ObjectId cmds = MustCreate("sim.cmd", TextData{"run"});
  TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {in, cmds};
  inv.output_names = {"o1", "o2"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok());
  int64_t pr_completion = -1;
  int64_t sim_dispatch = -1;
  for (const StepRecord& s : rec->steps) {
    if (s.step_name == "Place_and_Route") pr_completion = s.completion_micros;
    if (s.step_name == "Simulate") sim_dispatch = s.dispatch_micros;
  }
  ASSERT_GE(pr_completion, 0);
  ASSERT_GE(sim_dispatch, 0);
  // Simulate is control-dependent on Place_and_Route: it may not start
  // before P&R completes, even though there is no data dependency.
  EXPECT_GE(sim_dispatch, pr_completion);
}

TEST_F(TaskManagerTest, ParallelStepsOverlapAcrossWorkstations) {
  ASSERT_TRUE(library_
                  .Add("task Fanout {In} {O1 O2 O3}\n"
                       "step A {In} {O1} {espresso In}\n"
                       "step B {In} {O2} {espresso In}\n"
                       "step C {In} {O3} {espresso In}\n")
                  .ok());
  ObjectId in = MustCreate("cell", LogicNetwork{.minterms = 500,
                                                .literals = 900,
                                                .seed = 9});
  TaskInvocation inv;
  inv.template_name = "Fanout";
  inv.inputs = {in};
  inv.output_names = {"a", "b", "c"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The three steps were dispatched to distinct hosts and their execution
  // intervals overlap.
  std::set<sprite::HostId> hosts;
  for (const StepRecord& s : rec->steps) hosts.insert(s.host);
  EXPECT_EQ(hosts.size(), 3u);
  int64_t min_completion = rec->steps[0].completion_micros;
  int64_t max_dispatch = 0;
  for (const StepRecord& s : rec->steps) {
    min_completion = std::min(min_completion, s.completion_micros);
    max_dispatch = std::max(max_dispatch, s.dispatch_micros);
  }
  EXPECT_LT(max_dispatch, min_completion);  // out-of-order issue overlap
}

TEST_F(TaskManagerTest, NonMigratableStepRunsOnHomeHost) {
  TaskInvocation inv;
  inv.template_name = "Create_Logic_Description";
  inv.inputs = {};
  inv.output_names = {"shifter.logic"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->steps.size(), 2u);
  for (const StepRecord& s : rec->steps) {
    if (s.step_name == "Enter_Logic") {
      EXPECT_EQ(s.host, network_.home_host());
    }
  }
  auto out = db_.Get(rec->outputs[0]);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::holds_alternative<LogicNetwork>((*out)->payload));
}

TEST_F(TaskManagerTest, OptionOverridesReachTheTool) {
  ObjectId in = MustCreate("cell", LogicNetwork{.minterms = 100, .seed = 3});
  TaskInvocation inv;
  inv.template_name = "PLA_Generation";
  inv.inputs = {in};
  inv.output_names = {"cell.layout"};
  // Force espresso to emit equation format: pleasure then rejects it.
  inv.option_overrides["Two_Level_Minimization"] = "-o equitott cell";
  auto rec = manager_.Invoke(inv);
  EXPECT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsAborted());
}

// --- Programmable abort semantics (Figures 3.4, 3.7, 4.3) ----------------

/// Observer that changes a step's options on each restart — the thesis'
/// "try different parameters after restart" workflow.
class RetryObserver : public TaskObserver {
 public:
  RetryObserver(std::string step, std::string options_pattern)
      : step_(std::move(step)), pattern_(std::move(options_pattern)) {}

  void OnStepReady(const std::string& step_name, int restart_count,
                   std::string* options) override {
    if (step_name == step_ && restart_count > 0) {
      std::string opts = pattern_;
      size_t pos = opts.find("%d");
      if (pos != std::string::npos) {
        opts.replace(pos, 2, std::to_string(restart_count));
      }
      *options = opts;
    }
  }
  void OnTaskRestarted(const std::string&, int resumed) override {
    restarts_.push_back(resumed);
  }

  std::vector<int> restarts_;

 private:
  std::string step_;
  std::string pattern_;
};

TEST_F(TaskManagerTest, PlaGenerationRestartPreservesEspressoWork) {
  ObjectId in = MustCreate(
      "cell", LogicNetwork{.num_inputs = 8,
                           .num_outputs = 4,
                           .minterms = 60,
                           .literals = 120,
                           .format = oct::DesignFormat::kBlif,
                           .seed = 21});
  // First dispatch of Array_Layout gets an impossible area constraint; on
  // restart the observer drops it.
  class PandaObserver : public TaskObserver {
   public:
    void OnStepReady(const std::string& step, int restart_count,
                     std::string* options) override {
      if (step == "Array_Layout") {
        *options = restart_count == 0 ? "-maxarea 1" : "";
      }
      if (step == "Two_Level_Minimization") ++espresso_runs_;
      if (step == "Pla_Folding") ++folding_runs_;
    }
    int espresso_runs_ = 0;
    int folding_runs_ = 0;
  } observer;

  TaskInvocation inv;
  inv.template_name = "PLA_Generation";
  inv.inputs = {in};
  inv.output_names = {"cell.layout"};
  auto rec = manager_.Invoke(inv, &observer);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->restarts, 1);
  // Espresso ran once (its work was preserved across the restart);
  // folding was re-executed (§3.3.3 Figure 3.7 dotted line).
  EXPECT_EQ(observer.espresso_runs_, 1);
  EXPECT_EQ(observer.folding_runs_, 2);
  // The final history contains each step exactly once.
  ASSERT_EQ(rec->steps.size(), 3u);
  std::set<std::string> names;
  for (const StepRecord& s : rec->steps) names.insert(s.step_name);
  EXPECT_EQ(names.size(), 3u);
}

TEST_F(TaskManagerTest, RestartLimitAbortsAndCleansUp) {
  ObjectId in = MustCreate("cell",
                           LogicNetwork{.num_inputs = 8,
                                        .num_outputs = 4,
                                        .minterms = 60,
                                        .format = oct::DesignFormat::kBlif,
                                        .seed = 21});
  TaskInvocation inv;
  inv.template_name = "PLA_Generation";
  inv.inputs = {in};
  inv.output_names = {"cell.layout"};
  // Impossible constraint with no observer relief: restarts until the cap.
  inv.option_overrides["Array_Layout"] = "-maxarea 1";
  inv.max_restarts = 3;
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsAborted());
  // All side effects removed: only the input remains visible.
  int visible = 0;
  db_.ForEach([&](const oct::ObjectRecord& r) {
    if (r.visible) ++visible;
  });
  EXPECT_EQ(visible, 1);
  EXPECT_EQ(manager_.tasks_aborted(), 1);
}

TEST_F(TaskManagerTest, MacroPlaceAndRouteResumesAfterPlacement) {
  // Detailed routing has a wire budget; the observer raises the global
  // router's effort on each restart, changing the wire length until it
  // fits (Figure 3.4: rework global routing, keep floorplan+placement).
  class Fig34Observer : public TaskObserver {
   public:
    void OnStepReady(const std::string& step, int restart_count,
                     std::string* options) override {
      ++runs_[step];
      if (step == "Global_Routing" && restart_count > 0) {
        *options = "-e effort" + std::to_string(restart_count);
      }
      if (step == "Detailed_Routing") {
        *options = "-d -maxwire 5200";
      }
    }
    std::map<std::string, int> runs_;
  };

  // Sweep input seeds until one makes the first global route exceed the
  // wire budget (failure injection is deterministic per seed).
  for (uint64_t seed = 1; seed < 40; ++seed) {
    Fig34Observer observer;
    ObjectId in = MustCreate("chip" + std::to_string(seed),
                             Layout{.num_cells = 50,
                                    .area = 30000.0,
                                    .style = "macro",
                                    .seed = seed});
    TaskInvocation inv;
    inv.template_name = "Macro_Place_and_Route";
    inv.inputs = {in};
    inv.output_names = {"chip.routed" + std::to_string(seed)};
    inv.max_restarts = 16;
    auto rec = manager_.Invoke(inv, &observer);
    if (!rec.ok() || rec->restarts == 0) continue;
    // Floor planning and placement ran exactly once: their work was
    // preserved across every restart.
    EXPECT_EQ(observer.runs_["Floor_Planning"], 1);
    EXPECT_EQ(observer.runs_["Placement"], 1);
    EXPECT_GT(observer.runs_["Global_Routing"], 1);
    return;
  }
  FAIL() << "no seed triggered a detailed-routing failure";
}

TEST_F(TaskManagerTest, MosaicoCompactionFallback) {
  // Sweep input seeds until we see both behaviours: horizontal-first
  // succeeding (no Vertical_Compaction step) and horizontal failing with
  // vertical succeeding (fallback taken via $status).
  bool saw_direct = false;
  bool saw_fallback = false;
  for (uint64_t seed = 0; seed < 40 && !(saw_direct && saw_fallback);
       ++seed) {
    ObjectId in = MustCreate(
        "chip" + std::to_string(seed),
        Layout{.num_cells = 30, .area = 20000.0, .style = "macro",
               .seed = seed});
    TaskInvocation inv;
    inv.template_name = "Mosaico";
    inv.inputs = {in};
    inv.output_names = {"out" + std::to_string(seed),
                        "stats" + std::to_string(seed)};
    inv.max_restarts = 0;  // don't retry both-fail seeds here
    auto rec = manager_.Invoke(inv);
    if (!rec.ok()) continue;  // both compactions failed for this seed
    bool has_vertical = false;
    bool has_horizontal = false;
    for (const StepRecord& s : rec->steps) {
      if (s.step_name == "Vertical_Compaction") has_vertical = true;
      if (s.step_name == "Horizontal_Compaction" && s.exit_status == 0) {
        has_horizontal = true;
      }
    }
    if (has_horizontal && !has_vertical) saw_direct = true;
    if (has_vertical) {
      saw_fallback = true;
      // The failed horizontal attempt stays in the history trace.
      bool failed_horizontal = false;
      for (const StepRecord& s : rec->steps) {
        if (s.step_name == "Horizontal_Compaction" && s.exit_status != 0) {
          failed_horizontal = true;
        }
      }
      EXPECT_TRUE(failed_horizontal);
    }
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_fallback);
}

TEST_F(TaskManagerTest, MosaicoBothFailRestartsFromPowerGround) {
  // Find a seed where both compaction directions fail, then recover by
  // retrying channel routing with a different router (per §4.2.3: after
  // restart users try different parameters for the following steps).
  for (uint64_t seed = 0; seed < 200; ++seed) {
    ObjectId in = MustCreate(
        "chip" + std::to_string(seed),
        Layout{.num_cells = 30, .area = 20000.0, .style = "macro",
               .seed = seed});
    TaskInvocation probe;
    probe.template_name = "Mosaico";
    probe.inputs = {in};
    probe.output_names = {"p.out" + std::to_string(seed),
                          "p.stats" + std::to_string(seed)};
    probe.max_restarts = 0;
    if (manager_.Invoke(probe).ok()) continue;  // not a both-fail seed

    RetryObserver observer("Channel_Routing", "-d -r YACR%d");
    TaskInvocation inv = probe;
    inv.output_names = {"r.out", "r.stats"};
    inv.max_restarts = 8;
    auto rec = manager_.Invoke(inv, &observer);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_GE(rec->restarts, 1);
    // Channel definition and global routing were not re-executed: every
    // restart resumed after Power/Ground current calculation.
    int channel_defs = 0;
    for (const StepRecord& s : rec->steps) {
      if (s.step_name == "Channel_Definition") ++channel_defs;
    }
    EXPECT_EQ(channel_defs, 1);
    return;
  }
  FAIL() << "no both-fail seed found in 200 tries";
}

TEST_F(TaskManagerTest, AbortCommandRemovesAllSideEffects) {
  ASSERT_TRUE(library_
                  .Add("task Doomed {In} {Out}\n"
                       "step A {In} {tmp} {espresso In}\n"
                       "abort\n"
                       "step B {tmp} {Out} {pleasure tmp}\n")
                  .ok());
  ObjectId in = MustCreate("cell", LogicNetwork{.minterms = 10});
  TaskInvocation inv;
  inv.template_name = "Doomed";
  inv.inputs = {in};
  inv.output_names = {"never"};
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsAborted());
  int visible = 0;
  db_.ForEach([&](const oct::ObjectRecord& r) {
    if (r.visible) ++visible;
  });
  EXPECT_EQ(visible, 1);  // only the input
}

TEST_F(TaskManagerTest, StatusVariableDrivesConditionalFlow) {
  ASSERT_TRUE(library_
                  .Add("task Cond {In} {Out}\n"
                       "step Try {In} {Out} {panda -maxarea 1 In}\n"
                       "if {$status} {step Fallback {In} {Out} {panda In}}\n")
                  .ok());
  ObjectId in = MustCreate("cell",
                           LogicNetwork{.num_inputs = 4,
                                        .num_outputs = 2,
                                        .minterms = 20,
                                        .format = oct::DesignFormat::kPla,
                                        .seed = 2});
  TaskInvocation inv;
  inv.template_name = "Cond";
  inv.inputs = {in};
  inv.output_names = {"lay"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->steps.size(), 2u);
  EXPECT_NE(rec->steps[0].exit_status, 0);
  EXPECT_EQ(rec->steps[1].step_name, "Fallback");
  EXPECT_EQ(rec->steps[1].exit_status, 0);
}

TEST_F(TaskManagerTest, AttributeCommandBranchesOnObjectProperties) {
  // §4.2.2: design flow decisions based on a design object's attributes.
  ASSERT_TRUE(
      library_
          .Add("task AttrFlow {In} {Out}\n"
               "if {[attribute In minterms] > 50} {\n"
               "  step Minimize {In} {Out} {espresso -o pleasure In}\n"
               "} else {\n"
               "  step Passthrough {In} {Out} {espresso -o equitott In}\n"
               "}\n")
          .ok());
  ObjectId big = MustCreate("big", LogicNetwork{.minterms = 100, .seed = 1});
  TaskInvocation inv;
  inv.template_name = "AttrFlow";
  inv.inputs = {big};
  inv.output_names = {"big.out"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->steps[0].step_name, "Minimize");

  ObjectId small = MustCreate("small",
                              LogicNetwork{.minterms = 10, .seed = 1});
  inv.inputs = {small};
  inv.output_names = {"small.out"};
  rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->steps[0].step_name, "Passthrough");
}

TEST_F(TaskManagerTest, AttributeValuesAreCachedInTheStore) {
  ASSERT_TRUE(library_
                  .Add("task A {In} {}\n"
                       "if {[attribute In minterms] > 0} {}\n")
                  .ok());
  ObjectId in = MustCreate("c", LogicNetwork{.minterms = 42});
  oct::AttributeStore store;
  TaskInvocation inv;
  inv.template_name = "A";
  inv.inputs = {in};
  inv.attribute_store = &store;
  ASSERT_TRUE(manager_.Invoke(inv).ok());
  auto cached = store.GetValue(in, "minterms");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, "42");
  auto entry = store.Get(in, "minterms");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->compute_tool, "espresso");
}

TEST_F(TaskManagerTest, UnknownToolAbortsTask) {
  ASSERT_TRUE(library_
                  .Add("task Bad {In} {Out}\n"
                       "step S {In} {Out} {no_such_tool In}\n")
                  .ok());
  ObjectId in = MustCreate("c", LogicNetwork{});
  TaskInvocation inv;
  inv.template_name = "Bad";
  inv.inputs = {in};
  inv.output_names = {"o"};
  auto rec = manager_.Invoke(inv);
  EXPECT_FALSE(rec.ok());
}

TEST_F(TaskManagerTest, UnsatisfiableDependencyAborts) {
  ASSERT_TRUE(library_
                  .Add("task Stuck {In} {Out}\n"
                       "step S {ghost} {Out} {espresso ghost}\n")
                  .ok());
  ObjectId in = MustCreate("c", LogicNetwork{});
  TaskInvocation inv;
  inv.template_name = "Stuck";
  inv.inputs = {in};
  inv.output_names = {"o"};
  // Pre-flight lint already refuses this template (undefined-input);
  // override it so the scheduler's own unsatisfiable-dependency abort
  // path stays exercised.
  inv.override_lint = true;
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsAborted());
  EXPECT_NE(rec.status().message().find("unsatisfiable"),
            std::string::npos);
}

TEST_F(TaskManagerTest, PreflightLintRefusesBrokenTemplateByDefault) {
  ASSERT_TRUE(library_
                  .Add("task Stuck2 {In} {Out}\n"
                       "step S {ghost} {Out} {espresso ghost}\n")
                  .ok());
  ObjectId in = MustCreate("c2", LogicNetwork{});
  TaskInvocation inv;
  inv.template_name = "Stuck2";
  inv.inputs = {in};
  inv.output_names = {"o2"};
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsFailedPrecondition())
      << rec.status().ToString();
  EXPECT_NE(rec.status().message().find("undefined-input"),
            std::string::npos)
      << rec.status().message();
  // Refusal happens before any step or side effect.
  EXPECT_EQ(manager_.steps_executed(), 0);
}

TEST_F(TaskManagerTest, FailedStepWithoutHandlerAbortsAtCommit) {
  ASSERT_TRUE(library_
                  .Add("task F {In} {}\n"
                       "step Check {In} {} {mosaicoRC In}\n")
                  .ok());
  // Unrouted layout: mosaicoRC fails; nothing handles it.
  ObjectId in = MustCreate("c", Layout{.routed = false});
  TaskInvocation inv;
  inv.template_name = "F";
  inv.inputs = {in};
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_NE(rec.status().message().find("not fully routed"),
            std::string::npos);
}

TEST_F(TaskManagerTest, NestedSubtasksExpandInline) {
  ASSERT_TRUE(library_
                  .Add("task Inner {A} {B}\n"
                       "step I1 {A} {B} {espresso A}\n")
                  .ok());
  ASSERT_TRUE(library_
                  .Add("task Middle {X} {Y}\n"
                       "subtask Inner {X} {mid}\n"
                       "step M1 {mid} {Y} {espresso mid}\n")
                  .ok());
  ASSERT_TRUE(library_
                  .Add("task Outer {P} {Q}\n"
                       "subtask Middle {P} {out}\n"
                       "step O1 {out} {Q} {espresso out}\n")
                  .ok());
  ObjectId in = MustCreate("c", LogicNetwork{.minterms = 64, .seed = 5});
  TaskInvocation inv;
  inv.template_name = "Outer";
  inv.inputs = {in};
  inv.output_names = {"c.min"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_EQ(rec->steps.size(), 3u);
  std::set<std::string> names;
  for (const StepRecord& s : rec->steps) names.insert(s.step_name);
  EXPECT_TRUE(names.count("I1"));
  EXPECT_TRUE(names.count("M1"));
  EXPECT_TRUE(names.count("O1"));
}

TEST_F(TaskManagerTest, SubtaskArityMismatchAbortsContainingTask) {
  ASSERT_TRUE(library_.Add("task Inner {A B} {C}\nstep S {A} {C} "
                           "{espresso A}\n")
                  .ok());
  ASSERT_TRUE(library_
                  .Add("task Outer {P} {Q}\n"
                       "subtask Inner {P} {Q}\n")  // Inner wants 2 inputs
                  .ok());
  ObjectId in = MustCreate("c", LogicNetwork{});
  TaskInvocation inv;
  inv.template_name = "Outer";
  inv.inputs = {in};
  inv.output_names = {"q"};
  // The linter catches this statically (subtask-arity); override so the
  // interpreter's own run-time arity abort stays exercised.
  inv.override_lint = true;
  auto rec = manager_.Invoke(inv);
  ASSERT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsInvalidArgument());
}

TEST_F(TaskManagerTest, InvokeManyRunsTasksConcurrently) {
  std::vector<TaskInvocation> invocations;
  for (int i = 0; i < 3; ++i) {
    ObjectId in = MustCreate("cell" + std::to_string(i),
                             Layout{.num_cells = 10,
                                    .area = 1000.0 + i,
                                    .seed = static_cast<uint64_t>(i)});
    TaskInvocation inv;
    inv.template_name = "Padp";
    inv.inputs = {in};
    inv.output_names = {"out" + std::to_string(i)};
    invocations.push_back(inv);
  }
  auto results = manager_.InvokeMany(invocations);
  ASSERT_EQ(results.size(), 3u);
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Three padplace runs overlapped: the tasks used different hosts.
  std::set<sprite::HostId> hosts;
  for (auto& r : results) hosts.insert(r->steps[0].host);
  EXPECT_GT(hosts.size(), 1u);
  EXPECT_EQ(manager_.tasks_committed(), 3);
}

TEST_F(TaskManagerTest, RemigrationMovesStuckProcesses) {
  // All remote hosts are owner-active at dispatch, so steps start on the
  // home node; owners leave mid-run and re-migration picks the work up.
  for (sprite::HostId h = 1; h < 4; ++h) {
    ASSERT_TRUE(network_.SetOwnerActive(h, true).ok());
    ASSERT_TRUE(network_.ScheduleOwnerEvent(h, 50000, false).ok());
  }
  ASSERT_TRUE(library_
                  .Add("task Wide {In} {O1 O2 O3 O4}\n"
                       "step A {In} {O1} {wolfe In}\n"
                       "step B {In} {O2} {wolfe In}\n"
                       "step C {In} {O3} {wolfe In}\n"
                       "step D {In} {O4} {wolfe In}\n")
                  .ok());
  ObjectId in = MustCreate("cell", LogicNetwork{.literals = 2000,
                                                .levels = 6,
                                                .seed = 8});
  TaskInvocation inv;
  inv.template_name = "Wide";
  inv.inputs = {in};
  inv.output_names = {"a", "b", "c", "d"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(manager_.remigrations(), 0);
}

TEST_F(TaskManagerTest, HistoryRecordsActualInvocationStrings) {
  ObjectId in = MustCreate("alu", Layout{.num_cells = 5, .area = 900.0});
  TaskInvocation inv;
  inv.template_name = "Padp";
  inv.inputs = {in};
  inv.output_names = {"alu.padded"};
  auto rec = manager_.Invoke(inv);
  ASSERT_TRUE(rec.ok());
  // Formal names in the template's invocation line were replaced by the
  // actual object names.
  EXPECT_NE(rec->steps[0].invocation.find("alu.padded"),
            std::string::npos);
  EXPECT_NE(rec->steps[0].invocation.find("padplace"), std::string::npos);
  EXPECT_EQ(rec->steps[0].invocation.find("Outcell"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parallel-executor determinism (task/step_executor.h)

/// Every field of a step record, rendered into one line. Any divergence
/// between worker-pool sizes — ordering, timestamps, hosts, payload-derived
/// output versions — shows up as a string mismatch.
std::string SerializeStep(const StepRecord& s) {
  std::ostringstream out;
  out << s.internal_id << '|' << s.step_name << '|' << s.tool << '|'
      << s.invocation << '|';
  for (const ObjectId& id : s.inputs) out << id.ToString() << ',';
  out << '|';
  for (const ObjectId& id : s.outputs) out << id.ToString() << ',';
  out << '|' << s.dispatch_micros << '|' << s.completion_micros << '|'
      << s.host << '|' << s.exit_status << '|' << s.message << '|'
      << s.cache_hit;
  return out.str();
}

std::string SerializeHistory(const TaskHistoryRecord& rec) {
  std::ostringstream out;
  out << rec.task_name << '|';
  for (const ObjectId& id : rec.inputs) out << id.ToString() << ',';
  out << '|';
  for (const ObjectId& id : rec.outputs) out << id.ToString() << ',';
  out << '|' << rec.invoke_micros << '|' << rec.commit_micros << '|'
      << rec.restarts << '|' << rec.steps_lost << '|' << rec.steps_retried
      << '|' << rec.backoff_micros_total << '|' << rec.steps_elided << '\n';
  for (const StepRecord& s : rec.steps) out << "  " << SerializeStep(s)
                                            << '\n';
  return out.str();
}

/// Runs a fixed multi-task workload (two 6-step Structure_Synthesis flows
/// plus two Padp tasks, interleaved by InvokeMany across 4 hosts) on a
/// fresh stack with `workers` executor threads, and renders everything the
/// task manager produced.
std::string RunSeededWorkload(int workers) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 4);
  auto registry = cadtools::CreateStandardRegistry();
  tdl::TemplateLibrary library;
  EXPECT_TRUE(tdl::RegisterThesisTemplates(&library).ok());
  TaskManager manager(&db, registry.get(), &network, &library);
  manager.set_worker_threads(workers);

  std::vector<TaskInvocation> invocations;
  for (int i = 0; i < 2; ++i) {
    auto spec = db.CreateVersion("spec" + std::to_string(i),
                                 BehavioralSpec{8, 8, 12, 70u + i});
    auto cmds = db.CreateVersion("cmd" + std::to_string(i),
                                 TextData{"run 100"});
    EXPECT_TRUE(spec.ok() && cmds.ok());
    TaskInvocation inv;
    inv.template_name = "Structure_Synthesis";
    inv.inputs = {*spec, *cmds};
    inv.output_names = {"layout" + std::to_string(i),
                        "stats" + std::to_string(i)};
    inv.seed = 42 + i;
    invocations.push_back(inv);
  }
  for (int i = 0; i < 2; ++i) {
    auto in = db.CreateVersion(
        "cell" + std::to_string(i),
        Layout{.num_cells = 10 + i,
               .area = 900.0 + i,
               .seed = static_cast<uint64_t>(i)});
    EXPECT_TRUE(in.ok());
    TaskInvocation inv;
    inv.template_name = "Padp";
    inv.inputs = {*in};
    inv.output_names = {"cell" + std::to_string(i) + ".padded"};
    inv.seed = 7 + i;
    invocations.push_back(inv);
  }

  auto results = manager.InvokeMany(invocations);
  EXPECT_EQ(results.size(), invocations.size());
  std::ostringstream out;
  for (auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) out << SerializeHistory(*r);
  }
  // Database end state: every surviving version with its payload bytes.
  db.ForEach([&](const oct::ObjectRecord& rec) {
    if (rec.reclaimed) return;
    out << rec.id.ToString() << '|' << rec.visible << '|'
        << rec.size_bytes << '|' << oct::PayloadToString(rec.payload)
        << '\n';
  });
  out << "committed=" << manager.tasks_committed()
      << " executed=" << manager.steps_executed()
      << " violations=" << manager.flow_violations() << '\n';
  EXPECT_EQ(manager.flow_violations(), 0);
  return out.str();
}

TEST(ParallelDeterminismTest, HistoriesAreIdenticalAtAnyWorkerCount) {
  // The worker pool only changes *where* tool payloads burn CPU; every
  // observable — step order, timestamps, hosts, versions, payloads — is
  // decided by the virtual-time schedule and must not move.
  std::string serial = RunSeededWorkload(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunSeededWorkload(2), serial);
  EXPECT_EQ(RunSeededWorkload(8), serial);
}

TEST(ParallelDeterminismTest, WorkerCountIsReconfigurable) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 2);
  auto registry = cadtools::CreateStandardRegistry();
  tdl::TemplateLibrary library;
  ASSERT_TRUE(tdl::RegisterThesisTemplates(&library).ok());
  TaskManager manager(&db, registry.get(), &network, &library);
  manager.set_worker_threads(4);
  EXPECT_EQ(manager.worker_threads(), 4);
  manager.set_worker_threads(0);  // clamped to serial
  EXPECT_EQ(manager.worker_threads(), 1);
}

TEST_F(TaskManagerTest, SingleAssignmentCreatesNewVersions) {
  ObjectId in = MustCreate("alu", Layout{.num_cells = 5, .area = 900.0});
  TaskInvocation inv;
  inv.template_name = "Padp";
  inv.inputs = {in};
  inv.output_names = {"alu.padded"};
  auto r1 = manager_.Invoke(inv);
  auto r2 = manager_.Invoke(inv);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->outputs[0].version, 1);
  EXPECT_EQ(r2->outputs[0].version, 2);
  // Both versions visible: updates never overwrite (§3.2).
  EXPECT_TRUE(db_.Get(r1->outputs[0]).ok());
  EXPECT_TRUE(db_.Get(r2->outputs[0]).ok());
}

}  // namespace
}  // namespace papyrus::task
