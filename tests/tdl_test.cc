#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "tdl/template.h"

namespace papyrus::tdl {
namespace {

TEST(TemplateHeaderTest, ParsesTaskCommand) {
  auto tmpl = ParseTemplateHeader(
      "task Padp {Incell} {Outcell}\n"
      "step Pads_Placement {Incell} {Outcell} {padplace -c -o Outcell "
      "Incell}\n");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->name, "Padp");
  ASSERT_EQ(tmpl->formal_inputs.size(), 1u);
  EXPECT_EQ(tmpl->formal_inputs[0], "Incell");
  ASSERT_EQ(tmpl->formal_outputs.size(), 1u);
  EXPECT_EQ(tmpl->formal_outputs[0], "Outcell");
}

TEST(TemplateHeaderTest, MultipleFormals) {
  auto tmpl = ParseTemplateHeader(
      "task T {A B C} {X Y}\nstep S {A} {X} {noop A}\n");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->formal_inputs.size(), 3u);
  EXPECT_EQ(tmpl->formal_outputs.size(), 2u);
}

TEST(TemplateHeaderTest, EmptyFormalLists) {
  auto tmpl = ParseTemplateHeader("task T {} {}\n");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_TRUE(tmpl->formal_inputs.empty());
  EXPECT_TRUE(tmpl->formal_outputs.empty());
}

TEST(TemplateHeaderTest, LeadingCommentsAllowed) {
  auto tmpl = ParseTemplateHeader("# a template\ntask T {} {}\n");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->name, "T");
}

TEST(TemplateHeaderTest, RejectsMalformedHeaders) {
  EXPECT_FALSE(ParseTemplateHeader("").ok());
  EXPECT_FALSE(ParseTemplateHeader("step S {} {} {noop}").ok());
  EXPECT_FALSE(ParseTemplateHeader("task OnlyName").ok());
  EXPECT_FALSE(ParseTemplateHeader("task {} {} {}").ok());
  EXPECT_FALSE(ParseTemplateHeader("task T {A} {B} extra").ok());
}

TEST(TemplateLibraryTest, AddFindRemove) {
  TemplateLibrary lib;
  ASSERT_TRUE(lib.Add("task T {A} {B}\nstep S {A} {B} {noop A}\n").ok());
  EXPECT_TRUE(lib.Has("T"));
  auto t = lib.Find("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "T");
  EXPECT_TRUE(lib.Find("missing").status().IsNotFound());
  EXPECT_TRUE(lib.Remove("T"));
  EXPECT_FALSE(lib.Has("T"));
  EXPECT_FALSE(lib.Remove("T"));
}

TEST(TemplateLibraryTest, AddReplacesSameName) {
  TemplateLibrary lib;
  ASSERT_TRUE(lib.Add("task T {A} {B}\n").ok());
  ASSERT_TRUE(lib.Add("task T {A C} {B}\n").ok());
  auto t = lib.Find("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->formal_inputs.size(), 2u);
  EXPECT_EQ(lib.size(), 1u);
}

TEST(TemplateLibraryTest, ThesisTemplatesRegister) {
  TemplateLibrary lib;
  ASSERT_TRUE(RegisterThesisTemplates(&lib).ok());
  for (const char* name :
       {"Padp", "Structure_Synthesis", "Mosaico", "Create_Logic_Description",
        "Logic_Simulation", "Standard_Cell_Place_and_Route", "Place_Pads",
        "PLA_Generation", "Macro_Place_and_Route"}) {
    EXPECT_TRUE(lib.Has(name)) << name;
  }
  auto ss = lib.Find("Structure_Synthesis");
  ASSERT_TRUE(ss.ok());
  ASSERT_EQ((*ss)->formal_inputs.size(), 2u);
  EXPECT_EQ((*ss)->formal_inputs[0], "Incell");
  EXPECT_EQ((*ss)->formal_inputs[1], "Musa_Command");
  ASSERT_EQ((*ss)->formal_outputs.size(), 2u);
}

TEST(TemplateLibraryTest, LoadErrorsNameTheFileAndLine) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "papyrus_tdl_load_error_test";
  fs::create_directories(dir);
  const fs::path bad = dir / "broken.tdl";
  {
    std::ofstream out(bad);
    out << "task Broken {In} {Out}\n"
        << "step Fine {In} {mid} {espresso In}\n"
        << "step Oops {mid} {Out} {espresso mid\n";  // unbalanced brace
  }

  TemplateLibrary lib;
  Status st = lib.AddFromFile(bad.string());
  EXPECT_FALSE(st.ok());
  // The message pinpoints the file and the line of the broken command.
  EXPECT_NE(st.message().find(bad.string()), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("close-brace"), std::string::npos)
      << st.message();

  // LoadDirectory propagates the same context.
  TemplateLibrary lib2;
  auto loaded = lib2.LoadDirectory(dir.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(bad.string()),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);

  fs::remove_all(dir);
}

TEST(TemplateLibraryTest, TemplateNamesSorted) {
  TemplateLibrary lib;
  ASSERT_TRUE(lib.Add("task Zeta {} {}\n").ok());
  ASSERT_TRUE(lib.Add("task Alpha {} {}\n").ok());
  auto names = lib.TemplateNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Alpha");
  EXPECT_EQ(names[1], "Zeta");
}

}  // namespace
}  // namespace papyrus::tdl
