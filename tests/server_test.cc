#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/macros.h"
#include "meta/inference.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/daemon.h"
#include "server/queue.h"
#include "server/session_manager.h"
#include "server/wire.h"

namespace papyrus::server {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test (re-runs included).
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("server_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireTest, MessageRoundTripsHostileValues) {
  WireMessage msg;
  msg.verb = "submit";
  msg.Add("session", "alpha beta");          // space
  msg.Add("opts", "-p 4 ~weird=100%досье");  // ~, =, %, non-ASCII
  msg.Add("text", "line one\nline two");     // newline must not split
  msg.Add("empty", "");
  std::string line = msg.Format();
  EXPECT_EQ(line.find('\n'), std::string::npos);

  auto parsed = WireMessage::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->verb, "submit");
  ASSERT_EQ(parsed->fields.size(), 4u);
  EXPECT_EQ(*parsed->Find("session"), "alpha beta");
  EXPECT_EQ(*parsed->Find("opts"), "-p 4 ~weird=100%досье");
  EXPECT_EQ(*parsed->Find("text"), "line one\nline two");
  EXPECT_EQ(*parsed->Find("empty"), "");
}

TEST(WireTest, MalformedLinesAreRejected) {
  EXPECT_FALSE(WireMessage::Parse("").ok());
  EXPECT_FALSE(WireMessage::Parse("   ").ok());
  EXPECT_FALSE(WireMessage::Parse("verb bare-token").ok());
  EXPECT_FALSE(WireMessage::Parse("verb ~no-equals").ok());
  EXPECT_FALSE(WireMessage::Parse("verb ~k=%zz").ok());  // bad escape
  EXPECT_TRUE(WireMessage::Parse("verb ~k=v").ok());
}

TEST(WireTest, TaskDescriptionRoundTrips) {
  TaskDescription desc;
  desc.session = "alpha";
  desc.thread = "synth main";
  desc.template_name = "Structure_Synthesis";
  desc.seed = 42;
  desc.input_refs = {"/proj/shifter", "/proj/sim.cmd"};
  desc.output_names = {"s.layout", "s.stats"};
  desc.option_overrides["Synthesis"] = "-effort high";

  auto decoded = TaskDescription::Decode(desc.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->session, "alpha");
  EXPECT_EQ(decoded->thread, "synth main");
  EXPECT_EQ(decoded->template_name, "Structure_Synthesis");
  EXPECT_EQ(decoded->seed, 42u);
  EXPECT_EQ(decoded->input_refs, desc.input_refs);
  EXPECT_EQ(decoded->output_names, desc.output_names);
  EXPECT_EQ(decoded->option_overrides.at("Synthesis"), "-effort high");
}

TEST(WireTest, TaskDescriptionRequiresCoreFields) {
  EXPECT_FALSE(TaskDescription::Decode("task ~session=a").ok());
  EXPECT_FALSE(
      TaskDescription::Decode("task ~session=a ~thread=t").ok());
  EXPECT_FALSE(TaskDescription::Decode("notatask ~session=a").ok());
  EXPECT_FALSE(
      TaskDescription::Decode(
          "task ~session=a ~thread=t ~template=T ~bogus=1")
          .ok());
  EXPECT_TRUE(
      TaskDescription::Decode("task ~session=a ~thread=t ~template=T")
          .ok());
}

// ---------------------------------------------------------------------------
// Persistent queue

TEST(QueueTest, StateSurvivesReopen) {
  std::string dir = FreshDir("queue_reopen");
  ManualClock clock(0);
  {
    auto queue = PersistentQueue::Open(dir, &clock);
    ASSERT_TRUE(queue.ok()) << queue.status().message();
    ASSERT_TRUE((*queue)->Enqueue("alpha", "task one").ok());
    ASSERT_TRUE((*queue)->Enqueue("beta", "task two").ok());
    auto claimed = (*queue)->Claim("w1", 1'000'000);
    ASSERT_TRUE(claimed.ok() && claimed->has_value());
    EXPECT_EQ((*claimed)->id, 1);
    ASSERT_TRUE((*queue)->Complete(1, "w1").ok());
  }
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok()) << queue.status().message();
  EXPECT_EQ((*queue)->DoneCount(), 1);
  EXPECT_EQ((*queue)->PendingCount(), 1);
  EXPECT_EQ((*queue)->recovered(), 0);
  auto task = (*queue)->Get(2);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->session, "beta");
  EXPECT_EQ(task->description, "task two");
  // Ids continue past the restored high-water mark.
  auto id = (*queue)->Enqueue("alpha", "task three");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 3);
}

TEST(QueueTest, LeaseExpiryReturnsTaskToPending) {
  std::string dir = FreshDir("queue_lease");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE((*queue)->Enqueue("alpha", "t").ok());
  auto first = (*queue)->Claim("w1", 5'000);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->attempts, 1);

  // While the lease is live the task is invisible to other claimers.
  auto blocked = (*queue)->Claim("w2", 5'000);
  ASSERT_TRUE(blocked.ok());
  EXPECT_FALSE(blocked->has_value());
  EXPECT_EQ((*queue)->ExpireLeases(), 0);

  clock.AdvanceMicros(5'001);
  EXPECT_EQ((*queue)->ExpireLeases(), 1);
  auto second = (*queue)->Claim("w2", 5'000);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->id, 1);
  EXPECT_EQ((*second)->attempts, 2);
  EXPECT_EQ((*second)->owner, "w2");
}

TEST(QueueTest, StaleOwnerCannotResolveAReclaimedTask) {
  std::string dir = FreshDir("queue_stale");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE((*queue)->Enqueue("alpha", "t").ok());
  ASSERT_TRUE((*queue)->Claim("w1", 5'000).ok());
  clock.AdvanceMicros(10'000);
  (*queue)->ExpireLeases();
  ASSERT_TRUE((*queue)->Claim("w2", 5'000).ok());

  // w1's lease was reaped and w2 holds the task now: the stale owner
  // must not be able to complete, fail, or release it.
  EXPECT_FALSE((*queue)->Complete(1, "w1").ok());
  EXPECT_FALSE((*queue)->Fail(1, "w1", "boom").ok());
  EXPECT_FALSE((*queue)->Release(1, "w1").ok());
  EXPECT_TRUE((*queue)->Complete(1, "w2").ok());
  // Terminal states never regress.
  EXPECT_FALSE((*queue)->Complete(1, "w2").ok());
  EXPECT_EQ((*queue)->DoneCount(), 1);
}

TEST(QueueTest, ReopenRePendsOrphanedClaims) {
  std::string dir = FreshDir("queue_orphan");
  ManualClock clock(0);
  {
    auto queue = PersistentQueue::Open(dir, &clock);
    ASSERT_TRUE(queue.ok());
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t1").ok());
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t2").ok());
    ASSERT_TRUE((*queue)->Claim("w1", 60'000'000).ok());
    // Daemon dies here: the claim is journaled but never resolved.
  }
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ((*queue)->recovered(), 1);
  EXPECT_EQ((*queue)->PendingCount(), 2);
  EXPECT_EQ((*queue)->ClaimedCount(), 0);
  auto claimed = (*queue)->Claim("w2", 1'000);
  ASSERT_TRUE(claimed.ok() && claimed->has_value());
  EXPECT_EQ((*claimed)->id, 1);
  EXPECT_EQ((*claimed)->attempts, 2);
}

TEST(QueueTest, CheckpointCompactsTheJournal) {
  std::string dir = FreshDir("queue_checkpoint");
  fs::path journal = fs::path(dir) / "queue.pjq";
  ManualClock clock(0);
  {
    auto queue = PersistentQueue::Open(dir, &clock);
    ASSERT_TRUE(queue.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*queue)->Enqueue("alpha", "t" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE((*queue)->Claim("w1", 1'000).ok());
    ASSERT_TRUE((*queue)->Complete(1, "w1").ok());
    EXPECT_GT(fs::file_size(journal), 0u);
    ASSERT_TRUE((*queue)->Checkpoint().ok());
    EXPECT_EQ(fs::file_size(journal), 0u);
    // Post-checkpoint traffic journals again.
    ASSERT_TRUE((*queue)->Enqueue("alpha", "after").ok());
    EXPECT_GT(fs::file_size(journal), 0u);
  }
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ((*queue)->DoneCount(), 1);
  EXPECT_EQ((*queue)->PendingCount(), 8);
  auto after = (*queue)->Get(9);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->description, "after");
}

TEST(QueueTest, TornJournalTailIsDropped) {
  std::string dir = FreshDir("queue_torn");
  fs::path journal = fs::path(dir) / "queue.pjq";
  ManualClock clock(0);
  {
    auto queue = PersistentQueue::Open(dir, &clock);
    ASSERT_TRUE(queue.ok());
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t1").ok());
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t2").ok());
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t3").ok());
  }
  // Tear the tail mid-line, as a crash mid-write would.
  std::string bytes = ReadAll(journal);
  ASSERT_GT(bytes.size(), 10u);
  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 7);
  }
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok()) << queue.status().message();
  // The longest valid prefix survives; the damaged record is gone.
  EXPECT_EQ((*queue)->PendingCount(), 2);
  // The queue stays writable after recovery.
  auto id = (*queue)->Enqueue("alpha", "t4");
  ASSERT_TRUE(id.ok());
}

// ---------------------------------------------------------------------------
// Daemon harness

/// Owns everything that must outlive a daemon crash: the virtual clock,
/// the metrics registry, the trace, and the crash plan. `Boot` starts a
/// fresh incarnation over the same root; `Settle` drains the queue,
/// rebooting after every injected crash like init restarting a dead
/// service.
struct DaemonHarness {
  explicit DaemonHarness(const std::string& root_dir)
      : root(root_dir), trace(&clock) {
    trace.set_enabled(true);
  }

  Status Boot() {
    daemon.reset();  // the old incarnation's memory dies first
    DaemonOptions options;
    options.root = root;
    options.session.worker_threads = workers;
    options.session.fault = fault;
    options.crash_plan = plan;
    options.clock = &clock;
    options.trace = &trace;
    options.metrics = &metrics;
    auto started = PapyrusDaemon::Start(options);
    if (!started.ok()) return started.status();
    daemon = std::move(*started);
    ++boots;
    return Status::OK();
  }

  /// Drains to empty, restarting on injected crashes. Returns the number
  /// of restarts performed.
  Result<int> Settle(int max_restarts = 20) {
    int restarts = 0;
    while (true) {
      Status st = daemon->Drain();
      if (st.ok()) return restarts;
      if (!st.IsAborted()) return st;
      if (++restarts > max_restarts) {
        return Status::Internal("daemon did not settle after " +
                                std::to_string(max_restarts) +
                                " restarts");
      }
      PAPYRUS_RETURN_IF_ERROR(Boot());
    }
  }

  std::string Ok(const std::string& line) {
    std::string response = daemon->HandleLine(line);
    EXPECT_EQ(response.rfind("ok", 0), 0u) << line << " -> " << response;
    return response;
  }

  std::string root;
  ManualClock clock{0};
  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  DaemonCrashPlan* plan = nullptr;
  int workers = 1;
  fault::FaultPlanOptions fault = {.seed = 0};
  int boots = 0;
  std::unique_ptr<PapyrusDaemon> daemon;
};

/// The standard two-session workload: three synthesis flows in `alpha`,
/// three pad placements in `beta`, all fed over the wire. Returns the
/// number of tasks submitted.
int SubmitWorkload(DaemonHarness& h) {
  h.Ok("checkin ~session=alpha ~path=/proj/shifter ~type=behav"
       " ~inputs=8 ~outputs=8 ~complexity=12 ~seed=77");
  h.Ok("checkin ~session=alpha ~path=/proj/sim.cmd ~type=text"
       " ~text=run%20100");
  h.Ok("checkin ~session=beta ~path=/proj/cell ~type=layout"
       " ~cells=12 ~area=1200 ~seed=3");
  for (int k = 0; k < 3; ++k) {
    h.Ok("submit ~session=alpha ~thread=synth"
         " ~template=Structure_Synthesis"
         " ~in=/proj/shifter ~in=/proj/sim.cmd"
         " ~out=s" +
         std::to_string(k) + ".layout ~out=s" + std::to_string(k) +
         ".stats ~seed=" + std::to_string(42 + k));
    h.Ok("submit ~session=beta ~thread=pads ~template=Padp"
         " ~in=/proj/cell ~out=cell" +
         std::to_string(k) + ".padded ~seed=" + std::to_string(9 + k));
  }
  return 6;
}

/// Everything a daemon crash could conceivably perturb, rendered
/// comparable: the byte content of every live storage-engine section
/// (sharded database, thread histories, derivation cache, daemon state)
/// and the rebuilt augmented derivation graph. Generation numbers and
/// section file names are deliberately excluded — crashy runs compact at
/// different points than crash-free runs, so the bookkeeping legitimately
/// differs while the section *contents* must stay byte-identical.
struct DaemonFingerprint {
  std::map<std::string, std::string> files;  // session/section -> bytes
  std::string adg;
};

std::string RenderAdg(const meta::Adg& adg) {
  std::ostringstream out;
  for (const auto& [id, edge] : adg.edges()) {
    out << id << '|' << edge.tool << '|' << edge.options << '|';
    for (const oct::ObjectId& o : edge.inputs) out << o.ToString() << ',';
    out << '|';
    for (const oct::ObjectId& o : edge.outputs)
      out << o.ToString() << ',';
    out << '|' << edge.micros << '|' << edge.reuse << '\n';
  }
  return out.str();
}

DaemonFingerprint Fingerprint(DaemonHarness& h,
                              const std::vector<std::string>& sessions) {
  DaemonFingerprint fp;
  for (const std::string& name : sessions) {
    auto session = h.daemon->OpenSession(name);
    EXPECT_TRUE(session.ok()) << session.status().message();
    if (!session.ok()) continue;
    // Force a compaction so the manifest carries the complete durable
    // state; the section bytes are then a pure function of the session's
    // logical state, independent of where WAL commits and generation
    // swaps happened to land relative to crashes.
    Status checkpointed = (*session)->Checkpoint();
    EXPECT_TRUE(checkpointed.ok()) << checkpointed.message();
    storage::SessionStore* store = (*session)->session().store();
    for (const auto& [section, file] : store->CurrentSectionFiles()) {
      auto text = store->ReadSection(section);
      EXPECT_TRUE(text.ok()) << name << "/" << section << ": "
                             << text.status().message();
      fp.files[name + "/" + section] =
          text.ok() ? *text : "<unreadable>";
    }
    fp.adg += "== " + name + "\n" +
              RenderAdg((*session)->session().metadata().adg());
  }
  return fp;
}

void ExpectSameFingerprint(const DaemonFingerprint& expected,
                           const DaemonFingerprint& actual) {
  ASSERT_EQ(expected.files.size(), actual.files.size());
  for (const auto& [path, bytes] : expected.files) {
    auto it = actual.files.find(path);
    ASSERT_NE(it, actual.files.end()) << "missing " << path;
    EXPECT_EQ(bytes, it->second) << path << " bytes diverged";
  }
  EXPECT_EQ(expected.adg, actual.adg);
}

/// One crash-free reference run at the given worker count; the chaos
/// tests compare their final state against its fingerprint. The scratch
/// directory embeds the calling test's name: ctest runs each test in its
/// own process, possibly concurrently, and a shared path would let one
/// test remove_all() the directory out from under another's daemon.
DaemonFingerprint ReferenceRun(int workers) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string test_name = info != nullptr ? info->name() : "unknown";
  DaemonHarness h(FreshDir("daemon_reference_" + test_name + "_w" +
                           std::to_string(workers)));
  h.workers = workers;
  EXPECT_TRUE(h.Boot().ok());
  int n = SubmitWorkload(h);
  auto restarts = h.Settle();
  EXPECT_TRUE(restarts.ok() && *restarts == 0);
  EXPECT_EQ(h.daemon->queue().DoneCount(), n);
  EXPECT_EQ(h.daemon->queue().FailedCount(), 0);
  return Fingerprint(h, {"alpha", "beta"});
}

// ---------------------------------------------------------------------------
// Daemon behaviour

TEST(DaemonTest, ExecutesWireSubmittedTasksAcrossSessions) {
  DaemonHarness h(FreshDir("daemon_basic"));
  ASSERT_TRUE(h.Boot().ok());
  EXPECT_EQ(h.Ok("ping"), "ok ~pong=1");
  int n = SubmitWorkload(h);

  std::string drained = h.Ok("drain");
  EXPECT_NE(drained.find("~done=6"), std::string::npos) << drained;
  EXPECT_NE(drained.find("~failed=0"), std::string::npos) << drained;
  EXPECT_EQ(h.daemon->queue().DoneCount(), n);

  // Introspection verbs see the drained queue and both sessions.
  std::string stat = h.Ok("stat");
  EXPECT_NE(stat.find("~pending=0"), std::string::npos) << stat;
  EXPECT_NE(stat.find("~depth=0"), std::string::npos) << stat;
  std::string task = h.Ok("task ~id=1");
  EXPECT_NE(task.find("~state=done"), std::string::npos) << task;
  std::string sessions = h.Ok("sessions");
  EXPECT_NE(sessions.find("~session=alpha"), std::string::npos);
  EXPECT_NE(sessions.find("~session=beta"), std::string::npos);

  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksExecuted)->value(),
      n);
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksDeduped)->value(),
      0);
  EXPECT_EQ(h.metrics.FindOrCreateCounter(obs::kQueueEnqueued)->value(),
            n);
  EXPECT_EQ(h.metrics.FindOrCreateCounter(obs::kQueueCompleted)->value(),
            n);
  EXPECT_EQ(h.Ok("shutdown"), "ok ~bye=1");
}

TEST(DaemonTest, RejectsMalformedRequestsAndSessionNames) {
  DaemonHarness h(FreshDir("daemon_reject"));
  ASSERT_TRUE(h.Boot().ok());
  EXPECT_EQ(h.daemon->HandleLine("").rfind("err", 0), 0u);
  EXPECT_EQ(h.daemon->HandleLine("bogusverb").rfind("err", 0), 0u);
  EXPECT_EQ(h.daemon->HandleLine("submit ~session=a").rfind("err", 0),
            0u);
  EXPECT_EQ(h.daemon
                ->HandleLine("checkin ~session=../evil ~path=/x"
                             " ~type=text ~text=boo")
                .rfind("err", 0),
            0u);
  EXPECT_FALSE(h.daemon->OpenSession("..").ok());
  EXPECT_FALSE(h.daemon->OpenSession("a/b").ok());
  EXPECT_FALSE(h.daemon->OpenSession("").ok());
}

TEST(DaemonTest, MalformedQueuedTaskFailsPermanently) {
  DaemonHarness h(FreshDir("daemon_malformed"));
  ASSERT_TRUE(h.Boot().ok());
  ASSERT_TRUE(
      h.daemon->queue().Enqueue("alpha", "this is not a task").ok());
  auto ran = h.daemon->RunOne();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  EXPECT_EQ(h.daemon->queue().FailedCount(), 1);
  auto task = h.daemon->queue().Get(1);
  ASSERT_TRUE(task.ok());
  EXPECT_FALSE(task->failure.empty());
}

TEST(DaemonTest, CrashAfterExecuteRerunsByteIdentically) {
  DaemonFingerprint reference = ReferenceRun(1);

  // Draw 2 is task 1's after_execute point: the work happened, nothing
  // was saved. The restarted daemon must reproduce it byte-for-byte.
  DaemonCrashPlan plan(std::vector<int64_t>{2});
  DaemonHarness h(FreshDir("daemon_crash_exec"));
  h.plan = &plan;
  ASSERT_TRUE(h.Boot().ok());
  int n = SubmitWorkload(h);
  auto restarts = h.Settle();
  ASSERT_TRUE(restarts.ok()) << restarts.status().message();
  EXPECT_EQ(*restarts, 1);
  EXPECT_EQ(plan.crashes_fired(), 1);

  EXPECT_EQ(h.daemon->queue().DoneCount(), n);
  EXPECT_EQ(h.daemon->queue().FailedCount(), 0);
  // The lost execution re-ran; nothing was deduped.
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksDeduped)->value(),
      0);
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksExecuted)->value(),
      n);
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerRestarts)->value(), 1);
  ExpectSameFingerprint(reference, Fingerprint(h, {"alpha", "beta"}));
}

TEST(DaemonTest, CrashAfterSaveDedupesTheRedeliveredTask) {
  DaemonFingerprint reference = ReferenceRun(1);

  // Draw 3 is task 1's after_save point: effects durable, done never
  // journaled. Recovery re-delivers the task and the applied ledger must
  // complete it without re-executing.
  DaemonCrashPlan plan(std::vector<int64_t>{3});
  DaemonHarness h(FreshDir("daemon_crash_save"));
  h.plan = &plan;
  ASSERT_TRUE(h.Boot().ok());
  int n = SubmitWorkload(h);
  auto restarts = h.Settle();
  ASSERT_TRUE(restarts.ok()) << restarts.status().message();
  EXPECT_EQ(plan.crashes_fired(), 1);

  EXPECT_EQ(h.daemon->queue().DoneCount(), n);
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksDeduped)->value(),
      1);
  // n tasks committed but only n - 1 executions were acknowledged live:
  // the crashed task's execution survived on disk and was never re-run.
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerTasksExecuted)->value(),
      n - 1);
  ExpectSameFingerprint(reference, Fingerprint(h, {"alpha", "beta"}));
}

/// The acceptance-criteria soak: many mid-flow daemon kills, then proof
/// of exactly-once commit and byte-identical state against a crash-free
/// run — at two worker-pool sizes.
void RunChaosSoak(int workers) {
  DaemonFingerprint reference = ReferenceRun(workers);

  // Five kills spread across the pipeline: draws 2 and 14 are
  // after_execute points, 5 an after_save, 9 and 19 before_execute /
  // wherever the recovery schedule lands them. What matters is that all
  // five fire mid-flow.
  DaemonCrashPlan plan(std::vector<int64_t>{2, 5, 9, 14, 19});
  DaemonHarness h(
      FreshDir("daemon_soak_w" + std::to_string(workers)));
  h.plan = &plan;
  h.workers = workers;
  ASSERT_TRUE(h.Boot().ok());
  int n = SubmitWorkload(h);
  auto restarts = h.Settle();
  ASSERT_TRUE(restarts.ok()) << restarts.status().message();
  EXPECT_EQ(*restarts, 5);
  EXPECT_EQ(plan.crashes_fired(), 5);
  EXPECT_EQ(
      h.metrics.FindOrCreateCounter(obs::kServerCrashesInjected)->value(),
      5);

  // Every enqueued task committed exactly once.
  EXPECT_EQ(h.daemon->queue().DoneCount(), n);
  EXPECT_EQ(h.daemon->queue().FailedCount(), 0);
  EXPECT_EQ(h.daemon->queue().depth(), 0);
  int64_t executed =
      h.metrics.FindOrCreateCounter(obs::kServerTasksExecuted)->value();
  int64_t deduped =
      h.metrics.FindOrCreateCounter(obs::kServerTasksDeduped)->value();
  EXPECT_EQ(executed + deduped, n);

  ExpectSameFingerprint(reference, Fingerprint(h, {"alpha", "beta"}));
}

TEST(DaemonTest, ChaosSoakIsExactlyOnceAndByteIdenticalSerial) {
  RunChaosSoak(1);
}

TEST(DaemonTest, ChaosSoakIsExactlyOnceAndByteIdenticalParallel) {
  RunChaosSoak(4);
}

TEST(DaemonTest, IntraSessionFaultPlanStillCommitsExactlyOnce) {
  // PR 1 chaos *inside* the hosted sessions: hosts crash and tools fail
  // transiently while the daemon feeds them. Byte-identity with a
  // chaos-free run is out of scope (the plan schedules against absolute
  // virtual times) but exactly-once commit must hold.
  DaemonHarness h(FreshDir("daemon_fault_plan"));
  h.fault.seed = 1234;
  h.fault.host_crash_rate = 0.5;
  h.fault.reboot_delay_micros = 400'000;
  h.fault.tool_transient_rate = 0.05;
  ASSERT_TRUE(h.Boot().ok());
  int n = SubmitWorkload(h);
  auto restarts = h.Settle();
  ASSERT_TRUE(restarts.ok()) << restarts.status().message();

  EXPECT_EQ(h.daemon->queue().DoneCount() +
                h.daemon->queue().FailedCount(),
            n);
  EXPECT_EQ(h.daemon->queue().depth(), 0);
  // Every done task maps to exactly one committed history node.
  std::map<std::string, std::map<int64_t, int>> seen;
  for (const QueueTask& task : h.daemon->queue().Tasks()) {
    if (task.state != TaskState::kDone) continue;
    auto session = h.daemon->OpenSession(task.session);
    ASSERT_TRUE(session.ok());
    auto node = (*session)->AppliedNode(task.id);
    ASSERT_TRUE(node.ok()) << "done task " << task.id
                           << " missing from the applied ledger";
    EXPECT_EQ(++seen[task.session][*node], 1)
        << "two done tasks share node " << *node;
  }
  EXPECT_TRUE(h.daemon->Shutdown().ok());
}

TEST(DaemonTest, GracefulShutdownCheckpointsTheQueue) {
  DaemonHarness h(FreshDir("daemon_shutdown"));
  ASSERT_TRUE(h.Boot().ok());
  SubmitWorkload(h);
  ASSERT_TRUE(h.daemon->Drain().ok());
  ASSERT_TRUE(h.daemon->Shutdown().ok());
  // Shutdown compacted the journal into the checkpoint.
  EXPECT_EQ(fs::file_size(fs::path(h.root) / "queue" / "queue.pjq"), 0u);
  EXPECT_GT(fs::file_size(fs::path(h.root) / "queue" / "queue.pjc"), 0u);
  // A crashed or shut-down daemon refuses further work.
  EXPECT_FALSE(h.daemon->RunOne().ok());
  EXPECT_FALSE(h.daemon->Submit(TaskDescription{}).ok());

  // The next incarnation restores from the checkpoint cleanly.
  ASSERT_TRUE(h.Boot().ok());
  EXPECT_EQ(h.daemon->queue().DoneCount(), 6);
  EXPECT_EQ(h.daemon->queue().recovered(), 0);
}

}  // namespace
}  // namespace papyrus::server
