#include <gtest/gtest.h>

#include "activity/activity_manager.h"
#include "activity/design_thread.h"
#include "activity/display.h"
#include "activity/thread_ops.h"
#include "base/clock.h"
#include "cadtools/registry.h"
#include "oct/database.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::activity {
namespace {

using oct::BehavioralSpec;
using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;

/// Builds a synthetic history record without running any tools — for unit
/// tests of the control-stream machinery.
task::TaskHistoryRecord FakeRecord(const std::string& name,
                                   std::vector<ObjectId> inputs,
                                   std::vector<ObjectId> outputs) {
  task::TaskHistoryRecord rec;
  rec.task_name = name;
  rec.inputs = std::move(inputs);
  rec.outputs = std::move(outputs);
  return rec;
}

class DesignThreadTest : public ::testing::Test {
 protected:
  DesignThreadTest() : clock_(0), thread_(1, "ALU", &clock_) {}

  NodeId MustAppend(const std::string& name, std::vector<ObjectId> in,
                    std::vector<ObjectId> out, NodeId cursor = -1) {
    auto node = thread_.Append(
        FakeRecord(name, std::move(in), std::move(out)),
        cursor < 0 ? thread_.current_cursor() : cursor);
    EXPECT_TRUE(node.ok());
    return node.ok() ? *node : kInitialPoint;
  }

  ManualClock clock_;
  DesignThread thread_;
};

TEST_F(DesignThreadTest, LinearAppendAdvancesCursor) {
  EXPECT_EQ(thread_.current_cursor(), kInitialPoint);
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  EXPECT_EQ(thread_.current_cursor(), a);
  NodeId b = MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  EXPECT_EQ(thread_.current_cursor(), b);
  EXPECT_EQ(thread_.size(), 2);
  auto frontier = thread_.FrontierCursors();
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], b);
}

TEST_F(DesignThreadTest, ThreadStateAccumulatesAlongPath) {
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  auto scope = thread_.DataScope();
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->size(), 2u);
  auto state_a = thread_.ThreadState(a);
  ASSERT_TRUE(state_a.ok());
  EXPECT_EQ(state_a->size(), 1u);
  auto initial = thread_.ThreadState(kInitialPoint);
  ASSERT_TRUE(initial.ok());
  EXPECT_TRUE(initial->empty());
}

TEST_F(DesignThreadTest, ReworkCreatesBranch) {
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  EXPECT_EQ(thread_.current_cursor(), a);
  // Objects of the other branch are not visible from here.
  auto scope = thread_.DataScope();
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->count({"y", 1}), 0u);
  // A new task from this point starts a second branch.
  NodeId c = MustAppend("t3", {{"x", 1}}, {{"z", 1}});
  EXPECT_EQ(thread_.current_cursor(), c);
  EXPECT_EQ(thread_.FrontierCursors().size(), 2u);
  // Branch contents are mutually invisible (§3.3.3).
  auto scope_c = thread_.DataScope();
  ASSERT_TRUE(scope_c.ok());
  EXPECT_EQ(scope_c->count({"y", 1}), 0u);
  EXPECT_EQ(scope_c->count({"z", 1}), 1u);
}

TEST_F(DesignThreadTest, WorkspaceIsUnionOfFrontierStates) {
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  MustAppend("t3", {{"x", 1}}, {{"z", 1}});
  auto ws = thread_.Workspace();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 3u);  // x, y, z
}

TEST_F(DesignThreadTest, ResolveInScopePicksLatestVersion) {
  MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"x", 2}});
  auto id = thread_.ResolveInScope("x");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->version, 2);
  EXPECT_TRUE(thread_.ResolveInScope("nope").status().IsNotFound());
}

TEST_F(DesignThreadTest, MoveCursorValidation) {
  EXPECT_TRUE(thread_.MoveCursor(kInitialPoint).ok());
  EXPECT_TRUE(thread_.MoveCursor(42).IsNotFound());
}

TEST_F(DesignThreadTest, EraseBranchRemovesRecordsAndObjects) {
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  MustAppend("t3", {{"y", 1}}, {{"z", 1}});
  std::vector<ObjectId> gone;
  ASSERT_TRUE(thread_.MoveCursorAndErase(a, &gone).ok());
  EXPECT_EQ(thread_.current_cursor(), a);
  EXPECT_EQ(thread_.size(), 1);
  // y and z are no longer referenced anywhere; x remains.
  EXPECT_EQ(gone.size(), 2u);
  auto ws = thread_.Workspace();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 1u);
}

TEST_F(DesignThreadTest, EraseKeepsSharedObjects) {
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  MustAppend("t2", {{"x", 1}}, {{"y", 1}});
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  MustAppend("t3", {{"x", 1}}, {{"z", 1}});  // x shared across branches
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  // Erase nothing: cursor is already upstream of both branches.
  std::vector<ObjectId> gone;
  ASSERT_TRUE(thread_.MoveCursorAndErase(a, &gone).ok());
  EXPECT_TRUE(gone.empty());
}

TEST_F(DesignThreadTest, InsertionSplicesBeforeBranchingRecord) {
  // Build: a -> b with b having two children (c, d).
  NodeId a = MustAppend("a", {}, {{"x", 1}});
  NodeId b = MustAppend("b", {{"x", 1}}, {{"y", 1}});
  MustAppend("c", {{"y", 1}}, {{"c", 1}});
  ASSERT_TRUE(thread_.MoveCursor(b).ok());
  MustAppend("d", {{"y", 1}}, {{"d", 1}});
  // Now invoke "n" with an invocation cursor at `a`: the walk from `a`
  // reaches `b`, which branches, so `n` is spliced between a and b.
  auto n =
      thread_.Append(FakeRecord("n", {{"x", 1}}, {{"n", 1}}), a, false);
  ASSERT_TRUE(n.ok());
  auto node_b = thread_.GetNode(b);
  ASSERT_TRUE(node_b.ok());
  ASSERT_EQ((*node_b)->parents.size(), 1u);
  EXPECT_EQ((*node_b)->parents[0], *n);
  auto node_n = thread_.GetNode(*n);
  ASSERT_TRUE(node_n.ok());
  ASSERT_EQ((*node_n)->parents.size(), 1u);
  EXPECT_EQ((*node_n)->parents[0], a);
  // Downstream thread states now include n's output.
  auto state_c = thread_.ThreadState(thread_.FrontierCursors()[0]);
  ASSERT_TRUE(state_c.ok());
  EXPECT_EQ(state_c->count({"n", 1}), 1u);
}

TEST_F(DesignThreadTest, ConcurrentAppendsChainOnTheSamePath) {
  // Two tasks invoked from the same cursor complete one after another:
  // the second lands after the first (Figure 5.6's simple case).
  NodeId a = MustAppend("a", {}, {{"x", 1}});
  auto r1 = thread_.Append(FakeRecord("t1", {}, {{"p", 1}}), a, false);
  auto r2 = thread_.Append(FakeRecord("t2", {}, {{"q", 1}}), a, false);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto node = thread_.GetNode(*r2);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ((*node)->parents.size(), 1u);
  EXPECT_EQ((*node)->parents[0], *r1);  // chained, not branched
}

TEST_F(DesignThreadTest, CachingReducesTraversalWork) {
  thread_.set_cache_interval(4);
  for (int i = 1; i <= 32; ++i) {
    MustAppend("t", {}, {{"x", i}});
  }
  (void)thread_.DataScope();  // installs a cache at the tip
  int64_t before = thread_.traversal_visits();
  (void)thread_.DataScope();  // cache hit
  EXPECT_EQ(thread_.traversal_visits(), before + 1);

  // Uncached ablation does full backward traversals every time.
  DesignThread slow(2, "slow", &clock_);
  slow.set_cache_interval(0);
  for (int i = 1; i <= 32; ++i) {
    (void)slow.Append(FakeRecord("t", {}, {{"x", i}}),
                      slow.current_cursor());
  }
  (void)slow.DataScope();
  int64_t slow_before = slow.traversal_visits();
  (void)slow.DataScope();
  EXPECT_EQ(slow.traversal_visits(), slow_before + 32);
}

TEST_F(DesignThreadTest, CachedStateMatchesUncached) {
  thread_.set_cache_interval(3);
  DesignThread plain(2, "plain", &clock_);
  plain.set_cache_interval(0);
  for (int i = 1; i <= 20; ++i) {
    MustAppend("t", {{"x", i > 1 ? i - 1 : 1}}, {{"x", i}});
    (void)plain.Append(
        FakeRecord("t", {{"x", i > 1 ? i - 1 : 1}}, {{"x", i}}),
        plain.current_cursor());
    // Interleave queries so caches get installed mid-stream.
    auto a = thread_.DataScope();
    auto b = plain.DataScope();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "divergence at step " << i;
  }
}

TEST_F(DesignThreadTest, SpliceUpdatesCachedStates) {
  thread_.set_cache_interval(2);
  NodeId a = MustAppend("a", {}, {{"x", 1}});
  NodeId b = MustAppend("b", {{"x", 1}}, {{"y", 1}});
  NodeId c = MustAppend("c", {{"y", 1}}, {{"z", 1}});
  (void)thread_.ThreadState(c);  // cache installed at c
  // Make b a branching record.
  ASSERT_TRUE(thread_.MoveCursor(b).ok());
  MustAppend("d", {{"y", 1}}, {{"d", 1}});
  // Splice n between a and b; c's cached state must gain n's output.
  auto n = thread_.Append(FakeRecord("n", {}, {{"n", 7}}), a, false);
  ASSERT_TRUE(n.ok());
  auto state = thread_.ThreadState(c);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->count({"n", 7}), 1u);
}

TEST_F(DesignThreadTest, AnnotationAccess) {
  NodeId a = MustAppend("pla", {}, {{"x", 1}});
  ASSERT_TRUE(thread_.Annotate(a, "The Start of PLA Approach").ok());
  auto found = thread_.FindAnnotation("The Start of PLA Approach");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
  EXPECT_TRUE(thread_.FindAnnotation("missing").status().IsNotFound());
  EXPECT_TRUE(thread_.Annotate(99, "x").IsNotFound());
}

TEST_F(DesignThreadTest, TimeAccessIsHourResolution) {
  clock_.SetMicros(0);
  NodeId a = MustAppend("t1", {}, {{"x", 1}});
  clock_.AdvanceSeconds(3600);  // next hour
  NodeId b = MustAppend("t2", {}, {{"x", 2}});
  clock_.AdvanceSeconds(7200);  // two hours later
  NodeId c = MustAppend("t3", {}, {{"x", 3}});

  auto f0 = thread_.FindByTime(10);
  ASSERT_TRUE(f0.ok());
  EXPECT_EQ(*f0, a);
  auto f1 = thread_.FindByTime(3600ll * 1000000ll + 5);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(*f1, b);
  // Empty hour: the next closest record after it is returned.
  auto f2 = thread_.FindByTime(2 * 3600ll * 1000000ll);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f2, c);
  EXPECT_TRUE(
      thread_.FindByTime(100 * 3600ll * 1000000ll).status().IsNotFound());
}

// --- Thread combination operators ---------------------------------------

class ThreadOpsTest : public ::testing::Test {
 protected:
  ThreadOpsTest()
      : clock_(0),
        shifter_(1, "Shifter", &clock_),
        arith_(2, "Arith", &clock_) {}

  void Fill(DesignThread* t, const std::string& prefix, int n) {
    for (int i = 1; i <= n; ++i) {
      (void)t->Append(FakeRecord(prefix + std::to_string(i), {},
                                 {{prefix, i}}),
                      t->current_cursor());
    }
  }

  ManualClock clock_;
  DesignThread shifter_;
  DesignThread arith_;
};

TEST_F(ThreadOpsTest, ForkWholeWorkspace) {
  Fill(&shifter_, "s", 3);
  DesignThread copy(3, "copy", &clock_);
  ASSERT_TRUE(
      ThreadCombinator::Fork(shifter_, std::nullopt, &copy).ok());
  EXPECT_EQ(copy.size(), 3);
  auto ws = copy.Workspace();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 3u);
  // Independence: appending to the fork does not affect the source.
  (void)copy.Append(FakeRecord("new", {}, {{"n", 1}}),
                    copy.current_cursor());
  EXPECT_EQ(shifter_.size(), 3);
  EXPECT_EQ(copy.size(), 4);
}

TEST_F(ThreadOpsTest, ForkFromDesignPointCopiesAncestorsOnly) {
  Fill(&shifter_, "s", 4);
  // Fork from the second design point.
  NodeId second = 2;
  DesignThread copy(3, "copy", &clock_);
  ASSERT_TRUE(ThreadCombinator::Fork(shifter_, second, &copy).ok());
  EXPECT_EQ(copy.size(), 2);
  auto scope = copy.DataScope();
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->size(), 2u);  // s@1, s@2 only
}

TEST_F(ThreadOpsTest, JoinMergesWorkspacesAtConnectors) {
  Fill(&shifter_, "s", 2);
  Fill(&arith_, "a", 3);
  DesignThread alu(3, "ALU", &clock_);
  NodeId ca = shifter_.FrontierCursors()[0];
  NodeId cb = arith_.FrontierCursors()[0];
  ASSERT_TRUE(
      ThreadCombinator::Join(shifter_, ca, arith_, cb, &alu).ok());
  // 2 + 3 records plus the junction point.
  EXPECT_EQ(alu.size(), 6);
  auto ws = alu.Workspace();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 5u);
  // The cursor sits on the junction; the scope sees both sides.
  auto scope = alu.DataScope();
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->count({"s", 2}), 1u);
  EXPECT_EQ(scope->count({"a", 3}), 1u);
  // The combined thread works like one built from scratch: rework into
  // the copied history is allowed.
  ASSERT_TRUE(alu.MoveCursor(1).ok());
  (void)alu.Append(FakeRecord("alt", {}, {{"alt", 1}}),
                   alu.current_cursor());
  EXPECT_EQ(alu.size(), 7);
  // Originals evolve independently after the merge.
  (void)shifter_.Append(FakeRecord("s-more", {}, {{"s", 9}}),
                        shifter_.current_cursor());
  auto alu_ws = alu.Workspace();
  ASSERT_TRUE(alu_ws.ok());
  EXPECT_EQ(alu_ws->count({"s", 9}), 0u);
}

TEST_F(ThreadOpsTest, JoinRequiresFrontierConnectors) {
  Fill(&shifter_, "s", 2);
  Fill(&arith_, "a", 2);
  DesignThread alu(3, "ALU", &clock_);
  // Node 1 of shifter has a child: not a frontier.
  EXPECT_TRUE(ThreadCombinator::Join(shifter_, 1, arith_,
                                     arith_.FrontierCursors()[0], &alu)
                  .IsFailedPrecondition());
}

TEST_F(ThreadOpsTest, CascadeAppendsTrailingStream) {
  Fill(&shifter_, "s", 2);
  Fill(&arith_, "a", 2);
  DesignThread combined(3, "combined", &clock_);
  ASSERT_TRUE(ThreadCombinator::Cascade(
                  shifter_, shifter_.FrontierCursors()[0], arith_,
                  &combined)
                  .ok());
  EXPECT_EQ(combined.size(), 4);
  // One linear chain: a single frontier whose state holds everything.
  auto frontier = combined.FrontierCursors();
  ASSERT_EQ(frontier.size(), 1u);
  auto state = combined.ThreadState(frontier[0]);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->size(), 4u);
}

// --- DisplayTransform (§5.2) ---------------------------------------------

TEST(DisplayTransformTest, ThesisExampleCompresses) {
  // [50,0] {2} {2} [100,0] {0.5} [-20,0] [0,50]
  DisplayTransform t;
  t.Pan(50, 0);
  t.Zoom(2);
  t.Zoom(2);
  t.Pan(100, 0);
  t.Zoom(0.5);
  t.Pan(-20, 0);
  t.Pan(0, 50);
  EXPECT_DOUBLE_EQ(t.magnification(), 2.0);
  EXPECT_DOUBLE_EQ(t.tx(), 65.0);
  EXPECT_DOUBLE_EQ(t.ty(), 25.0);
  EXPECT_EQ(t.events_logged(), 7);
}

TEST(DisplayTransformTest, CompressedEqualsEagerApplication) {
  // Apply a random-ish event sequence both ways and compare.
  struct Ev {
    bool zoom;
    double a, b;
  };
  std::vector<Ev> events = {{false, 10, -5}, {true, 2, 0},  {false, 3, 7},
                            {true, 0.25, 0}, {false, -9, 2}, {true, 4, 0},
                            {false, 1, 1}};
  double x = 12.5;
  double y = -3.25;
  double ex = x;
  double ey = y;
  DisplayTransform t;
  for (const Ev& e : events) {
    if (e.zoom) {
      ex *= e.a;
      ey *= e.a;
      t.Zoom(e.a);
    } else {
      ex += e.a;
      ey += e.b;
      t.Pan(e.a, e.b);
    }
  }
  auto [cx, cy] = t.Apply(x, y);
  EXPECT_NEAR(cx, ex, 1e-9);
  EXPECT_NEAR(cy, ey, 1e-9);
}

TEST(DisplayTransformTest, ResetClearsState) {
  DisplayTransform t;
  t.Pan(5, 5);
  t.Zoom(3);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.magnification(), 1.0);
  EXPECT_DOUBLE_EQ(t.tx(), 0.0);
  EXPECT_EQ(t.events_logged(), 0);
}

// --- End-to-end: the Figure 3.7 Shifter-synthesis scenario ---------------

class ActivityManagerTest : public ::testing::Test {
 protected:
  ActivityManagerTest()
      : clock_(0),
        db_(&clock_),
        network_(&clock_, 4),
        registry_(cadtools::CreateStandardRegistry()),
        task_manager_(&db_, registry_.get(), &network_, &library_),
        activity_(&db_, &task_manager_, &clock_) {
    EXPECT_TRUE(tdl::RegisterThesisTemplates(&library_).ok());
  }

  ManualClock clock_;
  oct::OctDatabase db_;
  sprite::Network network_;
  std::unique_ptr<cadtools::ToolRegistry> registry_;
  tdl::TemplateLibrary library_;
  task::TaskManager task_manager_;
  ActivityManager activity_;
};

TEST_F(ActivityManagerTest, ShifterSynthesisExploration) {
  int tid = activity_.CreateThread("Shifter-synthesis");

  // 1. create-logic-description (edit + bdsyn).
  ActivityInvocation create;
  create.template_name = "Create_Logic_Description";
  create.output_names = {"shifter.logic"};
  auto p1 = activity_.InvokeTask(tid, create);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();

  // 2. logic simulation against the created description.
  ActivityInvocation sim;
  sim.template_name = "Logic_Simulation";
  sim.input_refs = {"shifter.logic"};
  auto p2 = activity_.InvokeTask(tid, sim);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();

  // 3-4. standard-cell place and route, then pads.
  ActivityInvocation scpr;
  scpr.template_name = "Standard_Cell_Place_and_Route";
  scpr.input_refs = {"shifter.logic"};
  scpr.output_names = {"shifter.sc"};
  auto p3 = activity_.InvokeTask(tid, scpr);
  ASSERT_TRUE(p3.ok()) << p3.status().ToString();

  ActivityInvocation pads;
  pads.template_name = "Place_Pads";
  pads.input_refs = {"shifter.sc"};
  pads.output_names = {"shifter.sc.padded"};
  auto p4 = activity_.InvokeTask(tid, pads);
  ASSERT_TRUE(p4.ok()) << p4.status().ToString();

  auto thread = activity_.GetThread(tid);
  ASSERT_TRUE(thread.ok());
  EXPECT_EQ((*thread)->current_cursor(), *p4);

  // 5. Not satisfied with standard cells: rework to design point 2 and
  // explore the PLA alternative.
  ASSERT_TRUE(activity_.MoveCursor(tid, *p2).ok());

  ActivityInvocation pla;
  pla.template_name = "PLA_Generation";
  pla.input_refs = {"shifter.logic"};
  pla.output_names = {"shifter.pla"};
  auto p5 = activity_.InvokeTask(tid, pla);
  ASSERT_TRUE(p5.ok()) << p5.status().ToString();

  ActivityInvocation pads2;
  pads2.template_name = "Place_Pads";
  pads2.input_refs = {"shifter.pla"};
  pads2.output_names = {"shifter.pla.padded"};
  auto p6 = activity_.InvokeTask(tid, pads2);
  ASSERT_TRUE(p6.ok()) << p6.status().ToString();

  // The control stream now has two branches from design point 2.
  EXPECT_EQ((*thread)->FrontierCursors().size(), 2u);

  // From the PLA branch, the standard-cell objects are invisible.
  auto scope = (*thread)->DataScope();
  ASSERT_TRUE(scope.ok());
  bool sees_sc = false;
  bool sees_pla = false;
  for (const ObjectId& id : *scope) {
    if (id.name == "shifter.sc.padded") sees_sc = true;
    if (id.name == "shifter.pla.padded") sees_pla = true;
  }
  EXPECT_FALSE(sees_sc);
  EXPECT_TRUE(sees_pla);

  // Jumping back to the standard-cell frontier restores that context.
  ASSERT_TRUE(activity_.MoveCursor(tid, *p4).ok());
  scope = (*thread)->DataScope();
  ASSERT_TRUE(scope.ok());
  sees_sc = false;
  for (const ObjectId& id : *scope) {
    if (id.name == "shifter.sc.padded") sees_sc = true;
    if (id.name == "shifter.pla.padded") sees_pla = false;
  }
  EXPECT_TRUE(sees_sc);

  // The rendered control stream shows both branches and the cursor.
  std::string rendered = RenderControlStream(**thread);
  EXPECT_NE(rendered.find("PLA_Generation"), std::string::npos);
  EXPECT_NE(rendered.find("Standard_Cell_Place_and_Route"),
            std::string::npos);
  EXPECT_NE(rendered.find("*"), std::string::npos);

  std::string scope_view = RenderDataScope(*thread);
  EXPECT_NE(scope_view.find("shifter.logic"), std::string::npos);
}

TEST_F(ActivityManagerTest, PlainNamesResolveInDataScopeOnly) {
  int tid = activity_.CreateThread("T");
  // An object exists in the database but not in this thread's scope.
  ASSERT_TRUE(db_.CreateVersion("orphan", LogicNetwork{}).ok());
  ActivityInvocation inv;
  inv.template_name = "Logic_Simulation";
  inv.input_refs = {"orphan"};
  auto r = activity_.InvokeTask(tid, inv);
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ActivityManagerTest, AbsolutePathPerformsImplicitCheckIn) {
  int tid = activity_.CreateThread("T");
  ASSERT_TRUE(
      db_.CreateVersion("/user/chiueh/shifter.logic",
                        LogicNetwork{.minterms = 8, .seed = 3})
          .ok());
  ActivityInvocation inv;
  inv.template_name = "Logic_Simulation";
  inv.input_refs = {"/user/chiueh/shifter.logic"};
  auto r = activity_.InvokeTask(tid, inv);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto thread = activity_.GetThread(tid);
  ASSERT_TRUE(thread.ok());
  auto ws = (*thread)->Workspace();
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->count({"/user/chiueh/shifter.logic", 1}), 1u);
}

TEST_F(ActivityManagerTest, ExplicitVersionBypassesResolution) {
  int tid = activity_.CreateThread("T");
  ASSERT_TRUE(db_.CreateVersion("/c", LogicNetwork{.seed = 1}).ok());
  ASSERT_TRUE(db_.CreateVersion("/c", LogicNetwork{.seed = 2}).ok());
  ActivityInvocation inv;
  inv.template_name = "Logic_Simulation";
  inv.input_refs = {"/c@1"};
  // "/c@1" parses as an absolute path (leading slash); use a non-path
  // name instead.
  ASSERT_TRUE(db_.CreateVersion("c", LogicNetwork{.seed = 1}).ok());
  ASSERT_TRUE(db_.CreateVersion("c", LogicNetwork{.seed = 2}).ok());
  inv.input_refs = {"c@1"};
  auto r = activity_.InvokeTask(tid, inv);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto thread = activity_.GetThread(tid);
  ASSERT_TRUE(thread.ok());
  auto node = (*thread)->GetNode(*r);
  ASSERT_TRUE(node.ok());
  ASSERT_EQ((*node)->record.inputs.size(), 1u);
  EXPECT_EQ((*node)->record.inputs[0].version, 1);
}

TEST_F(ActivityManagerTest, AbortedTaskLeavesNoHistoryRecord) {
  int tid = activity_.CreateThread("T");
  ASSERT_TRUE(db_.CreateVersion("/cell", LogicNetwork{.num_inputs = 8,
                                                      .num_outputs = 4,
                                                      .minterms = 50,
                                                      .seed = 4})
                  .ok());
  ActivityInvocation inv;
  inv.template_name = "PLA_Generation";
  inv.input_refs = {"/cell"};
  inv.output_names = {"cell.layout"};
  inv.option_overrides["Array_Layout"] = "-maxarea 1";
  inv.max_restarts = 2;
  auto r = activity_.InvokeTask(tid, inv);
  EXPECT_FALSE(r.ok());
  auto thread = activity_.GetThread(tid);
  ASSERT_TRUE(thread.ok());
  EXPECT_EQ((*thread)->size(), 0);
  EXPECT_EQ(activity_.records_appended(), 0);
}

TEST_F(ActivityManagerTest, EraseBranchMakesObjectsInvisible) {
  int tid = activity_.CreateThread("T");
  ActivityInvocation create;
  create.template_name = "Create_Logic_Description";
  create.output_names = {"cell.logic"};
  auto p1 = activity_.InvokeTask(tid, create);
  ASSERT_TRUE(p1.ok());

  ActivityInvocation scpr;
  scpr.template_name = "Standard_Cell_Place_and_Route";
  scpr.input_refs = {"cell.logic"};
  scpr.output_names = {"cell.sc"};
  auto p2 = activity_.InvokeTask(tid, scpr);
  ASSERT_TRUE(p2.ok());

  auto sc_id = db_.LatestVisible("cell.sc");
  ASSERT_TRUE(sc_id.ok());

  // Rework to p1 with erase: the standard-cell branch disappears and its
  // objects become invisible in the database (Figure 3.6).
  ASSERT_TRUE(activity_.MoveCursor(tid, *p1, /*erase=*/true).ok());
  EXPECT_TRUE(db_.LatestVisible("cell.sc").status().IsNotFound());
  // The shared upstream object survives.
  EXPECT_TRUE(db_.LatestVisible("cell.logic").ok());
}

TEST_F(ActivityManagerTest, ForkJoinCascadeThroughManager) {
  int a = activity_.CreateThread("Shifter");
  int b = activity_.CreateThread("Arith");
  for (int tid : {a, b}) {
    ActivityInvocation create;
    create.template_name = "Create_Logic_Description";
    create.output_names = {std::string(tid == a ? "s" : "r") + ".logic"};
    ASSERT_TRUE(activity_.InvokeTask(tid, create).ok());
  }
  auto ta = activity_.GetThread(a);
  auto tb = activity_.GetThread(b);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());

  auto fork = activity_.ForkThread(a, "Shifter-v2");
  ASSERT_TRUE(fork.ok());
  auto forked = activity_.GetThread(*fork);
  ASSERT_TRUE(forked.ok());
  EXPECT_EQ((*forked)->size(), (*ta)->size());

  auto join = activity_.JoinThreads(a, (*ta)->FrontierCursors()[0], b,
                                    (*tb)->FrontierCursors()[0], "ALU");
  ASSERT_TRUE(join.ok());
  auto alu = activity_.GetThread(*join);
  ASSERT_TRUE(alu.ok());
  auto scope = (*alu)->DataScope();
  ASSERT_TRUE(scope.ok());
  EXPECT_EQ(scope->count({"s.logic", 1}), 1u);
  EXPECT_EQ(scope->count({"r.logic", 1}), 1u);

  auto cascade = activity_.CascadeThreads(a, (*ta)->FrontierCursors()[0],
                                          b, "chain");
  ASSERT_TRUE(cascade.ok());

  EXPECT_EQ(activity_.ThreadIds().size(), 5u);
  EXPECT_TRUE(activity_.RemoveThread(*cascade).ok());
  EXPECT_TRUE(activity_.RemoveThread(999).IsNotFound());
}

TEST_F(ActivityManagerTest, StreamLayoutAssignsGridCells) {
  int tid = activity_.CreateThread("T");
  ActivityInvocation create;
  create.template_name = "Create_Logic_Description";
  create.output_names = {"x.logic"};
  auto p1 = activity_.InvokeTask(tid, create);
  ASSERT_TRUE(p1.ok());
  ActivityInvocation scpr;
  scpr.template_name = "Standard_Cell_Place_and_Route";
  scpr.input_refs = {"x.logic"};
  scpr.output_names = {"x.sc"};
  ASSERT_TRUE(activity_.InvokeTask(tid, scpr).ok());
  ASSERT_TRUE(activity_.MoveCursor(tid, *p1).ok());
  ActivityInvocation pla;
  pla.template_name = "PLA_Generation";
  pla.input_refs = {"x.logic"};
  pla.output_names = {"x.pla"};
  ASSERT_TRUE(activity_.InvokeTask(tid, pla).ok());

  auto thread = activity_.GetThread(tid);
  ASSERT_TRUE(thread.ok());
  StreamLayout layout = ComputeStreamLayout(**thread);
  EXPECT_EQ(layout.cells.size(), 3u);
  EXPECT_EQ(layout.width, 2);   // two levels deep
  EXPECT_EQ(layout.height, 2);  // two branch lanes
}

}  // namespace
}  // namespace papyrus::activity
