#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/papyrus.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "oct/design_data.h"

namespace papyrus::obs {
namespace {

// ---------------------------------------------------------------------------
// Trace-structure helpers

/// Asserts the B/E invariant over a recorded event stream: per (pid, tid)
/// every E closes the most recent open B of the same name, and no span is
/// left open. Returns the number of matched pairs.
int CheckSpanBalance(const std::vector<TraceEvent>& events) {
  std::map<std::pair<int, int64_t>, std::vector<std::string>> stacks;
  int matched = 0;
  for (const TraceEvent& ev : events) {
    auto key = std::make_pair(ev.pid, ev.tid);
    if (ev.ph == 'B') {
      stacks[key].push_back(ev.name);
    } else if (ev.ph == 'E') {
      auto& stack = stacks[key];
      EXPECT_FALSE(stack.empty())
          << "E \"" << ev.name << "\" on pid=" << ev.pid
          << " tid=" << ev.tid << " with no open B";
      if (!stack.empty()) {
        EXPECT_EQ(stack.back(), ev.name)
            << "E closes the wrong span on pid=" << ev.pid
            << " tid=" << ev.tid;
        stack.pop_back();
        ++matched;
      }
    }
  }
  for (const auto& [key, stack] : stacks) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " unclosed span(s) on pid=" << key.first
        << " tid=" << key.second;
  }
  return matched;
}

int CountEvents(const std::vector<TraceEvent>& events, char ph,
                const std::string& name) {
  int n = 0;
  for (const TraceEvent& ev : events) {
    if (ev.ph == ph && ev.name == name) ++n;
  }
  return n;
}

/// Builds the Structure_Synthesis invocation once; repeated Invokes with
/// the same inputs hit the derivation cache after the first commit.
task::TaskInvocation SynthesisInvocation(Papyrus& session,
                                         int max_retries = 0) {
  auto spec = session.database().CreateVersion(
      "spec", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion(
      "sim.cmd", oct::TextData{"run 100"});
  EXPECT_TRUE(spec.ok() && cmds.ok());
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*spec, *cmds};
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;
  inv.max_step_retries = max_retries;
  return inv;
}

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({10, 20});
  h.Observe(0);    // <= 10
  h.Observe(10);   // boundary: still the first bucket
  h.Observe(11);   // (10, 20]
  h.Observe(20);   // boundary: second bucket
  h.Observe(21);   // overflow
  h.Observe(-5);   // below all edges: first bucket
  std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);  // two edges + overflow
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 10 + 11 + 20 + 21 - 5);
}

TEST(HistogramTest, LatencyBoundsAreAscending) {
  const std::vector<int64_t>& bounds = LatencyBucketBounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(MetricsRegistryTest, PreRegistersTheWholeCatalogue) {
  MetricsRegistry registry;
  std::string json = registry.ToJson();
  for (const MetricInfo& info : MetricCatalogue()) {
    EXPECT_NE(json.find("\"" + std::string(info.name) + "\""),
              std::string::npos)
        << info.name << " missing from a fresh registry export";
  }
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("papyrus.test.counter");
  Counter* b = registry.FindOrCreateCounter("papyrus.test.counter");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3);
  Histogram* h1 = registry.FindOrCreateHistogram("papyrus.test.h", {1, 2});
  Histogram* h2 =
      registry.FindOrCreateHistogram("papyrus.test.h", {7, 8, 9});
  EXPECT_EQ(h1, h2);  // later bounds are ignored
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotsAreIsolatedUnderConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.FindOrCreateCounter(kStepsCompleted);
  Histogram* hist =
      registry.FindOrCreateHistogram(kStepVirtualLatency, {100, 1000});
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([counter, hist] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        hist->Observe(i % 2000);
      }
    });
  }
  // Exports taken mid-flight must stay parseable point-in-time views:
  // never torn, never crashing, monotone in the counter they report.
  int64_t last_seen = 0;
  for (int i = 0; i < 50; ++i) {
    std::string json = registry.ToJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    int64_t now = counter->value();
    EXPECT_GE(now, last_seen);
    last_seen = now;
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter->value(), int64_t{kThreads} * kIncrements);
  EXPECT_EQ(hist->count(), int64_t{kThreads} * kIncrements);
  std::vector<int64_t> buckets = hist->BucketCounts();
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  EXPECT_EQ(total, hist->count());
}

// ---------------------------------------------------------------------------
// Trace recorder semantics

TEST(TraceRecorderTest, EndWithoutOpenSpanIsANoOp) {
  ManualClock clock(0);
  TraceRecorder trace(&clock);
  trace.set_enabled(true);
  trace.End(1, 1);  // mid-session `trace start`: the B predates recording
  EXPECT_EQ(trace.event_count(), 0u);
  trace.Begin(1, 1, "span", "test");
  trace.End(1, 1);
  trace.End(1, 1);
  EXPECT_EQ(trace.event_count(), 2u);
  EXPECT_EQ(trace.open_spans(), 0);
}

TEST(TraceRecorderTest, SealedRecorderDropsAndCountsEvents) {
  ManualClock clock(0);
  TraceRecorder trace(&clock);
  trace.set_enabled(true);
  trace.Instant(1, 0, "before", "test");
  trace.Finish();
  EXPECT_TRUE(trace.sealed());
  size_t sealed_count = trace.event_count();
  trace.Instant(1, 0, "after", "test");
  trace.Begin(1, 0, "late", "test");
  EXPECT_EQ(trace.event_count(), sealed_count);
  EXPECT_EQ(trace.dropped_events(), 2);
  // The session-end marker is the last recorded event.
  EXPECT_EQ(trace.events().back().name, "papyrus.session.end");
}

// ---------------------------------------------------------------------------
// Engine integration: spans under cache hits and retries

TEST(ObsIntegrationTest, TraceNestsAndBalancesUnderCacheHits) {
  Papyrus session;
  session.trace().set_enabled(true);

  task::TaskInvocation inv = SynthesisInvocation(session);
  auto cold = session.task_manager().Invoke(inv);
  ASSERT_TRUE(cold.ok());
  size_t cold_end = session.trace().event_count();
  auto warm = session.task_manager().Invoke(inv);
  ASSERT_TRUE(warm.ok());

  const std::vector<TraceEvent>& events = session.trace().events();
  EXPECT_GT(CheckSpanBalance(events), 0);
  EXPECT_EQ(session.trace().open_spans(), 0);

  // The cold run opened real step spans; the fully-cached rerun elides
  // every tool process, so it adds cache_hit instants and no step spans.
  std::vector<TraceEvent> rerun(events.begin() + cold_end, events.end());
  EXPECT_GT(CountEvents(rerun, 'i', "cache_hit"), 0);
  for (const TraceEvent& ev : rerun) {
    EXPECT_FALSE(ev.ph == 'B' && ev.cat == "step")
        << "cached rerun dispatched step " << ev.name;
  }
  EXPECT_GT(
      session.metrics().FindOrCreateCounter(kCacheHits)->value(), 0);
  EXPECT_GT(
      session.metrics().FindOrCreateCounter(kStepsElided)->value(), 0);
}

TEST(ObsIntegrationTest, TraceBalancesUnderRetriedSteps) {
  // Scan fault seeds until transient injections force at least one retry;
  // the trace must stay balanced through requeue/re-dispatch cycles.
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SessionOptions opts;
    opts.metadata_inference = false;
    Papyrus session(opts);
    session.trace().set_enabled(true);
    fault::FaultPlanOptions fopt;
    fopt.seed = seed;
    fopt.tool_transient_rate = 0.3;
    fault::FaultPlan plan(fopt);
    plan.set_observability(session.observability());
    ASSERT_TRUE(plan.Apply(&session.network(), &session.tools()).ok());

    auto rec = session.task_manager().Invoke(
        SynthesisInvocation(session, /*max_retries=*/6));
    if (!rec.ok() || rec->steps_retried == 0) continue;

    const std::vector<TraceEvent>& events = session.trace().events();
    EXPECT_GT(CheckSpanBalance(events), 0);
    EXPECT_EQ(session.trace().open_spans(), 0);
    EXPECT_GT(CountEvents(events, 'i', "retry_scheduled"), 0);
    EXPECT_GT(CountEvents(events, 'i', "retry"), 0);
    EXPECT_GT(CountEvents(events, 'i', "transient_injection"), 0);
    EXPECT_EQ(
        session.metrics().FindOrCreateCounter(kStepsRetried)->value(),
        rec->steps_retried);
    EXPECT_GT(
        session.metrics()
            .FindOrCreateCounter(kFaultTransientInjections)
            ->value(),
        0);
    return;
  }
  FAIL() << "no fault seed in [1,30] produced a retried step";
}

// ---------------------------------------------------------------------------
// Golden trace for a small two-step flow

TEST(ObsIntegrationTest, GoldenTwoStepFlowTrace) {
  Papyrus session;
  session.trace().set_enabled(true);

  task::TaskInvocation inv;
  inv.template_name = "Create_Logic_Description";
  inv.output_names = {"cell.logic"};
  inv.seed = 7;
  auto rec = session.task_manager().Invoke(inv);
  ASSERT_TRUE(rec.ok());

  // The task- and step-category (ph, name) sequence is the golden
  // contract: task span wrapping two serial step spans in template
  // order. Host/oct/cache events ride on other categories and may
  // evolve; this shape must not.
  std::vector<std::pair<char, std::string>> shape;
  for (const TraceEvent& ev : session.trace().events()) {
    if (ev.cat == "task" || ev.cat == "step" ||
        (ev.ph == 'E' && (ev.name == "Create_Logic_Description" ||
                          ev.name == "Enter_Logic" ||
                          ev.name == "Format_Transformation"))) {
      shape.emplace_back(ev.ph, ev.name);
    }
  }
  const std::vector<std::pair<char, std::string>> golden = {
      {'B', "Create_Logic_Description"},
      {'B', "Enter_Logic"},
      {'E', "Enter_Logic"},
      {'B', "Format_Transformation"},
      {'E', "Format_Transformation"},
      {'E', "Create_Logic_Description"},
  };
  EXPECT_EQ(shape, golden);
}

// ---------------------------------------------------------------------------
// Session export plumbing

TEST(ObsIntegrationTest, HeadlessCaptureWritesTraceAndMetrics) {
  std::string dir = ::testing::TempDir();
  std::string trace_path = dir + "/obs_test_trace.json";
  std::string metrics_path = dir + "/obs_test_metrics.json";
  {
    SessionOptions opts;
    opts.trace_path = trace_path;
    opts.metrics_path = metrics_path;
    Papyrus session(opts);
    EXPECT_TRUE(session.trace().enabled());
    auto rec = session.task_manager().Invoke(SynthesisInvocation(session));
    EXPECT_TRUE(rec.ok());
  }
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good());
  std::stringstream trace_buf;
  trace_buf << trace_in.rdbuf();
  EXPECT_NE(trace_buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_buf.str().find("papyrus.session.end"),
            std::string::npos);
  std::ifstream metrics_in(metrics_path);
  ASSERT_TRUE(metrics_in.good());
  std::stringstream metrics_buf;
  metrics_buf << metrics_in.rdbuf();
  EXPECT_NE(metrics_buf.str().find("papyrus.steps.completed"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Parallel-executor determinism at the session level

/// Everything a worker count could conceivably perturb, rendered to
/// comparable strings: full task histories, the ADG, and the raw snapshot
/// bytes SaveSession wrote.
struct SessionFingerprint {
  std::string histories;
  std::string adg;
  std::map<std::string, std::string> snapshot;  // file name -> bytes
  int64_t steps_pool = 0;
  int64_t steps_inline = 0;
};

std::string SerializeHistory(const task::TaskHistoryRecord& rec) {
  std::ostringstream out;
  out << rec.task_name << '|' << rec.invoke_micros << '|'
      << rec.commit_micros << '|' << rec.restarts << '|' << rec.steps_lost
      << '|' << rec.steps_retried << '|' << rec.steps_elided << '\n';
  for (const task::StepRecord& s : rec.steps) {
    out << "  " << s.internal_id << '|' << s.step_name << '|' << s.tool
        << '|' << s.invocation << '|' << s.dispatch_micros << '|'
        << s.completion_micros << '|' << s.host << '|' << s.exit_status
        << '|' << s.cache_hit << '|';
    for (const oct::ObjectId& id : s.inputs) out << id.ToString() << ',';
    out << '|';
    for (const oct::ObjectId& id : s.outputs) out << id.ToString() << ',';
    out << '\n';
  }
  return out.str();
}

/// Registers `soak`: a deterministic tool that *wall-blocks* for a few
/// milliseconds (like a real CAD tool stuck on a license server or NFS)
/// before producing a seed-derived output. The block gives pool workers
/// real wall-clock room to pick speculative jobs up, independent of how
/// the OS schedules threads on a loaded machine.
void RegisterSoakTool(Papyrus& session) {
  cadtools::ToolDescriptor desc;
  desc.name = "soak";
  desc.description = "wall-blocking deterministic test tool";
  desc.base_cost_micros = 4000;
  desc.min_inputs = 1;
  desc.max_inputs = 1;
  desc.num_outputs = 1;
  session.tools().Register(std::make_unique<cadtools::Tool>(
      desc, [](const cadtools::ToolRunContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        cadtools::ToolRunResult res;
        res.outputs.push_back(
            oct::TextData{"soak " + std::to_string(ctx.seed)});
        return res;
      }));
}

constexpr char kSoakTemplate[] =
    "task Soak_Fanout {In} {O1 O2 O3 O4 O5 O6 O7 O8}\n"
    "step S1 {In} {O1} {soak In}\n"
    "step S2 {In} {O2} {soak In}\n"
    "step S3 {In} {O3} {soak In}\n"
    "step S4 {In} {O4} {soak In}\n"
    "step S5 {In} {O5} {soak In}\n"
    "step S6 {In} {O6} {soak In}\n"
    "step S7 {In} {O7} {soak In}\n"
    "step S8 {In} {O8} {soak In}\n";

/// Runs a fixed seeded workload — two full Structure_Synthesis flows, a
/// Padp task, and an 8-wide wall-blocking fan-out, interleaved by
/// InvokeMany — in a fresh session with `workers` executor threads, feeds
/// the metadata engine, and snapshots the session.
SessionFingerprint RunSessionWorkload(int workers) {
  std::string dir =
      ::testing::TempDir() + "/det_w" + std::to_string(workers);
  SessionOptions opts;
  opts.worker_threads = workers;
  Papyrus session(opts);
  RegisterSoakTool(session);
  EXPECT_TRUE(session.AddTemplate(kSoakTemplate).ok());

  std::vector<task::TaskInvocation> invocations;
  invocations.push_back(SynthesisInvocation(session));
  invocations.push_back(SynthesisInvocation(session));
  auto cell = session.database().CreateVersion(
      "cell", oct::Layout{.num_cells = 12, .area = 1200.0, .seed = 3});
  EXPECT_TRUE(cell.ok());
  task::TaskInvocation padp;
  padp.template_name = "Padp";
  padp.inputs = {*cell};
  padp.output_names = {"cell.padded"};
  padp.seed = 9;
  invocations.push_back(padp);
  auto net = session.database().CreateVersion(
      "soak.in", oct::TextData{"payload"});
  EXPECT_TRUE(net.ok());
  task::TaskInvocation soak;
  soak.template_name = "Soak_Fanout";
  soak.inputs = {*net};
  soak.output_names = {"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"};
  soak.seed = 13;
  invocations.push_back(soak);

  SessionFingerprint fp;
  auto results = session.task_manager().InvokeMany(invocations);
  EXPECT_EQ(results.size(), invocations.size());
  for (auto& r : results) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    fp.histories += SerializeHistory(*r);
    EXPECT_TRUE(session.metadata().Observe(*r).ok());
  }
  EXPECT_EQ(session.task_manager().flow_violations(), 0);

  std::ostringstream adg;
  for (const auto& [id, e] : session.metadata().adg().edges()) {
    adg << id << '|' << e.tool << '|' << e.options << '|' << e.micros
        << '|' << e.reuse << '|';
    for (const oct::ObjectId& oid : e.inputs) adg << oid.ToString() << ',';
    adg << '|';
    for (const oct::ObjectId& oid : e.outputs) adg << oid.ToString() << ',';
    adg << '\n';
  }
  fp.adg = adg.str();

  EXPECT_TRUE(session.SaveSession(dir).ok());
  for (const char* name : {"database.pdb", "cache.pdc"}) {
    std::ifstream in(dir + "/" + name, std::ios::binary);
    EXPECT_TRUE(in.good()) << name;
    std::stringstream buf;
    buf << in.rdbuf();
    fp.snapshot[name] = buf.str();
  }
  fp.steps_pool =
      session.metrics().FindOrCreateCounter(kExecStepsPool)->value();
  fp.steps_inline =
      session.metrics().FindOrCreateCounter(kExecStepsInline)->value();
  return fp;
}

TEST(ObsIntegrationTest, SessionIsByteIdenticalAtAnyWorkerCount) {
  SessionFingerprint serial = RunSessionWorkload(1);
  ASSERT_FALSE(serial.histories.empty());
  ASSERT_FALSE(serial.adg.empty());
  // Serial mode runs every payload inline on the engine thread.
  EXPECT_EQ(serial.steps_pool, 0);
  EXPECT_GT(serial.steps_inline, 0);

  for (int workers : {2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    SessionFingerprint pool = RunSessionWorkload(workers);
    EXPECT_EQ(pool.histories, serial.histories);
    EXPECT_EQ(pool.adg, serial.adg);
    EXPECT_EQ(pool.snapshot, serial.snapshot);
    // The pool genuinely executed speculative payloads: parallelism is
    // real, not a serial fallback in disguise.
    EXPECT_GT(pool.steps_pool, 0);
  }
}

}  // namespace
}  // namespace papyrus::obs
