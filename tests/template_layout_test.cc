#include <gtest/gtest.h>

#include "tdl/template.h"
#include "tdl/template_layout.h"

namespace papyrus::tdl {
namespace {

class TemplateLayoutTest : public ::testing::Test {
 protected:
  TemplateLayoutTest() {
    EXPECT_TRUE(RegisterThesisTemplates(&library_).ok());
  }
  TemplateLibrary library_;
};

TEST_F(TemplateLayoutTest, ExtractsStepsFromLinearTemplate) {
  auto steps = ExtractSteps(
      "task T {A} {B}\n"
      "step S1 {A} {tmp} {espresso A}\n"
      "step S2 {tmp} {B} {pleasure tmp}\n",
      nullptr);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 2u);
  EXPECT_EQ((*steps)[0].name, "S1");
  EXPECT_EQ((*steps)[0].tool, "espresso");
  EXPECT_EQ((*steps)[1].inputs[0], "tmp");
  EXPECT_FALSE((*steps)[0].conditional);
}

TEST_F(TemplateLayoutTest, ExtractsConditionalSteps) {
  auto steps = ExtractSteps(
      "task T {A} {B}\n"
      "step S1 {A} {B} {sparcs A}\n"
      "if {$status} {step S2 {A} {B} {sparcs -v A} {ResumedStep 1}}\n",
      nullptr);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 2u);
  EXPECT_FALSE((*steps)[0].conditional);
  EXPECT_TRUE((*steps)[1].conditional);
  EXPECT_TRUE((*steps)[1].has_resumed_step);
  EXPECT_EQ((*steps)[1].resumed_step, 1);
}

TEST_F(TemplateLayoutTest, ExtractsOptionalFields) {
  auto steps = ExtractSteps(
      "task T {} {}\n"
      "step {3 S} {} {} {edit} {NonMigrate} {ControlDependency 1 2}\n",
      nullptr);
  ASSERT_TRUE(steps.ok());
  ASSERT_EQ(steps->size(), 1u);
  EXPECT_EQ((*steps)[0].user_id, 3);
  EXPECT_FALSE((*steps)[0].migratable);
  EXPECT_EQ((*steps)[0].control_deps, (std::vector<int>{1, 2}));
}

TEST_F(TemplateLayoutTest, SubtaskPlaceholderWithoutLibrary) {
  auto tmpl = library_.Find("Structure_Synthesis");
  ASSERT_TRUE(tmpl.ok());
  auto steps = ExtractSteps((*tmpl)->script, nullptr);
  ASSERT_TRUE(steps.ok());
  bool placeholder = false;
  for (const StaticStep& s : *steps) {
    if (s.tool == "<subtask>" && s.name == "Padp") placeholder = true;
  }
  EXPECT_TRUE(placeholder);
}

TEST_F(TemplateLayoutTest, SubtaskExpansionWithLibrary) {
  auto tmpl = library_.Find("Structure_Synthesis");
  ASSERT_TRUE(tmpl.ok());
  auto steps = ExtractSteps((*tmpl)->script, &library_);
  ASSERT_TRUE(steps.ok());
  EXPECT_EQ(steps->size(), 6u);
  bool expanded = false;
  for (const StaticStep& s : *steps) {
    if (s.name == "Pads_Placement") {
      expanded = true;
      EXPECT_TRUE(s.from_subtask);
      // Formal names mapped through the subtask call: the subtask's
      // Incell is the caller's cell.logic.
      ASSERT_EQ(s.inputs.size(), 1u);
      EXPECT_EQ(s.inputs[0], "cell.logic");
    }
  }
  EXPECT_TRUE(expanded);
}

TEST_F(TemplateLayoutTest, LayoutLevelsFollowDependencies) {
  auto tmpl = library_.Find("Structure_Synthesis");
  ASSERT_TRUE(tmpl.ok());
  auto steps = ExtractSteps((*tmpl)->script, &library_);
  ASSERT_TRUE(steps.ok());
  TemplateLayout layout = ComputeTemplateLayout(*steps);
  // NetlistCompile -> Logic_Synthesis -> Pads_Placement ->
  // Place_and_Route -> {Simulate, Chip_Statistics_Collection}.
  ASSERT_EQ(layout.levels.size(), 5u);
  EXPECT_EQ(layout.levels[0].size(), 1u);
  EXPECT_EQ(layout.levels[4].size(), 2u);
  auto name_at = [&](size_t level, size_t k) {
    return (*steps)[layout.levels[level][k]].name;
  };
  EXPECT_EQ(name_at(0, 0), "NetlistCompile");
  EXPECT_EQ(name_at(3, 0), "Place_and_Route");
}

TEST_F(TemplateLayoutTest, ControlDependencyAffectsLevels) {
  auto steps = ExtractSteps(
      "task T {A} {X Y}\n"
      "step {1 P} {A} {X} {wolfe A}\n"
      "step Q {A} {Y} {musa A} {ControlDependency 1}\n",
      nullptr);
  ASSERT_TRUE(steps.ok());
  TemplateLayout layout = ComputeTemplateLayout(*steps);
  ASSERT_EQ(layout.levels.size(), 2u);  // Q must follow P
}

TEST_F(TemplateLayoutTest, RenderMosaico) {
  auto tmpl = library_.Find("Mosaico");
  ASSERT_TRUE(tmpl.ok());
  auto text = RenderTemplate(**tmpl, &library_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Task Mosaico"), std::string::npos);
  EXPECT_NE(text->find("[?Vertical_Compaction]"), std::string::npos);
  EXPECT_NE(text->find("..abort..> after"), std::string::npos);
  EXPECT_NE(text->find("==control==>"), std::string::npos);
  EXPECT_NE(text->find("--grOutput-->"), std::string::npos);
}

TEST_F(TemplateLayoutTest, RenderMarksNonMigratableSteps) {
  auto tmpl = library_.Find("Create_Logic_Description");
  ASSERT_TRUE(tmpl.ok());
  auto text = RenderTemplate(**tmpl, &library_);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("[Enter_Logic (home)]"), std::string::npos);
}

TEST_F(TemplateLayoutTest, AllThesisTemplatesRender) {
  for (const std::string& name : library_.TemplateNames()) {
    auto tmpl = library_.Find(name);
    ASSERT_TRUE(tmpl.ok());
    auto text = RenderTemplate(**tmpl, &library_);
    EXPECT_TRUE(text.ok()) << name << ": " << text.status().ToString();
    EXPECT_FALSE(text->empty()) << name;
  }
}

TEST_F(TemplateLayoutTest, RejectsMalformedTemplates) {
  EXPECT_FALSE(ExtractSteps("task T {} {}\nstep OnlyName\n", nullptr).ok());
  EXPECT_FALSE(
      ExtractSteps("task T {} {}\nsubtask Missing {a} {b}\n", &library_)
          .ok());
}

}  // namespace
}  // namespace papyrus::tdl
