#include <gtest/gtest.h>

#include "cadtools/registry.h"
#include "cadtools/tool.h"
#include "oct/design_data.h"

namespace papyrus::cadtools {
namespace {

using oct::BehavioralSpec;
using oct::DesignFormat;
using oct::DesignPayload;
using oct::Layout;
using oct::LogicNetwork;
using oct::TextData;

TEST(ToolOptionsTest, ParsesFlagsAndPositionals) {
  ToolOptions o = ToolOptions::Parse(
      {"-f", "script.msu", "-T", "oct", "-o", "cell.logic", "cell.blif"});
  EXPECT_EQ(o.FlagValue("f"), "script.msu");
  EXPECT_EQ(o.FlagValue("T"), "oct");
  EXPECT_EQ(o.FlagValue("o"), "cell.logic");
  ASSERT_EQ(o.positional.size(), 1u);
  EXPECT_EQ(o.positional[0], "cell.blif");
}

TEST(ToolOptionsTest, ValuelessFlags) {
  ToolOptions o = ToolOptions::Parse({"-i", "-z", "-o", "out", "in"});
  EXPECT_TRUE(o.HasFlag("i"));
  EXPECT_TRUE(o.HasFlag("z"));
  EXPECT_EQ(o.FlagValue("i"), "");
  EXPECT_FALSE(o.HasFlag("q"));
  EXPECT_EQ(o.FlagValue("q", "dflt"), "dflt");
}

TEST(ToolOptionsTest, FlagInt) {
  ToolOptions o = ToolOptions::Parse({"-r", "2", "-x", "abc"});
  EXPECT_EQ(o.FlagInt("r", 0), 2);
  EXPECT_EQ(o.FlagInt("x", 9), 9);   // non-numeric
  EXPECT_EQ(o.FlagInt("zz", 7), 7);  // missing
}

class SuiteTest : public ::testing::Test {
 protected:
  SuiteTest() : registry_(CreateStandardRegistry()) {}

  ToolRunResult Run(const std::string& tool,
                    std::vector<const DesignPayload*> inputs,
                    std::vector<std::string> args = {}) {
    auto t = registry_->Find(tool);
    EXPECT_TRUE(t.ok()) << tool;
    ToolRunContext ctx;
    ctx.inputs = std::move(inputs);
    ctx.options = ToolOptions::Parse(args);
    ctx.seed = 12345;
    return (*t)->Run(ctx);
  }

  std::unique_ptr<ToolRegistry> registry_;
};

TEST_F(SuiteTest, RegistryHasFullSuite) {
  EXPECT_GE(registry_->size(), 20u);
  for (const char* name :
       {"edit", "bdsyn", "misII", "espresso", "pleasure", "panda", "wolfe",
        "padplace", "musa", "atlas", "mosaicoGR", "PGcurrent", "mosaicoDR",
        "octflatten", "mizer", "sparcs", "vulcan", "mosaicoRC", "chipstats",
        "crystal"}) {
    EXPECT_TRUE(registry_->Has(name)) << name;
  }
  EXPECT_TRUE(registry_->Find("nonexistent").status().IsNotFound());
}

TEST_F(SuiteTest, EveryToolHasManPageAndDescription) {
  for (const std::string& name : registry_->ToolNames()) {
    auto t = registry_->Find(name);
    ASSERT_TRUE(t.ok());
    EXPECT_FALSE((*t)->descriptor().man_page.empty()) << name;
    EXPECT_FALSE((*t)->descriptor().description.empty()) << name;
  }
}

TEST_F(SuiteTest, EditCreatesBehavioralSpecFromOptions) {
  auto r = Run("edit", {}, {"-inputs", "16", "-outputs", "4",
                            "-complexity", "32"});
  ASSERT_EQ(r.exit_status, 0) << r.message;
  ASSERT_EQ(r.outputs.size(), 1u);
  const auto& b = std::get<BehavioralSpec>(r.outputs[0]);
  EXPECT_EQ(b.num_inputs, 16);
  EXPECT_EQ(b.num_outputs, 4);
  EXPECT_EQ(b.complexity, 32);
}

TEST_F(SuiteTest, BdsynTranslatesBehavioralToLogic) {
  DesignPayload in = BehavioralSpec{8, 8, 10, 42};
  auto r = Run("bdsyn", {&in});
  ASSERT_EQ(r.exit_status, 0);
  const auto& n = std::get<LogicNetwork>(r.outputs[0]);
  EXPECT_EQ(n.num_inputs, 8);
  EXPECT_EQ(n.minterms, 80);
  EXPECT_EQ(n.format, DesignFormat::kBlif);
}

TEST_F(SuiteTest, BdsynRejectsWrongInputType) {
  DesignPayload in = Layout{};
  auto r = Run("bdsyn", {&in});
  EXPECT_NE(r.exit_status, 0);
  EXPECT_NE(r.message.find("not a behavioral"), std::string::npos);
}

TEST_F(SuiteTest, MisIIShrinksLiterals) {
  DesignPayload in = LogicNetwork{.num_inputs = 8,
                                  .num_outputs = 8,
                                  .minterms = 100,
                                  .literals = 300,
                                  .levels = 9,
                                  .format = DesignFormat::kBlif,
                                  .seed = 7};
  auto r = Run("misII", {&in}, {"-f", "script.msu"});
  ASSERT_EQ(r.exit_status, 0);
  const auto& n = std::get<LogicNetwork>(r.outputs[0]);
  EXPECT_LT(n.literals, 300);
  EXPECT_LT(n.levels, 9);
}

TEST_F(SuiteTest, EspressoMinimizesAndSelectsFormatByOption) {
  DesignPayload in = LogicNetwork{.minterms = 200, .literals = 100,
                                  .seed = 3};
  auto eq = Run("espresso", {&in}, {"-o", "equitott"});
  ASSERT_EQ(eq.exit_status, 0);
  EXPECT_EQ(std::get<LogicNetwork>(eq.outputs[0]).format,
            DesignFormat::kEquation);
  auto pla = Run("espresso", {&in}, {"-o", "pleasure"});
  ASSERT_EQ(pla.exit_status, 0);
  EXPECT_EQ(std::get<LogicNetwork>(pla.outputs[0]).format,
            DesignFormat::kPla);
  EXPECT_LT(std::get<LogicNetwork>(pla.outputs[0]).minterms, 200);
}

TEST_F(SuiteTest, EspressoIsDeterministic) {
  DesignPayload in = LogicNetwork{.minterms = 200, .seed = 99};
  auto a = Run("espresso", {&in});
  auto b = Run("espresso", {&in});
  EXPECT_EQ(std::get<LogicNetwork>(a.outputs[0]).minterms,
            std::get<LogicNetwork>(b.outputs[0]).minterms);
}

TEST_F(SuiteTest, PleasureRequiresPlaFormat) {
  DesignPayload blif = LogicNetwork{.format = DesignFormat::kBlif};
  EXPECT_NE(Run("pleasure", {&blif}).exit_status, 0);
  DesignPayload pla = LogicNetwork{.literals = 100,
                                   .format = DesignFormat::kPla};
  auto r = Run("pleasure", {&pla});
  ASSERT_EQ(r.exit_status, 0);
  EXPECT_LT(std::get<LogicNetwork>(r.outputs[0]).literals, 100);
}

TEST_F(SuiteTest, PandaGeneratesPlaLayoutAndHonorsAreaConstraint) {
  DesignPayload in = LogicNetwork{.num_inputs = 8,
                                  .num_outputs = 4,
                                  .minterms = 50,
                                  .format = DesignFormat::kPla,
                                  .seed = 5};
  auto ok = Run("panda", {&in});
  ASSERT_EQ(ok.exit_status, 0);
  const auto& lay = std::get<Layout>(ok.outputs[0]);
  EXPECT_EQ(lay.style, "PLA");
  EXPECT_GT(lay.area, 0.0);

  auto fail = Run("panda", {&in}, {"-maxarea", "10"});
  EXPECT_EQ(fail.exit_status, 1);
  EXPECT_NE(fail.message.find("area constraint"), std::string::npos);
}

TEST_F(SuiteTest, WolfePlacesAndRoutes) {
  DesignPayload in = LogicNetwork{.literals = 400, .levels = 8, .seed = 2};
  auto r = Run("wolfe", {&in}, {"-f", "-r", "2"});
  ASSERT_EQ(r.exit_status, 0);
  const auto& lay = std::get<Layout>(r.outputs[0]);
  EXPECT_EQ(lay.style, "standard-cell");
  EXPECT_TRUE(lay.routed);
  EXPECT_EQ(lay.num_cells, 100);
}

TEST_F(SuiteTest, PadplaceAddsPadsExactlyOnce) {
  DesignPayload in = Layout{.num_cells = 10, .area = 1000.0, .seed = 4};
  auto r = Run("padplace", {&in});
  ASSERT_EQ(r.exit_status, 0);
  const auto& lay = std::get<Layout>(r.outputs[0]);
  EXPECT_TRUE(lay.has_pads);
  EXPECT_GT(lay.area, 1000.0);
  DesignPayload again = lay;
  EXPECT_NE(Run("padplace", {&again}).exit_status, 0);
}

TEST_F(SuiteTest, MusaSimulatesWithoutDesignOutput) {
  DesignPayload in = LogicNetwork{.num_inputs = 4, .num_outputs = 2};
  DesignPayload cmds = TextData{"watch all; run 100"};
  auto r = Run("musa", {&in, &cmds});
  EXPECT_EQ(r.exit_status, 0);
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_NE(r.message.find("simulated"), std::string::npos);
}

TEST_F(SuiteTest, MosaicoPipelineStages) {
  DesignPayload macro = Layout{.num_cells = 40, .area = 20000.0,
                               .style = "macro", .seed = 11};
  auto cd = Run("atlas", {&macro}, {"-i", "-z"});
  ASSERT_EQ(cd.exit_status, 0);
  auto gr = Run("mosaicoGR", {&cd.outputs[0]}, {"-r"});
  ASSERT_EQ(gr.exit_status, 0);
  EXPECT_GT(std::get<Layout>(gr.outputs[0]).wire_length, 0.0);
  auto pg = Run("PGcurrent", {&gr.outputs[0]});
  ASSERT_EQ(pg.exit_status, 0);
  EXPECT_TRUE(std::holds_alternative<TextData>(pg.outputs[0]));
  auto dr = Run("mosaicoDR", {&gr.outputs[0]}, {"-d", "-r", "YACR"});
  ASSERT_EQ(dr.exit_status, 0);
  EXPECT_TRUE(std::get<Layout>(dr.outputs[0]).routed);
  auto fl = Run("octflatten", {&dr.outputs[0], &macro}, {"-r"});
  ASSERT_EQ(fl.exit_status, 0);
  auto vm = Run("mizer", {&fl.outputs[0]});
  ASSERT_EQ(vm.exit_status, 0);
  EXPECT_LT(std::get<Layout>(vm.outputs[0]).wire_length,
            std::get<Layout>(fl.outputs[0]).wire_length);
}

TEST_F(SuiteTest, SparcsFailureInjectionIsDeterministic) {
  // Find a seed where horizontal-first fails but vertical-first works —
  // the Figure 4.3 scenario.
  bool found = false;
  for (uint64_t seed = 0; seed < 64 && !found; ++seed) {
    DesignPayload in = Layout{.area = 10000.0, .wire_length = 100.0,
                              .seed = seed};
    auto h = Run("sparcs", {&in}, {"-t"});
    auto v = Run("sparcs", {&in}, {"-v", "-t"});
    if (h.exit_status != 0 && v.exit_status == 0) {
      found = true;
      EXPECT_TRUE(std::get<Layout>(v.outputs[0]).compacted);
      EXPECT_LT(std::get<Layout>(v.outputs[0]).area, 10000.0);
      // Determinism: rerunning gives the same outcome.
      EXPECT_NE(Run("sparcs", {&in}, {"-t"}).exit_status, 0);
      EXPECT_EQ(Run("sparcs", {&in}, {"-v", "-t"}).exit_status, 0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SuiteTest, VulcanCreatesAbstractionView) {
  DesignPayload in = Layout{.area = 100.0};
  auto r = Run("vulcan", {&in});
  ASSERT_EQ(r.exit_status, 0);
  EXPECT_TRUE(std::get<Layout>(r.outputs[0]).has_abstraction);
}

TEST_F(SuiteTest, MosaicoRCRejectsUnroutedLayouts) {
  DesignPayload unrouted = Layout{.routed = false};
  EXPECT_NE(Run("mosaicoRC", {&unrouted}).exit_status, 0);
  DesignPayload routed = Layout{.routed = true};
  EXPECT_EQ(Run("mosaicoRC", {&routed}).exit_status, 0);
}

TEST_F(SuiteTest, ChipstatsReportsMetrics) {
  DesignPayload in = Layout{.num_cells = 7, .area = 777.0,
                            .delay_ns = 3.5, .power_mw = 12.0};
  auto r = Run("chipstats", {&in});
  ASSERT_EQ(r.exit_status, 0);
  const auto& text = std::get<TextData>(r.outputs[0]).text;
  EXPECT_NE(text.find("area 777"), std::string::npos);
  EXPECT_NE(text.find("cells 7"), std::string::npos);
}

TEST_F(SuiteTest, CrystalReportsDelay) {
  DesignPayload in = Layout{.delay_ns = 9.25};
  auto r = Run("crystal", {&in});
  ASSERT_EQ(r.exit_status, 0);
  EXPECT_EQ(std::get<TextData>(r.outputs[0]).text, "9.25");
}

TEST_F(SuiteTest, CostModelScalesWithInputSize) {
  auto t = registry_->Find("wolfe");
  ASSERT_TRUE(t.ok());
  EXPECT_GT((*t)->CostMicros(100000), (*t)->CostMicros(100));
  auto edit = registry_->Find("edit");
  ASSERT_TRUE(edit.ok());
  EXPECT_TRUE((*edit)->descriptor().interactive);
  auto wolfe = registry_->Find("wolfe");
  EXPECT_FALSE((*wolfe)->descriptor().interactive);
}

TEST_F(SuiteTest, RegistryReplaceTool) {
  ToolDescriptor d;
  d.name = "espresso";
  d.description = "replacement minimizer";
  d.man_page = "x";
  registry_->Register(std::make_unique<Tool>(
      d, [](const ToolRunContext&) { return ToolRunResult{}; }));
  auto t = registry_->Find("espresso");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->descriptor().description, "replacement minimizer");
}

}  // namespace
}  // namespace papyrus::cadtools
