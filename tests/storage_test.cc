#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "oct/database.h"
#include "storage/atomic_file.h"
#include "storage/reclamation.h"

namespace papyrus::storage {
namespace {

using activity::DesignThread;
using activity::NodeId;
using oct::LogicNetwork;
using oct::ObjectId;

class ReclamationTest : public ::testing::Test {
 protected:
  ReclamationTest()
      : clock_(0), db_(&clock_), mgr_(&db_, &clock_),
        thread_(1, "T", &clock_) {}

  /// Creates a real db object and returns its id.
  ObjectId MakeObject(const std::string& name, int size_driver = 10) {
    auto id = db_.CreateVersion(name, LogicNetwork{.minterms = size_driver,
                                                   .literals = size_driver});
    EXPECT_TRUE(id.ok());
    return *id;
  }

  /// Appends a record with given ins/outs plus `n_steps` step records that
  /// reference intermediate objects.
  NodeId AppendTask(const std::string& task, std::vector<ObjectId> in,
                    std::vector<ObjectId> out, int n_steps = 0) {
    task::TaskHistoryRecord rec;
    rec.task_name = task;
    rec.inputs = in;
    rec.outputs = out;
    for (int i = 0; i < n_steps; ++i) {
      task::StepRecord step;
      step.step_name = task + ".s" + std::to_string(i);
      ObjectId tmp =
          MakeObject(task + ".tmp" + std::to_string(i), 50);
      // Intermediates are invisible after commit, as the task manager
      // leaves them.
      EXPECT_TRUE(db_.MarkInvisible(tmp).ok());
      step.outputs = {tmp};
      rec.steps.push_back(step);
    }
    auto node = thread_.Append(std::move(rec), thread_.current_cursor());
    EXPECT_TRUE(node.ok());
    return *node;
  }

  ManualClock clock_;
  oct::OctDatabase db_;
  ReclamationManager mgr_;
  DesignThread thread_;
};

TEST_F(ReclamationTest, FilteringList) {
  EXPECT_TRUE(mgr_.ShouldRecord("Mosaico"));
  mgr_.AddFilteredTask("Print_Schematic");
  EXPECT_FALSE(mgr_.ShouldRecord("Print_Schematic"));
  EXPECT_TRUE(mgr_.ShouldRecord("Mosaico"));
}

TEST_F(ReclamationTest, VerticalAgingStripsOldStepDetails) {
  ObjectId a = MakeObject("a");
  NodeId n1 = AppendTask("old_task", {}, {a}, /*n_steps=*/3);
  clock_.AdvanceSeconds(1000);
  ObjectId b = MakeObject("b");
  NodeId n2 = AppendTask("new_task", {a}, {b}, /*n_steps=*/2);

  int64_t live_before = db_.LiveVersionCount();
  auto report = mgr_.VerticalAge(&thread_, /*older_than=*/500 * 1000000ll);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 1);
  EXPECT_EQ(report->objects_reclaimed, 3);  // old_task's intermediates
  EXPECT_GT(report->bytes_reclaimed, 0);
  EXPECT_EQ(db_.LiveVersionCount(), live_before - 3);
  // The aged record lost its steps but kept task-level objects.
  auto node = thread_.GetNode(n1);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE((*node)->record.steps.empty());
  EXPECT_EQ((*node)->record.outputs.size(), 1u);
  // The young record is untouched.
  node = thread_.GetNode(n2);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->record.steps.size(), 2u);
}

TEST_F(ReclamationTest, VerticalAgingKeepsTaskLevelObjectsAlive) {
  ObjectId a = MakeObject("a");
  AppendTask("t", {}, {a}, 2);
  clock_.AdvanceSeconds(1000);
  auto report = mgr_.VerticalAge(&thread_, clock_.NowMicros());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(db_.Get(a).ok());  // the task output survives
}

TEST_F(ReclamationTest, HorizontalAgingPrunesOldPrefix) {
  ObjectId a = MakeObject("a");
  ObjectId b = MakeObject("b");
  ObjectId c = MakeObject("c");
  AppendTask("t1", {}, {a});
  AppendTask("t2", {a}, {b});
  clock_.AdvanceSeconds(10000);
  NodeId n3 = AppendTask("t3", {b}, {c});
  auto report =
      mgr_.HorizontalAge(&thread_, /*older_than=*/5000 * 1000000ll);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 2);
  EXPECT_EQ(thread_.size(), 1);
  auto node = thread_.GetNode(n3);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE((*node)->parents.empty());
  // `a` was only referenced by the pruned prefix: reclaimed. `b` is an
  // input of the surviving record: kept.
  EXPECT_FALSE(db_.Get(a).ok());
  EXPECT_TRUE(db_.Get(b).ok());
  EXPECT_TRUE(db_.Get(c).ok());
  EXPECT_EQ(report->objects_reclaimed, 1);
}

TEST_F(ReclamationTest, HorizontalAgingStopsAtBranches) {
  ObjectId a = MakeObject("a");
  NodeId n1 = AppendTask("t1", {}, {a});
  AppendTask("t2", {a}, {MakeObject("b")});
  ASSERT_TRUE(thread_.MoveCursor(n1).ok());
  AppendTask("t3", {a}, {MakeObject("c")});
  clock_.AdvanceSeconds(10000);
  auto report = mgr_.HorizontalAge(&thread_, clock_.NowMicros());
  ASSERT_TRUE(report.ok());
  // n1 branches: nothing can be pruned.
  EXPECT_EQ(report->records_affected, 0);
  EXPECT_EQ(thread_.size(), 3);
}

TEST_F(ReclamationTest, ApprovalVetoBlocksPruning) {
  AppendTask("t1", {}, {MakeObject("a")}, 2);
  clock_.AdvanceSeconds(1000);
  mgr_.set_approval([](const std::string&, const std::vector<NodeId>&) {
    return false;  // user says no
  });
  auto report = mgr_.VerticalAge(&thread_, clock_.NowMicros());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 0);
  EXPECT_EQ(mgr_.total_bytes_reclaimed(), 0);
}

TEST_F(ReclamationTest, IterativeRefinementAbstraction) {
  // Figure 5.9: edit/simulate rounds; only round 3's output is used later.
  ObjectId base = MakeObject("layout");
  AppendTask("setup", {}, {base});
  std::vector<std::vector<NodeId>> rounds;
  std::vector<ObjectId> round_outputs;
  for (int i = 1; i <= 4; ++i) {
    ObjectId edited = MakeObject("layout.edit" + std::to_string(i));
    NodeId edit = AppendTask("Layout_Edit", {base}, {edited});
    NodeId sim = AppendTask("Circuit_Sim", {edited}, {});
    rounds.push_back({edit, sim});
    round_outputs.push_back(edited);
  }
  // Downstream work consumes round 3's output.
  AppendTask("tapeout", {round_outputs[2]}, {MakeObject("final")});

  int before = thread_.size();
  auto report = mgr_.AbstractIterations(&thread_, rounds);
  ASSERT_TRUE(report.ok());
  // Rounds 1, 2 and 4 (2 records each) are spliced out.
  EXPECT_EQ(report->records_affected, 6);
  EXPECT_EQ(thread_.size(), before - 6);
  // Round 3 survives; its output is still live.
  EXPECT_TRUE(db_.Get(round_outputs[2]).ok());
  // Abandoned rounds' outputs are reclaimed.
  EXPECT_FALSE(db_.Get(round_outputs[0]).ok());
  EXPECT_FALSE(db_.Get(round_outputs[3]).ok());
  // The stream is still connected: the data scope of the tip includes the
  // setup object.
  auto frontier = thread_.FrontierCursors();
  ASSERT_EQ(frontier.size(), 1u);
  auto state = thread_.ThreadState(frontier[0]);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->count(base), 1u);
}

TEST_F(ReclamationTest, IterationAbstractionKeepsLastRoundWhenNoneUsed) {
  ObjectId base = MakeObject("layout");
  AppendTask("setup", {}, {base});
  std::vector<std::vector<NodeId>> rounds;
  for (int i = 1; i <= 3; ++i) {
    NodeId edit = AppendTask("Layout_Edit", {base},
                             {MakeObject("e" + std::to_string(i))});
    rounds.push_back({edit});
  }
  auto report = mgr_.AbstractIterations(&thread_, rounds);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 2);  // last round kept
  EXPECT_EQ(thread_.size(), 2);
}

TEST_F(ReclamationTest, DeadEndBranchPruning) {
  ObjectId a = MakeObject("a");
  NodeId n1 = AppendTask("t1", {}, {a});
  // Branch 1: abandoned early.
  AppendTask("dead1", {a}, {MakeObject("d1")});
  AppendTask("dead2", {a}, {MakeObject("d2")});
  // Branch 2: the live line of development.
  ASSERT_TRUE(thread_.MoveCursor(n1).ok());
  NodeId live = AppendTask("live", {a}, {MakeObject("l")});
  // Time passes; only the live branch is touched.
  clock_.AdvanceSeconds(100000);
  ASSERT_TRUE(thread_.MoveCursor(live).ok());
  (void)thread_.DataScope();

  auto report =
      mgr_.PruneDeadBranches(&thread_, /*unaccessed=*/50000 * 1000000ll);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 2);
  EXPECT_EQ(thread_.size(), 2);  // t1 + live
  EXPECT_FALSE(db_.Get({"d2", 1}).ok());
  EXPECT_TRUE(db_.Get({"l", 1}).ok());
  EXPECT_TRUE(db_.Get(a).ok());
}

TEST_F(ReclamationTest, DeadBranchPruningSparesCurrentCursor) {
  ObjectId a = MakeObject("a");
  AppendTask("t1", {}, {a});
  clock_.AdvanceSeconds(100000);
  // The lone frontier is the current cursor: never pruned.
  auto report = mgr_.PruneDeadBranches(&thread_, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 0);
  EXPECT_EQ(thread_.size(), 1);
}

TEST(AtomicFileTest, WritesAndOverwritesWithoutResidue) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "atomic_file";
  fs::create_directories(dir);
  fs::path target = dir / "data.txt";

  ASSERT_TRUE(AtomicWriteFile(target.string(), "first\n").ok());
  ASSERT_TRUE(AtomicWriteFile(target.string(), "second\n").ok());
  std::ifstream in(target, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "second\n");

  // The write-rename dance leaves no temporary files behind.
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST(AtomicFileTest, FailsCleanlyOnMissingDirectory) {
  namespace fs = std::filesystem;
  fs::path bogus =
      fs::path(::testing::TempDir()) / "atomic_missing" / "nested" / "f";
  fs::remove_all(fs::path(::testing::TempDir()) / "atomic_missing");
  Status st = AtomicWriteFile(bogus.string(), "x");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(fs::exists(bogus));
}

TEST_F(ReclamationTest, BytesReclaimedAccumulatesAcrossPasses) {
  AppendTask("t1", {}, {MakeObject("a")}, 2);
  clock_.AdvanceSeconds(1000);
  ASSERT_TRUE(mgr_.VerticalAge(&thread_, clock_.NowMicros()).ok());
  int64_t after_first = mgr_.total_bytes_reclaimed();
  EXPECT_GT(after_first, 0);
  AppendTask("t2", {}, {MakeObject("b")}, 2);
  clock_.AdvanceSeconds(1000);
  ASSERT_TRUE(mgr_.VerticalAge(&thread_, clock_.NowMicros()).ok());
  EXPECT_GT(mgr_.total_bytes_reclaimed(), after_first);
}

}  // namespace
}  // namespace papyrus::storage
