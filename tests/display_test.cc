#include <gtest/gtest.h>

#include "activity/design_thread.h"
#include "activity/display.h"
#include "activity/thread_ops.h"
#include "base/clock.h"

namespace papyrus::activity {
namespace {

task::TaskHistoryRecord Rec(const std::string& name) {
  task::TaskHistoryRecord rec;
  rec.task_name = name;
  return rec;
}

class DisplayTest : public ::testing::Test {
 protected:
  DisplayTest() : clock_(0), thread_(1, "T", &clock_) {}

  NodeId Append(const std::string& name) {
    auto node = thread_.Append(Rec(name), thread_.current_cursor());
    EXPECT_TRUE(node.ok());
    return *node;
  }

  ManualClock clock_;
  DesignThread thread_;
};

TEST_F(DisplayTest, EmptyThreadRenders) {
  std::string text = RenderControlStream(thread_);
  EXPECT_NE(text.find("Thread 1 \"T\""), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);  // cursor at initial point
  StreamLayout layout = ComputeStreamLayout(thread_);
  EXPECT_TRUE(layout.cells.empty());
  EXPECT_EQ(layout.width, 0);
}

TEST_F(DisplayTest, LinearStreamLayout) {
  Append("a");
  Append("b");
  Append("c");
  StreamLayout layout = ComputeStreamLayout(thread_);
  EXPECT_EQ(layout.width, 3);
  EXPECT_EQ(layout.height, 1);
  EXPECT_EQ(layout.cells.at(1), (std::pair<int, int>{0, 0}));
  EXPECT_EQ(layout.cells.at(3), (std::pair<int, int>{2, 0}));
}

TEST_F(DisplayTest, BranchesOpenNewLanes) {
  NodeId a = Append("a");
  Append("b");
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  Append("c");
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  Append("d");
  StreamLayout layout = ComputeStreamLayout(thread_);
  EXPECT_EQ(layout.width, 2);
  EXPECT_EQ(layout.height, 3);  // three branch lanes
  // All branches share x=1 but occupy distinct lanes.
  std::set<int> lanes;
  for (NodeId id : {2, 3, 4}) {
    EXPECT_EQ(layout.cells.at(id).first, 1);
    lanes.insert(layout.cells.at(id).second);
  }
  EXPECT_EQ(lanes.size(), 3u);
}

TEST_F(DisplayTest, JoinGraphRendersReferenceMarker) {
  DesignThread a(2, "A", &clock_);
  DesignThread b(3, "B", &clock_);
  (void)a.Append(Rec("a1"), a.current_cursor());
  (void)b.Append(Rec("b1"), b.current_cursor());
  DesignThread joined(4, "J", &clock_);
  ASSERT_TRUE(ThreadCombinator::Join(a, a.FrontierCursors()[0], b,
                                     b.FrontierCursors()[0], &joined)
                  .ok());
  std::string text = RenderControlStream(joined);
  EXPECT_NE(text.find("<join>"), std::string::npos);
  // The junction appears under one parent and as a reference under the
  // other — never duplicated as a full subtree.
  EXPECT_NE(text.find("(see above)"), std::string::npos);
  // Junction's layout x is the max over both parents + 1.
  StreamLayout layout = ComputeStreamLayout(joined);
  NodeId junction = joined.current_cursor();
  EXPECT_EQ(layout.cells.at(junction).first, 1);
}

TEST_F(DisplayTest, RenderShowsAnnotationsCursorAndFrontiers) {
  NodeId a = Append("alpha");
  NodeId b = Append("beta");
  ASSERT_TRUE(thread_.Annotate(a, "checkpoint").ok());
  ASSERT_TRUE(thread_.MoveCursor(a).ok());
  std::string text = RenderControlStream(thread_);
  EXPECT_NE(text.find("alpha \"checkpoint\" *"), std::string::npos);
  EXPECT_NE(text.find("beta ^"), std::string::npos);
  (void)b;
}

TEST_F(DisplayTest, DataScopeListsVersionsPerName) {
  task::TaskHistoryRecord rec;
  rec.task_name = "t";
  rec.outputs = {{"x", 1}, {"x", 2}, {"y", 1}};
  ASSERT_TRUE(thread_.Append(std::move(rec), kInitialPoint).ok());
  std::string text = RenderDataScope(&thread_);
  EXPECT_NE(text.find("x : version 1 version 2"), std::string::npos);
  EXPECT_NE(text.find("y : version 1"), std::string::npos);
}

TEST_F(DisplayTest, TransformIdentityByDefault) {
  DisplayTransform t;
  auto [x, y] = t.Apply(3.5, -2.0);
  EXPECT_DOUBLE_EQ(x, 3.5);
  EXPECT_DOUBLE_EQ(y, -2.0);
  EXPECT_EQ(t.events_logged(), 0);
}

TEST_F(DisplayTest, ZoomThenPanOrderMatters) {
  // p' = M (p + T): a pan logged after a zoom moves in *pre-zoom* units.
  DisplayTransform t;
  t.Zoom(4);
  t.Pan(8, 0);  // normalized to 2 pre-zoom units
  EXPECT_DOUBLE_EQ(t.tx(), 2.0);
  auto [x, y] = t.Apply(1.0, 1.0);
  EXPECT_DOUBLE_EQ(x, 12.0);  // 4 * (1 + 2)
  EXPECT_DOUBLE_EQ(y, 4.0);
}

}  // namespace
}  // namespace papyrus::activity
