#include <gtest/gtest.h>

#include "tcl/interp.h"
#include "tcl/parser.h"

namespace papyrus::tcl {
namespace {

// --- Parser ------------------------------------------------------------

TEST(ParserTest, SplitsCommandsOnNewlinesAndSemicolons) {
  auto cmds = ParseScript("set a 27; set b test.C\nset c 3");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ(cmds->size(), 3u);
  EXPECT_EQ((*cmds)[0].words[0].text, "set");
  EXPECT_EQ((*cmds)[1].words[2].text, "test.C");
  EXPECT_EQ((*cmds)[2].words[1].text, "c");
}

TEST(ParserTest, BracedWordsAreLiteral) {
  auto cmds = ParseScript("set b {xyz {b c d}}");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ((*cmds)[0].words.size(), 3u);
  EXPECT_EQ((*cmds)[0].words[2].kind, WordKind::kBraced);
  EXPECT_EQ((*cmds)[0].words[2].text, "xyz {b c d}");
}

TEST(ParserTest, QuotedWordsGroup) {
  auto cmds = ParseScript("set a \"This is a single operand\"");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ((*cmds)[0].words.size(), 3u);
  EXPECT_EQ((*cmds)[0].words[2].kind, WordKind::kQuoted);
  EXPECT_EQ((*cmds)[0].words[2].text, "This is a single operand");
}

TEST(ParserTest, CommentsAreSkipped) {
  auto cmds = ParseScript("# a comment\nset a 1\n  # another\nset b 2");
  ASSERT_TRUE(cmds.ok());
  EXPECT_EQ(cmds->size(), 2u);
}

TEST(ParserTest, SemicolonInsideBracesIsLiteral) {
  auto cmds = ParseScript("set a {x; y}");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ(cmds->size(), 1u);
  EXPECT_EQ((*cmds)[0].words[2].text, "x; y");
}

TEST(ParserTest, BackslashNewlineContinuesCommand) {
  auto cmds = ParseScript("set a \\\n 42");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ(cmds->size(), 1u);
  ASSERT_EQ((*cmds)[0].words.size(), 3u);
  EXPECT_EQ((*cmds)[0].words[2].text, "42");
}

TEST(ParserTest, ErrorsOnUnbalancedConstructs) {
  EXPECT_FALSE(ParseScript("set a {oops").ok());
  EXPECT_FALSE(ParseScript("set a \"oops").ok());
  EXPECT_FALSE(ParseScript("set a [oops").ok());
  EXPECT_FALSE(ParseScript("set a {x}y").ok());
}

TEST(ParserTest, BracketsInBareWordsSpanWhitespace) {
  auto cmds = ParseScript("set a x[cmd one two]y");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ((*cmds)[0].words.size(), 3u);
  EXPECT_EQ((*cmds)[0].words[2].text, "x[cmd one two]y");
}

TEST(ListTest, ParseSimpleList) {
  auto items = ParseList("ab&c dd {a book {now is}}");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->size(), 3u);
  EXPECT_EQ((*items)[0], "ab&c");
  EXPECT_EQ((*items)[1], "dd");
  EXPECT_EQ((*items)[2], "a book {now is}");
}

TEST(ListTest, NewlineSeparatesElements) {
  auto items = ParseList("a\nb\nc");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 3u);
}

TEST(ListTest, FormatRoundTrips) {
  std::vector<std::string> in = {"plain", "has space", "", "br{ace}s",
                                 "semi;colon"};
  auto out = ParseList(FormatList(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, in);
}

TEST(ListTest, EmptyElementQuoted) {
  EXPECT_EQ(QuoteListElement(""), "{}");
  EXPECT_EQ(QuoteListElement("x"), "x");
  EXPECT_EQ(QuoteListElement("a b"), "{a b}");
}

// --- Interp core -------------------------------------------------------

class InterpTest : public ::testing::Test {
 protected:
  Interp in_;

  std::string MustEval(const std::string& script) {
    auto r = in_.Eval(script);
    EXPECT_TRUE(r.ok()) << script << " -> " << r.status().ToString();
    return r.ok() ? *r : "";
  }
};

TEST_F(InterpTest, SetAndVariableSubstitution) {
  MustEval("set a 100");
  MustEval("set b fg");
  EXPECT_EQ(MustEval("set c Zs${a}d$b"), "Zs100dfg");
}

TEST_F(InterpTest, CommandSubstitution) {
  MustEval("set a 5");
  EXPECT_EQ(MustEval("set b x[set a]y"), "x5y");
}

TEST_F(InterpTest, UnknownCommandErrors) {
  auto r = in_.Eval("no_such_command");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("invalid command name"),
            std::string::npos);
}

TEST_F(InterpTest, UnknownVariableErrors) {
  EXPECT_FALSE(in_.Eval("set b $missing").ok());
}

TEST_F(InterpTest, BackslashEscapes) {
  EXPECT_EQ(MustEval("set a a\\$b"), "a$b");
  EXPECT_EQ(MustEval("set nl \"x\\ny\""), "x\ny");
}

TEST_F(InterpTest, BracedArgumentsNotSubstituted) {
  MustEval("set a 1");
  EXPECT_EQ(MustEval("set b {$a}"), "$a");
}

TEST_F(InterpTest, IncrCommand) {
  MustEval("set n 5");
  EXPECT_EQ(MustEval("incr n"), "6");
  EXPECT_EQ(MustEval("incr n 10"), "16");
  EXPECT_FALSE(in_.Eval("incr missing").ok());
}

TEST_F(InterpTest, UnsetCommand) {
  MustEval("set x 1");
  MustEval("unset x");
  EXPECT_FALSE(in_.VarExists("x"));
  EXPECT_FALSE(in_.Eval("unset x").ok());
}

TEST_F(InterpTest, PutsCapturesOutput) {
  MustEval("puts hello; puts world");
  EXPECT_EQ(in_.TakeOutput(), "hello\nworld\n");
  EXPECT_EQ(in_.output(), "");
}

// --- Expressions -------------------------------------------------------

TEST_F(InterpTest, ArithmeticExpressions) {
  EXPECT_EQ(MustEval("expr 1 + 2 * 3"), "7");
  EXPECT_EQ(MustEval("expr (1 + 2) * 3"), "9");
  EXPECT_EQ(MustEval("expr 7 / 2"), "3");
  EXPECT_EQ(MustEval("expr 7 % 3"), "1");
  EXPECT_EQ(MustEval("expr -4 + 1"), "-3");
}

TEST_F(InterpTest, PaperExpressionExamples) {
  // "(4*2) > 7" from §4.2.1.
  EXPECT_EQ(MustEval("expr {(4*2) > 7}"), "1");
  MustEval("set a 4");
  EXPECT_EQ(MustEval("expr {($a + 3) <= [set a]}"), "0");
}

TEST_F(InterpTest, ComparisonOperators) {
  EXPECT_EQ(MustEval("expr 3 < 4"), "1");
  EXPECT_EQ(MustEval("expr 3 >= 4"), "0");
  EXPECT_EQ(MustEval("expr 3 == 3"), "1");
  EXPECT_EQ(MustEval("expr 3 != 3"), "0");
}

TEST_F(InterpTest, StringComparison) {
  EXPECT_EQ(MustEval("expr {\"abc\" == \"abc\"}"), "1");
  EXPECT_EQ(MustEval("expr {\"abc\" < \"abd\"}"), "1");
}

TEST_F(InterpTest, LogicalOperators) {
  EXPECT_EQ(MustEval("expr 1 && 0"), "0");
  EXPECT_EQ(MustEval("expr 1 || 0"), "1");
  EXPECT_EQ(MustEval("expr !1"), "0");
  EXPECT_EQ(MustEval("expr 1 and 1"), "1");
  EXPECT_EQ(MustEval("expr 0 or 0"), "0");
  EXPECT_EQ(MustEval("expr not 0"), "1");
}

TEST_F(InterpTest, TernaryOperator) {
  EXPECT_EQ(MustEval("expr 1 ? 10 : 20"), "10");
  EXPECT_EQ(MustEval("expr 0 ? 10 : 20"), "20");
}

TEST_F(InterpTest, ExprErrors) {
  EXPECT_FALSE(in_.Eval("expr 1 / 0").ok());
  EXPECT_FALSE(in_.Eval("expr 1 +").ok());
  EXPECT_FALSE(in_.Eval("expr {abc + 1}").ok());
  EXPECT_FALSE(in_.Eval("expr (1").ok());
}

TEST_F(InterpTest, ExprSubstitutesVariablesItself) {
  MustEval("set a 10");
  EXPECT_EQ(MustEval("expr {$a > 5}"), "1");
  EXPECT_EQ(MustEval("expr {[expr 2+3] * $a}"), "50");
}

// --- Control flow ------------------------------------------------------

TEST_F(InterpTest, IfThenElse) {
  MustEval("set a 2");
  EXPECT_EQ(MustEval("if {$a > 1} {set b 1} {set b 0}"), "1");
  EXPECT_EQ(MustEval("if {$a > 5} {set b 1} else {set b 0}"), "0");
  EXPECT_EQ(MustEval("if {$a > 5} {set c 1} elseif {$a > 1} {set c 2} "
                     "else {set c 3}"),
            "2");
  EXPECT_EQ(MustEval("if {$a > 5} then {set d 1} else {set d 9}"), "9");
}

TEST_F(InterpTest, IfWithoutElseYieldsEmpty) {
  EXPECT_EQ(MustEval("if 0 {set x 1}"), "");
}

TEST_F(InterpTest, WhileLoop) {
  MustEval("set i 0; set sum 0");
  MustEval("while {$i < 5} {set sum [expr $sum + $i]; incr i}");
  EXPECT_EQ(MustEval("set sum"), "10");
}

TEST_F(InterpTest, WhileBreakContinue) {
  MustEval("set i 0; set n 0");
  MustEval("while 1 {incr i; if {$i == 3} continue; if {$i > 6} break; "
           "incr n}");
  EXPECT_EQ(MustEval("set n"), "5");
}

TEST_F(InterpTest, ForLoop) {
  MustEval("set sum 0");
  MustEval("for {set i 1} {$i <= 4} {incr i} {set sum [expr $sum+$i]}");
  EXPECT_EQ(MustEval("set sum"), "10");
}

TEST_F(InterpTest, ForeachLoop) {
  MustEval("set out {}");
  MustEval("foreach x {a b c} {append out $x$x}");
  EXPECT_EQ(MustEval("set out"), "aabbcc");
}

TEST_F(InterpTest, BreakOutsideLoopIsError) {
  EXPECT_FALSE(in_.Eval("break").ok());
  EXPECT_FALSE(in_.Eval("continue").ok());
}

// --- Procs ------------------------------------------------------------

TEST_F(InterpTest, ProcDefinitionAndCall) {
  MustEval("proc double {x} {return [expr $x * 2]}");
  EXPECT_EQ(MustEval("double 21"), "42");
}

TEST_F(InterpTest, ProcLocalScope) {
  MustEval("set x global_value");
  MustEval("proc touch {} {set x local; return $x}");
  EXPECT_EQ(MustEval("touch"), "local");
  EXPECT_EQ(MustEval("set x"), "global_value");
}

TEST_F(InterpTest, ProcGlobalLink) {
  MustEval("set counter 0");
  MustEval("proc bump {} {global counter; incr counter}");
  MustEval("bump; bump");
  EXPECT_EQ(MustEval("set counter"), "2");
}

TEST_F(InterpTest, ProcDefaultArguments) {
  MustEval("proc greet {name {greeting hello}} "
           "{return \"$greeting $name\"}");
  EXPECT_EQ(MustEval("greet world"), "hello world");
  EXPECT_EQ(MustEval("greet world hi"), "hi world");
  EXPECT_FALSE(in_.Eval("greet").ok());
}

TEST_F(InterpTest, ProcVarargs) {
  MustEval("proc count {first args} {return [llength $args]}");
  EXPECT_EQ(MustEval("count a b c d"), "3");
}

TEST_F(InterpTest, ProcImplicitResultIsLastCommand) {
  MustEval("proc last {} {set a 1; set b 2}");
  EXPECT_EQ(MustEval("last"), "2");
}

TEST_F(InterpTest, RecursiveProc) {
  MustEval("proc fact {n} {if {$n <= 1} {return 1}; "
           "return [expr $n * [fact [expr $n - 1]]]}");
  EXPECT_EQ(MustEval("fact 6"), "720");
}

TEST_F(InterpTest, RecursionLimitTriggers) {
  in_.set_recursion_limit(20);
  MustEval("proc loop {} {loop}");
  EXPECT_FALSE(in_.Eval("loop").ok());
}

// --- Lists / strings / misc built-ins -----------------------------------

TEST_F(InterpTest, ListCommands) {
  EXPECT_EQ(MustEval("list a b {c d}"), "a b {c d}");
  EXPECT_EQ(MustEval("llength {a b {c d}}"), "3");
  EXPECT_EQ(MustEval("lindex {a b c} 1"), "b");
  EXPECT_EQ(MustEval("lindex {a b c} end"), "c");
  EXPECT_EQ(MustEval("lindex {a b c} 9"), "");
  EXPECT_EQ(MustEval("lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(MustEval("concat {a b} {} {c}"), "a b c");
  EXPECT_EQ(MustEval("lsearch {x y z} y"), "1");
  EXPECT_EQ(MustEval("lsearch {x y z} q"), "-1");
}

TEST_F(InterpTest, LAppend) {
  MustEval("set l {}");
  MustEval("lappend l one; lappend l {t w o}");
  EXPECT_EQ(MustEval("llength $l"), "2");
  EXPECT_EQ(MustEval("lindex $l 1"), "t w o");
}

TEST_F(InterpTest, JoinAndSplit) {
  EXPECT_EQ(MustEval("join {a b c} -"), "a-b-c");
  EXPECT_EQ(MustEval("llength [split a:b:c :]"), "3");
}

TEST_F(InterpTest, StringCommands) {
  EXPECT_EQ(MustEval("string length hello"), "5");
  EXPECT_EQ(MustEval("string index hello 1"), "e");
  EXPECT_EQ(MustEval("string compare a b"), "-1");
  EXPECT_EQ(MustEval("string match *.blif cell.blif"), "1");
  EXPECT_EQ(MustEval("string match *.blif cell.pla"), "0");
  EXPECT_EQ(MustEval("string match c?ll cell"), "1");
  EXPECT_EQ(MustEval("string tolower ABc"), "abc");
  EXPECT_EQ(MustEval("string toupper abC"), "ABC");
  EXPECT_EQ(MustEval("string trim {  x  }"), "x");
}

TEST_F(InterpTest, CatchAndError) {
  EXPECT_EQ(MustEval("catch {error boom} msg"), "1");
  EXPECT_EQ(MustEval("set msg"), "boom");
  EXPECT_EQ(MustEval("catch {set ok 1}"), "0");
}

TEST_F(InterpTest, InfoCommands) {
  MustEval("set v 1");
  EXPECT_EQ(MustEval("info exists v"), "1");
  EXPECT_EQ(MustEval("info exists nope"), "0");
  EXPECT_EQ(MustEval("info level"), "0");
  MustEval("proc lvl {} {return [info level]}");
  EXPECT_EQ(MustEval("lvl"), "1");
}

TEST_F(InterpTest, EvalCommand) {
  MustEval("set script {set q 7}");
  MustEval("eval $script");
  EXPECT_EQ(MustEval("set q"), "7");
}

// --- Application command registration (the TDL extension point) ---------

TEST_F(InterpTest, ApplicationCommandsCanBeRegistered) {
  std::vector<std::vector<std::string>> calls;
  in_.RegisterCommand("step",
                      [&](Interp&, const std::vector<std::string>& argv) {
                        calls.push_back(argv);
                        return EvalResult::Ok("dispatched");
                      });
  EXPECT_EQ(MustEval("step NetlistCompile {Incell} {cell.blif}"),
            "dispatched");
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0][1], "NetlistCompile");
  EXPECT_EQ(calls[0][2], "Incell");
  EXPECT_TRUE(in_.HasCommand("step"));
  EXPECT_TRUE(in_.UnregisterCommand("step"));
  EXPECT_FALSE(in_.HasCommand("step"));
}

TEST_F(InterpTest, CommandsExecutedCounterAdvances) {
  int64_t before = in_.commands_executed();
  MustEval("set a 1; set b 2");
  EXPECT_EQ(in_.commands_executed(), before + 2);
}

}  // namespace
}  // namespace papyrus::tcl
