#include <gtest/gtest.h>

#include "base/clock.h"
#include "cadtools/registry.h"
#include "meta/adg.h"
#include "meta/inference.h"
#include "meta/tsd.h"
#include "oct/database.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::meta {
namespace {

using oct::BehavioralSpec;
using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;
using oct::TextData;

// --- ADG ------------------------------------------------------------------

class AdgTest : public ::testing::Test {
 protected:
  Adg adg_;
};

TEST_F(AdgTest, ProducerAndConsumers) {
  ObjectId a{"a", 1};
  ObjectId b{"b", 1};
  ObjectId c{"c", 1};
  adg_.AddInvocation("espresso", "-o pleasure", {a}, {b}, 10);
  adg_.AddInvocation("panda", "", {b}, {c}, 20);
  auto producer = adg_.Producer(b);
  ASSERT_TRUE(producer.ok());
  EXPECT_EQ((*producer)->tool, "espresso");
  EXPECT_TRUE(adg_.Producer(a).status().IsNotFound());
  auto consumers = adg_.Consumers(b);
  ASSERT_EQ(consumers.size(), 1u);
  EXPECT_EQ(consumers[0]->tool, "panda");
  EXPECT_EQ(adg_.edge_count(), 2u);
}

TEST_F(AdgTest, DerivationClosure) {
  ObjectId a{"a", 1}, b{"b", 1}, c{"c", 1}, d{"d", 1};
  adg_.AddInvocation("t1", "", {a}, {b}, 1);
  adg_.AddInvocation("t2", "", {b}, {c}, 2);
  adg_.AddInvocation("t3", "", {b, c}, {d}, 3);
  auto from = adg_.DerivedFrom(d);
  EXPECT_EQ(from.size(), 3u);  // b, c, a
  auto deps = adg_.Dependents(a);
  EXPECT_EQ(deps.size(), 3u);  // b, c, d
  EXPECT_TRUE(adg_.DerivedFrom(a).empty());
  EXPECT_TRUE(adg_.Dependents(d).empty());
}

TEST_F(AdgTest, RetracePlanCoversAffectedInvocations) {
  ObjectId a{"a", 1}, b{"b", 1}, c{"c", 1}, x{"x", 1}, y{"y", 1};
  adg_.AddInvocation("t1", "", {a}, {b}, 1);
  adg_.AddInvocation("t2", "", {b}, {c}, 2);
  adg_.AddInvocation("t3", "", {x}, {y}, 3);  // unrelated branch
  auto plan = adg_.RetracePlan("a");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0]->tool, "t1");
  EXPECT_EQ(plan[1]->tool, "t2");
  EXPECT_TRUE(adg_.RetracePlan("y").empty());
}

TEST_F(AdgTest, BuildsFromHistoryRecordSkippingFailedSteps) {
  task::TaskHistoryRecord record;
  task::StepRecord ok_step;
  ok_step.tool = "bdsyn";
  ok_step.inputs = {{"spec", 1}};
  ok_step.outputs = {{"net", 1}};
  task::StepRecord failed;
  failed.tool = "sparcs";
  failed.exit_status = 1;
  record.steps = {ok_step, failed};
  adg_.AddFromHistoryRecord(record);
  EXPECT_EQ(adg_.edge_count(), 1u);
}

// --- TSD -------------------------------------------------------------------

TEST(TsdTest, StandardSuiteRegistered) {
  TsdRegistry reg;
  RegisterStandardTsds(&reg);
  EXPECT_GE(reg.size(), 20u);
  for (const char* tool : {"espresso", "bdsyn", "octflatten", "wolfe"}) {
    EXPECT_TRUE(reg.Has(tool)) << tool;
  }
  EXPECT_TRUE(reg.Find("unknown_tool").status().IsNotFound());
}

TEST(TsdTest, EspressoOutputSelectedByOption) {
  TsdRegistry reg;
  RegisterStandardTsds(&reg);
  auto espresso = reg.Find("espresso");
  ASSERT_TRUE(espresso.ok());
  EXPECT_EQ((*espresso)->OutputFor("equitott").format, "equation");
  EXPECT_EQ((*espresso)->OutputFor("pleasure").format, "PLA");
  EXPECT_EQ((*espresso)->OutputFor("").format, "PLA");  // default
  // The inherit list carries I/O counts through minimization.
  EXPECT_EQ((*espresso)->inherit_list.size(), 2u);
}

TEST(TsdTest, DomainTranslatorsDetected) {
  TsdRegistry reg;
  RegisterStandardTsds(&reg);
  EXPECT_TRUE((*reg.Find("bdsyn"))->IsDomainTranslator());
  EXPECT_TRUE((*reg.Find("wolfe"))->IsDomainTranslator());
  EXPECT_TRUE((*reg.Find("panda"))->IsDomainTranslator());
  EXPECT_FALSE((*reg.Find("espresso"))->IsDomainTranslator());
  EXPECT_FALSE((*reg.Find("mizer"))->IsDomainTranslator());
  EXPECT_TRUE((*reg.Find("octflatten"))->composition_tool);
  EXPECT_FALSE((*reg.Find("espresso"))->composition_tool);
}

// --- RelationshipStore -------------------------------------------------------

TEST(RelationshipStoreTest, IndexesBothSides) {
  RelationshipStore store;
  ObjectId a{"a", 1}, b{"b", 1};
  store.Add(RelKind::kDerivation, b, a, "espresso");
  store.Add(RelKind::kEquivalence, b, a, "bdsyn");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Of(a).size(), 2u);
  EXPECT_EQ(store.From(b, RelKind::kDerivation).size(), 1u);
  EXPECT_EQ(store.To(a, RelKind::kEquivalence).size(), 1u);
  EXPECT_TRUE(store.From(a, RelKind::kDerivation).empty());
  EXPECT_STREQ(RelKindToString(RelKind::kConfiguration), "configuration");
}

// --- MetadataEngine (unit) ---------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : clock_(0), db_(&clock_), engine_(&db_, &attrs_, &tsds_) {
    RegisterStandardTsds(&tsds_);
    RegisterStandardPropagationRules(&engine_);
  }

  /// Simulates one observed tool invocation: creates the output version in
  /// the db and feeds a step record to the engine.
  ObjectId Observe(const std::string& tool, const std::string& invocation,
                   std::vector<ObjectId> inputs,
                   const std::string& out_name,
                   oct::DesignPayload out_payload) {
    auto out = db_.CreateVersion(out_name, std::move(out_payload), tool);
    EXPECT_TRUE(out.ok());
    task::TaskHistoryRecord record;
    task::StepRecord step;
    step.tool = tool;
    step.invocation = invocation;
    step.inputs = std::move(inputs);
    step.outputs = {*out};
    record.steps = {step};
    EXPECT_TRUE(engine_.Observe(record).ok());
    return *out;
  }

  ManualClock clock_;
  oct::OctDatabase db_;
  oct::AttributeStore attrs_;
  TsdRegistry tsds_;
  MetadataEngine engine_;
};

TEST_F(EngineTest, TypeInferredFromCreatingTool) {
  auto spec = db_.CreateVersion("spec", BehavioralSpec{4, 4, 8, 1});
  ASSERT_TRUE(spec.ok());
  ObjectId net = Observe("bdsyn", "bdsyn -o net spec", {*spec}, "net",
                         LogicNetwork{.num_inputs = 4, .num_outputs = 4,
                                      .minterms = 64, .seed = 2});
  auto type = engine_.TypeOf(net);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, "logic");
  auto format = engine_.FormatOf(net);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(*format, "blif");
  EXPECT_TRUE(engine_.TypeOf(*spec).status().IsNotFound());
}

TEST_F(EngineTest, EspressoFormatFollowsOptionValue) {
  auto in = db_.CreateVersion("net", LogicNetwork{.minterms = 64});
  ASSERT_TRUE(in.ok());
  ObjectId eq = Observe("espresso", "espresso -o equitott net", {*in},
                        "net.eq",
                        LogicNetwork{.format = oct::DesignFormat::kEquation});
  EXPECT_EQ(*engine_.FormatOf(eq), "equation");
  ObjectId pla = Observe("espresso", "espresso -o pleasure net", {*in},
                         "net.pla",
                         LogicNetwork{.format = oct::DesignFormat::kPla});
  EXPECT_EQ(*engine_.FormatOf(pla), "PLA");
}

TEST_F(EngineTest, ImmediateAttributesEvaluatedAtCreation) {
  auto in = db_.CreateVersion("spec", BehavioralSpec{4, 4, 8, 1});
  ASSERT_TRUE(in.ok());
  ObjectId net = Observe("bdsyn", "bdsyn spec", {*in}, "net",
                         LogicNetwork{.num_inputs = 4, .num_outputs = 4,
                                      .minterms = 64});
  // format is immediate: computed without a query.
  auto entry = attrs_.Get(net, "format");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(entry->computed);
  // minterms is lazy: attached but not yet computed.
  entry = attrs_.Get(net, "minterms");
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->computed);
  int64_t lazy_before = engine_.lazy_evaluations();
  auto value = engine_.GetAttribute(net, "minterms");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "64");
  EXPECT_EQ(engine_.lazy_evaluations(), lazy_before + 1);
  // Second query hits the cache.
  int64_t hits_before = engine_.cache_hits();
  ASSERT_TRUE(engine_.GetAttribute(net, "minterms").ok());
  EXPECT_EQ(engine_.cache_hits(), hits_before + 1);
}

TEST_F(EngineTest, InheritListCopiesValuesThroughTools) {
  auto spec = db_.CreateVersion("spec", BehavioralSpec{6, 3, 8, 1});
  ASSERT_TRUE(spec.ok());
  ObjectId net = Observe("bdsyn", "bdsyn spec", {*spec}, "net",
                         LogicNetwork{.num_inputs = 6, .num_outputs = 3,
                                      .minterms = 64});
  // num_inputs was computed immediately on net.
  ASSERT_TRUE(attrs_.GetValue(net, "num_inputs").ok());
  int64_t inherited_before = engine_.inherited_values();
  ObjectId min = Observe("espresso", "espresso -o pleasure net", {net},
                         "net.min",
                         LogicNetwork{.num_inputs = 6, .num_outputs = 3,
                                      .minterms = 30,
                                      .format = oct::DesignFormat::kPla});
  // espresso's inherit list carries num_inputs/num_outputs through
  // without re-measurement.
  EXPECT_GE(engine_.inherited_values(), inherited_before + 2);
  auto v = attrs_.GetValue(min, "num_inputs");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "6");
}

TEST_F(EngineTest, RelationshipsEstablished) {
  auto spec = db_.CreateVersion("spec", BehavioralSpec{4, 4, 8, 1});
  ASSERT_TRUE(spec.ok());
  ObjectId net = Observe("bdsyn", "bdsyn spec", {*spec}, "net",
                         LogicNetwork{});
  // Derivation from the input, plus equivalence (bdsyn is a translator).
  EXPECT_EQ(engine_.relationships().From(net, RelKind::kDerivation).size(),
            1u);
  EXPECT_EQ(engine_.relationships().From(net, RelKind::kEquivalence).size(),
            1u);
  // A second version links to the first.
  ObjectId net2 = Observe("bdsyn", "bdsyn spec", {*spec}, "net",
                          LogicNetwork{});
  EXPECT_EQ(net2.version, 2);
  auto versions = engine_.relationships().From(net2, RelKind::kVersionOf);
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0]->to, net);
}

TEST_F(EngineTest, CompositionToolCreatesConfiguration) {
  auto a = db_.CreateVersion("block_a", Layout{.power_mw = 3.0});
  auto b = db_.CreateVersion("block_b", Layout{.power_mw = 5.0});
  ASSERT_TRUE(a.ok() && b.ok());
  ObjectId merged = Observe("octflatten", "octflatten -r block_b block_a",
                            {*a, *b}, "chip",
                            Layout{.power_mw = 2.0});
  auto components =
      engine_.relationships().From(merged, RelKind::kConfiguration);
  EXPECT_EQ(components.size(), 2u);
}

TEST_F(EngineTest, PropagatedAttributeAggregatesOverConfiguration) {
  auto a = db_.CreateVersion("block_a", Layout{.delay_ns = 4.0, .power_mw = 3.0});
  auto b = db_.CreateVersion("block_b", Layout{.delay_ns = 9.0, .power_mw = 5.0});
  ASSERT_TRUE(a.ok() && b.ok());
  ObjectId merged = Observe("octflatten", "octflatten block_a block_b",
                            {*a, *b}, "chip",
                            Layout{.delay_ns = 1.0, .power_mw = 2.0});
  // total_power = own (2) + components (3 + 5).
  auto power = engine_.GetAttribute(merged, "total_power");
  ASSERT_TRUE(power.ok());
  EXPECT_EQ(*power, "10");
  // worst_delay = max(own, components) = 9.
  auto delay = engine_.GetAttribute(merged, "worst_delay");
  ASSERT_TRUE(delay.ok());
  EXPECT_EQ(*delay, "9");
}

TEST_F(EngineTest, IncrementalInvalidationOnNewComponentVersion) {
  auto a = db_.CreateVersion("block_a", Layout{.power_mw = 3.0});
  auto b = db_.CreateVersion("block_b", Layout{.power_mw = 5.0});
  ASSERT_TRUE(a.ok() && b.ok());
  ObjectId merged = Observe("octflatten", "octflatten block_a block_b",
                            {*a, *b}, "chip", Layout{.power_mw = 2.0});
  ASSERT_TRUE(engine_.GetAttribute(merged, "total_power").ok());
  // A new version of block_a appears (derived from the old one): the
  // composite's propagated cache is invalidated.
  int64_t inval_before = engine_.invalidations();
  Observe("mizer", "mizer block_a", {*a}, "block_a",
          Layout{.power_mw = 1.0});
  EXPECT_GT(engine_.invalidations(), inval_before);
  auto entry = attrs_.Get(merged, "total_power");
  ASSERT_TRUE(entry.ok());
  EXPECT_FALSE(entry->computed);
}

TEST_F(EngineTest, TypeCheckingDetectsIncompatibleApplications) {
  auto spec = db_.CreateVersion("spec", BehavioralSpec{4, 4, 8, 1});
  ASSERT_TRUE(spec.ok());
  ObjectId net = Observe("bdsyn", "bdsyn spec", {*spec}, "net",
                         LogicNetwork{});
  ObjectId lay = Observe("wolfe", "wolfe net", {net}, "lay", Layout{});
  // Applying a compaction tool to a logic object is incompatible.
  EXPECT_TRUE(engine_.CheckToolApplication("sparcs", {net})
                  .IsFailedPrecondition());
  EXPECT_TRUE(engine_.CheckToolApplication("sparcs", {lay}).ok());
  EXPECT_TRUE(engine_.CheckToolApplication("espresso", {net}).ok());
  EXPECT_TRUE(engine_.CheckToolApplication("espresso", {lay})
                  .IsFailedPrecondition());
  // Unknown provenance: cannot check, passes.
  EXPECT_TRUE(engine_.CheckToolApplication("sparcs", {*spec}).ok());
}

// --- End-to-end: inference over real task-manager histories ---------------

TEST(EngineIntegrationTest, ObservesStructureSynthesisHistory) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 4);
  auto registry = cadtools::CreateStandardRegistry();
  tdl::TemplateLibrary library;
  ASSERT_TRUE(tdl::RegisterThesisTemplates(&library).ok());
  task::TaskManager manager(&db, registry.get(), &network, &library);

  auto in = db.CreateVersion("shifter", BehavioralSpec{8, 8, 12, 7});
  auto cmds = db.CreateVersion("sim.cmd", TextData{"run"});
  ASSERT_TRUE(in.ok() && cmds.ok());
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*in, *cmds};
  inv.output_names = {"shifter.layout", "shifter.stats"};
  auto record = manager.Invoke(inv);
  ASSERT_TRUE(record.ok()) << record.status().ToString();

  oct::AttributeStore attrs;
  TsdRegistry tsds;
  RegisterStandardTsds(&tsds);
  MetadataEngine engine(&db, &attrs, &tsds);
  ASSERT_TRUE(engine.Observe(*record).ok());

  // The final layout's type was inferred from wolfe's TSD.
  auto type = engine.TypeOf(record->outputs[0]);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, "layout");
  // Its derivation history reaches all the way back to the behavioral
  // input.
  auto derived = engine.adg().DerivedFrom(record->outputs[0]);
  bool reaches_spec = false;
  for (const ObjectId& id : derived) {
    if (id == *in) reaches_spec = true;
  }
  EXPECT_TRUE(reaches_spec);
  // Retracing: modifying the behavioral spec requires re-running the
  // whole downstream pipeline.
  auto plan = engine.adg().RetracePlan("shifter");
  EXPECT_GE(plan.size(), 4u);
  // Equivalence chain across domains exists (behavioral->logic via
  // bdsyn).
  bool found_equivalence = false;
  for (const auto& [id, edge] : engine.adg().edges()) {
    if (edge.tool == "bdsyn") found_equivalence = true;
  }
  EXPECT_TRUE(found_equivalence);
}

}  // namespace
}  // namespace papyrus::meta
