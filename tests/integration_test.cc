// Cross-module integration tests: template files, constraint attributes,
// derivation rendering, and systematic failure injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/papyrus.h"
#include "meta/inference.h"
#include "tdl/template.h"

namespace papyrus {
namespace {

using oct::Layout;

// --- Template files (§4.2.2: templates are UNIX files) -------------------

class TemplateFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("papyrus_tmpl_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
  tdl::TemplateLibrary library_;
};

TEST_F(TemplateFileTest, AddFromFile) {
  WriteFile("pad.tdl",
            "task Padp {Incell} {Outcell}\n"
            "step Pads {Incell} {Outcell} {padplace -c -o Outcell Incell}\n");
  ASSERT_TRUE(library_.AddFromFile((dir_ / "pad.tdl").string()).ok());
  EXPECT_TRUE(library_.Has("Padp"));
  EXPECT_TRUE(library_.AddFromFile((dir_ / "missing.tdl").string())
                  .IsNotFound());
}

TEST_F(TemplateFileTest, LoadDirectory) {
  WriteFile("a.tdl", "task A {} {}\n");
  WriteFile("b.tdl", "task B {X} {Y}\nstep S {X} {Y} {espresso X}\n");
  WriteFile("ignored.txt", "task C {} {}\n");
  auto loaded = library_.LoadDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2);
  EXPECT_TRUE(library_.Has("A"));
  EXPECT_TRUE(library_.Has("B"));
  EXPECT_FALSE(library_.Has("C"));
  EXPECT_TRUE(library_.LoadDirectory("/no/such/dir").status().IsNotFound());
}

TEST_F(TemplateFileTest, MalformedFileAbortsLoadWithPath) {
  WriteFile("bad.tdl", "step without task header\n");
  auto loaded = library_.LoadDirectory(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad.tdl"), std::string::npos);
}

TEST_F(TemplateFileTest, ShippedTemplateDirectoryMatchesBuiltins) {
  // The repository ships the thesis templates as .tdl files; loading them
  // must agree with the compiled-in registrations.
  tdl::TemplateLibrary from_files;
  auto loaded =
      from_files.LoadDirectory(std::string(PAPYRUS_SOURCE_DIR) +
                               "/templates");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  tdl::TemplateLibrary builtin;
  ASSERT_TRUE(tdl::RegisterThesisTemplates(&builtin).ok());
  EXPECT_EQ(*loaded, static_cast<int>(builtin.size()));
  for (const std::string& name : builtin.TemplateNames()) {
    ASSERT_TRUE(from_files.Has(name)) << name;
    auto a = from_files.Find(name);
    auto b = builtin.Find(name);
    EXPECT_EQ((*a)->formal_inputs, (*b)->formal_inputs) << name;
    EXPECT_EQ((*a)->formal_outputs, (*b)->formal_outputs) << name;
  }
}

// --- Constraint attributes (§6.4.1) -----------------------------------------

TEST(ConstraintTest, ViolationsDetectedAtCreationTime) {
  Papyrus session;
  meta::ConstraintRule max_area;
  max_area.object_type = "layout";
  max_area.attribute = "area";
  max_area.op = meta::ConstraintRule::Op::kLessEqual;
  max_area.bound = 5000.0;
  max_area.description = "chip area budget";
  session.metadata().AddConstraint(max_area);

  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  ASSERT_TRUE(session
                  .Invoke(thread, "Standard_Cell_Place_and_Route",
                          {"c.logic"}, {"c.layout"})
                  .ok());
  // The synthesized layout exceeds 5000 lambda^2: detected eagerly.
  ASSERT_GE(session.metadata().violations().size(), 1u);
  const auto& v = session.metadata().violations().front();
  EXPECT_EQ(v.attribute, "area");
  EXPECT_GT(v.value, v.bound);
  EXPECT_EQ(v.description, "chip area budget");
}

TEST(ConstraintTest, SatisfiedConstraintsStaySilent) {
  Papyrus session;
  meta::ConstraintRule min_cells;
  min_cells.object_type = "layout";
  min_cells.attribute = "cells";
  min_cells.op = meta::ConstraintRule::Op::kGreaterEqual;
  min_cells.bound = 1.0;
  session.metadata().AddConstraint(min_cells);
  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  ASSERT_TRUE(session
                  .Invoke(thread, "Standard_Cell_Place_and_Route",
                          {"c.logic"}, {"c.layout"})
                  .ok());
  EXPECT_TRUE(session.metadata().violations().empty());
}

// --- Derivation rendering (Figure 6.2) ---------------------------------------

TEST(DerivationRenderTest, ShowsToolChainBackToSources) {
  Papyrus session;
  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  ASSERT_TRUE(
      session.Invoke(thread, "PLA_Generation", {"c.logic"}, {"c.pla"}).ok());
  auto id = session.database().LatestVisible("c.pla");
  ASSERT_TRUE(id.ok());
  std::string text = session.metadata().RenderDerivation(*id);
  EXPECT_NE(text.find("c.pla@1 [layout] <- panda"), std::string::npos);
  EXPECT_NE(text.find("<- espresso"), std::string::npos);
  EXPECT_NE(text.find("<- bdsyn"), std::string::npos);
  EXPECT_NE(text.find("<- edit"), std::string::npos);
}

// --- Systematic failure injection across the Mosaico pipeline ----------------

/// Parameterized over the tool to sabotage: each instance replaces one
/// Mosaico tool with an always-failing stub and verifies the task aborts
/// cleanly with no visible side effects.
class FailureInjectionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FailureInjectionTest, CleanAbortWhenToolFails) {
  const char* victim = GetParam();
  Papyrus session;
  // Replace the victim tool with one that always fails.
  cadtools::ToolDescriptor desc;
  desc.name = victim;
  desc.description = "sabotaged";
  desc.man_page = "x";
  session.tools().Register(std::make_unique<cadtools::Tool>(
      desc, [](const cadtools::ToolRunContext&) {
        return cadtools::ToolRunResult::Fail(9, "injected failure");
      }));

  (void)session.CheckInObject("/chip", Layout{.num_cells = 30,
                                              .area = 20000.0,
                                              .style = "macro",
                                              .seed = 1});
  int thread = session.CreateThread("T");
  activity::ActivityInvocation inv;
  inv.template_name = "Mosaico";
  inv.input_refs = {"/chip"};
  inv.output_names = {"out", "out.stats"};
  inv.max_restarts = 2;
  auto point = session.activity().InvokeTask(thread, inv);
  ASSERT_FALSE(point.ok()) << "sabotaged " << victim;
  // Clean abort: only the input remains visible; no history record.
  int visible = 0;
  session.database().ForEach([&](const oct::ObjectRecord& rec) {
    if (rec.visible) ++visible;
  });
  EXPECT_EQ(visible, 1) << victim;
  auto t = session.activity().GetThread(thread);
  EXPECT_EQ((*t)->size(), 0) << victim;
}

INSTANTIATE_TEST_SUITE_P(
    MosaicoTools, FailureInjectionTest,
    ::testing::Values("atlas", "mosaicoGR", "PGcurrent", "mosaicoDR",
                      "octflatten", "mizer", "padplace", "vulcan",
                      "mosaicoRC", "chipstats"));

}  // namespace
}  // namespace papyrus
