// Property-style parameterized sweeps over the system's core invariants,
// driven by deterministic seeds.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "base/strings.h"
#include "core/papyrus.h"
#include "tcl/interp.h"
#include "tcl/parser.h"

namespace papyrus {
namespace {

/// Small deterministic PRNG so properties are reproducible per seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435769u + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 17;
  }
  int Below(int n) { return static_cast<int>(Next() % n); }

 private:
  uint64_t state_;
};

// --- Tcl list round-trip -------------------------------------------------

class ListRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ListRoundTripProperty, FormatParseIsIdentity) {
  Rng rng(GetParam());
  const std::string alphabet = "ab {}$[]\\\";%\t~z";
  std::vector<std::string> elements;
  int n = rng.Below(12);
  for (int i = 0; i < n; ++i) {
    std::string e;
    int len = rng.Below(10);
    for (int k = 0; k < len; ++k) {
      e.push_back(alphabet[rng.Below(alphabet.size())]);
    }
    elements.push_back(e);
  }
  auto parsed = tcl::ParseList(tcl::FormatList(elements));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, elements);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListRoundTripProperty,
                         ::testing::Range(0, 24));

// --- percent-encoding round-trip ------------------------------------------

class EncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(EncodingProperty, DecodeEncodeIsIdentity) {
  Rng rng(GetParam());
  std::string s;
  int len = rng.Below(64);
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.Below(256)));
  }
  EXPECT_EQ(PercentDecode(PercentEncode(s)), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingProperty, ::testing::Range(0, 16));

// --- Tcl expression evaluator vs a reference ------------------------------

class ExprProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprProperty, MatchesReferenceEvaluator) {
  Rng rng(GetParam());
  // Random left-leaning integer expression a OP b OP c ... with C
  // semantics, avoiding division by zero.
  int64_t acc = rng.Below(100);
  std::string text = std::to_string(acc);
  for (int i = 0; i < 6; ++i) {
    int op = rng.Below(4);
    int64_t v = rng.Below(9) + 1;
    switch (op) {
      case 0:
        acc += v;
        text += " + ";
        break;
      case 1:
        acc -= v;
        text += " - ";
        break;
      case 2:
        acc *= v;
        text += " * ";
        break;
      default:
        acc /= v;
        text += " / ";
        break;
    }
    text += std::to_string(v);
  }
  // NOTE: the reference applies operators left-to-right; regenerate the
  // expected value honoring * / precedence with a mini parser instead.
  // Simpler: wrap every partial result in parentheses.
  // Rebuild as fully parenthesized so both sides agree:
  Rng rng2(GetParam());
  acc = rng2.Below(100);
  text = std::to_string(acc);
  for (int i = 0; i < 6; ++i) {
    int op = rng2.Below(4);
    int64_t v = rng2.Below(9) + 1;
    const char* sym = op == 0 ? "+" : op == 1 ? "-" : op == 2 ? "*" : "/";
    switch (op) {
      case 0:
        acc += v;
        break;
      case 1:
        acc -= v;
        break;
      case 2:
        acc *= v;
        break;
      default:
        acc /= v;
        break;
    }
    text = "(" + text + " " + sym + " " + std::to_string(v) + ")";
  }
  tcl::Interp in;
  auto r = in.Eval("expr {" + text + "}");
  ASSERT_TRUE(r.ok()) << text;
  EXPECT_EQ(*r, std::to_string(acc)) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty, ::testing::Range(0, 24));

// --- Design-thread structural invariants -----------------------------------

class ThreadInvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThreadInvariantProperty, RandomOperationSequencePreservesInvariants) {
  Rng rng(GetParam());
  ManualClock clock(0);
  activity::DesignThread thread(1, "t", &clock);
  thread.set_cache_interval(1 + rng.Below(6));
  int object_counter = 0;
  for (int op = 0; op < 60; ++op) {
    clock.AdvanceSeconds(1);
    int kind = rng.Below(10);
    if (kind < 6 || thread.size() == 0) {
      // Append a record consuming a random in-scope object.
      task::TaskHistoryRecord rec;
      rec.task_name = "t" + std::to_string(op);
      auto scope = thread.DataScope();
      ASSERT_TRUE(scope.ok());
      if (!scope->empty()) {
        auto it = scope->begin();
        std::advance(it, rng.Below(scope->size()));
        rec.inputs.push_back(*it);
      }
      rec.outputs.push_back({"o" + std::to_string(object_counter++), 1});
      ASSERT_TRUE(
          thread.Append(std::move(rec), thread.current_cursor()).ok());
    } else if (kind < 9) {
      // Rework to a random existing point.
      std::vector<activity::NodeId> ids = {activity::kInitialPoint};
      for (const auto& [id, node] : thread.nodes()) ids.push_back(id);
      ASSERT_TRUE(thread.MoveCursor(ids[rng.Below(ids.size())]).ok());
    } else {
      // Rework with erase.
      std::vector<activity::NodeId> ids = {activity::kInitialPoint};
      for (const auto& [id, node] : thread.nodes()) ids.push_back(id);
      std::vector<oct::ObjectId> gone;
      ASSERT_TRUE(
          thread.MoveCursorAndErase(ids[rng.Below(ids.size())], &gone)
              .ok());
    }

    // Invariant 1: the cursor always points at an existing node.
    ASSERT_TRUE(thread.HasNode(thread.current_cursor()));
    // Invariant 2: parent/child links are symmetric and alive.
    for (const auto& [id, node] : thread.nodes()) {
      for (activity::NodeId p : node.parents) {
        auto parent = thread.GetNode(p);
        ASSERT_TRUE(parent.ok());
        bool linked = false;
        for (activity::NodeId c : (*parent)->children) {
          if (c == id) linked = true;
        }
        ASSERT_TRUE(linked);
      }
      for (activity::NodeId c : node.children) {
        ASSERT_TRUE(thread.GetNode(c).ok());
      }
    }
    // Invariant 3: the data scope is a subset of the workspace.
    auto scope = thread.DataScope();
    auto ws = thread.Workspace();
    ASSERT_TRUE(scope.ok());
    ASSERT_TRUE(ws.ok());
    for (const oct::ObjectId& id : *scope) {
      ASSERT_EQ(ws->count(id), 1u) << id.ToString();
    }
    // Invariant 4: cached and uncached scopes agree.
    activity::DesignThread* t = &thread;
    int saved = t->cache_interval();
    // (Uncached comparison via a fresh traversal: temporarily disable the
    // cache-install path; existing caches still hold — invalidate by
    // checking against a recompute from an uncached twin is done in the
    // dedicated cache tests. Here: frontier states must union to the
    // workspace minus check-ins.)
    t->set_cache_interval(saved);
    std::set<oct::ObjectId> frontier_union;
    for (activity::NodeId f : thread.FrontierCursors()) {
      auto st = thread.ThreadState(f);
      ASSERT_TRUE(st.ok());
      frontier_union.insert(st->begin(), st->end());
    }
    ASSERT_EQ(frontier_union, *ws);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadInvariantProperty,
                         ::testing::Range(0, 12));

// --- Task-manager visibility invariant --------------------------------------

class TaskVisibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(TaskVisibilityProperty, CommitOrAbortLeavesCleanDatabase) {
  uint64_t seed = GetParam();
  Papyrus session;
  std::string in = "/prop/macro" + std::to_string(seed);
  (void)session.CheckInObject(in, oct::Layout{.num_cells = 30,
                                              .area = 21000.0,
                                              .style = "macro",
                                              .seed = seed});
  int t = session.CreateThread("t");
  activity::ActivityInvocation inv;
  inv.template_name = "Mosaico";
  inv.input_refs = {in};
  inv.output_names = {"chip", "chip.stats"};
  inv.max_restarts = 0;  // let both-fail seeds abort
  auto point = session.activity().InvokeTask(t, inv);

  std::set<std::string> visible;
  session.database().ForEach([&](const oct::ObjectRecord& rec) {
    if (rec.visible) visible.insert(rec.id.ToString());
  });
  if (point.ok()) {
    // Committed: exactly the input and the two task outputs are visible
    // (intermediates discarded, §3.3.2).
    EXPECT_EQ(visible.size(), 3u);
    EXPECT_TRUE(visible.count(in + "@1"));
    EXPECT_TRUE(visible.count("chip@1"));
    EXPECT_TRUE(visible.count("chip.stats@1"));
  } else {
    // Aborted: every side effect removed.
    EXPECT_EQ(visible.size(), 1u);
    EXPECT_TRUE(visible.count(in + "@1"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskVisibilityProperty,
                         ::testing::Range(0, 24));

// --- Sprite work conservation -------------------------------------------------

class SpriteConservationProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpriteConservationProperty, CompletedWorkEqualsRequestedWork) {
  Rng rng(GetParam());
  ManualClock clock(0);
  sprite::Network net(&clock, 1 + rng.Below(6));
  int64_t total_work = 0;
  int spawned = 0;
  for (int i = 0; i < 12; ++i) {
    int64_t work = 1000 + rng.Below(50000);
    auto host = rng.Below(net.num_hosts());
    if (net.Spawn(sprite::kNoProcess, "p", work, host, true).ok()) {
      total_work += work;
      ++spawned;
    }
  }
  net.RunUntilQuiescent();
  int64_t done = 0;
  for (const auto& p : net.GetPcbInfo()) {
    EXPECT_EQ(p.state, sprite::ProcessState::kCompleted);
    EXPECT_EQ(p.done_micros, p.work_micros);
    EXPECT_GE(p.finish_micros, p.spawn_micros);
    done += p.done_micros;
  }
  EXPECT_EQ(done, total_work);
  // Makespan bounds: at least the largest job, at most the serial sum
  // (hosts all have speed 1).
  EXPECT_LE(clock.NowMicros(), total_work);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpriteConservationProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace papyrus
