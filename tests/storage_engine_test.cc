#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/papyrus.h"
#include "storage/engine.h"
#include "storage/wal.h"

namespace papyrus::storage {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test (re-runs included).
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("engine_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

// ---------------------------------------------------------------------------
// Write-ahead log

TEST(WalTest, GroupCommitBatchesAppendsIntoOneSync) {
  std::string dir = FreshDir("wal_batch");
  std::string path = (fs::path(dir) / "wal.log").string();
  WriteAheadLog wal;
  auto opened = wal.Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();

  EXPECT_EQ(wal.Append("object one"), 1u);
  EXPECT_EQ(wal.Append("object two"), 2u);
  EXPECT_EQ(wal.Append("state clock 5"), 3u);
  EXPECT_EQ(wal.buffered_records(), 3u);

  auto bytes = wal.Commit();
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0);
  EXPECT_EQ(wal.buffered_records(), 0u);
  EXPECT_EQ(wal.stats().commits, 1);
  EXPECT_EQ(wal.stats().syncs, 1);  // one durability barrier for the batch
  EXPECT_EQ(wal.stats().records_appended, 3);

  // An empty commit is free: no write, no sync.
  auto empty = wal.Commit();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0);
  EXPECT_EQ(wal.stats().syncs, 1);

  auto replay = WriteAheadLog::Scan(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].body, "object one");
  EXPECT_EQ(replay->records[1].body, "object two");
  EXPECT_EQ(replay->records[2].body, "state clock 5");
  EXPECT_EQ(replay->next_seq, 4u);
  EXPECT_FALSE(replay->truncated);
}

TEST(WalTest, UncommittedAppendsAreNotDurable) {
  std::string dir = FreshDir("wal_uncommitted");
  std::string path = (fs::path(dir) / "wal.log").string();
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    wal.Append("committed");
    ASSERT_TRUE(wal.Commit().ok());
    wal.Append("lost in the crash");
    // No commit: the process dies here.
  }
  auto replay = WriteAheadLog::Scan(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].body, "committed");
}

TEST(WalTest, TornTailRecoversLongestValidPrefixAtEveryByteOffset) {
  std::string dir = FreshDir("wal_torn");
  std::string path = (fs::path(dir) / "wal.log").string();
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (int i = 0; i < 5; ++i) {
      wal.Append("record number " + std::to_string(i) + " with payload");
    }
    ASSERT_TRUE(wal.Commit().ok());
  }
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 0u);

  // Line boundaries: offset of the first byte after each '\n'. Records
  // are valid exactly when their terminating newline survived.
  std::vector<size_t> boundaries;  // boundaries[i] = end of line i
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == '\n') boundaries.push_back(i + 1);
  }
  ASSERT_EQ(boundaries.size(), 6u);  // header + 5 records
  const size_t header_end = boundaries[0];

  std::string torn = (fs::path(dir) / "torn.log").string();
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteAll(torn, bytes.substr(0, cut));
    if (cut == 0) {
      // Empty file: a fresh log.
      auto replay = WriteAheadLog::Scan(torn);
      ASSERT_TRUE(replay.ok());
      EXPECT_EQ(replay->records.size(), 0u);
      continue;
    }
    if (cut < header_end) {
      // A torn header is unreachable by crashes (headers land whole via
      // atomic rename; appends never touch them) and is rejected rather
      // than silently treated as empty.
      EXPECT_FALSE(WriteAheadLog::Scan(torn).ok()) << "cut=" << cut;
      continue;
    }
    size_t expected = 0;
    for (size_t i = 1; i < boundaries.size(); ++i) {
      if (boundaries[i] <= cut) ++expected;
    }
    auto replay = WriteAheadLog::Scan(torn);
    ASSERT_TRUE(replay.ok()) << "cut=" << cut;
    ASSERT_EQ(replay->records.size(), expected) << "cut=" << cut;
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(replay->records[i].body,
                "record number " + std::to_string(i) + " with payload");
    }
    const bool at_boundary = boundaries[expected] == cut;
    EXPECT_EQ(replay->truncated, !at_boundary) << "cut=" << cut;
    EXPECT_EQ(replay->dropped_bytes,
              static_cast<int64_t>(cut - boundaries[expected]))
        << "cut=" << cut;

    // Open() truncates the torn tail and the log stays appendable: the
    // next record lands right after the longest valid prefix.
    WriteAheadLog wal;
    auto reopened = wal.Open(torn);
    ASSERT_TRUE(reopened.ok()) << "cut=" << cut;
    wal.Append("post-recovery");
    ASSERT_TRUE(wal.Commit().ok());
    wal.Close();
    auto final = WriteAheadLog::Scan(torn);
    ASSERT_TRUE(final.ok()) << "cut=" << cut;
    ASSERT_EQ(final->records.size(), expected + 1) << "cut=" << cut;
    EXPECT_EQ(final->records.back().body, "post-recovery");
    EXPECT_FALSE(final->truncated);
  }
}

TEST(WalTest, ResetHandsRecordsToTheGenerationAndStaysMonotonic) {
  std::string dir = FreshDir("wal_reset");
  std::string path = (fs::path(dir) / "wal.log").string();
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  wal.Append("a");
  wal.Append("b");
  ASSERT_TRUE(wal.Commit().ok());
  ASSERT_TRUE(wal.Reset(2).ok());  // a snapshot generation owns seq 1..2
  EXPECT_EQ(wal.Append("c"), 3u);  // sequence numbers never reuse
  ASSERT_TRUE(wal.Commit().ok());

  auto replay = WriteAheadLog::Scan(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->base_seq, 2u);
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 3u);
  EXPECT_EQ(replay->records[0].body, "c");
  EXPECT_EQ(wal.stats().resets, 1);
}

// ---------------------------------------------------------------------------
// Session store: delta snapshots behind a manifest swap

TEST(SessionStoreTest, SaveGenerationRewritesOnlyDirtySections) {
  std::string dir = FreshDir("store_delta");
  SessionStore store;
  auto opened = store.Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened->layout, SessionStore::Layout::kEmpty);

  ASSERT_TRUE(store
                  .SaveGeneration({{"a", "alpha v1"}, {"b", "beta v1"}},
                                  {"a", "b"})
                  .ok());
  auto files1 = store.CurrentSectionFiles();

  // Only `a` changed: `b`'s file is carried over untouched.
  ASSERT_TRUE(store.SaveGeneration({{"a", "alpha v2"}}, {"a", "b"}).ok());
  auto files2 = store.CurrentSectionFiles();
  EXPECT_EQ(files2["b"], files1["b"]);
  EXPECT_NE(files2["a"], files1["a"]);
  auto a = store.ReadSection("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, "alpha v2");
  auto b = store.ReadSection("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, "beta v1");
  EXPECT_EQ(store.save_stats().generations, 2);
  EXPECT_EQ(store.save_stats().sections_written, 3);
  EXPECT_EQ(store.save_stats().sections_reused, 1);

  // A section absent from `live` is dropped from the manifest, and
  // pruning leaves exactly the referenced files behind.
  ASSERT_TRUE(store.SaveGeneration({}, {"a"}).ok());
  EXPECT_EQ(store.CurrentSectionFiles().count("b"), 0u);
  EXPECT_TRUE(store.ReadSection("b").status().IsNotFound());
  std::set<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    names.insert(entry.path().filename().string());
  }
  EXPECT_EQ(names, (std::set<std::string>{"CURRENT", "wal.log",
                                          "manifest.3", "a.g2"}));
}

TEST(SessionStoreTest, ReopenReplaysOnlyWalRecordsAboveTheManifestBase) {
  std::string dir = FreshDir("store_reopen");
  {
    SessionStore store;
    ASSERT_TRUE(store.Open(dir).ok());
    store.AppendWal("compacted one");
    store.AppendWal("compacted two");
    ASSERT_TRUE(store.CommitWal().ok());
    ASSERT_TRUE(store.SaveGeneration({{"s", "section text"}}, {"s"}).ok());
    store.AppendWal("tail record");
    ASSERT_TRUE(store.CommitWal().ok());
    store.AppendWal("never committed");  // dies with the process
  }
  SessionStore store;
  auto opened = store.Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_EQ(opened->layout, SessionStore::Layout::kEngine);
  EXPECT_EQ(opened->generation, 1u);
  ASSERT_EQ(opened->sections.size(), 1u);
  EXPECT_EQ(opened->sections.at("s"), "section text");
  // Records the generation already owns are filtered out; only the tail
  // that postdates the manifest replays.
  ASSERT_EQ(opened->wal.size(), 1u);
  EXPECT_EQ(opened->wal[0].body, "tail record");
}

TEST(SessionStoreTest, CrashMatrixLeavesAConsistentStoreAtEveryPoint) {
  const SessionStore::CrashPoint points[] = {
      SessionStore::CrashPoint::kAfterWalCommit,
      SessionStore::CrashPoint::kAfterShardWrite,
      SessionStore::CrashPoint::kBeforeManifestSwap,
      SessionStore::CrashPoint::kAfterManifestSwap,
      SessionStore::CrashPoint::kAfterWalReset,
  };
  for (SessionStore::CrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    std::string dir =
        FreshDir("store_crash_" + std::to_string(static_cast<int>(point)));
    {
      SessionStore store;
      ASSERT_TRUE(store.Open(dir).ok());
      ASSERT_TRUE(
          store.SaveGeneration({{"a", "a1"}, {"b", "b1"}}, {"a", "b"})
              .ok());
      store.AppendWal("delta one");
      store.AppendWal("delta two");
      if (point == SessionStore::CrashPoint::kAfterWalCommit) {
        // This point lives on the commit path: the crash lands after the
        // sync, so the deltas are durable but unacknowledged.
        store.set_crash_hook(
            [point](SessionStore::CrashPoint at) { return at != point; });
        Status st = store.CommitWal().status();
        EXPECT_TRUE(st.IsAborted()) << st.ToString();
      } else {
        ASSERT_TRUE(store.CommitWal().ok());
        // Crash at `point` during the next compaction.
        store.set_crash_hook(
            [point](SessionStore::CrashPoint at) { return at != point; });
        Status st = store.SaveGeneration({{"a", "a2"}}, {"a", "b"});
        EXPECT_TRUE(st.IsAborted()) << st.ToString();
      }
      // The dead incarnation writes nothing further.
    }

    SessionStore store;
    auto opened = store.Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    EXPECT_EQ(opened->layout, SessionStore::Layout::kEngine);
    EXPECT_FALSE(opened->wal_truncated);
    const bool swapped =
        point == SessionStore::CrashPoint::kAfterManifestSwap ||
        point == SessionStore::CrashPoint::kAfterWalReset;
    if (swapped) {
      // The swap landed: generation 2 is authoritative and the WAL tail
      // it absorbed no longer replays (its records are <= the base).
      EXPECT_EQ(opened->generation, 2u);
      EXPECT_EQ(opened->sections.at("a"), "a2");
      EXPECT_EQ(opened->sections.at("b"), "b1");
      EXPECT_EQ(opened->wal.size(), 0u);
    } else {
      // The swap never landed: generation 1 plus the committed WAL tail
      // is authoritative; half-written generation-2 files are garbage.
      EXPECT_EQ(opened->generation, 1u);
      EXPECT_EQ(opened->sections.at("a"), "a1");
      EXPECT_EQ(opened->sections.at("b"), "b1");
      ASSERT_EQ(opened->wal.size(), 2u);
      EXPECT_EQ(opened->wal[0].body, "delta one");
      EXPECT_EQ(opened->wal[1].body, "delta two");
    }
    // Either way the store keeps working: the next compaction succeeds
    // and prunes whatever the crash left behind.
    ASSERT_TRUE(store.SaveGeneration({{"a", "a3"}}, {"a", "b"}).ok());
    auto a = store.ReadSection("a");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, "a3");
    auto b = store.ReadSection("b");
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, "b1");
  }
}

// ---------------------------------------------------------------------------
// Full-session crash matrix: byte-identical recovery through Papyrus

/// Compacts and returns every live section's bytes, keyed by name.
/// Section *texts* are the recovery invariant; generation numbers and
/// file names legitimately differ between crashy and crash-free runs.
std::map<std::string, std::string> SectionFingerprint(Papyrus& session) {
  std::map<std::string, std::string> fp;
  EXPECT_TRUE(session.SaveGeneration().ok());
  for (const auto& [name, file] : session.store()->CurrentSectionFiles()) {
    auto text = session.store()->ReadSection(name);
    EXPECT_TRUE(text.ok()) << name << ": " << text.status().message();
    fp[name] = text.ok() ? *text : "<unreadable>";
  }
  return fp;
}

/// The deterministic workload both runs execute: two committed phases
/// with a compaction between them, so the crash lands on a store that
/// has both a manifest and a WAL tail.
void RunWorkloadPhase1(Papyrus& session) {
  int thread = session.CreateThread("Shifter");
  ASSERT_TRUE(session
                  .Invoke(thread, "Create_Logic_Description", {},
                          {"shifter.logic"})
                  .ok());
  ASSERT_TRUE(session.CommitWal().ok());
}

void RunWorkloadPhase2(Papyrus& session) {
  ASSERT_TRUE(session
                  .Invoke(1, "Standard_Cell_Place_and_Route",
                          {"shifter.logic"}, {"shifter.layout"})
                  .ok());
  ASSERT_TRUE(
      session.CheckInObject("/proj/notes", oct::TextData{"run 100"}).ok());
  ASSERT_TRUE(session.CommitWal().ok());
}

TEST(StorageEngineSessionTest, CrashMatrixRecoversByteIdenticalSessions) {
  // Crash-free reference.
  std::map<std::string, std::string> reference;
  {
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(FreshDir("session_reference")).ok());
    RunWorkloadPhase1(session);
    ASSERT_TRUE(session.SaveGeneration().ok());
    RunWorkloadPhase2(session);
    reference = SectionFingerprint(session);
  }
  ASSERT_GT(reference.size(), 0u);
  ASSERT_EQ(reference.count("thread/1"), 1u);

  const SessionStore::CrashPoint points[] = {
      SessionStore::CrashPoint::kAfterWalCommit,
      SessionStore::CrashPoint::kAfterShardWrite,
      SessionStore::CrashPoint::kBeforeManifestSwap,
      SessionStore::CrashPoint::kAfterManifestSwap,
      SessionStore::CrashPoint::kAfterWalReset,
  };
  for (SessionStore::CrashPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    std::string dir = FreshDir("session_crash_" +
                               std::to_string(static_cast<int>(point)));
    {
      Papyrus session;
      ASSERT_TRUE(session.OpenStorage(dir).ok());
      RunWorkloadPhase1(session);
      ASSERT_TRUE(session.SaveGeneration().ok());
      RunWorkloadPhase2(session);
      session.store()->set_crash_hook(
          [point](SessionStore::CrashPoint at) { return at != point; });
      EXPECT_TRUE(session.SaveGeneration().IsAborted());
    }
    // The next incarnation recovers from manifest + WAL tail and must be
    // byte-identical to the crash-free run, section for section.
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(dir).ok());
    std::map<std::string, std::string> recovered =
        SectionFingerprint(session);
    ASSERT_EQ(recovered.size(), reference.size());
    for (const auto& [name, bytes] : reference) {
      ASSERT_EQ(recovered.count(name), 1u) << "missing section " << name;
      EXPECT_EQ(recovered[name], bytes) << "section " << name
                                        << " diverged";
    }
  }
}

}  // namespace
}  // namespace papyrus::storage
