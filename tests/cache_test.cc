#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "activity/persistence.h"
#include "base/clock.h"
#include "cache/derivation_cache.h"
#include "cadtools/registry.h"
#include "cadtools/tool.h"
#include "core/papyrus.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::cache {
namespace {

using oct::BehavioralSpec;
using oct::ObjectId;
using oct::TextData;

// ---------------------------------------------------------------------------
// Key derivation units
// ---------------------------------------------------------------------------

TEST(CacheKeyTest, CanonicalizeReplacesActualNamesWithPlaceholders) {
  std::string canon = DerivationCache::CanonicalizeOptions(
      "-f -o out.p3 -r grid in.p3 extra", {"in.p3"}, {"out.p3"});
  EXPECT_EQ(canon, "-f -o $o0 -r grid $i0 extra");
  // Words that only *contain* a name are left alone; matching is per word.
  EXPECT_EQ(DerivationCache::CanonicalizeOptions("x=in.p3", {"in.p3"}, {}),
            "x=in.p3");
}

TEST(CacheKeyTest, KeyDependsOnEveryComponent) {
  std::vector<ObjectId> inputs = {{"a", 1}, {"b", 2}};
  std::string base = DerivationCache::MakeKey("misII", "1", "-f $i0", 7,
                                              inputs);
  EXPECT_NE(base, DerivationCache::MakeKey("wolfe", "1", "-f $i0", 7,
                                           inputs));
  EXPECT_NE(base, DerivationCache::MakeKey("misII", "2", "-f $i0", 7,
                                           inputs));
  EXPECT_NE(base, DerivationCache::MakeKey("misII", "1", "-g $i0", 7,
                                           inputs));
  EXPECT_NE(base, DerivationCache::MakeKey("misII", "1", "-f $i0", 8,
                                           inputs));
  EXPECT_NE(base, DerivationCache::MakeKey("misII", "1", "-f $i0", 7,
                                           {{"a", 1}, {"b", 3}}));
  EXPECT_NE(base, DerivationCache::MakeKey("misII", "1", "-f $i0", 7,
                                           {{"b", 2}, {"a", 1}}));
  EXPECT_EQ(base, DerivationCache::MakeKey("misII", "1", "-f $i0", 7,
                                           inputs));
}

// ---------------------------------------------------------------------------
// Database pin semantics
// ---------------------------------------------------------------------------

TEST(PinTest, PinnedVersionRefusesReclaimUntilUnpinned) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto id = db.CreateVersion("x", TextData{"payload"});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db.Pin(*id).ok());
  EXPECT_TRUE(db.IsPinned(*id));
  // No handler registered: the pin vetoes reclamation outright.
  EXPECT_TRUE(db.Reclaim(*id).IsFailedPrecondition());
  db.Unpin(*id);
  EXPECT_FALSE(db.IsPinned(*id));
  EXPECT_TRUE(db.Reclaim(*id).ok());
  // Pinning a reclaimed tombstone is refused; Unpin stays a no-op.
  EXPECT_FALSE(db.Pin(*id).ok());
  db.Unpin(*id);
  db.Unpin({"never", 9});
}

// ---------------------------------------------------------------------------
// End-to-end flow reruns (Structure_Synthesis: 6 steps, one subtask; the
// Simulate step consumes the command file and produces nothing)
// ---------------------------------------------------------------------------

struct FlowRun {
  int64_t executed = 0;
  int64_t elided = 0;
  bool committed = false;
  std::vector<ObjectId> outputs;
};

FlowRun RunFlow(Papyrus& session, const ObjectId& spec, const ObjectId& cmds,
                bool disable_step_cache = false,
                task::TaskObserver* observer = nullptr) {
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {spec, cmds};
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;
  inv.disable_step_cache = disable_step_cache;
  FlowRun r;
  int64_t e0 = session.task_manager().steps_executed();
  int64_t l0 = session.task_manager().steps_elided();
  auto rec = session.task_manager().Invoke(inv, observer);
  r.executed = session.task_manager().steps_executed() - e0;
  r.elided = session.task_manager().steps_elided() - l0;
  r.committed = rec.ok();
  if (rec.ok()) r.outputs = rec->outputs;
  return r;
}

TEST(DerivationCacheTest, UnchangedRerunIsFullyElided) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});

  FlowRun cold = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(cold.committed);
  EXPECT_EQ(cold.executed, 6);
  EXPECT_EQ(cold.elided, 0);
  EXPECT_GE(session.step_cache().stats().recorded, 6);

  int64_t t0 = session.clock().NowMicros();
  FlowRun warm = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.elided, 6);
  // Cache hits complete instantly in virtual time.
  EXPECT_EQ(session.clock().NowMicros(), t0);
  // The rerun binds the recorded versions, not new ones.
  EXPECT_EQ(warm.outputs, cold.outputs);
  EXPECT_EQ(session.step_cache().stats().hits, 6);
  EXPECT_GT(session.step_cache().stats().micros_saved, 0);
}

TEST(DerivationCacheTest, ObserverSeesCacheHits) {
  struct CountingObserver : task::TaskObserver {
    int cache_hits = 0;
    int completed_with_flag = 0;
    void OnCacheHit(const std::string&, int64_t micros_saved) override {
      ++cache_hits;
      EXPECT_GE(micros_saved, 0);
    }
    void OnStepCompleted(const task::StepRecord& rec) override {
      if (rec.cache_hit) {
        ++completed_with_flag;
        EXPECT_EQ(rec.exit_status, 0);
      }
    }
  };
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);
  CountingObserver obs;
  FlowRun warm = RunFlow(session, *spec, *cmds, false, &obs);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(obs.cache_hits, 6);
  EXPECT_EQ(obs.completed_with_flag, 6);
}

TEST(DerivationCacheTest, ChangedInputRerunsOnlyTheDownstreamCone) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);

  // Only the Simulate step consumes the command file: the synthesis
  // backbone (5 of 6 steps) is served from history.
  auto cmds2 = session.database().CreateVersion("sim.cmd",
                                                TextData{"run 200"});
  FlowRun warm = RunFlow(session, *spec, *cmds2);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 1);
  EXPECT_EQ(warm.elided, 5);

  // A changed spec cascades through every derived intermediate.
  auto spec2 = session.database().CreateVersion("spec",
                                                BehavioralSpec{8, 8, 12, 78});
  FlowRun cold2 = RunFlow(session, *spec2, *cmds2);
  ASSERT_TRUE(cold2.committed);
  EXPECT_EQ(cold2.executed, 6);
  EXPECT_EQ(cold2.elided, 0);
}

TEST(DerivationCacheTest, ReclaimedVersionInvalidatesItsEntries) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  FlowRun cold = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(cold.committed);

  // The layout output is pinned by the cache; direct reclamation still
  // succeeds because the database hands the pinned version back to the
  // cache, which drops the dependent entries and releases the pins.
  ObjectId layout{"spec.layout", 1};
  ASSERT_TRUE(session.database().IsPinned(layout));
  ASSERT_TRUE(session.database().Reclaim(layout).ok());
  EXPECT_GT(session.step_cache().stats().invalidated, 0);

  // Producer (Place_and_Route) and consumer (Chip_Statistics_Collection)
  // entries are gone; the other four steps still hit.
  FlowRun warm = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 2);
  EXPECT_EQ(warm.elided, 4);
  // The re-executed step created a fresh version past the tombstone.
  auto latest = session.database().LatestVisible("spec.layout");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 2);
}

TEST(DerivationCacheTest, DeletedOutputIsNotServedFromHistory) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);

  // Deleting (hiding) a task-level output is a rework signal: the step
  // that produced it must re-execute rather than silently resurrect it.
  ObjectId layout{"spec.layout", 1};
  ASSERT_TRUE(session.database().MarkInvisible(layout).ok());
  FlowRun warm = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 2);  // producer + its downstream consumer
  EXPECT_EQ(warm.elided, 4);
  // The deleted version stays deleted; the rerun made a new one.
  auto rec = session.database().Peek(layout);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE((*rec)->visible);
  auto latest = session.database().LatestVisible("spec.layout");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 2);
}

TEST(DerivationCacheTest, DisabledInvocationExecutesButStillPopulates) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);

  // Escape hatch: the invocation opts out of reuse but its committed
  // results still refresh the cache.
  FlowRun forced = RunFlow(session, *spec, *cmds,
                           /*disable_step_cache=*/true);
  ASSERT_TRUE(forced.committed);
  EXPECT_EQ(forced.executed, 6);
  EXPECT_EQ(forced.elided, 0);

  FlowRun warm = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.elided, 6);
}

TEST(DerivationCacheTest, GloballyDisabledCacheMissesWithoutCounting) {
  Papyrus session;
  auto spec = session.database().CreateVersion("spec",
                                               BehavioralSpec{8, 8, 12, 77});
  auto cmds = session.database().CreateVersion("sim.cmd",
                                               TextData{"run 100"});
  ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);
  session.step_cache().set_enabled(false);
  int64_t misses0 = session.step_cache().stats().misses;
  FlowRun off = RunFlow(session, *spec, *cmds);
  ASSERT_TRUE(off.committed);
  EXPECT_EQ(off.executed, 6);
  EXPECT_EQ(session.step_cache().stats().misses, misses0);
  session.step_cache().set_enabled(true);
  FlowRun warm = RunFlow(session, *spec, *cmds);
  EXPECT_EQ(warm.elided, 6);
}

// ---------------------------------------------------------------------------
// Custom-tool scenarios (tool versioning, same-key steps, aborted tasks)
// ---------------------------------------------------------------------------

/// A deterministic single-output tool whose release version is
/// configurable: the cache key must distinguish releases.
std::unique_ptr<cadtools::Tool> MakeCopyTool(const std::string& version) {
  cadtools::ToolDescriptor d;
  d.name = "copytool";
  d.description = "deterministic copier (test)";
  d.version = version;
  d.base_cost_micros = 5000;
  d.num_outputs = 1;
  return std::make_unique<cadtools::Tool>(
      d, [version](const cadtools::ToolRunContext& ctx) {
        cadtools::ToolRunResult r;
        r.outputs.push_back(
            TextData{"copy-v" + version + "-" + std::to_string(ctx.seed)});
        return r;
      });
}

std::unique_ptr<cadtools::Tool> MakeFailTool() {
  cadtools::ToolDescriptor d;
  d.name = "failtool";
  d.description = "always fails permanently (test)";
  d.base_cost_micros = 1000;
  return std::make_unique<cadtools::Tool>(
      d, [](const cadtools::ToolRunContext&) {
        return cadtools::ToolRunResult::Fail(3, "boom");
      });
}

struct Rig {
  ManualClock clock{0};
  oct::OctDatabase db{&clock};
  sprite::Network network{&clock, 4};
  cadtools::ToolRegistry registry;
  tdl::TemplateLibrary library;
  task::TaskManager manager{&db, &registry, &network, &library};
  DerivationCache cache{&db};

  Rig() { manager.set_derivation_cache(&cache); }

  FlowRun Invoke(const std::string& tmpl, const ObjectId& input,
                 const std::vector<std::string>& outputs) {
    task::TaskInvocation inv;
    inv.template_name = tmpl;
    inv.inputs = {input};
    inv.output_names = outputs;
    inv.seed = 7;
    FlowRun r;
    int64_t e0 = manager.steps_executed();
    int64_t l0 = manager.steps_elided();
    auto rec = manager.Invoke(inv);
    r.executed = manager.steps_executed() - e0;
    r.elided = manager.steps_elided() - l0;
    r.committed = rec.ok();
    if (rec.ok()) r.outputs = rec->outputs;
    return r;
  }
};

TEST(DerivationCacheTest, BumpedToolVersionInvalidatesMatches) {
  Rig rig;
  rig.registry.Register(MakeCopyTool("1"));
  ASSERT_TRUE(rig.library
                  .Add("task Copy {In} {Out}\n"
                       "step S {In} {Out} {copytool -o Out In}\n")
                  .ok());
  auto in = rig.db.CreateVersion("src", TextData{"hello"});
  ASSERT_TRUE(in.ok());

  EXPECT_EQ(rig.Invoke("Copy", *in, {"dst"}).executed, 1);
  EXPECT_EQ(rig.Invoke("Copy", *in, {"dst"}).elided, 1);

  // A new tool release must not be served the old release's outputs.
  rig.registry.Register(MakeCopyTool("2"));
  FlowRun bumped = rig.Invoke("Copy", *in, {"dst"});
  ASSERT_TRUE(bumped.committed);
  EXPECT_EQ(bumped.executed, 1);
  EXPECT_EQ(bumped.elided, 0);
  // And the new release's run is itself memoized.
  EXPECT_EQ(rig.Invoke("Copy", *in, {"dst"}).elided, 1);
}

TEST(DerivationCacheTest, IdenticalStepsInOneTaskDoNotSelfHit) {
  Rig rig;
  rig.registry.Register(MakeCopyTool("1"));
  // Two steps with the same tool, options and input: population happens
  // only at commit, so the second cannot be served by the first mid-task.
  ASSERT_TRUE(rig.library
                  .Add("task Twice {In} {}\n"
                       "step A {In} {a.out} {copytool -o a.out In}\n"
                       "step B {In} {b.out} {copytool -o b.out In}\n")
                  .ok());
  auto in = rig.db.CreateVersion("src", TextData{"hello"});
  ASSERT_TRUE(in.ok());

  FlowRun cold = rig.Invoke("Twice", *in, {});
  ASSERT_TRUE(cold.committed);
  EXPECT_EQ(cold.executed, 2);
  EXPECT_EQ(cold.elided, 0);
  EXPECT_EQ(rig.cache.stats().hits, 0);

  FlowRun warm = rig.Invoke("Twice", *in, {});
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.elided, 2);
}

TEST(DerivationCacheTest, AbortedTaskRecordsNothing) {
  Rig rig;
  rig.registry.Register(MakeCopyTool("1"));
  rig.registry.Register(MakeFailTool());
  ASSERT_TRUE(rig.library
                  .Add("task Doomed {In} {}\n"
                       "step Good {In} {g.out} {copytool -o g.out In}\n"
                       "step Bad {g.out} {} {failtool g.out}\n")
                  .ok());
  auto in = rig.db.CreateVersion("src", TextData{"hello"});
  ASSERT_TRUE(in.ok());

  FlowRun doomed = rig.Invoke("Doomed", *in, {});
  EXPECT_FALSE(doomed.committed);
  // The successful first step is NOT cached: only committed tasks
  // populate, so a rerun re-executes it.
  EXPECT_EQ(rig.cache.stats().recorded, 0);
  EXPECT_EQ(rig.cache.size(), 0u);
  FlowRun again = rig.Invoke("Doomed", *in, {});
  EXPECT_FALSE(again.committed);
  EXPECT_EQ(again.elided, 0);
  EXPECT_GE(again.executed, 1);
}

// ---------------------------------------------------------------------------
// ADG reuse edges and metadata
// ---------------------------------------------------------------------------

TEST(DerivationCacheTest, RerunAddsAdgReuseEdgesNotDuplicateProducers) {
  Papyrus session;
  int tid = session.CreateThread("T");
  ASSERT_TRUE(session
                  .CheckInObject("/lib/spec", BehavioralSpec{8, 8, 12, 77})
                  .ok());
  ASSERT_TRUE(
      session.CheckInObject("/lib/sim.cmd", TextData{"run 100"}).ok());

  ASSERT_TRUE(session
                  .Invoke(tid, "Structure_Synthesis",
                          {"/lib/spec", "/lib/sim.cmd"},
                          {"cell.layout", "cell.stats"})
                  .ok());
  const meta::Adg& adg = session.metadata().adg();
  size_t edges_cold = adg.edge_count();
  ASSERT_EQ(adg.reuse_count(), 0u);

  ASSERT_TRUE(session
                  .Invoke(tid, "Structure_Synthesis",
                          {"/lib/spec", "/lib/sim.cmd"},
                          {"cell.layout", "cell.stats"})
                  .ok());
  // Every elided step shows up as a reuse edge; the real derivations are
  // not re-recorded, so the producer index is unchanged.
  EXPECT_EQ(adg.reuse_count(), 6u);
  EXPECT_EQ(adg.edge_count(), edges_cold + 6);

  auto layout = session.database().LatestVisible("cell.layout");
  ASSERT_TRUE(layout.ok());
  auto producer = adg.Producer(*layout);
  ASSERT_TRUE(producer.ok());
  EXPECT_FALSE((*producer)->reuse);
  auto reuses = adg.Reuses(*layout);
  ASSERT_EQ(reuses.size(), 1u);
  EXPECT_TRUE(reuses[0]->reuse);
  EXPECT_EQ(reuses[0]->tool, (*producer)->tool);
}

TEST(DerivationCacheTest, ReworkEraseInvalidatesThroughTheCursor) {
  Papyrus session;
  int tid = session.CreateThread("T");
  auto p1 = session.Invoke(tid, "Create_Logic_Description", {},
                           {"cell.logic"});
  ASSERT_TRUE(p1.ok());
  auto p2 = session.Invoke(tid, "Standard_Cell_Place_and_Route",
                           {"cell.logic"}, {"cell.layout"});
  ASSERT_TRUE(p2.ok());

  // Erasing back to p1 deletes the place-and-route record; its memoized
  // derivation must not survive the rework.
  int64_t invalidated0 = session.step_cache().stats().invalidated;
  ASSERT_TRUE(session.MoveCursor(tid, *p1, /*erase=*/true).ok());
  EXPECT_GT(session.step_cache().stats().invalidated, invalidated0);

  int64_t e0 = session.task_manager().steps_executed();
  ASSERT_TRUE(session
                  .Invoke(tid, "Standard_Cell_Place_and_Route",
                          {"cell.logic"}, {"cell.layout"})
                  .ok());
  EXPECT_GT(session.task_manager().steps_executed(), e0);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

TEST(DerivationCachePersistenceTest, SaveLoadRoundTripServesHits) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "papyrus_cache_roundtrip";
  fs::remove_all(dir);

  ObjectId spec_id, cmds_id;
  size_t saved_entries = 0;
  {
    Papyrus session;
    auto spec = session.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds = session.database().CreateVersion("sim.cmd",
                                                 TextData{"run 100"});
    ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);
    spec_id = *spec;
    cmds_id = *cmds;
    saved_entries = session.step_cache().size();
    ASSERT_GT(saved_entries, 0u);
    ASSERT_TRUE(session.SaveSession(dir.string()).ok());
  }

  Papyrus fresh;
  ASSERT_TRUE(fresh.LoadSession(dir.string()).ok());
  EXPECT_EQ(fresh.step_cache().size(), saved_entries);
  // The restored cache serves the flow entirely from the snapshot.
  FlowRun warm = RunFlow(fresh, spec_id, cmds_id);
  ASSERT_TRUE(warm.committed);
  EXPECT_EQ(warm.executed, 0);
  EXPECT_EQ(warm.elided, 6);
  fs::remove_all(dir);
}

TEST(DerivationCachePersistenceTest, RestoreSkipsEntriesWithLostVersions) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto in = db.CreateVersion("in", TextData{"x"});
  auto keep = db.CreateVersion("keep", TextData{"y"});
  auto lost = db.CreateVersion("lost", TextData{"z"});
  ASSERT_TRUE(in.ok() && keep.ok() && lost.ok());

  std::string snapshot;
  {
    DerivationCache cache(&db);
    CacheEntry a;
    a.tool = "t";
    a.tool_version = "1";
    a.canonical_options = "-o $o0 $i0";
    a.seed_salt = 5;
    a.inputs = {*in};
    a.outputs = {{*keep, true}};
    ASSERT_TRUE(cache.Record(
        DerivationCache::MakeKey(a.tool, a.tool_version,
                                 a.canonical_options, a.seed_salt,
                                 a.inputs),
        a));
    CacheEntry b = a;
    b.seed_salt = 6;
    b.outputs = {{*lost, true}};
    ASSERT_TRUE(cache.Record(
        DerivationCache::MakeKey(b.tool, b.tool_version,
                                 b.canonical_options, b.seed_salt,
                                 b.inputs),
        b));
    snapshot = activity::SerializeDerivationCache(cache);
  }
  // One recorded output does not survive into the restored database.
  ASSERT_TRUE(db.Reclaim(*lost).ok());

  DerivationCache restored(&db);
  activity::RestoreStats stats;
  ASSERT_TRUE(
      activity::RestoreDerivationCache(snapshot, &restored, &stats).ok());
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_TRUE(db.IsPinned(*keep));

  DerivationCache empty(&db);
  EXPECT_FALSE(activity::RestoreDerivationCache("garbage", &empty).ok());
}

// ---------------------------------------------------------------------------
// cache.pdc format versioning (v3 added the shared-store content key)
// ---------------------------------------------------------------------------

/// One recorded entry whose only output is `out`, with `content_key`.
std::string SnapshotWithEntry(oct::OctDatabase* db, const oct::ObjectId& in,
                              const oct::ObjectId& out,
                              const std::string& content_key) {
  DerivationCache cache(db);
  CacheEntry e;
  e.tool = "t";
  e.tool_version = "1";
  e.canonical_options = "-o $o0 $i0";
  e.seed_salt = 5;
  e.inputs = {in};
  e.outputs = {{out, true}};
  e.content_key = content_key;
  EXPECT_TRUE(cache.Record(
      DerivationCache::MakeKey(e.tool, e.tool_version, e.canonical_options,
                               e.seed_salt, e.inputs),
      e));
  return activity::SerializeDerivationCache(cache);
}

TEST(DerivationCachePersistenceTest, V3RoundTripPreservesContentKey) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto in = db.CreateVersion("in", TextData{"x"});
  auto out = db.CreateVersion("out", TextData{"y"});
  ASSERT_TRUE(in.ok() && out.ok());

  std::string snapshot = SnapshotWithEntry(&db, *in, *out, "cas-key-77");
  EXPECT_EQ(snapshot.rfind("papyrus-cache 3", 0), 0u);
  EXPECT_NE(snapshot.find("\nckey "), std::string::npos);

  DerivationCache restored(&db);
  ASSERT_TRUE(activity::RestoreDerivationCache(snapshot, &restored).ok());
  EXPECT_EQ(restored.size(), 1u);
  // The content key round-tripped: re-serializing reproduces the bytes.
  EXPECT_EQ(activity::SerializeDerivationCache(restored), snapshot);
}

TEST(DerivationCachePersistenceTest, V2SnapshotRestoresWithoutContentKeys) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto in = db.CreateVersion("in", TextData{"x"});
  auto out = db.CreateVersion("out", TextData{"y"});
  ASSERT_TRUE(in.ok() && out.ok());

  // A pre-PR-8 cache had no content keys; its serialized form is the v3
  // text minus ckey lines, under the old header. (The header line carries
  // no checksum, so the rewrite yields a valid v2 snapshot.)
  std::string v3 = SnapshotWithEntry(&db, *in, *out, /*content_key=*/"");
  EXPECT_EQ(v3.find("\nckey "), std::string::npos);
  std::string v2 = "papyrus-cache 2" + v3.substr(std::string(
                       "papyrus-cache 3").size());

  DerivationCache restored(&db);
  activity::RestoreStats stats;
  ASSERT_TRUE(
      activity::RestoreDerivationCache(v2, &restored, &stats).ok());
  EXPECT_EQ(restored.size(), 1u);
  EXPECT_EQ(stats.records_dropped, 0);
  // Backward compatibility is upgrade-on-save: the restored cache
  // serializes as v3.
  EXPECT_EQ(activity::SerializeDerivationCache(restored), v3);

  // A ckey line inside a v2 body is malformed, not silently accepted.
  std::string v2_with_ckey = SnapshotWithEntry(&db, *in, *out, "k");
  v2_with_ckey = "papyrus-cache 2" + v2_with_ckey.substr(std::string(
                     "papyrus-cache 3").size());
  DerivationCache strict(&db);
  EXPECT_FALSE(
      activity::RestoreDerivationCache(v2_with_ckey, &strict).ok());
}

TEST(DerivationCachePersistenceTest, FutureFormatVersionIsRejected) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto in = db.CreateVersion("in", TextData{"x"});
  auto out = db.CreateVersion("out", TextData{"y"});
  ASSERT_TRUE(in.ok() && out.ok());
  std::string v3 = SnapshotWithEntry(&db, *in, *out, "k");
  std::string v4 = "papyrus-cache 4" + v3.substr(std::string(
                       "papyrus-cache 3").size());
  DerivationCache restored(&db);
  EXPECT_FALSE(activity::RestoreDerivationCache(v4, &restored).ok());
}

}  // namespace
}  // namespace papyrus::cache
