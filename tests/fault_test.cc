#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "base/clock.h"
#include "cache/derivation_cache.h"
#include "cadtools/registry.h"
#include "fault/fault_plan.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::fault {
namespace {

using oct::BehavioralSpec;
using oct::ObjectId;
using oct::TextData;

/// Everything externally observable about one workload run: whether the
/// task committed, the rendered payload of each declared output, the set
/// of visible object names left in the database, and the environmental
/// counters.
struct RunOutcome {
  bool committed = false;
  std::map<std::string, std::string> outputs;  // name -> payload text
  std::set<std::string> visible_names;
  int64_t steps_lost = 0;
  int64_t steps_retried = 0;
  int64_t backoff_micros_total = 0;
  int64_t crashes = 0;
  int64_t flow_violations = 0;
  // Filled when `rerun` is requested: the same invocation repeated after
  // commit, served from the derivation cache.
  bool rerun_committed = false;
  int64_t rerun_executed = 0;
  int64_t rerun_elided = 0;
  std::map<std::string, std::string> rerun_outputs;
};

/// Runs the thesis' Structure_Synthesis flow (6 steps, one subtask, real
/// parallelism) on a fresh 4-host session, optionally under a fault plan
/// seeded with `fault_seed` (0 = fault-free). With `rerun`, the identical
/// invocation is repeated after commit against the populated derivation
/// cache.
RunOutcome RunWorkload(uint64_t fault_seed, bool rerun = false) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 4);
  auto registry = cadtools::CreateStandardRegistry();
  tdl::TemplateLibrary library;
  EXPECT_TRUE(tdl::RegisterThesisTemplates(&library).ok());

  FaultPlan plan([&] {
    FaultPlanOptions opt;
    opt.seed = fault_seed;
    opt.host_crash_rate = fault_seed == 0 ? 0.0 : 0.6;
    // The flow's fault-free makespan is ~1M virtual micros and its serial
    // steps run on the home host, so crashes must cover the whole span
    // and be allowed to hit home for chaos to actually bite.
    opt.horizon_micros = 1'500'000;
    opt.reboot_delay_micros = 60'000;
    opt.max_crashes_per_host = 2;
    opt.spare_home = false;
    opt.migration_flakiness = fault_seed == 0 ? 0.0 : 0.25;
    opt.tool_transient_rate = fault_seed == 0 ? 0.0 : 0.15;
    return opt;
  }());
  EXPECT_TRUE(plan.Apply(&network, registry.get()).ok());

  task::TaskManager manager(&db, registry.get(), &network, &library);
  cache::DerivationCache cache(&db);
  manager.set_derivation_cache(&cache);

  auto behav = db.CreateVersion("shifter", BehavioralSpec{8, 8, 12, 77});
  auto cmds = db.CreateVersion("sim.cmd", TextData{"run 100"});
  EXPECT_TRUE(behav.ok() && cmds.ok());

  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*behav, *cmds};
  inv.output_names = {"shifter.layout", "shifter.stats"};
  inv.seed = 42;  // tool outputs depend only on this and the step identity
  inv.max_step_retries = 6;
  auto rec = manager.Invoke(inv);

  RunOutcome outcome;
  outcome.committed = rec.ok();
  outcome.crashes = network.total_crashes();
  outcome.flow_violations = manager.flow_violations();
  if (rec.ok()) {
    outcome.steps_lost = rec->steps_lost;
    outcome.steps_retried = rec->steps_retried;
    outcome.backoff_micros_total = rec->backoff_micros_total;
    for (const ObjectId& id : rec->outputs) {
      auto out = db.Get(id);
      EXPECT_TRUE(out.ok());
      if (out.ok()) {
        outcome.outputs[id.name] = oct::PayloadToString((*out)->payload);
      }
    }
  }
  db.ForEach([&](const oct::ObjectRecord& r) {
    if (r.visible && !r.reclaimed) outcome.visible_names.insert(r.id.name);
  });
  if (rerun && outcome.committed) {
    int64_t executed0 = manager.steps_executed();
    int64_t elided0 = manager.steps_elided();
    auto rec2 = manager.Invoke(inv);
    outcome.rerun_committed = rec2.ok();
    outcome.rerun_executed = manager.steps_executed() - executed0;
    outcome.rerun_elided = manager.steps_elided() - elided0;
    if (rec2.ok()) {
      for (const ObjectId& id : rec2->outputs) {
        auto out = db.Get(id);
        EXPECT_TRUE(out.ok());
        if (out.ok()) {
          outcome.rerun_outputs[id.name] =
              oct::PayloadToString((*out)->payload);
        }
      }
    }
  }
  return outcome;
}

TEST(FaultSoakTest, EveryChaosRunCommitsIdenticallyOrAbortsCleanly) {
  RunOutcome baseline = RunWorkload(0);
  ASSERT_TRUE(baseline.committed);
  ASSERT_EQ(baseline.outputs.size(), 2u);
  EXPECT_EQ(baseline.steps_lost, 0);
  EXPECT_EQ(baseline.steps_retried, 0);
  EXPECT_EQ(baseline.flow_violations, 0);

  int committed_under_chaos = 0;
  int aborted_under_chaos = 0;
  int64_t total_lost = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    RunOutcome chaos = RunWorkload(seed);
    // The runtime happens-before checker must stay silent under chaos:
    // crashes, retries and restarts never excuse a dispatch that
    // contradicts the template's static flow graph.
    EXPECT_EQ(chaos.flow_violations, 0);
    if (chaos.committed) {
      ++committed_under_chaos;
      total_lost += chaos.steps_lost;
      // Atomicity + determinism: a committed chaos run is outwardly
      // indistinguishable from the fault-free run.
      EXPECT_EQ(chaos.outputs, baseline.outputs);
      EXPECT_EQ(chaos.visible_names, baseline.visible_names);
      // Every lost step must have been re-dispatched for the task to
      // have finished, and each retry waited out a backoff.
      EXPECT_GE(chaos.steps_retried, chaos.steps_lost);
      if (chaos.steps_retried > 0) {
        EXPECT_GT(chaos.backoff_micros_total, 0);
      }
    } else {
      ++aborted_under_chaos;
      // Zero visible side effects: only the task's inputs remain.
      EXPECT_EQ(chaos.visible_names,
                (std::set<std::string>{"shifter", "sim.cmd"}));
    }
  }
  // The soak is vacuous if chaos never bites: across 24 seeds at these
  // rates, some runs must survive and some environmental damage must
  // actually have been inflicted and repaired.
  EXPECT_GT(committed_under_chaos, 0);
  EXPECT_GT(total_lost + aborted_under_chaos, 0);
}

TEST(FaultSoakTest, SameSeedReproducesTheSameRun) {
  RunOutcome a = RunWorkload(11);
  RunOutcome b = RunWorkload(11);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.visible_names, b.visible_names);
  EXPECT_EQ(a.steps_lost, b.steps_lost);
  EXPECT_EQ(a.steps_retried, b.steps_retried);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(FaultSoakTest, CrashedThenRetriedStepCachesOnlyCommittedOutputs) {
  // Find a chaos run that committed only after losing step processes to
  // host crashes: its retried steps ran more than once, but the cache
  // must hold exactly the final committed outputs — the identical rerun
  // is fully elided and byte-identical.
  bool exercised = false;
  for (uint64_t seed = 1; seed <= 24 && !exercised; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    RunOutcome chaos = RunWorkload(seed, /*rerun=*/true);
    if (!chaos.committed || chaos.steps_lost == 0) continue;
    exercised = true;
    ASSERT_TRUE(chaos.rerun_committed);
    EXPECT_EQ(chaos.rerun_executed, 0);
    EXPECT_EQ(chaos.rerun_elided, 6);
    EXPECT_EQ(chaos.rerun_outputs, chaos.outputs);
  }
  // The regression is vacuous if no seed produced a crashed-then-retried
  // committed run; the soak test's rates make that practically impossible.
  EXPECT_TRUE(exercised);
}

TEST(FaultPlanTest, ValidatesOptionsAndSparesHome) {
  ManualClock clock(0);
  sprite::Network network(&clock, 4);

  FaultPlanOptions bad;
  bad.host_crash_rate = 1.5;
  EXPECT_FALSE(FaultPlan(bad).Apply(&network, nullptr).ok());
  bad = FaultPlanOptions{};
  bad.horizon_micros = 0;
  EXPECT_FALSE(FaultPlan(bad).Apply(&network, nullptr).ok());
  EXPECT_FALSE(FaultPlan(FaultPlanOptions{}).Apply(nullptr, nullptr).ok());

  FaultPlanOptions opt;
  opt.seed = 3;
  opt.host_crash_rate = 0.9;
  opt.max_crashes_per_host = 3;
  FaultPlan plan(opt);
  ASSERT_TRUE(plan.Apply(&network, nullptr).ok());
  EXPECT_FALSE(plan.scheduled_crashes().empty());
  for (const ScheduledCrash& c : plan.scheduled_crashes()) {
    EXPECT_NE(c.host, network.home_host());
    EXPECT_GT(c.crash_micros, 0);
    EXPECT_GT(c.reboot_micros, c.crash_micros);
  }
  // One-shot: a second Apply is refused.
  EXPECT_TRUE(
      plan.Apply(&network, nullptr).IsFailedPrecondition());
}

TEST(FaultPlanTest, TransientInjectionsAreCountedAndRetryable) {
  ManualClock clock(0);
  sprite::Network network(&clock, 2);
  auto registry = cadtools::CreateStandardRegistry();

  FaultPlanOptions opt;
  opt.seed = 5;
  opt.tool_transient_rate = 0.5;
  FaultPlan plan(opt);
  ASSERT_TRUE(plan.Apply(&network, registry.get()).ok());

  auto tool = registry->Find("espresso");
  ASSERT_TRUE(tool.ok());
  oct::DesignPayload input =
      oct::LogicNetwork{.num_inputs = 4, .num_outputs = 2, .minterms = 9,
                        .format = oct::DesignFormat::kPla, .seed = 9};
  cadtools::ToolRunContext ctx;
  ctx.inputs = {&input};
  ctx.input_names = {"net"};
  ctx.seed = 1;
  int transients = 0;
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    // Each retry presents a new attempt number (as the task manager's
    // environmental-retry path does), which re-seeds the injection draw.
    ctx.attempt = i;
    cadtools::ToolRunResult res = (*tool)->Run(ctx);
    if (res.transient) {
      ++transients;
      EXPECT_EQ(res.exit_status, cadtools::kToolExitTransient);
    } else {
      EXPECT_EQ(res.exit_status, 0) << res.message;
      ++successes;
    }
  }
  // The draw is a pure function of (plan seed, tool, invocation seed,
  // attempt), so the same invocation both fails and succeeds across
  // retries — a transient failure never dooms a step — and rerunning an
  // attempt reproduces its outcome exactly.
  EXPECT_GT(transients, 0);
  EXPECT_GT(successes, 0);
  EXPECT_EQ(plan.transient_injections(), transients);
  // Determinism at fixed attempt: re-running attempt 0 gives the same
  // verdict every time.
  ctx.attempt = 0;
  bool first = (*tool)->Run(ctx).transient;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*tool)->Run(ctx).transient, first);
  }
}

// Regression: a backed-off retry that pops while every host is still down
// is *not* a retry — the step was never re-dispatched. The old code
// incremented papyrus.steps.retried on that dead pop *and* again when the
// dispatch finally landed, double-counting one environmental failure.
TEST(FaultRetryAccountingTest,
     UnavailableDispatchDoesNotDoubleCountRetries) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 2);
  auto registry = cadtools::CreateStandardRegistry();
  tdl::TemplateLibrary library;
  ASSERT_TRUE(tdl::RegisterThesisTemplates(&library).ok());
  task::TaskManager manager(&db, registry.get(), &network, &library);

  auto cell = db.CreateVersion(
      "cell", oct::Layout{.num_cells = 4, .area = 400.0, .seed = 1});
  ASSERT_TRUE(cell.ok());

  // Take the whole network down before dispatch. The initial dispatch is
  // Unavailable and backs off (ready at t=1000). The owner event at
  // t=1200 is filler: it advances virtual time past the backoff deadline
  // while every host is still dead, so the retry queue pops exactly once
  // into an Unavailable dispatch before the home host returns at t=5000.
  ASSERT_TRUE(network.CrashHost(0).ok());
  ASSERT_TRUE(network.CrashHost(1).ok());
  ASSERT_TRUE(network.ScheduleOwnerEvent(1, 1'200, true).ok());
  ASSERT_TRUE(network.RebootHost(0, 5'000).ok());

  task::TaskInvocation inv;
  inv.template_name = "Padp";
  inv.inputs = {*cell};
  inv.output_names = {"cell.padded"};
  inv.seed = 7;
  inv.max_step_retries = 6;
  auto rec = manager.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();

  // Two backoffs happened (1000 then 2000 virtual micros), proving the
  // dead pop occurred...
  EXPECT_EQ(rec->backoff_micros_total, 3'000);
  // ...but only one actual re-dispatch: the dead pop at t=1200 must not
  // count (the buggy code reported 2 here).
  EXPECT_EQ(rec->steps_retried, 1);
  EXPECT_EQ(manager.steps_retried(), 1);
  EXPECT_EQ(manager.flow_violations(), 0);
}

}  // namespace
}  // namespace papyrus::fault
