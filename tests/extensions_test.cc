// Tests for the extension subsystems: the retracing executor, session
// save/load, and the task progress view.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/papyrus.h"
#include "meta/retrace.h"
#include "task/progress_view.h"

namespace papyrus {
namespace {

using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;

// --- Retracing (VOV-style consistency maintenance) ------------------------

class RetraceTest : public ::testing::Test {
 protected:
  RetraceTest() : retracer_(&session_.database(), &session_.tools()) {}

  /// Runs the PLA flow so the ADG records logic -> min -> fold -> layout.
  void BuildFlow() {
    thread_ = session_.CreateThread("T");
    ASSERT_TRUE(session_
                    .Invoke(thread_, "Create_Logic_Description", {},
                            {"cell.logic"})
                    .ok());
    ASSERT_TRUE(session_
                    .Invoke(thread_, "PLA_Generation", {"cell.logic"},
                            {"cell.layout"})
                    .ok());
  }

  Papyrus session_;
  meta::Retracer retracer_;
  int thread_ = 0;
};

TEST_F(RetraceTest, RegeneratesDerivedObjectsAsNewVersions) {
  BuildFlow();
  auto old_layout = session_.database().LatestVisible("cell.layout");
  ASSERT_TRUE(old_layout.ok());
  EXPECT_EQ(old_layout->version, 1);

  // The designer modifies the logic description: a new version appears.
  auto v2 = session_.database().CreateVersion(
      "cell.logic", LogicNetwork{.num_inputs = 8,
                                 .num_outputs = 8,
                                 .minterms = 120,
                                 .literals = 150,
                                 .format = oct::DesignFormat::kBlif,
                                 .seed = 999});
  ASSERT_TRUE(v2.ok());

  auto result =
      retracer_.Retrace(session_.metadata().adg(), "cell.logic");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // PLA_Generation's three steps are downstream of cell.logic.
  EXPECT_EQ(result->invocations_rerun, 3);
  EXPECT_EQ(result->invocations_skipped, 0);
  // The layout was regenerated as version 2; version 1 survives
  // (single-assignment retracing, unlike VOV's in-place updates).
  auto new_layout = session_.database().LatestVisible("cell.layout");
  ASSERT_TRUE(new_layout.ok());
  EXPECT_EQ(new_layout->version, 2);
  EXPECT_TRUE(session_.database().Get(*old_layout).ok());
  // The regenerated layout reflects the new logic (different minterms →
  // different cell count).
  auto old_rec = session_.database().Get(*old_layout);
  auto new_rec = session_.database().Get(*new_layout);
  EXPECT_NE(std::get<Layout>((*old_rec)->payload).num_cells,
            std::get<Layout>((*new_rec)->payload).num_cells);
}

TEST_F(RetraceTest, RecordFeedsBackIntoTheEngine) {
  BuildFlow();
  ASSERT_TRUE(session_.database()
                  .CreateVersion("cell.logic",
                                 LogicNetwork{.minterms = 80,
                                              .format =
                                                  oct::DesignFormat::kBlif,
                                              .seed = 5})
                  .ok());
  auto result =
      retracer_.Retrace(session_.metadata().adg(), "cell.logic");
  ASSERT_TRUE(result.ok());
  size_t edges_before = session_.metadata().adg().edge_count();
  ASSERT_TRUE(session_.metadata().Observe(result->record).ok());
  EXPECT_EQ(session_.metadata().adg().edge_count(),
            edges_before + result->invocations_rerun);
  // The regenerated layout's type is inferred like any other creation.
  auto layout = session_.database().LatestVisible("cell.layout");
  ASSERT_TRUE(layout.ok());
  auto type = session_.metadata().TypeOf(*layout);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, "layout");
}

TEST_F(RetraceTest, NothingToRetraceForLeafObjects) {
  BuildFlow();
  auto result =
      retracer_.Retrace(session_.metadata().adg(), "cell.layout");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->invocations_rerun, 0);
  EXPECT_TRUE(result->regenerated.empty());
}

TEST_F(RetraceTest, SkipsInvocationsWithReclaimedInputs) {
  BuildFlow();
  // Reclaim every version of cell.logic: the whole chain is unrunnable.
  for (int v = 1; v <= session_.database().VersionCount("cell.logic");
       ++v) {
    ASSERT_TRUE(session_.database().Reclaim({"cell.logic", v}).ok());
  }
  auto result =
      retracer_.Retrace(session_.metadata().adg(), "cell.logic");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->invocations_rerun, 0);
  EXPECT_GT(result->invocations_skipped, 0);
}

// --- Session save / load ------------------------------------------------------

class SessionPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("papyrus_session_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SessionPersistenceTest, SaveAndReloadFullSession) {
  int p2_point = 0;
  {
    Papyrus session;
    int t1 = session.CreateThread("Shifter");
    auto p1 = session.Invoke(t1, "Create_Logic_Description", {},
                             {"s.logic"});
    ASSERT_TRUE(p1.ok());
    auto p2 = session.Invoke(t1, "Standard_Cell_Place_and_Route",
                             {"s.logic"}, {"s.sc"});
    ASSERT_TRUE(p2.ok());
    p2_point = *p2;
    int t2 = session.CreateThread("Arith");
    ASSERT_TRUE(
        session.Invoke(t2, "Create_Logic_Description", {}, {"a.logic"})
            .ok());
    ASSERT_TRUE(session.SaveSession(dir_.string()).ok());
  }  // "crash"

  Papyrus recovered;
  ASSERT_TRUE(recovered.LoadSession(dir_.string()).ok());
  ASSERT_EQ(recovered.activity().ThreadIds().size(), 2u);
  auto thread = recovered.activity().GetThread(1);
  ASSERT_TRUE(thread.ok());
  EXPECT_EQ((*thread)->name(), "Shifter");
  EXPECT_EQ((*thread)->size(), 2);
  EXPECT_EQ((*thread)->current_cursor(), p2_point);
  // Name resolution works: invoking continues seamlessly.
  auto p3 = recovered.Invoke(1, "Place_Pads", {"s.sc"}, {"s.padded"});
  ASSERT_TRUE(p3.ok()) << p3.status().ToString();
  EXPECT_TRUE(recovered.database().LatestVisible("s.padded").ok());
  // Fresh threads get ids beyond the recovered ones.
  EXPECT_GT(recovered.CreateThread("new"), 2);
}

TEST_F(SessionPersistenceTest, LoadRequiresFreshSession) {
  {
    Papyrus session;
    (void)session.CreateThread("T");
    ASSERT_TRUE(session.SaveSession(dir_.string()).ok());
  }
  Papyrus dirty;
  (void)dirty.CheckInObject("/x", LogicNetwork{});
  EXPECT_TRUE(dirty.LoadSession(dir_.string()).IsFailedPrecondition());
}

TEST_F(SessionPersistenceTest, LoadFromMissingDirectoryFails) {
  Papyrus session;
  EXPECT_FALSE(session.LoadSession("/no/such/dir").ok());
}

// --- Progress view -------------------------------------------------------------

TEST(ProgressViewTest, TracksStepStates) {
  Papyrus session;
  auto tmpl = session.templates().Find("Structure_Synthesis");
  ASSERT_TRUE(tmpl.ok());
  task::ProgressView view(**tmpl, &session.templates());

  (void)session.CheckInObject("/spec", oct::BehavioralSpec{8, 8, 12, 3});
  (void)session.CheckInObject("/sim.cmd", oct::TextData{"run"});
  int t = session.CreateThread("T");
  activity::ActivityInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.input_refs = {"/spec", "/sim.cmd"};
  inv.output_names = {"out", "stats"};
  inv.observer = &view;
  ASSERT_TRUE(session.activity().InvokeTask(t, inv).ok());

  EXPECT_EQ(view.completed_steps(), 6);
  EXPECT_EQ(view.failed_steps(), 0);
  std::string rendered = view.Render();
  EXPECT_NE(rendered.find("[x] NetlistCompile"), std::string::npos);
  EXPECT_NE(rendered.find("[x] Pads_Placement"), std::string::npos);
  EXPECT_NE(rendered.find("Messages:"), std::string::npos);
  EXPECT_EQ(rendered.find("[ ]"), std::string::npos);  // nothing pending
}

TEST(ProgressViewTest, ShowsFailuresAndRestarts) {
  Papyrus session;
  auto tmpl = session.templates().Find("PLA_Generation");
  ASSERT_TRUE(tmpl.ok());
  task::ProgressView view(**tmpl, &session.templates());
  (void)session.CheckInObject(
      "/cell", LogicNetwork{.num_inputs = 8,
                            .num_outputs = 4,
                            .minterms = 60,
                            .format = oct::DesignFormat::kBlif,
                            .seed = 21});
  int t = session.CreateThread("T");
  activity::ActivityInvocation inv;
  inv.template_name = "PLA_Generation";
  inv.input_refs = {"/cell"};
  inv.output_names = {"lay"};
  inv.observer = &view;
  inv.option_overrides["Array_Layout"] = "-maxarea 1";
  inv.max_restarts = 2;
  auto point = session.activity().InvokeTask(t, inv);
  EXPECT_FALSE(point.ok());
  EXPECT_GE(view.restarts(), 1);
  EXPECT_FALSE(view.messages().empty());
}

TEST(ProgressViewTest, ManPageLookup) {
  Papyrus session;
  std::string page =
      task::ProgressView::ManPage(session.tools(), "espresso");
  EXPECT_NE(page.find("Two-level minimizer"), std::string::npos);
  EXPECT_NE(task::ProgressView::ManPage(session.tools(), "nope")
                .find("no manual entry"),
            std::string::npos);
}

}  // namespace
}  // namespace papyrus
