#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "base/clock.h"
#include "base/hash.h"
#include "base/intern.h"
#include "base/macros.h"
#include "base/mutex.h"
#include "base/result.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/thread_annotations.h"

namespace papyrus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing cell");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing cell");
  EXPECT_EQ(s.ToString(), "NotFound: missing cell");
}

TEST(StatusTest, AllFactoryFunctionsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  PAPYRUS_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnPropagatesValueAndError) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status bad = UseHalf(3, &out);
  EXPECT_TRUE(bad.IsInvalidArgument());
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto v = Split("a::b:", ':');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto v = SplitWhitespace("  set   a\t27\n");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "set");
  EXPECT_EQ(v[1], "a");
  EXPECT_EQ(v[2], "27");
}

TEST(StringsTest, JoinRoundTrips) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("ResumedStep 3", "ResumedStep"));
  EXPECT_FALSE(StartsWith("Re", "ResumedStep"));
  EXPECT_TRUE(EndsWith("cell.blif", ".blif"));
  EXPECT_FALSE(EndsWith("blif", "cell.blif"));
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(StringsTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a("espresso"), Fnv1a("espresso"));
  EXPECT_NE(Fnv1a("espresso"), Fnv1a("espressp"));
  EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceSeconds(2);
  EXPECT_EQ(clock.NowMicros(), 150 + 2000000);
  EXPECT_EQ(clock.NowSeconds(), 2);
}

TEST(ClockTest, SystemClockMovesForward) {
  SystemClock* clock = SystemClock::Default();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0);
}

// Every thread is the engine thread until marked; the mark is scoped and
// thread-local.
TEST(ThreadRoleTest, EveryThreadIsEngineUntilMarked) {
  EXPECT_TRUE(base::OnEngineThread());
  {
    base::ScopedWorkerThread mark;
    EXPECT_FALSE(base::OnEngineThread());
  }
  EXPECT_TRUE(base::OnEngineThread());

  bool fresh_thread_is_engine = false;
  bool marked_thread_is_engine = true;
  std::thread([&] {
    fresh_thread_is_engine = base::OnEngineThread();
    base::ScopedWorkerThread mark;
    marked_thread_is_engine = base::OnEngineThread();
  }).join();
  EXPECT_TRUE(fresh_thread_is_engine);
  EXPECT_FALSE(marked_thread_is_engine);
}

TEST(ThreadRoleTest, AssertEngineThreadPassesOnEngineThread) {
  base::AssertEngineThread("ThreadRoleTest");  // must not abort
}

// The runtime half of the contract: an engine-only entry point reached
// from a marked pool worker dies loudly instead of corrupting state.
TEST(ThreadRoleDeathTest, AssertEngineThreadAbortsOnWorkerThread) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        base::ScopedWorkerThread mark;
        base::AssertEngineThread("DeathTestProbe");
      },
      "engine-thread contract violated: DeathTestProbe");
}

// ---------------------------------------------------------------------------
// SHA-256 (base/hash.h) — FIPS 180-4 test vectors. These pin the exact
// digest function: content-addressed store keys and blob names derive
// from it, so a change here silently orphans every existing store.
// ---------------------------------------------------------------------------

TEST(Sha256Test, EmptyInputVector) {
  EXPECT_EQ(
      Sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(
      Sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  // 56 bytes: forces the length padding into a second compression block.
  EXPECT_EQ(
      Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAsVector) {
  std::string input(1000000, 'a');
  EXPECT_EQ(
      Sha256Hex(input),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalUpdatesMatchOneShot) {
  Sha256 hasher;
  hasher.Update("ab");
  hasher.Update("");
  hasher.Update("c");
  EXPECT_EQ(hasher.FinishHex(), Sha256Hex("abc"));
  // Reset() restarts the stream; split points never affect the digest.
  hasher.Reset();
  std::string long_input(130, 'x');  // straddles two 64-byte blocks
  hasher.Update(long_input.substr(0, 63));
  hasher.Update(long_input.substr(63));
  EXPECT_EQ(hasher.FinishHex(), Sha256Hex(long_input));
}

TEST(ArenaTest, CopiedStringsStayStableAcrossChunkGrowth) {
  base::Arena arena(64);  // tiny chunks force frequent growth
  std::vector<std::string_view> views;
  for (int i = 0; i < 200; ++i) {
    views.push_back(
        arena.CopyString("cell" + std::to_string(i) + ":view:contents"));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(views[i], "cell" + std::to_string(i) + ":view:contents");
  }
  // Oversized allocations (bigger than a chunk) still work.
  std::string big(1000, 'q');
  EXPECT_EQ(arena.CopyString(big), big);
  EXPECT_GT(arena.bytes_allocated(), big.size());
}

TEST(InternTableTest, SymbolsAreDenseStableAndDeduplicated) {
  base::InternTable table;
  base::Symbol a = table.Intern("adder:logic:contents");
  base::Symbol b = table.Intern("shifter:logic:contents");
  EXPECT_NE(a, b);
  // Interning again returns the same symbol; no new storage.
  size_t bytes = table.arena_bytes();
  EXPECT_EQ(table.Intern("adder:logic:contents"), a);
  EXPECT_EQ(table.arena_bytes(), bytes);
  EXPECT_EQ(table.size(), 2u);

  EXPECT_EQ(table.StringOf(a), "adder:logic:contents");
  EXPECT_EQ(table.StringOf(b), "shifter:logic:contents");
  EXPECT_EQ(table.Find("adder:logic:contents"), a);
  EXPECT_EQ(table.Find("never interned"), base::kNoSymbol);
}

}  // namespace
}  // namespace papyrus
