#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/hash.h"
#include "cache/derivation_cache.h"
#include "obs/metrics.h"
#include "core/papyrus.h"
#include "oct/design_data.h"
#include "server/daemon.h"
#include "storage/cas.h"
#include "task/task_manager.h"

namespace papyrus::storage {
namespace {

namespace fs = std::filesystem;

using oct::BehavioralSpec;
using oct::ObjectId;
using oct::TextData;

/// A fresh, empty scratch directory per test (re-runs included).
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("cas_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

CasEntryMeta Meta(const std::string& tool, int64_t cost = 1000) {
  CasEntryMeta meta;
  meta.tool = tool;
  meta.tool_version = "1";
  meta.canonical_options = "-f $i0 $o0";
  meta.seed_salt = 7;
  meta.cost_micros = cost;
  return meta;
}

std::vector<CasPublishOutput> OneOutput(const std::string& bytes,
                                        const std::string& name = "out") {
  CasPublishOutput out;
  out.name_hint = name;
  out.visible = true;
  out.bytes = bytes;
  return {out};
}

/// The on-disk blob file backing a published output.
fs::path BlobFile(const std::string& root, const std::string& bytes) {
  std::string hash = Sha256Hex(bytes);
  return fs::path(root) / "blobs" / hash.substr(0, 2) / hash;
}

// ---------------------------------------------------------------------------
// ContentStore basics
// ---------------------------------------------------------------------------

TEST(ContentStoreTest, PublishFetchRoundTripsMetaAndBytes) {
  std::string root = FreshDir("roundtrip");
  auto store = ContentStore::Open(root);
  ASSERT_TRUE(store.ok()) << store.status().message();

  ASSERT_TRUE((*store)->Publish("key-a", Meta("misII", 12345),
                                OneOutput("layout bytes", "a.layout"))
                  .ok());
  EXPECT_TRUE((*store)->Contains("key-a"));
  EXPECT_FALSE((*store)->Contains("key-b"));

  auto hit = (*store)->Fetch("key-a");
  ASSERT_TRUE(hit.ok()) << hit.status().message();
  EXPECT_EQ(hit->meta.tool, "misII");
  EXPECT_EQ(hit->meta.tool_version, "1");
  EXPECT_EQ(hit->meta.cost_micros, 12345);
  ASSERT_EQ(hit->outputs.size(), 1u);
  EXPECT_EQ(hit->outputs[0].name_hint, "a.layout");
  EXPECT_EQ(hit->outputs[0].bytes, "layout bytes");
  EXPECT_EQ(hit->outputs[0].blob_hash, Sha256Hex("layout bytes"));

  EXPECT_TRUE((*store)->Fetch("key-b").status().IsNotFound());
  CasStats s = (*store)->stats();
  EXPECT_EQ(s.published, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.blobs, 1);
  EXPECT_EQ(s.total_bytes,
            static_cast<int64_t>(std::string("layout bytes").size()));
}

TEST(ContentStoreTest, NegativeEntryCacheShortCircuitsKnownAbsentKeys) {
  std::string root = FreshDir("negcache");
  auto store = ContentStore::Open(root);
  ASSERT_TRUE(store.ok());
  obs::MetricsRegistry metrics;
  obs::Observability obs;
  obs.metrics = &metrics;
  (*store)->set_observability(obs);

  // The first probe is a genuine miss that seeds the negative cache...
  EXPECT_TRUE((*store)->Fetch("absent").status().IsNotFound());
  CasStats s = (*store)->stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.neg_hits, 0);
  EXPECT_EQ(s.neg_entries, 1);

  // ...and every repeat short-circuits on it, Fetch and Contains alike.
  EXPECT_TRUE((*store)->Fetch("absent").status().IsNotFound());
  EXPECT_FALSE((*store)->Contains("absent"));
  s = (*store)->stats();
  EXPECT_EQ(s.misses, 2);  // Contains never counted misses
  EXPECT_EQ(s.neg_hits, 2);
  EXPECT_EQ(metrics.FindOrCreateCounter(obs::kCasNegHits)->value(), 2);

  // Publish invalidates the key: a stale negative entry can never mask a
  // later publication.
  ASSERT_TRUE(
      (*store)->Publish("absent", Meta("misII"), OneOutput("now")).ok());
  EXPECT_TRUE((*store)->Contains("absent"));
  auto hit = (*store)->Fetch("absent");
  ASSERT_TRUE(hit.ok()) << hit.status().message();
  s = (*store)->stats();
  EXPECT_EQ(s.neg_hits, 2);     // no stale short-circuit after Publish
  EXPECT_EQ(s.neg_entries, 0);
  EXPECT_EQ(s.hits, 1);
}

TEST(ContentStoreTest, IdenticalBytesAcrossEntriesShareOneBlob) {
  std::string root = FreshDir("dedup");
  auto store = ContentStore::Open(root);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(
      (*store)->Publish("key-a", Meta("misII"), OneOutput("same")).ok());
  ASSERT_TRUE(
      (*store)->Publish("key-b", Meta("wolfe"), OneOutput("same")).ok());

  CasStats s = (*store)->stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.blobs, 1);  // one physical copy
  EXPECT_EQ(s.dedup_bytes, 4);
  EXPECT_EQ(s.bytes_written, 4);
  EXPECT_EQ(s.live_blobs, 1);       // refs == 2
  EXPECT_EQ(s.evictable_blobs, 0);

  // Re-publishing an existing key with identical content is pure dedup.
  ASSERT_TRUE(
      (*store)->Publish("key-a", Meta("misII"), OneOutput("same")).ok());
  s = (*store)->stats();
  EXPECT_EQ(s.published, 2);
  EXPECT_EQ(s.dedup_bytes, 8);
  EXPECT_EQ(s.entries, 2);
}

TEST(ContentStoreTest, ReopenRestoresEntriesAndServesHits) {
  std::string root = FreshDir("reopen");
  {
    auto store = ContentStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)
                    ->Publish("key-a", Meta("misII", 777),
                              OneOutput("persisted bytes"))
                    .ok());
  }
  auto reopened = ContentStore::Open(root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  auto hit = (*reopened)->Fetch("key-a");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->meta.cost_micros, 777);
  EXPECT_EQ(hit->outputs[0].bytes, "persisted bytes");
  EXPECT_EQ((*reopened)->stats().orphans_collected, 0);
}

// ---------------------------------------------------------------------------
// Corruption and crash recovery
// ---------------------------------------------------------------------------

TEST(ContentStoreTest, BitFlippedBlobIsRejectedAndEntryDropped) {
  std::string root = FreshDir("bitflip");
  auto store = ContentStore::Open(root);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)
                  ->Publish("key-a", Meta("misII"),
                            OneOutput("pristine content"))
                  .ok());
  fs::path blob = BlobFile(root, "pristine content");
  ASSERT_TRUE(fs::exists(blob));
  std::string bytes = ReadAll(blob);
  bytes[0] ^= 0x01;  // single bit flip
  WriteAll(blob, bytes);

  // Corrupt bytes are never handed out; the damaged entry is dropped so
  // the caller re-runs the tool.
  EXPECT_TRUE((*store)->Fetch("key-a").status().IsAborted());
  EXPECT_FALSE((*store)->Contains("key-a"));
  EXPECT_EQ((*store)->stats().verify_failures, 1);
  EXPECT_TRUE((*store)->Fetch("key-a").status().IsNotFound());

  // The slate is clean: republishing stores fresh verified bytes.
  ASSERT_TRUE((*store)
                  ->Publish("key-a", Meta("misII"),
                            OneOutput("pristine content"))
                  .ok());
  EXPECT_TRUE((*store)->Fetch("key-a").ok());
}

TEST(ContentStoreTest, TornJournalTailRecoversLongestValidPrefix) {
  std::string root = FreshDir("torn");
  {
    auto store = ContentStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Publish("key-a", Meta("misII"), OneOutput("aaaa")).ok());
    ASSERT_TRUE(
        (*store)->Publish("key-b", Meta("wolfe"), OneOutput("bbbb")).ok());
  }
  // Tear the journal mid-way through its last record — the crash left
  // key-b's put half-written. (Open checkpointed the then-empty state,
  // so both puts live in the journal.)
  fs::path journal = fs::path(root) / "cas.journal";
  std::string text = ReadAll(journal);
  ASSERT_FALSE(text.empty());
  WriteAll(journal, text.substr(0, text.size() / 2));

  auto reopened = ContentStore::Open(root);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Contains("key-a"));
  EXPECT_FALSE((*reopened)->Contains("key-b"));
  // key-b's blob lost its last reference with the torn put; the orphan
  // sweep reclaimed the file.
  EXPECT_EQ((*reopened)->stats().orphans_collected, 1);
  EXPECT_FALSE(fs::exists(BlobFile(root, "bbbb")));
  auto hit = (*reopened)->Fetch("key-a");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->outputs[0].bytes, "aaaa");
}

TEST(ContentStoreTest, CrashBetweenBlobWriteAndJournalLeavesCollectableOrphan) {
  std::string root = FreshDir("orphan");
  {
    auto store = ContentStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Publish("key-a", Meta("misII"), OneOutput("kept")).ok());
  }
  // Simulate the publish crash window: the blob file landed, the journal
  // record never did.
  std::string orphan_bytes = "orphaned blob content";
  fs::path orphan = BlobFile(root, orphan_bytes);
  std::error_code ec;
  fs::create_directories(orphan.parent_path(), ec);
  WriteAll(orphan, orphan_bytes);

  auto reopened = ContentStore::Open(root);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_EQ((*reopened)->stats().orphans_collected, 1);
  // The referenced blob survived the sweep.
  EXPECT_TRUE((*reopened)->Fetch("key-a").ok());
}

TEST(ContentStoreTest, RecoveryIsConsistentAtEveryJournalTruncationPoint) {
  // The journaled ref-count protocol: chopping the journal at *any* byte
  // must recover a consistent store — entries either fully exist or
  // fully don't, blob files exactly match the recovered references, and
  // reopening is always possible. This is the "daemon killed mid
  // ref-count update" property, exhaustively.
  std::string root = FreshDir("chop");
  {
    auto store = ContentStore::Open(root);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)->Publish("k1", Meta("misII"), OneOutput("shared")).ok());
    ASSERT_TRUE(
        (*store)->Publish("k2", Meta("wolfe"), OneOutput("shared")).ok());
    ASSERT_TRUE(
        (*store)->Publish("k3", Meta("padp"), OneOutput("solo")).ok());
    ASSERT_TRUE((*store)->Fetch("k1").ok());  // adds a touch record
  }
  fs::path journal = fs::path(root) / "cas.journal";
  fs::path state = fs::path(root) / "cas.state";
  std::string full = ReadAll(journal);
  std::string state_backup = ReadAll(state);
  ASSERT_FALSE(full.empty());
  fs::path blobs_backup = fs::path(root) / "blobs_backup";
  fs::copy(fs::path(root) / "blobs", blobs_backup,
           fs::copy_options::recursive);

  for (size_t cut = 0; cut <= full.size(); cut += 7) {
    // Restore the pre-crash disk state, then crash at byte `cut`.
    // (Each Open compacts journal into checkpoint, so both are reset.)
    std::error_code ec;
    fs::remove_all(fs::path(root) / "blobs", ec);
    fs::copy(blobs_backup, fs::path(root) / "blobs",
             fs::copy_options::recursive);
    WriteAll(state, state_backup);
    WriteAll(journal, full.substr(0, cut));

    auto store = ContentStore::Open(root);
    ASSERT_TRUE(store.ok()) << "cut=" << cut;
    // Every surviving entry must fetch cleanly (its blobs exist and
    // verify); k1 before k2 in the journal, so k2 implies k1.
    CasStats s = (*store)->stats();
    for (const char* key : {"k1", "k2", "k3"}) {
      if ((*store)->Contains(key)) {
        EXPECT_TRUE((*store)->Fetch(key).ok())
            << "cut=" << cut << " key=" << key;
      }
    }
    EXPECT_LE(s.entries, 3) << "cut=" << cut;
    // Open re-checkpointed: the state must also survive a second open.
    store->reset();
    auto again = ContentStore::Open(root);
    ASSERT_TRUE(again.ok()) << "cut=" << cut;
    EXPECT_EQ((*again)->stats().entries, s.entries) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Eviction
// ---------------------------------------------------------------------------

TEST(ContentStoreTest, LruEvictionHonorsBudgetAndNeverEvictsTheNewEntry) {
  std::string root = FreshDir("evict");
  CasOptions options;
  options.size_budget_bytes = 10;
  auto store = ContentStore::Open(root, options);
  ASSERT_TRUE(store.ok());

  ASSERT_TRUE(
      (*store)->Publish("k1", Meta("misII"), OneOutput("11111")).ok());
  ASSERT_TRUE(
      (*store)->Publish("k2", Meta("wolfe"), OneOutput("22222")).ok());
  EXPECT_EQ((*store)->stats().total_bytes, 10);

  // k1 is oldest; publishing k3 (5 bytes) must evict it, not k3 itself.
  ASSERT_TRUE(
      (*store)->Publish("k3", Meta("padp"), OneOutput("33333")).ok());
  EXPECT_FALSE((*store)->Contains("k1"));
  EXPECT_TRUE((*store)->Contains("k2"));
  EXPECT_TRUE((*store)->Contains("k3"));
  EXPECT_FALSE(fs::exists(BlobFile(root, "11111")));
  CasStats s = (*store)->stats();
  EXPECT_EQ(s.evicted_entries, 1);
  EXPECT_EQ(s.evicted_bytes, 5);
  EXPECT_EQ(s.total_bytes, 10);

  // A fetch refreshes k2's LRU position, so the next eviction takes k3.
  ASSERT_TRUE((*store)->Fetch("k2").ok());
  ASSERT_TRUE(
      (*store)->Publish("k4", Meta("mosaico"), OneOutput("44444")).ok());
  EXPECT_TRUE((*store)->Contains("k2"));
  EXPECT_FALSE((*store)->Contains("k3"));
}

TEST(ContentStoreTest, EvictionNeverDeletesABlobAnotherEntryReferences) {
  std::string root = FreshDir("evict_shared");
  CasOptions options;
  options.size_budget_bytes = 13;
  auto store = ContentStore::Open(root, options);
  ASSERT_TRUE(store.ok());

  // k1 carries a private 6-byte blob plus a 6-byte blob it shares with
  // k2; k3's own 6 bytes push unique bytes to 18 > 13, evicting LRU k1.
  std::vector<CasPublishOutput> k1_outputs = OneOutput("shared");
  k1_outputs.push_back(OneOutput("k1only")[0]);
  ASSERT_TRUE((*store)->Publish("k1", Meta("misII"), k1_outputs).ok());
  ASSERT_TRUE(
      (*store)->Publish("k2", Meta("wolfe"), OneOutput("shared")).ok());
  ASSERT_TRUE(
      (*store)->Publish("k3", Meta("padp"), OneOutput("unique")).ok());
  EXPECT_FALSE((*store)->Contains("k1"));
  EXPECT_TRUE((*store)->Contains("k2"));
  // k1's private blob was reclaimed, but the blob k2 still references
  // survived the eviction and still serves verified bytes.
  EXPECT_FALSE(fs::exists(BlobFile(root, "k1only")));
  ASSERT_TRUE(fs::exists(BlobFile(root, "shared")));
  auto hit = (*store)->Fetch("k2");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->outputs[0].bytes, "shared");
  // Only the private blob's bytes were freed.
  EXPECT_EQ((*store)->stats().evicted_bytes, 6);
  EXPECT_EQ((*store)->stats().total_bytes, 12);
}

// ---------------------------------------------------------------------------
// Concurrency (exercised under TSan in CI)
// ---------------------------------------------------------------------------

TEST(ContentStoreTest, ConcurrentPublishFetchEvictIsSafe) {
  std::string root = FreshDir("threads");
  CasOptions options;
  options.size_budget_bytes = 200;  // keep eviction constantly active
  options.checkpoint_interval = 16;
  auto opened = ContentStore::Open(root, options);
  ASSERT_TRUE(opened.ok());
  ContentStore* store = opened->get();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([store, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Half the keys are shared across threads, half are private:
        // both the dedup path and the write path race with eviction.
        std::string key = (i % 2 == 0)
                              ? "shared-" + std::to_string(i % 8)
                              : "t" + std::to_string(t) + "-" +
                                    std::to_string(i);
        std::string bytes = "payload-" + key;
        ASSERT_TRUE(
            store->Publish(key, Meta("misII"), OneOutput(bytes)).ok());
        auto hit = store->Fetch(key);
        // Another thread's publish may have evicted it already — but a
        // served hit must always carry verified, correct bytes.
        if (hit.ok()) {
          ASSERT_EQ(hit->outputs[0].bytes, bytes);
        } else {
          ASSERT_TRUE(hit.status().IsNotFound());
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  CasStats s = store->stats();
  EXPECT_EQ(s.verify_failures, 0);  // eviction never tore a live read
  EXPECT_LE(s.total_bytes, 200);
  // The store is still fully consistent: a reopen recovers cleanly.
  opened->reset();
  auto reopened = ContentStore::Open(root, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().orphans_collected, 0);
}

// ---------------------------------------------------------------------------
// Cross-session elision through the derivation cache
// ---------------------------------------------------------------------------

struct FlowRun {
  int64_t executed = 0;
  int64_t elided = 0;
  bool committed = false;
  std::vector<ObjectId> outputs;
};

FlowRun RunFlow(Papyrus& session, const ObjectId& spec,
                const ObjectId& cmds) {
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {spec, cmds};
  inv.output_names = {"spec.layout", "spec.stats"};
  inv.seed = 42;
  FlowRun r;
  int64_t e0 = session.task_manager().steps_executed();
  int64_t l0 = session.task_manager().steps_elided();
  auto rec = session.task_manager().Invoke(inv);
  r.executed = session.task_manager().steps_executed() - e0;
  r.elided = session.task_manager().steps_elided() - l0;
  r.committed = rec.ok();
  if (rec.ok()) r.outputs = rec->outputs;
  return r;
}

/// Content hashes of a run's committed task outputs — the byte-level
/// identity a shared-store hit must preserve.
std::vector<std::string> OutputHashes(Papyrus& session,
                                      const std::vector<ObjectId>& ids) {
  std::vector<std::string> hashes;
  for (const ObjectId& id : ids) {
    auto hash = session.database().ContentHash(id);
    EXPECT_TRUE(hash.ok());
    hashes.push_back(hash.ok() ? *hash : "");
  }
  return hashes;
}

TEST(SharedStoreSessionTest, FreshSessionElidesStepsAnotherSessionRan) {
  std::string store_dir = FreshDir("cross_session");

  std::vector<std::string> cold_hashes;
  {
    SessionOptions options;
    options.shared_store_path = store_dir;
    Papyrus cold(options);
    ASSERT_NE(cold.shared_store(), nullptr);
    auto spec = cold.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds =
        cold.database().CreateVersion("sim.cmd", TextData{"run 100"});
    FlowRun run = RunFlow(cold, *spec, *cmds);
    ASSERT_TRUE(run.committed);
    EXPECT_EQ(run.executed, 6);
    EXPECT_EQ(run.elided, 0);
    cold_hashes = OutputHashes(cold, run.outputs);
    // Commit published the six derivations.
    EXPECT_GE(cold.shared_store()->stats().entries, 6);
  }

  // A brand-new session — empty database, empty session cache — derives
  // the same content keys from identical input bytes and elides every
  // step through the store.
  SessionOptions options;
  options.shared_store_path = store_dir;
  Papyrus warm(options);
  auto spec = warm.database().CreateVersion(
      "spec", BehavioralSpec{8, 8, 12, 77});
  auto cmds =
      warm.database().CreateVersion("sim.cmd", TextData{"run 100"});
  int64_t t0 = warm.clock().NowMicros();
  FlowRun run = RunFlow(warm, *spec, *cmds);
  ASSERT_TRUE(run.committed);
  EXPECT_EQ(run.executed, 0);
  EXPECT_EQ(run.elided, 6);
  // Shared hits complete at zero virtual cost.
  EXPECT_EQ(warm.clock().NowMicros(), t0);
  EXPECT_EQ(warm.step_cache().stats().shared_hits, 6);
  // Byte identity: the re-bound outputs hash exactly as the cold run's.
  EXPECT_EQ(OutputHashes(warm, run.outputs), cold_hashes);

  // Within the warm session the derivation is now locally cached: a
  // rerun hits the session cache, not the store again.
  int64_t shared_hits = warm.step_cache().stats().shared_hits;
  FlowRun rerun = RunFlow(warm, *spec, *cmds);
  ASSERT_TRUE(rerun.committed);
  EXPECT_EQ(rerun.executed, 0);
  EXPECT_EQ(warm.step_cache().stats().shared_hits, shared_hits);
}

TEST(SharedStoreSessionTest, WarmRunsArePoolSizeInvariant) {
  std::string store_dir = FreshDir("pool_invariance");
  {
    SessionOptions options;
    options.shared_store_path = store_dir;
    Papyrus cold(options);
    auto spec = cold.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds =
        cold.database().CreateVersion("sim.cmd", TextData{"run 100"});
    ASSERT_TRUE(RunFlow(cold, *spec, *cmds).committed);
  }
  // Two fresh warm sessions, 1 worker vs 4: histories and outputs must
  // agree byte-for-byte (CAS hits happen at dispatch on the engine
  // thread, so the pool never reorders them).
  std::vector<std::vector<std::string>> hashes;
  std::vector<std::string> records;
  for (int workers : {1, 4}) {
    SessionOptions options;
    options.shared_store_path = store_dir;
    options.worker_threads = workers;
    Papyrus warm(options);
    auto spec = warm.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds =
        warm.database().CreateVersion("sim.cmd", TextData{"run 100"});
    task::TaskInvocation inv;
    inv.template_name = "Structure_Synthesis";
    inv.inputs = {*spec, *cmds};
    inv.output_names = {"spec.layout", "spec.stats"};
    inv.seed = 42;
    auto rec = warm.task_manager().Invoke(inv);
    ASSERT_TRUE(rec.ok());
    hashes.push_back(OutputHashes(warm, rec->outputs));
    std::ostringstream steps;
    for (const task::StepRecord& s : rec->steps) {
      steps << s.step_name << '|' << s.invocation << '|' << s.cache_hit
            << '|' << s.completion_micros << '\n';
    }
    records.push_back(steps.str());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(records[0], records[1]);
}

TEST(SharedStoreSessionTest, CorruptBlobFallsBackToRerunning) {
  std::string store_dir = FreshDir("corrupt_fallback");
  {
    SessionOptions options;
    options.shared_store_path = store_dir;
    Papyrus cold(options);
    auto spec = cold.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds =
        cold.database().CreateVersion("sim.cmd", TextData{"run 100"});
    ASSERT_TRUE(RunFlow(cold, *spec, *cmds).committed);
  }
  // Flip one bit in every stored blob.
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(
           fs::path(store_dir) / "blobs", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& file : fs::directory_iterator(shard.path(), ec)) {
      std::string bytes = ReadAll(file.path());
      ASSERT_FALSE(bytes.empty());
      bytes[0] ^= 0x01;
      WriteAll(file.path(), bytes);
    }
  }

  SessionOptions options;
  options.shared_store_path = store_dir;
  Papyrus warm(options);
  auto spec = warm.database().CreateVersion(
      "spec", BehavioralSpec{8, 8, 12, 77});
  auto cmds =
      warm.database().CreateVersion("sim.cmd", TextData{"run 100"});
  FlowRun run = RunFlow(warm, *spec, *cmds);
  // No corrupt bytes reached the design data: every step with outputs
  // re-ran. (The Simulate step produces nothing, so its entry has no
  // blobs to corrupt and legitimately still hits.)
  ASSERT_TRUE(run.committed);
  EXPECT_EQ(run.executed, 5);
  EXPECT_EQ(run.elided, 1);
  EXPECT_EQ(warm.step_cache().stats().shared_hits, 1);
  EXPECT_GE(warm.shared_store()->stats().verify_failures, 1);
  // The re-run republished clean bytes; a third session elides again.
  Papyrus healed(options);
  auto spec3 = healed.database().CreateVersion(
      "spec", BehavioralSpec{8, 8, 12, 77});
  auto cmds3 =
      healed.database().CreateVersion("sim.cmd", TextData{"run 100"});
  FlowRun healed_run = RunFlow(healed, *spec3, *cmds3);
  ASSERT_TRUE(healed_run.committed);
  EXPECT_EQ(healed_run.elided, 6);
}

TEST(SharedStoreSessionTest, SessionCacheSnapshotCarriesContentKeys) {
  // cache.pdc v3 round-trips the content key, so a restored session can
  // republish its entries into a shared store.
  std::string store_dir = FreshDir("snapshot_keys");
  std::string snap_dir = FreshDir("snapshot_keys_snap");
  SessionOptions options;
  options.shared_store_path = store_dir;
  {
    Papyrus session(options);
    auto spec = session.database().CreateVersion(
        "spec", BehavioralSpec{8, 8, 12, 77});
    auto cmds =
        session.database().CreateVersion("sim.cmd", TextData{"run 100"});
    ASSERT_TRUE(RunFlow(session, *spec, *cmds).committed);
    ASSERT_TRUE(session.SaveSession(snap_dir).ok());
  }
  std::string pdc = ReadAll(fs::path(snap_dir) / "cache.pdc");
  EXPECT_EQ(pdc.rfind("papyrus-cache 3", 0), 0u);
  EXPECT_NE(pdc.find("\nckey "), std::string::npos);

  // Wipe the store; restoring the session republishes all entries.
  fs::remove_all(store_dir);
  Papyrus restored(options);
  ASSERT_TRUE(restored.LoadSession(snap_dir).ok());
  EXPECT_GE(restored.shared_store()->stats().entries, 6);
}

// ---------------------------------------------------------------------------
// Daemon integration: deferred publication + shared stat surface
// ---------------------------------------------------------------------------

TEST(SharedStoreDaemonTest, PublishesOnlyDurablyCommittedDerivations) {
  std::string root = FreshDir("daemon_defer");
  server::DaemonOptions options;
  options.root = root;
  auto daemon = server::PapyrusDaemon::Start(options);
  ASSERT_TRUE(daemon.ok()) << daemon.status().message();

  EXPECT_EQ((*daemon)->shared_store().stats().entries, 0);
  std::string checkin = (*daemon)->HandleLine(
      "checkin ~session=alpha ~path=/proj/shifter ~type=behav"
      " ~inputs=8 ~outputs=8 ~complexity=12 ~seed=77");
  ASSERT_EQ(checkin.rfind("ok", 0), 0u) << checkin;
  checkin = (*daemon)->HandleLine(
      "checkin ~session=alpha ~path=/proj/sim.cmd ~type=text"
      " ~text=run%20100");
  ASSERT_EQ(checkin.rfind("ok", 0), 0u) << checkin;
  std::string submitted = (*daemon)->HandleLine(
      "submit ~session=alpha ~thread=synth"
      " ~template=Structure_Synthesis ~in=/proj/shifter"
      " ~in=/proj/sim.cmd ~out=s.layout ~out=s.stats ~seed=42");
  ASSERT_EQ(submitted.rfind("ok", 0), 0u) << submitted;
  ASSERT_TRUE((*daemon)->Drain().ok());

  // The task executed and saved; its six derivations are now shared.
  CasStats s = (*daemon)->shared_store().stats();
  EXPECT_GE(s.entries, 6);
  std::string stat = (*daemon)->HandleLine("stat");
  EXPECT_NE(stat.find("~cas_entries="), std::string::npos) << stat;
  EXPECT_NE(stat.find("~cas_blobs="), std::string::npos) << stat;
  EXPECT_NE(stat.find("~cas_dedup_bytes="), std::string::npos) << stat;
  ASSERT_TRUE((*daemon)->Shutdown().ok());

  // The store outlives the daemon: a restart recovers it.
  daemon->reset();
  auto restarted = server::PapyrusDaemon::Start(options);
  ASSERT_TRUE(restarted.ok());
  EXPECT_GE((*restarted)->shared_store().stats().entries, 6);
}

}  // namespace
}  // namespace papyrus::storage
