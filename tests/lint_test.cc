#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/clock.h"
#include "cadtools/registry.h"
#include "lint/linter.h"
#include "lint/runtime_checker.h"
#include "lint/wire_analyzer.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "server/queue.h"
#include "server/wire.h"
#include "sprite/network.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus::lint {
namespace {

std::string TemplatesDir() {
  return std::string(PAPYRUS_SOURCE_DIR) + "/templates";
}

std::string BadTemplatesDir() {
  return std::string(PAPYRUS_SOURCE_DIR) + "/tests/data/bad_templates";
}

std::string BadWireDir() {
  return std::string(PAPYRUS_SOURCE_DIR) + "/tests/data/bad_wire";
}

std::string CiWireDir() {
  return std::string(PAPYRUS_SOURCE_DIR) + "/ci";
}

class LintTest : public ::testing::Test {
 protected:
  LintTest() : registry_(cadtools::CreateStandardRegistry()) {
    EXPECT_TRUE(tdl::RegisterThesisTemplates(&library_).ok());
  }

  LintOptions Options() const {
    LintOptions options;
    options.tools = registry_.get();
    options.library = &library_;
    return options;
  }

  std::unique_ptr<cadtools::ToolRegistry> registry_;
  tdl::TemplateLibrary library_;
};

// Acceptance criterion for the shipped template set: every template the
// repo ships lints with zero findings of any severity.
TEST_F(LintTest, ShippedTemplatesLintClean) {
  int linted = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(TemplatesDir())) {
    if (entry.path().extension() != ".tdl") continue;
    SCOPED_TRACE(entry.path().string());
    LintResult result = LintFile(entry.path().string(), Options());
    EXPECT_EQ(result.errors, 0);
    EXPECT_EQ(result.warnings, 0);
    for (const Diagnostic& d : result.diagnostics) {
      ADD_FAILURE() << d.ToString();
    }
    ++linted;
  }
  EXPECT_EQ(linted, 9);
}

// The in-library thesis templates (same flows, registered by name) must
// also pass the task manager's pre-flight hook.
TEST_F(LintTest, ThesisLibraryTemplatesLintClean) {
  for (const std::string& name : library_.TemplateNames()) {
    SCOPED_TRACE(name);
    auto tmpl = library_.Find(name);
    ASSERT_TRUE(tmpl.ok());
    LintResult result = LintTemplate(**tmpl, Options());
    EXPECT_EQ(result.errors, 0);
    for (const Diagnostic& d : result.diagnostics) {
      if (d.severity == Severity::kError) ADD_FAILURE() << d.ToString();
    }
  }
}

struct GoldenCase {
  const char* file;       // under tests/data/bad_templates/
  const char* rule;       // the one rule the template must trigger
  Severity severity;
  int line;               // 1-based; 0 = whole file
};

// One bad template per rule in the catalogue; each must trigger exactly
// its intended rule, at the expected line.
TEST_F(LintTest, GoldenDiagnosticsOneRulePerBadTemplate) {
  const std::vector<GoldenCase> cases = {
      {"write-race.tdl", rules::kWriteRace, Severity::kError, 3},
      {"undefined-input.tdl", rules::kUndefinedInput, Severity::kError, 2},
      {"unknown-tool.tdl", rules::kUnknownTool, Severity::kError, 2},
      {"tool-arity.tdl", rules::kToolArity, Severity::kError, 2},
      {"dead-step.tdl", rules::kDeadStep, Severity::kWarning, 2},
      {"unproduced-output.tdl", rules::kUnproducedOutput, Severity::kError,
       0},
      {"dependency-cycle.tdl", rules::kDependencyCycle, Severity::kError,
       2},
      {"unresolved-subtask.tdl", rules::kUnresolvedSubtask,
       Severity::kError, 3},
      {"subtask-arity.tdl", rules::kSubtaskArity, Severity::kError, 3},
      {"duplicate-step-id.tdl", rules::kDuplicateStepId, Severity::kError,
       3},
      {"undefined-step-ref.tdl", rules::kUndefinedStepRef,
       Severity::kError, 2},
      {"parse-error.tdl", rules::kParseError, Severity::kError, 3},
  };
  for (const GoldenCase& c : cases) {
    const std::string path = BadTemplatesDir() + "/" + c.file;
    SCOPED_TRACE(path);
    LintResult result = LintFile(path, Options());
    ASSERT_EQ(result.diagnostics.size(), 1u)
        << [&] {
             std::string all;
             for (const Diagnostic& d : result.diagnostics) {
               all += d.ToString() + "\n";
             }
             return all;
           }();
    const Diagnostic& d = result.diagnostics.front();
    EXPECT_EQ(d.rule, c.rule);
    EXPECT_EQ(d.severity, c.severity);
    EXPECT_EQ(d.line, c.line);
    EXPECT_EQ(d.file, path);
  }
}

TEST_F(LintTest, BadHeaderYieldsSingleParseError) {
  LintResult result = LintScript("this is not a template", Options());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics.front().rule, rules::kParseError);
  EXPECT_EQ(result.diagnostics.front().line, 1);
  EXPECT_FALSE(result.ok());
}

TEST_F(LintTest, DiagnosticRenderingIsStable) {
  LintResult result =
      LintFile(BadTemplatesDir() + "/undefined-input.tdl", Options());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const Diagnostic& d = result.diagnostics.front();
  // gcc-style: file:line:col: severity[rule]: message
  EXPECT_NE(d.ToString().find(":2:"), std::string::npos);
  EXPECT_NE(d.ToString().find("error[undefined-input]"),
            std::string::npos);
  // JSON form carries the same fields.
  const std::string json = d.ToJson();
  EXPECT_NE(json.find("\"rule\":\"undefined-input\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
}

// Deterministic unit coverage of the happens-before checker: feed it a
// dispatch trace by hand against the graph of a two-step chain.
TEST_F(LintTest, RuntimeCheckerFlagsConcurrentWritersAndOrderedPairs) {
  LintResult result = LintScript(
      "task Chain {In} {Out}\n"
      "step A {In} {mid} {espresso In}\n"
      "step B {mid} {Out} {pleasure mid}\n",
      Options());
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.graph, nullptr);

  {
    // Legal serial execution: no findings.
    RuntimeFlowChecker checker(result.graph);
    checker.OnDispatch(1, "", "A", {"mid"});
    checker.OnSettle(1);
    checker.OnDispatch(2, "", "B", {"Out"});
    checker.OnSettle(2);
    EXPECT_EQ(checker.violations(), 0);
  }
  {
    // A and B are statically ordered (B consumes A's output); dispatching
    // them concurrently contradicts the flow graph.
    RuntimeFlowChecker checker(result.graph);
    checker.OnDispatch(1, "", "A", {"mid"});
    checker.OnDispatch(2, "", "B", {"Out"});
    EXPECT_GT(checker.violations(), 0);
    ASSERT_FALSE(checker.violation_messages().empty());
    EXPECT_NE(checker.violation_messages().front().find("statically"),
              std::string::npos);
  }
  {
    // Two concurrently-active writers of one object name race.
    RuntimeFlowChecker checker(result.graph);
    checker.OnDispatch(1, "", "W0", {"clash"});
    checker.OnDispatch(2, "", "W1", {"clash"});
    EXPECT_GT(checker.violations(), 0);
    EXPECT_NE(checker.violation_messages().front().find(
                  "concurrent writers"),
              std::string::npos);
  }
}

// End-to-end: a loop-generated template whose step names are substituted
// at run time evades the static write-race rule (the linter demotes flow
// rules to warnings), but the runtime checker catches the two concurrent
// writers the moment the scheduler dispatches them.
TEST_F(LintTest, RuntimeCheckerCatchesRaceThatStaticAnalysisCannotSee) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 4);
  ASSERT_TRUE(library_
                  .Add("task Racy {In} {Out}\n"
                       "for {set i 0} {$i < 2} {incr i} {\n"
                       "step W$i {In} {clash} {espresso In}\n"
                       "}\n"
                       "step Final {clash} {Out} {pleasure clash}\n")
                  .ok());
  // Static analysis cannot prove the race: the writers only exist after
  // run-time substitution, so pre-flight must not refuse the template.
  auto tmpl = library_.Find("Racy");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_TRUE(LintTemplate(**tmpl, Options()).ok());

  task::TaskManager manager(&db, registry_.get(), &network, &library_);
  auto in = db.CreateVersion(
      "net", oct::LogicNetwork{.num_inputs = 4, .num_outputs = 2,
                               .minterms = 9, .seed = 5});
  ASSERT_TRUE(in.ok());
  task::TaskInvocation inv;
  inv.template_name = "Racy";
  inv.inputs = {*in};
  inv.output_names = {"net.out"};
  manager.Invoke(inv);
  EXPECT_GT(manager.flow_violations(), 0);
}

// The fault-free thesis flow dispatches in static order: the checker must
// stay silent end to end.
TEST_F(LintTest, RuntimeCheckerSilentOnCleanThesisFlow) {
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  sprite::Network network(&clock, 4);
  task::TaskManager manager(&db, registry_.get(), &network, &library_);
  auto behav =
      db.CreateVersion("shifter", oct::BehavioralSpec{8, 8, 12, 77});
  auto cmds = db.CreateVersion("sim.cmd", oct::TextData{"run 100"});
  ASSERT_TRUE(behav.ok() && cmds.ok());
  task::TaskInvocation inv;
  inv.template_name = "Structure_Synthesis";
  inv.inputs = {*behav, *cmds};
  inv.output_names = {"shifter.layout", "shifter.stats"};
  auto rec = manager.Invoke(inv);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(manager.flow_violations(), 0);
}

class WireLintTest : public LintTest {
 protected:
  WireAnalyzerOptions WireOptions() const {
    WireAnalyzerOptions options;
    options.tools = registry_.get();
    options.library = &library_;
    return options;
  }
};

// One bad script per wire rule; each must trigger exactly its intended
// rule, at the expected line, with a stable id.
TEST_F(WireLintTest, GoldenDiagnosticsOneRulePerBadScript) {
  const std::vector<GoldenCase> cases = {
      {"parse_error.wire", rules::kWireParseError, Severity::kError, 2},
      {"unknown_verb.wire", rules::kWireUnknownVerb, Severity::kError, 2},
      {"missing_field.wire", rules::kWireMissingField, Severity::kError,
       2},
      {"bad_field.wire", rules::kWireBadField, Severity::kError, 2},
      {"unknown_session.wire", rules::kWireUnknownSession,
       Severity::kError, 3},
      {"unknown_template.wire", rules::kWireUnknownTemplate,
       Severity::kError, 4},
      {"task_arity.wire", rules::kWireTaskArity, Severity::kError, 5},
      {"run_before_checkin.wire", rules::kWireRunBeforeCheckin,
       Severity::kError, 4},
      {"cross_session_input.wire", rules::kWireCrossSessionInput,
       Severity::kError, 5},
      {"write_race.wire", rules::kWireWriteRace, Severity::kError, 7},
      {"duplicate_task.wire", rules::kWireDuplicateTask,
       Severity::kWarning, 6},
      {"after_shutdown.wire", rules::kWireAfterShutdown, Severity::kError,
       4},
      {"drain_misuse.wire", rules::kWireDrainMisuse, Severity::kWarning,
       4},
  };
  // The corpus and the case table must cover each other exactly.
  size_t corpus_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(BadWireDir())) {
    if (entry.path().extension() == ".wire") ++corpus_files;
  }
  EXPECT_EQ(corpus_files, cases.size());

  for (const GoldenCase& c : cases) {
    const std::string path = BadWireDir() + "/" + c.file;
    SCOPED_TRACE(path);
    WireAnalysis analysis = AnalyzeWireFile(path, WireOptions());
    ASSERT_EQ(analysis.diagnostics.size(), 1u)
        << [&] {
             std::string all;
             for (const Diagnostic& d : analysis.diagnostics) {
               all += d.ToString() + "\n";
             }
             return all;
           }();
    const Diagnostic& d = analysis.diagnostics.front();
    EXPECT_EQ(d.rule, c.rule);
    EXPECT_EQ(d.severity, c.severity);
    EXPECT_EQ(d.line, c.line);
    EXPECT_EQ(d.file, path);
    EXPECT_EQ(analysis.errors, c.severity == Severity::kError ? 1 : 0);
    EXPECT_EQ(analysis.warnings, c.severity == Severity::kWarning ? 1 : 0);
    EXPECT_EQ(analysis.ok(), c.severity != Severity::kError);
  }
}

// The CI workloads drive the real daemon; the analyzer must pass them
// with zero errors and zero warnings (notes are fine — the drain-only
// script legitimately drains a root it cannot see).
TEST_F(WireLintTest, CiWorkloadsAnalyzeClean) {
  int analyzed = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(CiWireDir())) {
    if (entry.path().extension() != ".wire") continue;
    SCOPED_TRACE(entry.path().string());
    WireAnalysis analysis =
        AnalyzeWireFile(entry.path().string(), WireOptions());
    EXPECT_EQ(analysis.errors, 0);
    EXPECT_EQ(analysis.warnings, 0);
    for (const Diagnostic& d : analysis.diagnostics) {
      if (d.severity != Severity::kNote) ADD_FAILURE() << d.ToString();
    }
    ++analyzed;
  }
  EXPECT_GE(analyzed, 2);
}

// An unreadable path is itself a finding, not a crash.
TEST_F(WireLintTest, MissingFileIsAParseError) {
  WireAnalysis analysis =
      AnalyzeWireFile(BadWireDir() + "/no_such.wire", WireOptions());
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics.front().rule, rules::kWireParseError);
  EXPECT_FALSE(analysis.ok());
}

// JSON output round-trip: every diagnostic renders as one JSON object
// carrying the schema fields machine consumers key on.
TEST_F(WireLintTest, DiagnosticsJsonCarriesSchemaFields) {
  WireAnalysis analysis =
      AnalyzeWireFile(BadWireDir() + "/write_race.wire", WireOptions());
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  const std::string json = DiagnosticsToJson(analysis.diagnostics);
  // One array, one element per diagnostic.
  size_t objects = 0;
  for (size_t at = json.find("{\"severity\""); at != std::string::npos;
       at = json.find("{\"severity\"", at + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, analysis.diagnostics.size());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"rule\":\"wire-write-race\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  EXPECT_NE(json.find("\"file\":"), std::string::npos);
}

// The rule catalogue is the docs/LINT.md source of truth: ids must be
// unique, every wire rule must appear with scope "wire", and every
// golden-tested template rule with scope "template".
TEST_F(WireLintTest, RuleCatalogueCoversEveryRuleOnce) {
  const std::vector<RuleInfo>& catalogue = RuleCatalogue();
  std::set<std::string> ids;
  for (const RuleInfo& info : catalogue) {
    EXPECT_TRUE(ids.insert(info.id).second)
        << "duplicate catalogue id " << info.id;
    EXPECT_TRUE(std::string(info.scope) == "template" ||
                std::string(info.scope) == "wire")
        << info.id;
    EXPECT_NE(std::string(info.summary), "") << info.id;
  }
  const std::vector<std::pair<const char*, const char*>> expected = {
      {rules::kParseError, "template"},
      {rules::kWriteRace, "template"},
      {rules::kUndefinedInput, "template"},
      {rules::kUnknownTool, "template"},
      {rules::kToolArity, "template"},
      {rules::kDeadStep, "template"},
      {rules::kUnproducedOutput, "template"},
      {rules::kDependencyCycle, "template"},
      {rules::kUnresolvedSubtask, "template"},
      {rules::kSubtaskArity, "template"},
      {rules::kDuplicateStepId, "template"},
      {rules::kUndefinedStepRef, "template"},
      {rules::kWireParseError, "wire"},
      {rules::kWireUnknownVerb, "wire"},
      {rules::kWireMissingField, "wire"},
      {rules::kWireBadField, "wire"},
      {rules::kWireUnknownSession, "wire"},
      {rules::kWireUnknownTemplate, "wire"},
      {rules::kWireTaskArity, "wire"},
      {rules::kWireRunBeforeCheckin, "wire"},
      {rules::kWireCrossSessionInput, "wire"},
      {rules::kWireWriteRace, "wire"},
      {rules::kWireDuplicateTask, "wire"},
      {rules::kWireAfterShutdown, "wire"},
      {rules::kWireDrainMisuse, "wire"},
  };
  EXPECT_EQ(catalogue.size(), expected.size());
  for (const auto& [id, scope] : expected) {
    auto it = std::find_if(
        catalogue.begin(), catalogue.end(),
        [id = id](const RuleInfo& info) {
          return std::string(info.id) == id;
        });
    ASSERT_NE(it, catalogue.end()) << id << " missing from catalogue";
    EXPECT_EQ(std::string(it->scope), scope) << id;
  }
}

// Daemon startup pre-flight: findings over a recovered queue are
// warnings (the daemon still drains), keyed to queue task ids.
TEST_F(WireLintTest, PreflightFlagsBadQueuedTasks) {
  auto encode = [](const std::string& session,
                   const std::string& template_name,
                   const std::vector<std::string>& ins,
                   const std::vector<std::string>& outs) {
    server::TaskDescription desc;
    desc.session = session;
    desc.thread = "main";
    desc.template_name = template_name;
    desc.input_refs = ins;
    desc.output_names = outs;
    return desc.Encode();
  };
  std::vector<server::QueueTask> tasks;
  server::QueueTask ok_task;
  ok_task.id = 1;
  ok_task.description = encode("alpha", "Padp", {"/a"}, {"x"});
  tasks.push_back(ok_task);
  server::QueueTask ghost;
  ghost.id = 2;
  ghost.description = encode("alpha", "NoSuchFlow", {"/a"}, {"y"});
  tasks.push_back(ghost);
  server::QueueTask arity;
  arity.id = 3;
  arity.description = encode("alpha", "Padp", {"/a", "/b"}, {"z"});
  tasks.push_back(arity);
  server::QueueTask racer;
  racer.id = 4;
  racer.description = encode("alpha", "Padp", {"/b"}, {"x"});
  tasks.push_back(racer);
  server::QueueTask done;  // settled tasks are out of scope
  done.id = 5;
  done.state = server::TaskState::kDone;
  done.description = encode("alpha", "NoSuchFlow", {"/a"}, {"x"});
  tasks.push_back(done);

  std::vector<Diagnostic> findings =
      PreflightQueuedTasks(tasks, &library_, "queue");
  ASSERT_EQ(findings.size(), 3u) << [&] {
    std::string all;
    for (const Diagnostic& d : findings) all += d.ToString() + "\n";
    return all;
  }();
  EXPECT_EQ(findings[0].rule, rules::kWireUnknownTemplate);
  EXPECT_EQ(findings[1].rule, rules::kWireTaskArity);
  EXPECT_EQ(findings[2].rule, rules::kWireWriteRace);
  for (const Diagnostic& d : findings) {
    EXPECT_EQ(d.severity, Severity::kWarning) << d.ToString();
    EXPECT_EQ(d.file, "queue");
  }
  EXPECT_NE(findings[2].message.find("queued task 4"), std::string::npos);
  EXPECT_NE(findings[2].message.find("task 1"), std::string::npos);
}

}  // namespace
}  // namespace papyrus::lint
