#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "activity/persistence.h"
#include "base/clock.h"
#include "base/strings.h"
#include "core/papyrus.h"

namespace papyrus::activity {
namespace {

using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;
using oct::TextData;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(PercentEncodingTest, RoundTripsArbitraryStrings) {
  for (const std::string& s :
       {std::string("plain"), std::string("has space"),
        std::string("new\nline\tand\ttabs"), std::string("100% sure"),
        std::string(""), std::string("%41 literal"),
        std::string("~tilde kept")}) {
    EXPECT_EQ(PercentDecode(PercentEncode(s)), s) << s;
  }
  EXPECT_EQ(PercentEncode("a b"), "a%20b");
}

TEST(DatabasePersistenceTest, RoundTripsAllStateBits) {
  ManualClock clock(5000);
  oct::OctDatabase db(&clock);
  auto v1 = db.CreateVersion("alu layout",  // name with a space
                             Layout{.num_cells = 7,
                                    .area = 123.456,
                                    .delay_ns = 1.25,
                                    .power_mw = 0.5,
                                    .wire_length = 99.5,
                                    .has_pads = true,
                                    .routed = true,
                                    .style = "standard cell",
                                    .seed = 42},
                             "wolfe");
  clock.AdvanceSeconds(10);
  auto v2 = db.CreateVersion("alu layout", Layout{.area = 1.0});
  auto logic = db.CreateVersion(
      "net", LogicNetwork{.num_inputs = 3, .minterms = 9, .seed = 2});
  auto text = db.CreateVersion("report", TextData{"line1\nline2 100%"});
  auto empty = db.CreateVersion("empty", oct::DesignPayload{});
  ASSERT_TRUE(v1.ok() && v2.ok() && logic.ok() && text.ok() && empty.ok());
  ASSERT_TRUE(db.MarkInvisible(*v2).ok());
  ASSERT_TRUE(db.Reclaim(*empty).ok());

  std::string snapshot = SerializeDatabase(db);
  ManualClock clock2(0);
  auto restored = RestoreDatabase(snapshot, &clock2);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ((*restored)->TotalVersionCount(), db.TotalVersionCount());
  EXPECT_EQ((*restored)->TotalLiveBytes(), db.TotalLiveBytes());
  // v1 payload identical.
  auto rec = (*restored)->Get(*v1);
  ASSERT_TRUE(rec.ok());
  const auto& lay = std::get<Layout>((*rec)->payload);
  EXPECT_EQ(lay.num_cells, 7);
  EXPECT_DOUBLE_EQ(lay.area, 123.456);
  EXPECT_TRUE(lay.has_pads);
  EXPECT_EQ(lay.style, "standard cell");
  EXPECT_EQ((*rec)->creator_tool, "wolfe");
  EXPECT_EQ((*rec)->created_micros, 5000);
  // v2 invisible, `empty` reclaimed (and undeletable).
  EXPECT_TRUE((*restored)->Get(*v2).status().IsNotFound());
  EXPECT_TRUE((*restored)->Peek(*v2).ok());
  EXPECT_TRUE((*restored)->MarkVisible(*empty).IsFailedPrecondition());
  // Text payload with newline survived.
  auto trec = (*restored)->Get(*text);
  ASSERT_TRUE(trec.ok());
  EXPECT_EQ(std::get<TextData>((*trec)->payload).text,
            "line1\nline2 100%");
  // Version numbering continues correctly after restore.
  auto v3 = (*restored)->CreateVersion("alu layout", Layout{});
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->version, 3);
}

TEST(DatabasePersistenceTest, FullRangeSeedsRoundTrip) {
  // Tool-derived payload seeds are raw 64-bit hashes, routinely above
  // INT64_MAX; restoring them through a signed parser silently zeroed
  // them (breaking byte-identical re-serialization after recovery).
  constexpr uint64_t kBig = 15855573893945410426ull;
  ManualClock clock(0);
  oct::OctDatabase db(&clock);
  auto logic =
      db.CreateVersion("n", LogicNetwork{.minterms = 3, .seed = kBig});
  auto layout = db.CreateVersion("l", Layout{.num_cells = 1, .seed = kBig});
  auto behav = db.CreateVersion(
      "b", oct::BehavioralSpec{.num_inputs = 1, .seed = kBig});
  ASSERT_TRUE(logic.ok() && layout.ok() && behav.ok());

  std::string snapshot = SerializeDatabase(db);
  ManualClock clock2(0);
  auto restored = RestoreDatabase(snapshot, &clock2);
  ASSERT_TRUE(restored.ok());
  auto lrec = (*restored)->Get(*logic);
  auto yrec = (*restored)->Get(*layout);
  auto brec = (*restored)->Get(*behav);
  ASSERT_TRUE(lrec.ok() && yrec.ok() && brec.ok());
  EXPECT_EQ(std::get<LogicNetwork>((*lrec)->payload).seed, kBig);
  EXPECT_EQ(std::get<Layout>((*yrec)->payload).seed, kBig);
  EXPECT_EQ(std::get<oct::BehavioralSpec>((*brec)->payload).seed, kBig);
  // Re-serialization of the restored database is byte-identical.
  EXPECT_EQ(SerializeDatabase(**restored), snapshot);
}

TEST(DatabasePersistenceTest, RejectsGarbage) {
  ManualClock clock(0);
  EXPECT_FALSE(RestoreDatabase("not a snapshot", &clock).ok());
  EXPECT_FALSE(
      RestoreDatabase("papyrus-db 1\nobject broken\n", &clock).ok());
  // Out-of-order versions rejected.
  EXPECT_FALSE(RestoreDatabase("papyrus-db 1\n"
                               "object ~x 2 ~ 0 0 0 1 0 none\n",
                               &clock)
                   .ok());
}

class ThreadPersistenceTest : public ::testing::Test {
 protected:
  /// Builds a branching thread with annotations, junctions and step
  /// records via a real session, then round-trips it.
  void BuildAndRoundTrip() {
    session_ = std::make_unique<Papyrus>();
    int tid = session_->CreateThread("Shifter design");
    auto p1 = session_->Invoke(tid, "Create_Logic_Description", {},
                               {"s.logic"});
    ASSERT_TRUE(p1.ok());
    auto p2 = session_->Invoke(tid, "Standard_Cell_Place_and_Route",
                               {"s.logic"}, {"s.sc"});
    ASSERT_TRUE(p2.ok());
    ASSERT_TRUE(session_->MoveCursor(tid, *p1).ok());
    auto p3 =
        session_->Invoke(tid, "PLA_Generation", {"s.logic"}, {"s.pla"});
    ASSERT_TRUE(p3.ok());
    auto thread = session_->activity().GetThread(tid);
    ASSERT_TRUE(thread.ok());
    original_ = *thread;
    ASSERT_TRUE(
        original_->Annotate(*p3, "The Start of PLA Approach").ok());

    std::string snapshot = SerializeThread(*original_);
    auto restored = RestoreThread(snapshot, &clock_);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    restored_ = std::move(*restored);
  }

  ManualClock clock_{0};
  std::unique_ptr<Papyrus> session_;
  DesignThread* original_ = nullptr;
  std::unique_ptr<DesignThread> restored_;
};

TEST_F(ThreadPersistenceTest, StructureSurvives) {
  BuildAndRoundTrip();
  EXPECT_EQ(restored_->id(), original_->id());
  EXPECT_EQ(restored_->name(), "Shifter design");
  EXPECT_EQ(restored_->size(), original_->size());
  EXPECT_EQ(restored_->current_cursor(), original_->current_cursor());
  EXPECT_EQ(restored_->cache_interval(), original_->cache_interval());
  EXPECT_EQ(restored_->FrontierCursors().size(),
            original_->FrontierCursors().size());
  // Node-by-node comparison.
  for (const auto& [id, node] : original_->nodes()) {
    auto copy = restored_->GetNode(id);
    ASSERT_TRUE(copy.ok()) << id;
    EXPECT_EQ((*copy)->parents, node.parents);
    EXPECT_EQ((*copy)->children, node.children);
    EXPECT_EQ((*copy)->annotation, node.annotation);
    EXPECT_EQ((*copy)->appended_micros, node.appended_micros);
    EXPECT_EQ((*copy)->record.task_name, node.record.task_name);
    EXPECT_EQ((*copy)->record.inputs, node.record.inputs);
    EXPECT_EQ((*copy)->record.outputs, node.record.outputs);
    ASSERT_EQ((*copy)->record.steps.size(), node.record.steps.size());
    for (size_t i = 0; i < node.record.steps.size(); ++i) {
      EXPECT_EQ((*copy)->record.steps[i].invocation,
                node.record.steps[i].invocation);
      EXPECT_EQ((*copy)->record.steps[i].outputs,
                node.record.steps[i].outputs);
      EXPECT_EQ((*copy)->record.steps[i].exit_status,
                node.record.steps[i].exit_status);
    }
  }
}

TEST_F(ThreadPersistenceTest, BehaviourSurvives) {
  BuildAndRoundTrip();
  // Data scope agrees.
  auto a = original_->DataScope();
  auto b = restored_->DataScope();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Annotation access works on the restored thread.
  auto found = restored_->FindAnnotation("The Start of PLA Approach");
  ASSERT_TRUE(found.ok());
  // Appending continues with fresh node ids.
  task::TaskHistoryRecord rec;
  rec.task_name = "post-recovery";
  auto node = restored_->Append(std::move(rec),
                                restored_->current_cursor());
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(original_->HasNode(*node));  // id beyond the original's
  EXPECT_GT(*node, original_->size());
}

TEST_F(ThreadPersistenceTest, FullSessionCrashRecovery) {
  BuildAndRoundTrip();
  // Also persist the database and verify the restored pair still resolves
  // names as before the "crash".
  std::string db_snapshot = SerializeDatabase(session_->database());
  auto db = RestoreDatabase(db_snapshot, &clock_);
  ASSERT_TRUE(db.ok());
  auto id = restored_->ResolveInScope("s.pla");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE((*db)->Get(*id).ok());
  // The abandoned branch's objects are also reachable after rework.
  ASSERT_TRUE(restored_->MoveCursor(2).ok());
  auto sc = restored_->ResolveInScope("s.sc");
  ASSERT_TRUE(sc.ok());
  EXPECT_TRUE((*db)->Get(*sc).ok());
}

TEST(PercentEncodingTest, StrictDecoderRejectsMalformedEscapes) {
  // Valid input decodes identically to the lenient decoder.
  for (const std::string& s :
       {std::string("plain"), std::string("has space"),
        std::string("new\nline"), std::string("100% sure")}) {
    auto dec = PercentDecodeStrict(PercentEncode(s));
    ASSERT_TRUE(dec.ok()) << s;
    EXPECT_EQ(*dec, s);
  }
  // Malformed escapes are errors, not pass-throughs.
  EXPECT_TRUE(PercentDecodeStrict("%G1").status().IsInvalidArgument());
  EXPECT_TRUE(PercentDecodeStrict("%1G").status().IsInvalidArgument());
  EXPECT_TRUE(PercentDecodeStrict("abc%").status().IsInvalidArgument());
  EXPECT_TRUE(PercentDecodeStrict("abc%4").status().IsInvalidArgument());
  EXPECT_TRUE(PercentDecodeStrict("ok%20fine").ok());
  // The lenient decoder keeps its historical pass-through behavior.
  EXPECT_EQ(PercentDecode("%G1"), "%G1");
}

class CorruptionRecoveryTest : public ::testing::Test {
 protected:
  /// A database with several objects, serialized in v2 format.
  std::string MakeSnapshot(int objects) {
    ManualClock clock(0);
    oct::OctDatabase db(&clock);
    for (int i = 0; i < objects; ++i) {
      auto v = db.CreateVersion("obj" + std::to_string(i),
                                TextData{"payload " + std::to_string(i)});
      EXPECT_TRUE(v.ok());
    }
    return SerializeDatabase(db);
  }
  ManualClock clock_{0};
};

TEST_F(CorruptionRecoveryTest, CleanSnapshotReportsNoDamage) {
  std::string snap = MakeSnapshot(5);
  RestoreStats stats;
  auto db = RestoreDatabase(snap, &clock_, &stats);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(stats.records_restored, 5);
  EXPECT_EQ(stats.records_dropped, 0);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ((*db)->TotalVersionCount(), 5);
}

TEST_F(CorruptionRecoveryTest, TruncationRecoversThePrefix) {
  std::string snap = MakeSnapshot(6);
  // Cut the file mid-way: keep the header and roughly half the records.
  size_t cut = snap.size() / 2;
  std::string truncated = snap.substr(0, snap.rfind('\n', cut) + 1);
  RestoreStats stats;
  auto db = RestoreDatabase(truncated, &clock_, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_GT(stats.records_restored, 0);
  EXPECT_LT(stats.records_restored, 6);
  EXPECT_EQ((*db)->TotalVersionCount(), stats.records_restored);
}

TEST_F(CorruptionRecoveryTest, BitFlipDropsTheDamagedSuffix) {
  std::string snap = MakeSnapshot(6);
  // Flip a byte inside the third record line's body.
  std::vector<std::string> lines = Split(snap, '\n');
  ASSERT_GT(lines.size(), 4u);
  std::string& victim = lines[3];  // header + two intact records first
  victim[victim.size() / 2] ^= 0x20;
  std::string damaged = Join(lines, "\n");
  RestoreStats stats;
  auto db = RestoreDatabase(damaged, &clock_, &stats);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.records_restored, 2);
  EXPECT_EQ(stats.records_dropped, 4);
  EXPECT_EQ((*db)->TotalVersionCount(), 2);
}

TEST_F(CorruptionRecoveryTest, LegacyV1SnapshotsStillRestore) {
  ManualClock clock(0);
  EXPECT_TRUE(RestoreDatabase("papyrus-db 1\n"
                              "object ~x 1 ~ 0 0 4 1 0 none\n"
                              "end\n",
                              &clock)
                  .ok());
  EXPECT_TRUE(RestoreThread("papyrus-thread 1\nmeta 3 ~legacy 0 8\nend\n",
                            &clock)
                  .ok());
}

TEST_F(CorruptionRecoveryTest, DamagedThreadPrunesDanglingLinks) {
  // Build a real two-node thread, then chop the snapshot so the second
  // node is lost; the survivor's child link and the cursor must not
  // reference the dropped node.
  Papyrus session;
  int tid = session.CreateThread("chopped");
  auto p1 =
      session.Invoke(tid, "Create_Logic_Description", {}, {"c.logic"});
  ASSERT_TRUE(p1.ok());
  auto p2 = session.Invoke(tid, "PLA_Generation", {"c.logic"}, {"c.pla"});
  ASSERT_TRUE(p2.ok());
  auto thread = session.activity().GetThread(tid);
  ASSERT_TRUE(thread.ok());
  std::string snap = SerializeThread(**thread);

  // Drop every line belonging to node p2 and the trailer.
  std::vector<std::string> lines = Split(snap, '\n');
  std::string marker = "node " + std::to_string(*p2) + ' ';
  size_t keep = lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (StartsWith(lines[i], marker)) {
      keep = i;
      break;
    }
  }
  ASSERT_LT(keep, lines.size());
  lines.resize(keep);
  std::string damaged = Join(lines, "\n") + "\n";

  RestoreStats stats;
  auto restored = RestoreThread(damaged, &clock_, &stats);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_TRUE((*restored)->HasNode(*p1));
  EXPECT_FALSE((*restored)->HasNode(*p2));
  auto node = (*restored)->GetNode(*p1);
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE((*node)->children.empty());
  // The cursor pointed at p2; it falls back to a valid point.
  EXPECT_NE((*restored)->current_cursor(), *p2);
  // The recovered thread still works.
  EXPECT_TRUE((*restored)->DataScope().ok());
}

TEST(AtomicSaveTest, SaveLeavesNoTempFilesAndRoundTrips) {
  namespace fs = std::filesystem;
  fs::path dir =
      fs::temp_directory_path() / "papyrus_atomic_save_test";
  fs::remove_all(dir);

  Papyrus session;
  int tid = session.CreateThread("saved");
  auto p1 =
      session.Invoke(tid, "Create_Logic_Description", {}, {"a.logic"});
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(session.SaveSession(dir.string()).ok());
  // Save again over the existing snapshot: the rename path must handle
  // replacement, and no *.tmp litter may remain.
  ASSERT_TRUE(session.SaveSession(dir.string()).ok());
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  Papyrus fresh;
  ASSERT_TRUE(fresh.LoadSession(dir.string()).ok());
  EXPECT_EQ(fresh.last_restore_stats().records_dropped, 0);
  EXPECT_FALSE(fresh.last_restore_stats().truncated);
  EXPECT_EQ(fresh.database().TotalVersionCount(),
            session.database().TotalVersionCount());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Legacy-layout migration through the storage engine

/// The deterministic workload used to compare a migrated legacy snapshot
/// against a session that lived on the engine from the start.
void RunMigrationWorkload(Papyrus& session) {
  int tid = session.CreateThread("mig");
  ASSERT_TRUE(
      session.Invoke(tid, "Create_Logic_Description", {}, {"m.logic"})
          .ok());
  ASSERT_TRUE(session
                  .Invoke(tid, "Standard_Cell_Place_and_Route",
                          {"m.logic"}, {"m.layout"})
                  .ok());
  ASSERT_TRUE(
      session.CheckInObject("/u/alice/notes", TextData{"run 100"}).ok());
}

/// Compacts and returns every live section's bytes, keyed by name.
std::map<std::string, std::string> SectionFingerprint(Papyrus& session) {
  std::map<std::string, std::string> fp;
  EXPECT_TRUE(session.SaveGeneration().ok());
  for (const auto& [name, file] :
       session.store()->CurrentSectionFiles()) {
    auto text = session.store()->ReadSection(name);
    EXPECT_TRUE(text.ok()) << name << ": " << text.status().message();
    fp[name] = text.ok() ? *text : "<unreadable>";
  }
  return fp;
}

std::string MigrationDir(const std::string& name) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / ("papyrus_mig_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

TEST(LegacyMigrationTest, FlatLayoutRestoresByteIdenticallyAndMigrates) {
  namespace fs = std::filesystem;
  // Reference: the same work done on the engine from the start.
  std::map<std::string, std::string> reference;
  {
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(MigrationDir("flat_ref")).ok());
    RunMigrationWorkload(session);
    reference = SectionFingerprint(session);
  }
  ASSERT_GT(reference.size(), 0u);

  // A pre-engine session saved with the PR 1 whole-file flat layout.
  std::string dir = MigrationDir("flat_legacy");
  {
    Papyrus session;
    RunMigrationWorkload(session);
    ASSERT_TRUE(session.SaveSession(dir).ok());
  }
  ASSERT_TRUE(fs::exists(fs::path(dir) / "database.pdb"));

  // Opening through the engine migrates: the restored state serializes
  // byte-identically to the never-legacy reference, and the next open
  // finds an engine layout.
  {
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(dir).ok());
    EXPECT_EQ(session.last_restore_stats().records_dropped, 0);
    std::map<std::string, std::string> migrated =
        SectionFingerprint(session);
    EXPECT_EQ(migrated, reference);
  }
  EXPECT_NE(ReadAll((fs::path(dir) / "CURRENT").string())
                .find("manifest."),
            std::string::npos);
  {
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(dir).ok());
    EXPECT_TRUE(
        session.database().LatestVisible("m.layout").ok());
  }
}

TEST(LegacyMigrationTest, SnapDirLayoutMigratesAndContinuesNumbering) {
  namespace fs = std::filesystem;
  std::map<std::string, std::string> reference;
  {
    Papyrus session;
    ASSERT_TRUE(session.OpenStorage(MigrationDir("snap_ref")).ok());
    RunMigrationWorkload(session);
    reference = SectionFingerprint(session);
  }

  // A pre-engine daemon session: CURRENT -> snap.<N>/ of whole files.
  std::string dir = MigrationDir("snap_legacy");
  {
    Papyrus session;
    RunMigrationWorkload(session);
    ASSERT_TRUE(
        session.SaveSession((fs::path(dir) / "snap.7").string()).ok());
    std::ofstream current(fs::path(dir) / "CURRENT",
                          std::ios::binary | std::ios::trunc);
    current << "snap.7\n";
  }

  Papyrus session;
  ASSERT_TRUE(session.OpenStorage(dir).ok());
  std::map<std::string, std::string> migrated =
      SectionFingerprint(session);
  EXPECT_EQ(migrated, reference);
  // Engine generations continue after the legacy number, and the
  // migrated snapshot directory is pruned once a manifest owns the data.
  EXPECT_EQ(session.store()->generation(), 8u);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "snap.7"));
}

TEST(ThreadPersistenceErrorTest, RejectsGarbage) {
  ManualClock clock(0);
  EXPECT_FALSE(RestoreThread("nope", &clock).ok());
  EXPECT_FALSE(RestoreThread("papyrus-thread 1\nnode 1 0 0 0 ~\n", &clock)
                   .ok());  // missing meta
  EXPECT_FALSE(
      RestoreThread("papyrus-thread 1\nmeta 1 ~t 99 8\n", &clock).ok());
  // ^ cursor points at a missing node
}

}  // namespace
}  // namespace papyrus::activity
