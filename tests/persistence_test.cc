#include <gtest/gtest.h>

#include "activity/persistence.h"
#include "base/clock.h"
#include "base/strings.h"
#include "core/papyrus.h"

namespace papyrus::activity {
namespace {

using oct::Layout;
using oct::LogicNetwork;
using oct::ObjectId;
using oct::TextData;

TEST(PercentEncodingTest, RoundTripsArbitraryStrings) {
  for (const std::string& s :
       {std::string("plain"), std::string("has space"),
        std::string("new\nline\tand\ttabs"), std::string("100% sure"),
        std::string(""), std::string("%41 literal"),
        std::string("~tilde kept")}) {
    EXPECT_EQ(PercentDecode(PercentEncode(s)), s) << s;
  }
  EXPECT_EQ(PercentEncode("a b"), "a%20b");
}

TEST(DatabasePersistenceTest, RoundTripsAllStateBits) {
  ManualClock clock(5000);
  oct::OctDatabase db(&clock);
  auto v1 = db.CreateVersion("alu layout",  // name with a space
                             Layout{.num_cells = 7,
                                    .area = 123.456,
                                    .delay_ns = 1.25,
                                    .power_mw = 0.5,
                                    .wire_length = 99.5,
                                    .has_pads = true,
                                    .routed = true,
                                    .style = "standard cell",
                                    .seed = 42},
                             "wolfe");
  clock.AdvanceSeconds(10);
  auto v2 = db.CreateVersion("alu layout", Layout{.area = 1.0});
  auto logic = db.CreateVersion(
      "net", LogicNetwork{.num_inputs = 3, .minterms = 9, .seed = 2});
  auto text = db.CreateVersion("report", TextData{"line1\nline2 100%"});
  auto empty = db.CreateVersion("empty", oct::DesignPayload{});
  ASSERT_TRUE(v1.ok() && v2.ok() && logic.ok() && text.ok() && empty.ok());
  ASSERT_TRUE(db.MarkInvisible(*v2).ok());
  ASSERT_TRUE(db.Reclaim(*empty).ok());

  std::string snapshot = SerializeDatabase(db);
  ManualClock clock2(0);
  auto restored = RestoreDatabase(snapshot, &clock2);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ((*restored)->TotalVersionCount(), db.TotalVersionCount());
  EXPECT_EQ((*restored)->TotalLiveBytes(), db.TotalLiveBytes());
  // v1 payload identical.
  auto rec = (*restored)->Get(*v1);
  ASSERT_TRUE(rec.ok());
  const auto& lay = std::get<Layout>((*rec)->payload);
  EXPECT_EQ(lay.num_cells, 7);
  EXPECT_DOUBLE_EQ(lay.area, 123.456);
  EXPECT_TRUE(lay.has_pads);
  EXPECT_EQ(lay.style, "standard cell");
  EXPECT_EQ((*rec)->creator_tool, "wolfe");
  EXPECT_EQ((*rec)->created_micros, 5000);
  // v2 invisible, `empty` reclaimed (and undeletable).
  EXPECT_TRUE((*restored)->Get(*v2).status().IsNotFound());
  EXPECT_TRUE((*restored)->Peek(*v2).ok());
  EXPECT_TRUE((*restored)->MarkVisible(*empty).IsFailedPrecondition());
  // Text payload with newline survived.
  auto trec = (*restored)->Get(*text);
  ASSERT_TRUE(trec.ok());
  EXPECT_EQ(std::get<TextData>((*trec)->payload).text,
            "line1\nline2 100%");
  // Version numbering continues correctly after restore.
  auto v3 = (*restored)->CreateVersion("alu layout", Layout{});
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->version, 3);
}

TEST(DatabasePersistenceTest, RejectsGarbage) {
  ManualClock clock(0);
  EXPECT_FALSE(RestoreDatabase("not a snapshot", &clock).ok());
  EXPECT_FALSE(
      RestoreDatabase("papyrus-db 1\nobject broken\n", &clock).ok());
  // Out-of-order versions rejected.
  EXPECT_FALSE(RestoreDatabase("papyrus-db 1\n"
                               "object ~x 2 ~ 0 0 0 1 0 none\n",
                               &clock)
                   .ok());
}

class ThreadPersistenceTest : public ::testing::Test {
 protected:
  /// Builds a branching thread with annotations, junctions and step
  /// records via a real session, then round-trips it.
  void BuildAndRoundTrip() {
    session_ = std::make_unique<Papyrus>();
    int tid = session_->CreateThread("Shifter design");
    auto p1 = session_->Invoke(tid, "Create_Logic_Description", {},
                               {"s.logic"});
    ASSERT_TRUE(p1.ok());
    auto p2 = session_->Invoke(tid, "Standard_Cell_Place_and_Route",
                               {"s.logic"}, {"s.sc"});
    ASSERT_TRUE(p2.ok());
    ASSERT_TRUE(session_->MoveCursor(tid, *p1).ok());
    auto p3 =
        session_->Invoke(tid, "PLA_Generation", {"s.logic"}, {"s.pla"});
    ASSERT_TRUE(p3.ok());
    auto thread = session_->activity().GetThread(tid);
    ASSERT_TRUE(thread.ok());
    original_ = *thread;
    ASSERT_TRUE(
        original_->Annotate(*p3, "The Start of PLA Approach").ok());

    std::string snapshot = SerializeThread(*original_);
    auto restored = RestoreThread(snapshot, &clock_);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    restored_ = std::move(*restored);
  }

  ManualClock clock_{0};
  std::unique_ptr<Papyrus> session_;
  DesignThread* original_ = nullptr;
  std::unique_ptr<DesignThread> restored_;
};

TEST_F(ThreadPersistenceTest, StructureSurvives) {
  BuildAndRoundTrip();
  EXPECT_EQ(restored_->id(), original_->id());
  EXPECT_EQ(restored_->name(), "Shifter design");
  EXPECT_EQ(restored_->size(), original_->size());
  EXPECT_EQ(restored_->current_cursor(), original_->current_cursor());
  EXPECT_EQ(restored_->cache_interval(), original_->cache_interval());
  EXPECT_EQ(restored_->FrontierCursors().size(),
            original_->FrontierCursors().size());
  // Node-by-node comparison.
  for (const auto& [id, node] : original_->nodes()) {
    auto copy = restored_->GetNode(id);
    ASSERT_TRUE(copy.ok()) << id;
    EXPECT_EQ((*copy)->parents, node.parents);
    EXPECT_EQ((*copy)->children, node.children);
    EXPECT_EQ((*copy)->annotation, node.annotation);
    EXPECT_EQ((*copy)->appended_micros, node.appended_micros);
    EXPECT_EQ((*copy)->record.task_name, node.record.task_name);
    EXPECT_EQ((*copy)->record.inputs, node.record.inputs);
    EXPECT_EQ((*copy)->record.outputs, node.record.outputs);
    ASSERT_EQ((*copy)->record.steps.size(), node.record.steps.size());
    for (size_t i = 0; i < node.record.steps.size(); ++i) {
      EXPECT_EQ((*copy)->record.steps[i].invocation,
                node.record.steps[i].invocation);
      EXPECT_EQ((*copy)->record.steps[i].outputs,
                node.record.steps[i].outputs);
      EXPECT_EQ((*copy)->record.steps[i].exit_status,
                node.record.steps[i].exit_status);
    }
  }
}

TEST_F(ThreadPersistenceTest, BehaviourSurvives) {
  BuildAndRoundTrip();
  // Data scope agrees.
  auto a = original_->DataScope();
  auto b = restored_->DataScope();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  // Annotation access works on the restored thread.
  auto found = restored_->FindAnnotation("The Start of PLA Approach");
  ASSERT_TRUE(found.ok());
  // Appending continues with fresh node ids.
  task::TaskHistoryRecord rec;
  rec.task_name = "post-recovery";
  auto node = restored_->Append(std::move(rec),
                                restored_->current_cursor());
  ASSERT_TRUE(node.ok());
  EXPECT_FALSE(original_->HasNode(*node));  // id beyond the original's
  EXPECT_GT(*node, original_->size());
}

TEST_F(ThreadPersistenceTest, FullSessionCrashRecovery) {
  BuildAndRoundTrip();
  // Also persist the database and verify the restored pair still resolves
  // names as before the "crash".
  std::string db_snapshot = SerializeDatabase(session_->database());
  auto db = RestoreDatabase(db_snapshot, &clock_);
  ASSERT_TRUE(db.ok());
  auto id = restored_->ResolveInScope("s.pla");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE((*db)->Get(*id).ok());
  // The abandoned branch's objects are also reachable after rework.
  ASSERT_TRUE(restored_->MoveCursor(2).ok());
  auto sc = restored_->ResolveInScope("s.sc");
  ASSERT_TRUE(sc.ok());
  EXPECT_TRUE((*db)->Get(*sc).ok());
}

TEST(ThreadPersistenceErrorTest, RejectsGarbage) {
  ManualClock clock(0);
  EXPECT_FALSE(RestoreThread("nope", &clock).ok());
  EXPECT_FALSE(RestoreThread("papyrus-thread 1\nnode 1 0 0 0 ~\n", &clock)
                   .ok());  // missing meta
  EXPECT_FALSE(
      RestoreThread("papyrus-thread 1\nmeta 1 ~t 99 8\n", &clock).ok());
  // ^ cursor points at a missing node
}

}  // namespace
}  // namespace papyrus::activity
