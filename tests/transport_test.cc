#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/clock.h"
#include "obs/metrics.h"
#include "oct/design_data.h"
#include "server/daemon.h"
#include "server/queue.h"
#include "server/transport.h"
#include "storage/file_lock.h"

namespace papyrus::server {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty scratch directory per test (re-runs included).
std::string FreshDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("transport_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

/// Short socket path: AF_UNIX sun_path caps out near 104 bytes and
/// gtest temp dirs can be deep, so sockets live under /tmp directly.
std::string SocketPath(const std::string& name) {
  fs::path p = fs::path("/tmp") / ("papyrus_" + name + "_" +
                                   std::to_string(::getpid()) + ".sock");
  std::error_code ec;
  fs::remove(p, ec);
  return p.string();
}

// ---------------------------------------------------------------------------
// Line framing over arbitrary fragmentation

TEST(LineFramerTest, EmitsCoalescedLinesInOrder) {
  LineFramer framer;
  auto lines = framer.Feed("ping\nstat\nsubmit ~k=v\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "ping");
  EXPECT_EQ(lines[1].text, "stat");
  EXPECT_EQ(lines[2].text, "submit ~k=v");
  EXPECT_FALSE(lines[0].oversized);
  EXPECT_FALSE(framer.HasPartial());
}

TEST(LineFramerTest, ReassemblesByteWiseFragmentsMidEscape) {
  // One request whose percent-escape straddles every possible read
  // boundary: fed a byte at a time, the framer must stay silent until
  // the newline and then emit the exact original line.
  const std::string line =
      "checkin ~session=alpha ~path=/proj/sim.cmd ~type=text"
      " ~text=run%20100";
  LineFramer framer;
  std::vector<LineFramer::Line> got;
  for (char c : line) {
    auto emitted = framer.Feed(std::string_view(&c, 1));
    EXPECT_TRUE(emitted.empty()) << "emitted before the terminator";
    EXPECT_TRUE(framer.HasPartial());
    got.insert(got.end(), emitted.begin(), emitted.end());
  }
  auto emitted = framer.Feed("\n");
  got.insert(got.end(), emitted.begin(), emitted.end());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].text, line);
  EXPECT_FALSE(got[0].oversized);
  EXPECT_FALSE(framer.HasPartial());
}

TEST(LineFramerTest, SplitsAcrossFeedsAndCoalescesWithinOne) {
  LineFramer framer;
  auto first = framer.Feed("pi");
  EXPECT_TRUE(first.empty());
  // The closing fragment completes one request and carries two more.
  auto rest = framer.Feed("ng\nstat\nta");
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].text, "ping");
  EXPECT_EQ(rest[1].text, "stat");
  EXPECT_TRUE(framer.HasPartial());
  auto last = framer.Feed("sk ~id=1\n");
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].text, "task ~id=1");
}

TEST(LineFramerTest, OversizedLineIsDiscardedAndFramingRecovers) {
  LineFramer framer(/*max_line_bytes=*/32);
  // 100 bytes without a newline: over budget, the framer flips to
  // discard mode instead of buffering without bound.
  auto silent = framer.Feed(std::string(100, 'x'));
  EXPECT_TRUE(silent.empty());
  EXPECT_TRUE(framer.HasPartial());
  // More of the same line, still discarding.
  EXPECT_TRUE(framer.Feed(std::string(50, 'y')).empty());
  // The terminator surfaces exactly one oversized marker, and the next
  // line parses normally — one hostile client request, one error.
  auto lines = framer.Feed("zzz\nping\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].oversized);
  EXPECT_EQ(lines[1].text, "ping");
  EXPECT_FALSE(lines[1].oversized);
  EXPECT_FALSE(framer.HasPartial());
}

TEST(LineFramerTest, LineExactlyAtTheLimitPasses) {
  LineFramer framer(/*max_line_bytes=*/8);
  auto ok = framer.Feed("12345678\n");
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_FALSE(ok[0].oversized);
  auto over = framer.Feed("123456789\n");
  ASSERT_EQ(over.size(), 1u);
  EXPECT_TRUE(over[0].oversized);
}

// ---------------------------------------------------------------------------
// File locks (the shared-queue and session-ownership primitive)

TEST(FileLockTest, ExcludesSecondHolderUntilReleased) {
  std::string dir = FreshDir("filelock");
  std::string path = dir + "/x.lock";
  auto first = storage::FileLock::TryAcquire(path);
  ASSERT_TRUE(first.ok()) << first.status().message();

  auto blocked = storage::FileLock::TryAcquire(path);
  EXPECT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsUnavailable())
      << blocked.status().ToString();

  first->reset();  // release
  auto second = storage::FileLock::TryAcquire(path);
  EXPECT_TRUE(second.ok()) << second.status().message();
}

// ---------------------------------------------------------------------------
// Fair (weighted round-robin) claim order

/// Enqueues `per_session` tasks into each named session, in session
/// round-robin id order (a1 b1 a2 b2 ...) so ids alone don't encode the
/// expected claim order.
void EnqueueMatrix(PersistentQueue& q,
                   const std::vector<std::string>& sessions,
                   int per_session) {
  for (int k = 0; k < per_session; ++k) {
    for (const std::string& s : sessions) {
      ASSERT_TRUE(q.Enqueue(s, "task").ok());
    }
  }
}

std::vector<std::string> ClaimAllSessions(PersistentQueue& q,
                                          const ClaimPolicy& policy) {
  std::vector<std::string> order;
  while (true) {
    auto claimed = q.Claim("w", 1'000'000, policy);
    EXPECT_TRUE(claimed.ok()) << claimed.status().message();
    if (!claimed.ok() || !claimed->has_value()) break;
    order.push_back((*claimed)->session);
    EXPECT_TRUE(q.Complete((*claimed)->id, "w").ok());
  }
  return order;
}

TEST(FairQueueTest, RotatesAcrossSessionsInsteadOfFifo) {
  std::string dir = FreshDir("fair_rotate");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  // alpha floods 6 tasks first, then beta submits 2: global FIFO would
  // starve beta behind all of alpha's.
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE((*queue)->Enqueue("alpha", "t").ok());
  }
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE((*queue)->Enqueue("beta", "t").ok());
  }
  ClaimPolicy fair;
  fair.fair = true;
  auto order = ClaimAllSessions(**queue, fair);
  ASSERT_EQ(order.size(), 8u);
  // beta's two tasks are served within the first four claims, not after
  // alpha drains.
  int beta_rank = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "beta") beta_rank = static_cast<int>(i);
  }
  EXPECT_LT(beta_rank, 4) << "beta starved behind alpha's backlog";
}

TEST(FairQueueTest, PerSessionClaimOrderIsAlwaysAscendingId) {
  // Whatever the cross-session interleave, each session's own tasks are
  // claimed in id order — the invariant that makes fair-dispatch
  // snapshots byte-identical to FIFO ones.
  std::string dir = FreshDir("fair_session_order");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  EnqueueMatrix(**queue, {"alpha", "beta", "gamma"}, 4);
  ClaimPolicy fair;
  fair.fair = true;
  std::map<std::string, std::vector<int64_t>> by_session;
  while (true) {
    auto claimed = (*queue)->Claim("w", 1'000'000, fair);
    ASSERT_TRUE(claimed.ok());
    if (!claimed->has_value()) break;
    by_session[(*claimed)->session].push_back((*claimed)->id);
    ASSERT_TRUE((*queue)->Complete((*claimed)->id, "w").ok());
  }
  ASSERT_EQ(by_session.size(), 3u);
  for (const auto& [session, ids] : by_session) {
    EXPECT_EQ(ids.size(), 4u) << session;
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_LT(ids[i - 1], ids[i]) << session << " out of id order";
    }
  }
  // The claim log records the same grant order the claims returned.
  EXPECT_EQ((*queue)->claim_log().size(), 12u);
}

TEST(FairQueueTest, WeightsServeMultipleTasksPerRotationStop) {
  std::string dir = FreshDir("fair_weights");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  EnqueueMatrix(**queue, {"alpha", "beta"}, 6);
  std::map<std::string, int> weights{{"alpha", 2}};
  ClaimPolicy fair;
  fair.fair = true;
  fair.weights = &weights;
  auto order = ClaimAllSessions(**queue, fair);
  ASSERT_EQ(order.size(), 12u);
  // Weight 2 vs 1: within any rotation window alpha gets two claims for
  // each of beta's one, until alpha drains and beta serves back-to-back.
  int alpha_runs = 0;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    if (order[i] == "alpha" && order[i + 1] == "alpha") ++alpha_runs;
  }
  EXPECT_GE(alpha_runs, 3) << "weight=2 never produced alpha pairs";
  // All tasks of both sessions were eventually served.
  EXPECT_EQ((*queue)->DoneCount(), 12);
}

TEST(FairQueueTest, InflightCapSkipsSaturatedSessions) {
  std::string dir = FreshDir("fair_cap");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  ASSERT_TRUE((*queue)->Enqueue("alpha", "a1").ok());  // id 1
  ASSERT_TRUE((*queue)->Enqueue("alpha", "a2").ok());  // id 2
  ASSERT_TRUE((*queue)->Enqueue("beta", "b1").ok());   // id 3
  ClaimPolicy fair;
  fair.fair = true;
  fair.max_inflight_per_session = 1;

  auto first = (*queue)->Claim("w", 1'000'000, fair);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->session, "alpha");
  EXPECT_EQ((*first)->id, 1);

  // alpha is at its cap: the next claim must come from beta even though
  // alpha holds the lower pending id.
  auto second = (*queue)->Claim("w", 1'000'000, fair);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->session, "beta");

  // Both sessions saturated/empty: nothing claimable until a resolve.
  auto blocked = (*queue)->Claim("w", 1'000'000, fair);
  ASSERT_TRUE(blocked.ok());
  EXPECT_FALSE(blocked->has_value());

  ASSERT_TRUE((*queue)->Complete(1, "w").ok());
  auto third = (*queue)->Claim("w", 1'000'000, fair);
  ASSERT_TRUE(third.ok() && third->has_value());
  EXPECT_EQ((*third)->id, 2);
}

TEST(FairQueueTest, SessionFilterMasksForeignSessions) {
  std::string dir = FreshDir("fair_filter");
  ManualClock clock(0);
  auto queue = PersistentQueue::Open(dir, &clock);
  ASSERT_TRUE(queue.ok());
  EnqueueMatrix(**queue, {"alpha", "beta"}, 2);
  ClaimPolicy fair;
  fair.fair = true;
  fair.session_filter = [](const std::string& s) { return s == "beta"; };
  auto order = ClaimAllSessions(**queue, fair);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "beta");
  EXPECT_EQ(order[1], "beta");
  EXPECT_EQ((*queue)->PendingCount(), 2);  // alpha untouched
}

// ---------------------------------------------------------------------------
// Shared (multi-process) queue mode, exercised with two in-process
// instances — flock is per-open-description, so two PersistentQueue
// objects in one test behave exactly like two worker processes.

TEST(SharedQueueTest, SiblingSeesAppendsAfterRefresh) {
  std::string dir = FreshDir("shared_appends");
  ManualClock clock(0);
  QueueOptions shared{.shared = true};
  auto q1 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q1.ok()) << q1.status().message();
  auto q2 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q2.ok()) << q2.status().message();

  ASSERT_TRUE((*q1)->Enqueue("alpha", "from q1").ok());
  ASSERT_TRUE((*q2)->Refresh().ok());
  EXPECT_EQ((*q2)->PendingCount(), 1);

  // q2 claims the task q1 enqueued; q1 observes the claim.
  auto claimed = (*q2)->Claim("w2", 1'000'000);
  ASSERT_TRUE(claimed.ok() && claimed->has_value());
  ASSERT_TRUE((*q1)->Refresh().ok());
  EXPECT_EQ((*q1)->ClaimedCount(), 1);
  EXPECT_EQ((*q1)->PendingCount(), 0);

  ASSERT_TRUE((*q2)->Complete((*claimed)->id, "w2").ok());
  ASSERT_TRUE((*q1)->Refresh().ok());
  EXPECT_EQ((*q1)->DoneCount(), 1);
}

TEST(SharedQueueTest, StaleOwnerRejectedAcrossInstances) {
  std::string dir = FreshDir("shared_stale");
  ManualClock clock(0);
  QueueOptions shared{.shared = true};
  auto q1 = PersistentQueue::Open(dir, &clock, {}, shared);
  auto q2 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q1.ok() && q2.ok());

  ASSERT_TRUE((*q1)->Enqueue("alpha", "t").ok());
  auto claimed = (*q2)->Claim("w2", 5'000);
  ASSERT_TRUE(claimed.ok() && claimed->has_value());

  // q2 goes quiet past its lease; q1 reaps it and re-claims.
  clock.AdvanceMicros(5'001);
  EXPECT_EQ((*q1)->ExpireLeases(), 1);
  auto reclaimed = (*q1)->Claim("w1", 1'000'000);
  ASSERT_TRUE(reclaimed.ok() && reclaimed->has_value());

  // The original owner wakes up and tries to commit: rejected, exactly
  // the cross-process double-commit the lease protocol must prevent.
  Status late = (*q2)->Complete((*claimed)->id, "w2");
  EXPECT_FALSE(late.ok()) << "stale owner committed across instances";
  ASSERT_TRUE((*q1)->Complete((*reclaimed)->id, "w1").ok());
  EXPECT_EQ((*q1)->DoneCount(), 1);
}

TEST(SharedQueueTest, CheckpointEpochForcesSiblingFullReload) {
  std::string dir = FreshDir("shared_epoch");
  ManualClock clock(0);
  QueueOptions shared{.shared = true};
  auto q1 = PersistentQueue::Open(dir, &clock, {}, shared);
  auto q2 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q1.ok() && q2.ok());

  ASSERT_TRUE((*q1)->Enqueue("alpha", "t1").ok());
  ASSERT_TRUE((*q1)->Enqueue("beta", "t2").ok());
  ASSERT_TRUE((*q2)->Refresh().ok());
  EXPECT_EQ((*q2)->PendingCount(), 2);

  // q1 checkpoints: the journal q2 has been tailing is truncated and
  // the epoch bumps. q2's next sync must detect that and reload from
  // the checkpoint instead of tail-replaying a rewritten file.
  ASSERT_TRUE((*q1)->Checkpoint().ok());
  ASSERT_TRUE((*q2)->Enqueue("gamma", "t3").ok());
  EXPECT_EQ((*q2)->PendingCount(), 3);

  ASSERT_TRUE((*q1)->Refresh().ok());
  EXPECT_EQ((*q1)->PendingCount(), 3);
  auto task = (*q1)->Get(3);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->session, "gamma");
}

TEST(SharedQueueTest, SharedOpenDoesNotRePendLiveClaims) {
  std::string dir = FreshDir("shared_no_repend");
  ManualClock clock(0);
  QueueOptions shared{.shared = true};
  auto q1 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE((*q1)->Enqueue("alpha", "t").ok());
  auto claimed = (*q1)->Claim("w1", 60'000'000);
  ASSERT_TRUE(claimed.ok() && claimed->has_value());

  // A new worker joining the pool must not steal w1's live claim the
  // way an exclusive reopen re-pends orphans.
  auto q2 = PersistentQueue::Open(dir, &clock, {}, shared);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ((*q2)->ClaimedCount(), 1);
  EXPECT_EQ((*q2)->recovered(), 0);
  auto stolen = (*q2)->Claim("w2", 1'000'000);
  ASSERT_TRUE(stolen.ok());
  EXPECT_FALSE(stolen->has_value());
}

// ---------------------------------------------------------------------------
// Daemon session LRU (10k-session scale lever)

TEST(DaemonLruTest, EvictsLeastRecentlyUsedBeyondCap) {
  DaemonOptions options;
  options.root = FreshDir("daemon_lru");
  options.max_open_sessions = 2;
  auto daemon = PapyrusDaemon::Start(options);
  ASSERT_TRUE(daemon.ok()) << daemon.status().message();

  auto checkin = [&](const std::string& session) {
    std::string response = (*daemon)->HandleLine(
        "checkin ~session=" + session +
        " ~path=/proj/x ~type=text ~text=hello");
    EXPECT_EQ(response.rfind("ok", 0), 0u) << response;
  };
  checkin("s1");
  checkin("s2");
  EXPECT_EQ((*daemon)->open_sessions(), 2);
  checkin("s3");  // evicts s1, the least recently used
  EXPECT_EQ((*daemon)->open_sessions(), 2);

  // The evicted session's state was durable: reopening restores it.
  auto reopened = (*daemon)->OpenSession("s1");
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ((*daemon)->open_sessions(), 2);
  ASSERT_TRUE((*daemon)->Shutdown().ok());
}

// ---------------------------------------------------------------------------
// Worker vs. live front-end: cede hosted sessions instead of hanging

TEST(SharedQueueTest, WorkerCedesSessionsHostedByLiveSibling) {
  std::string root = FreshDir("worker_cede");

  // The "front-end": hosts session v (holding its flock) with one
  // pending task it has not been asked to execute yet.
  DaemonOptions front_options;
  front_options.root = root;
  front_options.shared_queue = true;
  auto front = PapyrusDaemon::Start(front_options);
  ASSERT_TRUE(front.ok()) << front.status().message();
  EXPECT_EQ((*front)
                ->HandleLine("checkin ~session=v ~path=/p/cell "
                             "~type=layout ~cells=4 ~area=100 ~seed=1")
                .rfind("ok", 0),
            0u);
  EXPECT_EQ((*front)
                ->HandleLine("submit ~session=v ~thread=t ~template=Padp "
                             "~in=/p/cell ~out=c.padded ~seed=2")
                .rfind("ok", 0),
            0u);

  // A worker on the same root can never claim v while the front-end
  // lives; WorkerDrain must cede and return instead of spinning.
  DaemonOptions worker_options;
  worker_options.root = root;
  worker_options.shared_queue = true;
  auto worker = PapyrusDaemon::Start(worker_options);
  ASSERT_TRUE(worker.ok()) << worker.status().message();
  ASSERT_TRUE((*worker)->WorkerDrain().ok());
  ASSERT_TRUE((*worker)->Shutdown().ok());

  // The task was neither run nor lost: its host still drains it.
  EXPECT_NE((*front)->HandleLine("stat").find("~pending=1"),
            std::string::npos);
  EXPECT_NE((*front)->HandleLine("drain").find("~done=1 ~failed=0"),
            std::string::npos);
  ASSERT_TRUE((*front)->Shutdown().ok());
}

// ---------------------------------------------------------------------------
// Payload seed restore: overflow is a load error, never a silent zero

TEST(SeedRestoreTest, OverflowingSeedIsALoadErrorNotZero) {
  // 2^64 + 1: strtoull saturates with ERANGE. Before the fix this
  // decoded as seed 0, silently diverging every artifact derived from
  // the restored design.
  auto overflowed = oct::ParsePayloadFields(
      {"behavioral", "8", "8", "12", "18446744073709551617"}, 0);
  EXPECT_FALSE(overflowed.ok());
  EXPECT_TRUE(overflowed.status().IsInvalidArgument())
      << overflowed.status().ToString();

  auto garbage = oct::ParsePayloadFields(
      {"logic", "8", "8", "40", "90", "5", "0", "12x"}, 0);
  EXPECT_FALSE(garbage.ok());

  auto negative = oct::ParsePayloadFields(
      {"behavioral", "8", "8", "12", "-3"}, 0);
  EXPECT_FALSE(negative.ok());

  // Full-range values up to UINT64_MAX still round-trip: tool-derived
  // hash seeds routinely exceed INT64_MAX.
  auto max = oct::ParsePayloadFields(
      {"behavioral", "8", "8", "12", "18446744073709551615"}, 0);
  ASSERT_TRUE(max.ok()) << max.status().ToString();
  const auto* spec = std::get_if<oct::BehavioralSpec>(&*max);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->seed, 18446744073709551615ull);
}

// ---------------------------------------------------------------------------
// Socket transport end-to-end: a real daemon behind a real AF_UNIX
// socket, driven by blocking WireClients from the test thread while the
// transport loop runs in its own (engine) thread.

struct SocketHarness {
  explicit SocketHarness(const std::string& name)
      : root(FreshDir(name)), socket_path(SocketPath(name)) {}

  void Start(DaemonOptions extra = {}) {
    DaemonOptions options = extra;
    options.root = root;
    auto started = PapyrusDaemon::Start(options);
    ASSERT_TRUE(started.ok()) << started.status().message();
    daemon = std::move(*started);

    TransportOptions transport_options;
    transport_options.socket_path = socket_path;
    transport_options.serve_stdin = false;  // gtest owns stdin
    transport_options.metrics = daemon->metrics_registry();
    auto listening = SocketTransport::Listen(transport_options);
    ASSERT_TRUE(listening.ok()) << listening.status().message();
    transport = std::move(*listening);

    loop = std::thread([this] {
      Status st = transport->Run(
          [this](const std::string& line, ClientContext* ctx) {
            return daemon->HandleLine(line, ctx);
          },
          [this] {
            return stop.load() || daemon->shut_down() ||
                   daemon->crashed();
          });
      loop_status = st;
    });
  }

  void Join() {
    stop.store(true);
    if (loop.joinable()) loop.join();
    EXPECT_TRUE(loop_status.ok()) << loop_status.ToString();
  }

  ~SocketHarness() {
    stop.store(true);
    if (loop.joinable()) loop.join();
  }

  std::string root;
  std::string socket_path;
  std::unique_ptr<PapyrusDaemon> daemon;
  std::unique_ptr<SocketTransport> transport;
  std::thread loop;
  std::atomic<bool> stop{false};
  Status loop_status;
};

Result<std::string> Call(WireClient& client, const std::string& line) {
  return client.Call(line);
}

TEST(SocketTransportTest, ServesConcurrentClientsWithPerClientContext) {
  SocketHarness h("concurrent_clients");
  h.Start();

  auto c1 = WireClient::Connect(h.socket_path);
  auto c2 = WireClient::Connect(h.socket_path);
  ASSERT_TRUE(c1.ok()) << c1.status().message();
  ASSERT_TRUE(c2.ok()) << c2.status().message();

  // Both clients identify themselves; each connection keeps its own
  // identity and attached session.
  auto r1 = Call(**c1, "connect ~client=alice");
  auto r2 = Call(**c2, "connect ~client=bob");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->find("~client=alice"), std::string::npos) << *r1;
  EXPECT_NE(r2->find("~client=bob"), std::string::npos) << *r2;

  ASSERT_TRUE(
      Call(**c1, "checkin ~session=alpha ~path=/a ~type=text ~text=x")
          .ok());
  auto attach1 = Call(**c1, "attach ~session=alpha");
  ASSERT_TRUE(attach1.ok());
  EXPECT_EQ(attach1->rfind("ok", 0), 0u) << *attach1;

  ASSERT_TRUE(
      Call(**c2, "checkin ~session=beta ~path=/b ~type=text ~text=y")
          .ok());
  auto attach2 = Call(**c2, "attach ~session=beta");
  ASSERT_TRUE(attach2.ok());
  EXPECT_EQ(attach2->rfind("ok", 0), 0u) << *attach2;

  // Unqualified checkins route to each client's own attached session.
  auto k1 = Call(**c1, "checkin ~path=/a2 ~type=text ~text=x2");
  auto k2 = Call(**c2, "checkin ~path=/b2 ~type=text ~text=y2");
  ASSERT_TRUE(k1.ok() && k2.ok());
  EXPECT_EQ(k1->rfind("ok", 0), 0u) << *k1;
  EXPECT_EQ(k2->rfind("ok", 0), 0u) << *k2;

  auto sessions = Call(**c1, "sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_NE(sessions->find("alpha"), std::string::npos);
  EXPECT_NE(sessions->find("beta"), std::string::npos);

  auto bye = Call(**c1, "shutdown");
  ASSERT_TRUE(bye.ok());
  h.Join();
}

TEST(SocketTransportTest, CoalescedRequestsEachGetOneResponse) {
  SocketHarness h("coalesced");
  h.Start();
  auto client = WireClient::Connect(h.socket_path);
  ASSERT_TRUE(client.ok());

  // Three requests in one segment: the daemon must answer three lines,
  // in order.
  ASSERT_TRUE((*client)->SendRaw("ping\nstat\nping\n").ok());
  auto a = (*client)->ReadLine();
  auto b = (*client)->ReadLine();
  auto c = (*client)->ReadLine();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->rfind("ok", 0), 0u) << *a;
  EXPECT_NE(b->find("~pending="), std::string::npos) << *b;
  EXPECT_EQ(c->rfind("ok", 0), 0u) << *c;
  h.Join();
}

TEST(SocketTransportTest, RequestSplitMidEscapeStillParses) {
  SocketHarness h("mid_escape");
  h.Start();
  auto client = WireClient::Connect(h.socket_path);
  ASSERT_TRUE(client.ok());

  // The %20 escape is cut between the '2' and the '0'; the daemon's
  // framer must buffer, not dispatch a half request.
  ASSERT_TRUE((*client)
                  ->SendRaw("checkin ~session=alpha ~path=/proj/sim.cmd"
                            " ~type=text ~text=run%2")
                  .ok());
  // Give the daemon's poll loop a chance to read the partial fragment
  // before the rest arrives, so the split truly lands mid-escape.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE((*client)->SendRaw("0100\n").ok());
  auto response = (*client)->ReadLine();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->rfind("ok", 0), 0u) << *response;

  // The stored text decoded to "run 100" (escape intact end-to-end).
  auto shown = Call(**client, "ping");
  ASSERT_TRUE(shown.ok());
  h.Join();
}

TEST(SocketTransportTest, OversizedRequestRejectedConnectionSurvives) {
  SocketHarness h("oversized");
  h.Start();
  auto client = WireClient::Connect(h.socket_path);
  ASSERT_TRUE(client.ok());

  // ~2 MiB without a newline: over the 1 MiB default frame budget.
  std::string big = "submit ~session=alpha ~junk=";
  big.append(2 * 1024 * 1024, 'x');
  big += "\n";
  ASSERT_TRUE((*client)->SendRaw(big).ok());
  auto rejected = (*client)->ReadLine();
  ASSERT_TRUE(rejected.ok()) << rejected.status().message();
  EXPECT_EQ(rejected->rfind("err", 0), 0u) << *rejected;

  // The same connection keeps working afterwards.
  auto next = Call(**client, "ping");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->rfind("ok", 0), 0u) << *next;
  h.Join();

  auto* rejected_lines = h.daemon->metrics_registry()->FindOrCreateCounter(
      obs::kServerClientsRejectedLines);
  EXPECT_GE(rejected_lines->value(), 1);
}

TEST(SocketTransportTest, AbruptDisconnectMidRunCommitsExactlyOnce) {
  SocketHarness h("abrupt_run");
  h.Start();

  {
    auto doomed = WireClient::Connect(h.socket_path);
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(Call(**doomed,
                     "checkin ~session=alpha ~path=/proj/shifter"
                     " ~type=behav ~inputs=8 ~outputs=8 ~complexity=12"
                     " ~seed=77")
                    .ok());
    ASSERT_TRUE(Call(**doomed,
                     "checkin ~session=alpha ~path=/proj/sim.cmd"
                     " ~type=text ~text=run%20100")
                    .ok());
    auto submitted = Call(**doomed,
                          "submit ~session=alpha ~thread=synth"
                          " ~template=Structure_Synthesis"
                          " ~in=/proj/shifter ~in=/proj/sim.cmd"
                          " ~out=s.layout ~out=s.stats ~seed=42");
    ASSERT_TRUE(submitted.ok());
    EXPECT_EQ(submitted->rfind("ok", 0), 0u) << *submitted;

    // Fire the run and vanish without reading the response: the framed
    // request must still execute, its response going nowhere.
    ASSERT_TRUE((*doomed)->SendRaw("run\n").ok());
    (*doomed)->CloseAbruptly();
  }

  // A second client watches the queue settle.
  auto watcher = WireClient::Connect(h.socket_path);
  ASSERT_TRUE(watcher.ok());
  std::string stat;
  for (int tries = 0; tries < 200; ++tries) {
    auto response = Call(**watcher, "stat");
    ASSERT_TRUE(response.ok()) << response.status().message();
    stat = *response;
    if (stat.find("~done=1") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(stat.find("~done=1"), std::string::npos) << stat;
  EXPECT_NE(stat.find("~failed=0"), std::string::npos) << stat;
  EXPECT_NE(stat.find("~pending=0"), std::string::npos) << stat;

  // Asking again re-runs nothing: the task committed exactly once.
  auto rerun = Call(**watcher, "run");
  ASSERT_TRUE(rerun.ok());
  EXPECT_NE(rerun->find("~ran=0"), std::string::npos) << *rerun;

  ASSERT_TRUE(Call(**watcher, "shutdown").ok());
  h.Join();
  EXPECT_EQ(h.daemon->queue().DoneCount(), 1);
}

TEST(SocketTransportTest, DisconnectWithBufferedPartialCountsRejected) {
  SocketHarness h("partial_disconnect");
  h.Start();
  {
    auto client = WireClient::Connect(h.socket_path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(Call(**client, "ping").ok());  // ensure it was read once
    // Half a request, never terminated, then gone.
    ASSERT_TRUE((*client)->SendRaw("submit ~session=al").ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (*client)->CloseAbruptly();
  }
  // The daemon notices the disconnect on its next poll rounds.
  for (int tries = 0; tries < 200; ++tries) {
    auto* rejected = h.daemon->metrics_registry()->FindOrCreateCounter(
        obs::kServerClientsRejectedLines);
    if (rejected->value() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  h.Join();
  auto* rejected = h.daemon->metrics_registry()->FindOrCreateCounter(
      obs::kServerClientsRejectedLines);
  EXPECT_GE(rejected->value(), 1)
      << "partial line at disconnect not surfaced";
  auto* disconnected = h.daemon->metrics_registry()->FindOrCreateCounter(
      obs::kServerClientsDisconnected);
  EXPECT_GE(disconnected->value(), 1);
}

}  // namespace
}  // namespace papyrus::server
