#include <gtest/gtest.h>

#include "base/clock.h"
#include "base/thread_annotations.h"
#include "oct/attribute_store.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "oct/object_id.h"

namespace papyrus::oct {
namespace {

TEST(ObjectRefTest, PlainName) {
  auto ref = ParseObjectRef("ALU.logic");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->name, "ALU.logic");
  EXPECT_EQ(ref->version, 0);
  EXPECT_FALSE(ref->is_absolute_path);
}

TEST(ObjectRefTest, NameWithVersion) {
  auto ref = ParseObjectRef("ALU.logic@2");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->name, "ALU.logic");
  EXPECT_EQ(ref->version, 2);
}

TEST(ObjectRefTest, AbsolutePath) {
  auto ref = ParseObjectRef("/user/chiueh/Multiplier");
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->is_absolute_path);
  EXPECT_EQ(ref->name, "/user/chiueh/Multiplier");
}

TEST(ObjectRefTest, RejectsBadInputs) {
  EXPECT_FALSE(ParseObjectRef("").ok());
  EXPECT_FALSE(ParseObjectRef("   ").ok());
  EXPECT_FALSE(ParseObjectRef("x@zero").ok());
  EXPECT_FALSE(ParseObjectRef("x@0").ok());
  EXPECT_FALSE(ParseObjectRef("x@-3").ok());
  EXPECT_FALSE(ParseObjectRef("@2").ok());
}

TEST(ObjectRefTest, TrimsWhitespace) {
  auto ref = ParseObjectRef("  cell.blif@3 ");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->name, "cell.blif");
  EXPECT_EQ(ref->version, 3);
}

TEST(ObjectIdTest, ToStringAndOrdering) {
  ObjectId a{"alu", 1};
  ObjectId b{"alu", 2};
  ObjectId c{"shifter", 1};
  EXPECT_EQ(a.ToString(), "alu@1");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ObjectId{"alu", 1}));
  EXPECT_NE(a, b);
}

TEST(DesignDataTest, PayloadTypeNames) {
  EXPECT_STREQ(PayloadTypeName(DesignPayload{}), "empty");
  EXPECT_STREQ(PayloadTypeName(BehavioralSpec{}), "behavioral");
  EXPECT_STREQ(PayloadTypeName(LogicNetwork{}), "logic");
  EXPECT_STREQ(PayloadTypeName(Layout{}), "layout");
  EXPECT_STREQ(PayloadTypeName(TextData{}), "text");
}

TEST(DesignDataTest, PayloadDomains) {
  EXPECT_EQ(PayloadDomain(BehavioralSpec{}), DesignDomain::kBehavioral);
  EXPECT_EQ(PayloadDomain(LogicNetwork{}), DesignDomain::kLogic);
  EXPECT_EQ(PayloadDomain(Layout{}), DesignDomain::kPhysical);
  EXPECT_EQ(PayloadDomain(TextData{}), DesignDomain::kOther);
  EXPECT_EQ(PayloadDomain(DesignPayload{}), DesignDomain::kOther);
}

TEST(DesignDataTest, SizeGrowsWithContent) {
  LogicNetwork small{.minterms = 10, .literals = 50};
  LogicNetwork big{.minterms = 1000, .literals = 5000};
  EXPECT_LT(PayloadSizeBytes(small), PayloadSizeBytes(big));
  Layout lay{.num_cells = 100, .wire_length = 5000.0};
  EXPECT_GT(PayloadSizeBytes(lay), 4096);
  EXPECT_EQ(PayloadSizeBytes(DesignPayload{}), 0);
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : clock_(1000), db_(&clock_) {}
  ManualClock clock_;
  OctDatabase db_;
};

TEST_F(DatabaseTest, CreateAssignsIncreasingVersions) {
  auto v1 = db_.CreateVersion("alu", BehavioralSpec{4, 4, 10, 1});
  auto v2 = db_.CreateVersion("alu", BehavioralSpec{4, 4, 11, 2});
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->version, 1);
  EXPECT_EQ(v2->version, 2);
  EXPECT_EQ(db_.VersionCount("alu"), 2);
  EXPECT_EQ(db_.TotalVersionCount(), 2);
}

TEST_F(DatabaseTest, RejectsEmptyName) {
  EXPECT_FALSE(db_.CreateVersion("", DesignPayload{}).ok());
}

TEST_F(DatabaseTest, GetReturnsPayloadAndTouchesAccessTime) {
  auto id = db_.CreateVersion("alu", LogicNetwork{.minterms = 7});
  ASSERT_TRUE(id.ok());
  clock_.AdvanceSeconds(10);
  auto rec = db_.Get(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::get<LogicNetwork>((*rec)->payload).minterms, 7);
  EXPECT_EQ((*rec)->last_access_micros, clock_.NowMicros());
  EXPECT_LT((*rec)->created_micros, (*rec)->last_access_micros);
}

TEST_F(DatabaseTest, GetUnknownFails) {
  EXPECT_TRUE(db_.Get(ObjectId{"nope", 1}).status().IsNotFound());
  auto id = db_.CreateVersion("alu", DesignPayload{});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(db_.Get(ObjectId{"alu", 2}).status().IsNotFound());
  EXPECT_TRUE(db_.Get(ObjectId{"alu", 0}).status().IsNotFound());
}

TEST_F(DatabaseTest, LatestVisibleSkipsInvisible) {
  auto v1 = db_.CreateVersion("alu", DesignPayload{});
  auto v2 = db_.CreateVersion("alu", DesignPayload{});
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto latest = db_.LatestVisible("alu");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 2);

  ASSERT_TRUE(db_.MarkInvisible(*v2).ok());
  latest = db_.LatestVisible("alu");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 1);
}

TEST_F(DatabaseTest, VisibilityDictatesAccessibility) {
  auto id = db_.CreateVersion("alu", DesignPayload{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db_.MarkInvisible(*id).ok());
  EXPECT_TRUE(db_.Get(*id).status().IsNotFound());
  EXPECT_TRUE(db_.LatestVisible("alu").status().IsNotFound());
  // Undelete restores access (§3.3.1).
  ASSERT_TRUE(db_.MarkVisible(*id).ok());
  EXPECT_TRUE(db_.Get(*id).ok());
}

TEST_F(DatabaseTest, ReclaimIsIrreversible) {
  auto id = db_.CreateVersion("alu", LogicNetwork{.minterms = 100});
  ASSERT_TRUE(id.ok());
  int64_t before = db_.TotalLiveBytes();
  EXPECT_GT(before, 0);
  ASSERT_TRUE(db_.Reclaim(*id).ok());
  EXPECT_EQ(db_.LiveVersionCount(), 0);
  EXPECT_TRUE(db_.Get(*id).status().IsNotFound());
  EXPECT_TRUE(db_.MarkVisible(*id).IsFailedPrecondition());
  // Tombstone remains: version numbering continues after reclamation.
  auto id2 = db_.CreateVersion("alu", DesignPayload{});
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id2->version, 2);
}

TEST_F(DatabaseTest, PeekSeesInvisibleRecords) {
  auto id = db_.CreateVersion("alu", DesignPayload{});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db_.MarkInvisible(*id).ok());
  auto rec = db_.Peek(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE((*rec)->visible);
}

TEST_F(DatabaseTest, ForEachVisitsEverything) {
  (void)db_.CreateVersion("a", DesignPayload{});
  (void)db_.CreateVersion("a", DesignPayload{});
  (void)db_.CreateVersion("b", DesignPayload{});
  int n = 0;
  db_.ForEach([&](const ObjectRecord&) { ++n; });
  EXPECT_EQ(n, 3);
}

TEST_F(DatabaseTest, TransactionCommitsAtomically) {
  Transaction txn(&db_);
  txn.StageCreate("x", LogicNetwork{}, "espresso");
  txn.StageCreate("y", Layout{}, "wolfe");
  EXPECT_EQ(txn.staged_count(), 2u);
  auto ids = txn.Commit();
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 2u);
  EXPECT_TRUE(db_.Get((*ids)[0]).ok());
  EXPECT_TRUE(db_.Get((*ids)[1]).ok());
  EXPECT_EQ(txn.staged_count(), 0u);
}

TEST_F(DatabaseTest, TransactionAbortDiscards) {
  Transaction txn(&db_);
  txn.StageCreate("x", DesignPayload{}, "");
  txn.Abort();
  EXPECT_EQ(txn.staged_count(), 0u);
  auto ids = txn.Commit();
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EXPECT_EQ(db_.TotalVersionCount(), 0);
}

TEST_F(DatabaseTest, TransactionRollsBackOnFailure) {
  Transaction txn(&db_);
  txn.StageCreate("x", DesignPayload{}, "");
  txn.StageCreate("", DesignPayload{}, "");  // will fail: empty name
  auto ids = txn.Commit();
  EXPECT_FALSE(ids.ok());
  // The first staged create was rolled back (reclaimed).
  EXPECT_EQ(db_.LiveVersionCount(), 0);
}

TEST_F(DatabaseTest, CreatorToolIsRecorded) {
  auto id = db_.CreateVersion("out", LogicNetwork{}, "misII");
  ASSERT_TRUE(id.ok());
  auto rec = db_.Get(*id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->creator_tool, "misII");
}

class AttributeStoreTest : public ::testing::Test {
 protected:
  AttributeStore store_;
  ObjectId id_{"alu.layout", 1};
};

TEST_F(AttributeStoreTest, SetAndGetStoredValue) {
  store_.Set(id_, "owner", "chiueh");
  auto v = store_.GetValue(id_, "owner");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "chiueh");
}

TEST_F(AttributeStoreTest, AttachedButUncomputedIsNotReadable) {
  store_.Attach(id_, "area", "chipstats", AttributeMode::kLazy);
  EXPECT_TRUE(store_.Has(id_, "area"));
  EXPECT_TRUE(store_.GetValue(id_, "area").status().IsFailedPrecondition());
  ASSERT_TRUE(store_.SetComputed(id_, "area", "1200").ok());
  auto v = store_.GetValue(id_, "area");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1200");
}

TEST_F(AttributeStoreTest, InvalidateClearsCache) {
  store_.Attach(id_, "delay", "crystal", AttributeMode::kLazy);
  ASSERT_TRUE(store_.SetComputed(id_, "delay", "8.5").ok());
  ASSERT_TRUE(store_.Invalidate(id_, "delay").ok());
  EXPECT_TRUE(store_.GetValue(id_, "delay").status().IsFailedPrecondition());
  auto entry = store_.Get(id_, "delay");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->compute_tool, "crystal");
}

TEST_F(AttributeStoreTest, MissingAttributeErrors) {
  EXPECT_TRUE(store_.GetValue(id_, "nope").status().IsNotFound());
  EXPECT_TRUE(store_.SetComputed(id_, "nope", "1").IsNotFound());
  EXPECT_TRUE(store_.Invalidate(id_, "nope").IsNotFound());
  EXPECT_FALSE(store_.Has(id_, "nope"));
}

TEST_F(AttributeStoreTest, ListIsSortedByName) {
  store_.Set(id_, "power", "3");
  store_.Set(id_, "area", "1");
  store_.Set(id_, "delay", "2");
  auto attrs = store_.List(id_);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].name, "area");
  EXPECT_EQ(attrs[1].name, "delay");
  EXPECT_EQ(attrs[2].name, "power");
  EXPECT_EQ(store_.size(), 3u);
}

TEST_F(AttributeStoreTest, AttachDoesNotClobberComputedValue) {
  store_.Set(id_, "num_inputs", "8");
  store_.Attach(id_, "num_inputs", "", AttributeMode::kLazy);
  auto v = store_.GetValue(id_, "num_inputs");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "8");
}

// The threading contract's runtime teeth (acceptance criterion): a
// deliberate database mutation from a worker-pool thread dies on the
// engine-thread assert instead of corrupting shared state.  Under Clang
// the same call is already a compile error via
// PAPYRUS_REQUIRES(base::engine_thread).
TEST(OctDatabaseDeathTest, MutationOffEngineThreadAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ManualClock clock(0);
  OctDatabase db(&clock);
  EXPECT_DEATH(
      {
        base::ScopedWorkerThread mark;
        (void)db.CreateVersion("net", TextData{"x"});
      },
      "engine-thread contract violated: OctDatabase::CreateVersion");
}

}  // namespace
}  // namespace papyrus::oct
