#include <gtest/gtest.h>

#include "activity/display.h"
#include "core/papyrus.h"

namespace papyrus {
namespace {

using oct::BehavioralSpec;
using oct::Layout;
using oct::LogicNetwork;

TEST(PapyrusSessionTest, ConstructsStandardEnvironment) {
  Papyrus session;
  EXPECT_GE(session.tools().size(), 20u);
  EXPECT_GE(session.templates().size(), 9u);
  EXPECT_GE(session.tsds().size(), 20u);
  EXPECT_EQ(session.network().num_hosts(), 4);
}

TEST(PapyrusSessionTest, OptionsControlEnvironment) {
  SessionOptions opts;
  opts.num_workstations = 8;
  opts.standard_environment = false;
  Papyrus session(opts);
  EXPECT_EQ(session.network().num_hosts(), 8);
  EXPECT_EQ(session.tools().size(), 0u);
  EXPECT_EQ(session.templates().size(), 0u);
}

TEST(PapyrusSessionTest, QuickstartFlow) {
  Papyrus session;
  int thread = session.CreateThread("Shifter");
  auto p1 = session.Invoke(thread, "Create_Logic_Description", {},
                           {"shifter.logic"});
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  auto p2 = session.Invoke(thread, "Standard_Cell_Place_and_Route",
                           {"shifter.logic"}, {"shifter.layout"});
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();
  // The output exists and time advanced in the simulated network.
  EXPECT_TRUE(session.database().LatestVisible("shifter.layout").ok());
  EXPECT_GT(session.clock().NowMicros(), 0);
}

TEST(PapyrusSessionTest, MetadataInferenceWiredIn) {
  Papyrus session;
  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  auto id = session.database().LatestVisible("c.logic");
  ASSERT_TRUE(id.ok());
  // Type inferred from bdsyn's TSD without any user declaration.
  auto type = session.metadata().TypeOf(*id);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, "logic");
  EXPECT_GT(session.metadata().adg().edge_count(), 0u);
}

TEST(PapyrusSessionTest, MetadataInferenceCanBeDisabled) {
  SessionOptions opts;
  opts.metadata_inference = false;
  Papyrus session(opts);
  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  EXPECT_EQ(session.metadata().adg().edge_count(), 0u);
}

TEST(PapyrusSessionTest, FilteredTasksLeaveNoHistory) {
  Papyrus session;
  session.reclamation().AddFilteredTask("Logic_Simulation");
  int thread = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(thread, "Create_Logic_Description", {}, {"c.logic"})
          .ok());
  ASSERT_TRUE(
      session.Invoke(thread, "Logic_Simulation", {"c.logic"}, {}).ok());
  auto t = session.activity().GetThread(thread);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->size(), 1);  // only the creation task recorded
  EXPECT_EQ(session.activity().records_filtered(), 1);
  // But the metadata engine still saw the invocation (the ADG covers it).
  bool saw_musa = false;
  for (const auto& [id, edge] : session.metadata().adg().edges()) {
    if (edge.tool == "musa") saw_musa = true;
  }
  EXPECT_TRUE(saw_musa);
}

TEST(PapyrusSessionTest, CheckInAndUseExternalObject) {
  Papyrus session;
  auto id = session.CheckInObject(
      "/user/mary/alu.logic",
      LogicNetwork{.num_inputs = 8, .minterms = 40, .seed = 3});
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(session.CheckInObject("relative", LogicNetwork{}).ok());
  int thread = session.CreateThread("T");
  auto point = session.Invoke(thread, "Logic_Simulation",
                              {"/user/mary/alu.logic"}, {});
  ASSERT_TRUE(point.ok()) << point.status().ToString();
}

TEST(PapyrusSessionTest, ThreadCacheIntervalFromOptions) {
  SessionOptions opts;
  opts.cache_interval = 3;
  Papyrus session(opts);
  int thread = session.CreateThread("T");
  auto t = session.activity().GetThread(thread);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->cache_interval(), 3);
}

TEST(PapyrusSessionTest, EndToEndExplorationWithReclamation) {
  Papyrus session;
  int thread = session.CreateThread("ALU");
  auto p1 =
      session.Invoke(thread, "Create_Logic_Description", {}, {"alu.logic"});
  ASSERT_TRUE(p1.ok());
  auto p2 = session.Invoke(thread, "Standard_Cell_Place_and_Route",
                           {"alu.logic"}, {"alu.sc"});
  ASSERT_TRUE(p2.ok());
  // Explore a PLA alternative from p1, abandon the standard-cell branch.
  ASSERT_TRUE(session.MoveCursor(thread, *p1).ok());
  auto p3 =
      session.Invoke(thread, "PLA_Generation", {"alu.logic"}, {"alu.pla"});
  ASSERT_TRUE(p3.ok()) << p3.status().ToString();

  // Time passes; the standard-cell branch goes dead and is reclaimed.
  session.clock().AdvanceSeconds(1000000);
  ASSERT_TRUE(session.MoveCursor(thread, *p3).ok());
  auto t = session.activity().GetThread(thread);
  ASSERT_TRUE(t.ok());
  auto report = session.reclamation().PruneDeadBranches(
      *t, /*unaccessed=*/500000ll * 1000000ll);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_affected, 1);
  EXPECT_GT(report->bytes_reclaimed, 0);
  EXPECT_FALSE(session.database().Get({"alu.sc", 1}).ok());
  EXPECT_TRUE(session.database().LatestVisible("alu.pla").ok());
}

}  // namespace
}  // namespace papyrus
