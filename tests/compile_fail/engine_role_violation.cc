// Compile-FAIL check for the thread-safety contracts (not part of any
// CMake target). CI compiles this with
//   clang++ -fsyntax-only -Werror=thread-safety -Werror=thread-safety-beta
// and requires the compile to FAIL: each block below violates a contract
// the annotations must reject. If this file ever compiles clean under
// Clang, the enforcement layer is broken.
//
// The positive control engine_role_ok.cc must keep compiling clean with
// the same flags.

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Guarded {
  papyrus::base::Mutex mu;
  int value PAPYRUS_GUARDED_BY(mu) = 0;
};

// Violation 1: reading a guarded field without holding its mutex.
int ReadUnlocked(Guarded& g) {
  return g.value;  // expected-error: requires holding mutex 'g.mu'
}

// Violation 2: calling an engine-thread-only API without the role.
void Mutate() PAPYRUS_REQUIRES(papyrus::base::engine_thread);

void CallFromAnywhere() {
  Mutate();  // expected-error: requires holding role 'engine_thread'
}

// Violation 3: releasing a mutex never acquired.
void UnlockUnheld(Guarded& g) {
  g.mu.unlock();  // expected-error: releasing mutex that was not held
}

}  // namespace
