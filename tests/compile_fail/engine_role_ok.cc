// Compile-PASS control for the thread-safety contracts (not part of any
// CMake target). CI compiles this with the same
//   clang++ -fsyntax-only -Werror=thread-safety -Werror=thread-safety-beta
// flags as engine_role_violation.cc and requires it to SUCCEED — it
// exercises the sanctioned patterns, so a failure here means the
// annotation macros themselves broke (and the violation check's failure
// would be meaningless).

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace {

struct Guarded {
  papyrus::base::Mutex mu;
  int value PAPYRUS_GUARDED_BY(mu) = 0;
};

// Guarded access through the RAII lock, including the manual
// unlock/relock pair the step executor's inline-run path uses.
int ReadLocked(Guarded& g) {
  papyrus::base::MutexLock lock(g.mu);
  int v = g.value;
  lock.unlock();
  lock.lock();
  v += g.value;
  return v;
}

void Mutate() PAPYRUS_REQUIRES(papyrus::base::engine_thread);
void Mutate() {}

// The engine role is vouched for by the runtime assert, the same recipe
// every library entry point uses.
void CallFromEngine() {
  papyrus::base::AssertEngineThread("CallFromEngine");
  Mutate();
}

}  // namespace

// Anchor so -fsyntax-only sees the functions used.
void CompileFailControlAnchor() {
  Guarded g;
  (void)ReadLocked(g);
  CallFromEngine();
}
