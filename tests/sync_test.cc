#include <gtest/gtest.h>

#include "base/clock.h"
#include "oct/database.h"
#include "sync/sds.h"

namespace papyrus::sync {
namespace {

using oct::Layout;
using oct::ObjectId;

class SdsTest : public ::testing::Test {
 protected:
  SdsTest() : clock_(0), db_(&clock_), mgr_(&db_) {
    EXPECT_TRUE(mgr_.CreateSds("A").ok());
    EXPECT_TRUE(mgr_.Register("A", kProducer).ok());
    EXPECT_TRUE(mgr_.Register("A", kConsumer).ok());
  }

  ObjectId MakeLayout(const std::string& name, double delay) {
    auto id = db_.CreateVersion(name, Layout{.delay_ns = delay});
    EXPECT_TRUE(id.ok());
    return *id;
  }

  static constexpr int kProducer = 1;
  static constexpr int kConsumer = 2;
  static constexpr int kOutsider = 3;

  ManualClock clock_;
  oct::OctDatabase db_;
  SdsManager mgr_;
};

TEST_F(SdsTest, CreateAndRemoveSpaces) {
  EXPECT_TRUE(mgr_.HasSds("A"));
  EXPECT_TRUE(mgr_.CreateSds("A").code() == StatusCode::kAlreadyExists);
  EXPECT_FALSE(mgr_.CreateSds("").ok());
  EXPECT_TRUE(mgr_.CreateSds("B").ok());
  EXPECT_EQ(mgr_.SdsNames().size(), 2u);
  EXPECT_TRUE(mgr_.RemoveSds("B").ok());
  EXPECT_TRUE(mgr_.RemoveSds("B").IsNotFound());
}

TEST_F(SdsTest, RegistrationIsDynamic) {
  auto regs = mgr_.RegisteredThreads("A");
  ASSERT_TRUE(regs.ok());
  EXPECT_EQ(regs->size(), 2u);
  EXPECT_TRUE(mgr_.Deregister("A", kConsumer).ok());
  EXPECT_TRUE(mgr_.Deregister("A", kConsumer).IsNotFound());
  EXPECT_FALSE(mgr_.Register("missing", 1).ok());
}

TEST_F(SdsTest, ContributeAndRetrieve) {
  ObjectId id = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A")).ok());
  auto contents = mgr_.Contents("A");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), 1u);
  EXPECT_EQ((*contents)[0], id);
  EXPECT_TRUE(
      mgr_.Move(id, Space::Sds("A"), Space::Thread(kConsumer)).ok());
}

TEST_F(SdsTest, UnregisteredThreadsAreRejected) {
  ObjectId id = MakeLayout("cell", 5.0);
  EXPECT_TRUE(mgr_.Move(id, Space::Thread(kOutsider), Space::Sds("A"))
                  .IsPermissionDenied());
  ASSERT_TRUE(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A")).ok());
  EXPECT_TRUE(mgr_.Move(id, Space::Sds("A"), Space::Thread(kOutsider))
                  .IsPermissionDenied());
}

TEST_F(SdsTest, NoDirectThreadToThreadSharing) {
  ObjectId id = MakeLayout("cell", 5.0);
  EXPECT_TRUE(mgr_.Move(id, Space::Thread(kProducer),
                        Space::Thread(kConsumer))
                  .IsPermissionDenied());
}

TEST_F(SdsTest, SdsContentsAreAppendOnly) {
  ObjectId id = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A")).ok());
  EXPECT_EQ(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A")).code(),
            StatusCode::kAlreadyExists);
  // A new version of the same object is fine.
  ObjectId v2 = MakeLayout("cell", 4.0);
  EXPECT_TRUE(mgr_.Move(v2, Space::Thread(kProducer), Space::Sds("A")).ok());
}

TEST_F(SdsTest, InvisibleObjectsCannotBePublished) {
  ObjectId id = MakeLayout("cell", 5.0);
  ASSERT_TRUE(db_.MarkInvisible(id).ok());
  EXPECT_TRUE(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A"))
                  .IsNotFound());
}

TEST_F(SdsTest, NotificationOnNewVersion) {
  ObjectId v1 = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(v1, Space::Thread(kProducer), Space::Sds("A")).ok());
  // The consumer retrieves it with a notification flag.
  ASSERT_TRUE(mgr_.Move(v1, Space::Sds("A"), Space::Thread(kConsumer),
                        /*notify=*/true)
                  .ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 0u);
  // A new version arrives.
  ObjectId v2 = MakeLayout("cell", 4.5);
  ASSERT_TRUE(mgr_.Move(v2, Space::Thread(kProducer), Space::Sds("A")).ok());
  ASSERT_EQ(mgr_.PendingNotifications(kConsumer), 1u);
  auto notes = mgr_.TakeNotifications(kConsumer);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].thread_id, kConsumer);
  EXPECT_EQ(notes[0].sds, "A");
  EXPECT_EQ(notes[0].new_version, v2);
  EXPECT_EQ(notes[0].old_version, v1);
  EXPECT_TRUE(mgr_.TakeNotifications(kConsumer).empty());
}

TEST_F(SdsTest, NotificationCanBeDisabled) {
  ObjectId v1 = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(v1, Space::Thread(kProducer), Space::Sds("A")).ok());
  ASSERT_TRUE(mgr_.Move(v1, Space::Sds("A"), Space::Thread(kConsumer),
                        /*notify=*/false)
                  .ok());
  ObjectId v2 = MakeLayout("cell", 4.5);
  ASSERT_TRUE(mgr_.Move(v2, Space::Thread(kProducer), Space::Sds("A")).ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 0u);
}

TEST_F(SdsTest, PredicateFiltersNotifications) {
  // §3.3.4.2 example: notify only when the new version is faster.
  ObjectId v1 = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(v1, Space::Thread(kProducer), Space::Sds("A")).ok());
  NotifyPredicate faster;
  faster.attribute = "delay";
  faster.op = NotifyPredicate::Op::kLess;
  faster.compare_to_old = true;
  ASSERT_TRUE(mgr_.Move(v1, Space::Sds("A"), Space::Thread(kConsumer),
                        /*notify=*/true, {faster})
                  .ok());
  // A slower version: suppressed.
  ObjectId slow = MakeLayout("cell", 7.0);
  ASSERT_TRUE(
      mgr_.Move(slow, Space::Thread(kProducer), Space::Sds("A")).ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 0u);
  EXPECT_EQ(mgr_.suppressed_notifications(), 1);
  // A faster version: delivered.
  ObjectId fast = MakeLayout("cell", 3.0);
  ASSERT_TRUE(
      mgr_.Move(fast, Space::Thread(kProducer), Space::Sds("A")).ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 1u);
  EXPECT_EQ(mgr_.total_notifications(), 1);
}

TEST_F(SdsTest, ConstantPredicate) {
  ObjectId v1 = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(v1, Space::Thread(kProducer), Space::Sds("A")).ok());
  NotifyPredicate under_4;
  under_4.attribute = "delay";
  under_4.op = NotifyPredicate::Op::kLess;
  under_4.compare_to_old = false;
  under_4.constant = 4.0;
  ASSERT_TRUE(mgr_.Move(v1, Space::Sds("A"), Space::Thread(kConsumer),
                        true, {under_4})
                  .ok());
  ASSERT_TRUE(mgr_.Move(MakeLayout("cell", 4.5), Space::Thread(kProducer),
                        Space::Sds("A"))
                  .ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 0u);
  ASSERT_TRUE(mgr_.Move(MakeLayout("cell", 3.5), Space::Thread(kProducer),
                        Space::Sds("A"))
                  .ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 1u);
}

TEST_F(SdsTest, MultipleSubscribersEachNotified) {
  ASSERT_TRUE(mgr_.Register("A", kOutsider).ok());
  ObjectId v1 = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(v1, Space::Thread(kProducer), Space::Sds("A")).ok());
  ASSERT_TRUE(
      mgr_.Move(v1, Space::Sds("A"), Space::Thread(kConsumer), true).ok());
  ASSERT_TRUE(
      mgr_.Move(v1, Space::Sds("A"), Space::Thread(kOutsider), true).ok());
  ASSERT_TRUE(mgr_.Move(MakeLayout("cell", 4.0), Space::Thread(kProducer),
                        Space::Sds("A"))
                  .ok());
  EXPECT_EQ(mgr_.PendingNotifications(kConsumer), 1u);
  EXPECT_EQ(mgr_.PendingNotifications(kOutsider), 1u);
}

TEST_F(SdsTest, SdsToSdsTransfer) {
  ASSERT_TRUE(mgr_.CreateSds("B").ok());
  ObjectId id = MakeLayout("cell", 5.0);
  ASSERT_TRUE(mgr_.Move(id, Space::Thread(kProducer), Space::Sds("A")).ok());
  ASSERT_TRUE(mgr_.Move(id, Space::Sds("A"), Space::Sds("B")).ok());
  auto b = mgr_.Contents("B");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 1u);
  // Source keeps its copy (versions are never removed from an SDS).
  auto a = mgr_.Contents("A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 1u);
}

TEST_F(SdsTest, ThreadImportIsUnidirectionalAndRevocable) {
  EXPECT_FALSE(mgr_.CanRead(kConsumer, kProducer));
  ASSERT_TRUE(mgr_.ImportThread(kConsumer, kProducer).ok());
  EXPECT_TRUE(mgr_.CanRead(kConsumer, kProducer));
  EXPECT_FALSE(mgr_.CanRead(kProducer, kConsumer));  // unidirectional
  EXPECT_TRUE(mgr_.CanRead(kProducer, kProducer));   // self-read
  EXPECT_EQ(mgr_.ImportsOf(kConsumer).size(), 1u);
  ASSERT_TRUE(mgr_.RevokeImport(kConsumer, kProducer).ok());
  EXPECT_FALSE(mgr_.CanRead(kConsumer, kProducer));
  EXPECT_TRUE(mgr_.RevokeImport(kConsumer, kProducer).IsNotFound());
  EXPECT_FALSE(mgr_.ImportThread(kConsumer, kConsumer).ok());
}

}  // namespace
}  // namespace papyrus::sync
