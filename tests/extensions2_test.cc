// Tests for the second batch of extensions: loop-generated steps in TDL,
// equivalence-chain queries, and the Sprite migration cost model.

#include <gtest/gtest.h>

#include "core/papyrus.h"
#include "sprite/network.h"

namespace papyrus {
namespace {

using oct::LogicNetwork;
using oct::ObjectId;

// --- Loop-generated steps ("a limited class of While-loops", §4.4) --------

class LoopTemplateTest : public ::testing::Test {
 protected:
  LoopTemplateTest() { session_ = std::make_unique<Papyrus>(); }
  std::unique_ptr<Papyrus> session_;
};

TEST_F(LoopTemplateTest, ForLoopGeneratesDistinctSteps) {
  // Iterative refinement inside one task: each round minimizes the
  // previous round's output. Step and object names are produced by Tcl
  // variable substitution, so every iteration is distinct.
  ASSERT_TRUE(session_
                  ->AddTemplate(
                      "task Refine {In} {Out}\n"
                      "set prev In\n"
                      "for {set i 0} {$i < 3} {incr i} {\n"
                      "  step Round$i \"$prev\" \"min$i\" "
                      "{espresso -o pleasure prev}\n"
                      "  set prev min$i\n"
                      "}\n"
                      "step Final {min2} {Out} {pleasure min2}\n")
                  .ok());
  (void)session_->CheckInObject(
      "/cell", LogicNetwork{.num_inputs = 8,
                            .num_outputs = 4,
                            .minterms = 400,
                            .format = oct::DesignFormat::kBlif,
                            .seed = 3});
  int t = session_->CreateThread("T");
  auto point = session_->Invoke(t, "Refine", {"/cell"}, {"cell.min"});
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  auto thread = session_->activity().GetThread(t);
  auto node = (*thread)->GetNode(*point);
  ASSERT_EQ((*node)->record.steps.size(), 4u);
  // Each round consumed the previous round's output: minterms shrink
  // monotonically.
  auto out = session_->database().LatestVisible("cell.min");
  ASSERT_TRUE(out.ok());
  auto rec = session_->database().Get(*out);
  EXPECT_LT(std::get<LogicNetwork>((*rec)->payload).minterms, 400);
  std::set<std::string> names;
  for (const auto& s : (*node)->record.steps) names.insert(s.step_name);
  EXPECT_EQ(names.size(), 4u);  // Round0..2 + Final, all distinct
}

TEST_F(LoopTemplateTest, WhileLoopWithAttributeCondition) {
  // Keep minimizing until the design is small enough — the §4.2.2 claim
  // that design flow can depend on run-time object attributes.
  ASSERT_TRUE(session_
                  ->AddTemplate(
                      "task Shrink {In} {Out}\n"
                      "set cur In\n"
                      "set i 0\n"
                      "while {[attribute $cur minterms] > 60} {\n"
                      "  step Shrink$i \"$cur\" \"s$i\" "
                      "{espresso -o pleasure cur}\n"
                      "  set cur s$i\n"
                      "  incr i\n"
                      "  if {$i > 10} break\n"
                      "}\n"
                      "step Publish \"$cur\" {Out} {pleasure cur}\n")
                  .ok());
  (void)session_->CheckInObject(
      "/big", LogicNetwork{.num_inputs = 8,
                           .num_outputs = 4,
                           .minterms = 300,
                           .format = oct::DesignFormat::kPla,
                           .seed = 7});
  int t = session_->CreateThread("T");
  auto point = session_->Invoke(t, "Shrink", {"/big"}, {"small"});
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  auto out = session_->database().LatestVisible("small");
  ASSERT_TRUE(out.ok());
  auto rec = session_->database().Get(*out);
  // The loop exit condition held on the object fed to Publish.
  auto thread = session_->activity().GetThread(t);
  auto node = (*thread)->GetNode(*point);
  ASSERT_GE((*node)->record.steps.size(), 2u);
  const auto& publish_inputs =
      (*node)->record.steps.back().inputs;
  ASSERT_EQ(publish_inputs.size(), 1u);
  // The fed object is an intermediate — invisible after commit — so use
  // Peek, which sees bookkeeping state.
  auto fed = session_->database().Peek(publish_inputs[0]);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_LE(std::get<LogicNetwork>((*fed)->payload).minterms, 60);
}

// --- Equivalence chains (§6.4.2) -------------------------------------------

TEST(EquivalenceChainTest, SpansAllDomains) {
  Papyrus session;
  int t = session.CreateThread("T");
  ASSERT_TRUE(
      session.Invoke(t, "Create_Logic_Description", {}, {"c.logic"}).ok());
  ASSERT_TRUE(
      session.Invoke(t, "Standard_Cell_Place_and_Route", {"c.logic"},
                     {"c.layout"})
          .ok());
  auto layout = session.database().LatestVisible("c.layout");
  ASSERT_TRUE(layout.ok());
  auto reps = session.metadata().EquivalentRepresentations(*layout);
  // The chain spans layout <- logic <- behavioral (bdsyn and wolfe are
  // domain translators).
  ASSERT_GE(reps.size(), 3u);
  std::set<std::string> types;
  for (const ObjectId& id : reps) {
    auto type = session.metadata().TypeOf(id);
    if (type.ok()) types.insert(*type);
  }
  EXPECT_TRUE(types.count("layout"));
  EXPECT_TRUE(types.count("logic"));
  // Queries from the middle of the chain see the same set.
  auto logic = session.database().LatestVisible("c.logic");
  ASSERT_TRUE(logic.ok());
  auto reps2 = session.metadata().EquivalentRepresentations(*logic);
  EXPECT_EQ(std::set<ObjectId>(reps.begin(), reps.end()),
            std::set<ObjectId>(reps2.begin(), reps2.end()));
}

// --- Migration cost model --------------------------------------------------

TEST(MigrationCostTest, MigrationAddsWork) {
  ManualClock clock(0);
  sprite::Network net(&clock, 2);
  net.set_migration_cost_micros(500);
  auto pid = net.Spawn(sprite::kNoProcess, "p", 1000, 0, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net.Migrate(*pid, 1).ok());
  net.RunUntilQuiescent();
  auto info = net.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->work_micros, 1500);
  EXPECT_EQ(info->finish_micros, 1500);
}

TEST(MigrationCostTest, EvictionAlsoPaysTheCost) {
  ManualClock clock(0);
  sprite::Network net(&clock, 2);
  net.set_migration_cost_micros(250);
  auto pid = net.Spawn(sprite::kNoProcess, "p", 1000, 1, true);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(net.SetOwnerActive(1, true).ok());  // evicts to home
  net.RunUntilQuiescent();
  auto info = net.GetProcess(*pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->work_micros, 1250);
}

TEST(MigrationCostTest, ZeroCostByDefault) {
  ManualClock clock(0);
  sprite::Network net(&clock, 2);
  EXPECT_EQ(net.migration_cost_micros(), 0);
  auto pid = net.Spawn(sprite::kNoProcess, "p", 1000, 0, true);
  ASSERT_TRUE(net.Migrate(*pid, 1).ok());
  net.RunUntilQuiescent();
  EXPECT_EQ(net.GetProcess(*pid)->work_micros, 1000);
}

}  // namespace
}  // namespace papyrus
