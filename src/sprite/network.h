#ifndef PAPYRUS_SPRITE_NETWORK_H_
#define PAPYRUS_SPRITE_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "obs/observability.h"

namespace papyrus::sprite {

using HostId = int;
using ProcessId = int;

constexpr ProcessId kNoProcess = -1;
constexpr HostId kNoHost = -1;

enum class ProcessState {
  kRunning,
  kCompleted,
  kKilled,
  /// The host executing the process crashed: the process died without a
  /// completion signal and its partial work is gone. Distinct from kKilled
  /// (a deliberate, clean termination by the task manager).
  kLost,
};

/// Process control block, as returned by `GetPcbInfo` — the simulator's
/// stand-in for Sprite's `Proc_GetPCBInfo` system call, which the task
/// manager polls to find migratable children still stuck on the home node
/// (§4.3.3 re-migration).
struct ProcessInfo {
  ProcessId pid = kNoProcess;
  ProcessId parent_pid = kNoProcess;
  HostId home_host = kNoHost;
  HostId current_host = kNoHost;
  bool migratable = true;
  ProcessState state = ProcessState::kRunning;
  std::string command;
  int64_t work_micros = 0;  // total CPU work the process represents
  int64_t done_micros = 0;  // work completed so far
  int64_t spawn_micros = 0;
  int64_t finish_micros = 0;  // valid once completed/killed
  int migration_count = 0;
};

/// A simulated network of workstations running the Sprite operating system.
///
/// Behavioural model (matching §4.3.2–4.3.3 of the thesis):
///  - a host is *idle* iff its owner has not touched mouse/keyboard (tracked
///    by `SetOwnerActive` / scheduled owner events); a host that is even
///    slightly loaded by an interactive owner is not qualified to accept
///    migrated processes;
///  - `FindIdleHost` returns the least-loaded idle host, or fails when none
///    exists (the caller then executes locally);
///  - when an owner returns, all *foreign* processes on that host are
///    evicted: migrated back to their home nodes;
///  - hosts share CPU evenly among the processes currently executing on
///    them; per-host `speed` scales progress;
///  - process completion raises a signal: the registered completion handler
///    runs with the final PCB (the UNIX signal mechanism of §4.3.2).
///
/// Time is virtual: the network drives the `ManualClock` passed in, so the
/// whole distributed execution is deterministic and instantaneous in wall
/// time.
class Network {
 public:
  /// Creates `num_hosts` workstations. Host 0 is conventionally the home
  /// machine of the Papyrus session. All hosts start idle with speed 1.0.
  Network(ManualClock* clock, int num_hosts);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  HostId home_host() const { return 0; }

  /// Sets the relative CPU speed of a host (default 1.0).
  Status SetHostSpeed(HostId host, double speed);

  /// Models the cost of moving a process's address space (Sprite paid a
  /// real price for migration): each migration/eviction adds this much
  /// work to the process. Default 0.
  void set_migration_cost_micros(int64_t cost) {
    migration_cost_micros_ = cost;
  }
  int64_t migration_cost_micros() const { return migration_cost_micros_; }

  /// Marks a host's owner present/absent immediately.
  Status SetOwnerActive(HostId host, bool active);
  /// Schedules an owner presence change at absolute virtual time `micros`.
  Status ScheduleOwnerEvent(HostId host, int64_t micros, bool active);

  bool IsOwnerActive(HostId host) const;
  /// Idle = host up and owner absent. (Load is a tie-breaker for
  /// FindIdleHost.)
  bool IsIdle(HostId host) const;
  /// True when the host has not crashed (or has rebooted since).
  bool IsUp(HostId host) const;
  /// Number of processes currently executing on `host`.
  int LoadOf(HostId host) const;

  /// Least-loaded idle host, or FailedPrecondition when every host is
  /// owner-active. `exclude_home` skips host 0 (useful when the caller
  /// wants a *remote* node).
  Result<HostId> FindIdleHost(bool exclude_home = false) const;

  /// Starts a process representing `work_micros` of CPU on `host`.
  Result<ProcessId> Spawn(ProcessId parent, const std::string& command,
                          int64_t work_micros, HostId host,
                          bool migratable);

  /// Moves a running process to another host (Sprite process migration).
  /// Non-migratable processes refuse. Migrating onto a host whose owner is
  /// active is allowed but futile: the process bounces straight back to its
  /// home node (one migration + one eviction) — the §4.3.3 race where the
  /// owner returns while the address-space transfer is in flight. Under
  /// flaky-migration mode (`SetMigrationFlakiness`) the call may fail with
  /// Unavailable; the process then stays where it was.
  Status Migrate(ProcessId pid, HostId to);

  // --- failure model ---------------------------------------------------

  /// Crashes `host` immediately: every process executing there — foreign
  /// *and* native — dies in state kLost and the failure handler fires for
  /// each. The host accepts no spawns or migrations until rebooted.
  Status CrashHost(HostId host);
  /// Schedules a crash at absolute virtual time `micros`.
  Status ScheduleCrash(HostId host, int64_t micros);
  /// Schedules the host to come back up at absolute virtual time `micros`
  /// (idle, empty, owner absent). Rebooting an up host is a no-op.
  Status RebootHost(HostId host, int64_t micros);

  /// Enables seeded flaky-migration mode: each Migrate call fails with
  /// probability `probability` (deterministically derived from `seed` and
  /// the call sequence, so runs are reproducible in virtual time).
  /// Evictions are not flaky — going home always succeeds while the home
  /// host is up. Probability 0 disables the mode.
  Status SetMigrationFlakiness(double probability, uint64_t seed);

  /// Lost-process signals (host crash). Runs after the process is
  /// finalized, like the completion handler; the two are distinct signals
  /// so the task manager can tell environmental failure from completion
  /// or eviction.
  using FailureHandler = std::function<void(const ProcessInfo&)>;
  void SetFailureHandler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  /// Terminates a running process without completion signal.
  Status Kill(ProcessId pid);

  Result<ProcessInfo> GetProcess(ProcessId pid) const;

  /// All PCBs whose parent is `parent` (kNoProcess = all processes).
  std::vector<ProcessInfo> GetPcbInfo(ProcessId parent = kNoProcess) const;

  /// Completion signals. The handler may call back into the network
  /// (spawn/migrate); it runs after the completing process is finalized.
  using CompletionHandler = std::function<void(const ProcessInfo&)>;
  void SetCompletionHandler(CompletionHandler handler) {
    completion_handler_ = std::move(handler);
  }

  /// Eviction notifications (owner returned, foreign processes pushed
  /// home). Used by the task manager to trigger re-migration attempts.
  using EvictionHandler = std::function<void(const ProcessInfo&)>;
  void SetEvictionHandler(EvictionHandler handler) {
    eviction_handler_ = std::move(handler);
  }

  /// Advances virtual time to the next event (a process completion or a
  /// scheduled owner change) and handles it. Returns false when nothing is
  /// pending.
  bool Step();

  /// Runs until no processes remain and no owner events are pending.
  void RunUntilQuiescent();

  /// True when any process is still running.
  bool HasRunningProcesses() const { return running_count_ > 0; }

  // --- statistics -----------------------------------------------------
  int64_t total_migrations() const { return total_migrations_; }
  int64_t total_evictions() const { return total_evictions_; }
  int64_t total_spawns() const { return total_spawns_; }
  /// Aggregate busy CPU-microseconds across hosts (for utilization).
  int64_t total_busy_micros() const { return total_busy_micros_; }
  int64_t total_crashes() const { return total_crashes_; }
  /// Processes that died in a host crash.
  int64_t total_lost() const { return total_lost_; }
  /// Migrate calls that failed under flaky-migration mode.
  int64_t total_migration_failures() const {
    return total_migration_failures_;
  }

  ManualClock* clock() const { return clock_; }

  /// Attaches trace + metrics sinks. Labels one trace thread-track per
  /// host under the shared host-track process group, mirrors the totals
  /// accumulated so far into the registry's sprite counters, and emits
  /// every subsequent network event (spawn, migration, eviction, crash,
  /// reboot, lost process) plus per-host load counters.
  void set_observability(const obs::Observability& obs);

 private:
  struct Host {
    double speed = 1.0;
    bool owner_active = false;
    bool up = true;
    std::vector<ProcessId> running;  // pids executing here
  };

  /// A scheduled change of host state: owner presence, crash, or reboot.
  struct HostEvent {
    enum class Kind { kOwner, kCrash, kReboot };
    int64_t micros;
    HostId host;
    Kind kind;
    bool active;  // kOwner only
  };

  /// Applies progress to all running processes for the interval since the
  /// last accounting instant.
  void AccrueProgress(int64_t now);
  /// Earliest projected completion time across running processes.
  int64_t NextCompletionTime(ProcessId* which) const;
  void Complete(ProcessId pid, int64_t now);
  void EvictForeigners(HostId host);
  void DetachFromHost(ProcessId pid);
  /// Finalizes a process as kLost and fires the failure handler.
  void LoseProcess(ProcessId pid, int64_t now);
  void PushHostEvent(HostEvent ev);
  double RateOf(const ProcessInfo& p) const;
  /// Deterministic draw in [0, 1) for flaky-migration decisions.
  double NextFlakyDraw();
  /// Emits an instant on `host`'s trace track (no-op when untraced).
  void TraceHostEvent(HostId host, const std::string& name,
                      std::vector<obs::TraceArg> args);
  /// Emits the host's current load as a Chrome counter series.
  void TraceLoad(HostId host);

  ManualClock* clock_;
  std::vector<Host> hosts_;
  std::map<ProcessId, ProcessInfo> processes_;
  std::vector<HostEvent> host_events_;  // kept sorted by time
  CompletionHandler completion_handler_;
  EvictionHandler eviction_handler_;
  FailureHandler failure_handler_;
  ProcessId next_pid_ = 1;
  int running_count_ = 0;
  int64_t last_accrual_micros_ = 0;
  int64_t total_migrations_ = 0;
  int64_t total_evictions_ = 0;
  int64_t total_spawns_ = 0;
  int64_t total_busy_micros_ = 0;
  int64_t total_crashes_ = 0;
  int64_t total_lost_ = 0;
  int64_t total_migration_failures_ = 0;
  int64_t migration_cost_micros_ = 0;
  double migration_flakiness_ = 0.0;
  uint64_t flaky_state_ = 0;

  obs::Observability obs_;
  obs::Counter* c_spawns_ = nullptr;
  obs::Counter* c_migrations_ = nullptr;
  obs::Counter* c_migration_failures_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Counter* c_crashes_ = nullptr;
  obs::Counter* c_reboots_ = nullptr;
  obs::Counter* c_lost_ = nullptr;
};

}  // namespace papyrus::sprite

#endif  // PAPYRUS_SPRITE_NETWORK_H_
