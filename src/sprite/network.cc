#include "sprite/network.h"
#include "base/thread_annotations.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace papyrus::sprite {

namespace {
constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

/// splitmix64 — the deterministic generator behind flaky-migration draws.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Network::Network(ManualClock* clock, int num_hosts) : clock_(clock) {
  hosts_.resize(std::max(num_hosts, 1));
  last_accrual_micros_ = clock_->NowMicros();
}

void Network::set_observability(const obs::Observability& sinks) {
  base::AssertEngineThread("Network::set_observability");
  obs_ = sinks;
  if (obs_.metrics != nullptr) {
    auto bind = [this](const char* name, int64_t accumulated) {
      obs::Counter* c = obs_.metrics->FindOrCreateCounter(name);
      // Mirror what already happened so the registry view matches the
      // network's own statistics from this point on.
      c->Increment(accumulated - c->value());
      return c;
    };
    c_spawns_ = bind(obs::kSpriteSpawns, total_spawns_);
    c_migrations_ = bind(obs::kSpriteMigrations, total_migrations_);
    c_migration_failures_ =
        bind(obs::kSpriteMigrationFailures, total_migration_failures_);
    c_evictions_ = bind(obs::kSpriteEvictions, total_evictions_);
    c_crashes_ = bind(obs::kSpriteCrashes, total_crashes_);
    c_reboots_ = bind(obs::kSpriteReboots, 0);
    c_lost_ = bind(obs::kSpriteLostProcesses, total_lost_);
  } else {
    c_spawns_ = c_migrations_ = c_migration_failures_ = c_evictions_ =
        c_crashes_ = c_reboots_ = c_lost_ = nullptr;
  }
  if (obs_.trace != nullptr) {
    obs_.trace->SetProcessName(obs::kHostTrackPid, "sprite network");
    for (HostId h = 0; h < num_hosts(); ++h) {
      obs_.trace->SetThreadName(
          obs::kHostTrackPid, h,
          "host " + std::to_string(h) + (h == home_host() ? " (home)" : ""));
    }
  }
}

void Network::TraceHostEvent(HostId host, const std::string& name,
                             std::vector<obs::TraceArg> args) {
  if (obs_.trace == nullptr) return;
  obs_.trace->Instant(obs::kHostTrackPid, host, name, "sprite",
                      std::move(args));
}

void Network::TraceLoad(HostId host) {
  base::AssertEngineThread("Network::TraceLoad");
  if (obs_.trace == nullptr) return;
  obs_.trace->CounterValue(obs::kHostTrackPid, host,
                           "load host " + std::to_string(host),
                           LoadOf(host));
}

Status Network::SetHostSpeed(HostId host, double speed) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (speed <= 0.0) return Status::InvalidArgument("speed must be > 0");
  AccrueProgress(clock_->NowMicros());
  hosts_[host].speed = speed;
  return Status::OK();
}

Status Network::SetOwnerActive(HostId host, bool active) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  AccrueProgress(clock_->NowMicros());
  bool was_active = hosts_[host].owner_active;
  hosts_[host].owner_active = active;
  if (active && !was_active) EvictForeigners(host);
  return Status::OK();
}

void Network::PushHostEvent(HostEvent ev) {
  host_events_.push_back(ev);
  std::sort(host_events_.begin(), host_events_.end(),
            [](const HostEvent& a, const HostEvent& b) {
              return a.micros < b.micros;
            });
}

Status Network::ScheduleOwnerEvent(HostId host, int64_t micros,
                                   bool active) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (micros < clock_->NowMicros()) {
    return Status::InvalidArgument("owner event scheduled in the past");
  }
  PushHostEvent(
      HostEvent{micros, host, HostEvent::Kind::kOwner, active});
  return Status::OK();
}

Status Network::CrashHost(HostId host) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (!hosts_[host].up) {
    return Status::FailedPrecondition("host is already down");
  }
  int64_t now = clock_->NowMicros();
  AccrueProgress(now);
  hosts_[host].up = false;
  ++total_crashes_;
  if (c_crashes_ != nullptr) c_crashes_->Increment();
  TraceHostEvent(host, "host_crash",
                 {obs::TraceArg::Int("load", LoadOf(host))});
  // Copy: losing a process mutates the host's running list, and the
  // failure handler may call back into the network.
  std::vector<ProcessId> pids = hosts_[host].running;
  for (ProcessId pid : pids) {
    if (processes_[pid].state != ProcessState::kRunning) continue;
    LoseProcess(pid, now);
  }
  return Status::OK();
}

Status Network::ScheduleCrash(HostId host, int64_t micros) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (micros < clock_->NowMicros()) {
    return Status::InvalidArgument("crash scheduled in the past");
  }
  PushHostEvent(HostEvent{micros, host, HostEvent::Kind::kCrash, false});
  return Status::OK();
}

Status Network::RebootHost(HostId host, int64_t micros) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (micros < clock_->NowMicros()) {
    return Status::InvalidArgument("reboot scheduled in the past");
  }
  PushHostEvent(HostEvent{micros, host, HostEvent::Kind::kReboot, false});
  return Status::OK();
}

Status Network::SetMigrationFlakiness(double probability, uint64_t seed) {
  if (probability < 0.0 || probability >= 1.0) {
    return Status::InvalidArgument("flakiness must be in [0, 1)");
  }
  migration_flakiness_ = probability;
  flaky_state_ = seed ^ 0x6d69677261746533ull;
  return Status::OK();
}

double Network::NextFlakyDraw() {
  return static_cast<double>(SplitMix64(&flaky_state_) >> 11) /
         static_cast<double>(1ull << 53);
}

void Network::LoseProcess(ProcessId pid, int64_t now) {
  ProcessInfo& p = processes_[pid];
  HostId host = p.current_host;
  DetachFromHost(pid);
  p.state = ProcessState::kLost;
  p.finish_micros = now;
  --running_count_;
  ++total_lost_;
  if (c_lost_ != nullptr) c_lost_->Increment();
  TraceHostEvent(host, "process_lost",
                 {obs::TraceArg::Int("pid", pid),
                  obs::TraceArg::Str("command", p.command)});
  TraceLoad(host);
  if (failure_handler_) failure_handler_(p);
}

bool Network::IsOwnerActive(HostId host) const {
  return host >= 0 && host < num_hosts() && hosts_[host].owner_active;
}

bool Network::IsIdle(HostId host) const {
  return host >= 0 && host < num_hosts() && hosts_[host].up &&
         !hosts_[host].owner_active;
}

bool Network::IsUp(HostId host) const {
  return host >= 0 && host < num_hosts() && hosts_[host].up;
}

int Network::LoadOf(HostId host) const {
  if (host < 0 || host >= num_hosts()) return 0;
  return static_cast<int>(hosts_[host].running.size());
}

Result<HostId> Network::FindIdleHost(bool exclude_home) const {
  HostId best = kNoHost;
  double best_score = std::numeric_limits<double>::max();
  for (HostId h = exclude_home ? 1 : 0; h < num_hosts(); ++h) {
    if (!hosts_[h].up || hosts_[h].owner_active) continue;
    // Prefer lightly loaded, fast hosts.
    double score = (LoadOf(h) + 1) / hosts_[h].speed;
    if (score < best_score) {
      best_score = score;
      best = h;
    }
  }
  if (best == kNoHost) {
    return Status::FailedPrecondition("no idle workstation available");
  }
  return best;
}

Result<ProcessId> Network::Spawn(ProcessId parent,
                                 const std::string& command,
                                 int64_t work_micros, HostId host,
                                 bool migratable) {
  if (host < 0 || host >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (work_micros < 0) {
    return Status::InvalidArgument("negative work");
  }
  if (!hosts_[host].up) {
    return Status::Unavailable("host " + std::to_string(host) +
                               " is down");
  }
  AccrueProgress(clock_->NowMicros());
  ProcessInfo p;
  p.pid = next_pid_++;
  p.parent_pid = parent;
  p.home_host = home_host();
  p.current_host = host;
  p.migratable = migratable;
  p.command = command;
  p.work_micros = work_micros;
  p.spawn_micros = clock_->NowMicros();
  processes_[p.pid] = p;
  hosts_[host].running.push_back(p.pid);
  ++running_count_;
  ++total_spawns_;
  if (c_spawns_ != nullptr) c_spawns_->Increment();
  TraceHostEvent(host, "spawn",
                 {obs::TraceArg::Int("pid", p.pid),
                  obs::TraceArg::Str("command", command),
                  obs::TraceArg::Bool("migratable", migratable)});
  TraceLoad(host);
  // Zero-work processes complete on the next Step().
  return p.pid;
}

Status Network::Migrate(ProcessId pid, HostId to) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return Status::NotFound("no such process");
  ProcessInfo& p = it->second;
  if (p.state != ProcessState::kRunning) {
    return Status::FailedPrecondition("process not running");
  }
  if (!p.migratable) {
    return Status::PermissionDenied("process is not migratable");
  }
  if (to < 0 || to >= num_hosts()) {
    return Status::InvalidArgument("no such host");
  }
  if (!hosts_[to].up) {
    return Status::Unavailable("host " + std::to_string(to) + " is down");
  }
  if (to == p.current_host) return Status::OK();
  if (migration_flakiness_ > 0.0 &&
      NextFlakyDraw() < migration_flakiness_) {
    ++total_migration_failures_;
    if (c_migration_failures_ != nullptr) {
      c_migration_failures_->Increment();
    }
    TraceHostEvent(p.current_host, "migrate_failed",
                   {obs::TraceArg::Int("pid", pid),
                    obs::TraceArg::Int("to", to)});
    return Status::Unavailable("migration failed (injected flakiness); "
                               "process stays on host " +
                               std::to_string(p.current_host));
  }
  AccrueProgress(clock_->NowMicros());
  HostId from = p.current_host;
  DetachFromHost(pid);
  p.current_host = to;
  hosts_[to].running.push_back(pid);
  p.work_micros += migration_cost_micros_;
  ++p.migration_count;
  ++total_migrations_;
  if (c_migrations_ != nullptr) c_migrations_->Increment();
  TraceHostEvent(to, "migrate",
                 {obs::TraceArg::Int("pid", pid),
                  obs::TraceArg::Int("from", from),
                  obs::TraceArg::Str("command", p.command)});
  TraceLoad(from);
  TraceLoad(to);
  // §4.3.3 race: the owner came back while the transfer was in flight.
  // The process lands and is immediately evicted back home.
  if (hosts_[to].owner_active && p.home_host != to) {
    EvictForeigners(to);
  }
  return Status::OK();
}

Status Network::Kill(ProcessId pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return Status::NotFound("no such process");
  ProcessInfo& p = it->second;
  if (p.state != ProcessState::kRunning) {
    return Status::FailedPrecondition("process not running");
  }
  AccrueProgress(clock_->NowMicros());
  HostId host = p.current_host;
  DetachFromHost(pid);
  p.state = ProcessState::kKilled;
  p.finish_micros = clock_->NowMicros();
  --running_count_;
  TraceLoad(host);
  return Status::OK();
}

Result<ProcessInfo> Network::GetProcess(ProcessId pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return Status::NotFound("no such process");
  return it->second;
}

std::vector<ProcessInfo> Network::GetPcbInfo(ProcessId parent) const {
  std::vector<ProcessInfo> out;
  for (const auto& [pid, p] : processes_) {
    if (parent == kNoProcess || p.parent_pid == parent) out.push_back(p);
  }
  return out;
}

double Network::RateOf(const ProcessInfo& p) const {
  const Host& h = hosts_[p.current_host];
  int load = static_cast<int>(h.running.size());
  return h.speed / std::max(load, 1);
}

void Network::AccrueProgress(int64_t now) {
  int64_t dt = now - last_accrual_micros_;
  if (dt <= 0) {
    last_accrual_micros_ = now;
    return;
  }
  for (auto& [pid, p] : processes_) {
    if (p.state != ProcessState::kRunning) continue;
    double rate = RateOf(p);
    int64_t gained = static_cast<int64_t>(std::llround(dt * rate));
    p.done_micros = std::min(p.work_micros, p.done_micros + gained);
    total_busy_micros_ += std::min<int64_t>(gained, dt);
  }
  last_accrual_micros_ = now;
}

int64_t Network::NextCompletionTime(ProcessId* which) const {
  int64_t best = kNever;
  for (const auto& [pid, p] : processes_) {
    if (p.state != ProcessState::kRunning) continue;
    double rate = RateOf(p);
    int64_t remaining = p.work_micros - p.done_micros;
    int64_t eta;
    if (remaining <= 0) {
      eta = last_accrual_micros_;
    } else {
      eta = last_accrual_micros_ +
            static_cast<int64_t>(std::ceil(remaining / rate));
    }
    if (eta < best) {
      best = eta;
      *which = pid;
    }
  }
  return best;
}

void Network::Complete(ProcessId pid, int64_t now) {
  ProcessInfo& p = processes_[pid];
  HostId host = p.current_host;
  DetachFromHost(pid);
  p.state = ProcessState::kCompleted;
  p.done_micros = p.work_micros;
  p.finish_micros = now;
  --running_count_;
  TraceLoad(host);
  if (completion_handler_) completion_handler_(p);
}

void Network::EvictForeigners(HostId host) {
  // Copy: eviction mutates the host's running list.
  std::vector<ProcessId> pids = hosts_[host].running;
  for (ProcessId pid : pids) {
    ProcessInfo& p = processes_[pid];
    if (p.current_host != host) continue;
    if (p.home_host == host) continue;  // native process, not evicted
    if (!hosts_[p.home_host].up) {
      // Nowhere to evict to: the home node is down, so the address space
      // cannot be transferred and the process is lost.
      LoseProcess(pid, clock_->NowMicros());
      continue;
    }
    DetachFromHost(pid);
    p.current_host = p.home_host;
    hosts_[p.home_host].running.push_back(pid);
    p.work_micros += migration_cost_micros_;
    ++p.migration_count;
    ++total_evictions_;
    if (c_evictions_ != nullptr) c_evictions_->Increment();
    TraceHostEvent(host, "evict",
                   {obs::TraceArg::Int("pid", pid),
                    obs::TraceArg::Int("home", p.home_host)});
    TraceLoad(host);
    TraceLoad(p.home_host);
    if (eviction_handler_) eviction_handler_(p);
  }
}

void Network::DetachFromHost(ProcessId pid) {
  ProcessInfo& p = processes_[pid];
  auto& running = hosts_[p.current_host].running;
  running.erase(std::remove(running.begin(), running.end(), pid),
                running.end());
}

bool Network::Step() {
  ProcessId next_pid = kNoProcess;
  int64_t completion_at = NextCompletionTime(&next_pid);
  int64_t event_at = host_events_.empty() ? kNever
                                          : host_events_.front().micros;
  if (completion_at == kNever && event_at == kNever) return false;

  if (event_at <= completion_at) {
    HostEvent ev = host_events_.front();
    host_events_.erase(host_events_.begin());
    AccrueProgress(ev.micros);
    if (ev.micros > clock_->NowMicros()) clock_->SetMicros(ev.micros);
    switch (ev.kind) {
      case HostEvent::Kind::kOwner:
        (void)SetOwnerActive(ev.host, ev.active);
        break;
      case HostEvent::Kind::kCrash:
        (void)CrashHost(ev.host);  // no-op if already down
        break;
      case HostEvent::Kind::kReboot:
        if (!hosts_[ev.host].up) {
          hosts_[ev.host].up = true;
          if (c_reboots_ != nullptr) c_reboots_->Increment();
          TraceHostEvent(ev.host, "host_reboot", {});
        }
        break;
    }
    return true;
  }
  AccrueProgress(completion_at);
  if (completion_at > clock_->NowMicros()) clock_->SetMicros(completion_at);
  Complete(next_pid, completion_at);
  return true;
}

void Network::RunUntilQuiescent() {
  while (Step()) {
  }
}

}  // namespace papyrus::sprite
