#ifndef PAPYRUS_TDL_TEMPLATE_H_
#define PAPYRUS_TDL_TEMPLATE_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace papyrus::tdl {

/// A task template: a TDL script plus the formal input/output lists
/// declared by its leading `task` command (§4.2.2).
///
/// Templates are plain scripts stored as text — the thesis' "interpretive
/// approach": adding or deleting templates never touches the design
/// database, and the task manager re-interprets the text on every
/// invocation, so conditional flows and loops are evaluated against the
/// run-time state.
struct TaskTemplate {
  std::string name;
  std::vector<std::string> formal_inputs;
  std::vector<std::string> formal_outputs;
  std::string script;  // full template text, including the task command
};

/// Parses just the `task Name {Inputs} {Outputs}` header of a template and
/// validates that it is the first command.
Result<TaskTemplate> ParseTemplateHeader(const std::string& script);

/// Stores task templates by name. Expert designers or system managers add
/// templates; circuit designers only invoke them (§3.3.2).
class TemplateLibrary {
 public:
  /// Parses the script's task header and registers the template under the
  /// declared name. Replaces an existing template of the same name.
  Status Add(const std::string& script);

  /// Loads one template from a file ("Each task template is stored as a
  /// UNIX file", §4.2.2).
  Status AddFromFile(const std::string& path);

  /// Loads every `*.tdl` file in a directory; returns how many templates
  /// were registered. Files that fail to parse abort the load.
  Result<int> LoadDirectory(const std::string& directory);

  Result<const TaskTemplate*> Find(const std::string& name) const;
  bool Has(const std::string& name) const {
    return templates_.count(name) > 0;
  }
  bool Remove(const std::string& name) {
    return templates_.erase(name) > 0;
  }
  std::vector<std::string> TemplateNames() const;
  size_t size() const { return templates_.size(); }

 private:
  std::map<std::string, TaskTemplate> templates_;
};

/// Registers the example templates from the thesis (Padp §4.2.3,
/// Structure_Synthesis Figure 4.2, Mosaico Figure 4.3, plus the tasks of
/// the Shifter-synthesis scenario in Figure 3.7). Adapted only where the
/// thesis text is abbreviated (e.g. `create-logic-description`'s editor
/// step takes option-driven inputs).
Status RegisterThesisTemplates(TemplateLibrary* library);

}  // namespace papyrus::tdl

#endif  // PAPYRUS_TDL_TEMPLATE_H_
