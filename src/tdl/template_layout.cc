#include "tdl/template_layout.h"

#include <map>
#include <set>
#include <sstream>

#include "base/macros.h"
#include "base/strings.h"
#include "tcl/parser.h"

namespace papyrus::tdl {

namespace {

/// Applies a formal->actual mapping to a name (subtask expansion).
std::string MapName(const std::map<std::string, std::string>& mapping,
                    const std::string& name) {
  auto it = mapping.find(name);
  return it == mapping.end() ? name : it->second;
}

Status ScanScript(const std::string& script, const TemplateLibrary* library,
                  const std::map<std::string, std::string>& name_map,
                  bool conditional, bool from_subtask, int depth,
                  std::vector<StaticStep>* out);

/// Parses one `step` command's raw words into a StaticStep.
Status ScanStepCommand(const tcl::RawCommand& cmd,
                       const std::map<std::string, std::string>& name_map,
                       bool conditional, bool from_subtask,
                       std::vector<StaticStep>* out) {
  if (cmd.words.size() < 5) {
    return Status::InvalidArgument("step command with too few fields");
  }
  StaticStep step;
  step.conditional = conditional;
  step.from_subtask = from_subtask;
  auto head = tcl::ParseList(cmd.words[1].text);
  if (!head.ok()) return head.status();
  int64_t uid = 0;
  if (head->size() == 2 && ParseInt64((*head)[0], &uid)) {
    step.user_id = static_cast<int>(uid);
    step.name = (*head)[1];
  } else if (!head->empty()) {
    step.name = head->back();
  }
  auto ins = tcl::ParseList(cmd.words[2].text);
  auto outs = tcl::ParseList(cmd.words[3].text);
  if (!ins.ok() || !outs.ok()) {
    return Status::InvalidArgument("bad step argument lists");
  }
  for (const std::string& name : *ins) {
    step.inputs.push_back(MapName(name_map, name));
  }
  for (const std::string& name : *outs) {
    step.outputs.push_back(MapName(name_map, name));
  }
  std::vector<std::string> words = SplitWhitespace(cmd.words[4].text);
  if (!words.empty()) step.tool = words[0];
  for (size_t i = 5; i < cmd.words.size(); ++i) {
    auto field = tcl::ParseList(cmd.words[i].text);
    if (!field.ok() || field->empty()) continue;
    if ((*field)[0] == "NonMigrate") {
      step.migratable = false;
    } else if ((*field)[0] == "ResumedStep" && field->size() == 2) {
      int64_t rid = 0;
      if (ParseInt64((*field)[1], &rid)) {
        step.has_resumed_step = true;
        step.resumed_step = static_cast<int>(rid);
      }
    } else if ((*field)[0] == "ControlDependency") {
      for (size_t k = 1; k < field->size(); ++k) {
        int64_t dep = 0;
        if (ParseInt64((*field)[k], &dep)) {
          step.control_deps.push_back(static_cast<int>(dep));
        }
      }
    }
  }
  out->push_back(std::move(step));
  return Status::OK();
}

Status ScanSubtaskCommand(const tcl::RawCommand& cmd,
                          const TemplateLibrary* library,
                          const std::map<std::string, std::string>& name_map,
                          bool conditional, int depth,
                          std::vector<StaticStep>* out) {
  if (cmd.words.size() != 4) {
    return Status::InvalidArgument("subtask command with bad arity");
  }
  auto head = tcl::ParseList(cmd.words[1].text);
  if (!head.ok() || head->empty()) {
    return Status::InvalidArgument("bad subtask name");
  }
  std::string name = head->back();
  if (library == nullptr) {
    // Unexpanded placeholder: render the subtask as a single pseudo-step.
    StaticStep step;
    step.name = name;
    step.tool = "<subtask>";
    step.conditional = conditional;
    auto ins = tcl::ParseList(cmd.words[2].text);
    auto outs = tcl::ParseList(cmd.words[3].text);
    if (ins.ok()) {
      for (const std::string& n : *ins) {
        step.inputs.push_back(MapName(name_map, n));
      }
    }
    if (outs.ok()) {
      for (const std::string& n : *outs) {
        step.outputs.push_back(MapName(name_map, n));
      }
    }
    out->push_back(std::move(step));
    return Status::OK();
  }
  if (depth > 16) {
    return Status::FailedPrecondition("subtask nesting too deep");
  }
  PAPYRUS_ASSIGN_OR_RETURN(const TaskTemplate* sub, library->Find(name));
  auto ins = tcl::ParseList(cmd.words[2].text);
  auto outs = tcl::ParseList(cmd.words[3].text);
  if (!ins.ok() || !outs.ok() ||
      ins->size() != sub->formal_inputs.size() ||
      outs->size() != sub->formal_outputs.size()) {
    return Status::InvalidArgument("subtask " + name +
                                   " arguments do not match its template");
  }
  std::map<std::string, std::string> sub_map;
  for (size_t i = 0; i < ins->size(); ++i) {
    sub_map[sub->formal_inputs[i]] = MapName(name_map, (*ins)[i]);
  }
  for (size_t i = 0; i < outs->size(); ++i) {
    sub_map[sub->formal_outputs[i]] = MapName(name_map, (*outs)[i]);
  }
  return ScanScript(sub->script, library, sub_map, conditional,
                    /*from_subtask=*/true, depth + 1, out);
}

Status ScanScript(const std::string& script, const TemplateLibrary* library,
                  const std::map<std::string, std::string>& name_map,
                  bool conditional, bool from_subtask, int depth,
                  std::vector<StaticStep>* out) {
  PAPYRUS_ASSIGN_OR_RETURN(std::vector<tcl::RawCommand> commands,
                           tcl::ParseScript(script));
  for (const tcl::RawCommand& cmd : commands) {
    if (cmd.words.empty()) continue;
    const std::string& head = cmd.words[0].text;
    if (head == "step") {
      PAPYRUS_RETURN_IF_ERROR(ScanStepCommand(cmd, name_map, conditional,
                                              from_subtask, out));
    } else if (head == "subtask") {
      PAPYRUS_RETURN_IF_ERROR(ScanSubtaskCommand(
          cmd, library, name_map, conditional, depth, out));
    } else if (head == "if" || head == "while" || head == "for" ||
               head == "foreach" || head == "eval") {
      // Steps inside control-structure bodies execute conditionally:
      // recurse into every braced word that parses as a script with
      // steps.
      for (size_t i = 1; i < cmd.words.size(); ++i) {
        if (cmd.words[i].kind != tcl::WordKind::kBraced) continue;
        if (cmd.words[i].text.find("step") == std::string::npos &&
            cmd.words[i].text.find("subtask") == std::string::npos) {
          continue;
        }
        // A failed nested parse (e.g. an expression) is not an error.
        (void)ScanScript(cmd.words[i].text, library, name_map,
                         /*conditional=*/true, from_subtask, depth, out);
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<StaticStep>> ExtractSteps(const std::string& script,
                                             const TemplateLibrary* library) {
  std::vector<StaticStep> steps;
  PAPYRUS_RETURN_IF_ERROR(ScanScript(script, library, {}, false, false, 0,
                                     &steps));
  return steps;
}

TemplateLayout ComputeTemplateLayout(const std::vector<StaticStep>& steps) {
  TemplateLayout layout;
  // Dependency edges: producer of a name -> consumers; control deps by
  // user id. The same output name may be written by several steps (e.g.
  // the Mosaico compaction fallback): every producer counts.
  std::map<std::string, std::vector<size_t>> producers;
  std::map<int, std::vector<size_t>> by_user_id;
  for (size_t i = 0; i < steps.size(); ++i) {
    for (const std::string& out : steps[i].outputs) {
      producers[out].push_back(i);
    }
    if (steps[i].user_id > 0) by_user_id[steps[i].user_id].push_back(i);
  }
  std::vector<int> level(steps.size(), -1);
  // Longest-path leveling with bounded iteration (the graph is acyclic in
  // well-formed templates; the bound guards against malformed ones).
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < static_cast<int>(steps.size()) + 2) {
    changed = false;
    for (size_t i = 0; i < steps.size(); ++i) {
      int depth = 0;
      for (const std::string& in : steps[i].inputs) {
        auto it = producers.find(in);
        if (it == producers.end()) continue;
        for (size_t p : it->second) {
          if (p == i) continue;
          depth = std::max(depth, level[p] < 0 ? 1 : level[p] + 1);
        }
      }
      for (int dep : steps[i].control_deps) {
        auto it = by_user_id.find(dep);
        if (it == by_user_id.end()) continue;
        for (size_t p : it->second) {
          if (p == i) continue;
          depth = std::max(depth, level[p] < 0 ? 1 : level[p] + 1);
        }
      }
      if (depth != level[i]) {
        level[i] = depth;
        changed = true;
      }
    }
  }
  int max_level = 0;
  for (int l : level) max_level = std::max(max_level, l);
  layout.levels.resize(max_level + 1);
  for (size_t i = 0; i < steps.size(); ++i) {
    layout.levels[std::max(level[i], 0)].push_back(i);
  }
  return layout;
}

Result<std::string> RenderTemplate(const TaskTemplate& tmpl,
                                   const TemplateLibrary* library) {
  PAPYRUS_ASSIGN_OR_RETURN(std::vector<StaticStep> steps,
                           ExtractSteps(tmpl.script, library));
  TemplateLayout layout = ComputeTemplateLayout(steps);
  std::ostringstream out;
  out << "Task " << tmpl.name << " {" << Join(tmpl.formal_inputs, " ")
      << "} -> {" << Join(tmpl.formal_outputs, " ") << "}\n";
  for (size_t l = 0; l < layout.levels.size(); ++l) {
    out << "  level " << l << ":";
    for (size_t idx : layout.levels[l]) {
      const StaticStep& s = steps[idx];
      out << "  [" << (s.conditional ? "?" : "") << s.name;
      if (s.from_subtask) out << " (sub)";
      if (!s.migratable) out << " (home)";
      out << "]";
    }
    out << "\n";
  }
  // Dependency edges.
  std::map<std::string, std::string> producer_name;
  for (const StaticStep& s : steps) {
    for (const std::string& o : s.outputs) producer_name[o] = s.name;
  }
  for (const StaticStep& s : steps) {
    for (const std::string& in : s.inputs) {
      auto it = producer_name.find(in);
      if (it != producer_name.end() && it->second != s.name) {
        out << "  " << it->second << " --" << in << "--> " << s.name
            << "\n";
      }
    }
    for (int dep : s.control_deps) {
      for (const StaticStep& p : steps) {
        if (p.user_id == dep) {
          out << "  " << p.name << " ==control==> " << s.name << "\n";
        }
      }
    }
    if (s.has_resumed_step) {
      if (s.resumed_step == 0) {
        out << "  " << s.name << " ..abort.. (restart from scratch)\n";
      } else {
        for (const StaticStep& p : steps) {
          if (p.user_id == s.resumed_step) {
            out << "  " << s.name << " ..abort..> after " << p.name
                << "\n";
          }
        }
      }
    }
  }
  return out.str();
}

}  // namespace papyrus::tdl
