#ifndef PAPYRUS_TDL_TEMPLATE_LAYOUT_H_
#define PAPYRUS_TDL_TEMPLATE_LAYOUT_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "tdl/template.h"

namespace papyrus::tdl {

/// One step found by statically scanning a task template — the basis of
/// the §4.3.1 graphical task representation. Steps inside conditional
/// bodies are included and flagged (the Figure 4.3 diamond).
struct StaticStep {
  std::string name;
  int user_id = 0;
  std::string tool;
  std::vector<std::string> inputs;   // formal names
  std::vector<std::string> outputs;  // formal names
  bool conditional = false;  // nested in if/while/for/foreach bodies
  bool from_subtask = false;  // discovered by expanding a subtask
  bool migratable = true;
  bool has_resumed_step = false;
  int resumed_step = 0;
  std::vector<int> control_deps;
};

/// Statically extracts every step a template can execute, recursing into
/// control-structure bodies and (when `library` is provided) expanding
/// subtasks in-line with formal-name mapping.
Result<std::vector<StaticStep>> ExtractSteps(const std::string& script,
                                             const TemplateLibrary* library);

/// Grid placement of the steps: `levels[i]` holds the indexes (into the
/// ExtractSteps vector) of the steps at dependency depth i — the
/// topological sort followed by level-by-level placement of §4.3.1.
struct TemplateLayout {
  std::vector<std::vector<size_t>> levels;
};

/// Computes the layout from data and control dependencies. Steps whose
/// dependencies are unsatisfiable land on an extra trailing level.
TemplateLayout ComputeTemplateLayout(const std::vector<StaticStep>& steps);

/// ASCII rendering of a template (the Figure 4.2/4.3 pictures): one row
/// per level, `?` marking conditional steps, `(sub)` marking steps from
/// expanded subtasks, and dependency/abort edges listed below.
Result<std::string> RenderTemplate(const TaskTemplate& tmpl,
                                   const TemplateLibrary* library);

}  // namespace papyrus::tdl

#endif  // PAPYRUS_TDL_TEMPLATE_LAYOUT_H_
