#include "tdl/template.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/macros.h"
#include "tcl/parser.h"

namespace papyrus::tdl {

Result<TaskTemplate> ParseTemplateHeader(const std::string& script) {
  auto commands = tcl::ParseScript(script);
  if (!commands.ok()) return commands.status();
  if (commands->empty()) {
    return Status::InvalidArgument("empty task template");
  }
  const tcl::RawCommand& head = (*commands)[0];
  if (head.words.empty() || head.words[0].text != "task") {
    return Status::InvalidArgument(
        "task template must begin with a `task` command");
  }
  if (head.words.size() != 4) {
    return Status::InvalidArgument(
        "task command requires: task Name {Inputs} {Outputs}");
  }
  TaskTemplate tmpl;
  tmpl.name = head.words[1].text;
  if (tmpl.name.empty()) {
    return Status::InvalidArgument("task name must not be empty");
  }
  auto inputs = tcl::ParseList(head.words[2].text);
  if (!inputs.ok()) return inputs.status();
  auto outputs = tcl::ParseList(head.words[3].text);
  if (!outputs.ok()) return outputs.status();
  tmpl.formal_inputs = *inputs;
  tmpl.formal_outputs = *outputs;
  tmpl.script = script;
  return tmpl;
}

Status TemplateLibrary::Add(const std::string& script) {
  auto tmpl = ParseTemplateHeader(script);
  if (!tmpl.ok()) return tmpl.status();
  templates_[tmpl->name] = std::move(*tmpl);
  return Status::OK();
}

Status TemplateLibrary::AddFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open task template file: " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  Status st = Add(buffer.str());
  if (!st.ok()) {
    return Status(st.code(), path + ": " + st.message());
  }
  return Status::OK();
}

Result<int> TemplateLibrary::LoadDirectory(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return Status::NotFound("cannot read template directory " + directory +
                            ": " + ec.message());
  }
  int loaded = 0;
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".tdl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    PAPYRUS_RETURN_IF_ERROR(AddFromFile(path));
    ++loaded;
  }
  return loaded;
}

Result<const TaskTemplate*> TemplateLibrary::Find(
    const std::string& name) const {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("no such task template: " + name);
  }
  return &it->second;
}

std::vector<std::string> TemplateLibrary::TemplateNames() const {
  std::vector<std::string> names;
  names.reserve(templates_.size());
  for (const auto& [name, tmpl] : templates_) names.push_back(name);
  return names;
}

Status RegisterThesisTemplates(TemplateLibrary* library) {
  // §4.2.3: the single-tool pad placement task.
  const char* kPadp = R"TDL(
task Padp {Incell} {Outcell}
step Pads_Placement {Incell} {Outcell} {padplace -c -o Outcell Incell}
)TDL";

  // Figure 4.2: generic synthesis from structure-level description to
  // padded physical layout, including a parallel simulation branch.
  const char* kStructureSynthesis = R"TDL(
task Structure_Synthesis {Incell Musa_Command} {Outcell Cell_Statistics}
# translate a high-level description to a multi-level logic network
step NetlistCompile {Incell} {cell.blif} {bdsyn -o cell.blif Incell}
# optimize a multi-level logic network
step Logic_Synthesis {cell.blif} {cell.logic} {misII -f script.msu -T oct -o cell.logic cell.blif}
# place pads
subtask Padp {cell.logic} {cell.padp}
# place and route to obtain a physical layout
step {1 Place_and_Route} {cell.padp} {Outcell} {wolfe -f -r 2 -o Outcell cell.padp}
# perform a multi-level simulation
step Simulate {cell.logic Musa_Command} {} {musa -i Musa_Command cell.logic} {ControlDependency 1}
# collect performance statistics
step Chip_Statistics_Collection {Outcell} {Cell_Statistics} {chipstats Outcell}
)TDL";

  // Figure 4.3: the Mosaico macro-cell place-and-route pipeline with the
  // $status-driven compaction fallback and a programmable abort.
  const char* kMosaico = R"TDL(
task Mosaico {Incell} {Outcell Cell_statistics}
# define the channel areas
step Channel_Definition {Incell} {cdOutput} {atlas -i -z -o cdOutput Incell}
# perform a global routing
step Global_Routing {cdOutput} {grOutput} {mosaicoGR cdOutput -r -ov grOutput}
# calculate the power and ground currents
step {1 Power_Ground_Current_Calculation} {grOutput} {pgOutput} {PGcurrent grOutput}
# perform a channel routing
step Channel_Routing {grOutput} {crOutput} {mosaicoDR -d -o crOutput -r YACR grOutput}
# format transformation
step Oct_Symbolic_Flattening_1 {crOutput grOutput} {flOutput1} {octflatten -r grOutput -o flOutput1 crOutput}
# minimizing the via areas
step Via_Minimization {flOutput1} {vmOutput} {mizer -o vmOutput flOutput1} {ControlDependency 1}
# another format transformation
step Oct_Symbolic_Flattening_2 {vmOutput Incell} {flOutput2} {octflatten -r Incell -o flOutput2 vmOutput}
# place pads
step Place_Pads {flOutput2} {ppOutput} {padplace -f -S -o ppOutput flOutput2}
# compact the layout starting with the horizontal direction
step Horizontal_Compaction {ppOutput} {Outcell1} {sparcs -t -w NWEL -w PWEL -w PLACE -o Outcell1 ppOutput}
# if not successful, compact the layout starting with the vertical direction
if {$status} {step Vertical_Compaction {ppOutput} {Outcell1} {sparcs -v -t -w NWEL -w PWEL -w PLACE -o Outcell1 ppOutput} {ResumedStep 1}}
# create a protection frame as a high-level abstraction
step Create_Abstraction_View {Outcell1} {Outcell} {vulcan Outcell1 -o Outcell}
# check for routing completeness
step Routing_Checks {Incell Outcell} {} {mosaicoRC -m 20 -c Incell Outcell}
# collect performance statistics
step Statistics_Calculation {Outcell1} {Cell_statistics} {chipstats Outcell1}
)TDL";

  // Figure 3.7 scenario tasks (Shifter-synthesis design thread).
  const char* kCreateLogicDescription = R"TDL(
task Create_Logic_Description {} {Outcell}
# interactive behavioral entry; must run on the designer's own machine
step Enter_Logic {} {cell.bds} {edit -inputs 8 -outputs 8 -complexity 12} {NonMigrate}
# format transformation
step Format_Transformation {cell.bds} {Outcell} {bdsyn -o Outcell cell.bds}
)TDL";

  const char* kLogicSimulation = R"TDL(
task Logic_Simulation {Incell} {}
step Simulate {Incell} {} {musa Incell}
)TDL";

  const char* kStandardCellPR = R"TDL(
task Standard_Cell_Place_and_Route {Incell} {Outcell}
step Place_and_Route {Incell} {Outcell} {wolfe -f -r 2 -o Outcell Incell}
)TDL";

  const char* kPlacePads = R"TDL(
task Place_Pads {Incell} {Outcell}
step Pads {Incell} {Outcell} {padplace -f -o Outcell Incell}
)TDL";

  const char* kPlaGeneration = R"TDL(
task PLA_Generation {Incell} {Outcell}
# two-level minimization
step {1 Two_Level_Minimization} {Incell} {cell.min} {espresso -o pleasure Incell}
# PLA folding
step Pla_Folding {cell.min} {cell.fold} {pleasure cell.min}
# array layout; on failure re-run folding (restart right after espresso)
step Array_Layout {cell.fold} {Outcell} {panda -o Outcell cell.fold} {ResumedStep 1}
)TDL";

  // Figure 3.4: the long-running macro place-and-route task whose
  // detailed-routing step resumes from the state after placement.
  const char* kMacroPR = R"TDL(
task Macro_Place_and_Route {Incell} {Outcell}
step Floor_Planning {Incell} {cell.fp} {atlas -i -o cell.fp Incell}
step {2 Placement} {cell.fp} {cell.place} {puppy -o cell.place cell.fp}
step Global_Routing {cell.place} {cell.gr} {mosaicoGR cell.place -ov cell.gr}
step Detailed_Routing {cell.gr} {Outcell} {mosaicoDR -d -o Outcell cell.gr} {ResumedStep 2}
)TDL";

  for (const char* script :
       {kPadp, kStructureSynthesis, kMosaico, kCreateLogicDescription,
        kLogicSimulation, kStandardCellPR, kPlacePads, kPlaGeneration,
        kMacroPR}) {
    PAPYRUS_RETURN_IF_ERROR(library->Add(script));
  }
  return Status::OK();
}

}  // namespace papyrus::tdl
