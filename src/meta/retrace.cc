#include "meta/retrace.h"

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "cadtools/tool.h"

namespace papyrus::meta {

Result<RetraceResult> Retracer::Retrace(const Adg& adg,
                                        const std::string& modified_name) {
  base::AssertEngineThread("Retracer::Retrace");
  RetraceResult result;
  result.record.task_name = "<retrace " + modified_name + ">";
  result.record.invoke_micros = db_->clock()->NowMicros();
  std::vector<const AdgEdge*> plan = adg.RetracePlan(modified_name);
  for (const AdgEdge* edge : plan) {
    PAPYRUS_ASSIGN_OR_RETURN(const cadtools::Tool* tool,
                             tools_->Find(edge->tool));
    // Resolve each input name to its latest visible version so upstream
    // regenerations feed downstream re-runs.
    cadtools::ToolRunContext ctx;
    std::vector<oct::ObjectId> input_ids;
    bool inputs_ok = true;
    for (const oct::ObjectId& in : edge->inputs) {
      auto latest = db_->LatestVisible(in.name);
      if (!latest.ok()) {
        inputs_ok = false;
        break;
      }
      auto rec = db_->Get(*latest);
      if (!rec.ok()) {
        inputs_ok = false;
        break;
      }
      input_ids.push_back(*latest);
      ctx.inputs.push_back(&(*rec)->payload);
      ctx.input_names.push_back(latest->name);
    }
    if (!inputs_ok) {
      ++result.invocations_skipped;
      continue;
    }
    // Reuse the recorded options.
    std::vector<std::string> words = SplitWhitespace(edge->options);
    if (!words.empty() && words[0] == edge->tool) {
      words.erase(words.begin());
    }
    ctx.options = cadtools::ToolOptions::Parse(words);
    ctx.seed = Fnv1a(edge->tool + edge->options);
    cadtools::ToolRunResult run = tool->Run(ctx);
    if (run.exit_status != 0) {
      return Status::Aborted("retrace: " + edge->tool + " failed: " +
                             run.message);
    }
    if (run.outputs.size() != edge->outputs.size()) {
      return Status::Internal("retrace: " + edge->tool +
                              " produced a different output arity");
    }
    task::StepRecord step;
    step.step_name = "<retrace>";
    step.tool = edge->tool;
    step.invocation = edge->options;
    step.inputs = input_ids;
    oct::Transaction txn(db_);
    for (size_t i = 0; i < run.outputs.size(); ++i) {
      txn.StageCreate(edge->outputs[i].name, std::move(run.outputs[i]),
                      edge->tool);
    }
    PAPYRUS_ASSIGN_OR_RETURN(std::vector<oct::ObjectId> created,
                             txn.Commit());
    step.outputs = created;
    step.completion_micros = db_->clock()->NowMicros();
    result.record.steps.push_back(std::move(step));
    for (const oct::ObjectId& id : created) {
      result.regenerated.push_back(id);
    }
    ++result.invocations_rerun;
  }
  result.record.commit_micros = db_->clock()->NowMicros();
  return result;
}

}  // namespace papyrus::meta
