#include "meta/inference.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <sstream>

#include "base/strings.h"
#include "cadtools/measurements.h"
#include "cadtools/tool.h"

namespace papyrus::meta {

const char* RelKindToString(RelKind kind) {
  switch (kind) {
    case RelKind::kDerivation:
      return "derivation";
    case RelKind::kVersionOf:
      return "version-of";
    case RelKind::kConfiguration:
      return "configuration";
    case RelKind::kEquivalence:
      return "equivalence";
  }
  return "unknown";
}

int RelationshipStore::Add(RelKind kind, const oct::ObjectId& from,
                           const oct::ObjectId& to,
                           const std::string& via_tool) {
  Relationship rel;
  rel.id = next_id_++;
  rel.kind = kind;
  rel.from = from;
  rel.to = to;
  rel.via_tool = via_tool;
  by_from_[from].push_back(rel.id);
  by_to_[to].push_back(rel.id);
  int id = rel.id;
  rels_[id] = std::move(rel);
  return id;
}

std::vector<const Relationship*> RelationshipStore::Of(
    const oct::ObjectId& id) const {
  std::vector<const Relationship*> out;
  if (auto it = by_from_.find(id); it != by_from_.end()) {
    for (int rid : it->second) out.push_back(&rels_.at(rid));
  }
  if (auto it = by_to_.find(id); it != by_to_.end()) {
    for (int rid : it->second) out.push_back(&rels_.at(rid));
  }
  return out;
}

std::vector<const Relationship*> RelationshipStore::From(
    const oct::ObjectId& id, RelKind kind) const {
  std::vector<const Relationship*> out;
  if (auto it = by_from_.find(id); it != by_from_.end()) {
    for (int rid : it->second) {
      const Relationship& rel = rels_.at(rid);
      if (rel.kind == kind) out.push_back(&rel);
    }
  }
  return out;
}

std::vector<const Relationship*> RelationshipStore::To(
    const oct::ObjectId& id, RelKind kind) const {
  std::vector<const Relationship*> out;
  if (auto it = by_to_.find(id); it != by_to_.end()) {
    for (int rid : it->second) {
      const Relationship& rel = rels_.at(rid);
      if (rel.kind == kind) out.push_back(&rel);
    }
  }
  return out;
}

MetadataEngine::MetadataEngine(oct::OctDatabase* db,
                               oct::AttributeStore* attrs,
                               const TsdRegistry* tsds)
    : db_(db), attrs_(attrs), tsds_(tsds) {}

const std::vector<MetadataEngine::AttrSpec>& MetadataEngine::AttrSpecsFor(
    const std::string& type) {
  using Mode = oct::AttributeMode;
  static const std::vector<AttrSpec> kLayout = {
      // cells is an index attribute: evaluated immediately (§6.4.1).
      {"cells", Mode::kImmediate},
      {"area", Mode::kLazy},
      {"delay", Mode::kLazy},
      {"power", Mode::kLazy},
      {"wire", Mode::kLazy},
  };
  static const std::vector<AttrSpec> kLogic = {
      {"num_inputs", Mode::kImmediate},
      {"num_outputs", Mode::kImmediate},
      {"format", Mode::kImmediate},
      {"minterms", Mode::kLazy},
      {"literals", Mode::kLazy},
      {"levels", Mode::kLazy},
  };
  static const std::vector<AttrSpec> kBehavioral = {
      {"num_inputs", Mode::kImmediate},
      {"num_outputs", Mode::kImmediate},
      {"complexity", Mode::kLazy},
  };
  static const std::vector<AttrSpec> kText = {
      {"length", Mode::kLazy},
  };
  static const std::vector<AttrSpec> kNone;
  if (type == "layout") return kLayout;
  if (type == "logic") return kLogic;
  if (type == "behavioral") return kBehavioral;
  if (type == "text") return kText;
  return kNone;
}

Status MetadataEngine::Observe(const task::TaskHistoryRecord& record) {
  adg_.AddFromHistoryRecord(record);
  for (const task::StepRecord& step : record.steps) {
    // Cache-served steps re-bind versions an earlier execution already
    // taught the engine about; re-observing them would double-count.
    if (step.exit_status != 0 || step.cache_hit) continue;
    InferForInvocation(step);
  }
  return Status::OK();
}

void MetadataEngine::InferForInvocation(const task::StepRecord& step) {
  auto tsd_result = tsds_->Find(step.tool);
  const ToolSemantics* tsd =
      tsd_result.ok() ? *tsd_result : nullptr;

  // 1. Type inference (§6.4.1): the output's type comes from the creating
  //    tool's TSD, selected by the tool's option value.
  std::string selector_value;
  if (tsd != nullptr && !tsd->selector_flag.empty()) {
    std::vector<std::string> words = SplitWhitespace(step.invocation);
    if (!words.empty()) {
      cadtools::ToolOptions opts = cadtools::ToolOptions::Parse(
          std::vector<std::string>(words.begin() + 1, words.end()));
      selector_value = opts.FlagValue(tsd->selector_flag);
    }
  }
  for (const oct::ObjectId& out : step.outputs) {
    TypeInfo info;
    if (tsd != nullptr) {
      const OutputTyping& typing = tsd->OutputFor(selector_value);
      info.type = typing.type;
      info.format = typing.format;
    } else {
      // No TSD: fall back to the payload's own kind (the engine degrades
      // gracefully for unknown tools).
      auto rec = db_->Peek(out);
      info.type = rec.ok() ? oct::PayloadTypeName((*rec)->payload)
                           : "unknown";
    }
    types_[out] = info;
    // 2. Attribute attachment and evaluation.
    AttachAttributes(out, info, tsd, step.inputs);
    // Constraint attributes are checked as early as possible: right at
    // object creation (§6.4.1).
    CheckConstraints(out, info.type);
  }

  // 3. Relationship establishment (§6.4.2).
  EstablishRelationships(step, tsd);

  // 4. Incremental re-evaluation: new versions invalidate the propagated
  //    attributes of composites containing their predecessors.
  for (const oct::ObjectId& out : step.outputs) {
    if (out.version > 1) {
      InvalidateDependents(oct::ObjectId{out.name, out.version - 1});
    }
  }
}

void MetadataEngine::AttachAttributes(
    const oct::ObjectId& id, const TypeInfo& info, const ToolSemantics* tsd,
    const std::vector<oct::ObjectId>& inputs) {
  for (const AttrSpec& spec : AttrSpecsFor(info.type)) {
    std::string compute_tool = cadtools::MeasurementToolFor(spec.name);
    attrs_->Attach(id, spec.name, compute_tool, spec.mode);

    // Inherit-list propagation: when the creating tool does not affect
    // the attribute, copy the value from the first input that has it.
    bool inherited = false;
    if (tsd != nullptr &&
        std::find(tsd->inherit_list.begin(), tsd->inherit_list.end(),
                  spec.name) != tsd->inherit_list.end()) {
      for (const oct::ObjectId& in : inputs) {
        auto value = attrs_->GetValue(in, spec.name);
        if (value.ok()) {
          (void)attrs_->SetComputed(id, spec.name, *value);
          ++inherited_values_;
          inherited = true;
          break;
        }
      }
    }
    if (!inherited && spec.mode == oct::AttributeMode::kImmediate) {
      auto rec = db_->Peek(id);
      if (rec.ok()) {
        auto value =
            cadtools::MeasureAttribute((*rec)->payload, spec.name);
        if (value.ok()) {
          (void)attrs_->SetComputed(id, spec.name, *value);
          ++immediate_evaluations_;
        }
      }
    }
  }
}

void MetadataEngine::EstablishRelationships(const task::StepRecord& step,
                                            const ToolSemantics* tsd) {
  for (const oct::ObjectId& out : step.outputs) {
    // Derivation relationships: output derived-from every input.
    for (const oct::ObjectId& in : step.inputs) {
      rels_.Add(RelKind::kDerivation, out, in, step.tool);
    }
    // Version relationships: link to the immediately preceding version.
    if (out.version > 1) {
      rels_.Add(RelKind::kVersionOf, out,
                oct::ObjectId{out.name, out.version - 1}, step.tool);
    }
    if (tsd == nullptr) continue;
    // Configuration relationships: a composition tool's output contains
    // its inputs as components.
    if (tsd->composition_tool) {
      for (const oct::ObjectId& in : step.inputs) {
        rels_.Add(RelKind::kConfiguration, out, in, step.tool);
      }
    }
    // Equivalence relationships: domain translators produce another
    // representation of the same design entity.
    if (tsd->IsDomainTranslator() && !step.inputs.empty()) {
      rels_.Add(RelKind::kEquivalence, out, step.inputs.front(),
                step.tool);
    }
  }
}

Result<std::string> MetadataEngine::TypeOf(const oct::ObjectId& id) const {
  auto it = types_.find(id);
  if (it == types_.end()) {
    return Status::NotFound("type of " + id.ToString() +
                            " was never inferred");
  }
  return it->second.type;
}

Result<std::string> MetadataEngine::FormatOf(const oct::ObjectId& id) const {
  auto it = types_.find(id);
  if (it == types_.end()) {
    return Status::NotFound("format of " + id.ToString() +
                            " was never inferred");
  }
  return it->second.format;
}

Status MetadataEngine::CheckToolApplication(
    const std::string& tool,
    const std::vector<oct::ObjectId>& inputs) const {
  auto tsd = tsds_->Find(tool);
  if (!tsd.ok()) return tsd.status();
  for (const oct::ObjectId& in : inputs) {
    auto type = TypeOf(in);
    if (!type.ok()) continue;  // unknown provenance: cannot check
    bool compatible =
        (*type == "behavioral" && (*tsd)->reads_behavioral) ||
        (*type == "logic" && (*tsd)->reads_logic) ||
        (*type == "layout" && (*tsd)->reads_physical) ||
        (*type == "text");  // command files are universally accepted
    if (!compatible) {
      return Status::FailedPrecondition(
          "incompatible tool application: " + tool + " cannot read " +
          *type + " object " + in.ToString());
    }
  }
  return Status::OK();
}

const PropagationRule* MetadataEngine::FindRule(
    const std::string& type, const std::string& attribute) const {
  for (const PropagationRule& rule : rules_) {
    if (rule.object_type == type && rule.attribute == attribute) {
      return &rule;
    }
  }
  return nullptr;
}

Result<std::string> MetadataEngine::GetAttribute(
    const oct::ObjectId& id, const std::string& attribute) {
  // Cached value first.
  if (auto cached = attrs_->GetValue(id, attribute); cached.ok()) {
    ++cache_hits_;
    return *cached;
  }
  // Propagated attribute?
  std::string type = types_.count(id) > 0 ? types_.at(id).type : "";
  if (const PropagationRule* rule = FindRule(type, attribute);
      rule != nullptr) {
    auto value = EvaluatePropagated(id, *rule);
    if (!value.ok()) return value.status();
    attrs_->Attach(id, attribute, "<propagated>",
                   oct::AttributeMode::kLazy);
    (void)attrs_->SetComputed(id, attribute, *value);
    return value;
  }
  // Intrinsic lazy evaluation against the payload.
  auto rec = db_->Peek(id);
  if (!rec.ok()) return rec.status();
  auto value = cadtools::MeasureAttribute((*rec)->payload, attribute);
  if (!value.ok()) return value.status();
  attrs_->Attach(id, attribute, cadtools::MeasurementToolFor(attribute),
                 oct::AttributeMode::kLazy);
  (void)attrs_->SetComputed(id, attribute, *value);
  ++lazy_evaluations_;
  return value;
}

void MetadataEngine::AddPropagationRule(PropagationRule rule) {
  rules_.push_back(std::move(rule));
}

void MetadataEngine::AddConstraint(ConstraintRule rule) {
  constraints_.push_back(std::move(rule));
}

void MetadataEngine::CheckConstraints(const oct::ObjectId& id,
                                      const std::string& type) {
  for (const ConstraintRule& rule : constraints_) {
    if (rule.object_type != type) continue;
    auto rec = db_->Peek(id);
    if (!rec.ok()) continue;
    auto value =
        cadtools::MeasureAttribute((*rec)->payload, rule.attribute);
    if (!value.ok()) continue;
    double v = std::strtod(value->c_str(), nullptr);
    bool ok = rule.op == ConstraintRule::Op::kLessEqual ? v <= rule.bound
                                                        : v >= rule.bound;
    if (!ok) {
      violations_.push_back(ConstraintViolation{
          id, rule.attribute, v, rule.bound, rule.description});
    }
  }
}

std::string MetadataEngine::RenderDerivation(const oct::ObjectId& id) const {
  // Data-oriented history (Figure 6.2): walk producers backwards and
  // print "object <- tool(inputs)" lines, leaf-first.
  std::ostringstream out;
  std::set<oct::ObjectId> visited;
  std::function<void(const oct::ObjectId&, int)> walk =
      [&](const oct::ObjectId& cur, int indent) {
        for (int i = 0; i < indent; ++i) out << "  ";
        out << cur.ToString();
        if (auto type = TypeOf(cur); type.ok()) out << " [" << *type << "]";
        auto producer = adg_.Producer(cur);
        if (!producer.ok()) {
          out << " (source)\n";
          return;
        }
        out << " <- " << (*producer)->tool << "\n";
        if (!visited.insert(cur).second) return;
        for (const oct::ObjectId& in : (*producer)->inputs) {
          walk(in, indent + 1);
        }
      };
  walk(id, 0);
  return out.str();
}

Result<std::string> MetadataEngine::EvaluatePropagated(
    const oct::ObjectId& id, const PropagationRule& rule) {
  double acc = rule.agg == PropagationRule::Agg::kMin
                   ? 1e300
                   : (rule.agg == PropagationRule::Agg::kMax ? -1e300
                                                             : 0.0);
  auto fold = [&](double v) {
    switch (rule.agg) {
      case PropagationRule::Agg::kSum:
        acc += v;
        break;
      case PropagationRule::Agg::kMax:
        acc = std::max(acc, v);
        break;
      case PropagationRule::Agg::kMin:
        acc = std::min(acc, v);
        break;
    }
  };
  if (rule.include_own) {
    auto rec = db_->Peek(id);
    if (rec.ok()) {
      auto own = cadtools::MeasureAttribute((*rec)->payload,
                                            rule.component_attribute);
      if (own.ok()) fold(std::strtod(own->c_str(), nullptr));
    }
  }
  for (const Relationship* rel :
       rels_.From(id, RelKind::kConfiguration)) {
    auto value = GetAttribute(rel->to, rule.component_attribute);
    if (!value.ok()) return value.status();
    fold(std::strtod(value->c_str(), nullptr));
  }
  std::ostringstream os;
  os << acc;
  return os.str();
}

std::vector<oct::ObjectId> MetadataEngine::EquivalentRepresentations(
    const oct::ObjectId& id) const {
  std::set<oct::ObjectId> seen;
  std::vector<oct::ObjectId> out;
  std::deque<oct::ObjectId> queue = {id};
  while (!queue.empty()) {
    oct::ObjectId cur = queue.front();
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    out.push_back(cur);
    for (const Relationship* rel : rels_.From(cur, RelKind::kEquivalence)) {
      queue.push_back(rel->to);
    }
    for (const Relationship* rel : rels_.To(cur, RelKind::kEquivalence)) {
      queue.push_back(rel->from);
    }
  }
  return out;
}

void MetadataEngine::InvalidateDependents(const oct::ObjectId& id) {
  // Composites that contain `id` transitively lose their propagated
  // attribute caches (the incremental analogue of Reps' re-evaluation).
  std::deque<oct::ObjectId> queue = {id};
  std::set<oct::ObjectId> seen;
  while (!queue.empty()) {
    oct::ObjectId cur = queue.front();
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    for (const Relationship* rel : rels_.To(cur, RelKind::kConfiguration)) {
      // rel->from is a composite containing cur.
      for (const PropagationRule& rule : rules_) {
        if (attrs_->Has(rel->from, rule.attribute)) {
          if (attrs_->Invalidate(rel->from, rule.attribute).ok()) {
            ++invalidations_;
          }
        }
      }
      queue.push_back(rel->from);
    }
  }
}

void RegisterStandardPropagationRules(MetadataEngine* engine) {
  engine->AddPropagationRule(PropagationRule{
      "layout", "total_power", "power", PropagationRule::Agg::kSum, true});
  engine->AddPropagationRule(PropagationRule{
      "layout", "total_area", "area", PropagationRule::Agg::kSum, true});
  engine->AddPropagationRule(PropagationRule{
      "layout", "worst_delay", "delay", PropagationRule::Agg::kMax, true});
}

}  // namespace papyrus::meta
