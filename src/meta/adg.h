#ifndef PAPYRUS_META_ADG_H_
#define PAPYRUS_META_ADG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "oct/object_id.h"
#include "task/history.h"

namespace papyrus::meta {

/// One tool invocation in the augmented derivation graph (§6.3): the
/// operation that connects input object versions to output object
/// versions, together with its control parameters.
struct AdgEdge {
  int id = 0;
  std::string tool;
  std::string options;
  std::vector<oct::ObjectId> inputs;
  std::vector<oct::ObjectId> outputs;
  int64_t micros = 0;
  /// A reuse edge: this "invocation" was served by the derivation cache
  /// from an earlier recorded execution — no tool ran. Its outputs are the
  /// earlier derivation's versions, so reuse edges never register as
  /// producers (that would shadow the real derivation) nor as consumers
  /// for retracing; they are indexed separately.
  bool reuse = false;
};

/// The data-oriented design-history representation (§6.3): a bipartite
/// graph of design-object versions and the CAD-tool invocations that
/// created them — "VOV's design trace is an explicit form of ADG". It is
/// independent of the temporal order of execution and is the basis for
/// all metadata inference (§6.4) and for Make-style retracing.
class Adg {
 public:
  /// Records one tool invocation; returns its edge id.
  int AddInvocation(const std::string& tool, const std::string& options,
                    std::vector<oct::ObjectId> inputs,
                    std::vector<oct::ObjectId> outputs, int64_t micros);

  /// Records a cache-served (elided) step as a reuse edge: visible in the
  /// graph and in the per-version reuse index, but not wired into the
  /// producer/consumer maps — the original derivation already is.
  int AddReuse(const std::string& tool, const std::string& options,
               std::vector<oct::ObjectId> inputs,
               std::vector<oct::ObjectId> outputs, int64_t micros);

  /// Extends the graph with every step of a committed task's history
  /// record — the ADG is collected "as a by-product of activity
  /// management" (§6.1).
  void AddFromHistoryRecord(const task::TaskHistoryRecord& record);

  /// The invocation that produced this version, if recorded.
  Result<const AdgEdge*> Producer(const oct::ObjectId& id) const;
  /// Invocations that consumed this version.
  std::vector<const AdgEdge*> Consumers(const oct::ObjectId& id) const;

  /// Transitive closure of the inputs this version was derived from — its
  /// derivation history (§1.4).
  std::vector<oct::ObjectId> DerivedFrom(const oct::ObjectId& id) const;
  /// All versions transitively derived from this one.
  std::vector<oct::ObjectId> Dependents(const oct::ObjectId& id) const;

  /// VOV-style retracing (§2.2.2 / §6.2): when any version of
  /// `modified_name` changes, returns the recorded invocations that must
  /// be re-run to regenerate every affected derived object, in dependency
  /// order.
  std::vector<const AdgEdge*> RetracePlan(
      const std::string& modified_name) const;

  /// Reuse edges whose outputs include this version.
  std::vector<const AdgEdge*> Reuses(const oct::ObjectId& id) const;

  size_t edge_count() const { return edges_.size(); }
  size_t object_count() const { return producers_.size(); }
  size_t reuse_count() const { return reuse_edges_; }
  const std::map<int, AdgEdge>& edges() const { return edges_; }

 private:
  std::map<int, AdgEdge> edges_;
  std::map<oct::ObjectId, int> producers_;                // object -> edge
  std::map<oct::ObjectId, std::vector<int>> consumers_;   // object -> edges
  std::map<oct::ObjectId, std::vector<int>> reuses_;      // object -> edges
  size_t reuse_edges_ = 0;
  int next_edge_id_ = 1;
};

}  // namespace papyrus::meta

#endif  // PAPYRUS_META_ADG_H_
