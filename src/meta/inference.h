#ifndef PAPYRUS_META_INFERENCE_H_
#define PAPYRUS_META_INFERENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "meta/adg.h"
#include "meta/tsd.h"
#include "oct/attribute_store.h"
#include "oct/database.h"
#include "task/history.h"

namespace papyrus::meta {

/// Inter-object relationship kinds the engine infers (§6.4.2).
enum class RelKind {
  kDerivation,     // output derived-from input (via a tool)
  kVersionOf,      // successive versions of the same object
  kConfiguration,  // composite contains component (composition tools)
  kEquivalence,    // same design entity in another domain (translators)
};

const char* RelKindToString(RelKind kind);

/// A first-class relationship object (§6.1: relationship management
/// systems treat inter-object relationships as first-class objects).
struct Relationship {
  int id = 0;
  RelKind kind = RelKind::kDerivation;
  oct::ObjectId from;  // derived / later / composite / translated object
  oct::ObjectId to;    // source / earlier / component / original object
  std::string via_tool;
};

/// Stores inferred relationships with by-object indexes.
class RelationshipStore {
 public:
  int Add(RelKind kind, const oct::ObjectId& from, const oct::ObjectId& to,
          const std::string& via_tool);
  /// Relationships where `id` appears on either side.
  std::vector<const Relationship*> Of(const oct::ObjectId& id) const;
  /// Relationships of one kind where `id` is the `from` side.
  std::vector<const Relationship*> From(const oct::ObjectId& id,
                                        RelKind kind) const;
  /// Relationships of one kind where `id` is the `to` side.
  std::vector<const Relationship*> To(const oct::ObjectId& id,
                                      RelKind kind) const;
  size_t size() const { return rels_.size(); }

 private:
  std::map<int, Relationship> rels_;
  std::map<oct::ObjectId, std::vector<int>> by_from_;
  std::map<oct::ObjectId, std::vector<int>> by_to_;
  int next_id_ = 1;
};

/// How a propagated attribute aggregates over configuration components
/// (§6.4.1: evaluation rules are attached to *relationships*, shared by
/// every object participating in that kind of relationship, instead of
/// being registered per object as in Cactis).
struct PropagationRule {
  std::string object_type;      // rule applies to composites of this type
  std::string attribute;        // propagated attribute name (e.g. "power")
  std::string component_attribute;  // attribute read from components
  enum class Agg { kSum, kMax, kMin } agg = Agg::kSum;
  bool include_own = true;  // composite's own intrinsic value participates
};

/// A constraint attribute (§6.4.1: "constraint attributes, where
/// constraint violation should be detected as early as possible"). The
/// engine checks the constraint eagerly whenever an object of the given
/// type is created.
struct ConstraintRule {
  std::string object_type;  // "layout", "logic", ...
  std::string attribute;    // measured intrinsic attribute
  enum class Op { kLessEqual, kGreaterEqual } op = Op::kLessEqual;
  double bound = 0.0;
  std::string description;  // shown in violation reports
};

/// A detected constraint violation.
struct ConstraintViolation {
  oct::ObjectId object;
  std::string attribute;
  double value = 0.0;
  double bound = 0.0;
  std::string description;
};

/// The history-based metadata inference engine (Chapter 6).
///
/// "Rather than requiring users to supply design meta-data, the system
/// maintains and analyzes the design history to deduce the metadata."
/// The engine observes committed task history records (the same records
/// the activity manager stores), extends the ADG, and incrementally
/// constructs:
///  - object *types and formats*, from the creating tool's TSD;
///  - *intrinsic attributes*, attached per type and evaluated immediately
///    or lazily, with values propagated through tool inherit lists;
///  - *relationships*: derivation, version, configuration (composition
///    tools) and cross-domain equivalence (translator tools);
///  - *propagated attributes*, evaluated by rules attached to
///    relationship kinds, re-evaluated incrementally when components
///    change.
class MetadataEngine {
 public:
  MetadataEngine(oct::OctDatabase* db, oct::AttributeStore* attrs,
                 const TsdRegistry* tsds);

  MetadataEngine(const MetadataEngine&) = delete;
  MetadataEngine& operator=(const MetadataEngine&) = delete;

  /// Ingests one committed task's history: the whole Chapter 6 pipeline.
  Status Observe(const task::TaskHistoryRecord& record);

  // --- inferred types -----------------------------------------------------

  /// The inferred type ("logic", "layout", ...) of a version, or NotFound
  /// when its creation was never observed.
  Result<std::string> TypeOf(const oct::ObjectId& id) const;
  Result<std::string> FormatOf(const oct::ObjectId& id) const;

  /// Type checking (§6.4.1: "the system can detect incompatible tool
  /// applications"): verifies the tool can read the inferred domain of
  /// each input.
  Status CheckToolApplication(const std::string& tool,
                              const std::vector<oct::ObjectId>& inputs)
      const;

  // --- attributes -----------------------------------------------------------

  /// Returns the attribute value, computing lazily when needed (and
  /// caching). Handles both intrinsic and propagated attributes.
  Result<std::string> GetAttribute(const oct::ObjectId& id,
                                   const std::string& attribute);

  /// Registers a propagated-attribute rule.
  void AddPropagationRule(PropagationRule rule);

  /// Registers a constraint attribute; checked eagerly at creation time.
  void AddConstraint(ConstraintRule rule);
  /// Violations detected so far, in detection order.
  const std::vector<ConstraintViolation>& violations() const {
    return violations_;
  }

  /// Renders an object's derivation history as text — the data-oriented
  /// history view of Figure 6.2 (objects and the tool invocations that
  /// created them).
  std::string RenderDerivation(const oct::ObjectId& id) const;

  /// All representations of the same design entity across domains: the
  /// transitive closure of equivalence relationships through `id`
  /// (behavioral spec <-> logic network <-> layout), including `id`
  /// itself. §6.4.2's inter-domain equivalence maintenance.
  std::vector<oct::ObjectId> EquivalentRepresentations(
      const oct::ObjectId& id) const;

  // --- relationships & graph --------------------------------------------------

  const Adg& adg() const { return adg_; }
  const RelationshipStore& relationships() const { return rels_; }

  // --- statistics ---------------------------------------------------------------

  int64_t immediate_evaluations() const { return immediate_evaluations_; }
  int64_t lazy_evaluations() const { return lazy_evaluations_; }
  int64_t inherited_values() const { return inherited_values_; }
  int64_t cache_hits() const { return cache_hits_; }
  int64_t invalidations() const { return invalidations_; }

 private:
  struct TypeInfo {
    std::string type;
    std::string format;
  };
  struct AttrSpec {
    std::string name;
    oct::AttributeMode mode;
  };

  /// Per-type intrinsic attribute sets (the type specifications of
  /// §6.4.1).
  static const std::vector<AttrSpec>& AttrSpecsFor(const std::string& type);

  void InferForInvocation(const task::StepRecord& step);
  void CheckConstraints(const oct::ObjectId& id, const std::string& type);
  void AttachAttributes(const oct::ObjectId& id, const TypeInfo& info,
                        const ToolSemantics* tsd,
                        const std::vector<oct::ObjectId>& inputs);
  void EstablishRelationships(const task::StepRecord& step,
                              const ToolSemantics* tsd);
  /// Invalidates propagated attributes of composites containing `id`,
  /// transitively (incremental re-evaluation, §6.4.3).
  void InvalidateDependents(const oct::ObjectId& id);
  Result<std::string> EvaluatePropagated(const oct::ObjectId& id,
                                         const PropagationRule& rule);
  const PropagationRule* FindRule(const std::string& type,
                                  const std::string& attribute) const;

  oct::OctDatabase* db_;
  oct::AttributeStore* attrs_;
  const TsdRegistry* tsds_;
  Adg adg_;
  RelationshipStore rels_;
  std::map<oct::ObjectId, TypeInfo> types_;
  std::vector<PropagationRule> rules_;
  std::vector<ConstraintRule> constraints_;
  std::vector<ConstraintViolation> violations_;
  int64_t immediate_evaluations_ = 0;
  int64_t lazy_evaluations_ = 0;
  int64_t inherited_values_ = 0;
  int64_t cache_hits_ = 0;
  int64_t invalidations_ = 0;
};

/// Registers the default propagated-attribute rules (composite layout
/// power/area as sums over configuration components, worst-case delay as
/// max — §6.4.1's examples).
void RegisterStandardPropagationRules(MetadataEngine* engine);

}  // namespace papyrus::meta

#endif  // PAPYRUS_META_INFERENCE_H_
