#include "meta/adg.h"

#include <deque>
#include <set>

namespace papyrus::meta {

int Adg::AddInvocation(const std::string& tool, const std::string& options,
                       std::vector<oct::ObjectId> inputs,
                       std::vector<oct::ObjectId> outputs, int64_t micros) {
  AdgEdge edge;
  edge.id = next_edge_id_++;
  edge.tool = tool;
  edge.options = options;
  edge.inputs = std::move(inputs);
  edge.outputs = std::move(outputs);
  edge.micros = micros;
  for (const oct::ObjectId& in : edge.inputs) {
    consumers_[in].push_back(edge.id);
  }
  for (const oct::ObjectId& out : edge.outputs) {
    producers_[out] = edge.id;
  }
  int id = edge.id;
  edges_[id] = std::move(edge);
  return id;
}

int Adg::AddReuse(const std::string& tool, const std::string& options,
                  std::vector<oct::ObjectId> inputs,
                  std::vector<oct::ObjectId> outputs, int64_t micros) {
  AdgEdge edge;
  edge.id = next_edge_id_++;
  edge.tool = tool;
  edge.options = options;
  edge.inputs = std::move(inputs);
  edge.outputs = std::move(outputs);
  edge.micros = micros;
  edge.reuse = true;
  for (const oct::ObjectId& out : edge.outputs) {
    reuses_[out].push_back(edge.id);
  }
  ++reuse_edges_;
  int id = edge.id;
  edges_[id] = std::move(edge);
  return id;
}

void Adg::AddFromHistoryRecord(const task::TaskHistoryRecord& record) {
  for (const task::StepRecord& step : record.steps) {
    if (step.exit_status != 0) continue;  // failed steps created nothing
    if (step.cache_hit) {
      // An elided step reused an earlier derivation's versions: record a
      // reuse edge instead of a second (shadowing) derivation.
      AddReuse(step.tool, step.invocation, step.inputs, step.outputs,
               step.completion_micros);
      continue;
    }
    AddInvocation(step.tool, step.invocation, step.inputs, step.outputs,
                  step.completion_micros);
  }
}

Result<const AdgEdge*> Adg::Producer(const oct::ObjectId& id) const {
  auto it = producers_.find(id);
  if (it == producers_.end()) {
    return Status::NotFound("no recorded producer for " + id.ToString());
  }
  return &edges_.at(it->second);
}

std::vector<const AdgEdge*> Adg::Consumers(const oct::ObjectId& id) const {
  std::vector<const AdgEdge*> out;
  auto it = consumers_.find(id);
  if (it == consumers_.end()) return out;
  for (int edge_id : it->second) out.push_back(&edges_.at(edge_id));
  return out;
}

std::vector<const AdgEdge*> Adg::Reuses(const oct::ObjectId& id) const {
  std::vector<const AdgEdge*> out;
  auto it = reuses_.find(id);
  if (it == reuses_.end()) return out;
  for (int edge_id : it->second) out.push_back(&edges_.at(edge_id));
  return out;
}

std::vector<oct::ObjectId> Adg::DerivedFrom(const oct::ObjectId& id) const {
  std::set<oct::ObjectId> seen;
  std::vector<oct::ObjectId> out;
  std::deque<oct::ObjectId> queue = {id};
  while (!queue.empty()) {
    oct::ObjectId cur = queue.front();
    queue.pop_front();
    auto producer = producers_.find(cur);
    if (producer == producers_.end()) continue;
    for (const oct::ObjectId& in : edges_.at(producer->second).inputs) {
      if (seen.insert(in).second) {
        out.push_back(in);
        queue.push_back(in);
      }
    }
  }
  return out;
}

std::vector<oct::ObjectId> Adg::Dependents(const oct::ObjectId& id) const {
  std::set<oct::ObjectId> seen;
  std::vector<oct::ObjectId> out;
  std::deque<oct::ObjectId> queue = {id};
  while (!queue.empty()) {
    oct::ObjectId cur = queue.front();
    queue.pop_front();
    auto it = consumers_.find(cur);
    if (it == consumers_.end()) continue;
    for (int edge_id : it->second) {
      for (const oct::ObjectId& produced : edges_.at(edge_id).outputs) {
        if (seen.insert(produced).second) {
          out.push_back(produced);
          queue.push_back(produced);
        }
      }
    }
  }
  return out;
}

std::vector<const AdgEdge*> Adg::RetracePlan(
    const std::string& modified_name) const {
  // Affected edges: every invocation that transitively consumes any
  // version of the modified object.
  std::set<int> affected;
  std::deque<oct::ObjectId> queue;
  for (const auto& [obj, edge_ids] : consumers_) {
    if (obj.name == modified_name) queue.push_back(obj);
  }
  std::set<oct::ObjectId> seen;
  while (!queue.empty()) {
    oct::ObjectId cur = queue.front();
    queue.pop_front();
    if (!seen.insert(cur).second) continue;
    auto it = consumers_.find(cur);
    if (it == consumers_.end()) continue;
    for (int edge_id : it->second) {
      affected.insert(edge_id);
      for (const oct::ObjectId& out : edges_.at(edge_id).outputs) {
        queue.push_back(out);
      }
    }
  }
  // Edge ids increase with recording order, which respects dependency
  // order within a trace (a consumer is always recorded after the
  // producer completed), so id order is a valid re-execution schedule.
  std::vector<const AdgEdge*> plan;
  for (int edge_id : affected) plan.push_back(&edges_.at(edge_id));
  return plan;
}

}  // namespace papyrus::meta
