#include "meta/tsd.h"

namespace papyrus::meta {

const OutputTyping& ToolSemantics::OutputFor(
    const std::string& selector_value) const {
  if (!selector_flag.empty()) {
    auto it = output_by_option.find(selector_value);
    if (it != output_by_option.end()) return it->second;
  }
  return default_output;
}

void TsdRegistry::Register(ToolSemantics tsd) {
  std::string name = tsd.tool;
  tsds_[name] = std::move(tsd);
}

Result<const ToolSemantics*> TsdRegistry::Find(
    const std::string& tool) const {
  auto it = tsds_.find(tool);
  if (it == tsds_.end()) {
    return Status::NotFound("no tool semantics description for " + tool);
  }
  return &it->second;
}

namespace {

ToolSemantics Make(const std::string& tool, OutputTyping out,
                   bool reads_b, bool reads_l, bool reads_p,
                   bool writes_b, bool writes_l, bool writes_p,
                   std::vector<std::string> inherit = {}) {
  ToolSemantics t;
  t.tool = tool;
  t.default_output = std::move(out);
  t.inherit_list = std::move(inherit);
  t.reads_behavioral = reads_b;
  t.reads_logic = reads_l;
  t.reads_physical = reads_p;
  t.writes_behavioral = writes_b;
  t.writes_logic = writes_l;
  t.writes_physical = writes_p;
  return t;
}

}  // namespace

void RegisterStandardTsds(TsdRegistry* reg) {
  reg->Register(Make("edit", {"behavioral", "bds"}, false, false, false,
                     true, false, false));
  reg->Register(Make("bdsyn", {"logic", "blif"}, true, false, false, false,
                     true, false,
                     {"num_inputs", "num_outputs"}));
  reg->Register(Make("misII", {"logic", "blif"}, false, true, false, false,
                     true, false,
                     {"num_inputs", "num_outputs", "format"}));

  // The Figure 6.4 espresso TSD: output format selected by -o.
  ToolSemantics espresso =
      Make("espresso", {"logic", "PLA"}, false, true, false, false, true,
           false, {"num_inputs", "num_outputs"});
  espresso.selector_flag = "o";
  espresso.output_by_option["equitott"] = {"logic", "equation"};
  espresso.output_by_option["pleasure"] = {"logic", "PLA"};
  reg->Register(espresso);

  reg->Register(Make("pleasure", {"logic", "PLA"}, false, true, false,
                     false, true, false,
                     {"num_inputs", "num_outputs", "minterms", "format"}));
  reg->Register(Make("panda", {"layout", "symbolic"}, false, true, false,
                     false, false, true));
  reg->Register(Make("wolfe", {"layout", "symbolic"}, false, true, false,
                     false, false, true));
  reg->Register(Make("padplace", {"layout", "symbolic"}, false, true, true,
                     false, true, true,
                     {"cells"}));
  reg->Register(Make("musa", {"text", "text"}, false, true, false, false,
                     false, false));
  reg->Register(Make("atlas", {"layout", "symbolic"}, false, false, true,
                     false, false, true,
                     {"cells", "area"}));
  reg->Register(Make("puppy", {"layout", "symbolic"}, false, false, true,
                     false, false, true,
                     {"cells"}));
  reg->Register(Make("mosaicoGR", {"layout", "symbolic"}, false, false,
                     true, false, false, true,
                     {"cells", "area"}));
  reg->Register(Make("PGcurrent", {"text", "text"}, false, false, true,
                     false, false, false));
  reg->Register(Make("mosaicoDR", {"layout", "symbolic"}, false, false,
                     true, false, false, true,
                     {"cells", "area"}));

  ToolSemantics octflatten =
      Make("octflatten", {"layout", "symbolic"}, false, false, true, false,
           false, true);
  octflatten.composition_tool = true;
  reg->Register(octflatten);

  reg->Register(Make("mizer", {"layout", "symbolic"}, false, false, true,
                     false, false, true,
                     {"cells", "area"}));
  reg->Register(Make("sparcs", {"layout", "geometric"}, false, false, true,
                     false, false, true,
                     {"cells"}));
  reg->Register(Make("vulcan", {"layout", "symbolic"}, false, false, true,
                     false, false, true,
                     {"cells", "area", "delay", "power"}));
  reg->Register(Make("mosaicoRC", {"text", "text"}, false, false, true,
                     false, false, false));
  reg->Register(Make("chipstats", {"text", "text"}, false, false, true,
                     false, false, false));
  reg->Register(Make("crystal", {"text", "text"}, false, false, true,
                     false, false, false));
}

}  // namespace papyrus::meta
