#ifndef PAPYRUS_META_TSD_H_
#define PAPYRUS_META_TSD_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "oct/design_data.h"

namespace papyrus::meta {

/// Output typing rule: object type and format a tool emits.
struct OutputTyping {
  std::string type;    // "behavioral" | "logic" | "layout" | "text"
  std::string format;  // "blif", "equation", "PLA", "symbolic", ...
};

/// A Tool Semantics Description (§6.4.1, Figure 6.4): everything the
/// metadata engine knows about one CAD tool —
///  - the type/format of its output, possibly selected by an option value
///    (espresso: `-o equitott` -> logic/equation, `-o pleasure` ->
///    logic/PLA);
///  - the *inherit list*: attributes unaffected by the tool, propagated
///    from input to output without recomputation;
///  - the *composition tool* flag: outputs are configurations of the
///    inputs (octflatten);
///  - the *execution semantics vector* over the behavioral/logic/physical
///    domains, from which domain-crossing (translation) tools are
///    recognized and equivalence relationships established.
struct ToolSemantics {
  std::string tool;
  OutputTyping default_output;
  /// Option flag whose value selects among `output_by_option` (usually
  /// "o"); empty = always default.
  std::string selector_flag;
  std::map<std::string, OutputTyping> output_by_option;
  std::vector<std::string> inherit_list;
  bool composition_tool = false;
  // Execution semantics vector.
  bool reads_behavioral = false;
  bool reads_logic = false;
  bool reads_physical = false;
  bool writes_behavioral = false;
  bool writes_logic = false;
  bool writes_physical = false;

  /// True when the tool translates between design domains (its read and
  /// write domains differ), e.g. bdsyn (behavioral->logic) and wolfe
  /// (logic->physical).
  bool IsDomainTranslator() const {
    return (writes_logic && !reads_logic && reads_behavioral) ||
           (writes_physical && !reads_physical && reads_logic) ||
           (writes_behavioral && !reads_behavioral);
  }

  /// Resolves the output typing given the tool's option string value for
  /// `selector_flag` (may be empty).
  const OutputTyping& OutputFor(const std::string& selector_value) const;
};

/// Registry of tool semantics descriptions, keyed by tool name.
class TsdRegistry {
 public:
  void Register(ToolSemantics tsd);
  Result<const ToolSemantics*> Find(const std::string& tool) const;
  bool Has(const std::string& tool) const { return tsds_.count(tool) > 0; }
  size_t size() const { return tsds_.size(); }

 private:
  std::map<std::string, ToolSemantics> tsds_;
};

/// Registers TSDs for the whole mock OCT suite (src/cadtools).
void RegisterStandardTsds(TsdRegistry* registry);

}  // namespace papyrus::meta

#endif  // PAPYRUS_META_TSD_H_
