#ifndef PAPYRUS_META_RETRACE_H_
#define PAPYRUS_META_RETRACE_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "cadtools/registry.h"
#include "meta/adg.h"
#include "oct/database.h"
#include "task/history.h"

namespace papyrus::meta {

/// Result of one retracing pass.
struct RetraceResult {
  /// New versions created, in re-execution order.
  std::vector<oct::ObjectId> regenerated;
  /// The invocations re-executed, as a task-style history record (feed it
  /// back to MetadataEngine::Observe to keep the ADG current).
  task::TaskHistoryRecord record;
  int invocations_rerun = 0;
  int invocations_skipped = 0;  // inputs unavailable (e.g. reclaimed)
};

/// VOV-style automatic retracing (§2.2.2, §6.2): when a new version of
/// `modified_name` appears, re-executes the recorded derivation downstream
/// of it so every derived object is regenerated consistently.
///
/// Unlike VOV — which updates objects *in place* — Papyrus' retracer obeys
/// the single-assignment discipline: every regenerated object becomes a
/// new version, and the old versions stay reachable from the history.
///
/// The re-execution substitutes the newest versions: each re-run
/// invocation reads the latest visible version of each input name
/// (picking up both the user's modification and upstream regenerations).
class Retracer {
 public:
  Retracer(oct::OctDatabase* db, const cadtools::ToolRegistry* tools)
      : db_(db), tools_(tools) {}

  /// Re-runs `adg.RetracePlan(modified_name)`. Fails fast when a tool is
  /// missing; invocations whose inputs are gone (reclaimed) are skipped
  /// and counted. A failing tool aborts the pass with its message.
  Result<RetraceResult> Retrace(const Adg& adg,
                                const std::string& modified_name);

 private:
  oct::OctDatabase* db_;
  const cadtools::ToolRegistry* tools_;
};

}  // namespace papyrus::meta

#endif  // PAPYRUS_META_RETRACE_H_
