#include "core/papyrus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "activity/persistence.h"
#include "base/macros.h"
#include "base/strings.h"
#include "base/thread_annotations.h"
#include "storage/atomic_file.h"

namespace papyrus {

namespace {

// WAL record fields that may contain whitespace (names, whole serialized
// node/entry blocks) ride as '~'-prefixed percent-encoded tokens, the
// same convention the snapshot formats use.
std::string WalField(const std::string& v) {
  return "~" + PercentEncode(v);
}

std::string WalUnfield(const std::string& v) {
  std::string_view sv = v;
  if (!sv.empty() && sv.front() == '~') sv.remove_prefix(1);
  return PercentDecode(sv);
}

std::string DbSectionName(int shard) {
  return "db/" + std::to_string(shard);
}

std::string ThreadSectionName(int id) {
  return "thread/" + std::to_string(id);
}

constexpr char kCacheSection[] = "cache";
constexpr char kStateSection[] = "state";

int ParseIntField(const std::string& s) {
  int64_t v = 0;
  (void)ParseInt64(s, &v);
  return static_cast<int>(v);
}

}  // namespace

Papyrus::Papyrus(const SessionOptions& options)
    : clock_(0), trace_(&clock_), options_(options) {
  base::AssertEngineThread("Papyrus::Papyrus");
  if (!options.trace_path.empty()) trace_.set_enabled(true);
  db_ = std::make_unique<oct::OctDatabase>(&clock_);
  tools_ = std::make_unique<cadtools::ToolRegistry>();
  network_ =
      std::make_unique<sprite::Network>(&clock_, options.num_workstations);
  if (options.standard_environment) {
    cadtools::RegisterStandardSuite(tools_.get());
    (void)tdl::RegisterThesisTemplates(&templates_);
    meta::RegisterStandardTsds(&tsds_);
  }
  task_manager_ = std::make_unique<task::TaskManager>(
      db_.get(), tools_.get(), network_.get(), &templates_);
  task_manager_->set_worker_threads(options.worker_threads);
  activity_ = std::make_unique<activity::ActivityManager>(
      db_.get(), task_manager_.get(), &clock_);
  sds_ = std::make_unique<sync::SdsManager>(db_.get());
  reclamation_ =
      std::make_unique<storage::ReclamationManager>(db_.get(), &clock_);
  step_cache_ = std::make_unique<cache::DerivationCache>(db_.get());
  step_cache_->set_enabled(options.step_cache);
  task_manager_->set_derivation_cache(step_cache_.get());
  activity_->set_derivation_cache(step_cache_.get());
  reclamation_->set_derivation_cache(step_cache_.get());
  metadata_ = std::make_unique<meta::MetadataEngine>(db_.get(),
                                                     &attributes_, &tsds_);
  if (options.standard_environment) {
    meta::RegisterStandardPropagationRules(metadata_.get());
  }
  if (options.metadata_inference) {
    activity_->set_record_sink([this](const task::TaskHistoryRecord& rec) {
      (void)metadata_->Observe(rec);
    });
  }
  // Filtering is delegated to the reclamation manager's task filter list.
  activity_->set_record_filter([this](const std::string& task_name) {
    return reclamation_->ShouldRecord(task_name);
  });
  // Wire every instrumented subsystem to the session's trace recorder and
  // metrics registry (the registry also absorbs counters the task manager
  // accumulated against its private fallback registry).
  const obs::Observability sinks = observability();
  trace_.SetThreadName(obs::kSessionPid, 0, "session");
  db_->set_observability(sinks);
  network_->set_observability(sinks);
  task_manager_->set_observability(sinks);
  step_cache_->set_observability(sinks);
  if (!options.shared_store_path.empty()) {
    storage::CasOptions cas_options;
    cas_options.size_budget_bytes = options.shared_store_budget_bytes;
    auto store =
        storage::ContentStore::Open(options.shared_store_path, cas_options);
    if (store.ok()) {
      // Standalone session: a task commit is this process's durability
      // point, so entries publish immediately.
      shared_store_ = std::move(*store);
      shared_store_->set_observability(sinks);
      step_cache_->AttachSharedStore(shared_store_.get(),
                                     /*auto_publish=*/true);
    }
    // An unopenable store degrades to a private session; nothing else
    // depends on it.
  }
}

Papyrus::~Papyrus() {
  base::AssertEngineThread("Papyrus::~Papyrus");
  // Seal the trace: the session-end marker is the last event, anything a
  // destructor might still record afterwards is dropped by design.
  trace_.Finish();
  if (!options_.trace_path.empty()) {
    (void)trace_.WriteJson(options_.trace_path);
  }
  if (!options_.metrics_path.empty()) {
    std::ofstream out(options_.metrics_path, std::ios::trunc);
    if (out) out << metrics_.ToJson();
  }
}

Status Papyrus::AddTemplate(const std::string& script) {
  return templates_.Add(script);
}

int Papyrus::CreateThread(const std::string& name) {
  int id = activity_->CreateThread(name);
  auto thread = activity_->GetThread(id);
  if (thread.ok()) {
    (*thread)->set_cache_interval(options_.cache_interval);
  }
  return id;
}

Result<activity::NodeId> Papyrus::Invoke(
    int thread_id, const std::string& template_name,
    const std::vector<std::string>& input_refs,
    const std::vector<std::string>& output_names,
    const std::map<std::string, std::string>& option_overrides,
    task::TaskObserver* observer) {
  activity::ActivityInvocation inv;
  inv.template_name = template_name;
  inv.input_refs = input_refs;
  inv.output_names = output_names;
  inv.option_overrides = option_overrides;
  inv.observer = observer;
  return activity_->InvokeTask(thread_id, inv);
}

Status Papyrus::MoveCursor(int thread_id, activity::NodeId point,
                           bool erase) {
  return activity_->MoveCursor(thread_id, point, erase);
}

Status Papyrus::SaveSession(const std::string& directory) {
  trace_.Begin(obs::kSessionPid, 0, "snapshot_save", "snapshot",
               {obs::TraceArg::Str("directory", directory)});
  Status st = SaveSessionImpl(directory);
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  if (st.ok()) {
    metrics_.FindOrCreateCounter(obs::kSnapshotSaves)->Increment();
  }
  return st;
}

Status Papyrus::SaveSessionImpl(const std::string& directory) {
  base::AssertEngineThread("Papyrus::SaveSessionImpl");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create " + directory + ": " +
                            ec.message());
  }
  // Write-to-temp + fsync + atomic rename (storage::AtomicWriteFile): a
  // crash mid-save leaves either the old snapshot or the new one, never a
  // torn file.
  auto write_file = [&](const std::string& name,
                        const std::string& content) -> Status {
    return storage::AtomicWriteFile(
        (std::filesystem::path(directory) / name).string(), content);
  };
  PAPYRUS_RETURN_IF_ERROR(
      write_file("database.pdb", activity::SerializeDatabase(*db_)));
  PAPYRUS_RETURN_IF_ERROR(write_file(
      "cache.pdc", activity::SerializeDerivationCache(*step_cache_)));
  for (int id : activity_->ThreadIds()) {
    auto thread = activity_->GetThread(id);
    if (!thread.ok()) continue;
    PAPYRUS_RETURN_IF_ERROR(
        write_file("thread_" + std::to_string(id) + ".pth",
                   activity::SerializeThread(**thread)));
  }
  return Status::OK();
}

Status Papyrus::LoadSession(const std::string& directory) {
  trace_.Begin(obs::kSessionPid, 0, "snapshot_load", "snapshot",
               {obs::TraceArg::Str("directory", directory)});
  Status st = LoadSessionImpl(directory);
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  if (st.ok()) {
    metrics_.FindOrCreateCounter(obs::kSnapshotLoads)->Increment();
  }
  return st;
}

Status Papyrus::LoadSessionImpl(const std::string& directory) {
  base::AssertEngineThread("Papyrus::LoadSessionImpl");
  if (db_->TotalVersionCount() != 0 || !activity_->ThreadIds().empty()) {
    return Status::FailedPrecondition(
        "LoadSession requires a fresh session");
  }
  auto read_file = [&](const std::filesystem::path& path)
      -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot read " + path.string());
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  last_restore_stats_ = activity::RestoreStats();
  auto accumulate = [this](const activity::RestoreStats& s) {
    last_restore_stats_.records_restored += s.records_restored;
    last_restore_stats_.records_dropped += s.records_dropped;
    last_restore_stats_.truncated |= s.truncated;
  };
  PAPYRUS_ASSIGN_OR_RETURN(
      std::string db_text,
      read_file(std::filesystem::path(directory) / "database.pdb"));
  activity::RestoreStats db_stats;
  PAPYRUS_ASSIGN_OR_RETURN(
      auto restored_db,
      activity::RestoreDatabase(db_text, &clock_, &db_stats));
  accumulate(db_stats);
  // Copy records into the session's own database so every subsystem keeps
  // its pointer. ForEach yields each name's versions in order, which is
  // what RestoreRecord requires.
  Status copy_status;
  restored_db->ForEach([&](const oct::ObjectRecord& rec) {
    if (!copy_status.ok()) return;
    copy_status = db_->RestoreRecord(rec);
  });
  PAPYRUS_RETURN_IF_ERROR(copy_status);

  std::error_code ec;
  std::vector<std::filesystem::path> thread_files;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".pth") {
      thread_files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::NotFound("cannot read session directory " + directory);
  }
  std::sort(thread_files.begin(), thread_files.end());
  for (const auto& path : thread_files) {
    PAPYRUS_ASSIGN_OR_RETURN(std::string text, read_file(path));
    activity::RestoreStats thread_stats;
    PAPYRUS_ASSIGN_OR_RETURN(
        auto thread,
        activity::RestoreThread(text, &clock_, &thread_stats));
    accumulate(thread_stats);
    PAPYRUS_RETURN_IF_ERROR(activity_->AdoptThread(std::move(thread)));
  }
  // The derivation cache is optional in a session directory (pre-cache
  // snapshots restore fine without it) but must come after the database:
  // restoring entries re-validates and re-pins their output versions.
  auto cache_text =
      read_file(std::filesystem::path(directory) / "cache.pdc");
  if (cache_text.ok()) {
    activity::RestoreStats cache_stats;
    PAPYRUS_RETURN_IF_ERROR(activity::RestoreDerivationCache(
        *cache_text, step_cache_.get(), &cache_stats));
    accumulate(cache_stats);
  }
  return Status::OK();
}

Status Papyrus::OpenStorage(const std::string& directory) {
  base::AssertEngineThread("Papyrus::OpenStorage");
  trace_.Begin(obs::kSessionPid, 0, "storage_open", "snapshot",
               {obs::TraceArg::Str("directory", directory)});
  Status st = OpenStorageImpl(directory);
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  return st;
}

Status Papyrus::OpenStorageImpl(const std::string& directory) {
  if (store_) {
    return Status::FailedPrecondition("storage engine already open");
  }
  if (db_->TotalVersionCount() != 0 || !activity_->ThreadIds().empty()) {
    return Status::FailedPrecondition(
        "OpenStorage requires a fresh session");
  }
  auto store = std::make_unique<storage::SessionStore>();
  PAPYRUS_ASSIGN_OR_RETURN(storage::SessionStore::OpenResult opened,
                           store->Open(directory));
  store_ = std::move(store);
  last_restore_stats_ = activity::RestoreStats();
  using Layout = storage::SessionStore::Layout;
  switch (opened.layout) {
    case Layout::kEmpty:
      break;
    case Layout::kEngine:
      PAPYRUS_RETURN_IF_ERROR(RestoreEngineSections(opened.sections));
      break;
    case Layout::kLegacySnapDir:
    case Layout::kLegacyFlat:
      // One-time migration: the whole-file snapshot loads through the
      // legacy reader; the next SaveGeneration writes every section (none
      // are in the — empty — engine manifest) and the directory is native
      // from then on.
      PAPYRUS_RETURN_IF_ERROR(LoadSessionImpl(opened.legacy_dir));
      if (!state_hooks_.legacy_file.empty() && state_hooks_.restore) {
        std::ifstream in(std::filesystem::path(opened.legacy_dir) /
                         state_hooks_.legacy_file);
        if (in) {
          std::stringstream buffer;
          buffer << in.rdbuf();
          PAPYRUS_RETURN_IF_ERROR(state_hooks_.restore(buffer.str()));
        }
      }
      break;
  }
  // Baselines are captured *before* the WAL tail replays so the sections
  // it touches register as dirty and compact into the next generation —
  // a stale section file is never carried past a WAL base that covers
  // replayed records.
  CaptureGenerationBaselines();
  for (const storage::WalRecord& rec : opened.wal) {
    PAPYRUS_RETURN_IF_ERROR(ApplyWalRecord(rec.body));
  }
  // Restore and replay applied already-durable state: nothing here needs
  // re-journaling.
  DiscardAllWalDirt();
  known_threads_.clear();
  for (int id : activity_->ThreadIds()) known_threads_.insert(id);
  last_restore_stats_.records_restored +=
      static_cast<int64_t>(opened.wal.size());
  last_restore_stats_.truncated |= opened.wal_truncated;
  if (!opened.wal.empty()) {
    metrics_.FindOrCreateCounter(obs::kWalReplayedRecords)
        ->Increment(static_cast<int64_t>(opened.wal.size()));
  }
  if (opened.wal_dropped_bytes > 0) {
    metrics_.FindOrCreateCounter(obs::kWalTruncatedBytes)
        ->Increment(opened.wal_dropped_bytes);
  }
  if (opened.layout != Layout::kEmpty) {
    metrics_.FindOrCreateCounter(obs::kSnapshotLoads)->Increment();
  }
  SyncStorageMetrics();
  return Status::OK();
}

Status Papyrus::RestoreEngineSections(
    const std::map<std::string, std::string>& sections) {
  auto accumulate = [this](const activity::RestoreStats& s) {
    last_restore_stats_.records_restored += s.records_restored;
    last_restore_stats_.records_dropped += s.records_dropped;
    last_restore_stats_.truncated |= s.truncated;
  };
  // Database shards first; threads and the cache reference its versions.
  for (const auto& [name, text] : sections) {
    if (!StartsWith(name, "db/")) continue;
    activity::RestoreStats stats;
    PAPYRUS_RETURN_IF_ERROR(
        activity::RestoreDatabaseInto(text, db_.get(), &stats));
    accumulate(stats);
  }
  for (const auto& [name, text] : sections) {
    if (!StartsWith(name, "thread/")) continue;
    activity::RestoreStats stats;
    PAPYRUS_ASSIGN_OR_RETURN(
        auto thread, activity::RestoreThread(text, &clock_, &stats));
    accumulate(stats);
    PAPYRUS_RETURN_IF_ERROR(activity_->AdoptThread(std::move(thread)));
  }
  auto cache_it = sections.find(kCacheSection);
  if (cache_it != sections.end()) {
    activity::RestoreStats stats;
    PAPYRUS_RETURN_IF_ERROR(activity::RestoreDerivationCache(
        cache_it->second, step_cache_.get(), &stats));
    accumulate(stats);
  }
  auto state_it = sections.find(kStateSection);
  if (state_it != sections.end()) {
    if (state_hooks_.restore) {
      PAPYRUS_RETURN_IF_ERROR(state_hooks_.restore(state_it->second));
    }
    // Kept even without a restore hook so the section carries over to
    // the next generation instead of silently vanishing.
    last_state_text_ = state_it->second;
  }
  return Status::OK();
}

Status Papyrus::ApplyWalRecord(const std::string& body) {
  std::vector<std::string> f = SplitWhitespace(body);
  if (f.empty()) {
    return Status::InvalidArgument("empty WAL record");
  }
  const std::string& tag = f[0];
  if (tag == "object") {
    PAPYRUS_ASSIGN_OR_RETURN(oct::ObjectRecord rec,
                             activity::ParseObjectRecord(f));
    return db_->UpsertRecord(std::move(rec));
  }
  if (tag == "state") {
    if (!state_hooks_.replay) return Status::OK();
    return state_hooks_.replay(body.size() > 6 ? body.substr(6) : "");
  }
  if (tag == "cput" && f.size() >= 2) {
    PAPYRUS_ASSIGN_OR_RETURN(cache::CacheEntry entry,
                             activity::DecodeCacheEntry(WalUnfield(f[1])));
    // Like snapshot restore, entries whose output versions did not
    // survive are skipped — they could only have missed.
    (void)step_cache_->Restore(std::move(entry));
    return Status::OK();
  }
  if (tag == "cdel" && f.size() >= 2) {
    step_cache_->ForgetEntry(WalUnfield(f[1]));
    return Status::OK();
  }
  if (tag == "thrnew" && f.size() >= 4) {
    auto thread = std::make_unique<activity::DesignThread>(
        ParseIntField(f[1]), WalUnfield(f[2]), &clock_);
    thread->set_cache_interval(ParseIntField(f[3]));
    return activity_->AdoptThread(std::move(thread));
  }
  if (tag == "thrrm" && f.size() >= 2) {
    return activity_->RemoveThread(ParseIntField(f[1]));
  }
  if ((tag == "thr" || tag == "thrdel" || tag == "thrchk" ||
       tag == "thrmeta") &&
      f.size() >= 3) {
    PAPYRUS_ASSIGN_OR_RETURN(activity::DesignThread * thread,
                             activity_->GetThread(ParseIntField(f[1])));
    if (tag == "thr") {
      return activity::ApplyNodeBlock(WalUnfield(f[2]), thread);
    }
    if (tag == "thrdel") {
      return thread->ForgetNode(ParseIntField(f[2]));
    }
    if (tag == "thrchk" && f.size() >= 4) {
      thread->CheckIn(
          oct::ObjectId{WalUnfield(f[2]), ParseIntField(f[3])});
      return Status::OK();
    }
    if (tag == "thrmeta" && f.size() >= 5) {
      thread->set_cache_interval(ParseIntField(f[3]));
      return thread->ReplayMeta(ParseIntField(f[2]), ParseIntField(f[4]));
    }
  }
  return Status::InvalidArgument("unrecognized WAL record: " + tag);
}

Status Papyrus::CommitWal() {
  base::AssertEngineThread("Papyrus::CommitWal");
  if (!store_) {
    return Status::FailedPrecondition("storage engine not open");
  }
  // Drain order is fixed — database records, thread deltas, cache
  // entries, embedder state — so replay sees objects before the history
  // and cache records that reference them.
  db_->DrainWalDirt([&](const oct::ObjectRecord& rec) {
    store_->AppendWal(activity::EncodeObjectRecord(rec));
  });
  const std::vector<int> live = activity_->ThreadIds();
  const std::set<int> live_set(live.begin(), live.end());
  for (auto it = known_threads_.begin(); it != known_threads_.end();) {
    if (live_set.count(*it) != 0) {
      ++it;
      continue;
    }
    store_->AppendWal("thrrm " + std::to_string(*it));
    it = known_threads_.erase(it);
  }
  for (int id : live) {
    auto thread_or = activity_->GetThread(id);
    if (!thread_or.ok()) continue;
    activity::DesignThread* t = *thread_or;
    const std::string tid = std::to_string(id);
    if (known_threads_.count(id) == 0) {
      // First commit of a new thread: journal it whole.
      store_->AppendWal("thrnew " + tid + " " + WalField(t->name()) + " " +
                        std::to_string(t->cache_interval()));
      for (const auto& [node_id, node] : t->nodes()) {
        store_->AppendWal("thr " + tid + " " +
                          WalField(activity::EncodeNodeBlock(node)));
      }
      for (const oct::ObjectId& obj : t->checkins()) {
        store_->AppendWal("thrchk " + tid + " " + WalField(obj.name) + " " +
                          std::to_string(obj.version));
      }
      store_->AppendWal("thrmeta " + tid + " " +
                        std::to_string(t->current_cursor()) + " " +
                        std::to_string(t->cache_interval()) + " " +
                        std::to_string(t->next_node_id()));
      t->DiscardWalDirt();
      known_threads_.insert(id);
      continue;
    }
    if (!t->HasWalDirt()) continue;
    activity::DesignThread::WalDirt dirt = t->DrainWalDirt();
    for (activity::NodeId node_id : dirt.deleted) {
      store_->AppendWal("thrdel " + tid + " " + std::to_string(node_id));
    }
    for (activity::NodeId node_id : dirt.upserts) {
      auto node = t->GetNode(node_id);
      if (!node.ok()) continue;
      store_->AppendWal("thr " + tid + " " +
                        WalField(activity::EncodeNodeBlock(**node)));
    }
    for (const oct::ObjectId& obj : dirt.checkins) {
      store_->AppendWal("thrchk " + tid + " " + WalField(obj.name) + " " +
                        std::to_string(obj.version));
    }
    if (dirt.meta) {
      // Last in the batch so the cursor's node exists when it replays.
      store_->AppendWal("thrmeta " + tid + " " +
                        std::to_string(t->current_cursor()) + " " +
                        std::to_string(t->cache_interval()) + " " +
                        std::to_string(t->next_node_id()));
    }
  }
  step_cache_->DrainWalDirt(
      [&](const std::string& key) {
        store_->AppendWal("cdel " + WalField(key));
      },
      [&](const std::string& key, const cache::CacheEntry& entry) {
        (void)key;  // replay recomputes it from the entry's components
        store_->AppendWal("cput " +
                          WalField(activity::EncodeCacheEntry(entry)));
      });
  if (state_hooks_.drain) {
    for (const std::string& state_body : state_hooks_.drain()) {
      store_->AppendWal("state " + state_body);
    }
  }
  PAPYRUS_ASSIGN_OR_RETURN(int64_t bytes, store_->CommitWal());
  (void)bytes;
  SyncStorageMetrics();
  return Status::OK();
}

Status Papyrus::SaveGeneration() {
  base::AssertEngineThread("Papyrus::SaveGeneration");
  if (!store_) {
    return Status::FailedPrecondition("storage engine not open");
  }
  trace_.Begin(obs::kSessionPid, 0, "snapshot_generation", "snapshot",
               {obs::TraceArg::Str("directory", store_->dir())});
  Status st = SaveGenerationImpl();
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  return st;
}

Status Papyrus::SaveGenerationImpl() {
  // The WAL commit is the durability point: sections never contain state
  // the journal does not cover, so a crash between any two steps below
  // recovers byte-identically under either manifest.
  PAPYRUS_RETURN_IF_ERROR(CommitWal());
  const std::map<std::string, std::string> current =
      store_->CurrentSectionFiles();
  std::map<std::string, std::string> dirty;
  std::vector<std::string> live;
  // A section is dirty when its mutation sequence moved since the last
  // generation, or when the current manifest does not carry it at all
  // (first generation, legacy migration, WAL-replayed sections).
  for (int i = 0; i < oct::OctDatabase::kShardCount; ++i) {
    const std::string name = DbSectionName(i);
    live.push_back(name);
    if (db_->ShardSeq(i) != db_shard_base_[i] || current.count(name) == 0) {
      dirty[name] = activity::SerializeDatabaseShard(*db_, i);
    }
  }
  for (int id : activity_->ThreadIds()) {
    auto thread_or = activity_->GetThread(id);
    if (!thread_or.ok()) continue;
    const std::string name = ThreadSectionName(id);
    live.push_back(name);
    auto base = thread_seq_base_.find(id);
    if (base == thread_seq_base_.end() ||
        base->second != (*thread_or)->mutation_seq() ||
        current.count(name) == 0) {
      dirty[name] = activity::SerializeThread(**thread_or);
    }
  }
  live.push_back(kCacheSection);
  if (step_cache_->mutation_seq() != cache_seq_base_ ||
      current.count(kCacheSection) == 0) {
    dirty[kCacheSection] = activity::SerializeDerivationCache(*step_cache_);
  }
  std::string state_text =
      state_hooks_.section ? state_hooks_.section() : last_state_text_;
  if (state_hooks_.section || !last_state_text_.empty()) {
    live.push_back(kStateSection);
    if (state_text != last_state_text_ ||
        current.count(kStateSection) == 0) {
      dirty[kStateSection] = state_text;
    }
  }
  PAPYRUS_RETURN_IF_ERROR(store_->SaveGeneration(dirty, live));
  CaptureGenerationBaselines();
  last_state_text_ = std::move(state_text);
  SyncStorageMetrics();
  return Status::OK();
}

void Papyrus::CaptureGenerationBaselines() {
  for (int i = 0; i < oct::OctDatabase::kShardCount; ++i) {
    db_shard_base_[i] = db_->ShardSeq(i);
  }
  thread_seq_base_.clear();
  for (int id : activity_->ThreadIds()) {
    auto thread_or = activity_->GetThread(id);
    if (thread_or.ok()) {
      thread_seq_base_[id] = (*thread_or)->mutation_seq();
    }
  }
  cache_seq_base_ = step_cache_->mutation_seq();
}

void Papyrus::DiscardAllWalDirt() {
  db_->DiscardWalDirt();
  for (int id : activity_->ThreadIds()) {
    auto thread_or = activity_->GetThread(id);
    if (thread_or.ok()) (*thread_or)->DiscardWalDirt();
  }
  step_cache_->DiscardWalDirt();
}

void Papyrus::SyncStorageMetrics() {
  if (!store_) return;
  auto sync = [&](const char* name, int64_t stat) {
    obs::Counter* c = metrics_.FindOrCreateCounter(name);
    c->Increment(stat - c->value());
  };
  const storage::WriteAheadLog::Stats& w = store_->wal_stats();
  sync(obs::kWalRecords, w.records_appended);
  sync(obs::kWalCommits, w.commits);
  sync(obs::kWalSyncs, w.syncs);
  sync(obs::kWalBytesWritten, w.bytes_written);
  sync(obs::kWalResets, w.resets);
  const storage::SessionStore::SaveStats& s = store_->save_stats();
  sync(obs::kSnapshotGenerations, s.generations);
  sync(obs::kSnapshotSectionsWritten, s.sections_written);
  sync(obs::kSnapshotSectionsReused, s.sections_reused);
  sync(obs::kSnapshotFilesPruned, s.files_pruned);
}

Result<oct::ObjectId> Papyrus::CheckInObject(const std::string& path,
                                             oct::DesignPayload payload) {
  base::AssertEngineThread("Papyrus::CheckInObject");
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument(
        "check-in names must be absolute paths (got \"" + path + "\")");
  }
  return db_->CreateVersion(path, std::move(payload));
}

}  // namespace papyrus
