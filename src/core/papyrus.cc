#include "core/papyrus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "activity/persistence.h"
#include "base/macros.h"
#include "base/thread_annotations.h"
#include "storage/atomic_file.h"

namespace papyrus {

Papyrus::Papyrus(const SessionOptions& options)
    : clock_(0), trace_(&clock_), options_(options) {
  base::AssertEngineThread("Papyrus::Papyrus");
  if (!options.trace_path.empty()) trace_.set_enabled(true);
  db_ = std::make_unique<oct::OctDatabase>(&clock_);
  tools_ = std::make_unique<cadtools::ToolRegistry>();
  network_ =
      std::make_unique<sprite::Network>(&clock_, options.num_workstations);
  if (options.standard_environment) {
    cadtools::RegisterStandardSuite(tools_.get());
    (void)tdl::RegisterThesisTemplates(&templates_);
    meta::RegisterStandardTsds(&tsds_);
  }
  task_manager_ = std::make_unique<task::TaskManager>(
      db_.get(), tools_.get(), network_.get(), &templates_);
  task_manager_->set_worker_threads(options.worker_threads);
  activity_ = std::make_unique<activity::ActivityManager>(
      db_.get(), task_manager_.get(), &clock_);
  sds_ = std::make_unique<sync::SdsManager>(db_.get());
  reclamation_ =
      std::make_unique<storage::ReclamationManager>(db_.get(), &clock_);
  step_cache_ = std::make_unique<cache::DerivationCache>(db_.get());
  step_cache_->set_enabled(options.step_cache);
  task_manager_->set_derivation_cache(step_cache_.get());
  activity_->set_derivation_cache(step_cache_.get());
  reclamation_->set_derivation_cache(step_cache_.get());
  metadata_ = std::make_unique<meta::MetadataEngine>(db_.get(),
                                                     &attributes_, &tsds_);
  if (options.standard_environment) {
    meta::RegisterStandardPropagationRules(metadata_.get());
  }
  if (options.metadata_inference) {
    activity_->set_record_sink([this](const task::TaskHistoryRecord& rec) {
      (void)metadata_->Observe(rec);
    });
  }
  // Filtering is delegated to the reclamation manager's task filter list.
  activity_->set_record_filter([this](const std::string& task_name) {
    return reclamation_->ShouldRecord(task_name);
  });
  // Wire every instrumented subsystem to the session's trace recorder and
  // metrics registry (the registry also absorbs counters the task manager
  // accumulated against its private fallback registry).
  const obs::Observability sinks = observability();
  trace_.SetThreadName(obs::kSessionPid, 0, "session");
  db_->set_observability(sinks);
  network_->set_observability(sinks);
  task_manager_->set_observability(sinks);
  step_cache_->set_observability(sinks);
  if (!options.shared_store_path.empty()) {
    storage::CasOptions cas_options;
    cas_options.size_budget_bytes = options.shared_store_budget_bytes;
    auto store =
        storage::ContentStore::Open(options.shared_store_path, cas_options);
    if (store.ok()) {
      // Standalone session: a task commit is this process's durability
      // point, so entries publish immediately.
      shared_store_ = std::move(*store);
      shared_store_->set_observability(sinks);
      step_cache_->AttachSharedStore(shared_store_.get(),
                                     /*auto_publish=*/true);
    }
    // An unopenable store degrades to a private session; nothing else
    // depends on it.
  }
}

Papyrus::~Papyrus() {
  base::AssertEngineThread("Papyrus::~Papyrus");
  // Seal the trace: the session-end marker is the last event, anything a
  // destructor might still record afterwards is dropped by design.
  trace_.Finish();
  if (!options_.trace_path.empty()) {
    (void)trace_.WriteJson(options_.trace_path);
  }
  if (!options_.metrics_path.empty()) {
    std::ofstream out(options_.metrics_path, std::ios::trunc);
    if (out) out << metrics_.ToJson();
  }
}

Status Papyrus::AddTemplate(const std::string& script) {
  return templates_.Add(script);
}

int Papyrus::CreateThread(const std::string& name) {
  int id = activity_->CreateThread(name);
  auto thread = activity_->GetThread(id);
  if (thread.ok()) {
    (*thread)->set_cache_interval(options_.cache_interval);
  }
  return id;
}

Result<activity::NodeId> Papyrus::Invoke(
    int thread_id, const std::string& template_name,
    const std::vector<std::string>& input_refs,
    const std::vector<std::string>& output_names,
    const std::map<std::string, std::string>& option_overrides,
    task::TaskObserver* observer) {
  activity::ActivityInvocation inv;
  inv.template_name = template_name;
  inv.input_refs = input_refs;
  inv.output_names = output_names;
  inv.option_overrides = option_overrides;
  inv.observer = observer;
  return activity_->InvokeTask(thread_id, inv);
}

Status Papyrus::MoveCursor(int thread_id, activity::NodeId point,
                           bool erase) {
  return activity_->MoveCursor(thread_id, point, erase);
}

Status Papyrus::SaveSession(const std::string& directory) {
  trace_.Begin(obs::kSessionPid, 0, "snapshot_save", "snapshot",
               {obs::TraceArg::Str("directory", directory)});
  Status st = SaveSessionImpl(directory);
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  if (st.ok()) {
    metrics_.FindOrCreateCounter(obs::kSnapshotSaves)->Increment();
  }
  return st;
}

Status Papyrus::SaveSessionImpl(const std::string& directory) {
  base::AssertEngineThread("Papyrus::SaveSessionImpl");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create " + directory + ": " +
                            ec.message());
  }
  // Write-to-temp + fsync + atomic rename (storage::AtomicWriteFile): a
  // crash mid-save leaves either the old snapshot or the new one, never a
  // torn file.
  auto write_file = [&](const std::string& name,
                        const std::string& content) -> Status {
    return storage::AtomicWriteFile(
        (std::filesystem::path(directory) / name).string(), content);
  };
  PAPYRUS_RETURN_IF_ERROR(
      write_file("database.pdb", activity::SerializeDatabase(*db_)));
  PAPYRUS_RETURN_IF_ERROR(write_file(
      "cache.pdc", activity::SerializeDerivationCache(*step_cache_)));
  for (int id : activity_->ThreadIds()) {
    auto thread = activity_->GetThread(id);
    if (!thread.ok()) continue;
    PAPYRUS_RETURN_IF_ERROR(
        write_file("thread_" + std::to_string(id) + ".pth",
                   activity::SerializeThread(**thread)));
  }
  return Status::OK();
}

Status Papyrus::LoadSession(const std::string& directory) {
  trace_.Begin(obs::kSessionPid, 0, "snapshot_load", "snapshot",
               {obs::TraceArg::Str("directory", directory)});
  Status st = LoadSessionImpl(directory);
  trace_.End(obs::kSessionPid, 0, {obs::TraceArg::Bool("ok", st.ok())});
  if (st.ok()) {
    metrics_.FindOrCreateCounter(obs::kSnapshotLoads)->Increment();
  }
  return st;
}

Status Papyrus::LoadSessionImpl(const std::string& directory) {
  base::AssertEngineThread("Papyrus::LoadSessionImpl");
  if (db_->TotalVersionCount() != 0 || !activity_->ThreadIds().empty()) {
    return Status::FailedPrecondition(
        "LoadSession requires a fresh session");
  }
  auto read_file = [&](const std::filesystem::path& path)
      -> Result<std::string> {
    std::ifstream in(path);
    if (!in) return Status::NotFound("cannot read " + path.string());
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  last_restore_stats_ = activity::RestoreStats();
  auto accumulate = [this](const activity::RestoreStats& s) {
    last_restore_stats_.records_restored += s.records_restored;
    last_restore_stats_.records_dropped += s.records_dropped;
    last_restore_stats_.truncated |= s.truncated;
  };
  PAPYRUS_ASSIGN_OR_RETURN(
      std::string db_text,
      read_file(std::filesystem::path(directory) / "database.pdb"));
  activity::RestoreStats db_stats;
  PAPYRUS_ASSIGN_OR_RETURN(
      auto restored_db,
      activity::RestoreDatabase(db_text, &clock_, &db_stats));
  accumulate(db_stats);
  // Copy records into the session's own database so every subsystem keeps
  // its pointer. ForEach yields each name's versions in order, which is
  // what RestoreRecord requires.
  Status copy_status;
  restored_db->ForEach([&](const oct::ObjectRecord& rec) {
    if (!copy_status.ok()) return;
    copy_status = db_->RestoreRecord(rec);
  });
  PAPYRUS_RETURN_IF_ERROR(copy_status);

  std::error_code ec;
  std::vector<std::filesystem::path> thread_files;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".pth") {
      thread_files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::NotFound("cannot read session directory " + directory);
  }
  std::sort(thread_files.begin(), thread_files.end());
  for (const auto& path : thread_files) {
    PAPYRUS_ASSIGN_OR_RETURN(std::string text, read_file(path));
    activity::RestoreStats thread_stats;
    PAPYRUS_ASSIGN_OR_RETURN(
        auto thread,
        activity::RestoreThread(text, &clock_, &thread_stats));
    accumulate(thread_stats);
    PAPYRUS_RETURN_IF_ERROR(activity_->AdoptThread(std::move(thread)));
  }
  // The derivation cache is optional in a session directory (pre-cache
  // snapshots restore fine without it) but must come after the database:
  // restoring entries re-validates and re-pins their output versions.
  auto cache_text =
      read_file(std::filesystem::path(directory) / "cache.pdc");
  if (cache_text.ok()) {
    activity::RestoreStats cache_stats;
    PAPYRUS_RETURN_IF_ERROR(activity::RestoreDerivationCache(
        *cache_text, step_cache_.get(), &cache_stats));
    accumulate(cache_stats);
  }
  return Status::OK();
}

Result<oct::ObjectId> Papyrus::CheckInObject(const std::string& path,
                                             oct::DesignPayload payload) {
  base::AssertEngineThread("Papyrus::CheckInObject");
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument(
        "check-in names must be absolute paths (got \"" + path + "\")");
  }
  return db_->CreateVersion(path, std::move(payload));
}

}  // namespace papyrus
