#ifndef PAPYRUS_CORE_PAPYRUS_H_
#define PAPYRUS_CORE_PAPYRUS_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "activity/activity_manager.h"
#include "activity/design_thread.h"
#include "activity/persistence.h"
#include "base/clock.h"
#include "cache/derivation_cache.h"
#include "cadtools/registry.h"
#include "meta/inference.h"
#include "meta/tsd.h"
#include "obs/observability.h"
#include "oct/database.h"
#include "sprite/network.h"
#include "storage/cas.h"
#include "storage/engine.h"
#include "storage/reclamation.h"
#include "sync/sds.h"
#include "task/task_manager.h"
#include "tdl/template.h"

namespace papyrus {

/// Session configuration.
struct SessionOptions {
  /// Number of simulated Sprite workstations (host 0 is the home node).
  int num_workstations = 4;
  /// Thread-state cache interval for new design threads (0 disables).
  int cache_interval = 8;
  /// Feed every committed task record to the metadata inference engine.
  bool metadata_inference = true;
  /// Preload the thesis' example task templates and the standard mock OCT
  /// tool suite + TSDs.
  bool standard_environment = true;
  /// Serve repeated design steps from the history-based derivation cache
  /// instead of re-running the tool (committed history only).
  bool step_cache = true;
  /// Worker threads for the parallel step executor (task/step_executor.h).
  /// 1 = serial: tool payloads run inline on the engine thread, today's
  /// contract. N > 1 = payloads of concurrently in-flight steps execute
  /// speculatively on N threads, with histories, ADG, and snapshot bytes
  /// byte-identical to serial. Defaults to $PAPYRUS_TEST_WORKERS or 1.
  int worker_threads = task::DefaultWorkerThreads();
  /// Headless trace capture: when non-empty, tracing starts enabled and
  /// the Chrome trace_event JSON (Perfetto-loadable, virtual-time
  /// timestamps) is written here when the session is destroyed.
  std::string trace_path;
  /// When non-empty, a JSON metrics snapshot is written here at session
  /// destruction.
  std::string metrics_path;
  /// When non-empty, the session opens (creating if needed) a shared
  /// content-addressed artifact store at this directory and attaches it
  /// to the derivation cache: committed derivations are published for
  /// other sessions, and session-cache misses fall through to it.
  std::string shared_store_path;
  /// Size budget for the shared store's unique blob bytes (0 = unlimited);
  /// only meaningful with `shared_store_path`.
  int64_t shared_store_budget_bytes = 0;
};

/// The Papyrus design-flow-management session: one object wiring together
/// every subsystem the thesis describes —
///
///   - the OCT design database substrate (`database()`),
///   - the Sprite workstation-network simulator (`network()`),
///   - the CAD tool registry (`tools()`) and TDL template library
///     (`templates()`),
///   - the Task Manager (`task_manager()`) and Activity Manager
///     (`activity()`),
///   - thread synchronization through SDSs (`sds()`),
///   - background object reclamation (`reclamation()`),
///   - history-based metadata inference (`metadata()`).
///
/// Virtual time is driven by the network simulator; `clock()` exposes it.
///
/// Quickstart:
/// ```
/// papyrus::Papyrus session;
/// int thread = session.CreateThread("Shifter-synthesis");
/// auto point = session.Invoke(thread, "Create_Logic_Description",
///                             /*inputs=*/{}, {"shifter.logic"});
/// ```
class Papyrus {
 public:
  explicit Papyrus(const SessionOptions& options = SessionOptions());
  ~Papyrus();

  Papyrus(const Papyrus&) = delete;
  Papyrus& operator=(const Papyrus&) = delete;

  // --- convenience API -----------------------------------------------------

  /// Registers a TDL task template (the script's `task` header names it).
  Status AddTemplate(const std::string& script);

  /// Creates a design thread and returns its id.
  int CreateThread(const std::string& name);

  /// Invokes a task in a thread: resolves `input_refs` in the thread's
  /// data scope (§5.2 naming formats), runs the template, appends the
  /// history record, and feeds the metadata engine. Returns the new
  /// design point.
  Result<activity::NodeId> Invoke(
      int thread_id, const std::string& template_name,
      const std::vector<std::string>& input_refs,
      const std::vector<std::string>& output_names,
      const std::map<std::string, std::string>& option_overrides = {},
      task::TaskObserver* observer = nullptr);

  /// Rework: repositions a thread's current cursor (§3.3.3). With `erase`,
  /// the branch toward the old cursor is deleted (Figure 3.6).
  Status MoveCursor(int thread_id, activity::NodeId point,
                    bool erase = false);

  /// Creates an external design object under an absolute-path name so it
  /// can be checked in by reference ("/user/alice/cell").
  Result<oct::ObjectId> CheckInObject(const std::string& path,
                                      oct::DesignPayload payload);

  // --- session persistence (§5.3 crash recovery) --------------------------

  /// Writes the database and every design thread to `directory`
  /// (database.pdb + thread_<id>.pth).
  Status SaveSession(const std::string& directory);

  /// Restores a previously saved session into this one. Requires a fresh
  /// session (empty database, no threads). Metadata inference state is
  /// not persisted; re-deriving it is a matter of re-observing history
  /// records if needed. Damaged snapshot files restore their longest
  /// valid prefix; `last_restore_stats()` reports what was dropped.
  Status LoadSession(const std::string& directory);

  /// Aggregate recovery report of the most recent LoadSession or
  /// OpenStorage, summed across the database and every thread file.
  const activity::RestoreStats& last_restore_stats() const {
    return last_restore_stats_;
  }

  // --- storage engine (WAL + compacted delta snapshots) -------------------
  //
  // The successor of SaveSession/LoadSession: instead of rewriting every
  // file per snapshot, mutations journal into a write-ahead log
  // (CommitWal, a group commit per task batch) and SaveGeneration
  // periodically compacts only the dirtied sections behind a manifest
  // swap. Recovery replays manifest sections + the WAL tail and is
  // byte-identical to the pre-crash state at any crash point.

  /// Extension point for an embedding layer (papyrusd's ManagedSession)
  /// to ride the session's durability train: its state journals into the
  /// same WAL commits and compacts into the same generations as the
  /// design data, so "task applied" and "task recorded" are one atomic
  /// unit.
  struct StateHooks {
    /// Journal bodies of state mutations since the last drain (each
    /// becomes one `state <body>` WAL record; single-line).
    std::function<std::vector<std::string>()> drain;
    /// Full state text for the delta-snapshot `state` section.
    std::function<std::string()> section;
    /// Replays one journaled body on top of the restored section.
    std::function<Status(const std::string&)> replay;
    /// Restores the full section text.
    std::function<Status(const std::string&)> restore;
    /// File name of the embedder's state inside a *legacy* whole-file
    /// snapshot directory (e.g. "state.pss"); when present there it is
    /// fed to `restore` during the one-time migration.
    std::string legacy_file;
  };
  void set_state_hooks(StateHooks hooks) {
    state_hooks_ = std::move(hooks);
  }

  /// Opens (creating if needed) the storage engine on `directory` and
  /// restores whatever it holds. Requires a fresh session. Legacy layouts
  /// (PR 1 flat database.pdb, PR 6 snap.<N> whole-file snapshot dirs)
  /// load transparently and migrate to the engine layout at the next
  /// SaveGeneration. A torn WAL tail recovers its longest valid prefix
  /// (reported through last_restore_stats()).
  Status OpenStorage(const std::string& directory);

  bool storage_open() const { return store_ != nullptr; }

  /// The engine, for crash-hook injection and fingerprinting; nullptr
  /// until OpenStorage.
  storage::SessionStore* store() { return store_.get(); }

  /// Journals every mutation since the last commit (database records,
  /// thread deltas, cache entries, embedder state) and makes the batch
  /// durable with one fsync. Journal-before-effect: call this before
  /// acknowledging the mutations outside the session.
  Status CommitWal();

  /// Durability checkpoint: CommitWal, then writes generation N+1
  /// containing only the sections dirtied since generation N (clean
  /// sections carry over by reference), atomically swaps CURRENT, and
  /// resets the WAL.
  Status SaveGeneration();

  // --- subsystem access ------------------------------------------------------

  ManualClock& clock() { return clock_; }
  oct::OctDatabase& database() { return *db_; }
  cadtools::ToolRegistry& tools() { return *tools_; }
  sprite::Network& network() { return *network_; }
  tdl::TemplateLibrary& templates() { return templates_; }
  task::TaskManager& task_manager() { return *task_manager_; }
  activity::ActivityManager& activity() { return *activity_; }
  sync::SdsManager& sds() { return *sds_; }
  storage::ReclamationManager& reclamation() { return *reclamation_; }
  /// The history-based derivation cache (memoized ADG suffixes).
  cache::DerivationCache& step_cache() { return *step_cache_; }
  /// The shared content-addressed store attached to the derivation cache
  /// (owned when SessionOptions::shared_store_path was set, the daemon's
  /// when AttachSharedStore was called, else nullptr).
  storage::ContentStore* shared_store() {
    return step_cache_->shared_store();
  }
  /// Attaches an externally owned shared store (the daemon's, shared by
  /// every managed session). With `auto_publish` false, publications are
  /// held until step_cache().FlushSharedPublications() — the daemon calls
  /// it only after the snapshot carrying the entries is durable.
  void AttachSharedStore(storage::ContentStore* store, bool auto_publish) {
    step_cache_->AttachSharedStore(store, auto_publish);
  }
  meta::MetadataEngine& metadata() { return *metadata_; }
  meta::TsdRegistry& tsds() { return tsds_; }
  /// The attribute store the metadata engine populates.
  oct::AttributeStore& attributes() { return attributes_; }

  // --- observability ---------------------------------------------------------

  /// The session trace recorder (virtual-time Chrome trace events). Call
  /// `trace().set_enabled(true)` — or set SessionOptions::trace_path — to
  /// record; dump any time with `trace().WriteJson(path)`.
  obs::TraceRecorder& trace() { return trace_; }
  /// The session metrics registry backing every subsystem's counters.
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// The context handed to the session's subsystems; attach it to
  /// session-external instrumented components (e.g. fault::FaultPlan).
  obs::Observability observability() { return {&trace_, &metrics_}; }

 private:
  Status SaveSessionImpl(const std::string& directory);
  Status LoadSessionImpl(const std::string& directory);
  Status OpenStorageImpl(const std::string& directory);
  Status SaveGenerationImpl();
  Status RestoreEngineSections(
      const std::map<std::string, std::string>& sections);
  Status ApplyWalRecord(const std::string& body);
  void CaptureGenerationBaselines();
  void DiscardAllWalDirt();
  void SyncStorageMetrics();

  // Declared before every subsystem so trace + metrics are destroyed
  // last: subsystem destructors (e.g. the derivation cache's Clear) may
  // still count into the registry while the session tears down.
  ManualClock clock_;
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
  std::unique_ptr<oct::OctDatabase> db_;
  std::unique_ptr<cadtools::ToolRegistry> tools_;
  std::unique_ptr<sprite::Network> network_;
  tdl::TemplateLibrary templates_;
  std::unique_ptr<task::TaskManager> task_manager_;
  std::unique_ptr<activity::ActivityManager> activity_;
  std::unique_ptr<sync::SdsManager> sds_;
  std::unique_ptr<storage::ReclamationManager> reclamation_;
  // Declared before the cache so it is destroyed after it (the cache
  // holds a raw pointer to the store while attached).
  std::unique_ptr<storage::ContentStore> shared_store_;
  std::unique_ptr<cache::DerivationCache> step_cache_;
  meta::TsdRegistry tsds_;
  oct::AttributeStore attributes_;
  std::unique_ptr<meta::MetadataEngine> metadata_;
  SessionOptions options_;
  activity::RestoreStats last_restore_stats_;

  // --- storage engine state ---
  std::unique_ptr<storage::SessionStore> store_;
  StateHooks state_hooks_;
  /// Per-section mutation sequences captured at the last generation; a
  /// section whose live sequence differs (or that the current manifest
  /// does not carry) is dirty and gets rewritten.
  std::array<uint64_t, oct::OctDatabase::kShardCount> db_shard_base_{};
  std::map<int, uint64_t> thread_seq_base_;
  uint64_t cache_seq_base_ = 0;
  std::string last_state_text_;
  /// Threads the WAL already knows (journaled in full), for detecting
  /// new and vanished threads at CommitWal.
  std::set<int> known_threads_;
};

}  // namespace papyrus

#endif  // PAPYRUS_CORE_PAPYRUS_H_
