#include "lint/diagnostics.h"

#include <sstream>

namespace papyrus::lint {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << (file.empty() ? "<template>" : file);
  if (line > 0) {
    os << ":" << line;
    if (column > 0) os << ":" << column;
  }
  os << ": " << SeverityToString(severity) << "[" << rule
     << "]: " << message;
  return os.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream os;
  os << "{\"severity\":\"" << SeverityToString(severity) << "\",\"rule\":\""
     << JsonEscape(rule) << "\",\"file\":\"" << JsonEscape(file)
     << "\",\"line\":" << line << ",\"column\":" << column
     << ",\"template\":\"" << JsonEscape(template_name) << "\",\"step\":\""
     << JsonEscape(step_name) << "\",\"message\":\"" << JsonEscape(message)
     << "\"}";
  return os.str();
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += diagnostics[i].ToJson();
  }
  out += diagnostics.empty() ? "]" : "\n]";
  return out;
}

void LineColumnAt(std::string_view text, size_t offset, int* line,
                  int* column) {
  int l = 1;
  int c = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++l;
      c = 1;
    } else {
      ++c;
    }
  }
  *line = l;
  *column = c;
}

}  // namespace papyrus::lint
