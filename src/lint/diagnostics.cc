#include "lint/diagnostics.h"

#include <sstream>

namespace papyrus::lint {

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << (file.empty() ? "<template>" : file);
  if (line > 0) {
    os << ":" << line;
    if (column > 0) os << ":" << column;
  }
  os << ": " << SeverityToString(severity) << "[" << rule
     << "]: " << message;
  return os.str();
}

std::string Diagnostic::ToJson() const {
  std::ostringstream os;
  os << "{\"severity\":\"" << SeverityToString(severity) << "\",\"rule\":\""
     << JsonEscape(rule) << "\",\"file\":\"" << JsonEscape(file)
     << "\",\"line\":" << line << ",\"column\":" << column
     << ",\"template\":\"" << JsonEscape(template_name) << "\",\"step\":\""
     << JsonEscape(step_name) << "\",\"message\":\"" << JsonEscape(message)
     << "\"}";
  return os.str();
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += diagnostics[i].ToJson();
  }
  out += diagnostics.empty() ? "]" : "\n]";
  return out;
}

const std::vector<RuleInfo>& RuleCatalogue() {
  static const std::vector<RuleInfo> catalogue = {
      // --- template rules (papyrus-lint over .tdl) ---------------------
      {rules::kParseError, Severity::kError, "template",
       "The template header or script cannot be parsed."},
      {rules::kWriteRace, Severity::kError, "template",
       "Two steps with no ordering between them write the same object, "
       "so the committed value depends on scheduling."},
      {rules::kUndefinedInput, Severity::kError, "template",
       "A step reads an object that no formal input or earlier step "
       "provides."},
      {rules::kUnknownTool, Severity::kError, "template",
       "A step invokes a CAD tool the registry does not know."},
      {rules::kToolArity, Severity::kError, "template",
       "A step passes a tool more or fewer inputs/outputs than it "
       "accepts."},
      {rules::kDeadStep, Severity::kWarning, "template",
       "A step's outputs are never consumed and never leave the task."},
      {rules::kUnproducedOutput, Severity::kError, "template",
       "A declared formal output is produced by no step."},
      {rules::kDependencyCycle, Severity::kError, "template",
       "The step data-flow graph contains a cycle, so no execution "
       "order exists."},
      {rules::kUnresolvedSubtask, Severity::kError, "template",
       "A subtask invocation names a template missing from the "
       "library."},
      {rules::kSubtaskArity, Severity::kError, "template",
       "A subtask invocation's actual inputs/outputs do not match the "
       "callee's formals."},
      {rules::kDuplicateStepId, Severity::kError, "template",
       "Two steps declare the same step id."},
      {rules::kUndefinedStepRef, Severity::kError, "template",
       "An option override or step reference names a step that does "
       "not exist."},
      // --- wire rules (papyrus-lint --wire over .wire) -----------------
      {rules::kWireParseError, Severity::kError, "wire",
       "The line is not a well-formed wire request (malformed ~key=value "
       "field or percent escape)."},
      {rules::kWireUnknownVerb, Severity::kError, "wire",
       "The verb is not part of the papyrusd protocol."},
      {rules::kWireMissingField, Severity::kError, "wire",
       "A required field of the verb is absent."},
      {rules::kWireBadField, Severity::kError, "wire",
       "A field value is malformed (non-numeric seed or id, unknown "
       "checkin type)."},
      {rules::kWireUnknownSession, Severity::kError, "wire",
       "A submit targets a session the script never checked anything "
       "into."},
      {rules::kWireUnknownTemplate, Severity::kError, "wire",
       "A submit names a task template the daemon's library does not "
       "hold."},
      {rules::kWireTaskArity, Severity::kError, "wire",
       "A submit's ~in/~out counts do not match the template's formal "
       "inputs/outputs."},
      {rules::kWireRunBeforeCheckin, Severity::kError, "wire",
       "A submitted task reads an object that was never checked in and "
       "that no earlier task produces — it will fail at execution."},
      {rules::kWireCrossSessionInput, Severity::kError, "wire",
       "A submitted task reads an object bound in a different session; "
       "sessions share nothing."},
      {rules::kWireWriteRace, Severity::kError, "wire",
       "Two queued tasks in the same session write the same object, so "
       "the first task's output is clobbered before anyone can read "
       "it."},
      {rules::kWireDuplicateTask, Severity::kWarning, "wire",
       "A submit repeats an earlier submit byte-for-byte (same session, "
       "thread, template, refs, and seed)."},
      {rules::kWireAfterShutdown, Severity::kError, "wire",
       "A task-bearing verb (checkin/submit/run) follows shutdown; a "
       "crash-free daemon exits at the first shutdown and never reads "
       "it."},
      {rules::kWireDrainMisuse, Severity::kWarning, "wire",
       "Queued tasks are never drained (or a drain/run has nothing to "
       "do), so commits silently wait for a later incarnation."},
  };
  return catalogue;
}

void LineColumnAt(std::string_view text, size_t offset, int* line,
                  int* column) {
  int l = 1;
  int c = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++l;
      c = 1;
    } else {
      ++c;
    }
  }
  *line = l;
  *column = c;
}

}  // namespace papyrus::lint
