#ifndef PAPYRUS_LINT_RUNTIME_CHECKER_H_
#define PAPYRUS_LINT_RUNTIME_CHECKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/flow_graph.h"

namespace papyrus::lint {

/// Runtime cross-checker: watches the task manager's actual dispatches and
/// verifies them against the statically derived happens-before graph, so
/// the analyzer and the scheduler check each other.
///
/// Two step processes that are in flight at the same time must be
/// unordered in the static graph (a data/control/barrier path between
/// them means the scheduler violated a dependency), and must not both
/// write the same object name (a race the static model missed — e.g.
/// steps materialized by run-time substitution, which the linter can only
/// mark dynamic).
///
/// Violations are recorded and counted, never fatal: chaos tests and
/// deliberately racy templates must be able to run to completion.
class RuntimeFlowChecker {
 public:
  explicit RuntimeFlowChecker(std::shared_ptr<const FlowGraph> graph)
      : graph_(std::move(graph)) {}

  /// A step process entered the network. `scope`/`name` identify the step
  /// for correlation with the static graph; `outputs` are its resolved
  /// run-time object names.
  void OnDispatch(int64_t pid, const std::string& scope,
                  const std::string& name,
                  const std::vector<std::string>& outputs);

  /// The process settled: completed, was lost to a crash, or was killed
  /// by a restart/abort.
  void OnSettle(int64_t pid);

  int64_t violations() const { return violations_; }
  /// Rendered descriptions of the first violations seen (bounded).
  const std::vector<std::string>& violation_messages() const {
    return messages_;
  }

 private:
  struct ActiveStep {
    int node_id = -1;  // static node, or -1/-2 when unknown/ambiguous
    std::string name;
    std::vector<std::string> outputs;
  };

  void Record(std::string message);

  std::shared_ptr<const FlowGraph> graph_;
  std::map<int64_t, ActiveStep> active_;
  int64_t violations_ = 0;
  std::vector<std::string> messages_;
};

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_RUNTIME_CHECKER_H_
