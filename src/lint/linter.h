#ifndef PAPYRUS_LINT_LINTER_H_
#define PAPYRUS_LINT_LINTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cadtools/registry.h"
#include "lint/diagnostics.h"
#include "lint/flow_graph.h"
#include "tdl/template.h"

namespace papyrus::lint {

/// What the analyzer checks against. Both pointers are optional: without
/// a tool registry the tool rules are skipped, without a template library
/// every subtask invocation is reported unresolved.
struct LintOptions {
  const cadtools::ToolRegistry* tools = nullptr;
  const tdl::TemplateLibrary* library = nullptr;
  std::string file;  // diagnostic source label; template name when empty
};

/// Outcome of linting one template: the diagnostics (sorted by line), a
/// severity tally, and the flow graph for callers that keep reasoning
/// about the template (the runtime cross-checker).
struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::shared_ptr<const FlowGraph> graph;
  int errors = 0;
  int warnings = 0;

  /// True when the template is safe to run (no error-severity findings).
  bool ok() const { return errors == 0; }
};

/// Lints an already-parsed template against the full rule catalogue.
LintResult LintTemplate(const tdl::TaskTemplate& tmpl,
                        const LintOptions& options);

/// Parses the template header out of `script` and lints it. A bad header
/// yields a single parse-error diagnostic.
LintResult LintScript(const std::string& script, const LintOptions& options);

/// Reads `path` and lints its contents, labeling diagnostics with the
/// path. An unreadable file yields a parse-error diagnostic.
LintResult LintFile(const std::string& path, const LintOptions& options);

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_LINTER_H_
