#include "lint/wire_analyzer.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "base/strings.h"
#include "lint/linter.h"
#include "server/wire.h"

namespace papyrus::lint {

namespace {

/// The protocol verbs papyrusd answers. Everything else is
/// wire-unknown-verb.
bool KnownVerb(const std::string& verb) {
  static const std::set<std::string> kVerbs = {
      "ping", "connect", "attach", "checkin", "submit", "run",
      "drain", "stat", "task", "sessions", "checkpoint", "shutdown"};
  return kVerbs.count(verb) != 0;
}

/// One queued-but-not-yet-executed task in the simulation.
struct SimTask {
  int line = 0;
  std::string session;
  std::string template_name;
  std::vector<std::string> outputs;
};

/// The line-by-line daemon simulation behind script analysis.
class WireSimulator {
 public:
  WireSimulator(const WireAnalyzerOptions& options, WireAnalysis* out)
      : options_(options), out_(out) {}

  void Line(int line, const std::string& text) {
    std::string trimmed(Trim(text));
    if (trimmed.empty() || trimmed[0] == '#') return;
    auto parsed = server::WireMessage::Parse(trimmed);
    if (!parsed.ok()) {
      Emit(Severity::kError, rules::kWireParseError, line,
           parsed.status().message());
      return;
    }
    Handle(line, *parsed);
  }

  void Finish(int last_line) {
    if (!pending_.empty() && shutdown_line_ == 0) {
      Emit(Severity::kWarning, rules::kWireDrainMisuse, last_line,
           "script ends with " + std::to_string(pending_.size()) +
               " queued task(s) never drained; they commit only when a "
               "later incarnation drains the same root");
    }
    LintReferencedTemplates();
    std::stable_sort(out_->diagnostics.begin(), out_->diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
  }

 private:
  void Emit(Severity severity, const char* rule, int line,
            const std::string& message,
            const std::string& template_name = "") {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.message = message;
    d.file = options_.file;
    d.line = line;
    d.template_name = template_name;
    out_->diagnostics.push_back(std::move(d));
    if (severity == Severity::kError) ++out_->errors;
    if (severity == Severity::kWarning) ++out_->warnings;
    if (severity == Severity::kNote) ++out_->notes;
  }

  /// Collects the fields of `keys` missing from `msg` into one
  /// diagnostic. True when all are present.
  bool RequireFields(const server::WireMessage& msg, int line,
                     std::initializer_list<const char*> keys) {
    std::string missing;
    for (const char* key : keys) {
      if (msg.Find(key) == nullptr) {
        if (!missing.empty()) missing += ", ";
        missing += std::string("~") + key;
      }
    }
    if (missing.empty()) return true;
    Emit(Severity::kError, rules::kWireMissingField, line,
         msg.verb + " needs " + missing);
    return false;
  }

  void Handle(int line, const server::WireMessage& msg) {
    if (!KnownVerb(msg.verb)) {
      Emit(Severity::kError, rules::kWireUnknownVerb, line,
           "unknown verb \"" + msg.verb + "\"");
      return;
    }
    // After shutdown only task-bearing verbs are dead: control verbs
    // (drain/stat/shutdown/...) are the crash-restart supervisor idiom —
    // they address the next incarnation on the same root.
    bool task_bearing = msg.verb == "checkin" || msg.verb == "submit" ||
                        msg.verb == "run";
    if (shutdown_line_ != 0 && task_bearing) {
      Emit(Severity::kError, rules::kWireAfterShutdown, line,
           msg.verb + " after shutdown (line " +
               std::to_string(shutdown_line_) +
               ") is never read by a crash-free daemon");
      return;
    }
    if (msg.verb == "attach") {
      // Pins the connection to a session; later checkin/submit lines may
      // omit ~session. The daemon opens the session eagerly, so the lint
      // only needs the field itself.
      if (const std::string* session = msg.Find("session")) {
        attached_session_ = *session;
      } else {
        Emit(Severity::kError, rules::kWireMissingField, line,
             "attach needs ~session");
      }
    } else if (msg.verb == "checkin") {
      HandleCheckin(line, msg);
    } else if (msg.verb == "submit") {
      HandleSubmit(line, msg);
    } else if (msg.verb == "run") {
      if (pending_.empty()) {
        Emit(Severity::kNote, rules::kWireDrainMisuse, line,
             "run with no queued task; executes nothing unless the root "
             "holds tasks from an earlier incarnation");
      } else {
        pending_.pop_front();
      }
    } else if (msg.verb == "drain") {
      if (pending_.empty() && !any_submit_) {
        Emit(Severity::kNote, rules::kWireDrainMisuse, line,
             "drain with nothing submitted; executes nothing unless the "
             "root holds tasks from an earlier incarnation");
      }
      pending_.clear();
    } else if (msg.verb == "task") {
      const std::string* id = msg.Find("id");
      if (id == nullptr) {
        Emit(Severity::kError, rules::kWireMissingField, line,
             "task needs a numeric ~id");
      } else if (int64_t v = 0; !ParseInt64(*id, &v)) {
        Emit(Severity::kError, rules::kWireBadField, line,
             "task ~id \"" + *id + "\" is not numeric");
      }
    } else if (msg.verb == "shutdown") {
      if (!pending_.empty()) {
        Emit(Severity::kWarning, rules::kWireDrainMisuse, line,
             "shutdown with " + std::to_string(pending_.size()) +
                 " queued task(s) never drained; they commit only when "
                 "a later incarnation drains the same root");
      }
      if (shutdown_line_ == 0) shutdown_line_ = line;
    }
    // ping/stat/sessions/checkpoint carry no checkable obligations.
  }

  /// The session a task-bearing line targets: its explicit ~session
  /// field, else the session a preceding attach pinned. Mirrors the
  /// daemon's SessionField fallback.
  const std::string* ResolveSession(const server::WireMessage& msg,
                                    int line) {
    if (const std::string* session = msg.Find("session")) return session;
    if (!attached_session_.empty()) return &attached_session_;
    Emit(Severity::kError, rules::kWireMissingField, line,
         msg.verb + " needs ~session (or a preceding attach)");
    return nullptr;
  }

  void HandleCheckin(int line, const server::WireMessage& msg) {
    const std::string* session = ResolveSession(msg, line);
    if (session == nullptr) return;
    if (!RequireFields(msg, line, {"path", "type"})) return;
    const std::string& type = *msg.Find("type");
    if (type != "text" && type != "behav" && type != "layout") {
      Emit(Severity::kError, rules::kWireBadField, line,
           "unknown checkin ~type \"" + type + "\"");
      return;
    }
    bound_[*session][*msg.Find("path")] = line;
  }

  void HandleSubmit(int line, const server::WireMessage& msg) {
    const std::string* resolved = ResolveSession(msg, line);
    if (resolved == nullptr) return;
    if (!RequireFields(msg, line, {"thread", "template"})) {
      return;
    }
    any_submit_ = true;
    const std::string& session = *resolved;
    const std::string& template_name = *msg.Find("template");
    if (const std::string* seed = msg.Find("seed")) {
      if (int64_t v = 0; !ParseInt64(*seed, &v) || v < 0) {
        Emit(Severity::kError, rules::kWireBadField, line,
             "bad ~seed \"" + *seed + "\"", template_name);
      }
    }

    auto session_it = bound_.find(session);
    bool session_known = session_it != bound_.end();
    if (!session_known) {
      Emit(Severity::kError, rules::kWireUnknownSession, line,
           "submit to session \"" + session +
               "\" which the script never checked anything into",
           template_name);
      // Create the session so one diagnostic covers the whole flow
      // instead of cascading into every later line.
      session_it =
          bound_.emplace(session, std::map<std::string, int>()).first;
    }
    std::map<std::string, int>& names = session_it->second;

    std::vector<std::string> inputs = msg.FindAll("in");
    std::vector<std::string> outputs = msg.FindAll("out");

    // Template resolution + arity against the formals; the template
    // itself is linted in Finish so flow errors inside it surface too.
    if (options_.library != nullptr) {
      auto tmpl = options_.library->Find(template_name);
      if (!tmpl.ok()) {
        Emit(Severity::kError, rules::kWireUnknownTemplate, line,
             "template \"" + template_name +
                 "\" is not in the daemon's library",
             template_name);
      } else {
        referenced_templates_.insert(template_name);
        const auto& formals_in = (*tmpl)->formal_inputs;
        const auto& formals_out = (*tmpl)->formal_outputs;
        if (inputs.size() != formals_in.size()) {
          Emit(Severity::kError, rules::kWireTaskArity, line,
               template_name + " takes " +
                   std::to_string(formals_in.size()) +
                   " input(s), submit passes " +
                   std::to_string(inputs.size()),
               template_name);
        }
        if (outputs.size() != formals_out.size()) {
          Emit(Severity::kError, rules::kWireTaskArity, line,
               template_name + " produces " +
                   std::to_string(formals_out.size()) +
                   " output(s), submit names " +
                   std::to_string(outputs.size()),
               template_name);
        }
      }
    }

    // Cross-task data flow: the queue is FIFO, so everything bound by
    // earlier lines (checkins and earlier tasks' outputs) exists by the
    // time this task runs. An unknown session already got its
    // diagnostic; per-input findings there would just be echoes.
    for (const std::string& ref : inputs) {
      if (!session_known) break;
      if (names.count(ref) != 0) continue;
      std::string other;
      for (const auto& [other_session, other_names] : bound_) {
        if (other_session != session && other_names.count(ref) != 0) {
          other = other_session;
          break;
        }
      }
      if (!other.empty()) {
        Emit(Severity::kError, rules::kWireCrossSessionInput, line,
             "input \"" + ref + "\" is bound in session \"" + other +
                 "\", not \"" + session + "\"; sessions share nothing",
             template_name);
      } else {
        Emit(Severity::kError, rules::kWireRunBeforeCheckin, line,
             "input \"" + ref + "\" was never checked into session \"" +
                 session + "\" and no earlier task produces it",
             template_name);
      }
    }

    // Write-race: a queued-but-undrained task in the same session
    // already writes one of our outputs — FIFO order makes the clobber
    // deterministic, but the earlier task's output is dead on arrival.
    for (const std::string& out : outputs) {
      for (const SimTask& task : pending_) {
        if (task.session != session) continue;
        if (std::find(task.outputs.begin(), task.outputs.end(), out) ==
            task.outputs.end()) {
          continue;
        }
        Emit(Severity::kError, rules::kWireWriteRace, line,
             "output \"" + out +
                 "\" is already written by the task queued at line " +
                 std::to_string(task.line) + " in session \"" + session +
                 "\"",
             template_name);
        break;
      }
    }

    // Byte-identical resubmits: same verb line modulo field order.
    if (!submitted_keys_.insert(msg.Format()).second) {
      Emit(Severity::kWarning, rules::kWireDuplicateTask, line,
           "submit repeats an earlier identical submit", template_name);
    }

    for (const std::string& out : outputs) names[out] = line;
    pending_.push_back({line, session, template_name, outputs});
  }

  /// Lints every template the script queues, so template-level findings
  /// ride along with the script's (labeled "script -> template").
  void LintReferencedTemplates() {
    if (options_.library == nullptr) return;
    for (const std::string& name : referenced_templates_) {
      auto tmpl = options_.library->Find(name);
      if (!tmpl.ok()) continue;
      LintOptions lint_options;
      lint_options.tools = options_.tools;
      lint_options.library = options_.library;
      lint_options.file = options_.file + " -> " + name;
      LintResult result = LintTemplate(**tmpl, lint_options);
      out_->errors += result.errors;
      out_->warnings += result.warnings;
      for (Diagnostic& d : result.diagnostics) {
        if (d.severity == Severity::kNote) ++out_->notes;
        out_->diagnostics.push_back(std::move(d));
      }
    }
  }

  const WireAnalyzerOptions& options_;
  WireAnalysis* out_;
  /// session -> (bound object name -> binding line).
  std::map<std::string, std::map<std::string, int>> bound_;
  std::deque<SimTask> pending_;
  std::set<std::string> submitted_keys_;
  std::set<std::string> referenced_templates_;
  int shutdown_line_ = 0;
  bool any_submit_ = false;
  /// Session pinned by the most recent attach; "" until one runs.
  std::string attached_session_;
};

}  // namespace

WireAnalysis AnalyzeWireScript(const std::string& text,
                               const WireAnalyzerOptions& options) {
  WireAnalysis analysis;
  WireSimulator sim(options, &analysis);
  std::istringstream in(text);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) sim.Line(++number, line);
  sim.Finish(number == 0 ? 1 : number);
  return analysis;
}

WireAnalysis AnalyzeWireFile(const std::string& path,
                             const WireAnalyzerOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    WireAnalysis analysis;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = rules::kWireParseError;
    d.message = "cannot read " + path;
    d.file = path;
    analysis.diagnostics.push_back(std::move(d));
    analysis.errors = 1;
    return analysis;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  WireAnalyzerOptions file_options = options;
  if (file_options.file.empty()) file_options.file = path;
  return AnalyzeWireScript(buffer.str(), file_options);
}

std::vector<Diagnostic> PreflightQueuedTasks(
    const std::vector<server::QueueTask>& tasks,
    const tdl::TemplateLibrary* library, const std::string& file) {
  std::vector<Diagnostic> out;
  // Report-only, so every finding is a warning: the daemon drains the
  // queue regardless, findings just fail fast at execution.
  auto emit = [&](const char* rule, int64_t task_id,
                  const std::string& message,
                  const std::string& template_name = "") {
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.rule = rule;
    d.message = "queued task " + std::to_string(task_id) + ": " + message;
    d.file = file;
    d.template_name = template_name;
    out.push_back(std::move(d));
  };

  // session -> output name -> queue task id, over live tasks only.
  std::map<std::string, std::map<std::string, int64_t>> writers;
  for (const server::QueueTask& task : tasks) {
    if (task.state != server::TaskState::kPending &&
        task.state != server::TaskState::kClaimed) {
      continue;
    }
    auto desc = server::TaskDescription::Decode(task.description);
    if (!desc.ok()) {
      emit(rules::kWireParseError, task.id, desc.status().message());
      continue;
    }
    if (library != nullptr) {
      auto tmpl = library->Find(desc->template_name);
      if (!tmpl.ok()) {
        emit(rules::kWireUnknownTemplate, task.id,
             "template \"" + desc->template_name +
                 "\" is not in the daemon's library",
             desc->template_name);
      } else if (desc->input_refs.size() !=
                     (*tmpl)->formal_inputs.size() ||
                 desc->output_names.size() !=
                     (*tmpl)->formal_outputs.size()) {
        emit(rules::kWireTaskArity, task.id,
             "in/out arity does not match " + desc->template_name +
                 "'s formals",
             desc->template_name);
      }
    }
    for (const std::string& name : desc->output_names) {
      auto [it, inserted] = writers[desc->session].emplace(name, task.id);
      if (!inserted) {
        emit(rules::kWireWriteRace, task.id,
             "output \"" + name + "\" is also written by queued task " +
                 std::to_string(it->second) + " in session \"" +
                 desc->session + "\"",
             desc->template_name);
      }
    }
  }
  return out;
}

}  // namespace papyrus::lint
