#include "lint/runtime_checker.h"

#include <algorithm>

namespace papyrus::lint {

namespace {
constexpr size_t kMaxRecordedMessages = 32;
}  // namespace

void RuntimeFlowChecker::OnDispatch(int64_t pid, const std::string& scope,
                                    const std::string& name,
                                    const std::vector<std::string>& outputs) {
  ActiveStep step;
  step.name = name;
  step.outputs = outputs;
  step.node_id = graph_ == nullptr ? -1 : graph_->FindNode(scope, name);

  for (const auto& [other_pid, other] : active_) {
    // Same-object write overlap: two in-flight steps producing one name.
    for (const std::string& out : step.outputs) {
      if (std::count(other.outputs.begin(), other.outputs.end(), out) >
          0) {
        Record("concurrent writers of \"" + out + "\": steps \"" +
               other.name + "\" and \"" + name + "\"");
      }
    }
    // Happens-before consistency: if the static graph orders the two
    // steps, the scheduler must never have them in flight together.
    if (graph_ != nullptr && step.node_id >= 0 && other.node_id >= 0 &&
        step.node_id != other.node_id) {
      if (graph_->Ordered(step.node_id, other.node_id) ||
          graph_->Ordered(other.node_id, step.node_id)) {
        Record("statically ordered steps \"" + other.name + "\" and \"" +
               name + "\" were dispatched concurrently");
      }
    }
  }
  active_[pid] = std::move(step);
}

void RuntimeFlowChecker::OnSettle(int64_t pid) { active_.erase(pid); }

void RuntimeFlowChecker::Record(std::string message) {
  ++violations_;
  if (messages_.size() < kMaxRecordedMessages) {
    messages_.push_back(std::move(message));
  }
}

}  // namespace papyrus::lint
