#include "lint/flow_graph.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tcl/parser.h"

namespace papyrus::lint {
namespace {

// Matches the runtime interpreter's recursion tolerance without letting a
// self-invoking template expand forever.
constexpr int kMaxSubtaskDepth = 16;

bool ParseIntStrict(const std::string& s, int* out) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  long long v = 0;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    v = v * 10 + (s[i] - '0');
    if (v > 1'000'000'000) return false;
  }
  *out = static_cast<int>(s[0] == '-' ? -v : v);
  return true;
}

std::string FirstToken(const std::string& text) {
  size_t b = text.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  size_t e = text.find_first_of(" \t\n", b);
  return text.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

/// A word whose text is substituted at eval time ($var or [cmd]) has no
/// static value. Brace-quoted words are literal in Tcl, so they are never
/// dynamic no matter what characters they contain.
bool IsDynamicWord(const tcl::RawWord& w) {
  if (w.kind == tcl::WordKind::kBraced) return false;
  return w.text.find('$') != std::string::npos ||
         w.text.find('[') != std::string::npos;
}

bool IsControlCommand(const std::string& name) {
  return name == "if" || name == "while" || name == "for" ||
         name == "foreach";
}

/// Mirror of Execution::NeedsSync: the interpreter quiesces the network
/// before evaluating any frame-level command that reads $status or touches
/// attributes, which totally orders steps across that point.
bool NeedsSync(const tcl::RawCommand& cmd) {
  for (const tcl::RawWord& w : cmd.words) {
    if (w.text.find("$status") != std::string::npos) return true;
    if (w.text.find("attribute") != std::string::npos) return true;
  }
  return false;
}

/// One template instantiation being expanded (the root task or a subtask
/// call site), mirroring the interpreter's FrameCtx.
struct Frame {
  std::string template_name;
  const std::string* source = nullptr;  // template script text
  std::string file;                     // diagnostic source label
  std::map<std::string, std::string> name_map;
  std::string scope;
  int depth = 0;
};

}  // namespace

class GraphBuilder {
 public:
  GraphBuilder(const tdl::TemplateLibrary* library, std::string file,
               std::vector<Diagnostic>* diagnostics)
      : library_(library), file_(std::move(file)), diags_(diagnostics) {}

  FlowGraph Build(const tdl::TaskTemplate& tmpl) {
    graph_.formal_inputs_ = tmpl.formal_inputs;
    graph_.formal_outputs_ = tmpl.formal_outputs;

    Frame root;
    root.template_name = tmpl.name;
    root.source = &tmpl.script;
    root.file = file_;
    for (const std::string& f : tmpl.formal_inputs) root.name_map[f] = f;
    for (const std::string& f : tmpl.formal_outputs) root.name_map[f] = f;

    auto cmds = tcl::ParseScript(tmpl.script);
    if (!cmds.ok()) {
      Emit(Severity::kError, rules::kParseError, root, 0, 0,
           cmds.status().message());
    } else {
      ExpandCommands(*cmds, /*first=*/1, root, /*base_offset=*/0,
                     /*frame_level=*/true, /*guarded=*/false,
                     /*frame_cmd_idx=*/0);
    }
    graph_.Finalize();
    return std::move(graph_);
  }

 private:
  /// Walks a command sequence. `frame_level` is true for the commands of a
  /// task/subtask body (where the interpreter applies sync barriers) and
  /// false inside control-structure bodies. `base_offset` positions the
  /// commands' script_offsets within frame.source for line computation;
  /// `frame_cmd_idx` is the frame-level command index used for subtask
  /// scope naming (nested commands keep their enclosing top-level index,
  /// exactly like the interpreter's current_cmd_idx_).
  void ExpandCommands(const std::vector<tcl::RawCommand>& cmds, size_t first,
                      Frame& frame, size_t base_offset, bool frame_level,
                      bool guarded, int frame_cmd_idx) {
    for (size_t i = first; i < cmds.size(); ++i) {
      const tcl::RawCommand& cmd = cmds[i];
      if (cmd.words.empty()) continue;
      if (frame_level && NeedsSync(cmd)) {
        barrier_watermark_ = static_cast<int>(graph_.nodes_.size());
      }
      int cmd_idx = frame_level ? static_cast<int>(i) : frame_cmd_idx;
      size_t abs = base_offset + cmd.script_offset;
      const std::string& head = cmd.words[0].text;
      if (head == "step") {
        AddStep(cmd, frame, abs, guarded);
      } else if (head == "subtask") {
        AddSubtask(cmd, frame, abs, guarded, cmd_idx);
      } else if (IsControlCommand(head)) {
        ExpandControlBodies(cmd, frame, abs, cmd_idx);
      }
      // Everything else (set/incr/attribute/abort/...) creates no steps.
    }
  }

  /// Re-parses each brace-quoted argument of if/while/for/foreach as a
  /// script and walks it with guarded=true: its steps may never run, or
  /// run under a sync barrier, so flow rules must not treat them as
  /// unconditional.
  void ExpandControlBodies(const tcl::RawCommand& cmd, Frame& frame,
                           size_t cmd_offset, int frame_cmd_idx) {
    for (size_t wi = 1; wi < cmd.words.size(); ++wi) {
      const tcl::RawWord& w = cmd.words[wi];
      if (w.kind != tcl::WordKind::kBraced) continue;
      if (w.text.find("step") == std::string::npos &&
          w.text.find("subtask") == std::string::npos &&
          !IsControlCommand(FirstToken(w.text))) {
        continue;  // condition / init / list argument, not a body
      }
      auto body = tcl::ParseScript(w.text);
      if (!body.ok()) {
        int line = 0, col = 0;
        LineColumnAt(*frame.source, cmd_offset, &line, &col);
        Emit(Severity::kError, rules::kParseError, frame, line, col,
             "unparsable control-structure body: " +
                 body.status().message());
        continue;
      }
      size_t body_offset = frame.source->find(w.text, cmd_offset);
      if (body_offset == std::string::npos) body_offset = cmd_offset;
      ExpandCommands(*body, /*first=*/0, frame, body_offset,
                     /*frame_level=*/false, /*guarded=*/true, frame_cmd_idx);
    }
  }

  void AddStep(const tcl::RawCommand& cmd, Frame& frame, size_t abs,
               bool guarded) {
    int line = 0, col = 0;
    LineColumnAt(*frame.source, abs, &line, &col);
    if (cmd.words.size() < 5) {
      Emit(Severity::kError, rules::kParseError, frame, line, col,
           "wrong # args: step [ID] Name {In} {Out} {Invocation} "
           "?options?");
      return;
    }
    StepNode node;
    node.id = static_cast<int>(graph_.nodes_.size());
    node.template_name = frame.template_name;
    node.scope = frame.scope;
    node.line = line;
    node.column = col;
    node.guarded = guarded;

    // Name field: `Name` or `{ID Name}`.
    if (IsDynamicWord(cmd.words[1])) {
      node.dynamic = true;
      node.name = cmd.words[1].text;
    } else {
      auto head = tcl::ParseList(cmd.words[1].text);
      if (!head.ok() || head->empty() || head->size() > 2) {
        Emit(Severity::kError, rules::kParseError, frame, line, col,
             "bad step name field: " + cmd.words[1].text);
        return;
      }
      if (head->size() == 2) {
        if (!ParseIntStrict((*head)[0], &node.user_id)) {
          Emit(Severity::kError, rules::kParseError, frame, line, col,
               "bad step name field: " + cmd.words[1].text);
          return;
        }
        node.name = (*head)[1];
      } else {
        node.name = (*head)[0];
      }
    }

    ReadNameList(cmd.words[2], frame, &node, &node.inputs);
    ReadNameList(cmd.words[3], frame, &node, &node.outputs);

    // Invocation: first token is the tool.
    if (IsDynamicWord(cmd.words[4])) {
      node.dynamic = true;
    } else {
      node.tool = FirstToken(cmd.words[4].text);
      if (node.tool.empty()) {
        Emit(Severity::kError, rules::kParseError, frame, line, col,
             "empty invocation in step " + node.name);
      }
    }

    // Optional self-identified fields.
    for (size_t i = 5; i < cmd.words.size(); ++i) {
      if (IsDynamicWord(cmd.words[i])) {
        node.dynamic = true;
        continue;
      }
      auto field = tcl::ParseList(cmd.words[i].text);
      if (!field.ok() || field->empty()) {
        Emit(Severity::kError, rules::kParseError, frame, line, col,
             "bad optional step field: " + cmd.words[i].text);
        continue;
      }
      const std::string& kind = (*field)[0];
      if (kind == "NonMigrate") {
        // Placement-only; no flow meaning.
      } else if (kind == "ResumedStep") {
        if (field->size() != 2 ||
            !ParseIntStrict((*field)[1], &node.resumed_user_id)) {
          Emit(Severity::kError, rules::kParseError, frame, line, col,
               "ResumedStep requires an integer id");
        } else {
          node.has_resumed = true;
        }
      } else if (kind == "ControlDependency") {
        for (size_t j = 1; j < field->size(); ++j) {
          int dep = 0;
          if (!ParseIntStrict((*field)[j], &dep)) {
            Emit(Severity::kError, rules::kParseError, frame, line, col,
                 "ControlDependency requires integer ids");
          } else {
            node.control_deps.push_back(dep);
          }
        }
      } else {
        Emit(Severity::kError, rules::kParseError, frame, line, col,
             "unknown step field \"" + kind + "\"")
            .step_name = node.name;
      }
    }

    if (node.dynamic) graph_.has_dynamic_ = true;
    graph_.succ_.emplace_back();
    // Barrier: every step issued before the last sync point precedes this
    // one.
    for (int p = 0; p < barrier_watermark_; ++p) {
      graph_.succ_[p].push_back(node.id);
    }
    graph_.nodes_.push_back(std::move(node));
  }

  /// Parses one step object-name list word into resolved names. A
  /// substituted word (or element) leaves the node dynamic instead.
  void ReadNameList(const tcl::RawWord& word, const Frame& frame,
                    StepNode* node, std::vector<std::string>* out) {
    if (IsDynamicWord(word)) {
      node->dynamic = true;
      return;
    }
    auto elems = tcl::ParseList(word.text);
    if (!elems.ok()) {
      node->dynamic = true;  // unparsable statically; runtime will report
      return;
    }
    for (const std::string& e : *elems) out->push_back(Resolve(frame, e));
  }

  void AddSubtask(const tcl::RawCommand& cmd, Frame& frame, size_t abs,
                  bool guarded, int frame_cmd_idx) {
    int line = 0, col = 0;
    LineColumnAt(*frame.source, abs, &line, &col);
    if (cmd.words.size() != 4) {
      Emit(Severity::kError, rules::kParseError, frame, line, col,
           "wrong # args: subtask [ID] Name {In} {Out}");
      return;
    }
    if (IsDynamicWord(cmd.words[1])) {
      graph_.has_dynamic_ = true;
      Emit(Severity::kNote, rules::kUnresolvedSubtask, frame, line, col,
           "subtask name \"" + cmd.words[1].text +
               "\" is substituted at run time; not analyzed");
      return;
    }
    auto head = tcl::ParseList(cmd.words[1].text);
    if (!head.ok() || head->empty()) {
      Emit(Severity::kError, rules::kParseError, frame, line, col,
           "bad subtask name field: " + cmd.words[1].text);
      return;
    }
    const std::string name = head->back();
    const tdl::TaskTemplate* sub = nullptr;
    if (library_ != nullptr) {
      auto found = library_->Find(name);
      if (found.ok()) sub = *found;
    }
    if (sub == nullptr) {
      Emit(Severity::kError, rules::kUnresolvedSubtask, frame, line, col,
           "subtask \"" + name + "\" not found in the template library");
      return;
    }
    if (frame.depth + 1 > kMaxSubtaskDepth) {
      Emit(Severity::kError, rules::kUnresolvedSubtask, frame, line, col,
           "subtask \"" + name + "\" exceeds the expansion depth limit (" +
               std::to_string(kMaxSubtaskDepth) +
               "); recursive template invocation?");
      return;
    }
    auto ins = tcl::ParseList(cmd.words[2].text);
    auto outs = tcl::ParseList(cmd.words[3].text);
    if (!ins.ok() || !outs.ok()) {
      Emit(Severity::kError, rules::kParseError, frame, line, col,
           "bad subtask argument list");
      return;
    }
    if (IsDynamicWord(cmd.words[2]) || IsDynamicWord(cmd.words[3])) {
      graph_.has_dynamic_ = true;
      return;
    }
    if (ins->size() != sub->formal_inputs.size() ||
        outs->size() != sub->formal_outputs.size()) {
      Emit(Severity::kError, rules::kSubtaskArity, frame, line, col,
           "subtask " + name + " takes " +
               std::to_string(sub->formal_inputs.size()) + " inputs / " +
               std::to_string(sub->formal_outputs.size()) +
               " outputs, invoked with " + std::to_string(ins->size()) +
               " / " + std::to_string(outs->size()))
          .step_name = name;
      return;
    }
    auto cmds = tcl::ParseScript(sub->script);
    if (!cmds.ok()) {
      Emit(Severity::kError, rules::kParseError, frame, line, col,
           "subtask " + name +
               " has an unparsable script: " + cmds.status().message());
      return;
    }

    Frame child;
    child.template_name = sub->name;
    child.source = &sub->script;
    child.file = sub->name;  // in-library template: report under its name
    child.depth = frame.depth + 1;
    // Identical to the interpreter's FrameCtx scope construction, so the
    // runtime checker can correlate dispatched steps back to these nodes.
    child.scope = frame.scope + std::to_string(frame_cmd_idx) + "." +
                  std::to_string(child.depth) + "/";
    for (size_t i = 0; i < ins->size(); ++i) {
      child.name_map[sub->formal_inputs[i]] = Resolve(frame, (*ins)[i]);
    }
    for (size_t i = 0; i < outs->size(); ++i) {
      child.name_map[sub->formal_outputs[i]] = Resolve(frame, (*outs)[i]);
    }
    ExpandCommands(*cmds, /*first=*/1, child, /*base_offset=*/0,
                   /*frame_level=*/true, guarded, /*frame_cmd_idx=*/0);
  }

  /// Static twin of Execution::ResolveName: formals map through the
  /// subtask's actual arguments; intermediates are unique per scope.
  std::string Resolve(const Frame& frame, const std::string& formal) {
    auto it = frame.name_map.find(formal);
    if (it != frame.name_map.end()) return it->second;
    if (frame.scope.empty()) return formal;
    return formal + "@" + frame.scope;
  }

  Diagnostic& Emit(Severity severity, const char* rule, const Frame& frame,
                   int line, int col, std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.message = std::move(message);
    d.file = frame.file;
    d.line = line;
    d.column = col;
    d.template_name = frame.template_name;
    diags_->push_back(std::move(d));
    return diags_->back();
  }

  const tdl::TemplateLibrary* library_;
  std::string file_;
  std::vector<Diagnostic>* diags_;
  FlowGraph graph_;
  int barrier_watermark_ = 0;
};

void FlowGraph::Finalize() {
  const int n = static_cast<int>(nodes_.size());
  succ_.resize(n);

  for (const StepNode& node : nodes_) {
    std::string key = node.scope + '\x1f' + node.name;
    auto [it, inserted] = by_key_.emplace(std::move(key), node.id);
    if (!inserted) it->second = -2;  // ambiguous
  }

  // Data edges: each producer of an object name precedes its consumers —
  // except names available before any step runs (formal inputs): the
  // scheduler's readiness test (`StepIsReady`) is mere existence, so a
  // consumer of an initial name never waits for its re-writers.
  std::set<std::string> initial(formal_inputs_.begin(),
                                formal_inputs_.end());
  std::map<std::string, std::vector<int>> producers;
  for (const StepNode& node : nodes_) {
    for (const std::string& out : node.outputs) {
      producers[out].push_back(node.id);
    }
  }
  for (const StepNode& node : nodes_) {
    for (const std::string& in : node.inputs) {
      if (initial.count(in) > 0) continue;
      auto it = producers.find(in);
      if (it == producers.end()) continue;
      for (int p : it->second) {
        if (p != node.id) succ_[p].push_back(node.id);
      }
    }
  }

  // Control edges: `{ControlDependency N}` orders step N first.
  for (const StepNode& node : nodes_) {
    for (int dep : node.control_deps) {
      for (const StepNode& other : nodes_) {
        if (other.id != node.id && other.scope == node.scope &&
            other.user_id == dep) {
          succ_[other.id].push_back(node.id);
        }
      }
    }
  }

  // Strict transitive closure by DFS from every node (graphs are tiny).
  reach_.assign(n, std::vector<bool>(n, false));
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack(succ_[s]);
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      if (reach_[s][v]) continue;
      reach_[s][v] = true;
      for (int w : succ_[v]) {
        if (!reach_[s][w]) stack.push_back(w);
      }
    }
  }
}

bool FlowGraph::Ordered(int a, int b) const {
  if (a < 0 || b < 0 || a >= static_cast<int>(nodes_.size()) ||
      b >= static_cast<int>(nodes_.size())) {
    return false;
  }
  return reach_[a][b];
}

int FlowGraph::FindNode(const std::string& scope,
                        const std::string& name) const {
  auto it = by_key_.find(scope + '\x1f' + name);
  if (it == by_key_.end()) return -1;
  return it->second;
}

std::vector<int> FlowGraph::CycleMembers() const {
  std::vector<int> members;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (reach_[i][i]) members.push_back(i);
  }
  return members;
}

FlowGraph BuildFlowGraph(const tdl::TaskTemplate& tmpl,
                         const tdl::TemplateLibrary* library,
                         const std::string& file,
                         std::vector<Diagnostic>* diagnostics) {
  GraphBuilder builder(library, file, diagnostics);
  return builder.Build(tmpl);
}

}  // namespace papyrus::lint
