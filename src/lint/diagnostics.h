#ifndef PAPYRUS_LINT_DIAGNOSTICS_H_
#define PAPYRUS_LINT_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace papyrus::lint {

/// Diagnostic severities. Only kError findings make `papyrus-lint` exit
/// nonzero and make the task manager's pre-flight hook refuse a template.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityToString(Severity severity);

/// Stable rule identifiers — the catalogue of checks the static analyzer
/// implements. Templates are linted against all of them; golden tests key
/// on these strings, so treat them as API.
namespace rules {
inline constexpr const char* kParseError = "parse-error";
inline constexpr const char* kWriteRace = "write-race";
inline constexpr const char* kUndefinedInput = "undefined-input";
inline constexpr const char* kUnknownTool = "unknown-tool";
inline constexpr const char* kToolArity = "tool-arity";
inline constexpr const char* kDeadStep = "dead-step";
inline constexpr const char* kUnproducedOutput = "unproduced-output";
inline constexpr const char* kDependencyCycle = "dependency-cycle";
inline constexpr const char* kUnresolvedSubtask = "unresolved-subtask";
inline constexpr const char* kSubtaskArity = "subtask-arity";
inline constexpr const char* kDuplicateStepId = "duplicate-step-id";
inline constexpr const char* kUndefinedStepRef = "undefined-step-ref";
}  // namespace rules

/// One structured finding: severity, rule ID, message, and a file:line:col
/// span. `file` is the template's source file when linting from disk, or
/// the template name when linting an in-memory library entry.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;
  std::string message;
  std::string file;
  int line = 0;  // 1-based; 0 = whole file
  int column = 0;  // 1-based; 0 = whole line
  std::string template_name;
  std::string step_name;  // offending step, when applicable

  /// `file:line:col: severity[rule]: message` — the gcc-style rendering.
  std::string ToString() const;
  /// One JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Renders a diagnostic list as a JSON array (pretty, one object per
/// line) for `papyrus-lint --json`.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Computes the 1-based line and column of `offset` within `text`.
void LineColumnAt(std::string_view text, size_t offset, int* line,
                  int* column);

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_DIAGNOSTICS_H_
