#ifndef PAPYRUS_LINT_DIAGNOSTICS_H_
#define PAPYRUS_LINT_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace papyrus::lint {

/// Diagnostic severities. Only kError findings make `papyrus-lint` exit
/// nonzero and make the task manager's pre-flight hook refuse a template.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

const char* SeverityToString(Severity severity);

/// Stable rule identifiers — the catalogue of checks the static analyzer
/// implements. Templates are linted against all of them; golden tests key
/// on these strings, so treat them as API.
namespace rules {
inline constexpr const char* kParseError = "parse-error";
inline constexpr const char* kWriteRace = "write-race";
inline constexpr const char* kUndefinedInput = "undefined-input";
inline constexpr const char* kUnknownTool = "unknown-tool";
inline constexpr const char* kToolArity = "tool-arity";
inline constexpr const char* kDeadStep = "dead-step";
inline constexpr const char* kUnproducedOutput = "unproduced-output";
inline constexpr const char* kDependencyCycle = "dependency-cycle";
inline constexpr const char* kUnresolvedSubtask = "unresolved-subtask";
inline constexpr const char* kSubtaskArity = "subtask-arity";
inline constexpr const char* kDuplicateStepId = "duplicate-step-id";
inline constexpr const char* kUndefinedStepRef = "undefined-step-ref";

// Wire-script rules (`papyrus-lint --wire`): whole-deployment checks over
// papyrusd protocol scripts — the daemon protocol itself plus the
// cross-task data flow of everything the script queues.
inline constexpr const char* kWireParseError = "wire-parse-error";
inline constexpr const char* kWireUnknownVerb = "wire-unknown-verb";
inline constexpr const char* kWireMissingField = "wire-missing-field";
inline constexpr const char* kWireBadField = "wire-bad-field";
inline constexpr const char* kWireUnknownSession = "wire-unknown-session";
inline constexpr const char* kWireUnknownTemplate =
    "wire-unknown-template";
inline constexpr const char* kWireTaskArity = "wire-task-arity";
inline constexpr const char* kWireRunBeforeCheckin =
    "wire-run-before-checkin";
inline constexpr const char* kWireCrossSessionInput =
    "wire-cross-session-input";
inline constexpr const char* kWireWriteRace = "wire-write-race";
inline constexpr const char* kWireDuplicateTask = "wire-duplicate-task";
inline constexpr const char* kWireAfterShutdown = "wire-after-shutdown";
inline constexpr const char* kWireDrainMisuse = "wire-drain-misuse";
}  // namespace rules

/// One catalogue entry: a stable rule id, the severity its findings
/// normally carry, which analyzer emits it, and a one-line summary.
/// `papyrus-lint --catalogue` renders the list as docs/LINT.md; CI keeps
/// the checked-in file in sync (the docs/METRICS.md pattern).
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* scope;  // "template" or "wire"
  const char* summary;
};

/// Every rule either analyzer can emit, template rules first, in a
/// stable order. Golden tests and docs key on ids; treat them as API.
const std::vector<RuleInfo>& RuleCatalogue();

/// One structured finding: severity, rule ID, message, and a file:line:col
/// span. `file` is the template's source file when linting from disk, or
/// the template name when linting an in-memory library entry.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule;
  std::string message;
  std::string file;
  int line = 0;  // 1-based; 0 = whole file
  int column = 0;  // 1-based; 0 = whole line
  std::string template_name;
  std::string step_name;  // offending step, when applicable

  /// `file:line:col: severity[rule]: message` — the gcc-style rendering.
  std::string ToString() const;
  /// One JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Renders a diagnostic list as a JSON array (pretty, one object per
/// line) for `papyrus-lint --json`.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Computes the 1-based line and column of `offset` within `text`.
void LineColumnAt(std::string_view text, size_t offset, int* line,
                  int* column);

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_DIAGNOSTICS_H_
