#ifndef PAPYRUS_LINT_FLOW_GRAPH_H_
#define PAPYRUS_LINT_FLOW_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "lint/diagnostics.h"
#include "tdl/template.h"

namespace papyrus::lint {

/// One design step as the static analyzer sees it: names resolved through
/// the subtask formal/actual maps, plus everything needed to reason about
/// ordering (control dependencies, guards, barriers).
struct StepNode {
  int id = -1;
  std::string template_name;  // template whose text declares the step
  std::string scope;          // subtask scope, "" for the root task
  std::string name;
  int user_id = 0;  // 0 = none
  std::vector<std::string> inputs;   // resolved object names
  std::vector<std::string> outputs;  // resolved object names
  std::string tool;  // empty when the invocation is dynamic
  int line = 0;
  int column = 0;
  /// Inside an `if`/`while`/`for`/`foreach` body: may not execute, or may
  /// execute under a scheduler barrier. Guarded steps are exempt from the
  /// write-race rule (the Mosaico compaction-fallback pattern).
  bool guarded = false;
  /// The step uses run-time substitution ($var / [cmd]) in its name or
  /// object lists, so the static model of it is incomplete.
  bool dynamic = false;
  bool has_resumed = false;
  int resumed_user_id = 0;
  std::vector<int> control_deps;  // user ids within `scope`
};

/// The step-level data-flow graph of one task template, subtasks expanded
/// in-line exactly as the task manager does (§4.2.2). Edges are
/// happens-before constraints the scheduler enforces:
///
///   - data: the producer of an object name precedes its consumers,
///   - control: `{ControlDependency N}` steps follow step N,
///   - barrier: a command the interpreter synchronizes on ($status or
///     attribute reads force quiescence, task_manager.cc `NeedsSync`)
///     orders every earlier step before every later one.
class FlowGraph {
 public:
  const std::vector<StepNode>& nodes() const { return nodes_; }
  const std::vector<std::vector<int>>& successors() const { return succ_; }

  /// True when step `a` happens-before step `b` (strict; transitive).
  bool Ordered(int a, int b) const;

  /// Finds the node with this scope + step name. Returns -1 when absent,
  /// -2 when the pair is ambiguous (declared more than once).
  int FindNode(const std::string& scope, const std::string& name) const;

  /// Ids of nodes that sit on a dependency cycle.
  std::vector<int> CycleMembers() const;

  /// Any step used run-time substitution: flow rules that assume the
  /// model is complete must downgrade their findings.
  bool has_dynamic() const { return has_dynamic_; }

  /// Resolved names of the root task's formal outputs.
  const std::vector<std::string>& formal_outputs() const {
    return formal_outputs_;
  }
  /// Resolved names available before any step runs (formal inputs).
  const std::vector<std::string>& formal_inputs() const {
    return formal_inputs_;
  }

 private:
  friend class GraphBuilder;

  void Finalize();  // data/control edges + reachability closure

  std::vector<StepNode> nodes_;
  std::vector<std::vector<int>> succ_;
  std::vector<std::vector<bool>> reach_;  // strict reachability closure
  std::map<std::string, int> by_key_;     // scope \x1f name -> id | -2
  std::vector<std::string> formal_inputs_;
  std::vector<std::string> formal_outputs_;
  bool has_dynamic_ = false;
};

/// Builds the flow graph for `tmpl`, expanding subtasks through `library`
/// (may be null: every subtask is then reported unresolved). Structural
/// problems found during construction (bad step syntax, unresolved or
/// arity-mismatched subtasks, unparsable nested scripts) are appended to
/// `diagnostics`; `file` is used as the diagnostic source for the root
/// template, expanded subtasks report under their own template name.
FlowGraph BuildFlowGraph(const tdl::TaskTemplate& tmpl,
                         const tdl::TemplateLibrary* library,
                         const std::string& file,
                         std::vector<Diagnostic>* diagnostics);

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_FLOW_GRAPH_H_
