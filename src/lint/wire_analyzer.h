#ifndef PAPYRUS_LINT_WIRE_ANALYZER_H_
#define PAPYRUS_LINT_WIRE_ANALYZER_H_

#include <string>
#include <vector>

#include "cadtools/registry.h"
#include "lint/diagnostics.h"
#include "server/queue.h"
#include "tdl/template.h"

namespace papyrus::lint {

/// What the wire analyzer checks against. Without a template library the
/// template-resolution rules (wire-unknown-template, wire-task-arity, and
/// the re-lint of referenced templates) are skipped; without a tool
/// registry referenced templates are linted with tool rules off.
struct WireAnalyzerOptions {
  const tdl::TemplateLibrary* library = nullptr;
  const cadtools::ToolRegistry* tools = nullptr;
  std::string file;  // diagnostic source label
};

/// Outcome of analyzing one wire script: diagnostics sorted by line, plus
/// a severity tally. Only errors make `papyrus-lint --wire` exit nonzero.
struct WireAnalysis {
  std::vector<Diagnostic> diagnostics;
  int errors = 0;
  int warnings = 0;
  int notes = 0;

  bool ok() const { return errors == 0; }
};

/// Statically analyzes a papyrusd wire script — the whole-deployment
/// counterpart of LintTemplate. The analyzer simulates the daemon's
/// execution model line by line: checkins bind object names inside their
/// session, submits queue tasks (inputs must already be bound, outputs
/// become bound), `run` executes the oldest queued task, `drain` executes
/// them all, and `shutdown` ends the incarnation (later lines address a
/// restarted daemon on the same root, so only task-bearing verbs are dead
/// there). Every referenced task template is additionally linted against
/// the full template rule catalogue, so a flow error inside a template
/// the script queues surfaces from the script's analysis too.
///
/// Blank lines and `#` comments are skipped, matching papyrusd.
WireAnalysis AnalyzeWireScript(const std::string& text,
                               const WireAnalyzerOptions& options);

/// Reads `path` and analyzes its contents, labeling diagnostics with the
/// path. An unreadable file yields one wire-parse-error diagnostic.
WireAnalysis AnalyzeWireFile(const std::string& path,
                             const WireAnalyzerOptions& options);

/// The papyrusd startup pre-flight: re-checks every pending or claimed
/// task already sitting in a reopened queue (descriptions may come from
/// an older incarnation or another client). Emits wire-parse-error,
/// wire-unknown-template, wire-task-arity, and wire-write-race findings;
/// `file` labels the findings (the queue directory). Report-only — the
/// daemon still drains a queue with findings, they just fail fast at
/// execution.
std::vector<Diagnostic> PreflightQueuedTasks(
    const std::vector<server::QueueTask>& tasks,
    const tdl::TemplateLibrary* library, const std::string& file);

}  // namespace papyrus::lint

#endif  // PAPYRUS_LINT_WIRE_ANALYZER_H_
