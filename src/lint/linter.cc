#include "lint/linter.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace papyrus::lint {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + names[i] + "\"";
  }
  return out;
}

class Linter {
 public:
  Linter(const tdl::TaskTemplate& tmpl, const LintOptions& options)
      : tmpl_(tmpl),
        options_(options),
        file_(options.file.empty() ? tmpl.name : options.file) {}

  LintResult Run() {
    auto graph = std::make_shared<FlowGraph>(
        BuildFlowGraph(tmpl_, options_.library, file_, &diags_));
    graph_ = graph.get();

    CheckTools();
    CheckUndefinedInputs();
    CheckWriteRaces();
    CheckUnproducedOutputs();
    CheckDeadSteps();
    CheckCycles();
    CheckDuplicateIds();
    CheckStepRefs();

    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       if (a.line != b.line) return a.line < b.line;
                       return a.column < b.column;
                     });
    LintResult result;
    result.graph = std::move(graph);
    for (const Diagnostic& d : diags_) {
      if (d.severity == Severity::kError) ++result.errors;
      if (d.severity == Severity::kWarning) ++result.warnings;
    }
    result.diagnostics = std::move(diags_);
    return result;
  }

 private:
  /// Rules whose model assumes every step is statically known soften to
  /// warnings when the template builds steps with run-time substitution
  /// (loop-generated step chains): the flow may still be correct.
  Severity FlowSeverity() const {
    return graph_->has_dynamic() ? Severity::kWarning : Severity::kError;
  }

  void Emit(Severity severity, const char* rule, const StepNode* node,
            std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.message = std::move(message);
    d.file = node == nullptr ? file_ : DiagnosticFile(*node);
    d.template_name = node == nullptr ? tmpl_.name : node->template_name;
    if (node != nullptr) {
      d.line = node->line;
      d.column = node->column;
      d.step_name = node->name;
    }
    diags_.push_back(std::move(d));
  }

  /// Steps expanded out of a library subtask report under the subtask's
  /// template name, not the root file: their text is not in this file.
  std::string DiagnosticFile(const StepNode& node) const {
    return node.template_name == tmpl_.name ? file_ : node.template_name;
  }

  /// Rule unknown-tool / tool-arity: every static invocation must name a
  /// registered tool and respect its declared call signature.
  void CheckTools() {
    if (options_.tools == nullptr) return;
    for (const StepNode& node : graph_->nodes()) {
      if (node.tool.empty()) continue;  // dynamic invocation
      auto tool = options_.tools->Find(node.tool);
      if (!tool.ok()) {
        Emit(Severity::kError, rules::kUnknownTool, &node,
             "step \"" + node.name + "\" invokes unknown tool \"" +
                 node.tool + "\"");
        continue;
      }
      if (node.dynamic) continue;  // object counts unreliable
      const cadtools::ToolDescriptor& desc = (*tool)->descriptor();
      const int ins = static_cast<int>(node.inputs.size());
      const int outs = static_cast<int>(node.outputs.size());
      if (ins < desc.min_inputs) {
        // Too few inputs: the tool is guaranteed to fail at run time.
        Emit(Severity::kError, rules::kToolArity, &node,
             "step \"" + node.name + "\" passes " + std::to_string(ins) +
                 " input(s) to " + node.tool + ", which needs at least " +
                 std::to_string(desc.min_inputs));
      } else if (desc.max_inputs >= 0 && ins > desc.max_inputs) {
        // Extra inputs are legal as pure data-flow joins (the step waits
        // for them but the tool ignores them) — flag, don't refuse.
        Emit(Severity::kWarning, rules::kToolArity, &node,
             "step \"" + node.name + "\" passes " + std::to_string(ins) +
                 " input(s) to " + node.tool + ", which reads at most " +
                 std::to_string(desc.max_inputs) +
                 " (extra inputs act only as synchronization)");
      }
      if (desc.num_outputs >= 0 && outs != desc.num_outputs) {
        // The task manager enforces the declared output count exactly, so
        // a mismatch always fails the step.
        Emit(Severity::kError, rules::kToolArity, &node,
             "step \"" + node.name + "\" declares " + std::to_string(outs) +
                 " output(s) but " + node.tool + " produces " +
                 std::to_string(desc.num_outputs));
      }
    }
  }

  /// Producers of each resolved object name. `exclude` skips one node id
  /// (a step cannot satisfy its own input — that's a deadlock).
  bool HasProducer(const std::string& name, int exclude) const {
    for (const StepNode& node : graph_->nodes()) {
      if (node.id == exclude) continue;
      for (const std::string& out : node.outputs) {
        if (out == name) return true;
      }
    }
    return false;
  }

  /// Rule undefined-input: a consumed name must be a formal input or some
  /// other step's output, else the scheduler suspends the step forever.
  void CheckUndefinedInputs() {
    std::set<std::string> initial(graph_->formal_inputs().begin(),
                                  graph_->formal_inputs().end());
    for (const StepNode& node : graph_->nodes()) {
      for (const std::string& in : node.inputs) {
        if (initial.count(in) > 0 || HasProducer(in, node.id)) continue;
        Emit(FlowSeverity(), rules::kUndefinedInput, &node,
             "step \"" + node.name + "\" consumes \"" + in +
                 "\", which is neither a formal input nor produced by "
                 "any step");
      }
    }
  }

  /// Rule write-race: two steps with no happens-before path both writing
  /// one object name race on its next version. Guarded steps (conditional
  /// branches) are exempt — the if/else fallback pattern writes the same
  /// name from mutually exclusive arms.
  void CheckWriteRaces() {
    std::map<std::string, std::vector<const StepNode*>> writers;
    for (const StepNode& node : graph_->nodes()) {
      if (node.guarded || node.dynamic) continue;
      for (const std::string& out : node.outputs) {
        writers[out].push_back(&node);
      }
    }
    for (const auto& [name, nodes] : writers) {
      for (size_t i = 0; i < nodes.size(); ++i) {
        for (size_t j = i + 1; j < nodes.size(); ++j) {
          const StepNode* a = nodes[i];
          const StepNode* b = nodes[j];
          if (graph_->Ordered(a->id, b->id) ||
              graph_->Ordered(b->id, a->id)) {
            continue;
          }
          const StepNode* at = b->line >= a->line ? b : a;
          Emit(Severity::kError, rules::kWriteRace, at,
               "steps \"" + a->name + "\" (line " +
                   std::to_string(a->line) + ") and \"" + b->name +
                   "\" (line " + std::to_string(b->line) +
                   ") both produce \"" + name +
                   "\" with no ordering between them");
        }
      }
    }
  }

  /// Rule unproduced-output: a formal output no step writes can never be
  /// delivered, so the task would abort at finalization every time.
  void CheckUnproducedOutputs() {
    for (const std::string& out : graph_->formal_outputs()) {
      if (HasProducer(out, /*exclude=*/-1)) continue;
      Emit(FlowSeverity(), rules::kUnproducedOutput, nullptr,
           "formal output \"" + out + "\" is never produced by any step");
    }
  }

  /// Rule dead-step: an unconditional step none of whose outputs are
  /// consumed, exported, or awaited does work the flow throws away.
  void CheckDeadSteps() {
    std::set<std::string> consumed;
    std::set<std::string> formals(graph_->formal_outputs().begin(),
                                  graph_->formal_outputs().end());
    for (const StepNode& node : graph_->nodes()) {
      consumed.insert(node.inputs.begin(), node.inputs.end());
    }
    for (const StepNode& node : graph_->nodes()) {
      if (node.guarded || node.dynamic || node.outputs.empty()) continue;
      bool useful = false;
      for (const std::string& out : node.outputs) {
        if (consumed.count(out) > 0 || formals.count(out) > 0) {
          useful = true;
          break;
        }
      }
      if (!useful && node.user_id > 0) {
        // Another step may order itself after this one.
        for (const StepNode& other : graph_->nodes()) {
          if (other.scope == node.scope &&
              (std::count(other.control_deps.begin(),
                          other.control_deps.end(), node.user_id) > 0 ||
               (other.has_resumed &&
                other.resumed_user_id == node.user_id))) {
            useful = true;
            break;
          }
        }
      }
      if (useful) continue;
      Emit(graph_->has_dynamic() ? Severity::kNote : Severity::kWarning,
           rules::kDeadStep, &node,
           "step \"" + node.name + "\" is dead: none of its outputs (" +
               JoinNames(node.outputs) +
               ") are consumed or formal outputs");
    }
  }

  /// Rule dependency-cycle: steps on a cycle of data/control/barrier
  /// constraints can never all become ready — guaranteed deadlock.
  void CheckCycles() {
    std::vector<int> members = graph_->CycleMembers();
    if (members.empty()) return;
    std::vector<std::string> names;
    for (int id : members) names.push_back(graph_->nodes()[id].name);
    Emit(Severity::kError, rules::kDependencyCycle,
         &graph_->nodes()[members.front()],
         "dependency cycle among steps " + JoinNames(names) +
             ": the scheduler can never dispatch them");
  }

  /// Rule duplicate-step-id: two unconditional steps claiming one user id
  /// make ResumedStep/ControlDependency references ambiguous. Guarded
  /// duplicates (if/else arms) are the documented branch pattern.
  void CheckDuplicateIds() {
    std::map<std::pair<std::string, int>, std::vector<const StepNode*>>
        by_id;
    for (const StepNode& node : graph_->nodes()) {
      if (node.user_id <= 0 || node.guarded || node.dynamic) continue;
      by_id[{node.scope, node.user_id}].push_back(&node);
    }
    for (const auto& [key, nodes] : by_id) {
      if (nodes.size() < 2) continue;
      Emit(Severity::kError, rules::kDuplicateStepId, nodes.back(),
           "step id " + std::to_string(key.second) +
               " is declared by multiple unconditional steps (first at "
               "line " +
               std::to_string(nodes.front()->line) + ")");
    }
  }

  /// Rule undefined-step-ref: ResumedStep/ControlDependency ids must name
  /// a step declared in the same scope.
  void CheckStepRefs() {
    for (const StepNode& node : graph_->nodes()) {
      std::vector<int> refs = node.control_deps;
      // `ResumedStep 0` means "restart the whole task from scratch"
      // (§4.3.4) and references no step.
      if (node.has_resumed && node.resumed_user_id != 0) {
        refs.push_back(node.resumed_user_id);
      }
      for (int ref : refs) {
        bool found = false;
        for (const StepNode& other : graph_->nodes()) {
          if (other.scope == node.scope && other.user_id == ref) {
            found = true;
            break;
          }
        }
        if (found) continue;
        Emit(graph_->has_dynamic() ? Severity::kWarning : Severity::kError,
             rules::kUndefinedStepRef, &node,
             "step \"" + node.name + "\" references step id " +
                 std::to_string(ref) + ", which no step in this " +
                 (node.scope.empty() ? "task" : "subtask") + " declares");
      }
    }
  }

  const tdl::TaskTemplate& tmpl_;
  const LintOptions& options_;
  std::string file_;
  std::vector<Diagnostic> diags_;
  const FlowGraph* graph_ = nullptr;
};

}  // namespace

LintResult LintTemplate(const tdl::TaskTemplate& tmpl,
                        const LintOptions& options) {
  return Linter(tmpl, options).Run();
}

LintResult LintScript(const std::string& script,
                      const LintOptions& options) {
  auto tmpl = tdl::ParseTemplateHeader(script);
  if (!tmpl.ok()) {
    LintResult result;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = rules::kParseError;
    d.message = tmpl.status().message();
    d.file = options.file.empty() ? "<script>" : options.file;
    d.line = 1;
    result.diagnostics.push_back(std::move(d));
    result.errors = 1;
    return result;
  }
  return LintTemplate(*tmpl, options);
}

LintResult LintFile(const std::string& path, const LintOptions& options) {
  std::ifstream in(path);
  if (!in) {
    LintResult result;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = rules::kParseError;
    d.message = "cannot read file";
    d.file = path;
    result.diagnostics.push_back(std::move(d));
    result.errors = 1;
    return result;
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  LintOptions file_options = options;
  file_options.file = path;
  return LintScript(contents.str(), file_options);
}

}  // namespace papyrus::lint
