#ifndef PAPYRUS_OCT_ATTRIBUTE_STORE_H_
#define PAPYRUS_OCT_ATTRIBUTE_STORE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "oct/object_id.h"

namespace papyrus::oct {

/// How an attribute value comes into existence (§6.4.1).
enum class AttributeMode {
  kStored,     // set directly (administrative / inherited values)
  kLazy,       // computed on demand by the compute tool
  kImmediate,  // computed eagerly when the object is created
};

/// One attribute of one object version: name, value, and the tool that can
/// (re)compute it (§4.3.6: "An object's attribute consists of three parts:
/// attribute name, attribute value, and attribute computation tool").
struct AttributeEntry {
  std::string name;
  std::string value;         // Tcl-style: everything is a string
  std::string compute_tool;  // "" for stored attributes
  AttributeMode mode = AttributeMode::kStored;
  bool computed = false;     // value is valid (cache state)
};

/// The central attribute database associated with a thread workspace
/// (§4.3.6). The task manager caches computed attribute values here; the
/// metadata inference engine (src/meta) attaches type-specific attribute
/// sets and invalidates entries when incremental re-evaluation runs.
class AttributeStore {
 public:
  /// Defines or overwrites an attribute with a stored value.
  void Set(const ObjectId& id, const std::string& attr,
           const std::string& value);

  /// Attaches an attribute slot without a value; `compute_tool` will be run
  /// to fill it (lazy) or has been run already (immediate).
  void Attach(const ObjectId& id, const std::string& attr,
              const std::string& compute_tool, AttributeMode mode);

  /// Records a computed value for an attached attribute.
  Status SetComputed(const ObjectId& id, const std::string& attr,
                     const std::string& value);

  /// Marks an attribute's cached value invalid (incremental re-evaluation).
  Status Invalidate(const ObjectId& id, const std::string& attr);

  /// Returns the entry, or NotFound when never attached/set.
  Result<AttributeEntry> Get(const ObjectId& id,
                             const std::string& attr) const;

  /// Returns a valid value or NotFound when absent / not yet computed.
  Result<std::string> GetValue(const ObjectId& id,
                               const std::string& attr) const;

  bool Has(const ObjectId& id, const std::string& attr) const;

  /// All attributes of one object, sorted by name.
  std::vector<AttributeEntry> List(const ObjectId& id) const;

  /// Number of (object, attribute) pairs stored.
  size_t size() const;

 private:
  std::unordered_map<ObjectId, std::map<std::string, AttributeEntry>>
      attrs_;
};

}  // namespace papyrus::oct

#endif  // PAPYRUS_OCT_ATTRIBUTE_STORE_H_
