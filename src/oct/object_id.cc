#include "oct/object_id.h"

#include "base/strings.h"

namespace papyrus::oct {

Result<ObjectRef> ParseObjectRef(const std::string& text) {
  std::string_view s = Trim(text);
  if (s.empty()) {
    return Status::InvalidArgument("empty object name");
  }
  ObjectRef ref;
  if (s.front() == '/') {
    ref.name = std::string(s);
    ref.is_absolute_path = true;
    return ref;
  }
  size_t at = s.rfind('@');
  if (at == std::string_view::npos) {
    ref.name = std::string(s);
    return ref;
  }
  int64_t v = 0;
  if (!ParseInt64(s.substr(at + 1), &v) || v <= 0) {
    return Status::InvalidArgument("bad version in object name: " +
                                   std::string(s));
  }
  ref.name = std::string(s.substr(0, at));
  if (ref.name.empty()) {
    return Status::InvalidArgument("empty name before '@': " +
                                   std::string(s));
  }
  ref.version = static_cast<int>(v);
  return ref;
}

}  // namespace papyrus::oct
