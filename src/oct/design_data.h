#ifndef PAPYRUS_OCT_DESIGN_DATA_H_
#define PAPYRUS_OCT_DESIGN_DATA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "base/result.h"

namespace papyrus::oct {

/// The three semantic domains of VLSI design data, used by the metadata
/// inference engine's execution-semantics vectors (§6.4.1, Figure 6.4).
enum class DesignDomain {
  kBehavioral,
  kLogic,
  kPhysical,
  kOther,
};

const char* DesignDomainToString(DesignDomain d);

/// Concrete storage formats, mirroring the OCT tool suite's file formats.
enum class DesignFormat {
  kNone,
  kBds,        // behavioral description (bdsyn input)
  kBlif,       // Berkeley logic interchange format
  kEquation,   // algebraic equations (espresso -o equitott)
  kPla,        // PLA personality matrix (espresso -o pleasure)
  kSymbolic,   // symbolic layout (pre-compaction)
  kGeometric,  // mask geometry
  kText,       // plain text (stats, command files)
};

const char* DesignFormatToString(DesignFormat f);

/// Synthetic behavioral specification (the entry point of every flow).
///
/// The mock CAD tools (src/cadtools) transform these payloads
/// deterministically: `seed` makes tool outputs reproducible functions of
/// their inputs and options, which is all Papyrus itself ever observes.
struct BehavioralSpec {
  int num_inputs = 0;
  int num_outputs = 0;
  int complexity = 0;  // abstract size measure; drives downstream sizes
  uint64_t seed = 0;
};

/// Synthetic multi-level / two-level logic network.
struct LogicNetwork {
  int num_inputs = 0;
  int num_outputs = 0;
  int minterms = 0;  // two-level product-term count ("length" of a PLA)
  int literals = 0;  // multi-level literal count
  int levels = 0;    // logic depth
  DesignFormat format = DesignFormat::kBlif;
  uint64_t seed = 0;
};

/// Synthetic physical layout.
struct Layout {
  int num_cells = 0;
  double area = 0.0;           // in lambda^2
  double delay_ns = 0.0;       // critical path delay
  double power_mw = 0.0;       // power consumption
  double wire_length = 0.0;    // total routed wire length
  bool has_pads = false;
  bool routed = false;
  bool compacted = false;
  bool has_abstraction = false;  // protection frame created (vulcan)
  std::string style;             // "standard-cell", "PLA", "macro"
  DesignFormat format = DesignFormat::kSymbolic;
  uint64_t seed = 0;
};

/// Plain text payloads: simulation command files, statistics reports, ...
struct TextData {
  std::string text;
};

/// The payload of one design-object version.
using DesignPayload =
    std::variant<std::monostate, BehavioralSpec, LogicNetwork, Layout,
                 TextData>;

/// Approximate storage footprint of a payload in bytes. Drives the storage
/// management experiments (§5.4): reclamation is measured in these bytes.
int64_t PayloadSizeBytes(const DesignPayload& p);

/// "behavioral" / "logic" / "layout" / "text" / "empty".
const char* PayloadTypeName(const DesignPayload& p);

/// The semantic domain a payload lives in.
DesignDomain PayloadDomain(const DesignPayload& p);

/// One-line human readable description (for renderers and examples).
std::string PayloadToString(const DesignPayload& p);

/// Canonical single-line text encoding of a payload: the whitespace-field
/// layout the snapshot format has always used ("behavioral 4 2 10 7",
/// "layout 40 2e+04 ... ~macro 5 1", ...; doubles as %.17g, strings
/// '~'-prefixed percent-encoded). Two payloads encode identically iff they
/// are semantically identical, which makes this encoding the basis of
/// content identity: CAS blob bytes *are* this text, and
/// PayloadContentHash() hashes it.
std::string EncodePayloadText(const DesignPayload& p);

/// Parses `f[at..]` as written by EncodePayloadText (shared with the
/// snapshot payload codec, which embeds payload fields in wider records).
Result<DesignPayload> ParsePayloadFields(const std::vector<std::string>& f,
                                         size_t at);

/// Inverse of EncodePayloadText.
Result<DesignPayload> DecodePayloadText(std::string_view text);

/// Lowercase-hex SHA-256 of EncodePayloadText(p) — the payload's strong
/// content identity, used for CAS keys and blob verification.
std::string PayloadContentHash(const DesignPayload& p);

}  // namespace papyrus::oct

#endif  // PAPYRUS_OCT_DESIGN_DATA_H_
