#ifndef PAPYRUS_OCT_DATABASE_H_
#define PAPYRUS_OCT_DATABASE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/clock.h"
#include "base/intern.h"
#include "base/result.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/observability.h"
#include "oct/design_data.h"
#include "oct/object_id.h"

namespace papyrus::oct {

/// One immutable version of a design object plus its bookkeeping state.
struct ObjectRecord {
  ObjectId id;
  DesignPayload payload;
  std::string creator_tool;  // tool that produced this version ("" = user)
  int64_t created_micros = 0;
  int64_t last_access_micros = 0;
  int64_t size_bytes = 0;
  bool visible = true;     // LWT visibility: "deleted" objects are invisible
  bool reclaimed = false;  // payload physically freed by object reclamation
  /// Reclamation protection: >0 means some manager (the derivation cache)
  /// still references this version's payload; Reclaim refuses. Runtime
  /// state, not persisted — pin holders re-establish pins on restore.
  int pin_count = 0;
  /// Memoized PayloadContentHash (payloads are immutable once created).
  /// Empty until OctDatabase::ContentHash first computes it. Runtime
  /// state, never persisted.
  std::string content_hash;
};

/// The design database substrate (stands in for Berkeley OCT).
///
/// The LWT model (§3.2) assumes only these properties of the database:
///  - every object is uniquely identified and versions are system-assigned;
///  - updates follow single-assignment semantics (new versions, never
///    in-place);
///  - a design step's database side effects are atomic (see Transaction);
///  - "deleting" an object makes it *invisible*; a background reclaimer may
///    later free the storage (§3.3.1, §5.4).
///
/// Thread workspaces and synchronization data spaces (src/activity,
/// src/sync) are *views* over this store: they hold sets of ObjectIds and
/// never duplicate payloads.
///
/// Storage layout: records live in kShardCount shards keyed by the
/// *cell* prefix of the object name, so the storage engine can persist
/// only the shards a commit dirtied instead of rewriting one giant map,
/// and independent cells stop contending on one hash table. Names are
/// interned (base::InternTable): shard maps hash a 4-byte Symbol and one
/// arena-backed copy of every `cell:view:facet` string exists per
/// database. Each shard carries a mutation sequence number (delta-
/// snapshot dirtiness) and the database keeps a drain list of records
/// touched since the last write-ahead-log commit.
///
/// Thread contract: the store is engine-owned and unlocked. Every
/// mutating call (version creation, visibility flips, reclamation,
/// pinning, restore — and `Get`, which bumps the access time) carries
/// PAPYRUS_REQUIRES(base::engine_thread); the const views (`Peek`,
/// `LatestVisible`, `PayloadBytes`, ...) are what step-executor workers
/// may read through dispatch-time snapshots.
class OctDatabase {
 public:
  /// Cell-shard fan-out. A power of two so ShardOf is a mask.
  static constexpr int kShardCount = 16;

  /// The shard holding every version of every object of `name`'s cell
  /// (the prefix before the first ':' or '.'; the whole name when it has
  /// neither).
  static int ShardOf(std::string_view name);

  explicit OctDatabase(Clock* clock);

  OctDatabase(const OctDatabase&) = delete;
  OctDatabase& operator=(const OctDatabase&) = delete;

  /// Creates the next version of `name` holding `payload`.
  /// The version number is allocated by the database (§3.2).
  Result<ObjectId> CreateVersion(const std::string& name,
                                 DesignPayload payload,
                                 const std::string& creator_tool = "")
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Looks up a specific version. Fails with NotFound for unknown ids,
  /// invisible ("deleted") versions, and reclaimed versions.
  /// Updates the record's last-access time (hence engine-only).
  Result<const ObjectRecord*> Get(const ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Looks up without updating access time or filtering invisible records.
  /// Used by managers that need bookkeeping state (reclaimer, renderers).
  Result<const ObjectRecord*> Peek(const ObjectId& id) const;

  /// Cached byte footprint of a version's payload (0 when the version
  /// does not exist). O(1): reads the size computed at creation, never
  /// touching the payload, the access time, or visibility — hot on the
  /// step-dispatch path (tool cost model, derivation-cache sizing).
  int64_t PayloadBytes(const ObjectId& id) const;

  /// Lowercase-hex SHA-256 content identity of a version's payload,
  /// memoized on the record (payloads are immutable). Fails with NotFound
  /// for unknown ids and FailedPrecondition for reclaimed versions (their
  /// payload bytes are gone, so they have no content anymore). Engine-only
  /// because it writes the memo field.
  Result<std::string> ContentHash(const ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Latest *visible* version of `name`, or NotFound.
  Result<ObjectId> LatestVisible(const std::string& name) const;

  /// Number of versions ever created for `name` (including invisible ones).
  int VersionCount(const std::string& name) const;

  /// Marks a version invisible ("delete" under the visibility abstraction).
  Status MarkInvisible(const ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Undeletes a version, provided it has not been physically reclaimed.
  Status MarkVisible(const ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Physically frees a version's payload. Keeps a tombstone so history
  /// remains self-describing. Irreversible. A pinned version first gives
  /// the pin holder a chance to release its claim (see
  /// set_pinned_reclaim_handler); if the version is still pinned after
  /// that, Reclaim refuses with FailedPrecondition.
  Status Reclaim(const ObjectId& id) PAPYRUS_REQUIRES(base::engine_thread);

  /// Reclamation protection for versions some manager still depends on.
  /// Pins nest; Unpin of an unpinned or unknown version is a no-op.
  Status Pin(const ObjectId& id) PAPYRUS_REQUIRES(base::engine_thread);
  void Unpin(const ObjectId& id) PAPYRUS_REQUIRES(base::engine_thread);
  bool IsPinned(const ObjectId& id) const;

  /// Called by Reclaim when it encounters a pinned version, so the pin
  /// holder (the derivation cache) can invalidate dependent state and
  /// release the pin instead of vetoing reclamation. One holder at a time;
  /// pass nullptr to unregister.
  void set_pinned_reclaim_handler(std::function<void(const ObjectId&)> fn)
      PAPYRUS_REQUIRES(base::engine_thread) {
    pinned_reclaim_handler_ = std::move(fn);
  }

  bool Exists(const ObjectId& id) const;

  /// Sum of payload bytes of all non-reclaimed versions.
  int64_t TotalLiveBytes() const;
  /// Total number of non-reclaimed versions.
  int64_t LiveVersionCount() const;
  /// Total number of versions ever created.
  int64_t TotalVersionCount() const { return total_versions_; }

  /// Visits every record (including invisible and reclaimed ones).
  void ForEach(
      const std::function<void(const ObjectRecord&)>& fn) const;

  /// Re-inserts a record with its exact id and bookkeeping state; used by
  /// the persistence layer (§5.3: the history is stored persistently for
  /// inter-process communication and crash recovery). Records of one name
  /// must be restored in version order.
  Status RestoreRecord(ObjectRecord record)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Applies one journaled record state: replaces the slot when the
  /// version exists, appends when it is the next version, fails when it
  /// would leave a gap. WAL replay (src/core) funnels through this —
  /// replay applies exact serialized states, never re-executes logic,
  /// which is what keeps recovery byte-identical. Replaced slots keep
  /// their runtime-only state (pin count, content-hash memo).
  Status UpsertRecord(ObjectRecord record)
      PAPYRUS_REQUIRES(base::engine_thread);

  // --- storage-engine hooks ----------------------------------------------

  /// Visits every record of one shard (including invisible and reclaimed
  /// ones), in unspecified order.
  void ForEachShard(
      int shard, const std::function<void(const ObjectRecord&)>& fn) const;

  /// Monotonic per-shard mutation counter covering every *persisted*
  /// state change (creation, visibility, reclamation, access-time bumps,
  /// restores). The delta-snapshot writer compares it against the value
  /// captured at the last generation to find dirty shards.
  uint64_t ShardSeq(int shard) const { return shards_[shard].seq; }

  /// True when any record changed since the last drain/discard.
  bool HasWalDirt() const PAPYRUS_REQUIRES(base::engine_thread);

  /// Visits the records dirtied since the last drain in first-dirtied
  /// order (deterministic: mutations happen only on the engine thread),
  /// then clears the dirty set. Each record is visited once with its
  /// *current* state.
  void DrainWalDirt(const std::function<void(const ObjectRecord&)>& fn)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Clears the dirty set without visiting (after a restore or WAL
  /// replay, whose records are already durable).
  void DiscardWalDirt() PAPYRUS_REQUIRES(base::engine_thread);

  /// Interning diagnostics.
  size_t interned_names() const { return names_.size(); }
  size_t intern_arena_bytes() const { return names_.arena_bytes(); }

  Clock* clock() const { return clock_; }

  /// Attaches trace + metrics sinks: version allocations and reclamations
  /// become session-track instants and papyrus.oct.* counters, with the
  /// live-bytes gauge tracking TotalLiveBytes incrementally.
  void set_observability(const obs::Observability& obs)
      PAPYRUS_REQUIRES(base::engine_thread);

 private:
  struct Shard {
    // interned name -> versions, index i holds version i+1.
    std::unordered_map<base::Symbol, std::vector<ObjectRecord>> objects;
    uint64_t seq = 0;  // bumped on every persisted-state mutation
  };

  ObjectRecord* Find(const ObjectId& id);
  const ObjectRecord* Find(const ObjectId& id) const;
  /// Records a persisted-state mutation of (sym, version) for the WAL
  /// drain and the shard's delta-dirtiness counter.
  void MarkDirty(int shard, base::Symbol sym, int version);
  Status InsertRecord(ObjectRecord record, bool mark_wal_dirty);

  /// Trace thread id for OCT events under the session process group.
  static constexpr int64_t kOctTrackTid = 1;

  Clock* clock_;
  base::InternTable names_;
  std::array<Shard, kShardCount> shards_;
  // WAL drain state: (symbol, version) pairs in first-dirtied order.
  std::vector<std::pair<base::Symbol, int>> wal_dirty_;
  std::unordered_set<uint64_t> wal_dirty_keys_;
  std::function<void(const ObjectId&)> pinned_reclaim_handler_;
  int64_t total_versions_ = 0;
  obs::Observability obs_;
  obs::Counter* c_versions_created_ = nullptr;
  obs::Counter* c_reclaimed_ = nullptr;
  obs::Gauge* g_live_bytes_ = nullptr;
};

/// Buffers the object creations of one design step and applies them
/// atomically (§3.3.1: a design step is an indivisible operation against
/// the design data space; atomicity within a tool run is the database's
/// job, not the LWT model's).
class Transaction {
 public:
  explicit Transaction(OctDatabase* db) : db_(db) {}

  /// Stages creation of the next version of `name`.
  void StageCreate(const std::string& name, DesignPayload payload,
                   const std::string& creator_tool);

  /// Applies all staged creations; returns the ids created, in staging
  /// order. After Commit the transaction is empty and reusable.
  Result<std::vector<ObjectId>> Commit()
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Discards staged work.
  void Abort() { staged_.clear(); }

  size_t staged_count() const { return staged_.size(); }

 private:
  struct Staged {
    std::string name;
    DesignPayload payload;
    std::string creator_tool;
  };
  OctDatabase* db_;
  std::vector<Staged> staged_;
};

}  // namespace papyrus::oct

#endif  // PAPYRUS_OCT_DATABASE_H_
