#ifndef PAPYRUS_OCT_OBJECT_ID_H_
#define PAPYRUS_OCT_OBJECT_ID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "base/result.h"

namespace papyrus::oct {

/// Identifies one immutable version of a design object.
///
/// Papyrus object names follow the thesis (§5.2): a plain name
/// ("ALU.logic"), a name with an explicit version ("ALU.logic@2"), or an
/// absolute path ("/user/chiueh/Multiplier"). The `name:version` pair is the
/// unit of single-assignment update: versions are never modified in place.
struct ObjectId {
  std::string name;
  int version = 0;

  std::string ToString() const {
    return name + "@" + std::to_string(version);
  }

  friend bool operator==(const ObjectId& a, const ObjectId& b) {
    return a.version == b.version && a.name == b.name;
  }
  friend bool operator!=(const ObjectId& a, const ObjectId& b) {
    return !(a == b);
  }
  friend bool operator<(const ObjectId& a, const ObjectId& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.version < b.version;
  }
};

/// A user-supplied object reference before version resolution.
///
/// `version == 0` means "unspecified": the activity manager resolves it to
/// the most recent version visible in the current data scope (§5.2).
struct ObjectRef {
  std::string name;
  int version = 0;  // 0 = resolve to latest in scope.
  bool is_absolute_path = false;
};

/// Parses the three §5.2 naming formats into an `ObjectRef`.
///
/// - "/a/b/Cell"    -> absolute path (implicit check-in)
/// - "ALU.logic@2"  -> explicit version 2
/// - "ALU.logic"    -> latest visible version
Result<ObjectRef> ParseObjectRef(const std::string& text);

}  // namespace papyrus::oct

namespace std {
template <>
struct hash<papyrus::oct::ObjectId> {
  size_t operator()(const papyrus::oct::ObjectId& id) const {
    return hash<string>()(id.name) * 1000003u ^
           hash<int>()(id.version);
  }
};
}  // namespace std

#endif  // PAPYRUS_OCT_OBJECT_ID_H_
