#include "oct/database.h"

#include "base/thread_annotations.h"

namespace papyrus::oct {

OctDatabase::OctDatabase(Clock* clock) : clock_(clock) {}

void OctDatabase::set_observability(const obs::Observability& sinks) {
  obs_ = sinks;
  if (obs_.metrics != nullptr) {
    c_versions_created_ =
        obs_.metrics->FindOrCreateCounter(obs::kOctVersionsCreated);
    c_versions_created_->Increment(total_versions_ -
                                   c_versions_created_->value());
    c_reclaimed_ = obs_.metrics->FindOrCreateCounter(obs::kOctReclaimed);
    g_live_bytes_ = obs_.metrics->FindOrCreateGauge(obs::kOctLiveBytes);
    g_live_bytes_->Set(TotalLiveBytes());
  } else {
    c_versions_created_ = c_reclaimed_ = nullptr;
    g_live_bytes_ = nullptr;
  }
  if (obs_.trace != nullptr) {
    obs_.trace->SetProcessName(obs::kSessionPid, "papyrus session");
    obs_.trace->SetThreadName(obs::kSessionPid, kOctTrackTid,
                              "oct database");
  }
}

Result<ObjectId> OctDatabase::CreateVersion(const std::string& name,
                                            DesignPayload payload,
                                            const std::string& creator_tool) {
  base::AssertEngineThread("OctDatabase::CreateVersion");
  if (name.empty()) {
    return Status::InvalidArgument("object name must not be empty");
  }
  std::vector<ObjectRecord>& versions = objects_[name];
  ObjectRecord rec;
  rec.id = ObjectId{name, static_cast<int>(versions.size()) + 1};
  rec.size_bytes = PayloadSizeBytes(payload);
  rec.payload = std::move(payload);
  rec.creator_tool = creator_tool;
  rec.created_micros = clock_->NowMicros();
  rec.last_access_micros = rec.created_micros;
  versions.push_back(std::move(rec));
  ++total_versions_;
  if (c_versions_created_ != nullptr) c_versions_created_->Increment();
  if (g_live_bytes_ != nullptr) {
    g_live_bytes_->Add(versions.back().size_bytes);
  }
  if (obs_.trace != nullptr) {
    obs_.trace->Instant(
        obs::kSessionPid, kOctTrackTid, "version_created", "oct",
        {obs::TraceArg::Str("object", versions.back().id.ToString()),
         obs::TraceArg::Str("tool", creator_tool),
         obs::TraceArg::Int("bytes", versions.back().size_bytes)});
  }
  return versions.back().id;
}

ObjectRecord* OctDatabase::Find(const ObjectId& id) {
  auto it = objects_.find(id.name);
  if (it == objects_.end()) return nullptr;
  if (id.version < 1 ||
      id.version > static_cast<int>(it->second.size())) {
    return nullptr;
  }
  return &it->second[id.version - 1];
}

const ObjectRecord* OctDatabase::Find(const ObjectId& id) const {
  return const_cast<OctDatabase*>(this)->Find(id);
}

Result<const ObjectRecord*> OctDatabase::Get(const ObjectId& id) {
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (!rec->visible) {
    return Status::NotFound("object is not visible: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::NotFound("object was reclaimed: " + id.ToString());
  }
  rec->last_access_micros = clock_->NowMicros();
  return static_cast<const ObjectRecord*>(rec);
}

Result<const ObjectRecord*> OctDatabase::Peek(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  return rec;
}

int64_t OctDatabase::PayloadBytes(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  return rec == nullptr ? 0 : rec->size_bytes;
}

Result<std::string> OctDatabase::ContentHash(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::ContentHash");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("object was reclaimed: " +
                                      id.ToString());
  }
  if (rec->content_hash.empty()) {
    rec->content_hash = PayloadContentHash(rec->payload);
  }
  return rec->content_hash;
}

Result<ObjectId> OctDatabase::LatestVisible(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + name);
  }
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->visible && !rit->reclaimed) return rit->id;
  }
  return Status::NotFound("no visible version of: " + name);
}

int OctDatabase::VersionCount(const std::string& name) const {
  auto it = objects_.find(name);
  return it == objects_.end() ? 0 : static_cast<int>(it->second.size());
}

Status OctDatabase::MarkInvisible(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::MarkInvisible");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  rec->visible = false;
  return Status::OK();
}

Status OctDatabase::MarkVisible(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::MarkVisible");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("cannot undelete reclaimed object: " +
                                      id.ToString());
  }
  rec->visible = true;
  return Status::OK();
}

Status OctDatabase::Reclaim(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Reclaim");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) return Status::OK();
  if (rec->pin_count > 0 && pinned_reclaim_handler_) {
    // Give the pin holder a chance to drop dependent state (cache entries)
    // and release its claim; the handler may invalidate many pins at once.
    pinned_reclaim_handler_(id);
    rec = Find(id);
  }
  if (rec->pin_count > 0) {
    return Status::FailedPrecondition("object is pinned: " + id.ToString());
  }
  if (c_reclaimed_ != nullptr) c_reclaimed_->Increment();
  if (g_live_bytes_ != nullptr) g_live_bytes_->Add(-rec->size_bytes);
  if (obs_.trace != nullptr) {
    obs_.trace->Instant(obs::kSessionPid, kOctTrackTid,
                        "version_reclaimed", "oct",
                        {obs::TraceArg::Str("object", id.ToString()),
                         obs::TraceArg::Int("bytes", rec->size_bytes)});
  }
  rec->payload = std::monostate{};
  rec->reclaimed = true;
  rec->visible = false;
  return Status::OK();
}

Status OctDatabase::Pin(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Pin");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("cannot pin reclaimed object: " +
                                      id.ToString());
  }
  ++rec->pin_count;
  return Status::OK();
}

void OctDatabase::Unpin(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Unpin");
  ObjectRecord* rec = Find(id);
  if (rec != nullptr && rec->pin_count > 0) --rec->pin_count;
}

bool OctDatabase::IsPinned(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  return rec != nullptr && rec->pin_count > 0;
}

bool OctDatabase::Exists(const ObjectId& id) const {
  return Find(id) != nullptr;
}

int64_t OctDatabase::TotalLiveBytes() const {
  int64_t sum = 0;
  for (const auto& [name, versions] : objects_) {
    for (const ObjectRecord& rec : versions) {
      if (!rec.reclaimed) sum += rec.size_bytes;
    }
  }
  return sum;
}

int64_t OctDatabase::LiveVersionCount() const {
  int64_t n = 0;
  for (const auto& [name, versions] : objects_) {
    for (const ObjectRecord& rec : versions) {
      if (!rec.reclaimed) ++n;
    }
  }
  return n;
}

void OctDatabase::ForEach(
    const std::function<void(const ObjectRecord&)>& fn) const {
  for (const auto& [name, versions] : objects_) {
    for (const ObjectRecord& rec : versions) fn(rec);
  }
}

Status OctDatabase::RestoreRecord(ObjectRecord record) {
  base::AssertEngineThread("OctDatabase::RestoreRecord");
  if (record.id.name.empty() || record.id.version < 1) {
    return Status::InvalidArgument("restored record has an invalid id");
  }
  std::vector<ObjectRecord>& versions = objects_[record.id.name];
  if (record.id.version != static_cast<int>(versions.size()) + 1) {
    return Status::FailedPrecondition(
        "records of " + record.id.name +
        " must be restored in version order (got version " +
        std::to_string(record.id.version) + ", expected " +
        std::to_string(versions.size() + 1) + ")");
  }
  const ObjectRecord& restored = versions.emplace_back(std::move(record));
  ++total_versions_;
  if (c_versions_created_ != nullptr) c_versions_created_->Increment();
  if (g_live_bytes_ != nullptr && !restored.reclaimed) {
    g_live_bytes_->Add(restored.size_bytes);
  }
  return Status::OK();
}

void Transaction::StageCreate(const std::string& name, DesignPayload payload,
                              const std::string& creator_tool) {
  staged_.push_back(Staged{name, std::move(payload), creator_tool});
}

Result<std::vector<ObjectId>> Transaction::Commit() {
  std::vector<ObjectId> created;
  created.reserve(staged_.size());
  for (Staged& s : staged_) {
    auto id = db_->CreateVersion(s.name, std::move(s.payload),
                                 s.creator_tool);
    if (!id.ok()) {
      // Roll back already-applied creations by reclaiming them: versions
      // are never reused, so tombstones keep numbering consistent.
      for (const ObjectId& done : created) {
        (void)db_->Reclaim(done);
      }
      staged_.clear();
      return id.status();
    }
    created.push_back(*id);
  }
  staged_.clear();
  return created;
}

}  // namespace papyrus::oct
