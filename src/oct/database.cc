#include "oct/database.h"

#include "base/strings.h"
#include "base/thread_annotations.h"

namespace papyrus::oct {

namespace {

uint64_t DirtyKey(base::Symbol sym, int version) {
  return (static_cast<uint64_t>(sym) << 32) |
         static_cast<uint32_t>(version);
}

}  // namespace

int OctDatabase::ShardOf(std::string_view name) {
  size_t cell_end = name.find_first_of(":.");
  std::string_view cell =
      cell_end == std::string_view::npos ? name : name.substr(0, cell_end);
  return static_cast<int>(Fnv1a(cell) &
                          static_cast<uint64_t>(kShardCount - 1));
}

OctDatabase::OctDatabase(Clock* clock) : clock_(clock) {}

void OctDatabase::set_observability(const obs::Observability& sinks) {
  obs_ = sinks;
  if (obs_.metrics != nullptr) {
    c_versions_created_ =
        obs_.metrics->FindOrCreateCounter(obs::kOctVersionsCreated);
    c_versions_created_->Increment(total_versions_ -
                                   c_versions_created_->value());
    c_reclaimed_ = obs_.metrics->FindOrCreateCounter(obs::kOctReclaimed);
    g_live_bytes_ = obs_.metrics->FindOrCreateGauge(obs::kOctLiveBytes);
    g_live_bytes_->Set(TotalLiveBytes());
  } else {
    c_versions_created_ = c_reclaimed_ = nullptr;
    g_live_bytes_ = nullptr;
  }
  if (obs_.trace != nullptr) {
    obs_.trace->SetProcessName(obs::kSessionPid, "papyrus session");
    obs_.trace->SetThreadName(obs::kSessionPid, kOctTrackTid,
                              "oct database");
  }
}

void OctDatabase::MarkDirty(int shard, base::Symbol sym, int version) {
  ++shards_[shard].seq;
  uint64_t key = DirtyKey(sym, version);
  if (wal_dirty_keys_.insert(key).second) {
    wal_dirty_.emplace_back(sym, version);
  }
}

Result<ObjectId> OctDatabase::CreateVersion(const std::string& name,
                                            DesignPayload payload,
                                            const std::string& creator_tool) {
  base::AssertEngineThread("OctDatabase::CreateVersion");
  if (name.empty()) {
    return Status::InvalidArgument("object name must not be empty");
  }
  base::Symbol sym = names_.Intern(name);
  int shard = ShardOf(name);
  std::vector<ObjectRecord>& versions = shards_[shard].objects[sym];
  ObjectRecord rec;
  rec.id = ObjectId{name, static_cast<int>(versions.size()) + 1};
  rec.size_bytes = PayloadSizeBytes(payload);
  rec.payload = std::move(payload);
  rec.creator_tool = creator_tool;
  rec.created_micros = clock_->NowMicros();
  rec.last_access_micros = rec.created_micros;
  versions.push_back(std::move(rec));
  ++total_versions_;
  MarkDirty(shard, sym, versions.back().id.version);
  if (c_versions_created_ != nullptr) c_versions_created_->Increment();
  if (g_live_bytes_ != nullptr) {
    g_live_bytes_->Add(versions.back().size_bytes);
  }
  if (obs_.trace != nullptr) {
    obs_.trace->Instant(
        obs::kSessionPid, kOctTrackTid, "version_created", "oct",
        {obs::TraceArg::Str("object", versions.back().id.ToString()),
         obs::TraceArg::Str("tool", creator_tool),
         obs::TraceArg::Int("bytes", versions.back().size_bytes)});
  }
  return versions.back().id;
}

ObjectRecord* OctDatabase::Find(const ObjectId& id) {
  base::Symbol sym = names_.Find(id.name);
  if (sym == base::kNoSymbol) return nullptr;
  Shard& shard = shards_[ShardOf(id.name)];
  auto it = shard.objects.find(sym);
  if (it == shard.objects.end()) return nullptr;
  if (id.version < 1 ||
      id.version > static_cast<int>(it->second.size())) {
    return nullptr;
  }
  return &it->second[id.version - 1];
}

const ObjectRecord* OctDatabase::Find(const ObjectId& id) const {
  return const_cast<OctDatabase*>(this)->Find(id);
}

Result<const ObjectRecord*> OctDatabase::Get(const ObjectId& id) {
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (!rec->visible) {
    return Status::NotFound("object is not visible: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::NotFound("object was reclaimed: " + id.ToString());
  }
  // The access-time bump is persisted state (it drives §5.4 aging), so a
  // read dirties the record for the journal.
  rec->last_access_micros = clock_->NowMicros();
  MarkDirty(ShardOf(id.name), names_.Find(id.name), id.version);
  return static_cast<const ObjectRecord*>(rec);
}

Result<const ObjectRecord*> OctDatabase::Peek(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  return rec;
}

int64_t OctDatabase::PayloadBytes(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  return rec == nullptr ? 0 : rec->size_bytes;
}

Result<std::string> OctDatabase::ContentHash(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::ContentHash");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("object was reclaimed: " +
                                      id.ToString());
  }
  if (rec->content_hash.empty()) {
    // Memoized runtime state: no dirty mark, the hash is derivable.
    rec->content_hash = PayloadContentHash(rec->payload);
  }
  return rec->content_hash;
}

Result<ObjectId> OctDatabase::LatestVisible(const std::string& name) const {
  base::Symbol sym = names_.Find(name);
  const Shard& shard = shards_[ShardOf(name)];
  auto it = sym == base::kNoSymbol ? shard.objects.end()
                                   : shard.objects.find(sym);
  if (it == shard.objects.end()) {
    return Status::NotFound("no such object: " + name);
  }
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->visible && !rit->reclaimed) return rit->id;
  }
  return Status::NotFound("no visible version of: " + name);
}

int OctDatabase::VersionCount(const std::string& name) const {
  base::Symbol sym = names_.Find(name);
  if (sym == base::kNoSymbol) return 0;
  const Shard& shard = shards_[ShardOf(name)];
  auto it = shard.objects.find(sym);
  return it == shard.objects.end() ? 0
                                   : static_cast<int>(it->second.size());
}

Status OctDatabase::MarkInvisible(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::MarkInvisible");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  rec->visible = false;
  MarkDirty(ShardOf(id.name), names_.Find(id.name), id.version);
  return Status::OK();
}

Status OctDatabase::MarkVisible(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::MarkVisible");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("cannot undelete reclaimed object: " +
                                      id.ToString());
  }
  rec->visible = true;
  MarkDirty(ShardOf(id.name), names_.Find(id.name), id.version);
  return Status::OK();
}

Status OctDatabase::Reclaim(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Reclaim");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) return Status::OK();
  if (rec->pin_count > 0 && pinned_reclaim_handler_) {
    // Give the pin holder a chance to drop dependent state (cache entries)
    // and release its claim; the handler may invalidate many pins at once.
    pinned_reclaim_handler_(id);
    rec = Find(id);
  }
  if (rec->pin_count > 0) {
    return Status::FailedPrecondition("object is pinned: " + id.ToString());
  }
  if (c_reclaimed_ != nullptr) c_reclaimed_->Increment();
  if (g_live_bytes_ != nullptr) g_live_bytes_->Add(-rec->size_bytes);
  if (obs_.trace != nullptr) {
    obs_.trace->Instant(obs::kSessionPid, kOctTrackTid,
                        "version_reclaimed", "oct",
                        {obs::TraceArg::Str("object", id.ToString()),
                         obs::TraceArg::Int("bytes", rec->size_bytes)});
  }
  rec->payload = std::monostate{};
  rec->reclaimed = true;
  rec->visible = false;
  MarkDirty(ShardOf(id.name), names_.Find(id.name), id.version);
  return Status::OK();
}

Status OctDatabase::Pin(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Pin");
  ObjectRecord* rec = Find(id);
  if (rec == nullptr) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  if (rec->reclaimed) {
    return Status::FailedPrecondition("cannot pin reclaimed object: " +
                                      id.ToString());
  }
  ++rec->pin_count;
  return Status::OK();
}

void OctDatabase::Unpin(const ObjectId& id) {
  base::AssertEngineThread("OctDatabase::Unpin");
  ObjectRecord* rec = Find(id);
  if (rec != nullptr && rec->pin_count > 0) --rec->pin_count;
}

bool OctDatabase::IsPinned(const ObjectId& id) const {
  const ObjectRecord* rec = Find(id);
  return rec != nullptr && rec->pin_count > 0;
}

bool OctDatabase::Exists(const ObjectId& id) const {
  return Find(id) != nullptr;
}

int64_t OctDatabase::TotalLiveBytes() const {
  int64_t sum = 0;
  ForEach([&](const ObjectRecord& rec) {
    if (!rec.reclaimed) sum += rec.size_bytes;
  });
  return sum;
}

int64_t OctDatabase::LiveVersionCount() const {
  int64_t n = 0;
  ForEach([&](const ObjectRecord& rec) {
    if (!rec.reclaimed) ++n;
  });
  return n;
}

void OctDatabase::ForEach(
    const std::function<void(const ObjectRecord&)>& fn) const {
  for (int shard = 0; shard < kShardCount; ++shard) {
    ForEachShard(shard, fn);
  }
}

void OctDatabase::ForEachShard(
    int shard, const std::function<void(const ObjectRecord&)>& fn) const {
  for (const auto& [sym, versions] : shards_[shard].objects) {
    for (const ObjectRecord& rec : versions) fn(rec);
  }
}

Status OctDatabase::InsertRecord(ObjectRecord record, bool mark_wal_dirty) {
  if (record.id.name.empty() || record.id.version < 1) {
    return Status::InvalidArgument("restored record has an invalid id");
  }
  base::Symbol sym = names_.Intern(record.id.name);
  int shard = ShardOf(record.id.name);
  std::vector<ObjectRecord>& versions = shards_[shard].objects[sym];
  if (record.id.version <= static_cast<int>(versions.size())) {
    // Upsert of an existing slot: exact journaled state wins, runtime-only
    // bookkeeping (pins, content-hash memo) survives.
    ObjectRecord& slot = versions[record.id.version - 1];
    record.pin_count = slot.pin_count;
    if (record.content_hash.empty()) {
      record.content_hash = std::move(slot.content_hash);
    }
    if (g_live_bytes_ != nullptr) {
      int64_t before = slot.reclaimed ? 0 : slot.size_bytes;
      int64_t after = record.reclaimed ? 0 : record.size_bytes;
      g_live_bytes_->Add(after - before);
    }
    if (c_reclaimed_ != nullptr && record.reclaimed && !slot.reclaimed) {
      c_reclaimed_->Increment();
    }
    slot = std::move(record);
    ++shards_[shard].seq;
    if (mark_wal_dirty) MarkDirty(shard, sym, slot.id.version);
    return Status::OK();
  }
  if (record.id.version != static_cast<int>(versions.size()) + 1) {
    return Status::FailedPrecondition(
        "records of " + record.id.name +
        " must be restored in version order (got version " +
        std::to_string(record.id.version) + ", expected " +
        std::to_string(versions.size() + 1) + ")");
  }
  const ObjectRecord& restored = versions.emplace_back(std::move(record));
  ++total_versions_;
  ++shards_[shard].seq;
  if (mark_wal_dirty) MarkDirty(shard, sym, restored.id.version);
  if (c_versions_created_ != nullptr) c_versions_created_->Increment();
  if (g_live_bytes_ != nullptr && !restored.reclaimed) {
    g_live_bytes_->Add(restored.size_bytes);
  }
  return Status::OK();
}

Status OctDatabase::RestoreRecord(ObjectRecord record) {
  base::AssertEngineThread("OctDatabase::RestoreRecord");
  // Strict version order, exactly as the whole-file restore always
  // demanded: an existing slot is a format error here.
  base::Symbol sym = names_.Find(record.id.name);
  if (sym != base::kNoSymbol) {
    const Shard& shard = shards_[ShardOf(record.id.name)];
    auto it = shard.objects.find(sym);
    if (it != shard.objects.end() &&
        record.id.version <= static_cast<int>(it->second.size())) {
      return Status::FailedPrecondition(
          "records of " + record.id.name +
          " must be restored in version order (got version " +
          std::to_string(record.id.version) + ", expected " +
          std::to_string(it->second.size() + 1) + ")");
    }
  }
  return InsertRecord(std::move(record), /*mark_wal_dirty=*/false);
}

Status OctDatabase::UpsertRecord(ObjectRecord record) {
  base::AssertEngineThread("OctDatabase::UpsertRecord");
  return InsertRecord(std::move(record), /*mark_wal_dirty=*/false);
}

bool OctDatabase::HasWalDirt() const { return !wal_dirty_.empty(); }

void OctDatabase::DrainWalDirt(
    const std::function<void(const ObjectRecord&)>& fn) {
  base::AssertEngineThread("OctDatabase::DrainWalDirt");
  for (const auto& [sym, version] : wal_dirty_) {
    const Shard& shard =
        shards_[ShardOf(names_.StringOf(sym))];
    auto it = shard.objects.find(sym);
    if (it == shard.objects.end() ||
        version > static_cast<int>(it->second.size())) {
      continue;  // unreachable today: versions are never deleted
    }
    fn(it->second[version - 1]);
  }
  wal_dirty_.clear();
  wal_dirty_keys_.clear();
}

void OctDatabase::DiscardWalDirt() {
  base::AssertEngineThread("OctDatabase::DiscardWalDirt");
  wal_dirty_.clear();
  wal_dirty_keys_.clear();
}

void Transaction::StageCreate(const std::string& name, DesignPayload payload,
                              const std::string& creator_tool) {
  staged_.push_back(Staged{name, std::move(payload), creator_tool});
}

Result<std::vector<ObjectId>> Transaction::Commit() {
  std::vector<ObjectId> created;
  created.reserve(staged_.size());
  for (Staged& s : staged_) {
    auto id = db_->CreateVersion(s.name, std::move(s.payload),
                                 s.creator_tool);
    if (!id.ok()) {
      // Roll back already-applied creations by reclaiming them: versions
      // are never reused, so tombstones keep numbering consistent.
      for (const ObjectId& done : created) {
        (void)db_->Reclaim(done);
      }
      staged_.clear();
      return id.status();
    }
    created.push_back(*id);
  }
  staged_.clear();
  return created;
}

}  // namespace papyrus::oct
