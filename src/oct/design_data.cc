#include "oct/design_data.h"

#include <sstream>

namespace papyrus::oct {

const char* DesignDomainToString(DesignDomain d) {
  switch (d) {
    case DesignDomain::kBehavioral:
      return "behavioral";
    case DesignDomain::kLogic:
      return "logic";
    case DesignDomain::kPhysical:
      return "physical";
    case DesignDomain::kOther:
      return "other";
  }
  return "other";
}

const char* DesignFormatToString(DesignFormat f) {
  switch (f) {
    case DesignFormat::kNone:
      return "none";
    case DesignFormat::kBds:
      return "bds";
    case DesignFormat::kBlif:
      return "blif";
    case DesignFormat::kEquation:
      return "equation";
    case DesignFormat::kPla:
      return "PLA";
    case DesignFormat::kSymbolic:
      return "symbolic";
    case DesignFormat::kGeometric:
      return "geometric";
    case DesignFormat::kText:
      return "text";
  }
  return "none";
}

namespace {

struct SizeVisitor {
  int64_t operator()(const std::monostate&) const { return 0; }
  int64_t operator()(const BehavioralSpec& b) const {
    return 256 + 64ll * b.complexity;
  }
  int64_t operator()(const LogicNetwork& n) const {
    return 512 + 16ll * n.literals + 24ll * n.minterms;
  }
  int64_t operator()(const Layout& l) const {
    return 4096 + 128ll * l.num_cells +
           static_cast<int64_t>(l.wire_length * 2.0);
  }
  int64_t operator()(const TextData& t) const {
    return static_cast<int64_t>(t.text.size());
  }
};

struct NameVisitor {
  const char* operator()(const std::monostate&) const { return "empty"; }
  const char* operator()(const BehavioralSpec&) const { return "behavioral"; }
  const char* operator()(const LogicNetwork&) const { return "logic"; }
  const char* operator()(const Layout&) const { return "layout"; }
  const char* operator()(const TextData&) const { return "text"; }
};

}  // namespace

int64_t PayloadSizeBytes(const DesignPayload& p) {
  return std::visit(SizeVisitor{}, p);
}

const char* PayloadTypeName(const DesignPayload& p) {
  return std::visit(NameVisitor{}, p);
}

DesignDomain PayloadDomain(const DesignPayload& p) {
  if (std::holds_alternative<BehavioralSpec>(p)) {
    return DesignDomain::kBehavioral;
  }
  if (std::holds_alternative<LogicNetwork>(p)) return DesignDomain::kLogic;
  if (std::holds_alternative<Layout>(p)) return DesignDomain::kPhysical;
  return DesignDomain::kOther;
}

std::string PayloadToString(const DesignPayload& p) {
  std::ostringstream os;
  if (const auto* b = std::get_if<BehavioralSpec>(&p)) {
    os << "behavioral{in=" << b->num_inputs << " out=" << b->num_outputs
       << " complexity=" << b->complexity << "}";
  } else if (const auto* n = std::get_if<LogicNetwork>(&p)) {
    os << "logic{" << DesignFormatToString(n->format)
       << " in=" << n->num_inputs << " out=" << n->num_outputs
       << " minterms=" << n->minterms << " literals=" << n->literals
       << " levels=" << n->levels << "}";
  } else if (const auto* l = std::get_if<Layout>(&p)) {
    os << "layout{" << l->style << " cells=" << l->num_cells
       << " area=" << l->area << " delay=" << l->delay_ns
       << (l->has_pads ? " pads" : "") << (l->routed ? " routed" : "")
       << (l->compacted ? " compacted" : "") << "}";
  } else if (const auto* t = std::get_if<TextData>(&p)) {
    os << "text{" << t->text.size() << " bytes}";
  } else {
    os << "empty";
  }
  return os.str();
}

}  // namespace papyrus::oct
