#include "oct/design_data.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/hash.h"
#include "base/macros.h"
#include "base/strings.h"

namespace papyrus::oct {

const char* DesignDomainToString(DesignDomain d) {
  switch (d) {
    case DesignDomain::kBehavioral:
      return "behavioral";
    case DesignDomain::kLogic:
      return "logic";
    case DesignDomain::kPhysical:
      return "physical";
    case DesignDomain::kOther:
      return "other";
  }
  return "other";
}

const char* DesignFormatToString(DesignFormat f) {
  switch (f) {
    case DesignFormat::kNone:
      return "none";
    case DesignFormat::kBds:
      return "bds";
    case DesignFormat::kBlif:
      return "blif";
    case DesignFormat::kEquation:
      return "equation";
    case DesignFormat::kPla:
      return "PLA";
    case DesignFormat::kSymbolic:
      return "symbolic";
    case DesignFormat::kGeometric:
      return "geometric";
    case DesignFormat::kText:
      return "text";
  }
  return "none";
}

namespace {

struct SizeVisitor {
  int64_t operator()(const std::monostate&) const { return 0; }
  int64_t operator()(const BehavioralSpec& b) const {
    return 256 + 64ll * b.complexity;
  }
  int64_t operator()(const LogicNetwork& n) const {
    return 512 + 16ll * n.literals + 24ll * n.minterms;
  }
  int64_t operator()(const Layout& l) const {
    return 4096 + 128ll * l.num_cells +
           static_cast<int64_t>(l.wire_length * 2.0);
  }
  int64_t operator()(const TextData& t) const {
    return static_cast<int64_t>(t.text.size());
  }
};

struct NameVisitor {
  const char* operator()(const std::monostate&) const { return "empty"; }
  const char* operator()(const BehavioralSpec&) const { return "behavioral"; }
  const char* operator()(const LogicNetwork&) const { return "logic"; }
  const char* operator()(const Layout&) const { return "layout"; }
  const char* operator()(const TextData&) const { return "text"; }
};

}  // namespace

int64_t PayloadSizeBytes(const DesignPayload& p) {
  return std::visit(SizeVisitor{}, p);
}

const char* PayloadTypeName(const DesignPayload& p) {
  return std::visit(NameVisitor{}, p);
}

DesignDomain PayloadDomain(const DesignPayload& p) {
  if (std::holds_alternative<BehavioralSpec>(p)) {
    return DesignDomain::kBehavioral;
  }
  if (std::holds_alternative<LogicNetwork>(p)) return DesignDomain::kLogic;
  if (std::holds_alternative<Layout>(p)) return DesignDomain::kPhysical;
  return DesignDomain::kOther;
}

namespace {

// The codec helpers mirror activity/persistence.cc conventions exactly:
// snapshot payload fields and CAS blob bytes must stay byte-identical.
std::string EncField(const std::string& v) {
  return "~" + PercentEncode(v);
}

std::string DecField(const std::string& v) {
  std::string_view sv = v;
  if (!sv.empty() && sv.front() == '~') sv.remove_prefix(1);
  return PercentDecode(sv);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

int64_t FieldI64(const std::string& s) {
  int64_t v = 0;
  (void)ParseInt64(s, &v);
  return v;
}

/// Payload seeds are full-range uint64 values (tool-derived hashes
/// routinely exceed INT64_MAX), so they cannot go through FieldI64.
/// A seed the field cannot hold is a load error, never a silent 0:
/// restoring a different seed would make every derived artifact
/// diverge from the history that produced it.
Result<uint64_t> FieldU64(const std::string& s) {
  if (s.empty() || s[0] == '-') {
    return Status::InvalidArgument("malformed payload seed: '" + s + "'");
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("payload seed overflows uint64: " + s);
  }
  if (errno != 0 || end != s.c_str() + s.size()) {
    return Status::InvalidArgument("malformed payload seed: '" + s + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

std::string EncodePayloadText(const DesignPayload& p) {
  std::ostringstream out;
  if (const auto* b = std::get_if<BehavioralSpec>(&p)) {
    out << "behavioral " << b->num_inputs << ' ' << b->num_outputs << ' '
        << b->complexity << ' ' << b->seed;
  } else if (const auto* n = std::get_if<LogicNetwork>(&p)) {
    out << "logic " << n->num_inputs << ' ' << n->num_outputs << ' '
        << n->minterms << ' ' << n->literals << ' ' << n->levels << ' '
        << static_cast<int>(n->format) << ' ' << n->seed;
  } else if (const auto* l = std::get_if<Layout>(&p)) {
    out << "layout " << l->num_cells << ' ' << FormatDouble(l->area) << ' '
        << FormatDouble(l->delay_ns) << ' ' << FormatDouble(l->power_mw)
        << ' ' << FormatDouble(l->wire_length) << ' ' << l->has_pads << ' '
        << l->routed << ' ' << l->compacted << ' ' << l->has_abstraction
        << ' ' << EncField(l->style) << ' ' << static_cast<int>(l->format)
        << ' ' << l->seed;
  } else if (const auto* t = std::get_if<TextData>(&p)) {
    out << "text " << EncField(t->text);
  } else {
    out << "none";
  }
  return out.str();
}

Result<DesignPayload> ParsePayloadFields(const std::vector<std::string>& f,
                                         size_t at) {
  auto need = [&](size_t n) { return f.size() >= at + 1 + n; };
  if (at >= f.size()) return Status::InvalidArgument("missing payload");
  const std::string& tag = f[at];
  if (tag == "none") return DesignPayload{};
  if (tag == "behavioral") {
    if (!need(4)) return Status::InvalidArgument("short behavioral");
    BehavioralSpec b;
    b.num_inputs = static_cast<int>(FieldI64(f[at + 1]));
    b.num_outputs = static_cast<int>(FieldI64(f[at + 2]));
    b.complexity = static_cast<int>(FieldI64(f[at + 3]));
    PAPYRUS_ASSIGN_OR_RETURN(b.seed, FieldU64(f[at + 4]));
    return DesignPayload{b};
  }
  if (tag == "logic") {
    if (!need(7)) return Status::InvalidArgument("short logic");
    LogicNetwork n;
    n.num_inputs = static_cast<int>(FieldI64(f[at + 1]));
    n.num_outputs = static_cast<int>(FieldI64(f[at + 2]));
    n.minterms = static_cast<int>(FieldI64(f[at + 3]));
    n.literals = static_cast<int>(FieldI64(f[at + 4]));
    n.levels = static_cast<int>(FieldI64(f[at + 5]));
    n.format = static_cast<DesignFormat>(FieldI64(f[at + 6]));
    PAPYRUS_ASSIGN_OR_RETURN(n.seed, FieldU64(f[at + 7]));
    return DesignPayload{n};
  }
  if (tag == "layout") {
    if (!need(12)) return Status::InvalidArgument("short layout");
    Layout l;
    l.num_cells = static_cast<int>(FieldI64(f[at + 1]));
    l.area = std::strtod(f[at + 2].c_str(), nullptr);
    l.delay_ns = std::strtod(f[at + 3].c_str(), nullptr);
    l.power_mw = std::strtod(f[at + 4].c_str(), nullptr);
    l.wire_length = std::strtod(f[at + 5].c_str(), nullptr);
    l.has_pads = f[at + 6] == "1";
    l.routed = f[at + 7] == "1";
    l.compacted = f[at + 8] == "1";
    l.has_abstraction = f[at + 9] == "1";
    l.style = DecField(f[at + 10]);
    l.format = static_cast<DesignFormat>(FieldI64(f[at + 11]));
    PAPYRUS_ASSIGN_OR_RETURN(l.seed, FieldU64(f[at + 12]));
    return DesignPayload{l};
  }
  if (tag == "text") {
    if (!need(1)) return Status::InvalidArgument("short text");
    return DesignPayload{TextData{DecField(f[at + 1])}};
  }
  return Status::InvalidArgument("unknown payload tag: " + tag);
}

Result<DesignPayload> DecodePayloadText(std::string_view text) {
  return ParsePayloadFields(SplitWhitespace(text), 0);
}

std::string PayloadContentHash(const DesignPayload& p) {
  return Sha256Hex(EncodePayloadText(p));
}

std::string PayloadToString(const DesignPayload& p) {
  std::ostringstream os;
  if (const auto* b = std::get_if<BehavioralSpec>(&p)) {
    os << "behavioral{in=" << b->num_inputs << " out=" << b->num_outputs
       << " complexity=" << b->complexity << "}";
  } else if (const auto* n = std::get_if<LogicNetwork>(&p)) {
    os << "logic{" << DesignFormatToString(n->format)
       << " in=" << n->num_inputs << " out=" << n->num_outputs
       << " minterms=" << n->minterms << " literals=" << n->literals
       << " levels=" << n->levels << "}";
  } else if (const auto* l = std::get_if<Layout>(&p)) {
    os << "layout{" << l->style << " cells=" << l->num_cells
       << " area=" << l->area << " delay=" << l->delay_ns
       << (l->has_pads ? " pads" : "") << (l->routed ? " routed" : "")
       << (l->compacted ? " compacted" : "") << "}";
  } else if (const auto* t = std::get_if<TextData>(&p)) {
    os << "text{" << t->text.size() << " bytes}";
  } else {
    os << "empty";
  }
  return os.str();
}

}  // namespace papyrus::oct
