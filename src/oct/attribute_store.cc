#include "oct/attribute_store.h"

namespace papyrus::oct {

void AttributeStore::Set(const ObjectId& id, const std::string& attr,
                         const std::string& value) {
  AttributeEntry& e = attrs_[id][attr];
  e.name = attr;
  e.value = value;
  e.mode = AttributeMode::kStored;
  e.computed = true;
}

void AttributeStore::Attach(const ObjectId& id, const std::string& attr,
                            const std::string& compute_tool,
                            AttributeMode mode) {
  AttributeEntry& e = attrs_[id][attr];
  e.name = attr;
  e.compute_tool = compute_tool;
  e.mode = mode;
  // Attach never clobbers an already-computed value (e.g. one inherited
  // through a tool's inherit list before the type spec was attached).
}

Status AttributeStore::SetComputed(const ObjectId& id,
                                   const std::string& attr,
                                   const std::string& value) {
  auto obj_it = attrs_.find(id);
  if (obj_it == attrs_.end()) {
    return Status::NotFound("attribute not attached: " + id.ToString() +
                            "." + attr);
  }
  auto it = obj_it->second.find(attr);
  if (it == obj_it->second.end()) {
    return Status::NotFound("attribute not attached: " + id.ToString() +
                            "." + attr);
  }
  it->second.value = value;
  it->second.computed = true;
  return Status::OK();
}

Status AttributeStore::Invalidate(const ObjectId& id,
                                  const std::string& attr) {
  auto obj_it = attrs_.find(id);
  if (obj_it == attrs_.end()) {
    return Status::NotFound("attribute not attached: " + id.ToString() +
                            "." + attr);
  }
  auto it = obj_it->second.find(attr);
  if (it == obj_it->second.end()) {
    return Status::NotFound("attribute not attached: " + id.ToString() +
                            "." + attr);
  }
  it->second.computed = false;
  return Status::OK();
}

Result<AttributeEntry> AttributeStore::Get(const ObjectId& id,
                                           const std::string& attr) const {
  auto obj_it = attrs_.find(id);
  if (obj_it == attrs_.end()) {
    return Status::NotFound("no attributes for " + id.ToString());
  }
  auto it = obj_it->second.find(attr);
  if (it == obj_it->second.end()) {
    return Status::NotFound("no attribute " + attr + " on " +
                            id.ToString());
  }
  return it->second;
}

Result<std::string> AttributeStore::GetValue(const ObjectId& id,
                                             const std::string& attr) const {
  auto entry = Get(id, attr);
  if (!entry.ok()) return entry.status();
  if (!entry->computed) {
    return Status::FailedPrecondition("attribute " + attr + " on " +
                                      id.ToString() + " not yet computed");
  }
  return entry->value;
}

bool AttributeStore::Has(const ObjectId& id, const std::string& attr) const {
  auto obj_it = attrs_.find(id);
  return obj_it != attrs_.end() &&
         obj_it->second.find(attr) != obj_it->second.end();
}

std::vector<AttributeEntry> AttributeStore::List(const ObjectId& id) const {
  std::vector<AttributeEntry> out;
  auto obj_it = attrs_.find(id);
  if (obj_it == attrs_.end()) return out;
  for (const auto& [name, entry] : obj_it->second) out.push_back(entry);
  return out;
}

size_t AttributeStore::size() const {
  size_t n = 0;
  for (const auto& [id, m] : attrs_) n += m.size();
  return n;
}

}  // namespace papyrus::oct
