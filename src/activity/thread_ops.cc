#include "activity/thread_ops.h"

#include <algorithm>
#include <deque>

namespace papyrus::activity {

namespace {

bool IsFrontier(const DesignThread& thread, NodeId point) {
  if (point == kInitialPoint) return thread.nodes().empty();
  auto node = thread.GetNode(point);
  return node.ok() && (*node)->children.empty();
}

/// Collects `point` and all of its ancestors.
std::set<NodeId> AncestorClosure(const DesignThread& thread, NodeId point) {
  std::set<NodeId> keep;
  std::deque<NodeId> queue = {point};
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    if (cur == kInitialPoint || !keep.insert(cur).second) continue;
    auto node = thread.GetNode(cur);
    if (!node.ok()) continue;
    for (NodeId parent : (*node)->parents) queue.push_back(parent);
  }
  return keep;
}

/// Copies a subset of src's nodes into dst; empty subset = all nodes.
std::map<NodeId, NodeId> CopyNodes(const DesignThread& src,
                                   const std::set<NodeId>* subset,
                                   DesignThread* dst) {
  std::map<NodeId, NodeId> mapping;
  // Copy in id order: a node's parents always have smaller ids than the
  // node itself (ids are append-ordered and splices only add parents with
  // larger ids to *children*, never cycles), so two passes keep it simple:
  // first create nodes, then wire edges.
  for (const auto& [id, node] : src.nodes()) {
    if (subset != nullptr && subset->count(id) == 0) continue;
    HistoryNode copy;
    copy.record = node.record;
    copy.is_junction = node.is_junction;
    copy.annotation = node.annotation;
    copy.appended_micros = node.appended_micros;
    mapping[id] = dst->AdoptNode(std::move(copy));
  }
  for (const auto& [id, node] : src.nodes()) {
    auto it = mapping.find(id);
    if (it == mapping.end()) continue;
    for (NodeId parent : node.parents) {
      auto pit = mapping.find(parent);
      if (pit != mapping.end()) {
        dst->LinkNodes(pit->second, it->second);
      }
    }
    if (node.parents.empty()) dst->MarkRoot(it->second);
    // A kept node whose parents were all dropped becomes a root.
    bool any_parent_kept = false;
    for (NodeId parent : node.parents) {
      if (mapping.count(parent) > 0) any_parent_kept = true;
    }
    if (!node.parents.empty() && !any_parent_kept) {
      dst->MarkRoot(it->second);
    }
  }
  return mapping;
}

}  // namespace

std::map<NodeId, NodeId> ThreadCombinator::CopyStream(
    const DesignThread& src, DesignThread* dst) {
  auto mapping = CopyNodes(src, nullptr, dst);
  for (const oct::ObjectId& id : src.checkins()) dst->CheckIn(id);
  return mapping;
}

Status ThreadCombinator::Fork(const DesignThread& src,
                              std::optional<NodeId> point,
                              DesignThread* dst) {
  if (!point.has_value()) {
    auto mapping = CopyStream(src, dst);
    NodeId cursor = src.current_cursor();
    if (cursor != kInitialPoint) {
      (void)dst->MoveCursor(mapping.at(cursor));
    }
    return Status::OK();
  }
  if (!src.HasNode(*point)) {
    return Status::NotFound("fork point does not exist");
  }
  if (*point == kInitialPoint) return Status::OK();  // empty inheritance
  std::set<NodeId> keep = AncestorClosure(src, *point);
  auto mapping = CopyNodes(src, &keep, dst);
  for (const oct::ObjectId& id : src.checkins()) dst->CheckIn(id);
  return dst->MoveCursor(mapping.at(*point));
}

Status ThreadCombinator::Join(const DesignThread& a, NodeId point_a,
                              const DesignThread& b, NodeId point_b,
                              DesignThread* dst) {
  if (!IsFrontier(a, point_a) || !IsFrontier(b, point_b)) {
    return Status::FailedPrecondition(
        "only frontier cursors can be used as connector design points");
  }
  auto map_a = CopyStream(a, dst);
  auto map_b = CopyStream(b, dst);

  HistoryNode junction;
  junction.is_junction = true;
  junction.record.task_name = "<join>";
  NodeId jid = dst->AdoptNode(std::move(junction));
  bool is_root = true;
  if (point_a != kInitialPoint) {
    dst->LinkNodes(map_a.at(point_a), jid);
    is_root = false;
  }
  if (point_b != kInitialPoint) {
    dst->LinkNodes(map_b.at(point_b), jid);
    is_root = false;
  }
  if (is_root) dst->MarkRoot(jid);
  return dst->MoveCursor(jid);
}

Status ThreadCombinator::Cascade(const DesignThread& leading,
                                 NodeId connector,
                                 const DesignThread& trailing,
                                 DesignThread* dst) {
  if (!IsFrontier(leading, connector)) {
    return Status::FailedPrecondition(
        "the leading connector must be a frontier cursor");
  }
  auto map_lead = CopyStream(leading, dst);
  auto map_trail = CopyNodes(trailing, nullptr, dst);
  for (const oct::ObjectId& id : trailing.checkins()) dst->CheckIn(id);
  if (connector != kInitialPoint) {
    // Re-root the trailing stream under the connector.
    for (const auto& [old_id, node] : trailing.nodes()) {
      if (node.parents.empty()) {
        NodeId new_id = map_trail.at(old_id);
        dst->UnmarkRoot(new_id);
        dst->LinkNodes(map_lead.at(connector), new_id);
      }
    }
  }
  // Leave the cursor at the deepest frontier of the combined stream.
  auto frontier = dst->FrontierCursors();
  if (!frontier.empty()) {
    (void)dst->MoveCursor(frontier.back());
  }
  return Status::OK();
}

}  // namespace papyrus::activity
