#include "activity/persistence.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"

namespace papyrus::activity {

namespace {

/// Encoded-string fields carry a '~' prefix so empty strings survive
/// whitespace-based field splitting.
std::string EncField(const std::string& v) {
  return "~" + PercentEncode(v);
}

std::string DecField(const std::string& v) {
  std::string_view sv = v;
  if (!sv.empty() && sv.front() == '~') sv.remove_prefix(1);
  return PercentDecode(sv);
}

int64_t ParseI64(const std::string& s) {
  int64_t v = 0;
  (void)ParseInt64(s, &v);
  return v;
}

std::string FormatHex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHex(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

// The payload codec itself lives in oct/design_data (EncodePayloadText /
// ParsePayloadFields) so the content-addressed store and the snapshot
// format share one byte-exact encoding.
void AppendPayload(const oct::DesignPayload& p, std::ostringstream* out) {
  *out << oct::EncodePayloadText(p);
}

Result<oct::DesignPayload> ParsePayload(
    const std::vector<std::string>& f, size_t at) {
  return oct::ParsePayloadFields(f, at);
}

std::vector<std::string> SplitLines(const std::string& text) {
  return Split(text, '\n');
}

void AppendObjectList(const char* tag, int owner,
                      const std::vector<oct::ObjectId>& ids,
                      std::ostringstream* out) {
  for (const oct::ObjectId& id : ids) {
    *out << tag << ' ' << owner << ' ' << EncField(id.name) << ' '
         << id.version << '\n';
  }
}

// --- format version 2: per-line checksums + stream trailer ---------------

/// Wraps a stream of body lines into a v2 snapshot: `header`, then each
/// body line with its ` !<hex>` FNV-1a checksum, then the
/// `end <count> <hex>` trailer covering the concatenated bodies.
std::string AssembleV2(const std::string& header,
                       const std::string& body_text) {
  std::ostringstream out;
  out << header << '\n';
  std::string stream_text;
  int64_t count = 0;
  for (const std::string& body : SplitLines(body_text)) {
    if (body.empty()) continue;
    out << body << " !" << FormatHex(Fnv1a(body)) << '\n';
    stream_text += body;
    stream_text += '\n';
    ++count;
  }
  out << "end " << count << ' ' << FormatHex(Fnv1a(stream_text)) << '\n';
  return out.str();
}

/// Splits a v2 record line into its body and checksum and verifies them.
Result<std::string> CheckLine(const std::string& line) {
  size_t sp = line.rfind(' ');
  if (sp == std::string::npos || sp + 2 >= line.size() ||
      line[sp + 1] != '!') {
    return Status::InvalidArgument("record line missing checksum");
  }
  uint64_t want = 0;
  if (!ParseHex(line.substr(sp + 2), &want)) {
    return Status::InvalidArgument("bad checksum field");
  }
  std::string body = line.substr(0, sp);
  if (Fnv1a(body) != want) {
    return Status::InvalidArgument("checksum mismatch");
  }
  return body;
}

/// Every '~'-prefixed (percent-encoded) field must decode strictly; a
/// malformed escape in a line that passed its checksum is still damage.
bool StrictFieldsOk(const std::vector<std::string>& f) {
  for (const std::string& field : f) {
    if (field.empty() || field[0] != '~') continue;
    if (!PercentDecodeStrict(std::string_view(field).substr(1)).ok()) {
      return false;
    }
  }
  return true;
}

struct V2Scan {
  /// Verified record bodies, already field-split.
  std::vector<std::vector<std::string>> records;
  bool clean = false;   // trailer present and it verified
  int64_t dropped = 0;  // record lines lost to damage
};

/// Walks a v2 snapshot and keeps the longest valid prefix: stops at the
/// first line whose checksum (or strict field decoding, or the final
/// trailer) fails, counting everything after as dropped.
V2Scan ScanV2(const std::vector<std::string>& lines) {
  V2Scan scan;
  std::string stream_text;
  auto drop_rest = [&](size_t from) {
    for (size_t k = from; k < lines.size(); ++k) {
      if (!lines[k].empty() && !StartsWith(lines[k], "end ")) {
        ++scan.dropped;
      }
    }
  };
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (StartsWith(line, "end ")) {
      std::vector<std::string> f = SplitWhitespace(line);
      uint64_t want = 0;
      scan.clean = f.size() == 3 && ParseHex(f[2], &want) &&
                   ParseI64(f[1]) ==
                       static_cast<int64_t>(scan.records.size()) &&
                   want == Fnv1a(stream_text);
      drop_rest(i + 1);
      return scan;
    }
    auto body = CheckLine(line);
    std::vector<std::string> f;
    if (body.ok()) f = SplitWhitespace(*body);
    if (!body.ok() || f.empty() || !StrictFieldsOk(f)) {
      drop_rest(i);
      return scan;
    }
    stream_text += *body;
    stream_text += '\n';
    scan.records.push_back(std::move(f));
  }
  return scan;  // ran off the end without a trailer: truncated
}

Result<int64_t> SnapshotVersion(const std::vector<std::string>& lines,
                                const std::string& kind,
                                int64_t max_version = 2) {
  if (lines.empty()) {
    return Status::InvalidArgument("not a " + kind + " snapshot");
  }
  std::vector<std::string> head = SplitWhitespace(lines[0]);
  if (head.size() != 2 || head[0] != kind) {
    return Status::InvalidArgument("not a " + kind + " snapshot");
  }
  int64_t version = ParseI64(head[1]);
  if (version < 1 || version > max_version) {
    return Status::InvalidArgument("unsupported " + kind + " version " +
                                   head[1]);
  }
  return version;
}

Status ApplyDatabaseRecord(const std::vector<std::string>& f,
                           oct::OctDatabase* db) {
  base::AssertEngineThread("activity::ApplyDatabaseRecord");
  PAPYRUS_ASSIGN_OR_RETURN(oct::ObjectRecord rec, ParseObjectRecord(f));
  return db->RestoreRecord(std::move(rec));
}

void AppendObjectLine(const oct::ObjectRecord& rec,
                      std::ostringstream* out) {
  *out << "object " << EncField(rec.id.name) << ' ' << rec.id.version
       << ' ' << EncField(rec.creator_tool) << ' ' << rec.created_micros
       << ' ' << rec.last_access_micros << ' ' << rec.size_bytes << ' '
       << rec.visible << ' ' << rec.reclaimed << ' ';
  AppendPayload(rec.payload, out);
}

/// Applies one node-scoped thread-snapshot line (tags `node`, `parents`,
/// `children`, `record`, `rin`, `rout`, `step`, `sin`, `sout`) into an
/// accumulating node map; `*cur` tracks the node the last `node` line
/// opened. Shared by the thread reader and the WAL node-block codec.
Status ApplyNodeTag(const std::vector<std::string>& f,
                    std::map<NodeId, HistoryNode>* nodes,
                    HistoryNode** cur_slot) {
  auto object_of = [](const std::vector<std::string>& g) {
    return oct::ObjectId{DecField(g[2]),
                         static_cast<int>(ParseI64(g[3]))};
  };
  const std::string& tag = f[0];
  if (tag == "node") {
    if (f.size() < 6) return Status::InvalidArgument("bad node line");
    HistoryNode node;
    node.id = static_cast<NodeId>(ParseI64(f[1]));
    node.is_junction = f[2] == "1";
    node.appended_micros = ParseI64(f[3]);
    node.last_access_micros = ParseI64(f[4]);
    node.annotation = DecField(f[5]);
    NodeId id = node.id;
    (*nodes)[id] = std::move(node);
    *cur_slot = &(*nodes)[id];
    return Status::OK();
  }
  HistoryNode* cur = *cur_slot;
  if (cur == nullptr) {
    return Status::InvalidArgument("field before any node: " +
                                   Join(f, " "));
  }
  if (tag == "parents") {
    for (size_t k = 2; k < f.size(); ++k) {
      cur->parents.push_back(static_cast<NodeId>(ParseI64(f[k])));
    }
  } else if (tag == "children") {
    for (size_t k = 2; k < f.size(); ++k) {
      cur->children.push_back(static_cast<NodeId>(ParseI64(f[k])));
    }
  } else if (tag == "record" && f.size() >= 5) {
    cur->record.task_name = DecField(f[2]);
    cur->record.invoke_micros = ParseI64(f[3]);
    cur->record.commit_micros = ParseI64(f[4]);
    if (f.size() >= 6) {
      cur->record.restarts = static_cast<int>(ParseI64(f[5]));
    }
    if (f.size() >= 9) {
      cur->record.steps_lost = ParseI64(f[6]);
      cur->record.steps_retried = ParseI64(f[7]);
      cur->record.backoff_micros_total = ParseI64(f[8]);
    }
    if (f.size() >= 10) {
      cur->record.steps_elided = ParseI64(f[9]);
    }
  } else if (tag == "rin" && f.size() >= 4) {
    cur->record.inputs.push_back(object_of(f));
  } else if (tag == "rout" && f.size() >= 4) {
    cur->record.outputs.push_back(object_of(f));
  } else if (tag == "step" && f.size() >= 10) {
    task::StepRecord step;
    step.step_name = DecField(f[2]);
    step.tool = DecField(f[3]);
    step.invocation = DecField(f[4]);
    step.dispatch_micros = ParseI64(f[5]);
    step.completion_micros = ParseI64(f[6]);
    step.host = static_cast<int>(ParseI64(f[7]));
    step.exit_status = static_cast<int>(ParseI64(f[8]));
    step.message = DecField(f[9]);
    if (f.size() >= 11) {
      step.internal_id = static_cast<int>(ParseI64(f[10]));
    }
    if (f.size() >= 12) {
      step.cache_hit = f[11] == "1";
    }
    cur->record.steps.push_back(std::move(step));
  } else if (tag == "sin" && f.size() >= 4) {
    if (cur->record.steps.empty()) {
      return Status::InvalidArgument("sin before step");
    }
    cur->record.steps.back().inputs.push_back(object_of(f));
  } else if (tag == "sout" && f.size() >= 4) {
    if (cur->record.steps.empty()) {
      return Status::InvalidArgument("sout before step");
    }
    cur->record.steps.back().outputs.push_back(object_of(f));
  } else {
    return Status::InvalidArgument("bad thread line: " + Join(f, " "));
  }
  return Status::OK();
}

/// Emits one node's snapshot line block (shared by the full thread
/// serializer and the WAL node-block codec, so both stay byte-identical).
void AppendNodeLines(const HistoryNode& node, std::ostringstream* outp) {
  std::ostringstream& out = *outp;
  NodeId id = node.id;
  out << "node " << id << ' ' << node.is_junction << ' '
      << node.appended_micros << ' ' << node.last_access_micros << ' '
      << EncField(node.annotation) << '\n';
  if (!node.parents.empty()) {
    out << "parents " << id;
    for (NodeId p : node.parents) out << ' ' << p;
    out << '\n';
  }
  if (!node.children.empty()) {
    out << "children " << id;
    for (NodeId c : node.children) out << ' ' << c;
    out << '\n';
  }
  const task::TaskHistoryRecord& rec = node.record;
  out << "record " << id << ' ' << EncField(rec.task_name) << ' '
      << rec.invoke_micros << ' ' << rec.commit_micros << ' '
      << rec.restarts << ' ' << rec.steps_lost << ' '
      << rec.steps_retried << ' ' << rec.backoff_micros_total << ' '
      << rec.steps_elided << '\n';
  AppendObjectList("rin", id, rec.inputs, &out);
  AppendObjectList("rout", id, rec.outputs, &out);
  for (const task::StepRecord& step : rec.steps) {
    out << "step " << id << ' ' << EncField(step.step_name) << ' '
        << EncField(step.tool) << ' ' << EncField(step.invocation) << ' '
        << step.dispatch_micros << ' ' << step.completion_micros << ' '
        << step.host << ' ' << step.exit_status << ' '
        << EncField(step.message) << ' ' << step.internal_id << ' '
        << step.cache_hit << '\n';
    AppendObjectList("sin", id, step.inputs, &out);
    AppendObjectList("sout", id, step.outputs, &out);
  }
}

/// Emits one cache entry's snapshot line block under `index` (shared by
/// the full cache serializer and the WAL entry codec).
void AppendCacheEntryLines(int64_t index, const cache::CacheEntry& entry,
                           std::ostringstream* outp) {
  std::ostringstream& out = *outp;
  out << "entry " << index << ' ' << EncField(entry.tool) << ' '
      << EncField(entry.tool_version) << ' '
      << EncField(entry.canonical_options) << ' '
      << FormatHex(entry.seed_salt) << ' ' << entry.cost_micros << ' '
      << entry.recorded_micros << '\n';
  AppendObjectList("ein", static_cast<int>(index), entry.inputs, &out);
  for (const cache::CachedOutput& o : entry.outputs) {
    out << "eout " << index << ' ' << EncField(o.id.name) << ' '
        << o.id.version << '\n';
  }
  // v3: the shared-store content key rides along so a restored daemon
  // session can republish its entries (shared hits restore with no
  // key and are never republished).
  if (!entry.content_key.empty()) {
    out << "ckey " << index << ' ' << EncField(entry.content_key) << '\n';
  }
}

/// Accumulates thread-snapshot record lines; shared by the v1 and v2
/// readers, which differ only in how lines are vetted.
struct ThreadBuilder {
  std::unique_ptr<DesignThread> thread;
  NodeId cursor = kInitialPoint;
  // Nodes are assembled fully before restoration so links and records are
  // complete at insert time.
  std::map<NodeId, HistoryNode> nodes;
  HistoryNode* cur = nullptr;

  Status Apply(const std::vector<std::string>& f, Clock* clock) {
    const std::string& tag = f[0];
    if (tag == "meta") {
      if (f.size() < 5) return Status::InvalidArgument("bad meta line");
      thread = std::make_unique<DesignThread>(
          static_cast<int>(ParseI64(f[1])), DecField(f[2]), clock);
      cursor = static_cast<NodeId>(ParseI64(f[3]));
      thread->set_cache_interval(static_cast<int>(ParseI64(f[4])));
      return Status::OK();
    }
    if (thread == nullptr) {
      return Status::InvalidArgument("thread snapshot missing meta line");
    }
    if (tag == "checkin" && f.size() >= 3) {
      thread->CheckIn(oct::ObjectId{DecField(f[1]),
                                    static_cast<int>(ParseI64(f[2]))});
      return Status::OK();
    }
    return ApplyNodeTag(f, &nodes, &cur);
  }

  /// Drops graph links to nodes that did not survive recovery and falls
  /// the cursor back to the initial point when its node is gone.
  void PruneDanglingLinks() {
    auto missing = [this](NodeId id) { return nodes.count(id) == 0; };
    for (auto& [id, node] : nodes) {
      node.parents.erase(std::remove_if(node.parents.begin(),
                                        node.parents.end(), missing),
                         node.parents.end());
      node.children.erase(std::remove_if(node.children.begin(),
                                         node.children.end(), missing),
                          node.children.end());
    }
    if (cursor != kInitialPoint && missing(cursor)) {
      cursor = kInitialPoint;
    }
  }

  Result<std::unique_ptr<DesignThread>> Finish() {
    if (thread == nullptr) {
      return Status::InvalidArgument("thread snapshot missing meta line");
    }
    for (auto& [id, node] : nodes) {
      PAPYRUS_RETURN_IF_ERROR(thread->RestoreNode(std::move(node)));
    }
    PAPYRUS_RETURN_IF_ERROR(thread->RestoreCursor(cursor));
    return std::move(thread);
  }
};

}  // namespace

std::string SerializeDatabase(const oct::OctDatabase& db) {
  std::ostringstream out;
  // Collect and emit in (name, version) order so restore sees versions
  // sequentially.
  std::map<oct::ObjectId, const oct::ObjectRecord*> ordered;
  db.ForEach([&](const oct::ObjectRecord& rec) {
    ordered[rec.id] = &rec;
  });
  for (const auto& [id, rec] : ordered) {
    AppendObjectLine(*rec, &out);
    out << '\n';
  }
  return AssembleV2("papyrus-db 2", out.str());
}

Status RestoreDatabaseInto(const std::string& text, oct::OctDatabase* db,
                           RestoreStats* stats) {
  std::vector<std::string> lines = SplitLines(text);
  PAPYRUS_ASSIGN_OR_RETURN(int64_t version,
                           SnapshotVersion(lines, "papyrus-db"));
  if (version == 1) {
    // Legacy snapshots have no checksums: read strictly, no recovery.
    for (size_t i = 1; i < lines.size(); ++i) {
      std::vector<std::string> f = SplitWhitespace(lines[i]);
      if (f.empty() || f[0] == "end") continue;
      PAPYRUS_RETURN_IF_ERROR(ApplyDatabaseRecord(f, db));
      if (stats != nullptr) ++stats->records_restored;
    }
    return Status::OK();
  }
  V2Scan scan = ScanV2(lines);
  for (const std::vector<std::string>& f : scan.records) {
    // The line passed its checksum, so a parse failure here is a format
    // error in intact data — fail loudly rather than "recover".
    PAPYRUS_RETURN_IF_ERROR(ApplyDatabaseRecord(f, db));
  }
  if (stats != nullptr) {
    stats->records_restored +=
        static_cast<int64_t>(scan.records.size());
    stats->records_dropped += scan.dropped;
    stats->truncated |= !scan.clean;
  }
  return Status::OK();
}

Result<std::unique_ptr<oct::OctDatabase>> RestoreDatabase(
    const std::string& text, Clock* clock, RestoreStats* stats) {
  auto db = std::make_unique<oct::OctDatabase>(clock);
  PAPYRUS_RETURN_IF_ERROR(RestoreDatabaseInto(text, db.get(), stats));
  return db;
}

std::string SerializeThread(const DesignThread& thread) {
  std::ostringstream out;
  out << "meta " << thread.id() << ' ' << EncField(thread.name())
      << ' ' << thread.current_cursor() << ' ' << thread.cache_interval()
      << '\n';
  for (const oct::ObjectId& id : thread.checkins()) {
    out << "checkin " << EncField(id.name) << ' ' << id.version
        << '\n';
  }
  for (const auto& [id, node] : thread.nodes()) {
    AppendNodeLines(node, &out);
  }
  return AssembleV2("papyrus-thread 2", out.str());
}

Result<std::unique_ptr<DesignThread>> RestoreThread(
    const std::string& text, Clock* clock, RestoreStats* stats) {
  std::vector<std::string> lines = SplitLines(text);
  PAPYRUS_ASSIGN_OR_RETURN(int64_t version,
                           SnapshotVersion(lines, "papyrus-thread"));
  ThreadBuilder builder;
  if (version == 1) {
    for (size_t i = 1; i < lines.size(); ++i) {
      std::vector<std::string> f = SplitWhitespace(lines[i]);
      if (f.empty() || f[0] == "end") continue;
      PAPYRUS_RETURN_IF_ERROR(builder.Apply(f, clock));
      if (stats != nullptr) ++stats->records_restored;
    }
    return builder.Finish();
  }
  V2Scan scan = ScanV2(lines);
  for (const std::vector<std::string>& f : scan.records) {
    PAPYRUS_RETURN_IF_ERROR(builder.Apply(f, clock));
  }
  if (!scan.clean) {
    // A dropped suffix may be referenced by surviving nodes: prune those
    // links so the recovered stream is self-consistent.
    builder.PruneDanglingLinks();
  }
  if (stats != nullptr) {
    stats->records_restored = static_cast<int64_t>(scan.records.size());
    stats->records_dropped = scan.dropped;
    stats->truncated = !scan.clean;
  }
  return builder.Finish();
}

std::string SerializeDerivationCache(const cache::DerivationCache& cache) {
  std::ostringstream out;
  int64_t i = 0;
  cache.ForEach([&](const std::string& key,
                    const cache::CacheEntry& entry) {
    (void)key;  // recomputed from the entry's components on restore
    AppendCacheEntryLines(i, entry, &out);
    ++i;
  });
  return AssembleV2("papyrus-cache 3", out.str());
}

Status RestoreDerivationCache(const std::string& text,
                              cache::DerivationCache* cache,
                              RestoreStats* stats) {
  std::vector<std::string> lines = SplitLines(text);
  PAPYRUS_ASSIGN_OR_RETURN(
      int64_t version,
      SnapshotVersion(lines, "papyrus-cache", /*max_version=*/3));
  // v2 entries simply lack `ckey` lines: they restore with an empty
  // content key (usable locally, never republished to a shared store).
  V2Scan scan = ScanV2(lines);
  std::optional<cache::CacheEntry> pending;
  auto flush = [&]() {
    if (pending.has_value()) {
      (void)cache->Restore(std::move(*pending));
      pending.reset();
    }
  };
  for (const std::vector<std::string>& f : scan.records) {
    if (f[0] == "entry" && f.size() >= 8) {
      flush();
      cache::CacheEntry entry;
      entry.tool = DecField(f[2]);
      entry.tool_version = DecField(f[3]);
      entry.canonical_options = DecField(f[4]);
      uint64_t salt = 0;
      if (!ParseHex(f[5], &salt)) {
        return Status::InvalidArgument("bad cache salt: " + f[5]);
      }
      entry.seed_salt = salt;
      entry.cost_micros = ParseI64(f[6]);
      entry.recorded_micros = ParseI64(f[7]);
      pending = std::move(entry);
    } else if (f[0] == "ein" && f.size() >= 4 && pending.has_value()) {
      pending->inputs.push_back(
          oct::ObjectId{DecField(f[2]),
                        static_cast<int>(ParseI64(f[3]))});
    } else if (f[0] == "eout" && f.size() >= 4 && pending.has_value()) {
      pending->outputs.push_back(cache::CachedOutput{
          oct::ObjectId{DecField(f[2]),
                        static_cast<int>(ParseI64(f[3]))},
          true});
    } else if (f[0] == "ckey" && f.size() >= 3 && version >= 3 &&
               pending.has_value()) {
      pending->content_key = DecField(f[2]);
    } else {
      return Status::InvalidArgument("bad cache line: " + Join(f, " "));
    }
  }
  flush();
  if (stats != nullptr) {
    stats->records_restored = static_cast<int64_t>(scan.records.size());
    stats->records_dropped = scan.dropped;
    stats->truncated = !scan.clean;
  }
  return Status::OK();
}

// --- storage-engine record codecs ----------------------------------------

std::string EncodeObjectRecord(const oct::ObjectRecord& rec) {
  std::ostringstream out;
  AppendObjectLine(rec, &out);
  return out.str();
}

Result<oct::ObjectRecord> ParseObjectRecord(
    const std::vector<std::string>& f) {
  if (f.empty() || f[0] != "object" || f.size() < 9) {
    return Status::InvalidArgument("bad database line: " + Join(f, " "));
  }
  oct::ObjectRecord rec;
  rec.id.name = DecField(f[1]);
  rec.id.version = static_cast<int>(ParseI64(f[2]));
  rec.creator_tool = DecField(f[3]);
  rec.created_micros = ParseI64(f[4]);
  rec.last_access_micros = ParseI64(f[5]);
  rec.size_bytes = ParseI64(f[6]);
  rec.visible = f[7] == "1";
  rec.reclaimed = f[8] == "1";
  PAPYRUS_ASSIGN_OR_RETURN(rec.payload, ParsePayload(f, 9));
  return rec;
}

std::string SerializeDatabaseShard(const oct::OctDatabase& db, int shard) {
  std::ostringstream out;
  // (name, version) order, like the whole-database serializer: restore
  // sees each name's versions sequentially, and the section bytes are
  // independent of hash-map iteration order.
  std::map<oct::ObjectId, const oct::ObjectRecord*> ordered;
  db.ForEachShard(shard, [&](const oct::ObjectRecord& rec) {
    ordered[rec.id] = &rec;
  });
  for (const auto& [id, rec] : ordered) {
    AppendObjectLine(*rec, &out);
    out << '\n';
  }
  return AssembleV2("papyrus-db 2", out.str());
}

std::string EncodeNodeBlock(const HistoryNode& node) {
  std::ostringstream out;
  AppendNodeLines(node, &out);
  return out.str();
}

Status ApplyNodeBlock(const std::string& block, DesignThread* thread) {
  std::map<NodeId, HistoryNode> nodes;
  HistoryNode* cur = nullptr;
  for (const std::string& line : SplitLines(block)) {
    std::vector<std::string> f = SplitWhitespace(line);
    if (f.empty()) continue;
    PAPYRUS_RETURN_IF_ERROR(ApplyNodeTag(f, &nodes, &cur));
  }
  if (nodes.size() != 1) {
    return Status::InvalidArgument("node block must carry exactly one node");
  }
  return thread->UpsertNode(std::move(nodes.begin()->second));
}

std::string EncodeCacheEntry(const cache::CacheEntry& entry) {
  std::ostringstream out;
  AppendCacheEntryLines(0, entry, &out);
  return out.str();
}

Result<cache::CacheEntry> DecodeCacheEntry(const std::string& block) {
  std::optional<cache::CacheEntry> entry;
  for (const std::string& line : SplitLines(block)) {
    std::vector<std::string> f = SplitWhitespace(line);
    if (f.empty()) continue;
    if (f[0] == "entry" && f.size() >= 8) {
      if (entry.has_value()) {
        return Status::InvalidArgument(
            "cache-entry block must carry exactly one entry");
      }
      cache::CacheEntry e;
      e.tool = DecField(f[2]);
      e.tool_version = DecField(f[3]);
      e.canonical_options = DecField(f[4]);
      uint64_t salt = 0;
      if (!ParseHex(f[5], &salt)) {
        return Status::InvalidArgument("bad cache salt: " + f[5]);
      }
      e.seed_salt = salt;
      e.cost_micros = ParseI64(f[6]);
      e.recorded_micros = ParseI64(f[7]);
      entry = std::move(e);
    } else if (f[0] == "ein" && f.size() >= 4 && entry.has_value()) {
      entry->inputs.push_back(oct::ObjectId{
          DecField(f[2]), static_cast<int>(ParseI64(f[3]))});
    } else if (f[0] == "eout" && f.size() >= 4 && entry.has_value()) {
      entry->outputs.push_back(cache::CachedOutput{
          oct::ObjectId{DecField(f[2]),
                        static_cast<int>(ParseI64(f[3]))},
          true});
    } else if (f[0] == "ckey" && f.size() >= 3 && entry.has_value()) {
      entry->content_key = DecField(f[2]);
    } else {
      return Status::InvalidArgument("bad cache line: " + Join(f, " "));
    }
  }
  if (!entry.has_value()) {
    return Status::InvalidArgument(
        "cache-entry block must carry exactly one entry");
  }
  return std::move(*entry);
}

}  // namespace papyrus::activity
