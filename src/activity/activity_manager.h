#ifndef PAPYRUS_ACTIVITY_ACTIVITY_MANAGER_H_
#define PAPYRUS_ACTIVITY_ACTIVITY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "activity/design_thread.h"
#include "base/result.h"
#include "oct/attribute_store.h"
#include "oct/database.h"
#include "task/task_manager.h"

namespace papyrus::cache {
class DerivationCache;
}  // namespace papyrus::cache

namespace papyrus::activity {

/// Arguments for invoking a task inside a thread (the §5.2 dialog).
struct ActivityInvocation {
  std::string template_name;
  /// Input references in the three §5.2 naming formats: plain names
  /// (resolved to the latest version in the data scope), "name@version"
  /// (explicit version), or "/absolute/path" (implicit check-in).
  std::vector<std::string> input_refs;
  /// Output names (plain form; versions are assigned by the database).
  std::vector<std::string> output_names;
  std::map<std::string, std::string> option_overrides;
  task::TaskObserver* observer = nullptr;
  int max_restarts = 8;
  uint64_t seed = 1;
  /// Passed through to TaskInvocation: run every step even when a cached
  /// committed derivation exists.
  bool disable_step_cache = false;
};

/// The Papyrus Design Activity Manager (§5): owns the design threads,
/// resolves object names against the current cursor's data scope, invokes
/// the task manager, and appends the returned history records to the
/// invoking thread's control stream at the correct insertion point.
class ActivityManager {
 public:
  ActivityManager(oct::OctDatabase* db, task::TaskManager* task_manager,
                  Clock* clock);

  ActivityManager(const ActivityManager&) = delete;
  ActivityManager& operator=(const ActivityManager&) = delete;

  // --- thread lifecycle --------------------------------------------------

  /// Creates an empty design thread; returns its id.
  int CreateThread(const std::string& name);

  /// Fork (§3.3.4.1): the new thread inherits its workspace from `source`
  /// — from one design point's thread state when `point` is given, or the
  /// whole workspace otherwise.
  Result<int> ForkThread(int source, const std::string& name,
                         std::optional<NodeId> point = std::nullopt);

  /// Join at the given frontier connector points (§3.3.4.1).
  Result<int> JoinThreads(int a, NodeId point_a, int b, NodeId point_b,
                          const std::string& name);

  /// Cascade `trailing` after `connector` of `leading` (§3.3.4.1).
  Result<int> CascadeThreads(int leading, NodeId connector, int trailing,
                             const std::string& name);

  Result<DesignThread*> GetThread(int id);
  std::vector<int> ThreadIds() const;
  Status RemoveThread(int id);

  /// Registers a thread restored by the persistence layer under its own
  /// id (crash recovery, §5.3). Fails when the id is taken.
  Status AdoptThread(std::unique_ptr<DesignThread> thread);

  /// The attribute database associated with a thread's workspace (§4.3.6).
  Result<oct::AttributeStore*> AttributeStoreOf(int thread_id);

  // --- task invocation (§5.1) ----------------------------------------------

  /// Resolves the invocation's object names in the thread's data scope,
  /// runs the task, and appends the resulting history record. Returns the
  /// new design point. On task abort, no record is appended (§4.1).
  Result<NodeId> InvokeTask(int thread_id, const ActivityInvocation& inv);

  // --- rework ---------------------------------------------------------------

  /// Moves a thread's current cursor to `point`; when `erase` is set, the
  /// branch toward the old cursor is deleted and its now-unreferenced
  /// objects are made invisible in the database (Figure 3.6). Erasure is
  /// explicit rework: derivations through the erased objects are dropped
  /// from the attached derivation cache so they re-execute.
  Status MoveCursor(int thread_id, NodeId point, bool erase = false);

  /// Attaches the derivation cache (may be null) for rework invalidation.
  void set_derivation_cache(cache::DerivationCache* cache) {
    cache_ = cache;
  }

  /// Task filtering hook (§5.4): when set and returning false for a task
  /// name, the task still runs but its history record is discarded instead
  /// of entering the control stream ("facility" tasks such as printing).
  /// Wire this to ReclamationManager::ShouldRecord.
  using RecordFilter = std::function<bool(const std::string& task_name)>;
  void set_record_filter(RecordFilter filter) {
    record_filter_ = std::move(filter);
  }

  /// Observation hook fired with every committed task's history record
  /// (before filtering). The Papyrus session wires this to the metadata
  /// inference engine, which builds the ADG "as a by-product of activity
  /// management" (§6.1).
  using RecordSink = std::function<void(const task::TaskHistoryRecord&)>;
  void set_record_sink(RecordSink sink) { record_sink_ = std::move(sink); }

  // --- statistics -----------------------------------------------------------

  int64_t records_appended() const { return records_appended_; }
  int64_t records_filtered() const { return records_filtered_; }

  oct::OctDatabase* database() const { return db_; }
  task::TaskManager* task_manager() const { return task_manager_; }
  Clock* clock() const { return clock_; }

 private:
  Result<oct::ObjectId> ResolveInput(DesignThread* thread,
                                     const std::string& ref);

  oct::OctDatabase* db_;
  task::TaskManager* task_manager_;
  Clock* clock_;
  std::map<int, std::unique_ptr<DesignThread>> threads_;
  std::map<int, std::unique_ptr<oct::AttributeStore>> attribute_stores_;
  RecordFilter record_filter_;
  RecordSink record_sink_;
  cache::DerivationCache* cache_ = nullptr;  // optional, not owned
  int next_thread_id_ = 1;
  int64_t records_appended_ = 0;
  int64_t records_filtered_ = 0;
};

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_ACTIVITY_MANAGER_H_
