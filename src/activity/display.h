#ifndef PAPYRUS_ACTIVITY_DISPLAY_H_
#define PAPYRUS_ACTIVITY_DISPLAY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "activity/design_thread.h"

namespace papyrus::activity {

/// Lazily compressed pan/zoom transform (§5.2).
///
/// The activity manager must place new history records consistently with
/// graphics that the user has panned and zoomed. Instead of applying each
/// event to every existing item, events are logged and compressed into a
/// single (translation, magnification) pair using the thesis' three
/// observations:
///  [1] consecutive translations add; consecutive magnifications multiply;
///  [2] magnifications separated by translations still multiply;
///  [3] translations separated by magnifications merge after normalizing
///      by the inverse of the accumulated magnification factor.
/// The compressed transform is `p' = M * (p + T)`.
class DisplayTransform {
 public:
  /// Logs a pan by (dx, dy) display units.
  void Pan(double dx, double dy);
  /// Logs a zoom by `factor` (> 0).
  void Zoom(double factor);

  /// Accumulated magnification M.
  double magnification() const { return magnification_; }
  /// Compressed translation T (normalized).
  double tx() const { return tx_; }
  double ty() const { return ty_; }

  /// Maps an original coordinate through the compressed transform.
  std::pair<double, double> Apply(double x, double y) const {
    return {magnification_ * (x + tx_), magnification_ * (y + ty_)};
  }

  int64_t events_logged() const { return events_logged_; }
  void Reset();

 private:
  double magnification_ = 1.0;
  double tx_ = 0.0;
  double ty_ = 0.0;
  int64_t events_logged_ = 0;
};

/// Grid placement of a control stream's history records for display
/// (§5.2: each oval block is assigned a grid cell). X advances with path
/// depth; Y assigns one lane per branch.
struct StreamLayout {
  std::map<NodeId, std::pair<int, int>> cells;  // node -> (x, y)
  int width = 0;   // max x + 1
  int height = 0;  // max y + 1
};

StreamLayout ComputeStreamLayout(const DesignThread& thread);

/// Renders a design thread's control stream as indented text, marking the
/// current cursor with `*` and frontier cursors with `^`, and showing
/// annotations. The textual stand-in for Figure 5.1.
std::string RenderControlStream(const DesignThread& thread);

/// Renders a data-scope listing (Figure 5.4): object names with the
/// version numbers present in the thread state of the current cursor.
std::string RenderDataScope(DesignThread* thread);

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_DISPLAY_H_
