#ifndef PAPYRUS_ACTIVITY_DESIGN_THREAD_H_
#define PAPYRUS_ACTIVITY_DESIGN_THREAD_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "oct/object_id.h"
#include "task/history.h"

namespace papyrus::activity {

/// Identifies a design point in a thread's control stream: the state right
/// after the history record with this node id committed. `kInitialPoint`
/// (0) is the empty state at thread creation.
using NodeId = int;
constexpr NodeId kInitialPoint = 0;

/// One vertex of a control stream (the thesis' HistoryRecord structure,
/// §5.3): a committed task's history plus graph links. Nodes may have
/// multiple parents (thread joins) and multiple children (rework
/// branches).
struct HistoryNode {
  NodeId id = kInitialPoint;
  task::TaskHistoryRecord record;
  bool is_junction = false;  // a join connector point, carries no record
  std::string annotation;
  int64_t appended_micros = 0;
  std::vector<NodeId> parents;  // empty = child of the initial point
  std::vector<NodeId> children;
  /// Last time the node was the target of a cursor move or state query;
  /// drives the §5.4 dead-branch detection.
  int64_t last_access_micros = 0;
  // Thread-state cache (the CacheFlag/state of §5.3).
  bool cache_flag = false;
  bool cache_valid = false;
  std::set<oct::ObjectId> cached_state;
};

/// A design thread (§3.3.3): the context of one logical design entity —
/// its branching control stream of committed tasks, its thread workspace,
/// its frontier cursors, and the current cursor that defines the data
/// scope in which new task invocations resolve object names.
///
/// The thread is database-agnostic: operations that "delete" objects
/// return the affected ids and the activity manager applies visibility
/// changes to the OCT store.
class DesignThread {
 public:
  DesignThread(int thread_id, std::string name, Clock* clock);

  DesignThread(const DesignThread&) = delete;
  DesignThread& operator=(const DesignThread&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }

  // --- control stream ---------------------------------------------------

  /// Appends a committed task's history record. `invocation_cursor` is the
  /// current cursor captured when the task was *invoked* (§5.3).
  ///
  /// `new_branch` encodes the §5.3 path number, captured at invocation
  /// time: true when the invocation cursor already had following records
  /// then (the user reworked into the middle of the stream, so this record
  /// starts a fresh branch at the cursor); false when the cursor was a
  /// frontier (the record lands at the end of the cursor's logical path,
  /// chaining after records that completed in the interim, or spliced in
  /// just before a branching record found along the way).
  ///
  /// Returns the new node's id. Advances the current cursor when it sat at
  /// the attachment point.
  Result<NodeId> Append(task::TaskHistoryRecord record,
                        NodeId invocation_cursor, bool new_branch);

  /// Synchronous convenience: invocation time is now, so the branch flag
  /// is derived from the cursor's current children.
  Result<NodeId> Append(task::TaskHistoryRecord record,
                        NodeId invocation_cursor);

  Result<const HistoryNode*> GetNode(NodeId id) const;
  bool HasNode(NodeId id) const;
  /// Number of history records (excludes the initial point).
  int size() const { return static_cast<int>(nodes_.size()); }

  NodeId current_cursor() const { return current_cursor_; }

  /// Rework (§3.3.3): repositions the current cursor onto an existing
  /// design point, restoring that point's thread state as the data scope.
  Status MoveCursor(NodeId point);

  /// Rework with branch erasure (Figure 3.6): moves the cursor to `point`
  /// and deletes the branch that led to the old cursor position (the
  /// subtree hanging off `point` that contains the old cursor). Appends
  /// the ids of objects no longer referenced anywhere in the stream to
  /// `unreferenced` for the caller to make invisible.
  Status MoveCursorAndErase(NodeId point,
                            std::vector<oct::ObjectId>* unreferenced);

  /// Deletes the subtree rooted at `node` (used by storage reclamation
  /// policies). Collects newly unreferenced objects like
  /// MoveCursorAndErase. The current cursor moves to the subtree's parent
  /// when it pointed inside.
  Status EraseSubtree(NodeId node,
                      std::vector<oct::ObjectId>* unreferenced);

  /// Design points with no following record (§3.3.3).
  std::vector<NodeId> FrontierCursors() const;

  /// Removes every proper ancestor of `new_root` (§5.4 horizontal aging:
  /// history "too far back in time" is pruned and the stream re-roots at
  /// `new_root`). Fails when the prefix is not linear (an ancestor has a
  /// child outside the prefix/new_root). Collects newly unreferenced
  /// objects like EraseSubtree.
  Status PrunePrefix(NodeId new_root,
                     std::vector<oct::ObjectId>* unreferenced);

  /// Removes one record from the middle of the stream, connecting its
  /// parents directly to its children (§5.4 garbage collection of
  /// abandoned iteration rounds). Collects newly unreferenced objects.
  Status SpliceOutNode(NodeId node,
                       std::vector<oct::ObjectId>* unreferenced);

  /// Replaces a node's recorded step details with an empty list (§5.4
  /// vertical aging: internal details of old composite tasks are
  /// progressively forgotten). Returns the ids of intermediate objects
  /// that were referenced only by the dropped step records.
  Status StripStepDetails(NodeId node,
                          std::vector<oct::ObjectId>* intermediates);

  // --- states and scopes --------------------------------------------------

  /// The thread state of a design point: all objects referenced as inputs
  /// or created as outputs on the paths from the initial point to `point`
  /// (§3.3.3). Uses and refreshes the thread-state caches.
  Result<std::set<oct::ObjectId>> ThreadState(NodeId point);

  /// The data scope (§5.2): the thread state of the current cursor.
  Result<std::set<oct::ObjectId>> DataScope() {
    return ThreadState(current_cursor_);
  }

  /// Resolves a plain object name to its most recent version inside the
  /// current data scope (§5.2).
  Result<oct::ObjectId> ResolveInScope(const std::string& name);

  /// The thread workspace: union of the frontier cursors' thread states
  /// plus explicitly checked-in objects (§3.3.3).
  Result<std::set<oct::ObjectId>> Workspace();

  /// Registers an externally checked-in object (absolute-path naming).
  void CheckIn(const oct::ObjectId& id);
  const std::set<oct::ObjectId>& checkins() const { return checkins_; }

  // --- random access (§5.2) ----------------------------------------------

  Status Annotate(NodeId node, const std::string& text);
  /// Finds the node carrying an annotation (exact match).
  Result<NodeId> FindAnnotation(const std::string& text) const;
  /// Finds the first record in the hour containing `micros`, or the
  /// earliest record after it (hour-resolution temporal access).
  Result<NodeId> FindByTime(int64_t micros) const;

  // --- caching ------------------------------------------------------------

  /// A node becomes a cache point every `interval` records of backward
  /// traversal; 0 disables caching (the ablation baseline).
  void set_cache_interval(int interval) {
    if (interval != cache_interval_) TouchMeta();
    cache_interval_ = interval;
  }
  int cache_interval() const { return cache_interval_; }
  /// Number of node visits performed by ThreadState computations (for the
  /// §5.3 caching experiments).
  int64_t traversal_visits() const { return traversal_visits_; }

  /// Internal: direct node table access for thread-combination operators
  /// and renderers.
  const std::map<NodeId, HistoryNode>& nodes() const { return nodes_; }

  // --- low-level graph surgery (thread-combination operators) -----------

  /// Adds a node with a fresh id and no links; returns the id. Cached
  /// thread state is dropped.
  NodeId AdoptNode(HistoryNode node);
  /// Re-inserts a node with its exact id and links; used by the
  /// persistence layer (§5.3). The caller guarantees link consistency;
  /// parent-less nodes are registered as roots.
  Status RestoreNode(HistoryNode node);
  /// Restores the current cursor after all nodes are back.
  Status RestoreCursor(NodeId cursor);
  /// Adds a parent->child edge (idempotent).
  void LinkNodes(NodeId parent, NodeId child);
  /// Registers/unregisters a node as a child of the initial point.
  void MarkRoot(NodeId node);
  void UnmarkRoot(NodeId node);

  // --- storage-engine hooks ----------------------------------------------
  // Mutations are tracked at node granularity so the write-ahead log can
  // journal exact record states (delta journaling) and the delta-snapshot
  // writer can skip threads that did not change.

  /// Everything dirtied since the last drain, in deterministic
  /// (mutation-order) sequence.
  struct WalDirt {
    bool meta = false;                  // name/cursor/interval changed
    std::vector<NodeId> deleted;        // erased nodes, deletion order
    std::vector<NodeId> upserts;        // surviving dirty nodes
    std::vector<oct::ObjectId> checkins;  // newly checked-in objects
  };
  bool HasWalDirt() const;
  WalDirt DrainWalDirt();
  void DiscardWalDirt();

  /// Monotonic counter of persisted-state mutations (delta-snapshot
  /// dirtiness at thread granularity).
  uint64_t mutation_seq() const { return seq_; }

  /// The node-id allocator, journaled in the WAL meta record so replayed
  /// threads allocate exactly like the original (the snapshot formats
  /// recompute it as max+1 instead).
  NodeId next_node_id() const { return next_node_id_; }

  /// WAL replay: applies one journaled node state — replaces the node
  /// when it exists, inserts it otherwise. Thread-state cache fields are
  /// runtime-only and reset. Keeps roots and the hour index consistent.
  Status UpsertNode(HistoryNode node);
  /// WAL replay of a deletion. Survivor links are not scrubbed here —
  /// the journal carries the survivors' corrected states separately.
  Status ForgetNode(NodeId id);
  /// WAL replay of the meta record: cursor + node-id allocator, exact.
  Status ReplayMeta(NodeId cursor, NodeId next_node_id);

 private:
  friend class ThreadCombinator;

  HistoryNode* MutableNode(NodeId id);
  const std::vector<NodeId>& ChildrenOf(NodeId id) const;
  void AddObjectsOf(const HistoryNode& node,
                    std::set<oct::ObjectId>* state) const;
  /// All object ids referenced anywhere in the stream or check-ins.
  std::set<oct::ObjectId> AllReferencedObjects() const;
  void CollectSubtree(NodeId root, std::set<NodeId>* out) const;

  /// Dirty tracking: every persisted-state mutation funnels through one of
  /// these so the WAL drain sees exactly what changed, in order.
  void TouchNode(NodeId id);
  void TouchMeta();
  void TouchDeleted(NodeId id);

  int id_;
  std::string name_;
  Clock* clock_;
  std::map<NodeId, HistoryNode> nodes_;
  std::vector<NodeId> roots_;  // children of the initial point
  NodeId current_cursor_ = kInitialPoint;
  NodeId next_node_id_ = 1;
  std::set<oct::ObjectId> checkins_;
  std::map<int64_t, NodeId> hour_index_;  // hour -> first node that hour
  int cache_interval_ = 8;
  int64_t traversal_visits_ = 0;

  // Storage-engine dirty state.
  uint64_t seq_ = 0;
  std::vector<NodeId> wal_dirty_nodes_;   // first-dirtied order
  std::set<NodeId> wal_dirty_set_;
  std::vector<NodeId> wal_deleted_nodes_;
  std::vector<oct::ObjectId> wal_new_checkins_;
  bool wal_meta_dirty_ = false;
};

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_DESIGN_THREAD_H_
