#ifndef PAPYRUS_ACTIVITY_THREAD_OPS_H_
#define PAPYRUS_ACTIVITY_THREAD_OPS_H_

#include <map>
#include <optional>

#include "activity/design_thread.h"

namespace papyrus::activity {

/// The §3.3.4.1 thread-combination operators. Each builds the content of
/// a *new* thread from existing ones; the source threads continue to
/// evolve independently afterwards (updates on one side are never seen by
/// the other).
///
/// Semantics, per the thesis:
///  - Fork: the new thread inherits its initial workspace from another
///    thread — either the whole workspace/control stream, or just the
///    portion that computes one design point's thread state.
///  - Join: the control streams are connected at one connector design
///    point per thread (which must be frontier cursors); the connectors
///    merge into a single new design point, and the workspaces are
///    unioned.
///  - Cascade: the trailing thread's stream is attached after a frontier
///    connector point of the leading thread; cached thread states copied
///    from the trailing thread are dropped so they are recomputed with the
///    leading thread's state incorporated.
class ThreadCombinator {
 public:
  /// Copies `src`'s control stream (and check-ins) into the empty thread
  /// `dst`. Cached thread states are not copied. Returns the old->new node
  /// id mapping.
  static std::map<NodeId, NodeId> CopyStream(const DesignThread& src,
                                             DesignThread* dst);

  /// Fork (Figure 3.10 context): `point` given copies only that design
  /// point's ancestor subgraph and positions the cursor there; nullopt
  /// copies the whole stream and cursor.
  static Status Fork(const DesignThread& src, std::optional<NodeId> point,
                     DesignThread* dst);

  /// Join at the end (Figure 3.9/3.10): `point_a` / `point_b` must be
  /// frontier cursors of their threads. A junction design point with both
  /// connectors as parents is created in `dst`.
  static Status Join(const DesignThread& a, NodeId point_a,
                     const DesignThread& b, NodeId point_b,
                     DesignThread* dst);

  /// Cascade (Figure 3.8): attaches `trailing`'s roots after the frontier
  /// `connector` of `leading`.
  static Status Cascade(const DesignThread& leading, NodeId connector,
                        const DesignThread& trailing, DesignThread* dst);
};

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_THREAD_OPS_H_
