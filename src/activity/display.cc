#include "activity/display.h"

#include <algorithm>
#include <set>
#include <functional>
#include <sstream>

namespace papyrus::activity {

void DisplayTransform::Pan(double dx, double dy) {
  // Observation [3]: normalize by the inverse of the accumulated
  // magnification, then observation [1] merges by addition.
  tx_ += dx / magnification_;
  ty_ += dy / magnification_;
  ++events_logged_;
}

void DisplayTransform::Zoom(double factor) {
  // Observations [1] and [2]: magnifications always merge by
  // multiplication.
  magnification_ *= factor;
  ++events_logged_;
}

void DisplayTransform::Reset() {
  magnification_ = 1.0;
  tx_ = 0.0;
  ty_ = 0.0;
  events_logged_ = 0;
}

StreamLayout ComputeStreamLayout(const DesignThread& thread) {
  StreamLayout layout;
  // Depth-first placement: x = depth along the path, y = branch lane.
  // A node's lane is its first child's lane; each additional branch opens
  // a new lane below.
  int next_lane = 0;
  // Build root list: nodes without parents.
  std::vector<NodeId> roots;
  for (const auto& [id, node] : thread.nodes()) {
    if (node.parents.empty()) roots.push_back(id);
  }
  std::function<void(NodeId, int, int)> place = [&](NodeId id, int x,
                                                    int lane) {
    if (layout.cells.count(id) > 0) {
      // Multi-parent node (join): keep the deepest x.
      layout.cells[id].first = std::max(layout.cells[id].first, x);
      return;
    }
    layout.cells[id] = {x, lane};
    auto node = thread.GetNode(id);
    if (!node.ok()) return;
    bool first = true;
    for (NodeId child : (*node)->children) {
      if (first) {
        place(child, x + 1, lane);
        first = false;
      } else {
        place(child, x + 1, ++next_lane);
      }
    }
  };
  for (NodeId root : roots) {
    place(root, 0, next_lane);
    // Each new root starts a fresh lane unless it shared one via a join.
    ++next_lane;
  }
  for (const auto& [id, cell] : layout.cells) {
    layout.width = std::max(layout.width, cell.first + 1);
    layout.height = std::max(layout.height, cell.second + 1);
  }
  return layout;
}

namespace {

void RenderNode(const DesignThread& thread, NodeId id, int indent,
                std::set<NodeId>* visited, std::ostringstream* out) {
  auto node = thread.GetNode(id);
  if (!node.ok()) return;
  for (int i = 0; i < indent; ++i) *out << "  ";
  if (!visited->insert(id).second) {
    *out << "-> " << id << " (see above)\n";
    return;
  }
  *out << "o " << id << " "
       << ((*node)->is_junction ? "<join>" : (*node)->record.task_name);
  if (!(*node)->annotation.empty()) {
    *out << " \"" << (*node)->annotation << "\"";
  }
  if (thread.current_cursor() == id) *out << " *";
  if ((*node)->children.empty()) *out << " ^";
  *out << "\n";
  for (NodeId child : (*node)->children) {
    RenderNode(thread, child, indent + 1, visited, out);
  }
}

}  // namespace

std::string RenderControlStream(const DesignThread& thread) {
  std::ostringstream out;
  out << "Thread " << thread.id() << " \"" << thread.name() << "\""
      << (thread.current_cursor() == kInitialPoint ? " *" : "") << "\n";
  std::set<NodeId> visited;
  for (const auto& [id, node] : thread.nodes()) {
    if (node.parents.empty()) RenderNode(thread, id, 1, &visited, &out);
  }
  return out.str();
}

std::string RenderDataScope(DesignThread* thread) {
  std::ostringstream out;
  out << "Data Scope at the Current Cursor (design point "
      << thread->current_cursor() << "):\n";
  auto scope = thread->DataScope();
  if (!scope.ok()) {
    out << "  <error: " << scope.status().ToString() << ">\n";
    return out.str();
  }
  std::map<std::string, std::vector<int>> by_name;
  for (const oct::ObjectId& id : *scope) {
    by_name[id.name].push_back(id.version);
  }
  for (const auto& [name, versions] : by_name) {
    out << "  " << name << " :";
    for (int v : versions) out << " version " << v;
    out << "\n";
  }
  return out.str();
}

}  // namespace papyrus::activity
