#include "activity/design_thread.h"

#include <algorithm>
#include <deque>

namespace papyrus::activity {

namespace {
constexpr int64_t kMicrosPerHour = 3600ll * 1000000ll;
}  // namespace

DesignThread::DesignThread(int thread_id, std::string name, Clock* clock)
    : id_(thread_id), name_(std::move(name)), clock_(clock) {}

void DesignThread::TouchNode(NodeId id) {
  ++seq_;
  if (wal_dirty_set_.insert(id).second) wal_dirty_nodes_.push_back(id);
}

void DesignThread::TouchMeta() {
  ++seq_;
  wal_meta_dirty_ = true;
}

void DesignThread::TouchDeleted(NodeId id) {
  ++seq_;
  wal_deleted_nodes_.push_back(id);
}

bool DesignThread::HasWalDirt() const {
  return wal_meta_dirty_ || !wal_deleted_nodes_.empty() ||
         !wal_dirty_nodes_.empty() || !wal_new_checkins_.empty();
}

DesignThread::WalDirt DesignThread::DrainWalDirt() {
  WalDirt out;
  out.meta = wal_meta_dirty_;
  out.deleted = std::move(wal_deleted_nodes_);
  // A node dirtied and then erased inside one commit window is covered by
  // its deletion record alone.
  for (NodeId id : wal_dirty_nodes_) {
    if (nodes_.count(id) > 0) out.upserts.push_back(id);
  }
  out.checkins = std::move(wal_new_checkins_);
  DiscardWalDirt();
  return out;
}

void DesignThread::DiscardWalDirt() {
  wal_meta_dirty_ = false;
  wal_deleted_nodes_.clear();
  wal_dirty_nodes_.clear();
  wal_dirty_set_.clear();
  wal_new_checkins_.clear();
}

Status DesignThread::UpsertNode(HistoryNode node) {
  if (node.id <= 0) {
    return Status::InvalidArgument("journaled node has an invalid id");
  }
  // Thread-state caches are runtime-only; a journaled state never
  // resurrects one.
  node.cache_flag = false;
  node.cache_valid = false;
  node.cached_state.clear();
  next_node_id_ = std::max(next_node_id_, node.id + 1);
  int64_t hour = node.appended_micros / kMicrosPerHour;
  hour_index_.try_emplace(hour, node.id);
  NodeId id = node.id;
  bool is_root = node.parents.empty();
  nodes_[id] = std::move(node);
  if (is_root) {
    MarkRoot(id);
  } else {
    UnmarkRoot(id);
  }
  ++seq_;
  return Status::OK();
}

Status DesignThread::ForgetNode(NodeId id) {
  nodes_.erase(id);
  UnmarkRoot(id);
  for (auto it = hour_index_.begin(); it != hour_index_.end();) {
    if (it->second == id) {
      it = hour_index_.erase(it);
    } else {
      ++it;
    }
  }
  // The journal's meta record (replayed after the batch's deletions and
  // upserts) re-establishes the exact cursor.
  if (current_cursor_ == id) current_cursor_ = kInitialPoint;
  ++seq_;
  return Status::OK();
}

Status DesignThread::ReplayMeta(NodeId cursor, NodeId next_node_id) {
  if (!HasNode(cursor)) {
    return Status::NotFound("journaled cursor points at missing node " +
                            std::to_string(cursor));
  }
  current_cursor_ = cursor;
  next_node_id_ = std::max(next_node_id_, next_node_id);
  ++seq_;
  return Status::OK();
}

void DesignThread::CheckIn(const oct::ObjectId& id) {
  if (checkins_.insert(id).second) {
    ++seq_;
    wal_new_checkins_.push_back(id);
  }
}

HistoryNode* DesignThread::MutableNode(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Result<const HistoryNode*> DesignThread::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no design point " + std::to_string(id) +
                            " in thread " + name_);
  }
  return &it->second;
}

bool DesignThread::HasNode(NodeId id) const {
  return id == kInitialPoint || nodes_.count(id) > 0;
}

const std::vector<NodeId>& DesignThread::ChildrenOf(NodeId id) const {
  if (id == kInitialPoint) return roots_;
  static const std::vector<NodeId> kEmpty;
  auto it = nodes_.find(id);
  return it == nodes_.end() ? kEmpty : it->second.children;
}

Result<NodeId> DesignThread::Append(task::TaskHistoryRecord record,
                                    NodeId invocation_cursor) {
  bool new_branch = !ChildrenOf(invocation_cursor).empty();
  return Append(std::move(record), invocation_cursor, new_branch);
}

Result<NodeId> DesignThread::Append(task::TaskHistoryRecord record,
                                    NodeId invocation_cursor,
                                    bool new_branch) {
  if (!HasNode(invocation_cursor)) {
    return Status::NotFound("invocation cursor " +
                            std::to_string(invocation_cursor) +
                            " no longer exists");
  }
  // §5.3: the record belongs to the logical path of the invocation
  // cursor. After a rework into the middle of the stream (`new_branch`)
  // the path is a fresh branch at the cursor itself. Otherwise walk the
  // cursor's path to its end — past records that completed while this
  // task ran — or splice in just before a branching record so that no
  // branch lies between the insertion point and the invocation cursor.
  NodeId prev = invocation_cursor;
  NodeId splice_before = kInitialPoint;  // 0 = plain append
  if (!new_branch) {
    while (true) {
      const std::vector<NodeId>& children = ChildrenOf(prev);
      if (children.empty()) break;      // end of path: append here
      if (children.size() > 1) break;   // prev branches: new sibling here
      NodeId c = children[0];
      if (ChildrenOf(c).size() > 1) {
        splice_before = c;  // c is a branching record: insert before it
        break;
      }
      prev = c;
    }
  }

  HistoryNode node;
  node.id = next_node_id_++;
  node.record = std::move(record);
  node.appended_micros = clock_->NowMicros();
  node.last_access_micros = node.appended_micros;
  if (prev != kInitialPoint) node.parents.push_back(prev);

  if (splice_before != kInitialPoint) {
    HistoryNode* b = MutableNode(splice_before);
    node.children.push_back(splice_before);
    // Detach b from prev, attach the new node in between.
    std::vector<NodeId>& prev_children =
        prev == kInitialPoint ? roots_ : MutableNode(prev)->children;
    std::replace(prev_children.begin(), prev_children.end(), splice_before,
                 node.id);
    std::replace(b->parents.begin(), b->parents.end(), prev, node.id);
    if (prev == kInitialPoint) {
      b->parents.push_back(node.id);  // b was a root: parent was implicit
      // Remove the implicit-parent duplication if replace() already did it.
      // (roots have empty parents, so replace() was a no-op.)
      b->parents.erase(
          std::unique(b->parents.begin(), b->parents.end()),
          b->parents.end());
    }
    TouchNode(splice_before);
    if (prev != kInitialPoint) TouchNode(prev);
    // §5.3: inserting before cached descendants requires updating their
    // cached thread states with the new record's objects.
    std::deque<NodeId> queue = {splice_before};
    std::set<NodeId> seen;
    while (!queue.empty()) {
      NodeId cur = queue.front();
      queue.pop_front();
      if (!seen.insert(cur).second) continue;
      HistoryNode* n = MutableNode(cur);
      if (n->cache_flag && n->cache_valid) {
        AddObjectsOf(node, &n->cached_state);
      }
      for (NodeId child : n->children) queue.push_back(child);
    }
  } else {
    if (prev == kInitialPoint) {
      roots_.push_back(node.id);
    } else {
      MutableNode(prev)->children.push_back(node.id);
      TouchNode(prev);
    }
    // The current cursor advances automatically when the record lands at
    // the point the cursor occupies (§3.3.3).
    if (current_cursor_ == prev) current_cursor_ = node.id;
  }

  int64_t hour = node.appended_micros / kMicrosPerHour;
  hour_index_.try_emplace(hour, node.id);
  NodeId id = node.id;
  nodes_[id] = std::move(node);
  TouchNode(id);
  TouchMeta();  // next_node_id_, and possibly the cursor, advanced
  return id;
}

Status DesignThread::MoveCursor(NodeId point) {
  if (!HasNode(point)) {
    return Status::NotFound("no design point " + std::to_string(point));
  }
  if (current_cursor_ != point) TouchMeta();
  current_cursor_ = point;
  if (HistoryNode* n = MutableNode(point); n != nullptr) {
    n->last_access_micros = clock_->NowMicros();
    TouchNode(point);
  }
  return Status::OK();
}

void DesignThread::CollectSubtree(NodeId root,
                                  std::set<NodeId>* out) const {
  std::deque<NodeId> queue = {root};
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    if (!out->insert(cur).second) continue;
    for (NodeId child : ChildrenOf(cur)) queue.push_back(child);
  }
}

Status DesignThread::MoveCursorAndErase(
    NodeId point, std::vector<oct::ObjectId>* unreferenced) {
  if (!HasNode(point)) {
    return Status::NotFound("no design point " + std::to_string(point));
  }
  NodeId old_cursor = current_cursor_;
  if (current_cursor_ != point) TouchMeta();
  current_cursor_ = point;
  if (old_cursor == point || old_cursor == kInitialPoint) {
    return Status::OK();
  }
  // Find the child branch of `point` containing the old cursor and erase
  // that subtree (Figure 3.6).
  for (NodeId child : ChildrenOf(point)) {
    std::set<NodeId> subtree;
    CollectSubtree(child, &subtree);
    if (subtree.count(old_cursor) > 0) {
      return EraseSubtree(child, unreferenced);
    }
  }
  return Status::OK();  // old cursor was not downstream: nothing to erase
}

Status DesignThread::EraseSubtree(NodeId root,
                                  std::vector<oct::ObjectId>* unreferenced) {
  if (nodes_.count(root) == 0) {
    return Status::NotFound("no design point " + std::to_string(root));
  }
  std::set<NodeId> doomed;
  CollectSubtree(root, &doomed);

  // Objects referenced by the doomed nodes.
  std::set<oct::ObjectId> doomed_objects;
  for (NodeId id : doomed) {
    AddObjectsOf(nodes_.at(id), &doomed_objects);
  }
  // Detach the subtree root from its parents.
  const HistoryNode& root_node = nodes_.at(root);
  if (root_node.parents.empty()) {
    roots_.erase(std::remove(roots_.begin(), roots_.end(), root),
                 roots_.end());
  } else {
    for (NodeId parent : root_node.parents) {
      HistoryNode* p = MutableNode(parent);
      if (p != nullptr && doomed.count(parent) == 0) {
        p->children.erase(
            std::remove(p->children.begin(), p->children.end(), root),
            p->children.end());
        TouchNode(parent);
      }
    }
  }
  NodeId cursor_fallback = root_node.parents.empty()
                               ? kInitialPoint
                               : root_node.parents.front();
  for (NodeId id : doomed) {
    nodes_.erase(id);
    TouchDeleted(id);
  }
  // Multi-parent nodes inside the subtree may still be linked from
  // surviving parents: scrub dangling child links.
  for (auto& [id, node] : nodes_) {
    size_t before = node.children.size() + node.parents.size();
    node.children.erase(
        std::remove_if(node.children.begin(), node.children.end(),
                       [&](NodeId c) { return doomed.count(c) > 0; }),
        node.children.end());
    node.parents.erase(
        std::remove_if(node.parents.begin(), node.parents.end(),
                       [&](NodeId p) { return doomed.count(p) > 0; }),
        node.parents.end());
    if (node.children.size() + node.parents.size() != before) {
      TouchNode(id);
      if (node.parents.empty()) MarkRoot(id);
    }
  }
  for (auto it = hour_index_.begin(); it != hour_index_.end();) {
    if (doomed.count(it->second) > 0) {
      it = hour_index_.erase(it);
    } else {
      ++it;
    }
  }
  if (doomed.count(current_cursor_) > 0) {
    current_cursor_ = cursor_fallback;
    TouchMeta();
  }

  if (unreferenced != nullptr) {
    std::set<oct::ObjectId> remaining = AllReferencedObjects();
    for (const oct::ObjectId& obj : doomed_objects) {
      if (remaining.count(obj) == 0) unreferenced->push_back(obj);
    }
  }
  return Status::OK();
}

Status DesignThread::PrunePrefix(NodeId new_root,
                                 std::vector<oct::ObjectId>* unreferenced) {
  if (nodes_.count(new_root) == 0) {
    return Status::NotFound("no design point " + std::to_string(new_root));
  }
  // Collect proper ancestors.
  std::set<NodeId> prefix;
  std::deque<NodeId> queue(nodes_.at(new_root).parents.begin(),
                           nodes_.at(new_root).parents.end());
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    if (!prefix.insert(cur).second) continue;
    for (NodeId p : nodes_.at(cur).parents) queue.push_back(p);
  }
  if (prefix.empty()) return Status::OK();
  // The prefix must be self-contained: no branch escapes it.
  for (NodeId id : prefix) {
    for (NodeId child : nodes_.at(id).children) {
      if (child != new_root && prefix.count(child) == 0) {
        return Status::FailedPrecondition(
            "prefix before design point " + std::to_string(new_root) +
            " branches into live history (node " + std::to_string(child) +
            ")");
      }
    }
  }
  std::set<oct::ObjectId> doomed_objects;
  for (NodeId id : prefix) {
    AddObjectsOf(nodes_.at(id), &doomed_objects);
    roots_.erase(std::remove(roots_.begin(), roots_.end(), id),
                 roots_.end());
    nodes_.erase(id);
    TouchDeleted(id);
  }
  HistoryNode* root = MutableNode(new_root);
  root->parents.clear();
  MarkRoot(new_root);
  TouchNode(new_root);
  // Upstream history is gone: downstream cached states remain correct
  // (states only shrink in representation, not content), but the pruned
  // objects may still appear in them; invalidate to stay conservative.
  for (auto& [id, node] : nodes_) node.cache_valid = false;
  for (auto it = hour_index_.begin(); it != hour_index_.end();) {
    if (prefix.count(it->second) > 0) {
      it = hour_index_.erase(it);
    } else {
      ++it;
    }
  }
  if (prefix.count(current_cursor_) > 0) {
    current_cursor_ = new_root;
    TouchMeta();
  }
  if (unreferenced != nullptr) {
    std::set<oct::ObjectId> remaining = AllReferencedObjects();
    for (const oct::ObjectId& obj : doomed_objects) {
      if (remaining.count(obj) == 0) unreferenced->push_back(obj);
    }
  }
  return Status::OK();
}

Status DesignThread::SpliceOutNode(NodeId node,
                                   std::vector<oct::ObjectId>* unreferenced) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound("no design point " + std::to_string(node));
  }
  HistoryNode doomed = it->second;
  std::set<oct::ObjectId> doomed_objects;
  AddObjectsOf(doomed, &doomed_objects);
  // Reconnect parents to children.
  for (NodeId parent : doomed.parents) {
    HistoryNode* p = MutableNode(parent);
    p->children.erase(
        std::remove(p->children.begin(), p->children.end(), node),
        p->children.end());
    TouchNode(parent);
  }
  for (NodeId child : doomed.children) {
    HistoryNode* c = MutableNode(child);
    c->parents.erase(
        std::remove(c->parents.begin(), c->parents.end(), node),
        c->parents.end());
    TouchNode(child);
  }
  for (NodeId parent : doomed.parents) {
    for (NodeId child : doomed.children) LinkNodes(parent, child);
  }
  if (doomed.parents.empty()) {
    UnmarkRoot(node);
    for (NodeId child : doomed.children) {
      if (MutableNode(child)->parents.empty()) MarkRoot(child);
    }
  }
  nodes_.erase(node);
  TouchDeleted(node);
  for (auto hit = hour_index_.begin(); hit != hour_index_.end();) {
    if (hit->second == node) {
      hit = hour_index_.erase(hit);
    } else {
      ++hit;
    }
  }
  if (current_cursor_ == node) {
    current_cursor_ =
        doomed.parents.empty() ? kInitialPoint : doomed.parents.front();
    TouchMeta();
  }
  // Downstream cached states may contain the spliced-out objects.
  for (auto& [id, n] : nodes_) n.cache_valid = false;
  if (unreferenced != nullptr) {
    std::set<oct::ObjectId> remaining = AllReferencedObjects();
    for (const oct::ObjectId& obj : doomed_objects) {
      if (remaining.count(obj) == 0) unreferenced->push_back(obj);
    }
  }
  return Status::OK();
}

Status DesignThread::StripStepDetails(
    NodeId node, std::vector<oct::ObjectId>* intermediates) {
  HistoryNode* n = MutableNode(node);
  if (n == nullptr) {
    return Status::NotFound("no design point " + std::to_string(node));
  }
  // Intermediates: step-level objects that are not task-level in/outs.
  std::set<oct::ObjectId> task_level(n->record.inputs.begin(),
                                     n->record.inputs.end());
  task_level.insert(n->record.outputs.begin(), n->record.outputs.end());
  std::set<oct::ObjectId> dropped;
  for (const task::StepRecord& step : n->record.steps) {
    for (const oct::ObjectId& id : step.inputs) {
      if (task_level.count(id) == 0) dropped.insert(id);
    }
    for (const oct::ObjectId& id : step.outputs) {
      if (task_level.count(id) == 0) dropped.insert(id);
    }
  }
  if (!n->record.steps.empty()) TouchNode(node);
  n->record.steps.clear();
  n->record.steps.shrink_to_fit();
  if (intermediates != nullptr) {
    intermediates->insert(intermediates->end(), dropped.begin(),
                          dropped.end());
  }
  return Status::OK();
}

std::vector<NodeId> DesignThread::FrontierCursors() const {
  std::vector<NodeId> frontier;
  if (nodes_.empty()) {
    frontier.push_back(kInitialPoint);
    return frontier;
  }
  for (const auto& [id, node] : nodes_) {
    if (node.children.empty()) frontier.push_back(id);
  }
  return frontier;
}

void DesignThread::AddObjectsOf(const HistoryNode& node,
                                std::set<oct::ObjectId>* state) const {
  for (const oct::ObjectId& id : node.record.inputs) state->insert(id);
  for (const oct::ObjectId& id : node.record.outputs) state->insert(id);
}

Result<std::set<oct::ObjectId>> DesignThread::ThreadState(NodeId point) {
  if (!HasNode(point)) {
    return Status::NotFound("no design point " + std::to_string(point));
  }
  std::set<oct::ObjectId> state;
  if (point == kInitialPoint) return state;
  MutableNode(point)->last_access_micros = clock_->NowMicros();
  TouchNode(point);
  if (const HistoryNode& n = nodes_.at(point);
      n.cache_flag && n.cache_valid) {
    ++traversal_visits_;
    return n.cached_state;
  }

  // Backward traversal from `point`, following every parent (threads that
  // were joined have multi-parent nodes), stopping at valid cache points.
  std::deque<NodeId> queue = {point};
  std::set<NodeId> visited;
  int expanded = 0;
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    if (!visited.insert(cur).second) continue;
    ++traversal_visits_;
    ++expanded;
    const HistoryNode& node = nodes_.at(cur);
    if (cur != point && node.cache_flag && node.cache_valid) {
      state.insert(node.cached_state.begin(), node.cached_state.end());
      continue;  // the cache summarizes everything upstream
    }
    AddObjectsOf(node, &state);
    for (NodeId parent : node.parents) queue.push_back(parent);
  }
  // Install a cache at the queried point when the uncached tail grew long
  // enough to be worth summarizing (§5.3).
  if (cache_interval_ > 0 && expanded >= cache_interval_) {
    HistoryNode* n = MutableNode(point);
    n->cache_flag = true;
    n->cache_valid = true;
    n->cached_state = state;
  }
  return state;
}

Result<oct::ObjectId> DesignThread::ResolveInScope(const std::string& name) {
  auto scope = DataScope();
  if (!scope.ok()) return scope.status();
  oct::ObjectId best;
  for (const oct::ObjectId& id : *scope) {
    if (id.name == name && id.version > best.version) best = id;
  }
  if (best.version == 0) {
    return Status::NotFound("no object \"" + name +
                            "\" visible in the data scope of thread " +
                            name_);
  }
  return best;
}

Result<std::set<oct::ObjectId>> DesignThread::Workspace() {
  std::set<oct::ObjectId> workspace = checkins_;
  for (NodeId frontier : FrontierCursors()) {
    auto state = ThreadState(frontier);
    if (!state.ok()) return state.status();
    workspace.insert(state->begin(), state->end());
  }
  return workspace;
}

std::set<oct::ObjectId> DesignThread::AllReferencedObjects() const {
  std::set<oct::ObjectId> all = checkins_;
  for (const auto& [id, node] : nodes_) {
    AddObjectsOf(node, &all);
  }
  return all;
}

NodeId DesignThread::AdoptNode(HistoryNode node) {
  node.id = next_node_id_++;
  node.parents.clear();
  node.children.clear();
  node.cache_flag = false;
  node.cache_valid = false;
  node.cached_state.clear();
  if (node.appended_micros == 0) node.appended_micros = clock_->NowMicros();
  node.last_access_micros = clock_->NowMicros();
  int64_t hour = node.appended_micros / kMicrosPerHour;
  hour_index_.try_emplace(hour, node.id);
  NodeId id = node.id;
  nodes_[id] = std::move(node);
  TouchNode(id);
  TouchMeta();  // next_node_id_ advanced
  return id;
}

Status DesignThread::RestoreNode(HistoryNode node) {
  if (node.id <= 0) {
    return Status::InvalidArgument("restored node has an invalid id");
  }
  if (nodes_.count(node.id) > 0) {
    return Status::AlreadyExists("node " + std::to_string(node.id) +
                                 " already exists");
  }
  next_node_id_ = std::max(next_node_id_, node.id + 1);
  int64_t hour = node.appended_micros / kMicrosPerHour;
  hour_index_.try_emplace(hour, node.id);
  if (node.parents.empty()) MarkRoot(node.id);
  NodeId id = node.id;
  nodes_[id] = std::move(node);
  ++seq_;  // gen-dirty, but never WAL dirt: restored state is durable
  return Status::OK();
}

Status DesignThread::RestoreCursor(NodeId cursor) {
  if (!HasNode(cursor)) {
    return Status::NotFound("restored cursor points at missing node " +
                            std::to_string(cursor));
  }
  current_cursor_ = cursor;
  ++seq_;
  return Status::OK();
}

void DesignThread::LinkNodes(NodeId parent, NodeId child) {
  HistoryNode* p = MutableNode(parent);
  HistoryNode* c = MutableNode(child);
  if (p == nullptr || c == nullptr) return;
  if (std::find(p->children.begin(), p->children.end(), child) ==
      p->children.end()) {
    p->children.push_back(child);
    TouchNode(parent);
  }
  if (std::find(c->parents.begin(), c->parents.end(), parent) ==
      c->parents.end()) {
    c->parents.push_back(parent);
    TouchNode(child);
  }
}

void DesignThread::MarkRoot(NodeId node) {
  if (nodes_.count(node) == 0) return;
  if (std::find(roots_.begin(), roots_.end(), node) == roots_.end()) {
    roots_.push_back(node);
  }
}

void DesignThread::UnmarkRoot(NodeId node) {
  roots_.erase(std::remove(roots_.begin(), roots_.end(), node),
               roots_.end());
}

Status DesignThread::Annotate(NodeId node, const std::string& text) {
  HistoryNode* n = MutableNode(node);
  if (n == nullptr) {
    return Status::NotFound("no design point " + std::to_string(node));
  }
  n->annotation = text;
  TouchNode(node);
  return Status::OK();
}

Result<NodeId> DesignThread::FindAnnotation(const std::string& text) const {
  for (const auto& [id, node] : nodes_) {
    if (node.annotation == text) return id;
  }
  return Status::NotFound("no design point annotated \"" + text + "\"");
}

Result<NodeId> DesignThread::FindByTime(int64_t micros) const {
  int64_t hour = micros / kMicrosPerHour;
  auto it = hour_index_.lower_bound(hour);
  if (it == hour_index_.end()) {
    return Status::NotFound("no design point at or after the given hour");
  }
  return it->second;
}

}  // namespace papyrus::activity
