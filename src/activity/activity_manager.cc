#include "activity/activity_manager.h"

#include "activity/thread_ops.h"
#include "base/macros.h"
#include "base/thread_annotations.h"
#include "cache/derivation_cache.h"

namespace papyrus::activity {

ActivityManager::ActivityManager(oct::OctDatabase* db,
                                 task::TaskManager* task_manager,
                                 Clock* clock)
    : db_(db), task_manager_(task_manager), clock_(clock) {}

int ActivityManager::CreateThread(const std::string& name) {
  int id = next_thread_id_++;
  threads_[id] = std::make_unique<DesignThread>(id, name, clock_);
  attribute_stores_[id] = std::make_unique<oct::AttributeStore>();
  return id;
}

Result<DesignThread*> ActivityManager::GetThread(int id) {
  auto it = threads_.find(id);
  if (it == threads_.end()) {
    return Status::NotFound("no design thread " + std::to_string(id));
  }
  return it->second.get();
}

std::vector<int> ActivityManager::ThreadIds() const {
  std::vector<int> ids;
  ids.reserve(threads_.size());
  for (const auto& [id, thread] : threads_) ids.push_back(id);
  return ids;
}

Status ActivityManager::RemoveThread(int id) {
  if (threads_.erase(id) == 0) {
    return Status::NotFound("no design thread " + std::to_string(id));
  }
  attribute_stores_.erase(id);
  return Status::OK();
}

Status ActivityManager::AdoptThread(std::unique_ptr<DesignThread> thread) {
  int id = thread->id();
  if (threads_.count(id) > 0) {
    return Status::AlreadyExists("thread id " + std::to_string(id) +
                                 " is already in use");
  }
  threads_[id] = std::move(thread);
  attribute_stores_[id] = std::make_unique<oct::AttributeStore>();
  if (id >= next_thread_id_) next_thread_id_ = id + 1;
  return Status::OK();
}

Result<oct::AttributeStore*> ActivityManager::AttributeStoreOf(
    int thread_id) {
  auto it = attribute_stores_.find(thread_id);
  if (it == attribute_stores_.end()) {
    return Status::NotFound("no design thread " +
                            std::to_string(thread_id));
  }
  return it->second.get();
}

Result<int> ActivityManager::ForkThread(int source, const std::string& name,
                                        std::optional<NodeId> point) {
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * src, GetThread(source));
  int id = CreateThread(name);
  Status st = ThreadCombinator::Fork(*src, point, threads_[id].get());
  if (!st.ok()) {
    (void)RemoveThread(id);
    return st;
  }
  return id;
}

Result<int> ActivityManager::JoinThreads(int a, NodeId point_a, int b,
                                         NodeId point_b,
                                         const std::string& name) {
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * ta, GetThread(a));
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * tb, GetThread(b));
  int id = CreateThread(name);
  Status st =
      ThreadCombinator::Join(*ta, point_a, *tb, point_b, threads_[id].get());
  if (!st.ok()) {
    (void)RemoveThread(id);
    return st;
  }
  return id;
}

Result<int> ActivityManager::CascadeThreads(int leading, NodeId connector,
                                            int trailing,
                                            const std::string& name) {
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * lead, GetThread(leading));
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * trail, GetThread(trailing));
  int id = CreateThread(name);
  Status st = ThreadCombinator::Cascade(*lead, connector, *trail,
                                        threads_[id].get());
  if (!st.ok()) {
    (void)RemoveThread(id);
    return st;
  }
  return id;
}

Result<oct::ObjectId> ActivityManager::ResolveInput(
    DesignThread* thread, const std::string& ref) {
  base::AssertEngineThread("ActivityManager::ResolveInput");
  PAPYRUS_ASSIGN_OR_RETURN(oct::ObjectRef parsed,
                           oct::ParseObjectRef(ref));
  if (parsed.is_absolute_path) {
    // Implicit check-in (§5.2): the object lives outside the thread
    // workspace; copy a reference into the workspace directory.
    PAPYRUS_ASSIGN_OR_RETURN(oct::ObjectId id,
                             db_->LatestVisible(parsed.name));
    thread->CheckIn(id);
    return id;
  }
  if (parsed.version > 0) {
    // Explicit version: bypasses default resolution but must still be an
    // accessible object.
    oct::ObjectId id{parsed.name, parsed.version};
    auto rec = db_->Get(id);
    if (!rec.ok()) return rec.status();
    return id;
  }
  return thread->ResolveInScope(parsed.name);
}

Result<NodeId> ActivityManager::InvokeTask(int thread_id,
                                           const ActivityInvocation& inv) {
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * thread, GetThread(thread_id));

  task::TaskInvocation task_inv;
  task_inv.template_name = inv.template_name;
  for (const std::string& ref : inv.input_refs) {
    PAPYRUS_ASSIGN_OR_RETURN(oct::ObjectId id, ResolveInput(thread, ref));
    task_inv.inputs.push_back(id);
  }
  task_inv.output_names = inv.output_names;
  task_inv.option_overrides = inv.option_overrides;
  task_inv.max_restarts = inv.max_restarts;
  task_inv.seed = inv.seed;
  task_inv.disable_step_cache = inv.disable_step_cache;
  task_inv.attribute_store = attribute_stores_[thread_id].get();

  // Capture the invocation cursor and its path state (§5.3): the record
  // is inserted on this cursor's logical path even if the current cursor
  // moves while the task runs; a cursor that already has following
  // records (a rework landed mid-stream) starts a new branch.
  NodeId invocation_cursor = thread->current_cursor();
  bool new_branch = false;
  if (invocation_cursor == kInitialPoint) {
    // At the initial point, existing roots mean the user reworked back to
    // the very beginning: start a fresh root branch.
    for (const auto& [id, n] : thread->nodes()) {
      if (n.parents.empty()) {
        new_branch = true;
        break;
      }
    }
  } else {
    auto node = thread->GetNode(invocation_cursor);
    if (node.ok()) new_branch = !(*node)->children.empty();
  }

  auto record = task_manager_->Invoke(task_inv, inv.observer);
  if (!record.ok()) return record.status();  // aborted: nothing appended

  if (record_sink_) record_sink_(*record);

  if (record_filter_ && !record_filter_(inv.template_name)) {
    // §5.4 filtering: facility tasks leave no trace in the design history.
    ++records_filtered_;
    return thread->current_cursor();
  }

  PAPYRUS_ASSIGN_OR_RETURN(NodeId node,
                           thread->Append(std::move(*record),
                                          invocation_cursor, new_branch));
  ++records_appended_;
  return node;
}

Status ActivityManager::MoveCursor(int thread_id, NodeId point,
                                   bool erase) {
  base::AssertEngineThread("ActivityManager::MoveCursor");
  PAPYRUS_ASSIGN_OR_RETURN(DesignThread * thread, GetThread(thread_id));
  if (!erase) return thread->MoveCursor(point);
  std::vector<oct::ObjectId> unreferenced;
  PAPYRUS_RETURN_IF_ERROR(thread->MoveCursorAndErase(point, &unreferenced));
  for (const oct::ObjectId& id : unreferenced) {
    // Erasure re-opens the design point: memoized derivations through the
    // erased versions must re-execute, not be served from history.
    if (cache_ != nullptr) cache_->OnRework(id);
    (void)db_->MarkInvisible(id);
  }
  return Status::OK();
}

}  // namespace papyrus::activity
